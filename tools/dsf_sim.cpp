// dsf_sim — command-line driver for every scenario in the library.
//
//   dsf_sim gnutella [--users 2000] [--hops 2] [--dynamic true]
//                    [--threshold 2] [--hours 96] [--warmup 12]
//                    [--strategy flood|iterative|directed|local-indices]
//                    [--seed 42] [--json]
//   dsf_sim webcache [--proxies 64] [--dynamic true] [--hours 4] [--json]
//   dsf_sim olap     [--peers 48] [--dynamic true] [--hours 6] [--json]
//   dsf_sim diglib   [--repos 64] [--mode all|static|adaptive]
//                    [--hours 2] [--json]
//
// Run `dsf_sim --help` for the full generated flag reference.  The whole
// surface is declared once through cli::FlagRegistry: every scenario also
// accepts --peers as a uniform population flag (the scale-sweep spelling;
// the scenario-specific spelling wins when both are given), the shared
// --fault-* injection group (cli/fault_flags.h), and the flight-recorder
// group:
//
//   --trace ring             record every search/transmission into the
//                            in-memory ring (off | null | ring)
//   --trace-buffer N         ring capacity in records (default 65536)
//   --trace-out FILE         export the ring as Chrome trace JSON
//                            (chrome://tracing, Perfetto)
//   --trace-spans            print the per-search span summary table
//   --heartbeat S            emit a progress heartbeat every S sim-seconds
//                            (changes event ordering; off by default)
//
// Every scenario also accepts the parallel-execution group:
//
//   --shards N (-j N)        run the simulation sharded over N worker
//                            threads (1 = serial reference path; invalid
//                            partitions exit 2)
//   --shard-window S         conservative sync window in sim-seconds
//                            (default: the delay-model floor)
//
// and the snapshot group (serial runs only; snapshots compose with every
// other flag except --shards > 1):
//
//   --save-snapshot PATH@T   run to sim-second T, write a checkpoint of the
//                            full simulation state to PATH, continue to the
//                            horizon
//   --load-snapshot PATH     resume from a checkpoint instead of starting
//                            fresh; the remainder of the run is
//                            byte-identical to the uninterrupted one.  The
//                            scenario flags must match the saving run.
//
// and the open-loop load group (serial runs only; mutually exclusive with
// snapshots):
//
//   --open-loop              inject an external query stream on top of the
//                            closed-loop workload, with per-peer admission
//                            control
//   --arrival-rate X         aggregate offered load in queries/second
//   --arrival-schedule S     constant | diurnal | flash | step
//   --overload-factor X      peak multiplier for the non-constant shapes
//   --admission-cap N        per-peer bound on waiting + in-service queries
//   --load-trace FILE        replay arrivals from a trace file
//                            ("time_s peer item" per line) instead of the
//                            generator
//
// and the adversary group (serial runs only; mutually exclusive with
// snapshots; see cli/adversary_flags.h for the full knob list):
//
//   --adversary-abusers F --adversary-abuse-rate R
//                            query-flood abusers spraying TTL-max searches
//   --adversary-free-riders F
//                            peers that serve nothing but query fully
//   --adversary-outage-class C --adversary-outage-at S
//                            correlated regional outage of a delay class
//   --adversary-storm-rate R churn storms with Pareto session tails
//   --adversary-degree-<class> N / --adversary-weight-<class> W
//                            heterogeneous per-class capacity
//   --adversary-check        audit abuse attribution; exit 4 on violation
//   --capture-trace PATH     write the closed-loop query arrivals in the
//                            "time_s peer item" grammar for later
//                            --open-loop --load-trace replay
//
// Command-line errors — unknown options (rejected with a nearest-match
// suggestion) and values that do not parse as, or overflow, the declared
// type — exit 2.  Corrupt, truncated or mismatched snapshot files exit 5
// without partial state mutation.  Text output is human-readable; --json
// emits a machine-readable record for scripting sweeps.

#include <cstdio>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>

#include "cli/adversary_flags.h"
#include "cli/fault_flags.h"
#include "cli/flag_registry.h"
#include "diglib/diglib_sim.h"
#include "gnutella/simulation.h"
#include "load/open_loop.h"
#include "load/schedule.h"
#include "load/trace_reader.h"
#include "metrics/json.h"
#include "obs/chrome_trace.h"
#include "obs/ring_sink.h"
#include "obs/span_table.h"
#include "olap/olap_sim.h"
#include "sim/invariants.h"
#include "snap/snapshot.h"
#include "webcache/webcache_sim.h"

namespace {

using namespace dsf;

int usage() {
  std::fprintf(stderr,
               "usage: dsf_sim <gnutella|webcache|olap|diglib> [options]\n"
               "       dsf_sim --help for the full flag reference\n");
  return 2;
}

cli::FlagRegistry make_registry() {
  cli::FlagRegistry reg(
      "dsf_sim <gnutella|webcache|olap|diglib> [--flag value ...]",
      "Scenario driver for the distributed-search simulators.");
  reg.add_bool("json", false, "emit one machine-readable JSON record");

  reg.group("scenario");
  reg.add_int("peers", -1, "population, uniform spelling for sweeps "
                           "(scenario-specific spelling wins)")
      .add_int("users", -1, "gnutella population")
      .add_int("proxies", -1, "webcache population")
      .add_int("repos", -1, "diglib population")
      .add_int("hops", -1, "gnutella hop limit")
      .add_bool("dynamic", false, "adaptive neighbor selection "
                                  "(default: scenario config)")
      .add_int("threshold", -1, "gnutella reconfiguration threshold")
      .add_double("hours", -1.0, "simulated hours")
      .add_double("warmup", -1.0, "gnutella warm-up hours")
      .add_int("seed", -1, "master seed (default 42/7/11/17 by scenario)")
      .add_bool("library-growth", false, "gnutella: downloads grow libraries")
      .add_bool("exclude-owned", false, "gnutella: re-draw owned songs")
      .add_string("mode", "adaptive", "diglib list mode: all|static|adaptive");

  reg.group("ranked query plane");
  reg.add_string("search-scheme", "flood",
                 "query scheme: flood|iterative|directed|local-indices|"
                 "top-k|lsh (gnutella: all; diglib: all but lsh)")
      .add_int("top-k", 1, "top-k: results the initiator wants (>= 1)")
      .add_int("lsh-bands", 16, "lsh: signature bands (>= 1)")
      .add_int("lsh-rows", 4, "lsh: min-hash rows per band (>= 1)")
      .add_double("sim-threshold", 0.5,
                  "lsh: minimum estimated Jaccard similarity in [0, 1]");
  reg.alias("strategy", "search-scheme");

  reg.group("parallel execution");
  reg.add_int("shards", 1,
              "worker shards for one run (1 = the serial reference path, "
              "byte-identical to no flag at all)")
      .add_double("shard-window", 0.0,
                  "conservative sync window in sim-seconds "
                  "(0: the delay-model floor)");
  reg.alias("j", "shards");

  reg.group("snapshot");
  reg.add_string("save-snapshot", "",
                 "write a checkpoint at sim-second T: PATH@T "
                 "(serial runs only)")
      .add_string("load-snapshot", "",
                  "resume from a checkpoint written by --save-snapshot "
                  "(same scenario flags required)");

  reg.group("open-loop load");
  reg.add_bool("open-loop", false,
               "inject an external query stream with per-peer admission "
               "control (serial runs only)")
      .add_double("arrival-rate", 0.0,
                  "aggregate offered load in queries/second")
      .add_string("arrival-schedule", "constant",
                  "offered-load shape: constant|diurnal|flash|step")
      .add_double("overload-factor", 4.0,
                  "peak multiplier for the non-constant shapes")
      .add_int("admission-cap", 8,
               "per-peer bound on waiting + in-service injected queries")
      .add_string("load-trace", "",
                  "replay arrivals from a trace file (time_s peer item "
                  "per line) instead of the generator");

  reg.group("flight recorder");
  reg.add_string("trace", "off", "off | null | ring (the flight recorder)")
      .add_int("trace-buffer",
               static_cast<std::int64_t>(obs::RingSink::kDefaultCapacity),
               "ring capacity in records")
      .add_string("trace-out", "", "export the ring as Chrome trace JSON")
      .add_bool("trace-spans", false, "print the per-search span table")
      .add_double("heartbeat", 0.0,
                  "heartbeat period in sim-seconds (0: off; note: "
                  "scheduling heartbeats changes event ordering)");

  register_fault_flags(reg);
  register_adversary_flags(reg);
  return reg;
}

/// Config-default fallbacks: the registry's sentinel defaults mean "not
/// given"; each scenario keeps its own config defaults.
std::int64_t int_or(const cli::FlagRegistry& reg, const char* name,
                    std::int64_t fallback) {
  return reg.was_set(name) ? reg.get_int(name) : fallback;
}
double double_or(const cli::FlagRegistry& reg, const char* name,
                 double fallback) {
  return reg.was_set(name) ? reg.get_double(name) : fallback;
}
bool bool_or(const cli::FlagRegistry& reg, const char* name, bool fallback) {
  return reg.was_set(name) ? reg.get_bool(name) : fallback;
}

/// Uniform population flag: every scenario accepts --peers (what the
/// scale sweep passes); the scenario-specific spelling takes precedence.
std::uint32_t population(const cli::FlagRegistry& reg, const char* specific,
                         std::uint32_t fallback) {
  const std::int64_t peers =
      int_or(reg, "peers", static_cast<std::int64_t>(fallback));
  return static_cast<std::uint32_t>(int_or(reg, specific, peers));
}

/// Applies --shards / --shard-window before anything is scheduled.
/// Returns 0 on success, 2 when the partition is invalid (shards < 1 or
/// more shards than peers).
int apply_shards(const cli::FlagRegistry& reg, sim::OverlayEngine& engine) {
  const std::int64_t n = reg.get_int("shards");
  if (n < 1) {
    std::fprintf(stderr, "error: --shards must be >= 1\n");
    return 2;
  }
  try {
    engine.set_shards(static_cast<std::uint32_t>(n),
                      reg.get_double("shard-window"));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return 0;
}

/// Parses the snapshot group once and arms a freshly constructed scenario
/// engine: a load must precede everything else (the engine rejects resuming
/// into a used simulation), and both requests must precede set_shards so an
/// incompatible --shards value is rejected before any thread is spawned.
struct SnapshotContext {
  std::string save_path;
  double save_at_s = 0.0;
  std::string load_path;

  explicit SnapshotContext(const cli::FlagRegistry& reg)
      : load_path(reg.get_string("load-snapshot")) {
    const std::string save = reg.get_string("save-snapshot");
    if (save.empty()) return;
    const std::size_t at = save.rfind('@');
    if (at == std::string::npos || at == 0 || at + 1 == save.size())
      throw std::invalid_argument(
          "--save-snapshot: expected PATH@T with T in sim-seconds");
    save_path = save.substr(0, at);
    const std::string when = save.substr(at + 1);
    std::size_t used = 0;
    try {
      save_at_s = std::stod(when, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != when.size() || !(save_at_s > 0.0))
      throw std::invalid_argument(
          "--save-snapshot: T must be a positive sim-second count, got '" +
          when + "'");
  }

  void arm(sim::OverlayEngine& engine) {
    if (!load_path.empty()) engine.load_snapshot(load_path);
    if (!save_path.empty()) engine.request_snapshot_save(save_path, save_at_s);
  }
};

/// Parses the --fault-* group once, arms a scenario engine before run(),
/// and audits the finished run when --fault-check was requested.
struct FaultContext {
  cli::FaultOptions opts;
  sim::InvariantChecker checker;

  explicit FaultContext(const cli::FlagRegistry& reg)
      : opts(cli::fault_options_from(reg)) {}

  void arm(sim::OverlayEngine& engine) {
    engine.set_fault_plan(opts.plan);
    engine.set_crash_model(opts.crashes);
    if (opts.check) engine.attach_checker(&checker);
  }

  /// Exit code: 0 when clean (or unchecked), 4 on invariant violations.
  int finish(const sim::OverlayEngine& engine) {
    if (!opts.check) return 0;
    checker.check_overlay(engine.overlay());
    checker.check_ledger(engine.ledger());
    checker.check_admission(engine.load_stats());
    if (!checker.ok()) {
      std::fprintf(stderr, "%s", checker.report().c_str());
      return 4;
    }
    std::fprintf(stderr,
                 "fault-check: ok (%llu trace events, %llu crashes, "
                 "0 violations)\n",
                 static_cast<unsigned long long>(checker.events_seen()),
                 static_cast<unsigned long long>(engine.crashes()));
    return 0;
  }
};

/// Parses the --adversary-* group (plus --capture-trace) once, arms a
/// scenario engine before run(), and audits abuse attribution after when
/// --adversary-check was requested.  The checker instance is shared with
/// FaultContext so --fault-check and --adversary-check compose into one
/// audit over the same trace stream.
struct AdversaryContext {
  cli::AdversaryOptions opts;

  explicit AdversaryContext(const cli::FlagRegistry& reg)
      : opts(cli::adversary_options_from(reg)) {}

  void arm(sim::OverlayEngine& engine, FaultContext& fault) {
    if (opts.plan.enabled()) engine.set_adversary(opts.plan);
    if (!opts.capture_path.empty())
      engine.set_capture_trace(opts.capture_path);
    // FaultContext::arm attaches the checker itself when --fault-check is
    // set; only the adversary-only case needs the attachment here.
    if (opts.check && !fault.opts.check)
      engine.attach_checker(&fault.checker);
  }

  /// Exit code: 0 when clean (or unchecked), 4 on abuse-accounting or
  /// abuser-overlay violations.
  int finish(const sim::OverlayEngine& engine,
             sim::InvariantChecker& checker) {
    if (!opts.check) return 0;
    checker.check_abuse(engine.adversary_stats(), engine.abuse_ledger(),
                        engine.ledger());
    checker.check_abuser_overlay(engine.overlay(), engine.abusers());
    if (!checker.ok()) {
      std::fprintf(stderr, "%s", checker.report().c_str());
      return 4;
    }
    const sim::AdversaryStats& s = engine.adversary_stats();
    std::fprintf(stderr,
                 "adversary-check: ok (%llu abusers, %llu abuse queries, "
                 "%llu free-riders, %llu outage victims, %llu storm kicks, "
                 "0 violations)\n",
                 static_cast<unsigned long long>(s.abusers),
                 static_cast<unsigned long long>(s.abuse_queries),
                 static_cast<unsigned long long>(s.free_riders),
                 static_cast<unsigned long long>(s.outage_victims),
                 static_cast<unsigned long long>(s.storm_kicks));
    return 0;
  }
};

/// Parses the flight-recorder group, attaches the configured sink before
/// run(), and exports/prints after.
struct TraceContext {
  std::string mode;
  std::unique_ptr<obs::RingSink> ring;
  std::string out_path;
  bool spans = false;
  double heartbeat_s = 0.0;

  explicit TraceContext(const cli::FlagRegistry& reg)
      : mode(reg.get_string("trace")),
        out_path(reg.get_string("trace-out")),
        spans(reg.get_bool("trace-spans")),
        heartbeat_s(reg.get_double("heartbeat")) {
    if (mode != "off" && mode != "null" && mode != "ring")
      throw std::invalid_argument("--trace: expected off, null or ring");
    const std::int64_t cap = reg.get_int("trace-buffer");
    if (cap <= 0) throw std::invalid_argument("--trace-buffer: must be > 0");
    if (mode == "ring")
      ring = std::make_unique<obs::RingSink>(static_cast<std::size_t>(cap));
    if ((spans || !out_path.empty()) && !ring)
      throw std::invalid_argument(
          "--trace-out/--trace-spans need --trace ring");
  }

  void arm(sim::OverlayEngine& engine) {
    if (mode == "null") {
      // Explicitly off through the same API: collapses to no attachment.
      engine.set_trace_sink(&obs::NullSink::instance());
      return;
    }
    if (!ring) return;
    engine.set_trace_sink(ring.get());
    if (heartbeat_s > 0.0) engine.set_heartbeat_period(heartbeat_s);
  }

  /// Exit code: 0 on success, 3 when the export file cannot be written.
  int finish() {
    if (!ring) return 0;
    const auto records = ring->snapshot();
    if (!out_path.empty()) {
      if (!obs::write_chrome_trace_file(out_path, records,
                                        ring->overwritten())) {
        std::fprintf(stderr, "error: cannot write trace to %s\n",
                     out_path.c_str());
        return 3;
      }
      std::fprintf(stderr,
                   "trace: %zu records (%llu overwritten) -> %s\n",
                   records.size(),
                   static_cast<unsigned long long>(ring->overwritten()),
                   out_path.c_str());
    }
    if (spans) {
      const auto summary = obs::reconstruct_spans(records);
      obs::span_table(summary).print(std::cout);
    }
    return 0;
  }
};

/// Parses the open-loop load group once, arms a scenario engine before
/// run() (the engine itself rejects the incompatible combinations:
/// --shards > 1 and either snapshot direction), and reports the
/// admission/latency figures after.
struct LoadContext {
  bool enabled = false;
  double rate_qps = 0.0;
  std::string schedule;
  double overload = 4.0;
  std::int64_t cap = 8;
  std::string trace_path;

  explicit LoadContext(const cli::FlagRegistry& reg)
      : enabled(reg.get_bool("open-loop")),
        rate_qps(reg.get_double("arrival-rate")),
        schedule(reg.get_string("arrival-schedule")),
        overload(reg.get_double("overload-factor")),
        cap(reg.get_int("admission-cap")),
        trace_path(reg.get_string("load-trace")) {
    if (!enabled && (reg.was_set("arrival-rate") ||
                     reg.was_set("arrival-schedule") ||
                     reg.was_set("overload-factor") ||
                     reg.was_set("admission-cap") ||
                     reg.was_set("load-trace")))
      throw cli::FlagError(
          "--arrival-rate/--arrival-schedule/--overload-factor/"
          "--admission-cap/--load-trace need --open-loop");
    if (enabled && !trace_path.empty() && reg.was_set("arrival-rate"))
      throw cli::FlagError(
          "--load-trace and --arrival-rate are mutually exclusive");
    if (enabled && cap < 1)
      throw cli::FlagError("--admission-cap: must be >= 1");
  }

  /// Builds the options against the scenario's resolved horizon (the
  /// schedule shape windows are fractions of it) and arms the engine.
  void arm(sim::OverlayEngine& engine, double sim_hours) const {
    if (!enabled) return;
    load::OpenLoopOptions o;
    o.enabled = true;
    o.admission_cap = static_cast<std::size_t>(cap);
    if (!trace_path.empty())
      o.trace = load::read_trace(trace_path);
    else
      o.schedule = load::make_schedule(load::parse_schedule(schedule),
                                       rate_qps, overload, sim_hours * 3600.0);
    engine.set_open_loop(std::move(o));
  }

  /// The machine-readable record nested under "load" in --json output.
  metrics::JsonValue json(const sim::OverlayEngine& engine,
                          double measure_s) const {
    const load::LoadStats& s = engine.load_stats();
    metrics::JsonValue out = metrics::JsonValue::object();
    out.set("offered", metrics::JsonValue::number(s.offered))
        .set("admitted", metrics::JsonValue::number(s.admitted))
        .set("rejected", metrics::JsonValue::number(s.rejected))
        .set("completed", metrics::JsonValue::number(s.completed))
        .set("shed", metrics::JsonValue::number(s.shed))
        .set("pending", metrics::JsonValue::number(s.pending))
        .set("hits", metrics::JsonValue::number(s.hits))
        .set("rejection_rate",
             metrics::JsonValue::number(
                 s.offered ? static_cast<double>(s.rejected) /
                                 static_cast<double>(s.offered)
                           : 0.0))
        .set("goodput_qps",
             metrics::JsonValue::number(
                 measure_s > 0.0
                     ? static_cast<double>(s.completed_after_warmup) /
                           measure_s
                     : 0.0))
        .set("latency_p50_ms",
             metrics::JsonValue::number(s.sojourn_hist.quantile(0.50) * 1e3))
        .set("latency_p95_ms",
             metrics::JsonValue::number(s.sojourn_hist.quantile(0.95) * 1e3))
        .set("latency_p99_ms",
             metrics::JsonValue::number(s.sojourn_hist.quantile(0.99) * 1e3))
        .set("queue_depth_mean",
             metrics::JsonValue::number(s.queue_depth.mean()))
        .set("queue_depth_peak",
             metrics::JsonValue::number(s.peak_queue_depth));
    return out;
  }

  /// The human-readable summary line for text output.
  void print(const sim::OverlayEngine& engine, double measure_s) const {
    const load::LoadStats& s = engine.load_stats();
    std::printf(
        "open-loop: %llu offered, %llu admitted, %llu rejected (%.1f%%), "
        "goodput %.2f q/s, p50/p95/p99 %.0f/%.0f/%.0f ms, peak queue %llu\n",
        static_cast<unsigned long long>(s.offered),
        static_cast<unsigned long long>(s.admitted),
        static_cast<unsigned long long>(s.rejected),
        s.offered ? 100.0 * static_cast<double>(s.rejected) /
                        static_cast<double>(s.offered)
                  : 0.0,
        measure_s > 0.0
            ? static_cast<double>(s.completed_after_warmup) / measure_s
            : 0.0,
        s.sojourn_hist.quantile(0.50) * 1e3,
        s.sojourn_hist.quantile(0.95) * 1e3,
        s.sojourn_hist.quantile(0.99) * 1e3,
        static_cast<unsigned long long>(s.peak_queue_depth));
  }
};

/// Parses and cross-validates the ranked-query flag group: scheme-specific
/// flags are rejected unless their scheme is selected, and each value is
/// range-checked.  Every violation is a typed FlagError (usage exit 2).
sim::SearchStrategyKind ranked_scheme(const cli::FlagRegistry& reg) {
  sim::SearchStrategyKind kind;
  try {
    kind = sim::parse_search_strategy(reg.get_string("search-scheme"));
  } catch (const std::invalid_argument& e) {
    throw cli::FlagError(e.what());
  }
  const bool topk = kind == sim::SearchStrategyKind::kTopK;
  const bool lsh = kind == sim::SearchStrategyKind::kLsh;
  if (reg.was_set("top-k") && !topk)
    throw cli::FlagError("--top-k: requires --search-scheme top-k");
  for (const char* flag : {"lsh-bands", "lsh-rows", "sim-threshold"})
    if (reg.was_set(flag) && !lsh)
      throw cli::FlagError(std::string("--") + flag +
                           ": requires --search-scheme lsh");
  if (topk && reg.get_int("top-k") < 1)
    throw cli::FlagError("--top-k: must be >= 1");
  if (lsh) {
    if (reg.get_int("lsh-bands") < 1)
      throw cli::FlagError("--lsh-bands: must be >= 1");
    if (reg.get_int("lsh-rows") < 1)
      throw cli::FlagError("--lsh-rows: must be >= 1");
    const double t = reg.get_double("sim-threshold");
    if (!(t >= 0.0 && t <= 1.0))
      throw cli::FlagError("--sim-threshold: must lie in [0, 1]");
  }
  return kind;
}

int run_gnutella(const cli::FlagRegistry& reg, bool json) {
  gnutella::Config c;
  c.num_users = population(reg, "users", c.num_users);
  c.max_hops = static_cast<int>(int_or(reg, "hops", c.max_hops));
  c.dynamic = bool_or(reg, "dynamic", c.dynamic);
  c.reconfig_threshold = static_cast<std::uint32_t>(
      int_or(reg, "threshold", c.reconfig_threshold));
  c.sim_hours = double_or(reg, "hours", c.sim_hours);
  c.warmup_hours = double_or(reg, "warmup", c.warmup_hours);
  c.seed = static_cast<std::uint64_t>(int_or(reg, "seed", 42));
  c.search_strategy = ranked_scheme(reg);
  c.top_k = static_cast<std::uint32_t>(reg.get_int("top-k"));
  c.lsh_bands = static_cast<std::uint32_t>(reg.get_int("lsh-bands"));
  c.lsh_rows = static_cast<std::uint32_t>(reg.get_int("lsh-rows"));
  c.sim_threshold = reg.get_double("sim-threshold");
  c.library_growth = reg.get_bool("library-growth");
  c.exclude_owned_songs = reg.get_bool("exclude-owned");

  FaultContext fault(reg);
  AdversaryContext adv(reg);
  TraceContext trace(reg);
  SnapshotContext snap(reg);
  LoadContext loadgen(reg);
  gnutella::Simulation sim(c);
  snap.arm(sim);
  loadgen.arm(sim, c.sim_hours);
  adv.arm(sim, fault);
  if (const int rc = apply_shards(reg, sim)) return rc;
  fault.arm(sim);
  trace.arm(sim);
  const auto r = sim.run();
  const double measure_s = (c.sim_hours - c.warmup_hours) * 3600.0;
  if (json) {
    metrics::JsonValue out = metrics::JsonValue::object();
    out.set("scenario", metrics::JsonValue::string("gnutella"))
        .set("dynamic", metrics::JsonValue::boolean(c.dynamic))
        .set("search_scheme",
             metrics::JsonValue::string(sim::to_string(c.search_strategy)))
        .set("hops", metrics::JsonValue::number(std::int64_t{c.max_hops}))
        .set("queries", metrics::JsonValue::number(r.queries_issued))
        .set("hits", metrics::JsonValue::number(r.total_hits()))
        .set("results", metrics::JsonValue::number(r.total_results()))
        .set("messages", metrics::JsonValue::number(r.total_messages()))
        .set("control_messages",
             metrics::JsonValue::number(r.traffic.control_traffic()))
        .set("mean_first_result_delay_ms",
             metrics::JsonValue::number(r.first_result_delay_s.mean() * 1e3))
        .set("reconfigurations", metrics::JsonValue::number(r.reconfigurations))
        .set("evictions", metrics::JsonValue::number(r.evictions));
    if (loadgen.enabled) out.set("load", loadgen.json(sim, measure_s));
    out.write(std::cout);
    std::cout << '\n';
  } else {
    std::printf("gnutella (%s, hops=%d): %llu queries, %llu hits, "
                "%llu messages, %.0f ms mean first result\n",
                c.dynamic ? "dynamic" : "static", c.max_hops,
                static_cast<unsigned long long>(r.queries_issued),
                static_cast<unsigned long long>(r.total_hits()),
                static_cast<unsigned long long>(r.total_messages()),
                r.first_result_delay_s.mean() * 1e3);
    if (loadgen.enabled) loadgen.print(sim, measure_s);
  }
  const int trc = trace.finish();
  const int arc = adv.finish(sim, fault.checker);
  const int frc = fault.finish(sim);
  return arc ? arc : (frc ? frc : trc);
}

int run_webcache(const cli::FlagRegistry& reg, bool json) {
  webcache::WebCacheConfig c;
  c.num_proxies = population(reg, "proxies", c.num_proxies);
  c.dynamic = bool_or(reg, "dynamic", c.dynamic);
  c.sim_hours = double_or(reg, "hours", c.sim_hours);
  c.seed = static_cast<std::uint64_t>(int_or(reg, "seed", 7));

  FaultContext fault(reg);
  AdversaryContext adv(reg);
  TraceContext trace(reg);
  SnapshotContext snap(reg);
  LoadContext loadgen(reg);
  webcache::WebCacheSim sim(c);
  snap.arm(sim);
  loadgen.arm(sim, c.sim_hours);
  adv.arm(sim, fault);
  if (const int rc = apply_shards(reg, sim)) return rc;
  fault.arm(sim);
  trace.arm(sim);
  const auto r = sim.run();
  const double measure_s = (c.sim_hours - c.warmup_hours) * 3600.0;
  if (json) {
    metrics::JsonValue out = metrics::JsonValue::object();
    out.set("scenario", metrics::JsonValue::string("webcache"))
        .set("dynamic", metrics::JsonValue::boolean(c.dynamic))
        .set("requests", metrics::JsonValue::number(r.requests))
        .set("local_hit_rate", metrics::JsonValue::number(r.local_hit_rate()))
        .set("neighbor_hit_rate",
             metrics::JsonValue::number(r.neighbor_hit_rate()))
        .set("mean_latency_ms",
             metrics::JsonValue::number(r.latency_s.mean() * 1e3));
    if (loadgen.enabled) out.set("load", loadgen.json(sim, measure_s));
    out.write(std::cout);
    std::cout << '\n';
  } else {
    std::printf("webcache (%s): %llu requests, %.1f%% local, %.1f%% "
                "neighbor-of-miss, %.0f ms mean latency\n",
                c.dynamic ? "dynamic" : "static",
                static_cast<unsigned long long>(r.requests),
                r.local_hit_rate() * 100, r.neighbor_hit_rate() * 100,
                r.latency_s.mean() * 1e3);
    if (loadgen.enabled) loadgen.print(sim, measure_s);
  }
  const int trc = trace.finish();
  const int arc = adv.finish(sim, fault.checker);
  const int frc = fault.finish(sim);
  return arc ? arc : (frc ? frc : trc);
}

int run_olap(const cli::FlagRegistry& reg, bool json) {
  olap::OlapConfig c;
  c.num_peers = population(reg, "peers", c.num_peers);
  c.dynamic = bool_or(reg, "dynamic", c.dynamic);
  c.sim_hours = double_or(reg, "hours", c.sim_hours);
  c.seed = static_cast<std::uint64_t>(int_or(reg, "seed", 11));

  FaultContext fault(reg);
  AdversaryContext adv(reg);
  TraceContext trace(reg);
  SnapshotContext snap(reg);
  LoadContext loadgen(reg);
  olap::OlapSim sim(c);
  snap.arm(sim);
  loadgen.arm(sim, c.sim_hours);
  adv.arm(sim, fault);
  if (const int rc = apply_shards(reg, sim)) return rc;
  fault.arm(sim);
  trace.arm(sim);
  const auto r = sim.run();
  const double measure_s = (c.sim_hours - c.warmup_hours) * 3600.0;
  if (json) {
    metrics::JsonValue out = metrics::JsonValue::object();
    out.set("scenario", metrics::JsonValue::string("olap"))
        .set("dynamic", metrics::JsonValue::boolean(c.dynamic))
        .set("queries", metrics::JsonValue::number(r.queries))
        .set("peer_hit_rate", metrics::JsonValue::number(r.peer_hit_rate()))
        .set("mean_response_s",
             metrics::JsonValue::number(r.response_time_s.mean()));
    if (loadgen.enabled) out.set("load", loadgen.json(sim, measure_s));
    out.write(std::cout);
    std::cout << '\n';
  } else {
    std::printf("olap (%s): %llu queries, %.1f%% peer hits, %.2f s mean "
                "response\n",
                c.dynamic ? "dynamic" : "static",
                static_cast<unsigned long long>(r.queries),
                r.peer_hit_rate() * 100, r.response_time_s.mean());
    if (loadgen.enabled) loadgen.print(sim, measure_s);
  }
  const int trc = trace.finish();
  const int arc = adv.finish(sim, fault.checker);
  const int frc = fault.finish(sim);
  return arc ? arc : (frc ? frc : trc);
}

int run_diglib(const cli::FlagRegistry& reg, bool json) {
  diglib::DigLibConfig c;
  c.num_repositories = population(reg, "repos", c.num_repositories);
  const std::string mode = reg.get_string("mode");
  if (mode == "all") {
    c.mode = diglib::ListMode::kAllToAll;
  } else if (mode == "static") {
    c.mode = diglib::ListMode::kStatic;
  } else if (mode == "adaptive") {
    c.mode = diglib::ListMode::kAdaptive;
  } else {
    throw std::invalid_argument("--mode: unknown value: " + mode);
  }
  c.sim_hours = double_or(reg, "hours", c.sim_hours);
  c.seed = static_cast<std::uint64_t>(int_or(reg, "seed", 17));
  const auto scheme = ranked_scheme(reg);
  if (scheme == sim::SearchStrategyKind::kLsh)
    throw cli::FlagError(
        "--search-scheme lsh: diglib repositories advertise no similarity "
        "signatures");
  c.search_strategy = scheme;
  c.top_k = static_cast<std::uint32_t>(reg.get_int("top-k"));

  FaultContext fault(reg);
  AdversaryContext adv(reg);
  TraceContext trace(reg);
  SnapshotContext snap(reg);
  LoadContext loadgen(reg);
  diglib::DigLibSim sim(c);
  snap.arm(sim);
  loadgen.arm(sim, c.sim_hours);
  adv.arm(sim, fault);
  if (const int rc = apply_shards(reg, sim)) return rc;
  fault.arm(sim);
  trace.arm(sim);
  const auto r = sim.run();
  const double measure_s = (c.sim_hours - c.warmup_hours) * 3600.0;
  if (json) {
    metrics::JsonValue out = metrics::JsonValue::object();
    out.set("scenario", metrics::JsonValue::string("diglib"))
        .set("mode", metrics::JsonValue::string(mode))
        .set("search_scheme",
             metrics::JsonValue::string(sim::to_string(c.search_strategy)))
        .set("queries", metrics::JsonValue::number(r.queries))
        .set("hit_rate", metrics::JsonValue::number(r.hit_rate()))
        .set("recall", metrics::JsonValue::number(r.recall()))
        .set("messages_per_query",
             metrics::JsonValue::number(r.messages_per_query.mean()));
    if (loadgen.enabled) out.set("load", loadgen.json(sim, measure_s));
    out.write(std::cout);
    std::cout << '\n';
  } else {
    std::printf("diglib (%s): %llu queries, %.1f%% hit rate, recall %.3f, "
                "%.1f msgs/query\n",
                mode.c_str(), static_cast<unsigned long long>(r.queries),
                r.hit_rate() * 100, r.recall(),
                r.messages_per_query.mean());
    if (loadgen.enabled) loadgen.print(sim, measure_s);
  }
  const int trc = trace.finish();
  const int arc = adv.finish(sim, fault.checker);
  const int frc = fault.finish(sim);
  return arc ? arc : (frc ? frc : trc);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    cli::FlagRegistry reg = make_registry();
    const cli::Args& args = reg.parse(argc, argv);
    if (reg.help_requested()) {
      std::fputs(reg.help().c_str(), stdout);
      return 0;
    }
    if (args.positional().size() != 1) return usage();
    const bool json = reg.get_bool("json");

    const std::string& scenario = args.positional().front();
    if (scenario == "gnutella") return run_gnutella(reg, json);
    if (scenario == "webcache") return run_webcache(reg, json);
    if (scenario == "olap") return run_olap(reg, json);
    if (scenario == "diglib") return run_diglib(reg, json);
    return usage();
  } catch (const dsf::cli::FlagError& e) {
    // The typed flag-error family: unknown options, type mismatches, and
    // values that overflow the declared type all exit with usage status.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const dsf::snap::SnapshotError& e) {
    // A corrupt, truncated or mismatched snapshot file fails closed: no
    // partial state was applied and no simulation ran.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 5;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
