// dsf_sim — command-line driver for every scenario in the library.
//
//   dsf_sim gnutella [--users 2000] [--hops 2] [--dynamic true]
//                    [--threshold 2] [--hours 96] [--warmup 12]
//                    [--strategy flood|iterative|directed|local-indices]
//                    [--seed 42] [--json]
//   dsf_sim webcache [--proxies 64] [--dynamic true] [--hours 4] [--json]
//   dsf_sim olap     [--peers 48] [--dynamic true] [--hours 6] [--json]
//   dsf_sim diglib   [--repos 64] [--mode all|static|adaptive]
//                    [--hours 2] [--json]
//
// Every scenario also accepts --peers as a uniform population flag (the
// scale-sweep spelling); the scenario-specific spelling wins when both
// are given.
//
// Every scenario also accepts the shared fault-injection group (see
// cli/fault_flags.h): --fault-drop/--fault-dup/--fault-delay with
// per-type overrides, --fault-crash-rate, and --fault-check to attach
// the invariant checker (exit code 4 on violation).
//
// Text output is human-readable; --json emits a machine-readable record
// for scripting sweeps.

#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <string>

#include "cli/args.h"
#include "cli/fault_flags.h"
#include "diglib/diglib_sim.h"
#include "gnutella/simulation.h"
#include "metrics/json.h"
#include "olap/olap_sim.h"
#include "sim/invariants.h"
#include "webcache/webcache_sim.h"

namespace {

using namespace dsf;

int usage() {
  std::fprintf(stderr,
               "usage: dsf_sim <gnutella|webcache|olap|diglib> [options]\n"
               "       see the header of tools/dsf_sim.cpp or README.md\n");
  return 2;
}

/// Parses the --fault-* group once, arms a scenario engine before run(),
/// and audits the finished run when --fault-check was requested.
struct FaultContext {
  cli::FaultOptions opts;
  sim::InvariantChecker checker;

  explicit FaultContext(const cli::Args& args)
      : opts(cli::parse_fault_options(args)) {}

  void arm(sim::OverlayEngine& engine) {
    engine.set_fault_plan(opts.plan);
    engine.set_crash_model(opts.crashes);
    if (opts.check) engine.attach_checker(&checker);
  }

  /// Exit code: 0 when clean (or unchecked), 4 on invariant violations.
  int finish(const sim::OverlayEngine& engine) {
    if (!opts.check) return 0;
    checker.check_overlay(engine.overlay());
    checker.check_ledger(engine.ledger());
    if (!checker.ok()) {
      std::fprintf(stderr, "%s", checker.report().c_str());
      return 4;
    }
    std::fprintf(stderr,
                 "fault-check: ok (%llu trace events, %llu crashes, "
                 "0 violations)\n",
                 static_cast<unsigned long long>(checker.events_seen()),
                 static_cast<unsigned long long>(engine.crashes()));
    return 0;
  }
};

/// Uniform population flag: every scenario accepts --peers (what the
/// scale sweep passes); the scenario-specific spelling takes precedence.
std::uint32_t population(const cli::Args& args, const char* specific,
                         std::uint32_t fallback) {
  const std::int64_t peers =
      args.get_int("peers", static_cast<std::int64_t>(fallback));
  return static_cast<std::uint32_t>(args.get_int(specific, peers));
}

gnutella::SearchStrategy parse_strategy(const std::string& s) {
  if (s == "flood") return gnutella::SearchStrategy::kFlood;
  if (s == "iterative") return gnutella::SearchStrategy::kIterativeDeepening;
  if (s == "directed") return gnutella::SearchStrategy::kDirectedBft;
  if (s == "local-indices") return gnutella::SearchStrategy::kLocalIndices;
  throw std::invalid_argument("--strategy: unknown value: " + s);
}

int run_gnutella(const cli::Args& args, bool json) {
  gnutella::Config c;
  c.num_users = population(args, "users", c.num_users);
  c.max_hops = static_cast<int>(args.get_int("hops", c.max_hops));
  c.dynamic = args.get_bool("dynamic", c.dynamic);
  c.reconfig_threshold = static_cast<std::uint32_t>(
      args.get_int("threshold", c.reconfig_threshold));
  c.sim_hours = args.get_double("hours", c.sim_hours);
  c.warmup_hours = args.get_double("warmup", c.warmup_hours);
  c.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  c.search_strategy = parse_strategy(args.get_string("strategy", "flood"));
  c.library_growth = args.get_bool("library-growth", false);
  c.exclude_owned_songs = args.get_bool("exclude-owned", false);

  FaultContext fault(args);
  gnutella::Simulation sim(c);
  fault.arm(sim);
  const auto r = sim.run();
  if (json) {
    metrics::JsonValue out = metrics::JsonValue::object();
    out.set("scenario", metrics::JsonValue::string("gnutella"))
        .set("dynamic", metrics::JsonValue::boolean(c.dynamic))
        .set("hops", metrics::JsonValue::number(std::int64_t{c.max_hops}))
        .set("queries", metrics::JsonValue::number(r.queries_issued))
        .set("hits", metrics::JsonValue::number(r.total_hits()))
        .set("results", metrics::JsonValue::number(r.total_results()))
        .set("messages", metrics::JsonValue::number(r.total_messages()))
        .set("control_messages",
             metrics::JsonValue::number(r.traffic.control_traffic()))
        .set("mean_first_result_delay_ms",
             metrics::JsonValue::number(r.first_result_delay_s.mean() * 1e3))
        .set("reconfigurations", metrics::JsonValue::number(r.reconfigurations))
        .set("evictions", metrics::JsonValue::number(r.evictions));
    out.write(std::cout);
    std::cout << '\n';
  } else {
    std::printf("gnutella (%s, hops=%d): %llu queries, %llu hits, "
                "%llu messages, %.0f ms mean first result\n",
                c.dynamic ? "dynamic" : "static", c.max_hops,
                static_cast<unsigned long long>(r.queries_issued),
                static_cast<unsigned long long>(r.total_hits()),
                static_cast<unsigned long long>(r.total_messages()),
                r.first_result_delay_s.mean() * 1e3);
  }
  return fault.finish(sim);
}

int run_webcache(const cli::Args& args, bool json) {
  webcache::WebCacheConfig c;
  c.num_proxies = population(args, "proxies", c.num_proxies);
  c.dynamic = args.get_bool("dynamic", c.dynamic);
  c.sim_hours = args.get_double("hours", c.sim_hours);
  c.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  FaultContext fault(args);
  webcache::WebCacheSim sim(c);
  fault.arm(sim);
  const auto r = sim.run();
  if (json) {
    metrics::JsonValue out = metrics::JsonValue::object();
    out.set("scenario", metrics::JsonValue::string("webcache"))
        .set("dynamic", metrics::JsonValue::boolean(c.dynamic))
        .set("requests", metrics::JsonValue::number(r.requests))
        .set("local_hit_rate", metrics::JsonValue::number(r.local_hit_rate()))
        .set("neighbor_hit_rate",
             metrics::JsonValue::number(r.neighbor_hit_rate()))
        .set("mean_latency_ms",
             metrics::JsonValue::number(r.latency_s.mean() * 1e3));
    out.write(std::cout);
    std::cout << '\n';
  } else {
    std::printf("webcache (%s): %llu requests, %.1f%% local, %.1f%% "
                "neighbor-of-miss, %.0f ms mean latency\n",
                c.dynamic ? "dynamic" : "static",
                static_cast<unsigned long long>(r.requests),
                r.local_hit_rate() * 100, r.neighbor_hit_rate() * 100,
                r.latency_s.mean() * 1e3);
  }
  return fault.finish(sim);
}

int run_olap(const cli::Args& args, bool json) {
  olap::OlapConfig c;
  c.num_peers = population(args, "peers", c.num_peers);
  c.dynamic = args.get_bool("dynamic", c.dynamic);
  c.sim_hours = args.get_double("hours", c.sim_hours);
  c.seed = static_cast<std::uint64_t>(args.get_int("seed", 11));

  FaultContext fault(args);
  olap::OlapSim sim(c);
  fault.arm(sim);
  const auto r = sim.run();
  if (json) {
    metrics::JsonValue out = metrics::JsonValue::object();
    out.set("scenario", metrics::JsonValue::string("olap"))
        .set("dynamic", metrics::JsonValue::boolean(c.dynamic))
        .set("queries", metrics::JsonValue::number(r.queries))
        .set("peer_hit_rate", metrics::JsonValue::number(r.peer_hit_rate()))
        .set("mean_response_s",
             metrics::JsonValue::number(r.response_time_s.mean()));
    out.write(std::cout);
    std::cout << '\n';
  } else {
    std::printf("olap (%s): %llu queries, %.1f%% peer hits, %.2f s mean "
                "response\n",
                c.dynamic ? "dynamic" : "static",
                static_cast<unsigned long long>(r.queries),
                r.peer_hit_rate() * 100, r.response_time_s.mean());
  }
  return fault.finish(sim);
}

int run_diglib(const cli::Args& args, bool json) {
  diglib::DigLibConfig c;
  c.num_repositories = population(args, "repos", c.num_repositories);
  const std::string mode = args.get_string("mode", "adaptive");
  if (mode == "all") {
    c.mode = diglib::ListMode::kAllToAll;
  } else if (mode == "static") {
    c.mode = diglib::ListMode::kStatic;
  } else if (mode == "adaptive") {
    c.mode = diglib::ListMode::kAdaptive;
  } else {
    throw std::invalid_argument("--mode: unknown value: " + mode);
  }
  c.sim_hours = args.get_double("hours", c.sim_hours);
  c.seed = static_cast<std::uint64_t>(args.get_int("seed", 17));

  FaultContext fault(args);
  diglib::DigLibSim sim(c);
  fault.arm(sim);
  const auto r = sim.run();
  if (json) {
    metrics::JsonValue out = metrics::JsonValue::object();
    out.set("scenario", metrics::JsonValue::string("diglib"))
        .set("mode", metrics::JsonValue::string(mode))
        .set("queries", metrics::JsonValue::number(r.queries))
        .set("hit_rate", metrics::JsonValue::number(r.hit_rate()))
        .set("recall", metrics::JsonValue::number(r.recall()))
        .set("messages_per_query",
             metrics::JsonValue::number(r.messages_per_query.mean()));
    out.write(std::cout);
    std::cout << '\n';
  } else {
    std::printf("diglib (%s): %llu queries, %.1f%% hit rate, recall %.3f, "
                "%.1f msgs/query\n",
                mode.c_str(), static_cast<unsigned long long>(r.queries),
                r.hit_rate() * 100, r.recall(),
                r.messages_per_query.mean());
  }
  return fault.finish(sim);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    cli::Args args(argc, argv);
    if (args.positional().size() != 1) return usage();
    const bool json = args.get_bool("json", false);

    const std::string& scenario = args.positional().front();
    int rc;
    if (scenario == "gnutella") {
      rc = run_gnutella(args, json);
    } else if (scenario == "webcache") {
      rc = run_webcache(args, json);
    } else if (scenario == "olap") {
      rc = run_olap(args, json);
    } else if (scenario == "diglib") {
      rc = run_diglib(args, json);
    } else {
      return usage();
    }

    for (const auto& key : args.unrecognized())
      std::fprintf(stderr, "warning: unrecognized option --%s\n", key.c_str());
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
