// Search-technique comparison (§2): the Yang & Garcia-Molina methods —
// iterative deepening, directed BFT, local indices — composed with both
// the static and the dynamic (reconfiguring) overlay.  The paper argues
// these are orthogonal to dynamic reconfiguration and can further reduce
// query cost; this bench quantifies the combinations.

#include <cstdio>
#include <iostream>

#include "fig_common.h"

int main() {
  using namespace dsf;
  gnutella::Config base = bench::paper_config(/*max_hops=*/4);
  base.num_users = 1000;
  base.catalog.num_songs = 100'000;
  base.sim_hours = 36.0;
  base.warmup_hours = 6.0;

  struct Row {
    const char* name;
    gnutella::SearchStrategy strategy;
  };
  const Row rows[] = {
      {"flood (Gnutella default)", gnutella::SearchStrategy::kFlood},
      {"iterative deepening", gnutella::SearchStrategy::kIterativeDeepening},
      {"directed BFT (fanout 2)", gnutella::SearchStrategy::kDirectedBft},
      {"local indices (r=1)", gnutella::SearchStrategy::kLocalIndices},
  };

  std::printf("Search strategies x reconfiguration (hops=%d, %u users, "
              "%.0fh)\n\n", base.max_hops, base.num_users, base.sim_hours);
  metrics::Table table({"strategy", "overlay", "hits", "query msgs",
                        "control msgs", "mean delay (ms)"});
  for (const Row& row : rows) {
    for (const bool dynamic : {false, true}) {
      gnutella::Config c = base;
      c.search_strategy = row.strategy;
      c.dynamic = dynamic;
      const auto r = gnutella::Simulation(c).run();
      table.add_row({row.name, dynamic ? "dynamic" : "static",
                     metrics::fmt_count(r.total_hits()),
                     metrics::fmt_count(r.total_messages()),
                     metrics::fmt_count(r.traffic.control_traffic()),
                     metrics::fmt(r.first_result_delay_s.mean() * 1000, 0)});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nExpected ordering: local indices and iterative deepening cut "
      "query messages\nat comparable hit counts; directed BFT trades hits "
      "for traffic; dynamic\nreconfiguration compounds with each.\n");
  return 0;
}
