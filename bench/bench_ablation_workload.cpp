// Ablation: workload robustness.  The paper's claims are demonstrated
// under exponential churn and fixed libraries; this bench re-runs the
// static/dynamic comparison under (a) heavy-tailed Pareto session
// durations with the same 3 h means and (b) growing libraries (satisfied
// queries end in downloads).  The reproduction is only interesting if the
// dynamic advantage survives these perturbations.

#include <cstdio>
#include <iostream>

#include "fig_common.h"

int main() {
  using namespace dsf;
  gnutella::Config base = bench::paper_config(/*max_hops=*/2);
  base.num_users = 1000;
  base.catalog.num_songs = 100'000;
  base.sim_hours = 48.0;
  base.warmup_hours = 12.0;

  struct Row {
    const char* name;
    workload::DurationKind kind;
    bool growth;
  };
  const Row rows[] = {
      {"exponential churn, fixed libraries (paper)",
       workload::DurationKind::kExponential, false},
      {"Pareto(1.5) churn", workload::DurationKind::kPareto, false},
      {"library growth (downloads kept)",
       workload::DurationKind::kExponential, true},
      {"Pareto churn + library growth", workload::DurationKind::kPareto,
       true},
  };

  std::printf("Ablation — workload robustness (hops=%d, %u users, %.0fh)\n\n",
              base.max_hops, base.num_users, base.sim_hours);
  metrics::Table table({"workload", "hits(static)", "hits(dynamic)",
                        "gain", "msgs dyn/static"});
  for (const Row& row : rows) {
    gnutella::Config c = base;
    c.session.duration_kind = row.kind;
    c.library_growth = row.growth;
    const auto sta = gnutella::Simulation(c.as_static()).run();
    const auto dyn = gnutella::Simulation(c).run();
    table.add_row(
        {row.name, metrics::fmt_count(sta.total_hits()),
         metrics::fmt_count(dyn.total_hits()),
         metrics::fmt(100.0 * (static_cast<double>(dyn.total_hits()) /
                                   static_cast<double>(sta.total_hits()) -
                               1.0),
                      1) + "%",
         metrics::fmt(static_cast<double>(dyn.total_messages()) /
                          static_cast<double>(sta.total_messages()),
                      2)});
  }
  table.print(std::cout);
  std::printf("\nThe dynamic gain should survive heavy-tailed churn and "
              "replication growth.\n");
  return 0;
}
