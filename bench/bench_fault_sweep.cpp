// Fault sweep: the Fig-1 hit-ratio comparison (static vs dynamic Gnutella,
// hops = 2) repeated under increasing query/reply loss, with the invariant
// checker attached to every run.  The reproduction question: does the
// dynamic overlay's advantage survive an unreliable transport, and how
// fast does the hit ratio decay as the network drops messages?
//
// Every run must finish checker-clean (message conservation, TTL
// monotonicity, no deliveries to crashed peers, overlay sanity, ledger
// reconciliation); any violation makes the bench exit nonzero.
//
// Honours DSF_FAST / DSF_SEED like the other figure benches.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cli/flag_registry.h"
#include "fig_common.h"
#include "metrics/csv.h"
#include "metrics/json_emitter.h"
#include "metrics/table.h"
#include "sim/fault.h"
#include "sim/invariants.h"

namespace {

using namespace dsf;

struct SweepPoint {
  double loss = 0.0;
  std::uint64_t queries = 0;
  std::uint64_t hits = 0;
  std::uint64_t messages = 0;
  std::uint64_t dropped = 0;
  double hit_ratio() const {
    return queries ? static_cast<double>(hits) / static_cast<double>(queries)
                   : 0.0;
  }
};

/// One full run at the given loss rate; dies loudly on any invariant
/// violation.
SweepPoint run_point(const gnutella::Config& config, double loss,
                     bool* clean) {
  sim::FaultPlan plan;
  if (loss > 0.0) {
    sim::FaultRule rule;
    rule.drop_prob = loss;
    plan.set_rule(net::MessageType::kQuery, rule);
    plan.set_rule(net::MessageType::kQueryReply, rule);
  }

  sim::InvariantChecker checker;
  gnutella::Simulation sim(config);
  sim.set_fault_plan(plan);
  sim.attach_checker(&checker);
  const auto r = sim.run();

  checker.check_overlay(sim.overlay());
  // The flood strategy transmits every query and reply individually, so
  // the traced send counts must match the ledger exactly.
  checker.check_ledger(sim.ledger(), {net::MessageType::kQuery,
                                      net::MessageType::kQueryReply});
  if (!checker.ok()) {
    std::fprintf(stderr, "loss %.2f (%s): %s", loss,
                 config.dynamic ? "dynamic" : "static",
                 checker.report().c_str());
    *clean = false;
  }

  SweepPoint p;
  p.loss = loss;
  p.queries = r.queries_issued;
  p.hits = r.total_hits();
  p.messages = r.total_messages();
  p.dropped = sim.ledger().total_dropped();
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  cli::FlagRegistry reg(
      "bench_fault_sweep [--out PATH] [--csv PATH]",
      "Hit ratio vs query/reply loss, checker-clean; emits "
      "dsf-fault-sweep-v1 JSON.  Honours DSF_FAST / DSF_SEED.");
  reg.add_string("out", "fault_sweep.json", "JSON output path")
      .add_string("csv", "fault_sweep_series.csv", "CSV output path");
  try {
    reg.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (reg.help_requested()) {
    std::fputs(reg.help().c_str(), stdout);
    return 0;
  }

  gnutella::Config base = bench::paper_config(2);
  if (!bench::fast_mode()) {
    // Full scale is 10 runs; trim the horizon so the sweep stays tractable
    // while keeping several post-warmup hours per point.
    base.sim_hours = std::min(base.sim_hours, 36.0);
    base.warmup_hours = std::min(base.warmup_hours, 6.0);
  }

  const std::vector<double> losses = {0.0, 0.05, 0.10, 0.15, 0.20};
  bool clean = true;

  std::vector<SweepPoint> sta, dyn;
  for (double loss : losses) {
    gnutella::Config c = base;
    c.dynamic = false;
    sta.push_back(run_point(c, loss, &clean));
    c.dynamic = true;
    dyn.push_back(run_point(c, loss, &clean));
    std::printf("loss %.0f%%: static hit ratio %.3f, dynamic %.3f\n",
                loss * 100, sta.back().hit_ratio(), dyn.back().hit_ratio());
  }

  std::printf("\n-- fault sweep: hit ratio vs query/reply loss (hops=%d) --\n",
              base.max_hops);
  metrics::Table table({"loss", "Gnutella", "Dynamic_Gnutella", "dropped"});
  for (std::size_t i = 0; i < losses.size(); ++i)
    table.add_row({std::to_string(losses[i]),
                   std::to_string(sta[i].hit_ratio()),
                   std::to_string(dyn[i].hit_ratio()),
                   std::to_string(sta[i].dropped + dyn[i].dropped)});
  table.print(std::cout);

  const std::string csv_path = reg.get_string("csv");
  metrics::CsvWriter csv(csv_path,
                         {"loss", "hits_static", "queries_static",
                          "hit_ratio_static", "hits_dynamic",
                          "queries_dynamic", "hit_ratio_dynamic",
                          "dropped_total"});
  for (std::size_t i = 0; i < losses.size(); ++i)
    csv.add_row({std::to_string(losses[i]), std::to_string(sta[i].hits),
                 std::to_string(sta[i].queries),
                 std::to_string(sta[i].hit_ratio()),
                 std::to_string(dyn[i].hits), std::to_string(dyn[i].queries),
                 std::to_string(dyn[i].hit_ratio()),
                 std::to_string(sta[i].dropped + dyn[i].dropped)});
  std::printf("full sweep written to %s\n", csv_path.c_str());

  const std::string out_path = reg.get_string("out");
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  metrics::JsonEmitter j(out);
  j.begin_object();
  j.schema("fault-sweep", 1);
  j.field("max_hops", base.max_hops);
  j.field("sim_hours", base.sim_hours, 1);
  j.field("clean", clean);
  j.begin_array("points");
  for (std::size_t i = 0; i < losses.size(); ++i) {
    j.begin_object();
    j.field("loss", losses[i], 2);
    j.field("hit_ratio_static", sta[i].hit_ratio(), 4);
    j.field("hit_ratio_dynamic", dyn[i].hit_ratio(), 4);
    j.field("queries_static", sta[i].queries);
    j.field("queries_dynamic", dyn[i].queries);
    j.field("dropped_total", sta[i].dropped + dyn[i].dropped);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  j.finish();
  std::printf("wrote %s\n", out_path.c_str());

  if (!clean) {
    std::fprintf(stderr, "fault sweep: invariant violations detected\n");
    return 4;
  }
  std::printf("all %zu runs checker-clean\n", 2 * losses.size());
  return 0;
}
