// Abuse sweep: contain-vs-amplify for the adversary layer.  Each point is
// one full Gnutella run with a fraction of the population turned into
// query-flood abusers (TTL-max sprays at a fixed per-abuser rate), the
// invariant checker attached, and the abuse ledger audited against the
// trace stream.  The containment question: as the abuser fraction grows,
// does the dynamic reorganization scheme *contain* the abusers — their
// overlay degree shrinking as good peers learn they contribute nothing —
// or does it amplify them, while static Gnutella keeps wiring them in at
// random?  Three answers per point, static vs --dynamic:
//
//   * abuser mean out-degree vs good-peer mean out-degree,
//   * good-peer hit ratio (closed-loop satisfaction; abuse sprays are
//     accounted separately and never inflate it),
//   * blast-radius traffic share: the fraction of all messages (and
//     bytes) attributable to abuser sprays, cascades included.
//
// A case-study run with exactly one abuser additionally exports the
// flight-recorder ring as a Chrome trace, so the single abuser's blast
// radius can be inspected span by span in chrome://tracing / Perfetto.
//
// Every run must finish checker-clean, including the abuse-accounting
// laws (traced abuse fates equal the abuse ledger's; abuse counts never
// exceed the run ledger's) and the abuser overlay audit; any violation
// makes the bench exit 4.
//
// Honours DSF_FAST / DSF_SEED like the other figure benches.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cli/flag_registry.h"
#include "fig_common.h"
#include "metrics/csv.h"
#include "metrics/json_emitter.h"
#include "metrics/table.h"
#include "obs/chrome_trace.h"
#include "obs/ring_sink.h"
#include "sim/adversary.h"
#include "sim/invariants.h"

namespace {

using namespace dsf;

struct SweepPoint {
  double fraction = 0.0;
  bool dynamic = false;
  sim::AdversaryStats adversary;
  std::uint64_t queries = 0;
  std::uint64_t hits = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t abuse_messages = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t abuse_bytes = 0;
  double abuser_mean_degree = 0.0;
  double good_mean_degree = 0.0;

  double good_hit_ratio() const {
    return queries ? static_cast<double>(hits) / static_cast<double>(queries)
                   : 0.0;
  }
  double abuse_traffic_share() const {
    return total_messages ? static_cast<double>(abuse_messages) /
                                static_cast<double>(total_messages)
                          : 0.0;
  }
  double abuse_bytes_share() const {
    return total_bytes ? static_cast<double>(abuse_bytes) /
                             static_cast<double>(total_bytes)
                       : 0.0;
  }
};

/// One full run at the given abuser fraction; flips *clean on any
/// violation.  When `ring` is given the run records into it (the
/// case-study export).
SweepPoint run_point(const gnutella::Config& config,
                     const sim::AdversaryPlan& plan, bool* clean,
                     obs::RingSink* ring = nullptr) {
  sim::InvariantChecker checker;
  gnutella::Simulation sim(config);
  if (plan.enabled()) sim.set_adversary(plan);
  sim.attach_checker(&checker);
  if (ring) sim.set_trace_sink(ring);
  const auto r = sim.run();

  checker.check_overlay(sim.overlay());
  checker.check_ledger(sim.ledger());
  checker.check_admission(sim.load_stats());
  checker.check_abuse(sim.adversary_stats(), sim.abuse_ledger(), sim.ledger());
  checker.check_abuser_overlay(sim.overlay(), sim.abusers());
  if (!checker.ok()) {
    std::fprintf(stderr, "fraction %.3f (%s): %s", plan.abuser_fraction,
                 config.dynamic ? "dynamic" : "static",
                 checker.report().c_str());
    *clean = false;
  }

  SweepPoint p;
  p.fraction = plan.abuser_fraction;
  p.dynamic = config.dynamic;
  p.adversary = sim.adversary_stats();
  p.queries = r.queries_issued;
  p.hits = r.total_hits();
  p.total_messages = sim.ledger().stats().total();
  p.abuse_messages = sim.abuse_ledger().stats().total();
  p.total_bytes = sim.ledger().total_bytes();
  p.abuse_bytes = sim.abuse_ledger().total_bytes();

  // Overlay containment: mean out-degree of the designated abusers vs the
  // rest of the population (both averaged over the full roster — off-line
  // users hold zero links in either group, the same bias on both sides).
  std::uint64_t abuser_deg = 0, good_deg = 0, abusers = 0, good = 0;
  for (net::NodeId u = 0; u < sim.overlay().size(); ++u) {
    const std::uint64_t d = sim.overlay().lists(u).out().size();
    if (sim.is_abuser(u)) {
      abuser_deg += d;
      ++abusers;
    } else {
      good_deg += d;
      ++good;
    }
  }
  p.abuser_mean_degree =
      abusers ? static_cast<double>(abuser_deg) / static_cast<double>(abusers)
              : 0.0;
  p.good_mean_degree =
      good ? static_cast<double>(good_deg) / static_cast<double>(good) : 0.0;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  cli::FlagRegistry reg(
      "bench_abuse_sweep [--abuse-rate R] [--out PATH] [--csv PATH]",
      "Abuser containment vs amplification across abuser fractions, "
      "static vs dynamic, checker-certified; emits dsf-abuse-sweep-v1 "
      "JSON plus a one-abuser Chrome-trace case study.  Honours DSF_FAST "
      "/ DSF_SEED.");
  reg.add_double("abuse-rate", 0.5, "TTL-max searches per second per abuser")
      .add_string("out", "abuse_sweep.json", "JSON output path")
      .add_string("csv", "abuse_sweep_series.csv", "CSV output path")
      .add_string("trace-out", "abuse_case_study_trace.json",
                  "Chrome-trace path for the one-abuser case study");
  double abuse_rate = 0.5;
  try {
    reg.parse(argc, argv);
    if (reg.help_requested()) {
      std::fputs(reg.help().c_str(), stdout);
      return 0;
    }
    abuse_rate = reg.get_double("abuse-rate");
    if (!(abuse_rate > 0.0))
      throw std::invalid_argument("--abuse-rate: must be > 0");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  // A small federation keeps 2 x |fractions| full runs tractable; the
  // containment signal (degree divergence under --dynamic) shows within a
  // few simulated hours.
  gnutella::Config base = bench::paper_config(2);
  base.num_users = 250;
  base.catalog.num_songs = 50'000;
  if (bench::fast_mode()) {
    base.sim_hours = 1.0;
    base.warmup_hours = 0.25;
  } else {
    base.sim_hours = 6.0;
    base.warmup_hours = 1.0;
  }
  const std::vector<double> fractions = bench::fast_mode()
                                            ? std::vector<double>{0.0, 0.1}
                                            : std::vector<double>{0.0, 0.05,
                                                                  0.1, 0.2};
  bool clean = true;

  std::vector<SweepPoint> points;
  for (const bool dynamic : {false, true}) {
    gnutella::Config config = base;
    config.dynamic = dynamic;
    for (double f : fractions) {
      sim::AdversaryPlan plan;
      plan.abuser_fraction = f;
      plan.abuse_rate_per_s = f > 0.0 ? abuse_rate : 0.0;
      points.push_back(run_point(config, plan, &clean));
      const SweepPoint& p = points.back();
      std::printf(
          "%-7s f=%.2f: %3llu abusers, abuse share %5.1f%%, good hit "
          "%5.1f%%, degree %.2f vs %.2f\n",
          dynamic ? "dynamic" : "static", f,
          static_cast<unsigned long long>(p.adversary.abusers),
          100.0 * p.abuse_traffic_share(), 100.0 * p.good_hit_ratio(),
          p.abuser_mean_degree, p.good_mean_degree);
    }
  }

  // Case study: exactly one abuser (fraction 1/N rounds to one peer),
  // dynamic scheme, flight recorder on — the exported Chrome trace holds
  // every span and transmission of the single abuser's blast radius.
  obs::RingSink ring(1 << 20);
  gnutella::Config case_config = base;
  case_config.dynamic = true;
  sim::AdversaryPlan case_plan;
  case_plan.abuser_fraction = 1.0 / static_cast<double>(base.num_users);
  case_plan.abuse_rate_per_s = abuse_rate;
  const SweepPoint case_point =
      run_point(case_config, case_plan, &clean, &ring);
  const std::string trace_path = reg.get_string("trace-out");
  const auto records = ring.snapshot();
  if (!obs::write_chrome_trace_file(trace_path, records,
                                    ring.overwritten())) {
    std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
    return 1;
  }
  std::printf(
      "case study: 1 abuser, %llu abuse queries, %5.1f%% traffic share, "
      "%zu trace records -> %s\n",
      static_cast<unsigned long long>(case_point.adversary.abuse_queries),
      100.0 * case_point.abuse_traffic_share(), records.size(),
      trace_path.c_str());

  std::printf("\n-- abuse sweep: contain vs amplify (rate=%.2f q/s per "
              "abuser) --\n",
              abuse_rate);
  metrics::Table table({"scheme", "fraction", "abusers", "abuse_share",
                        "good_hit_ratio", "abuser_degree", "good_degree"});
  for (const SweepPoint& p : points)
    table.add_row({p.dynamic ? "dynamic" : "static",
                   std::to_string(p.fraction),
                   std::to_string(p.adversary.abusers),
                   std::to_string(p.abuse_traffic_share()),
                   std::to_string(p.good_hit_ratio()),
                   std::to_string(p.abuser_mean_degree),
                   std::to_string(p.good_mean_degree)});
  table.print(std::cout);

  const std::string csv_path = reg.get_string("csv");
  metrics::CsvWriter csv(
      csv_path, {"dynamic", "fraction", "abusers", "abuse_queries",
                 "abuse_hits", "queries", "hits", "total_messages",
                 "abuse_messages", "total_bytes", "abuse_bytes",
                 "abuser_mean_degree", "good_mean_degree"});
  for (const SweepPoint& p : points)
    csv.add_row({std::to_string(p.dynamic ? 1 : 0),
                 std::to_string(p.fraction),
                 std::to_string(p.adversary.abusers),
                 std::to_string(p.adversary.abuse_queries),
                 std::to_string(p.adversary.abuse_hits),
                 std::to_string(p.queries), std::to_string(p.hits),
                 std::to_string(p.total_messages),
                 std::to_string(p.abuse_messages),
                 std::to_string(p.total_bytes),
                 std::to_string(p.abuse_bytes),
                 std::to_string(p.abuser_mean_degree),
                 std::to_string(p.good_mean_degree)});
  std::printf("full sweep written to %s\n", csv_path.c_str());

  const std::string out_path = reg.get_string("out");
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  metrics::JsonEmitter j(out);
  j.begin_object();
  j.schema("abuse-sweep", 1);
  j.field("scenario", "gnutella");
  j.field("abuse_rate_per_s", abuse_rate, 3);
  j.field("peers", static_cast<std::uint64_t>(base.num_users));
  j.field("sim_hours", base.sim_hours, 2);
  j.field("warmup_hours", base.warmup_hours, 2);
  j.field("clean", clean);
  j.begin_array("points");
  for (const SweepPoint& p : points) {
    j.begin_object();
    j.field("abuser_fraction", p.fraction, 3);
    j.field("dynamic", p.dynamic);
    j.field("abusers", p.adversary.abusers);
    j.field("abuse_queries", p.adversary.abuse_queries);
    j.field("abuse_hits", p.adversary.abuse_hits);
    j.field("queries", p.queries);
    j.field("hits", p.hits);
    j.field("good_hit_ratio", p.good_hit_ratio(), 4);
    j.field("total_messages", p.total_messages);
    j.field("abuse_messages", p.abuse_messages);
    j.field("abuse_traffic_share", p.abuse_traffic_share(), 4);
    j.field("total_bytes", p.total_bytes);
    j.field("abuse_bytes", p.abuse_bytes);
    j.field("abuse_bytes_share", p.abuse_bytes_share(), 4);
    j.field("abuser_mean_degree", p.abuser_mean_degree, 3);
    j.field("good_mean_degree", p.good_mean_degree, 3);
    j.end_object();
  }
  j.end_array();
  j.begin_object("case_study");
  j.field("abusers", case_point.adversary.abusers);
  j.field("dynamic", true);
  j.field("abuse_queries", case_point.adversary.abuse_queries);
  j.field("abuse_traffic_share", case_point.abuse_traffic_share(), 4);
  j.field("trace_records", static_cast<std::uint64_t>(records.size()));
  j.field("trace_path", trace_path);
  j.end_object();
  j.end_object();
  j.finish();
  std::printf("wrote %s\n", out_path.c_str());

  if (!clean) {
    std::fprintf(stderr, "abuse sweep: invariant violations detected\n");
    return 4;
  }
  std::printf("all %zu runs checker-clean\n", points.size() + 1);
  return 0;
}
