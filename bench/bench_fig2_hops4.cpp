// Reproduces Figure 2 of Bakiras et al. (IPDPS'03): the same comparison as
// Figure 1 with the propagation limit at 4 hops.  With a much larger
// reachable set per query, adaptation has more beneficial neighbors to
// discover.
//
// Paper reference shapes: dynamic produces more hits (~6,600-7,000 vs
// ~5,600-6,000 per hour) while cutting the message overhead roughly in
// half (~0.8-0.9M vs ~1.8M messages/hour), because clustered neighborhoods
// satisfy queries at the first hop and propagation stops there.

#include <cstdio>

#include "fig_common.h"

int main() {
  using namespace dsf;
  const gnutella::Config config = bench::paper_config(/*max_hops=*/4);

  std::printf("Figure 2 — dynamic vs static Gnutella, hops=4 "
              "(%u users, %.0fh horizon)\n",
              config.num_users, config.sim_hours);
  std::printf("running static baseline...\n");
  const auto sta = gnutella::Simulation(config.as_static()).run();
  std::printf("running dynamic scheme...\n");
  const auto dyn = gnutella::Simulation(config).run();

  bench::print_hourly_figure("fig2", config, sta, dyn);

  const double message_ratio = static_cast<double>(dyn.total_messages()) /
                               static_cast<double>(sta.total_messages());
  std::printf("\nmessage overhead ratio dynamic/static: %.2f "
              "(paper: ~0.5)\n", message_ratio);
  return dyn.total_hits() > sta.total_hits() && message_ratio < 1.0 ? 0 : 1;
}
