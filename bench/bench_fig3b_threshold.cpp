// Reproduces Figure 3(b) of Bakiras et al. (IPDPS'03): total hits over the
// 4-day run as a function of the reconfiguration threshold T ∈ {1, 2, 4,
// 8, 16}, against the static baseline, at hop limit 3 (the paper's Fig
// 3(b) values match the hops=3 annotations of Fig 3(a); see DESIGN.md).
//
// Paper reference shape: T=1 performs like static (the node latches onto
// whichever peer answered first, regardless of shared interest); small
// T ≥ 2 is the sweet spot; very large T leaves too few reconfigurations
// within a ~3 h session and decays back toward static.

#include <cstdio>
#include <iostream>

#include "des/sweep.h"
#include "fig_common.h"

int main() {
  using namespace dsf;
  constexpr int kHops = 3;
  const std::uint32_t thresholds[] = {1, 2, 4, 8, 16};

  std::printf("Figure 3(b) — total results vs reconfiguration threshold "
              "(hops=%d)\n", kHops);

  const gnutella::Config base = bench::paper_config(kHops);

  // One static baseline + one dynamic run per threshold, swept in
  // parallel across the available cores.
  std::vector<gnutella::Config> jobs{base.as_static()};
  for (std::uint32_t t : thresholds) {
    gnutella::Config config = base;
    config.reconfig_threshold = t;
    jobs.push_back(config);
  }
  std::printf("  running %zu simulations on %u threads...\n", jobs.size(),
              des::sweep_threads(jobs.size()));
  const auto results = des::parallel_map(
      jobs, [](const gnutella::Config& c) { return gnutella::Simulation(c).run(); });
  const auto& sta = results[0];

  metrics::Table table({"threshold T", "Gnutella", "Dynamic_Gnutella"});
  const std::string csv_path = "fig3b_series.csv";
  metrics::CsvWriter csv(csv_path, {"threshold", "total_static",
                                    "total_dynamic"});

  std::uint64_t best = 0, at_t1 = 0, at_t16 = 0;
  for (std::size_t i = 0; i < std::size(thresholds); ++i) {
    const std::uint32_t t = thresholds[i];
    const auto& dyn = results[i + 1];
    table.add_row({std::to_string(t),
                   metrics::fmt_count(sta.total_results()),
                   metrics::fmt_count(dyn.total_results())});
    csv.add_row({std::to_string(t), std::to_string(sta.total_results()),
                 std::to_string(dyn.total_results())});
    best = std::max(best, dyn.total_results());
    if (t == 1) at_t1 = dyn.total_results();
    if (t == 16) at_t16 = dyn.total_results();
  }

  std::printf("\n");
  table.print(std::cout);
  std::printf("\nseries written to %s\n", csv_path.c_str());

  // Shape check: the best small-T point beats both extremes of the sweep
  // and the static baseline.
  const bool shape = best > at_t1 && best > at_t16 &&
                     best > sta.total_results();
  std::printf("shape (unimodal with interior optimum beating static): %s\n",
              shape ? "HOLDS" : "VIOLATED");
  return shape ? 0 : 1;
}
