// Reproduces Figure 3(a) of Bakiras et al. (IPDPS'03): mean delay from
// query issue to the arrival of the FIRST result, for terminating
// conditions of 1–4 hops, static vs dynamic; each column annotated with
// the total number of results obtained (the paper's numbers above the
// bars: static 54,392 / 173,493 / 344,726 / 517,819 — dynamic — /
// 187,394 / 399,968 / 545,681).
//
// Paper reference shape: static delay grows steeply with the hop limit
// (most results arrive from far nodes) while dynamic stays low (results
// come from nearby adapted neighbors), and dynamic collects MORE results
// at every hop limit.

#include <cstdio>
#include <iostream>

#include "des/sweep.h"
#include "fig_common.h"

int main() {
  using namespace dsf;
  std::printf("Figure 3(a) — mean first-result delay vs hop limit\n");

  metrics::Table table({"hops", "static delay (ms)", "static p95 (ms)",
                        "static results", "dynamic delay (ms)",
                        "dynamic p95 (ms)", "dynamic results"});
  const std::string csv_path = "fig3a_series.csv";
  metrics::CsvWriter csv(csv_path,
                         {"hops", "delay_ms_static", "results_static",
                          "delay_ms_dynamic", "results_dynamic"});

  // All 8 runs are independent: sweep them across the available cores.
  std::vector<gnutella::Config> jobs;
  for (int hops = 1; hops <= 4; ++hops) {
    jobs.push_back(bench::paper_config(hops).as_static());
    jobs.push_back(bench::paper_config(hops));
  }
  std::printf("  running %zu simulations on %u threads...\n", jobs.size(),
              des::sweep_threads(jobs.size()));
  const auto results = des::parallel_map(
      jobs, [](const gnutella::Config& c) { return gnutella::Simulation(c).run(); });

  bool shape_holds = true;
  double prev_static_delay = 0.0;
  for (int hops = 1; hops <= 4; ++hops) {
    const auto& sta = results[(hops - 1) * 2];
    const auto& dyn = results[(hops - 1) * 2 + 1];

    const double sd = sta.first_result_delay_s.mean() * 1000.0;
    const double dd = dyn.first_result_delay_s.mean() * 1000.0;
    table.add_row({std::to_string(hops), metrics::fmt(sd, 0),
                   metrics::fmt(
                       sta.first_result_delay_hist.quantile(0.95) * 1000, 0),
                   metrics::fmt_count(sta.total_results()),
                   metrics::fmt(dd, 0),
                   metrics::fmt(
                       dyn.first_result_delay_hist.quantile(0.95) * 1000, 0),
                   metrics::fmt_count(dyn.total_results())});
    csv.add_row({std::to_string(hops), metrics::fmt(sd, 2),
                 std::to_string(sta.total_results()), metrics::fmt(dd, 2),
                 std::to_string(dyn.total_results())});

    if (hops > 1) {
      shape_holds &= dd < sd;                // dynamic is closer
      shape_holds &= sd > prev_static_delay;  // static delay grows
    }
    // Dynamic collects more results while the flood is narrow; at hops=4
    // our responder density (~5 results per satisfied query, vs ~1 in the
    // paper) lets the static flood pile up redundant results, so the
    // paper's hops-4 annotation ordering is not expected to hold here —
    // see EXPERIMENTS.md.
    if (hops >= 2 && hops <= 3)
      shape_holds &= dyn.total_results() > sta.total_results();
    prev_static_delay = sd;
  }

  std::printf("\n");
  table.print(std::cout);
  std::printf("\nseries written to %s\n", csv_path.c_str());
  std::printf("shape (static delay grows, dynamic lower & more results): "
              "%s\n", shape_holds ? "HOLDS" : "VIOLATED");
  return shape_holds ? 0 : 1;
}
