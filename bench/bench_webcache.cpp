// Bench for the cooperative web-caching scenario: static random outgoing
// lists vs framework-adaptive lists (pure asymmetric relations, Algo-2
// exploration + Algo-3 update), reporting hit rates and latency — the
// quantities §3.4 names as the web-caching benefit ingredients.

#include <cstdio>
#include <iostream>

#include "metrics/table.h"
#include "webcache/webcache_sim.h"

int main() {
  using namespace dsf;
  webcache::WebCacheConfig config;
  config.sim_hours = 3.0;
  config.warmup_hours = 0.5;

  std::printf("Web caching — static vs adaptive neighbor lists "
              "(%u proxies, %.0fh)\n", config.num_proxies, config.sim_hours);

  auto static_config = config;
  static_config.dynamic = false;
  auto hier_static = config;
  hier_static.num_parents = 8;
  hier_static.dynamic = false;
  auto hier_dynamic = hier_static;
  hier_dynamic.dynamic = true;

  const auto sta = webcache::WebCacheSim(static_config).run();
  const auto dyn = webcache::WebCacheSim(config).run();
  const auto hs = webcache::WebCacheSim(hier_static).run();
  const auto hd = webcache::WebCacheSim(hier_dynamic).run();

  metrics::Table table({"scheme", "neighbor hit rate", "origin fetches",
                        "mean latency (ms)", "control msgs"});
  const auto row = [&table](const char* name,
                            const webcache::WebCacheResult& r) {
    table.add_row({name, metrics::fmt(r.neighbor_hit_rate() * 100, 1) + "%",
                   metrics::fmt_count(r.origin_fetches),
                   metrics::fmt(r.latency_s.mean() * 1000, 0),
                   metrics::fmt_count(r.traffic.control_traffic())});
  };
  row("flat mesh, static", sta);
  row("flat mesh, dynamic", dyn);
  row("hierarchy, random parents", hs);
  row("hierarchy, adaptive parents", hd);
  std::printf("\n");
  table.print(std::cout);
  std::printf(
      "\nHierarchy = 8 top-level proxies with 4x caches, warmed by leaf "
      "misses\n(the Squid configuration cited by the paper's section 3.1 "
      "as the canonical\npure-asymmetric relation).\n");
  return dyn.neighbor_hit_rate() > sta.neighbor_hit_rate() &&
                 hd.neighbor_hit_rate() > hs.neighbor_hit_rate()
             ? 0
             : 1;
}
