// Ablation: the reconfiguration-protocol knobs that control how aggressive
// adaptation is, measured where they matter most (hops=4, where the
// reachable set is large and over-clustering can destroy it):
//
//  * max_exchanges_per_reconfig — §4.3 notes only ONE neighbor is exchanged
//    per reconfiguration; replacing the whole neighborhood at once
//    over-clusters the overlay and loses the side-category queries.
//  * eviction_refill_floor — §4.1's "evicted nodes wait" rule vs degrees
//    of eager reconnection; pure waiting leaves a standing degree deficit
//    (the always-accept protocol evicts tens of times per node-hour).
//  * exclude_owned_songs — whether Send Query floods the raw preference
//    draw (Algo 5's literal pseudo-code) or only songs the user lacks.

#include <cstdio>
#include <iostream>

#include "fig_common.h"

int main() {
  using namespace dsf;
  gnutella::Config base = bench::paper_config(/*max_hops=*/4);
  base.num_users = 1000;
  base.catalog.num_songs = 100'000;
  base.sim_hours = 48.0;
  base.warmup_hours = 12.0;

  std::printf("Ablation — reconfiguration protocol knobs (hops=%d, %u "
              "users, %.0fh)\n", base.max_hops, base.num_users,
              base.sim_hours);
  const auto sta = gnutella::Simulation(base.as_static()).run();

  struct Row {
    const char* name;
    std::uint32_t exchanges;
    std::uint32_t refill_floor;
    bool exclude_owned;
  };
  const Row rows[] = {
      {"defaults (1 exchange, floor 3)", 1, 3, false},
      {"full-neighborhood replacement", UINT32_MAX, 3, false},
      {"pure waiting after eviction", 1, 0, false},
      {"eager refill after eviction", 1, 4, false},
      {"queries exclude owned songs", 1, 3, true},
  };

  metrics::Table table({"variant", "hits", "vs static", "messages",
                        "vs static", "mean delay (ms)"});
  auto pct = [](std::uint64_t v, std::uint64_t base_v) {
    return metrics::fmt(
               100.0 * (static_cast<double>(v) / static_cast<double>(base_v) -
                        1.0),
               1) + "%";
  };
  table.add_row({"static baseline", metrics::fmt_count(sta.total_hits()),
                 "-", metrics::fmt_count(sta.total_messages()), "-",
                 metrics::fmt(sta.first_result_delay_s.mean() * 1000, 0)});
  for (const Row& row : rows) {
    gnutella::Config c = base;
    c.max_exchanges_per_reconfig = row.exchanges;
    c.eviction_refill_floor = row.refill_floor;
    c.exclude_owned_songs = row.exclude_owned;
    const auto r = gnutella::Simulation(c).run();
    // The exclude-owned variant changes the query stream, so its static
    // reference differs; report it against its own baseline.
    std::uint64_t hits_ref = sta.total_hits();
    std::uint64_t msgs_ref = sta.total_messages();
    if (row.exclude_owned) {
      gnutella::Config cs = c.as_static();
      const auto s2 = gnutella::Simulation(cs).run();
      hits_ref = s2.total_hits();
      msgs_ref = s2.total_messages();
    }
    table.add_row({row.name, metrics::fmt_count(r.total_hits()),
                   pct(r.total_hits(), hits_ref),
                   metrics::fmt_count(r.total_messages()),
                   pct(r.total_messages(), msgs_ref),
                   metrics::fmt(r.first_result_delay_s.mean() * 1000, 0)});
  }
  std::printf("\n");
  table.print(std::cout);
  std::printf(
      "\nReading: one-exchange reconfiguration with a connectivity floor "
      "keeps the\nreachable set intact (hits up, messages down); full "
      "replacement or pure\nwaiting trade one of the two away.\n");
  return 0;
}
