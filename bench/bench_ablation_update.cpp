// Ablation: the two symmetric-update variants of §3.4 — (i) the invited
// node always accepts (the case study's choice), vs (ii) benefit-gated
// acceptance, where the invited node only accepts inviters that beat its
// worst current neighbor.  Also toggles statistics persistence across
// sessions (our documented interpretation; see DESIGN.md).

#include <cstdio>
#include <iostream>

#include "fig_common.h"

int main() {
  using namespace dsf;
  gnutella::Config base = bench::paper_config(/*max_hops=*/2);
  base.num_users = 800;
  base.catalog.num_songs = 80'000;
  base.sim_hours = 36.0;
  base.warmup_hours = 6.0;

  std::printf("Ablation — symmetric update variants (hops=%d, %u users, "
              "%.0fh)\n", base.max_hops, base.num_users, base.sim_hours);
  const auto sta = gnutella::Simulation(base.as_static()).run();

  metrics::Table table({"variant", "total hits", "invitations accepted",
                        "evictions", "messages"});
  table.add_row({"static baseline", metrics::fmt_count(sta.total_hits()),
                 "-", "-", metrics::fmt_count(sta.total_messages())});

  struct Row {
    const char* name;
    core::InvitationPolicy policy;
    bool persist;
    bool damp;
  };
  const Row rows[] = {
      {"always-accept (paper)", core::InvitationPolicy::kAlwaysAccept, true,
       true},
      {"benefit-gated", core::InvitationPolicy::kBenefitGated, true, true},
      {"summary-gated (library digests)",
       core::InvitationPolicy::kSummaryGated, true, true},
      {"trial period (30 min probation)",
       core::InvitationPolicy::kTrialPeriod, true, true},
      {"always-accept, stats reset on login",
       core::InvitationPolicy::kAlwaysAccept, false, true},
      {"always-accept, no cascade damping",
       core::InvitationPolicy::kAlwaysAccept, true, false},
  };
  for (const Row& row : rows) {
    gnutella::Config c = base;
    c.invitation_policy = row.policy;
    c.persist_stats_across_sessions = row.persist;
    c.damp_cascades = row.damp;
    const auto r = gnutella::Simulation(c).run();
    table.add_row({row.name, metrics::fmt_count(r.total_hits()),
                   metrics::fmt_count(r.invitations_accepted),
                   metrics::fmt_count(r.evictions),
                   metrics::fmt_count(r.total_messages())});
  }
  std::printf("\n");
  table.print(std::cout);
  return 0;
}
