// Digital-library federation: the §3.1 list-organization trade-off.
// All-to-all lists give perfect recall but per-query message cost that
// grows with the federation ("applicable only for small values of N");
// bounded adaptive lists keep the cost flat and recover most of the
// recall by pointing at the repositories that keep answering.  The sweep
// locates the crossover.

#include <cstdio>
#include <iostream>

#include "des/sweep.h"
#include "diglib/diglib_sim.h"
#include "metrics/table.h"

int main() {
  using namespace dsf;
  const std::uint32_t sizes[] = {8, 16, 32, 64, 128};

  std::printf("Digital libraries — all-to-all vs bounded lists vs adaptive\n");

  std::vector<diglib::DigLibConfig> jobs;
  for (std::uint32_t n : sizes) {
    for (const auto mode : {diglib::ListMode::kAllToAll,
                            diglib::ListMode::kStatic,
                            diglib::ListMode::kAdaptive}) {
      diglib::DigLibConfig c;
      c.num_repositories = n;
      c.mode = mode;
      c.sim_hours = 2.0;
      c.warmup_hours = 0.25;
      jobs.push_back(c);
    }
  }
  std::printf("  running %zu simulations on %u threads...\n\n", jobs.size(),
              des::sweep_threads(jobs.size()));
  const auto results = des::parallel_map(jobs, [](const auto& c) {
    return diglib::DigLibSim(c).run();
  });

  metrics::Table table({"N", "hit%(all)", "hit%(static)", "hit%(adaptive)",
                        "recall(all)", "recall(static)", "recall(adaptive)",
                        "msg/q(all)", "msg/q(static)", "msg/q(adaptive)"});
  std::size_t i = 0;
  bool adaptive_wins_at_scale = true;
  for (std::uint32_t n : sizes) {
    const auto& all = results[i++];
    const auto& sta = results[i++];
    const auto& ada = results[i++];
    table.add_row({std::to_string(n),
                   metrics::fmt(all.hit_rate() * 100, 1),
                   metrics::fmt(sta.hit_rate() * 100, 1),
                   metrics::fmt(ada.hit_rate() * 100, 1),
                   metrics::fmt(all.recall(), 3),
                   metrics::fmt(sta.recall(), 3),
                   metrics::fmt(ada.recall(), 3),
                   metrics::fmt(all.messages_per_query.mean(), 1),
                   metrics::fmt(sta.messages_per_query.mean(), 1),
                   metrics::fmt(ada.messages_per_query.mean(), 1)});
    // Adaptation needs topic scarcity: with N >= 4 topics' worth of
    // repositories, same-topic peers are rare in a random sample.
    if (n >= 128) adaptive_wins_at_scale &= ada.hit_rate() > sta.hit_rate();
  }
  table.print(std::cout);
  std::printf(
      "\nAll-to-all answers everything in one hop but costs N-1 messages "
      "per query —\n\"applicable only for small N\" (§3.1).  Bounded lists "
      "hold the cost flat;\nadaptive ones recover the hit rate on tail "
      "documents once the federation is\nlarge enough that a random list "
      "rarely contains a same-topic repository.\nRaw recall tracks distinct "
      "reach (popular documents live everywhere), so it\nseparates "
      "all-to-all from bounded lists but not static from adaptive.\n");
  std::printf("adaptive hit rate beats static at N >= 128: %s\n",
              adaptive_wins_at_scale ? "yes" : "NO");
  return adaptive_wins_at_scale ? 0 : 1;
}
