// Perf-regression suite: the three tiers of the simulator's hot path —
// raw event-queue operations, the flood fan-out loop, and a full
// Gnutella simulated day — timed wall-clock and emitted as one JSON
// document (schema dsf-perf-suite-v1) that CI archives per commit.
// Comparing the `items_per_s` fields across commits is the regression
// check; BENCH_PR3.json at the repo root pins the numbers this tree
// produced when the zero-allocation queue landed.
//
// Usage: bench_perf_suite [--quick] [--out PATH] [--trace off|null|ring]
//                         [--repeat N] [--shards N]
//   --quick   ~10x smaller budgets, for CI smoke runs
//   --out     JSON output path (default: perf_suite.json in the cwd)
//   --trace   attach the flight recorder to the engine benches; CI runs
//             the suite under ring and null and asserts the ring run's
//             queue-ops stay within 5%
//   --repeat  best-of-N per benchmark, to damp runner noise

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "cli/flag_registry.h"
#include "core/flood_search.h"
#include "des/event_queue.h"
#include "des/rng.h"
#include "gnutella/config.h"
#include "gnutella/simulation.h"
#include "metrics/json_emitter.h"
#include "net/delay_model.h"
#include "obs/process_stats.h"
#include "obs/ring_sink.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Result {
  std::string name;
  std::uint64_t items = 0;  // events / floods / messages processed
  double wall_s = 0.0;
  double items_per_s = 0.0;
  std::string detail;  // free-form scenario parameters
};

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Best-of-N wrapper: reruns `fn` and keeps the fastest run, so CI's
/// overhead comparisons measure the code, not the noisy neighbor.
template <typename Fn>
Result best_of(int repeat, Fn&& fn) {
  Result best = fn();
  for (int i = 1; i < repeat; ++i) {
    Result r = fn();
    if (r.items_per_s > best.items_per_s) best = std::move(r);
  }
  return best;
}

/// Hold-model schedule+pop throughput at a standing population, with the
/// representative ~24-byte dispatched capture (the closure size decides
/// whether the callback type allocates — see bench_micro_des.cpp).
Result run_queue_ops(std::size_t population, std::uint64_t ops) {
  dsf::des::EventQueue q;
  dsf::des::Rng rng(1);
  std::uint64_t acc = 0;
  std::uint64_t* sink = &acc;
  for (std::size_t i = 0; i < population; ++i) {
    const double t = rng.uniform(0.0, 100.0);
    const auto tag = static_cast<std::uint32_t>(i);
    q.schedule(t, [sink, t, tag] {
      *sink += static_cast<std::uint64_t>(t) + tag;
    });
  }
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    auto [t, cb] = q.pop();
    cb();
    const double d = rng.uniform(0.0, 100.0);
    const auto tag = static_cast<std::uint32_t>(acc);
    q.schedule(t + d, [sink, d, tag] {
      *sink += static_cast<std::uint64_t>(d) + tag;
    });
  }
  const double wall = seconds_since(t0);
  Result r;
  r.name = "queue_ops_p" + std::to_string(population);
  r.items = ops;
  r.wall_s = wall;
  r.items_per_s = static_cast<double>(ops) / wall;
  r.detail = "standing population " + std::to_string(population) +
             ", schedule+pop+dispatch per item";
  if (acc == 0) r.detail += " (!)";  // keep the accumulator observable
  return r;
}

/// Timeout churn: schedule far ahead, cancel immediately.
Result run_queue_cancel(std::uint64_t ops) {
  dsf::des::EventQueue q;
  std::uint64_t acc = 0;
  std::uint64_t* sink = &acc;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    const auto id = q.schedule(1.0e6, [sink] { ++*sink; });
    if (!q.cancel(id)) ++acc;
  }
  const double wall = seconds_since(t0);
  Result r;
  r.name = "queue_cancel";
  r.items = ops;
  r.wall_s = wall;
  r.items_per_s = static_cast<double>(ops) / wall;
  r.detail = "schedule+cancel per item";
  return r;
}

/// Bulk fan-out insertion then drain, the batched engine dispatch shape.
Result run_queue_batch(std::size_t fanout, std::uint64_t rounds) {
  dsf::des::EventQueue q;
  dsf::des::Rng rng(11);
  std::uint64_t acc = 0;
  std::uint64_t* sink = &acc;
  double now = 0.0;
  const auto t0 = Clock::now();
  for (std::uint64_t round = 0; round < rounds; ++round) {
    q.schedule_batch(fanout, [&](std::size_t i) {
      const double d = rng.uniform(0.0, 100.0);
      return std::pair<dsf::des::SimTime, dsf::des::EventQueue::Callback>(
          now + d, [sink, d, i] {
            *sink += static_cast<std::uint64_t>(d) + i;
          });
    });
    for (std::size_t i = 0; i < fanout; ++i) {
      auto [t, cb] = q.pop();
      cb();
      now = t;
    }
  }
  const double wall = seconds_since(t0);
  Result r;
  r.name = "queue_batch_f" + std::to_string(fanout);
  r.items = rounds * fanout;
  r.wall_s = wall;
  r.items_per_s = static_cast<double>(r.items) / wall;
  r.detail = "schedule_batch fan-out " + std::to_string(fanout) + " + drain";
  return r;
}

/// The flood expansion over a 2000-node overlay — the inner loop of every
/// Gnutella figure bench.  Items are query messages, the paper's own
/// overhead unit.
Result run_flood_fanout(std::uint64_t floods) {
  const std::size_t n = 2000;
  dsf::des::Rng rng(8);
  std::vector<std::vector<dsf::net::NodeId>> adj(n);
  for (dsf::net::NodeId u = 0; u < n; ++u) {
    while (adj[u].size() < 4) {
      const auto v = static_cast<dsf::net::NodeId>(rng.uniform_int(n));
      if (v != u && adj[v].size() < 6) {
        adj[u].push_back(v);
        adj[v].push_back(u);
      }
    }
  }
  std::vector<bool> holder(n);
  for (std::size_t i = 0; i < n; ++i) holder[i] = rng.bernoulli(0.05);

  dsf::core::VisitStamp stamps(n);
  dsf::core::SearchScratch scratch;
  dsf::core::SearchParams params;
  params.max_hops = 4;
  dsf::des::Rng delay_rng(9);

  std::uint64_t messages = 0;
  dsf::net::NodeId initiator = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t f = 0; f < floods; ++f) {
    const auto out = dsf::core::flood_search(
        initiator, params,
        [&](dsf::net::NodeId x) -> const std::vector<dsf::net::NodeId>& {
          return adj[x];
        },
        [&](dsf::net::NodeId x) { return static_cast<bool>(holder[x]); },
        [&](dsf::net::NodeId, dsf::net::NodeId) {
          return delay_rng.uniform();
        },
        stamps, scratch);
    messages += out.query_messages;
    initiator = (initiator + 1) % n;
  }
  const double wall = seconds_since(t0);
  Result r;
  r.name = "flood_fanout";
  r.items = messages;
  r.wall_s = wall;
  r.items_per_s = static_cast<double>(messages) / wall;
  r.detail = std::to_string(floods) + " floods, hops=4, 2000 nodes; " +
             "items are query messages";
  return r;
}

/// End-to-end: one simulated Gnutella day (or a short slice in quick
/// mode) through the full engine stack.  Items are total wire messages.
/// `sink` (optional) attaches the flight recorder — the engine-tier
/// overhead measurement.
Result run_gnutella_day(bool quick, dsf::obs::TraceSink* sink,
                        std::uint32_t shards) {
  dsf::gnutella::Config config;
  config.sim_hours = quick ? 2.0 : 24.0;
  config.warmup_hours = quick ? 0.5 : 6.0;
  config.num_users = quick ? 500 : 2000;
  config.max_hops = 2;
  config.seed = 42;
  const auto t0 = Clock::now();
  dsf::gnutella::Simulation sim(config);
  if (shards > 1) sim.set_shards(shards);
  if (sink != nullptr) sim.set_trace_sink(sink);
  const auto result = sim.run();
  const double wall = seconds_since(t0);
  Result r;
  r.name = shards > 1 ? "gnutella_day_s" + std::to_string(shards)
                      : "gnutella_day";
  r.items = result.traffic.total();
  r.wall_s = wall;
  r.items_per_s = static_cast<double>(r.items) / wall;
  r.detail = std::to_string(config.num_users) + " users, " +
             std::to_string(config.sim_hours) +
             " sim-hours; items are wire messages";
  if (shards > 1) r.detail += "; " + std::to_string(shards) + " shards";
  if (sink != nullptr) r.detail += "; flight recorder attached";
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  dsf::cli::FlagRegistry reg(
      "bench_perf_suite [--quick] [--out PATH] [--trace off|null|ring]",
      "Hot-path perf suite; emits dsf-perf-suite-v1 JSON.");
  reg.add_bool("quick", false, "~10x smaller budgets, for CI smoke runs")
      .add_string("out", "perf_suite.json", "JSON output path")
      .add_string("trace", "off",
                  "flight recorder on the engine benches: off | null | ring")
      .add_int("repeat", 1, "best-of-N per benchmark, damps runner noise")
      .add_int("shards", 1,
               "worker shards for the engine bench (1 = serial; N > 1 adds "
               "a sharded gnutella_day_sN measurement)");
  reg.alias("j", "shards");
  try {
    reg.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (reg.help_requested()) {
    std::fputs(reg.help().c_str(), stdout);
    return 0;
  }

  const bool quick = reg.get_bool("quick");
  const std::string out_path = reg.get_string("out");
  const std::string trace_mode = reg.get_string("trace");
  const int repeat = static_cast<int>(reg.get_int("repeat"));
  if (trace_mode != "off" && trace_mode != "null" && trace_mode != "ring") {
    std::fprintf(stderr, "error: --trace: expected off, null or ring\n");
    return 2;
  }
  if (repeat < 1) {
    std::fprintf(stderr, "error: --repeat: must be >= 1\n");
    return 2;
  }
  const std::int64_t shards_arg = reg.get_int("shards");
  if (shards_arg < 1 ||
      shards_arg > (quick ? 500 : 2000)) {  // the bench population
    std::fprintf(stderr,
                 "error: --shards: must be >= 1 and <= the bench's peer "
                 "count (%d)\n",
                 quick ? 500 : 2000);
    return 2;
  }
  const auto shards = static_cast<std::uint32_t>(shards_arg);

  // The ring outlives every repetition; the point is steady-state
  // recording cost, not allocation.
  dsf::obs::RingSink ring;
  dsf::obs::TraceSink* sink = nullptr;
  if (trace_mode == "ring") sink = &ring;
  if (trace_mode == "null") sink = &dsf::obs::NullSink::instance();

  const std::uint64_t ops = quick ? 200'000 : 2'000'000;
  std::vector<Result> results;
  results.push_back(best_of(repeat, [&] { return run_queue_ops(1024, ops); }));
  results.push_back(
      best_of(repeat, [&] { return run_queue_ops(16384, ops); }));
  results.push_back(best_of(
      repeat, [&] { return run_queue_ops(262144, quick ? 200'000 : 1'000'000); }));
  results.push_back(best_of(repeat, [&] { return run_queue_cancel(ops); }));
  results.push_back(
      best_of(repeat, [&] { return run_queue_batch(16, ops / 16); }));
  results.push_back(
      best_of(repeat, [&] { return run_flood_fanout(quick ? 2'000 : 20'000); }));
  results.push_back(
      best_of(repeat, [&] { return run_gnutella_day(quick, sink, 1); }));
  if (shards > 1)
    results.push_back(best_of(
        repeat, [&] { return run_gnutella_day(quick, sink, shards); }));

  for (const Result& r : results)
    std::printf("%-18s %12llu items  %8.3f s  %14.0f items/s\n",
                r.name.c_str(), static_cast<unsigned long long>(r.items),
                r.wall_s, r.items_per_s);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  dsf::metrics::JsonEmitter j(out);
  j.begin_object();
  j.schema("perf-suite", 1);
  j.field("quick", quick);
  j.field("trace", trace_mode);
  j.field("repeat", repeat);
  j.field("shards", static_cast<std::uint64_t>(shards));
  j.field("peak_rss_bytes", dsf::obs::peak_rss_bytes());
  if (trace_mode == "ring") j.field("trace_records", ring.total());
  j.begin_array("results");
  for (const Result& r : results) {
    j.begin_object();
    j.field("name", r.name);
    j.field("items", r.items);
    j.field("wall_s", r.wall_s, 6);
    j.field("items_per_s", r.items_per_s, 1);
    j.field("detail", r.detail);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  j.finish();
  if (!out) {
    std::fprintf(stderr, "write to %s failed\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
