// Perf-regression suite: the three tiers of the simulator's hot path —
// raw event-queue operations, the flood fan-out loop, and a full
// Gnutella simulated day — timed wall-clock and emitted as one JSON
// document (schema dsf-perf-suite-v1) that CI archives per commit.
// Comparing the `items_per_s` fields across commits is the regression
// check; BENCH_PR3.json at the repo root pins the numbers this tree
// produced when the zero-allocation queue landed.
//
// Usage: bench_perf_suite [--quick] [--out PATH]
//   --quick  ~10x smaller budgets, for CI smoke runs
//   --out    JSON output path (default: perf_suite.json in the cwd)

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "core/flood_search.h"
#include "des/event_queue.h"
#include "des/rng.h"
#include "gnutella/config.h"
#include "gnutella/simulation.h"
#include "net/delay_model.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Result {
  std::string name;
  std::uint64_t items = 0;  // events / floods / messages processed
  double wall_s = 0.0;
  double items_per_s = 0.0;
  std::string detail;  // free-form scenario parameters
};

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Peak resident set in bytes (0 when the platform offers no getrusage).
std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  rusage u{};
  if (getrusage(RUSAGE_SELF, &u) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(u.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(u.ru_maxrss) * 1024u;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

/// Hold-model schedule+pop throughput at a standing population, with the
/// representative ~24-byte dispatched capture (the closure size decides
/// whether the callback type allocates — see bench_micro_des.cpp).
Result run_queue_ops(std::size_t population, std::uint64_t ops) {
  dsf::des::EventQueue q;
  dsf::des::Rng rng(1);
  std::uint64_t acc = 0;
  std::uint64_t* sink = &acc;
  for (std::size_t i = 0; i < population; ++i) {
    const double t = rng.uniform(0.0, 100.0);
    const auto tag = static_cast<std::uint32_t>(i);
    q.schedule(t, [sink, t, tag] {
      *sink += static_cast<std::uint64_t>(t) + tag;
    });
  }
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    auto [t, cb] = q.pop();
    cb();
    const double d = rng.uniform(0.0, 100.0);
    const auto tag = static_cast<std::uint32_t>(acc);
    q.schedule(t + d, [sink, d, tag] {
      *sink += static_cast<std::uint64_t>(d) + tag;
    });
  }
  const double wall = seconds_since(t0);
  Result r;
  r.name = "queue_ops_p" + std::to_string(population);
  r.items = ops;
  r.wall_s = wall;
  r.items_per_s = static_cast<double>(ops) / wall;
  r.detail = "standing population " + std::to_string(population) +
             ", schedule+pop+dispatch per item";
  if (acc == 0) r.detail += " (!)";  // keep the accumulator observable
  return r;
}

/// Timeout churn: schedule far ahead, cancel immediately.
Result run_queue_cancel(std::uint64_t ops) {
  dsf::des::EventQueue q;
  std::uint64_t acc = 0;
  std::uint64_t* sink = &acc;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) {
    const auto id = q.schedule(1.0e6, [sink] { ++*sink; });
    if (!q.cancel(id)) ++acc;
  }
  const double wall = seconds_since(t0);
  Result r;
  r.name = "queue_cancel";
  r.items = ops;
  r.wall_s = wall;
  r.items_per_s = static_cast<double>(ops) / wall;
  r.detail = "schedule+cancel per item";
  return r;
}

/// Bulk fan-out insertion then drain, the batched engine dispatch shape.
Result run_queue_batch(std::size_t fanout, std::uint64_t rounds) {
  dsf::des::EventQueue q;
  dsf::des::Rng rng(11);
  std::uint64_t acc = 0;
  std::uint64_t* sink = &acc;
  double now = 0.0;
  const auto t0 = Clock::now();
  for (std::uint64_t round = 0; round < rounds; ++round) {
    q.schedule_batch(fanout, [&](std::size_t i) {
      const double d = rng.uniform(0.0, 100.0);
      return std::pair<dsf::des::SimTime, dsf::des::EventQueue::Callback>(
          now + d, [sink, d, i] {
            *sink += static_cast<std::uint64_t>(d) + i;
          });
    });
    for (std::size_t i = 0; i < fanout; ++i) {
      auto [t, cb] = q.pop();
      cb();
      now = t;
    }
  }
  const double wall = seconds_since(t0);
  Result r;
  r.name = "queue_batch_f" + std::to_string(fanout);
  r.items = rounds * fanout;
  r.wall_s = wall;
  r.items_per_s = static_cast<double>(r.items) / wall;
  r.detail = "schedule_batch fan-out " + std::to_string(fanout) + " + drain";
  return r;
}

/// The flood expansion over a 2000-node overlay — the inner loop of every
/// Gnutella figure bench.  Items are query messages, the paper's own
/// overhead unit.
Result run_flood_fanout(std::uint64_t floods) {
  const std::size_t n = 2000;
  dsf::des::Rng rng(8);
  std::vector<std::vector<dsf::net::NodeId>> adj(n);
  for (dsf::net::NodeId u = 0; u < n; ++u) {
    while (adj[u].size() < 4) {
      const auto v = static_cast<dsf::net::NodeId>(rng.uniform_int(n));
      if (v != u && adj[v].size() < 6) {
        adj[u].push_back(v);
        adj[v].push_back(u);
      }
    }
  }
  std::vector<bool> holder(n);
  for (std::size_t i = 0; i < n; ++i) holder[i] = rng.bernoulli(0.05);

  dsf::core::VisitStamp stamps(n);
  dsf::core::SearchScratch scratch;
  dsf::core::SearchParams params;
  params.max_hops = 4;
  dsf::des::Rng delay_rng(9);

  std::uint64_t messages = 0;
  dsf::net::NodeId initiator = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t f = 0; f < floods; ++f) {
    const auto out = dsf::core::flood_search(
        initiator, params,
        [&](dsf::net::NodeId x) -> const std::vector<dsf::net::NodeId>& {
          return adj[x];
        },
        [&](dsf::net::NodeId x) { return static_cast<bool>(holder[x]); },
        [&](dsf::net::NodeId, dsf::net::NodeId) {
          return delay_rng.uniform();
        },
        stamps, scratch);
    messages += out.query_messages;
    initiator = (initiator + 1) % n;
  }
  const double wall = seconds_since(t0);
  Result r;
  r.name = "flood_fanout";
  r.items = messages;
  r.wall_s = wall;
  r.items_per_s = static_cast<double>(messages) / wall;
  r.detail = std::to_string(floods) + " floods, hops=4, 2000 nodes; " +
             "items are query messages";
  return r;
}

/// End-to-end: one simulated Gnutella day (or a short slice in quick
/// mode) through the full engine stack.  Items are total wire messages.
Result run_gnutella_day(bool quick) {
  dsf::gnutella::Config config;
  config.sim_hours = quick ? 2.0 : 24.0;
  config.warmup_hours = quick ? 0.5 : 6.0;
  config.num_users = quick ? 500 : 2000;
  config.max_hops = 2;
  config.seed = 42;
  const auto t0 = Clock::now();
  const auto result = dsf::gnutella::Simulation(config).run();
  const double wall = seconds_since(t0);
  Result r;
  r.name = "gnutella_day";
  r.items = result.traffic.total();
  r.wall_s = wall;
  r.items_per_s = static_cast<double>(r.items) / wall;
  r.detail = std::to_string(config.num_users) + " users, " +
             std::to_string(config.sim_hours) +
             " sim-hours; items are wire messages";
  return r;
}

void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
}

std::string to_json(const std::vector<Result>& results, bool quick) {
  char buf[128];
  std::string j = "{\n  \"schema\": \"dsf-perf-suite-v1\",\n";
  j += quick ? "  \"quick\": true,\n" : "  \"quick\": false,\n";
  std::snprintf(buf, sizeof buf, "  \"peak_rss_bytes\": %llu,\n",
                static_cast<unsigned long long>(peak_rss_bytes()));
  j += buf;
  j += "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    j += "    {\"name\": \"";
    json_escape_into(j, r.name);
    std::snprintf(buf, sizeof buf,
                  "\", \"items\": %llu, \"wall_s\": %.6f, "
                  "\"items_per_s\": %.1f, \"detail\": \"",
                  static_cast<unsigned long long>(r.items), r.wall_s,
                  r.items_per_s);
    j += buf;
    json_escape_into(j, r.detail);
    j += i + 1 < results.size() ? "\"},\n" : "\"}\n";
  }
  j += "  ]\n}\n";
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "perf_suite.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  const std::uint64_t ops = quick ? 200'000 : 2'000'000;
  std::vector<Result> results;
  results.push_back(run_queue_ops(1024, ops));
  results.push_back(run_queue_ops(16384, ops));
  results.push_back(run_queue_ops(262144, quick ? 200'000 : 1'000'000));
  results.push_back(run_queue_cancel(ops));
  results.push_back(run_queue_batch(16, ops / 16));
  results.push_back(run_flood_fanout(quick ? 2'000 : 20'000));
  results.push_back(run_gnutella_day(quick));

  for (const Result& r : results)
    std::printf("%-18s %12llu items  %8.3f s  %14.0f items/s\n",
                r.name.c_str(), static_cast<unsigned long long>(r.items),
                r.wall_s, r.items_per_s);

  const std::string json = to_json(results, quick);
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
