// Overlay-structure evolution: how the dynamic scheme reshapes the graph
// over the 4 simulated days.  This is the mechanism behind every figure —
// taste homophily climbs (same-favourite neighbor share), the clustering
// coefficient rises an order of magnitude above random, and the price is
// a mild degree inequality (Gini) from the always-accept eviction churn.

#include <cstdio>
#include <iostream>

#include "core/graph_stats.h"
#include "fig_common.h"
#include "metrics/csv.h"

int main() {
  using namespace dsf;
  gnutella::Config config = bench::paper_config(/*max_hops=*/2);
  config.num_users = 1000;
  config.catalog.num_songs = 100'000;
  config.sim_hours = 48.0;
  config.warmup_hours = 0.0;  // the ramp itself is the object of study
  config.probe_period_s = 4.0 * 3600.0;

  std::printf("Overlay dynamics — structure probes every 4h "
              "(%u users, %.0fh)\n", config.num_users, config.sim_hours);
  const auto dyn = gnutella::Simulation(config).run();
  const auto sta = gnutella::Simulation(config.as_static()).run();

  metrics::Table table({"hour", "homophily(dyn)", "homophily(sta)",
                        "clustering(dyn)", "clustering(sta)", "gini(dyn)",
                        "gini(sta)", "degree(dyn)", "degree(sta)"});
  metrics::CsvWriter csv("overlay_dynamics.csv",
                         {"hour", "homophily_dyn", "homophily_sta",
                          "clustering_dyn", "clustering_sta", "gini_dyn",
                          "gini_sta", "degree_dyn", "degree_sta"});
  const std::size_t rows = std::min(dyn.probes.size(), sta.probes.size());
  for (std::size_t i = 0; i < rows; ++i) {
    const auto& d = dyn.probes[i];
    const auto& s = sta.probes[i];
    table.add_row({metrics::fmt(d.time_s / 3600.0, 0),
                   metrics::fmt(d.same_favorite, 3),
                   metrics::fmt(s.same_favorite, 3),
                   metrics::fmt(d.clustering, 3),
                   metrics::fmt(s.clustering, 3),
                   metrics::fmt(d.degree_gini, 3),
                   metrics::fmt(s.degree_gini, 3),
                   metrics::fmt(d.mean_degree, 2),
                   metrics::fmt(s.mean_degree, 2)});
    csv.add_row({metrics::fmt(d.time_s / 3600.0, 1),
                 metrics::fmt(d.same_favorite, 4),
                 metrics::fmt(s.same_favorite, 4),
                 metrics::fmt(d.clustering, 4), metrics::fmt(s.clustering, 4),
                 metrics::fmt(d.degree_gini, 4),
                 metrics::fmt(s.degree_gini, 4),
                 metrics::fmt(d.mean_degree, 3),
                 metrics::fmt(s.mean_degree, 3)});
  }
  table.print(std::cout);
  std::printf("\nseries written to overlay_dynamics.csv\n");

  const bool homophily_grew =
      !dyn.probes.empty() &&
      dyn.probes.back().same_favorite > 2.0 * sta.probes.back().same_favorite;
  std::printf("homophily grew well beyond static: %s\n",
              homophily_grew ? "yes" : "NO");
  return homophily_grew ? 0 : 1;
}
