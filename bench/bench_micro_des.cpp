// google-benchmark microbenchmarks of the hot substrate paths: event-queue
// throughput, distribution sampling, delay-model sampling, and the query
// flood expansion itself.  These bound how much simulated time per wall
// second the figure benches can achieve.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "core/flood_search.h"
#include "des/distributions.h"
#include "des/event_queue.h"
#include "des/rng.h"
#include "net/delay_model.h"

// The batch-scheduling and SBO-callback benches only exist on trees that
// have the zero-allocation queue; the guard lets this exact file build
// against the pre-overhaul queue too, which is how the before/after
// numbers in BENCH_PR3.json are produced (same bench source, two trees).
#if __has_include("des/callback.h")
#include "des/callback.h"
#define DSF_BENCH_HAS_CALLBACK 1
#endif

namespace {

using namespace dsf;

/// Hold-model throughput with a *representative* closure.  The simulators
/// never schedule empty lambdas: a delivery captures an engine pointer
/// plus message coordinates (~24 bytes).  That size is what decides
/// whether the callback type allocates — std::function's 16-byte inline
/// buffer spills it to the heap on every schedule, the 48-byte SBO
/// callback never does — so an empty-capture bench would hide exactly the
/// cost this queue was rebuilt to remove.  Each popped event is also
/// dispatched, as Simulator::step does.
void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  des::EventQueue q;
  des::Rng rng(1);
  // Keep a standing population of events, replacing each popped one.
  const int population = static_cast<int>(state.range(0));
  std::uint64_t acc = 0;
  std::uint64_t* sink = &acc;
  double now = 0.0;
  for (int i = 0; i < population; ++i) {
    const double t = rng.uniform(0.0, 100.0);
    q.schedule(t, [sink, t, i] {
      *sink += static_cast<std::uint64_t>(t) + static_cast<std::uint64_t>(i);
    });
  }
  for (auto _ : state) {
    auto [t, cb] = q.pop();
    cb();
    now = t;
    const double d = rng.uniform(0.0, 100.0);
    const auto tag = static_cast<std::uint32_t>(acc);
    q.schedule(now + d, [sink, d, tag] {
      *sink += static_cast<std::uint64_t>(d) + tag;
    });
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1024)->Arg(16384)->Arg(262144);

/// Timeout churn: schedule a far-future event and cancel it immediately,
/// the pattern of every satisfied query's reply timeout.  Cancelled nodes
/// are never popped, so this also exercises the tombstone sweep.
void BM_EventQueueCancel(benchmark::State& state) {
  des::EventQueue q;
  std::uint64_t acc = 0;
  std::uint64_t* sink = &acc;
  for (auto _ : state) {
    const auto id = q.schedule(1.0, [sink] { ++*sink; });
    benchmark::DoNotOptimize(q.cancel(id));
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_EventQueueCancel);

#ifdef DSF_BENCH_HAS_CALLBACK

/// Neighbor fan-out via one bulk insertion, then drain: the shape of the
/// batched engine dispatch (OverlayEngine::send_batch).
void BM_EventQueueScheduleBatch(benchmark::State& state) {
  const auto fanout = static_cast<std::size_t>(state.range(0));
  des::EventQueue q;
  des::Rng rng(11);
  std::uint64_t acc = 0;
  std::uint64_t* sink = &acc;
  double now = 0.0;
  for (auto _ : state) {
    q.schedule_batch(fanout, [&](std::size_t i) {
      const double d = rng.uniform(0.0, 100.0);
      return std::pair<des::SimTime, des::EventQueue::Callback>(
          now + d, [sink, d, i] {
            *sink += static_cast<std::uint64_t>(d) + i;
          });
    });
    for (std::size_t i = 0; i < fanout; ++i) {
      auto [t, cb] = q.pop();
      cb();
      now = t;
    }
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fanout));
}
BENCHMARK(BM_EventQueueScheduleBatch)->Arg(4)->Arg(16)->Arg(64);

/// Construct + move + dispatch of an SBO callback alone, outside the
/// queue: the per-event callback overhead floor.
void BM_CallbackConstructDispatch(benchmark::State& state) {
  std::uint64_t acc = 0;
  std::uint64_t* sink = &acc;
  std::uint64_t k = 0;
  for (auto _ : state) {
    const std::uint64_t tag = ++k;
    des::Callback cb([sink, tag] { *sink += tag; });
    des::Callback moved = std::move(cb);
    moved();
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_CallbackConstructDispatch);

#endif  // DSF_BENCH_HAS_CALLBACK

void BM_RngNext(benchmark::State& state) {
  des::Rng rng(2);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_ZipfSample(benchmark::State& state) {
  des::Rng rng(3);
  des::Zipf z(static_cast<std::size_t>(state.range(0)), 0.9);
  for (auto _ : state) benchmark::DoNotOptimize(z.sample(rng));
}
BENCHMARK(BM_ZipfSample)->Arg(50)->Arg(4000);

void BM_AliasSample(benchmark::State& state) {
  des::Rng rng(4);
  des::Zipf z(4000, 0.9);
  std::vector<double> w(4000);
  for (std::size_t k = 0; k < w.size(); ++k) w[k] = z.pmf(k);
  des::AliasTable t(w);
  for (auto _ : state) benchmark::DoNotOptimize(t.sample(rng));
}
BENCHMARK(BM_AliasSample);

void BM_TruncatedGaussianSample(benchmark::State& state) {
  des::Rng rng(5);
  des::TruncatedGaussian g(0.300, 0.020, 0.010, 0.600);
  for (auto _ : state) benchmark::DoNotOptimize(g.sample(rng));
}
BENCHMARK(BM_TruncatedGaussianSample);

void BM_DelayModelSample(benchmark::State& state) {
  des::Rng seed_rng(6);
  net::DelayModel m(2000, seed_rng);
  des::Rng rng(7);
  net::NodeId a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.sample_delay_s(a, (a + 7) % 2000, rng));
    a = (a + 13) % 2000;
  }
}
BENCHMARK(BM_DelayModelSample);

/// Flood over a random 4-regular-ish overlay of 2000 nodes — the exact
/// inner loop of the Gnutella figure benches.
void BM_FloodSearch(benchmark::State& state) {
  const std::size_t n = 2000;
  des::Rng rng(8);
  std::vector<std::vector<net::NodeId>> adj(n);
  for (net::NodeId u = 0; u < n; ++u) {
    while (adj[u].size() < 4) {
      const auto v = static_cast<net::NodeId>(rng.uniform_int(n));
      if (v != u && adj[v].size() < 6) {
        adj[u].push_back(v);
        adj[v].push_back(u);
      }
    }
  }
  std::vector<bool> holder(n);
  for (std::size_t i = 0; i < n; ++i) holder[i] = rng.bernoulli(0.05);

  core::VisitStamp stamps(n);
  core::SearchScratch scratch;
  core::SearchParams params;
  params.max_hops = static_cast<int>(state.range(0));
  des::Rng delay_rng(9);

  net::NodeId initiator = 0;
  for (auto _ : state) {
    const auto out = core::flood_search(
        initiator, params,
        [&](net::NodeId x) -> const std::vector<net::NodeId>& {
          return adj[x];
        },
        [&](net::NodeId x) { return static_cast<bool>(holder[x]); },
        [&](net::NodeId, net::NodeId) { return delay_rng.uniform(); },
        stamps, scratch);
    benchmark::DoNotOptimize(out.query_messages);
    initiator = (initiator + 1) % n;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FloodSearch)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
