// Scheme sweep: the ranked query plane measured end to end.  One full
// static Gnutella run per search scheme — flood, iterative deepening,
// directed BFT, local indices, top-k ranked, LSH similarity — with the
// invariant checker attached (including the per-outcome scheme contracts:
// k bound, score ordering, similarity threshold, no pruning for
// exact-match).  The static overlay plus the four-lane RNG layout make
// the arms directly comparable: every arm sees the same peers, sessions
// and query arrivals, so traffic differences are the scheme's alone.
//
// The headline figure: FD-style top-k prunes last-hop forwards through
// one-hop scored digests, cutting query traffic versus the flood while
// answering the exact same set of queries (its pruning never withholds a
// forward that could change a query's has-a-result verdict).  The JSON
// carries the measured reduction and both hit ratios so the acceptance
// bar — >= 3x at equal hit ratio — is machine-checkable downstream.
//
// A second stanza certifies the LSH plane off-line: a planted-duplicates
// library (peers derived from shared prototypes with small mutations)
// where ground-truth Jaccard neighbors are known by construction, scored
// for recall through the banded bucket gate + signature estimate.
//
// Every run must finish checker-clean; any violation makes the bench
// exit 4.  Honours DSF_FAST / DSF_SEED like the other figure benches.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cli/flag_registry.h"
#include "core/lsh.h"
#include "des/rng.h"
#include "fig_common.h"
#include "metrics/csv.h"
#include "metrics/json_emitter.h"
#include "metrics/table.h"
#include "sim/invariants.h"

namespace {

using namespace dsf;

struct ArmPoint {
  sim::SearchStrategyKind kind = sim::SearchStrategyKind::kFlood;
  std::uint64_t queries = 0;
  std::uint64_t hits = 0;
  std::uint64_t results = 0;
  std::uint64_t query_messages = 0;
  std::uint64_t reply_messages = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes = 0;
  double first_result_delay_mean = 0.0;

  double hit_ratio() const {
    return queries ? static_cast<double>(hits) / static_cast<double>(queries)
                   : 0.0;
  }
};

/// One full run under the given scheme; flips *clean on any violation.
ArmPoint run_arm(const gnutella::Config& config, bool* clean) {
  sim::InvariantChecker checker;
  gnutella::Simulation sim(config);
  sim.attach_checker(&checker);
  const auto r = sim.run();

  checker.check_overlay(sim.overlay());
  checker.check_ledger(sim.ledger());
  checker.check_admission(sim.load_stats());
  if (!checker.ok()) {
    std::fprintf(stderr, "scheme %s: %s",
                 sim::to_string(config.search_strategy),
                 checker.report().c_str());
    *clean = false;
  }

  ArmPoint p;
  p.kind = config.search_strategy;
  p.queries = r.queries_issued;
  p.hits = r.total_hits();
  p.results = r.total_results();
  p.query_messages = r.traffic.total(net::MessageType::kQuery);
  p.reply_messages = r.traffic.total(net::MessageType::kQueryReply);
  p.total_messages = sim.ledger().stats().total();
  p.total_bytes = sim.ledger().total_bytes();
  p.first_result_delay_mean = r.first_result_delay_s.mean();
  return p;
}

struct RecallPoint {
  double threshold = 0.5;
  std::uint32_t peers = 0;
  std::uint64_t true_pairs = 0;
  std::uint64_t retrieved = 0;
  std::uint64_t false_hits = 0;

  double recall() const {
    return true_pairs ? static_cast<double>(retrieved) /
                            static_cast<double>(true_pairs)
                      : 0.0;
  }
};

double true_jaccard(const std::vector<std::uint64_t>& a,
                    const std::vector<std::uint64_t>& b) {
  std::vector<std::uint64_t> inter, uni;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(inter));
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(uni));
  return uni.empty() ? 0.0
                     : static_cast<double>(inter.size()) /
                           static_cast<double>(uni.size());
}

/// Planted-duplicates recall: peers copy one of a handful of disjoint
/// prototypes and mutate ~7% of the items, so within-family true Jaccard
/// (~0.76) clears the threshold and cross-family (~0) never does.  A
/// retrieved neighbor must pass both the band-bucket gate and the
/// signature-estimate threshold — exactly the gate lsh_similarity_search
/// applies per visited peer.
RecallPoint lsh_recall_stanza(std::uint64_t seed, double threshold) {
  constexpr std::uint32_t kPeers = 200;
  constexpr std::uint32_t kProtos = 8;
  constexpr std::uint64_t kSetSize = 80;
  des::Rng rng(seed);

  std::vector<std::vector<std::uint64_t>> sets(kPeers);
  for (std::uint32_t p = 0; p < kPeers; ++p) {
    auto& s = sets[p];
    const std::uint64_t proto = p % kProtos;
    for (std::uint64_t i = 0; i < kSetSize; ++i)
      s.push_back(rng.uniform() < 0.07 ? 1'000'000 + p * kSetSize + i
                                       : proto * kSetSize + i);
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
  }

  core::LshIndex idx;
  idx.reserve(kPeers);
  for (const auto& s : sets)
    idx.append_node(std::span<const std::uint64_t>(s));

  RecallPoint r;
  r.threshold = threshold;
  r.peers = kPeers;
  for (std::uint32_t a = 0; a < kPeers; ++a) {
    for (std::uint32_t b = 0; b < kPeers; ++b) {
      if (a == b) continue;
      const bool is_true = true_jaccard(sets[a], sets[b]) >= threshold;
      const bool is_hit = idx.candidate(a, b) &&
                          idx.estimated_similarity(a, b) >= threshold;
      r.true_pairs += is_true;
      if (is_true && is_hit) ++r.retrieved;
      if (!is_true && is_hit) ++r.false_hits;
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  cli::FlagRegistry reg(
      "bench_scheme_sweep [--top-k K] [--sim-threshold T] [--out PATH] "
      "[--csv PATH]",
      "Search-scheme comparison on the static Gnutella overlay: one "
      "checker-certified run per scheme (flood, iterative, directed, "
      "local-indices, top-k, lsh) plus a planted-duplicates LSH recall "
      "stanza; emits dsf-scheme-sweep-v1 JSON.  Honours DSF_FAST / "
      "DSF_SEED.");
  reg.add_int("top-k", 4, "results per query for the ranked arm (>= 1)")
      .add_double("sim-threshold", 0.2,
                  "minimum estimated Jaccard similarity for the lsh arm")
      .add_string("out", "scheme_sweep.json", "JSON output path")
      .add_string("csv", "scheme_sweep_series.csv", "CSV output path");
  std::uint32_t top_k = 4;
  double sim_threshold = 0.2;
  try {
    reg.parse(argc, argv);
    if (reg.help_requested()) {
      std::fputs(reg.help().c_str(), stdout);
      return 0;
    }
    const long long k = reg.get_int("top-k");
    if (k < 1) throw std::invalid_argument("--top-k: must be >= 1");
    top_k = static_cast<std::uint32_t>(k);
    sim_threshold = reg.get_double("sim-threshold");
    if (!(sim_threshold >= 0.0 && sim_threshold <= 1.0))
      throw std::invalid_argument("--sim-threshold: must be in [0, 1]");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  // Static overlay: the four-lane RNG layout keeps sessions and query
  // arrivals identical across arms, so scheme traffic is the only moving
  // part.  The population mirrors bench_abuse_sweep's tractable federation.
  gnutella::Config base = bench::paper_config(2);
  base.dynamic = false;
  base.num_users = 250;
  base.catalog.num_songs = 50'000;
  if (bench::fast_mode()) {
    base.sim_hours = 1.0;
    base.warmup_hours = 0.25;
  } else {
    base.sim_hours = 6.0;
    base.warmup_hours = 1.0;
  }
  base.top_k = top_k;
  base.sim_threshold = sim_threshold;

  const sim::SearchStrategyKind kinds[] = {
      sim::SearchStrategyKind::kFlood,
      sim::SearchStrategyKind::kIterativeDeepening,
      sim::SearchStrategyKind::kDirectedBft,
      sim::SearchStrategyKind::kLocalIndices,
      sim::SearchStrategyKind::kTopK,
      sim::SearchStrategyKind::kLsh,
  };

  bool clean = true;
  std::vector<ArmPoint> arms;
  for (const auto kind : kinds) {
    gnutella::Config config = base;
    config.search_strategy = kind;
    arms.push_back(run_arm(config, &clean));
    const ArmPoint& p = arms.back();
    std::printf("%-13s: %7llu queries, hit ratio %5.1f%%, %9llu query msgs, "
                "%7llu results\n",
                sim::to_string(kind),
                static_cast<unsigned long long>(p.queries),
                100.0 * p.hit_ratio(),
                static_cast<unsigned long long>(p.query_messages),
                static_cast<unsigned long long>(p.results));
  }

  const ArmPoint& flood = arms[0];
  const ArmPoint* topk = nullptr;
  for (const ArmPoint& p : arms)
    if (p.kind == sim::SearchStrategyKind::kTopK) topk = &p;
  const double reduction =
      topk && topk->query_messages
          ? static_cast<double>(flood.query_messages) /
                static_cast<double>(topk->query_messages)
          : 0.0;
  std::printf("\ntop-k vs flood: %.2fx query-traffic reduction, hit ratio "
              "%.4f vs %.4f\n",
              reduction, topk ? topk->hit_ratio() : 0.0, flood.hit_ratio());

  const RecallPoint recall = lsh_recall_stanza(base.seed, 0.5);
  std::printf("lsh planted-duplicates recall: %.4f (%llu/%llu true pairs, "
              "%llu false hits)\n",
              recall.recall(),
              static_cast<unsigned long long>(recall.retrieved),
              static_cast<unsigned long long>(recall.true_pairs),
              static_cast<unsigned long long>(recall.false_hits));

  std::printf("\n-- scheme sweep: one static run per scheme (k=%u, "
              "threshold=%.2f) --\n",
              top_k, sim_threshold);
  metrics::Table table({"scheme", "queries", "hit_ratio", "query_msgs",
                        "reply_msgs", "results", "delay_mean_s"});
  for (const ArmPoint& p : arms)
    table.add_row({sim::to_string(p.kind), std::to_string(p.queries),
                   std::to_string(p.hit_ratio()),
                   std::to_string(p.query_messages),
                   std::to_string(p.reply_messages),
                   std::to_string(p.results),
                   std::to_string(p.first_result_delay_mean)});
  table.print(std::cout);

  const std::string csv_path = reg.get_string("csv");
  metrics::CsvWriter csv(csv_path,
                         {"scheme", "queries", "hits", "results",
                          "query_messages", "reply_messages",
                          "total_messages", "total_bytes",
                          "first_result_delay_mean_s"});
  for (const ArmPoint& p : arms)
    csv.add_row({sim::to_string(p.kind), std::to_string(p.queries),
                 std::to_string(p.hits), std::to_string(p.results),
                 std::to_string(p.query_messages),
                 std::to_string(p.reply_messages),
                 std::to_string(p.total_messages),
                 std::to_string(p.total_bytes),
                 std::to_string(p.first_result_delay_mean)});
  std::printf("full sweep written to %s\n", csv_path.c_str());

  const std::string out_path = reg.get_string("out");
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  metrics::JsonEmitter j(out);
  j.begin_object();
  j.schema("scheme-sweep", 1);
  j.field("scenario", "gnutella-static");
  j.field("peers", static_cast<std::uint64_t>(base.num_users));
  j.field("sim_hours", base.sim_hours, 2);
  j.field("warmup_hours", base.warmup_hours, 2);
  j.field("top_k", static_cast<std::uint64_t>(top_k));
  j.field("sim_threshold", sim_threshold, 3);
  j.field("clean", clean);
  j.begin_array("arms");
  for (const ArmPoint& p : arms) {
    j.begin_object();
    j.field("scheme", sim::to_string(p.kind));
    j.field("queries", p.queries);
    j.field("hits", p.hits);
    j.field("hit_ratio", p.hit_ratio(), 4);
    j.field("results", p.results);
    j.field("query_messages", p.query_messages);
    j.field("reply_messages", p.reply_messages);
    j.field("total_messages", p.total_messages);
    j.field("total_bytes", p.total_bytes);
    j.field("first_result_delay_mean_s", p.first_result_delay_mean, 6);
    j.end_object();
  }
  j.end_array();
  j.begin_object("topk_vs_flood");
  j.field("traffic_reduction", reduction, 3);
  j.field("flood_hit_ratio", flood.hit_ratio(), 4);
  j.field("topk_hit_ratio", topk ? topk->hit_ratio() : 0.0, 4);
  j.field("flood_hits", flood.hits);
  j.field("topk_hits", topk ? topk->hits : 0);
  j.end_object();
  j.begin_object("lsh_recall");
  j.field("threshold", recall.threshold, 3);
  j.field("peers", static_cast<std::uint64_t>(recall.peers));
  j.field("true_pairs", recall.true_pairs);
  j.field("retrieved", recall.retrieved);
  j.field("recall", recall.recall(), 4);
  j.field("false_hits", recall.false_hits);
  j.end_object();
  j.end_object();
  j.finish();
  std::printf("wrote %s\n", out_path.c_str());

  if (!clean) {
    std::fprintf(stderr, "scheme sweep: invariant violations detected\n");
    return 4;
  }
  std::printf("all %zu runs checker-clean\n", arms.size());
  return 0;
}
