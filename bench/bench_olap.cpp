// Bench for the PeerOlap-like scenario: response time and warehouse
// offload with static vs adaptive asymmetric neighbor lists, where benefit
// is warehouse processing time saved (§3.4).

#include <cstdio>
#include <iostream>

#include "metrics/table.h"
#include "olap/olap_sim.h"

int main() {
  using namespace dsf;
  olap::OlapConfig config;
  config.sim_hours = 4.0;
  config.warmup_hours = 0.5;

  std::printf("Distributed OLAP cache — static vs adaptive neighbors "
              "(%u peers, %.0fh)\n", config.num_peers, config.sim_hours);

  auto static_config = config;
  static_config.dynamic = false;
  const auto sta = olap::OlapSim(static_config).run();
  const auto dyn = olap::OlapSim(config).run();

  metrics::Table table({"scheme", "mean response (s)", "peer hit rate",
                        "warehouse chunks", "control msgs"});
  table.add_row({"static", metrics::fmt(sta.response_time_s.mean(), 2),
                 metrics::fmt(sta.peer_hit_rate() * 100, 1) + "%",
                 metrics::fmt_count(sta.chunks_from_warehouse),
                 metrics::fmt_count(sta.traffic.control_traffic())});
  table.add_row({"dynamic", metrics::fmt(dyn.response_time_s.mean(), 2),
                 metrics::fmt(dyn.peer_hit_rate() * 100, 1) + "%",
                 metrics::fmt_count(dyn.chunks_from_warehouse),
                 metrics::fmt_count(dyn.traffic.control_traffic())});
  std::printf("\n");
  table.print(std::cout);
  return dyn.response_time_s.mean() < sta.response_time_s.mean() ? 0 : 1;
}
