// Load sweep: latency vs offered load for the open-loop injection layer.
// Each point is one full Gnutella run with an external query stream at a
// fixed offered rate (or a shaped schedule — step/flash/diurnal — whose
// *base* rate is the sweep axis), per-peer admission control, and the
// invariant checker attached.  The saturation question: as offered load
// crosses the federation's service capacity, sojourn percentiles must
// grow monotonically while goodput decouples from offered load (the
// admission layer sheds the excess instead of collapsing).
//
// Every run must finish checker-clean, including the admission
// conservation laws (offered == admitted + rejected, admitted ==
// completed + shed + pending); any violation makes the bench exit 4.
//
// Honours DSF_FAST / DSF_SEED like the other figure benches.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cli/flag_registry.h"
#include "fig_common.h"
#include "load/open_loop.h"
#include "load/report.h"
#include "load/schedule.h"
#include "metrics/csv.h"
#include "metrics/json_emitter.h"
#include "metrics/table.h"
#include "sim/invariants.h"

namespace {

using namespace dsf;

struct SweepPoint {
  double offered_qps = 0.0;  ///< the schedule's base rate (the sweep axis)
  load::LoadStats stats;
};

/// One full run at the given base rate; flips *clean on any violation.
SweepPoint run_point(const gnutella::Config& config,
                     const load::ArrivalSchedule& schedule,
                     std::size_t admission_cap, bool* clean) {
  sim::InvariantChecker checker;
  gnutella::Simulation sim(config);
  load::OpenLoopOptions o;
  o.enabled = true;
  o.schedule = schedule;
  o.admission_cap = admission_cap;
  sim.set_open_loop(std::move(o));
  sim.attach_checker(&checker);
  sim.run();

  checker.check_overlay(sim.overlay());
  checker.check_ledger(sim.ledger());
  checker.check_admission(sim.load_stats());
  if (!checker.ok()) {
    std::fprintf(stderr, "offered %.2f q/s: %s", schedule.base_qps,
                 checker.report().c_str());
    *clean = false;
  }

  SweepPoint p;
  p.offered_qps = schedule.base_qps;
  p.stats = sim.load_stats();
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  cli::FlagRegistry reg(
      "bench_load_sweep [--schedule S] [--out PATH] [--csv PATH]",
      "Sojourn latency and goodput vs offered open-loop load, "
      "checker-clean; emits dsf-load-sweep-v1 JSON.  Honours DSF_FAST / "
      "DSF_SEED.");
  reg.add_string("schedule", "constant",
                 "offered-load shape per point: constant|diurnal|flash|step")
      .add_double("overload", 4.0,
                  "peak multiplier for the non-constant shapes")
      .add_int("cap", 4, "per-peer admission cap")
      .add_string("out", "load_sweep.json", "JSON output path")
      .add_string("csv", "load_sweep_series.csv", "CSV output path");
  load::ScheduleKind kind = load::ScheduleKind::kConstant;
  double overload = 4.0;
  std::size_t cap = 4;
  try {
    reg.parse(argc, argv);
    if (reg.help_requested()) {
      std::fputs(reg.help().c_str(), stdout);
      return 0;
    }
    kind = load::parse_schedule(reg.get_string("schedule"));
    overload = reg.get_double("overload");
    if (reg.get_int("cap") < 1)
      throw std::invalid_argument("--cap: must be >= 1");
    cap = static_cast<std::size_t>(reg.get_int("cap"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  // A deliberately small federation so the saturation knee sits at a few
  // queries per second and the whole sweep stays tractable: per-peer
  // service time is dominated by the query timeout on misses, so capacity
  // ~ peers / mean-service-seconds.
  gnutella::Config base = bench::paper_config(2);
  base.num_users = 100;
  base.catalog.num_songs = 50'000;
  if (bench::fast_mode()) {
    base.sim_hours = 0.5;
    base.warmup_hours = 0.1;
  } else {
    base.sim_hours = 1.5;
    base.warmup_hours = 0.25;
  }
  const double horizon_s = base.sim_hours * 3600.0;
  const double measure_s = (base.sim_hours - base.warmup_hours) * 3600.0;

  // Offered steps bracketing the ~0.1 q/s-per-peer service capacity:
  // from comfortably under-loaded to 2-3x past saturation.
  const std::vector<double> rates = {2.0, 5.0, 10.0, 15.0, 20.0, 30.0};
  bool clean = true;

  std::vector<SweepPoint> points;
  for (double qps : rates) {
    const auto schedule =
        load::make_schedule(kind, qps, kind == load::ScheduleKind::kConstant
                                           ? 1.0
                                           : overload,
                            horizon_s);
    points.push_back(run_point(base, schedule, cap, &clean));
    const load::LoadStats& s = points.back().stats;
    std::printf("offered %5.1f q/s: goodput %6.2f q/s, rejected %5.1f%%, "
                "p99 %8.0f ms\n",
                qps,
                measure_s > 0.0
                    ? static_cast<double>(s.completed_after_warmup) / measure_s
                    : 0.0,
                s.offered ? 100.0 * static_cast<double>(s.rejected) /
                                static_cast<double>(s.offered)
                          : 0.0,
                s.sojourn_hist.quantile(0.99) * 1e3);
  }

  std::printf("\n-- load sweep: sojourn latency vs offered load "
              "(schedule=%s, cap=%zu) --\n",
              load::schedule_name(kind), cap);
  metrics::Table table({"offered_qps", "goodput_qps", "rejection", "p50_ms",
                        "p95_ms", "p99_ms"});
  for (const SweepPoint& p : points) {
    const load::LoadStats& s = p.stats;
    table.add_row(
        {std::to_string(p.offered_qps),
         std::to_string(measure_s > 0.0
                            ? static_cast<double>(s.completed_after_warmup) /
                                  measure_s
                            : 0.0),
         std::to_string(s.offered ? static_cast<double>(s.rejected) /
                                        static_cast<double>(s.offered)
                                  : 0.0),
         std::to_string(s.sojourn_hist.quantile(0.50) * 1e3),
         std::to_string(s.sojourn_hist.quantile(0.95) * 1e3),
         std::to_string(s.sojourn_hist.quantile(0.99) * 1e3)});
  }
  table.print(std::cout);

  const std::string csv_path = reg.get_string("csv");
  metrics::CsvWriter csv(csv_path,
                         {"offered_qps", "offered", "admitted", "rejected",
                          "completed", "shed", "pending", "goodput_qps",
                          "p50_ms", "p95_ms", "p99_ms", "queue_peak"});
  for (const SweepPoint& p : points) {
    const load::LoadStats& s = p.stats;
    csv.add_row(
        {std::to_string(p.offered_qps), std::to_string(s.offered),
         std::to_string(s.admitted), std::to_string(s.rejected),
         std::to_string(s.completed), std::to_string(s.shed),
         std::to_string(s.pending),
         std::to_string(measure_s > 0.0
                            ? static_cast<double>(s.completed_after_warmup) /
                                  measure_s
                            : 0.0),
         std::to_string(s.sojourn_hist.quantile(0.50) * 1e3),
         std::to_string(s.sojourn_hist.quantile(0.95) * 1e3),
         std::to_string(s.sojourn_hist.quantile(0.99) * 1e3),
         std::to_string(s.peak_queue_depth)});
  }
  std::printf("full sweep written to %s\n", csv_path.c_str());

  const std::string out_path = reg.get_string("out");
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  metrics::JsonEmitter j(out);
  j.begin_object();
  j.schema("load-sweep", 1);
  j.field("scenario", "gnutella");
  j.field("schedule", load::schedule_name(kind));
  j.field("admission_cap", static_cast<std::uint64_t>(cap));
  j.field("peers", static_cast<std::uint64_t>(base.num_users));
  j.field("sim_hours", base.sim_hours, 2);
  j.field("warmup_hours", base.warmup_hours, 2);
  j.field("clean", clean);
  j.begin_array("points");
  for (const SweepPoint& p : points) {
    j.begin_object();
    j.field("offered_qps", p.offered_qps, 2);
    load::write_load_stats(j, p.stats, measure_s);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  j.finish();
  std::printf("wrote %s\n", out_path.c_str());

  if (!clean) {
    std::fprintf(stderr, "load sweep: invariant violations detected\n");
    return 4;
  }
  std::printf("all %zu runs checker-clean\n", points.size());
  return 0;
}
