// Reproduces Figure 1 of Bakiras et al. (IPDPS'03): per-hour queries
// satisfied (a) and query-message overhead (b) of static vs dynamic
// Gnutella with the propagation limit at 2 hops, over 4 simulated days
// with the first 12 hours discarded as warm-up.
//
// Paper reference shapes: dynamic satisfies more queries (~1,900→2,400 vs
// ~1,750→1,900 per hour) with slightly lower overhead (~150k vs ~185k
// messages/hour); the gain is modest because only a handful of nodes are
// reachable within 2 hops.

#include <cstdio>

#include "fig_common.h"

int main() {
  using namespace dsf;
  const gnutella::Config config = bench::paper_config(/*max_hops=*/2);

  std::printf("Figure 1 — dynamic vs static Gnutella, hops=2 "
              "(%u users, %.0fh horizon)\n",
              config.num_users, config.sim_hours);
  std::printf("running static baseline...\n");
  const auto sta = gnutella::Simulation(config.as_static()).run();
  std::printf("running dynamic scheme...\n");
  const auto dyn = gnutella::Simulation(config).run();

  bench::print_hourly_figure("fig1", config, sta, dyn);
  return dyn.total_hits() > sta.total_hits() ? 0 : 1;
}
