// Ablation: which benefit function should drive neighbor selection?
// Compares the paper's B/R (bandwidth over result count) against pure
// result counting (unit) and pure latency (1/latency) on a reduced-scale
// music-sharing run.  The paper argues B/R because high-bandwidth
// responders are worth keeping and long result lists dilute significance;
// this bench quantifies that choice.

#include <cstdio>
#include <iostream>

#include "fig_common.h"

int main() {
  using namespace dsf;
  gnutella::Config base = bench::paper_config(/*max_hops=*/2);
  // Ablations always run at reduced scale: the comparison is relative.
  base.num_users = 800;
  base.catalog.num_songs = 80'000;
  base.sim_hours = 36.0;
  base.warmup_hours = 6.0;

  struct Row {
    const char* name;
    gnutella::BenefitKind kind;
    std::array<double, 3> weights;
  };
  const Row rows[] = {
      {"B/R, class weights 1/2/3 (default)",
       gnutella::BenefitKind::kBandwidthOverResults, {1.0, 2.0, 3.0}},
      {"B/R, raw kbit/s 56/1500/10000",
       gnutella::BenefitKind::kBandwidthOverResults, {56.0, 1500.0, 10000.0}},
      {"unit (count results)", gnutella::BenefitKind::kUnit, {1.0, 2.0, 3.0}},
      {"1/latency", gnutella::BenefitKind::kInverseLatency, {1.0, 2.0, 3.0}},
  };

  std::printf("Ablation — benefit function (hops=%d, %u users, %.0fh)\n",
              base.max_hops, base.num_users, base.sim_hours);
  const auto sta = gnutella::Simulation(base.as_static()).run();

  metrics::Table table({"benefit", "total hits", "total results",
                        "mean 1st-result delay (ms)", "messages"});
  table.add_row({"static baseline", metrics::fmt_count(sta.total_hits()),
                 metrics::fmt_count(sta.total_results()),
                 metrics::fmt(sta.first_result_delay_s.mean() * 1000, 0),
                 metrics::fmt_count(sta.total_messages())});
  for (const Row& row : rows) {
    gnutella::Config c = base;
    c.benefit = row.kind;
    c.benefit_bandwidth_weights = row.weights;
    const auto r = gnutella::Simulation(c).run();
    table.add_row({row.name, metrics::fmt_count(r.total_hits()),
                   metrics::fmt_count(r.total_results()),
                   metrics::fmt(r.first_result_delay_s.mean() * 1000, 0),
                   metrics::fmt_count(r.total_messages())});
  }
  std::printf("\n");
  table.print(std::cout);
  return 0;
}
