// Seed-robustness of the headline result: the dynamic-over-static hit
// gain (Fig 1's comparison) replicated across independent seeds, reported
// as mean ± 95% CI.  One seed proves nothing; the paper's claim stands
// only if the gain's interval excludes zero.

#include <cstdio>

#include "des/sweep.h"
#include "fig_common.h"
#include "metrics/replication.h"

int main() {
  using namespace dsf;
  constexpr std::size_t kReplicas = 5;

  gnutella::Config base = bench::paper_config(/*max_hops=*/2);
  base.num_users = 800;
  base.catalog.num_songs = 80'000;
  base.sim_hours = 36.0;
  base.warmup_hours = 6.0;

  std::printf("Replication — dynamic hit gain across %zu seeds "
              "(hops=%d, %u users, %.0fh)\n",
              kReplicas, base.max_hops, base.num_users, base.sim_hours);

  // Each replica is a (static, dynamic) pair at its own seed.
  std::vector<std::uint64_t> seeds;
  for (std::size_t r = 0; r < kReplicas; ++r)
    seeds.push_back(base.seed + 1000003ULL * (r + 1));

  std::vector<gnutella::Config> jobs;
  for (std::uint64_t s : seeds) {
    gnutella::Config st = base.as_static();
    st.seed = s;
    jobs.push_back(st);
    gnutella::Config dy = base;
    dy.seed = s;
    jobs.push_back(dy);
  }
  const auto results = des::parallel_map(jobs, [](const gnutella::Config& c) {
    return gnutella::Simulation(c).run();
  });

  std::vector<double> hit_gain_pct, msg_ratio, delay_gain_ms;
  for (std::size_t r = 0; r < kReplicas; ++r) {
    const auto& sta = results[2 * r];
    const auto& dyn = results[2 * r + 1];
    hit_gain_pct.push_back(100.0 *
                           (static_cast<double>(dyn.total_hits()) /
                                static_cast<double>(sta.total_hits()) -
                            1.0));
    msg_ratio.push_back(static_cast<double>(dyn.total_messages()) /
                        static_cast<double>(sta.total_messages()));
    delay_gain_ms.push_back((sta.first_result_delay_s.mean() -
                             dyn.first_result_delay_s.mean()) * 1000.0);
    std::printf("  seed %llu: hits %+0.1f%%, msg ratio %.3f, delay saved "
                "%.0f ms\n",
                static_cast<unsigned long long>(seeds[r]),
                hit_gain_pct.back(), msg_ratio.back(), delay_gain_ms.back());
  }

  const auto hits_ci = metrics::confidence_interval(hit_gain_pct);
  const auto msg_ci = metrics::confidence_interval(msg_ratio);
  const auto delay_ci = metrics::confidence_interval(delay_gain_ms);
  std::printf("\nhit gain:    %+.1f%% ± %.1f%% (95%% CI)\n", hits_ci.mean,
              hits_ci.half_width);
  std::printf("msg ratio:   %.3f ± %.3f\n", msg_ci.mean, msg_ci.half_width);
  std::printf("delay saved: %.0f ± %.0f ms\n", delay_ci.mean,
              delay_ci.half_width);

  const bool robust = hits_ci.excludes_zero() && hits_ci.mean > 0.0 &&
                      msg_ci.hi() < 1.0 && delay_ci.excludes_zero() &&
                      delay_ci.mean > 0.0;
  std::printf("all three effects significant across seeds: %s\n",
              robust ? "yes" : "NO");
  return robust ? 0 : 1;
}
