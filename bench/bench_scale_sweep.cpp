// Scale-sweep driver: one Gnutella population per invocation, replicated
// over seeds with des::parallel_map_reduce and merged deterministically
// (per-shard Welford summaries, histograms and time series fold in input
// order — the merged metrics are byte-identical for any --threads value).
//
// scripts/run_scale_sweep.sh runs this at 10k / 100k / 1M peers — one
// process per population so peak RSS is attributable — and assembles the
// per-run JSON documents into one dsf-scale-suite-v1 file that CI
// archives next to the perf suite.  BENCH_PR4.json at the repo root pins
// the numbers this tree produced when the compact scale path landed.
//
// Usage: bench_scale_sweep --peers N [--hours H] [--replications R]
//                          [--seed S] [--threads T] [--shards N] [--out PATH]
//                          [--save-snapshot PATH@T] [--load-snapshot PATH]
//
// --threads parallelizes ACROSS replications (independent seeds);
// --shards/-j parallelizes WITHIN one run via the sharded engine.  The
// two compose, but the useful configurations are threads>1 shards=1
// (many small runs) or threads=1 shards>1 (one huge run).
//
// The snapshot flags checkpoint/resume a single serial run (they require
// --replications 1 and --shards 1): bootstrap a large population once with
// --save-snapshot, then fork as many what-if continuations as needed from
// the file with --load-snapshot — each resumed run is byte-identical to
// the uninterrupted one.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "cli/flag_registry.h"
#include "des/sweep.h"
#include "gnutella/config.h"
#include "gnutella/simulation.h"
#include "metrics/json_emitter.h"
#include "metrics/time_series.h"
#include "net/message.h"
#include "obs/process_stats.h"
#include "snap/snapshot.h"

namespace {

using Clock = std::chrono::steady_clock;

/// What one replication contributes to the merged metrics.
struct Shard {
  dsf::metrics::Summary delay;
  dsf::metrics::Histogram delay_hist{0.0, 5.0, 500};
  dsf::metrics::TimeSeries hits{3600.0};
  dsf::metrics::TimeSeries messages{3600.0};
  dsf::net::MessageStats traffic;
  std::uint64_t queries = 0;
  std::uint64_t satisfied = 0;
  std::uint64_t reconfigurations = 0;
  std::uint64_t events = 0;
  std::uint64_t overlay_bytes = 0;  ///< compact table footprint (max)
  std::uint64_t library_bytes = 0;  ///< library pool footprint (max)
  double wall_s = 0.0;
};

void merge(Shard& acc, Shard& s) {
  acc.delay += s.delay;
  acc.delay_hist += s.delay_hist;
  acc.hits += s.hits;
  acc.messages += s.messages;
  acc.traffic += s.traffic;
  acc.queries += s.queries;
  acc.satisfied += s.satisfied;
  acc.reconfigurations += s.reconfigurations;
  acc.events += s.events;
  acc.overlay_bytes = std::max(acc.overlay_bytes, s.overlay_bytes);
  acc.library_bytes = std::max(acc.library_bytes, s.library_bytes);
  acc.wall_s += s.wall_s;  // summed CPU-side wall; suite reports real wall too
}

struct Options {
  std::size_t peers = 0;
  double hours = 24.0;
  unsigned replications = 1;
  std::uint64_t seed = 42;
  unsigned threads = dsf::des::kAutoThreads;  // one per replication, capped
  std::uint32_t shards = 1;                   // per-run engine sharding
  std::string out_path = "scale_run.json";
  std::string snapshot_save_path;  // empty: no checkpoint
  double snapshot_save_at_s = 0.0;
  std::string snapshot_load_path;  // empty: fresh run
};

Shard run_one(const Options& opt, std::uint64_t seed) {
  dsf::gnutella::Config config;
  config.num_users = static_cast<std::uint32_t>(opt.peers);
  config.sim_hours = opt.hours;
  config.warmup_hours = opt.hours > 2.0 ? 1.0 : 0.0;
  config.seed = seed;
  const auto t0 = Clock::now();
  dsf::gnutella::Simulation sim(config);
  if (!opt.snapshot_load_path.empty())
    sim.load_snapshot(opt.snapshot_load_path);
  if (!opt.snapshot_save_path.empty())
    sim.request_snapshot_save(opt.snapshot_save_path, opt.snapshot_save_at_s);
  if (opt.shards > 1) sim.set_shards(opt.shards);
  const auto result = sim.run();
  Shard s;
  s.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  s.delay = result.first_result_delay_s;
  s.delay_hist = result.first_result_delay_hist;
  s.hits = result.hits;
  s.messages = result.messages;
  s.traffic = result.traffic;
  s.queries = result.queries_issued;
  s.satisfied = result.total_hits();
  s.reconfigurations = result.reconfigurations;
  s.events = result.events_executed;
  s.overlay_bytes = sim.overlay().memory_bytes();
  s.library_bytes = sim.libraries().memory_bytes();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  dsf::cli::FlagRegistry reg(
      "bench_scale_sweep --peers N [--hours H] [--replications R] "
      "[--seed S] [--threads T] [--out PATH]",
      "One Gnutella population per invocation; emits dsf-scale-run-v1 JSON.");
  reg.add_int("peers", 0, "population size (required)")
      .add_double("hours", 24.0, "simulated hours per replication")
      .add_int("replications", 1, "independent seeds to merge")
      .add_int("seed", 42, "base seed; replication i uses seed+i")
      .add_int("threads", 0, "worker threads (0 = one per replication)")
      .add_int("shards", 1,
               "engine shards within each run (1 = serial reference path)")
      .add_string("out", "scale_run.json", "JSON output path")
      .add_string("save-snapshot", "",
                  "checkpoint the run at sim-second T: PATH@T "
                  "(requires --replications 1 and --shards 1)")
      .add_string("load-snapshot", "",
                  "resume from a checkpoint written by --save-snapshot "
                  "(same --peers/--hours/--seed required)");
  reg.alias("j", "shards");
  try {
    reg.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (reg.help_requested()) {
    std::fputs(reg.help().c_str(), stdout);
    return 0;
  }

  Options opt;
  opt.peers = static_cast<std::size_t>(reg.get_int("peers"));
  opt.hours = reg.get_double("hours");
  opt.replications = static_cast<unsigned>(reg.get_int("replications"));
  opt.seed = static_cast<std::uint64_t>(reg.get_int("seed"));
  // CLI keeps "0 = auto"; parallel_map_reduce itself rejects an explicit 0.
  opt.threads = reg.get_int("threads") == 0
                    ? dsf::des::kAutoThreads
                    : static_cast<unsigned>(reg.get_int("threads"));
  opt.out_path = reg.get_string("out");
  if (opt.peers == 0 || opt.hours <= 0.0 || opt.replications == 0) {
    std::fprintf(stderr, "--peers is required; hours and replications > 0\n");
    return 2;
  }
  const std::int64_t shards_arg = reg.get_int("shards");
  if (shards_arg < 1 || static_cast<std::uint64_t>(shards_arg) > opt.peers) {
    std::fprintf(stderr,
                 "error: --shards must be >= 1 and <= --peers (%zu)\n",
                 opt.peers);
    return 2;
  }
  opt.shards = static_cast<std::uint32_t>(shards_arg);

  opt.snapshot_load_path = reg.get_string("load-snapshot");
  const std::string save = reg.get_string("save-snapshot");
  if (!save.empty()) {
    const std::size_t at = save.rfind('@');
    std::size_t used = 0;
    if (at != std::string::npos && at > 0 && at + 1 < save.size()) {
      const std::string when = save.substr(at + 1);
      try {
        opt.snapshot_save_at_s = std::stod(when, &used);
      } catch (const std::exception&) {
        used = 0;
      }
      if (used != when.size()) used = 0;
    }
    if (used == 0 || !(opt.snapshot_save_at_s > 0.0)) {
      std::fprintf(stderr,
                   "error: --save-snapshot expects PATH@T with T a positive "
                   "sim-second count\n");
      return 2;
    }
    opt.snapshot_save_path = save.substr(0, at);
  }
  if ((!opt.snapshot_save_path.empty() || !opt.snapshot_load_path.empty()) &&
      (opt.replications != 1 || opt.shards != 1)) {
    std::fprintf(stderr,
                 "error: snapshot flags require --replications 1 and "
                 "--shards 1 (one serial run per checkpoint)\n");
    return 2;
  }

  std::vector<std::uint64_t> seeds(opt.replications);
  std::iota(seeds.begin(), seeds.end(), opt.seed);

  const auto t0 = Clock::now();
  Shard total;
  try {
    total = dsf::des::parallel_map_reduce(
        seeds, [&](std::uint64_t seed) { return run_one(opt, seed); }, Shard{},
        merge, opt.threads);
  } catch (const dsf::snap::SnapshotError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 5;
  }
  const double wall = std::chrono::duration<double>(Clock::now() - t0).count();

  const std::uint64_t rss = dsf::obs::peak_rss_bytes();
  const double hit_ratio =
      total.queries
          ? static_cast<double>(total.satisfied) / static_cast<double>(total.queries)
          : 0.0;
  const double events_per_s =
      wall > 0.0 ? static_cast<double>(total.events) / wall : 0.0;
  // Peak RSS divides by the peers simultaneously resident: every
  // replication holds its own population while running.
  const std::size_t resident_peers =
      opt.peers * std::min<std::size_t>(opt.replications,
                                        dsf::des::sweep_threads(seeds.size()));

  std::printf("peers=%zu events=%llu (%.0f/s) rss=%.1f MiB (%.0f B/peer) "
              "hit_ratio=%.3f wall=%.1fs\n",
              opt.peers, static_cast<unsigned long long>(total.events),
              events_per_s, static_cast<double>(rss) / (1024.0 * 1024.0),
              static_cast<double>(rss) / static_cast<double>(resident_peers),
              hit_ratio, wall);

  std::ofstream out(opt.out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", opt.out_path.c_str());
    return 1;
  }
  dsf::metrics::JsonEmitter j(out);
  j.begin_object();
  j.schema("scale-run", 1);
  j.field("peers", static_cast<std::uint64_t>(opt.peers));
  j.field("hours", opt.hours, 3);
  j.field("replications", static_cast<std::uint64_t>(opt.replications));
  j.field("shards", static_cast<std::uint64_t>(opt.shards));
  j.field("seed", opt.seed);
  j.field("wall_s", wall, 3);
  j.field("events", total.events);
  j.field("events_per_s", events_per_s, 0);
  j.field("peak_rss_bytes", rss);
  j.field("rss_per_peer",
          static_cast<double>(rss) / static_cast<double>(resident_peers), 1);
  j.field("overlay_bytes", total.overlay_bytes);
  j.field("library_bytes", total.library_bytes);
  j.field("queries", total.queries);
  j.field("hits", total.satisfied);
  j.field("hit_ratio", hit_ratio, 4);
  j.field("messages", total.traffic.total());
  j.field("delay_mean_s", total.delay.mean(), 4);
  j.field("delay_p50_s", total.delay_hist.quantile(0.5), 4);
  j.field("delay_p95_s", total.delay_hist.quantile(0.95), 4);
  j.field("reconfigurations", total.reconfigurations);
  j.end_object();
  j.finish();
  if (!out) {
    std::fprintf(stderr, "write to %s failed\n", opt.out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", opt.out_path.c_str());
  return 0;
}
