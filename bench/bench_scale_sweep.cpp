// Scale-sweep driver: one Gnutella population per invocation, replicated
// over seeds with des::parallel_map_reduce and merged deterministically
// (per-shard Welford summaries, histograms and time series fold in input
// order — the merged metrics are byte-identical for any --threads value).
//
// scripts/run_scale_sweep.sh runs this at 10k / 100k / 1M peers — one
// process per population so peak RSS is attributable — and assembles the
// per-run JSON documents into one dsf-scale-suite-v1 file that CI
// archives next to the perf suite.  BENCH_PR4.json at the repo root pins
// the numbers this tree produced when the compact scale path landed.
//
// Usage: bench_scale_sweep --peers N [--hours H] [--replications R]
//                          [--seed S] [--threads T] [--out PATH]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "des/sweep.h"
#include "gnutella/config.h"
#include "gnutella/simulation.h"
#include "metrics/time_series.h"
#include "net/message.h"

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  rusage u{};
  if (getrusage(RUSAGE_SELF, &u) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(u.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(u.ru_maxrss) * 1024u;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

/// What one replication contributes to the merged metrics.
struct Shard {
  dsf::metrics::Summary delay;
  dsf::metrics::Histogram delay_hist{0.0, 5.0, 500};
  dsf::metrics::TimeSeries hits{3600.0};
  dsf::metrics::TimeSeries messages{3600.0};
  dsf::net::MessageStats traffic;
  std::uint64_t queries = 0;
  std::uint64_t satisfied = 0;
  std::uint64_t reconfigurations = 0;
  std::uint64_t events = 0;
  std::uint64_t overlay_bytes = 0;  ///< compact table footprint (max)
  std::uint64_t library_bytes = 0;  ///< library pool footprint (max)
  double wall_s = 0.0;
};

void merge(Shard& acc, Shard& s) {
  acc.delay += s.delay;
  acc.delay_hist += s.delay_hist;
  acc.hits += s.hits;
  acc.messages += s.messages;
  acc.traffic += s.traffic;
  acc.queries += s.queries;
  acc.satisfied += s.satisfied;
  acc.reconfigurations += s.reconfigurations;
  acc.events += s.events;
  acc.overlay_bytes = std::max(acc.overlay_bytes, s.overlay_bytes);
  acc.library_bytes = std::max(acc.library_bytes, s.library_bytes);
  acc.wall_s += s.wall_s;  // summed CPU-side wall; suite reports real wall too
}

struct Options {
  std::size_t peers = 0;
  double hours = 24.0;
  unsigned replications = 1;
  std::uint64_t seed = 42;
  unsigned threads = 0;  // 0 = one per replication, capped by hardware
  std::string out_path = "scale_run.json";
};

Shard run_one(const Options& opt, std::uint64_t seed) {
  dsf::gnutella::Config config;
  config.num_users = static_cast<std::uint32_t>(opt.peers);
  config.sim_hours = opt.hours;
  config.warmup_hours = opt.hours > 2.0 ? 1.0 : 0.0;
  config.seed = seed;
  const auto t0 = Clock::now();
  dsf::gnutella::Simulation sim(config);
  const auto result = sim.run();
  Shard s;
  s.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  s.delay = result.first_result_delay_s;
  s.delay_hist = result.first_result_delay_hist;
  s.hits = result.hits;
  s.messages = result.messages;
  s.traffic = result.traffic;
  s.queries = result.queries_issued;
  s.satisfied = result.total_hits();
  s.reconfigurations = result.reconfigurations;
  s.events = result.events_executed;
  s.overlay_bytes = sim.overlay().memory_bytes();
  s.library_bytes = sim.libraries().memory_bytes();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--peers") == 0) {
      opt.peers = std::strtoull(next("--peers"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--hours") == 0) {
      opt.hours = std::strtod(next("--hours"), nullptr);
    } else if (std::strcmp(argv[i], "--replications") == 0) {
      opt.replications =
          static_cast<unsigned>(std::strtoul(next("--replications"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opt.seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      opt.threads =
          static_cast<unsigned>(std::strtoul(next("--threads"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      opt.out_path = next("--out");
    } else {
      std::fprintf(stderr,
                   "usage: %s --peers N [--hours H] [--replications R] "
                   "[--seed S] [--threads T] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (opt.peers == 0 || opt.hours <= 0.0 || opt.replications == 0) {
    std::fprintf(stderr, "--peers is required; hours and replications > 0\n");
    return 2;
  }

  std::vector<std::uint64_t> seeds(opt.replications);
  std::iota(seeds.begin(), seeds.end(), opt.seed);

  const auto t0 = Clock::now();
  Shard total = dsf::des::parallel_map_reduce(
      seeds, [&](std::uint64_t seed) { return run_one(opt, seed); }, Shard{},
      merge, opt.threads);
  const double wall = std::chrono::duration<double>(Clock::now() - t0).count();

  const std::uint64_t rss = peak_rss_bytes();
  const double hit_ratio =
      total.queries
          ? static_cast<double>(total.satisfied) / static_cast<double>(total.queries)
          : 0.0;
  const double events_per_s =
      wall > 0.0 ? static_cast<double>(total.events) / wall : 0.0;
  // Peak RSS divides by the peers simultaneously resident: every
  // replication holds its own population while running.
  const std::size_t resident_peers =
      opt.peers * std::min<std::size_t>(opt.replications,
                                        dsf::des::sweep_threads(seeds.size()));

  char buf[256];
  std::string j = "{\n  \"schema\": \"dsf-scale-run-v1\",\n";
  std::snprintf(buf, sizeof buf,
                "  \"peers\": %zu,\n  \"hours\": %.3f,\n"
                "  \"replications\": %u,\n  \"seed\": %llu,\n",
                opt.peers, opt.hours, opt.replications,
                static_cast<unsigned long long>(opt.seed));
  j += buf;
  std::snprintf(buf, sizeof buf,
                "  \"wall_s\": %.3f,\n  \"events\": %llu,\n"
                "  \"events_per_s\": %.0f,\n",
                wall, static_cast<unsigned long long>(total.events),
                events_per_s);
  j += buf;
  std::snprintf(buf, sizeof buf,
                "  \"peak_rss_bytes\": %llu,\n  \"rss_per_peer\": %.1f,\n",
                static_cast<unsigned long long>(rss),
                static_cast<double>(rss) / static_cast<double>(resident_peers));
  j += buf;
  std::snprintf(buf, sizeof buf,
                "  \"overlay_bytes\": %llu,\n  \"library_bytes\": %llu,\n",
                static_cast<unsigned long long>(total.overlay_bytes),
                static_cast<unsigned long long>(total.library_bytes));
  j += buf;
  std::snprintf(buf, sizeof buf,
                "  \"queries\": %llu,\n  \"hits\": %llu,\n"
                "  \"hit_ratio\": %.4f,\n  \"messages\": %llu,\n",
                static_cast<unsigned long long>(total.queries),
                static_cast<unsigned long long>(total.satisfied), hit_ratio,
                static_cast<unsigned long long>(total.traffic.total()));
  j += buf;
  std::snprintf(buf, sizeof buf,
                "  \"delay_mean_s\": %.4f,\n  \"delay_p50_s\": %.4f,\n"
                "  \"delay_p95_s\": %.4f,\n  \"reconfigurations\": %llu\n}\n",
                total.delay.mean(), total.delay_hist.quantile(0.5),
                total.delay_hist.quantile(0.95),
                static_cast<unsigned long long>(total.reconfigurations));
  j += buf;

  std::printf("peers=%zu events=%llu (%.0f/s) rss=%.1f MiB (%.0f B/peer) "
              "hit_ratio=%.3f wall=%.1fs\n",
              opt.peers, static_cast<unsigned long long>(total.events),
              events_per_s, static_cast<double>(rss) / (1024.0 * 1024.0),
              static_cast<double>(rss) / static_cast<double>(resident_peers),
              hit_ratio, wall);

  std::FILE* f = std::fopen(opt.out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", opt.out_path.c_str());
    return 1;
  }
  std::fwrite(j.data(), 1, j.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", opt.out_path.c_str());
  return 0;
}
