#pragma once

// Shared harness for the figure-reproduction benches.  Every bench prints
// the same series the paper's figure reports (x-axis ticks included) plus a
// CSV dump for external plotting, and honours two environment variables:
//
//   DSF_FAST=1        quarter-scale run (500 users, 24 h) for smoke tests
//   DSF_SEED=<n>      override the workload seed
//
// Absolute numbers depend on the calibrated per-user query rate (the paper
// omits it; see DESIGN.md) — the comparisons static-vs-dynamic and the
// trends across hops/thresholds are the reproduction targets.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "gnutella/config.h"
#include "gnutella/simulation.h"
#include "metrics/csv.h"
#include "metrics/table.h"

namespace dsf::bench {

inline bool fast_mode() {
  const char* v = std::getenv("DSF_FAST");
  return v != nullptr && v[0] != '0';
}

/// The paper's §4.2 configuration (or a quarter-scale variant under
/// DSF_FAST) with the given hop limit.
inline gnutella::Config paper_config(int max_hops) {
  gnutella::Config c;
  c.max_hops = max_hops;
  if (fast_mode()) {
    c.num_users = 500;
    c.catalog.num_songs = 50'000;
    c.sim_hours = 24.0;
    c.warmup_hours = 6.0;
  }
  if (const char* seed = std::getenv("DSF_SEED")) {
    c.seed = static_cast<std::uint64_t>(std::strtoull(seed, nullptr, 10));
  }
  return c;
}

/// The hour ticks the paper's Figures 1–2 label (12, 27, ..., 87), scaled
/// into the configured horizon.
inline std::vector<std::size_t> figure_hours(const gnutella::Config& c) {
  std::vector<std::size_t> hours;
  const auto first = static_cast<std::size_t>(c.warmup_hours);
  const auto last = static_cast<std::size_t>(c.sim_hours) - 1;
  const std::size_t step = std::max<std::size_t>(1, (last - first) / 5);
  for (std::size_t h = first; h <= last; h += step) hours.push_back(h);
  return hours;
}

/// Prints the two per-hour series of Figures 1/2 (hits and messages) for a
/// static/dynamic pair and dumps the full hourly series as CSV.
inline void print_hourly_figure(const std::string& name,
                                const gnutella::Config& config,
                                const gnutella::RunResult& sta,
                                const gnutella::RunResult& dyn) {
  std::printf("\n-- %s(a): queries satisfied per hour (hops=%d) --\n",
              name.c_str(), config.max_hops);
  metrics::Table hits({"hour", "Gnutella", "Dynamic_Gnutella"});
  for (std::size_t h : figure_hours(config))
    hits.add_row({std::to_string(h), metrics::fmt_count(sta.hits.bucket(h)),
                  metrics::fmt_count(dyn.hits.bucket(h))});
  hits.print(std::cout);

  std::printf("\n-- %s(b): query messages per hour (hops=%d) --\n",
              name.c_str(), config.max_hops);
  metrics::Table msgs({"hour", "Gnutella", "Dynamic_Gnutella"});
  for (std::size_t h : figure_hours(config))
    msgs.add_row({std::to_string(h),
                  metrics::fmt_count(sta.messages.bucket(h)),
                  metrics::fmt_count(dyn.messages.bucket(h))});
  msgs.print(std::cout);

  std::printf("\ntotals over hours %zu..%zu:\n", sta.warmup_bucket,
              sta.last_bucket);
  std::printf("  hits:     static %s, dynamic %s (%+.1f%%)\n",
              metrics::fmt_count(sta.total_hits()).c_str(),
              metrics::fmt_count(dyn.total_hits()).c_str(),
              100.0 * (static_cast<double>(dyn.total_hits()) /
                           static_cast<double>(sta.total_hits()) -
                       1.0));
  std::printf("  messages: static %s, dynamic %s (%+.1f%%)\n",
              metrics::fmt_count(sta.total_messages()).c_str(),
              metrics::fmt_count(dyn.total_messages()).c_str(),
              100.0 * (static_cast<double>(dyn.total_messages()) /
                           static_cast<double>(sta.total_messages()) -
                       1.0));

  const std::string csv_path = name + "_series.csv";
  metrics::CsvWriter csv(csv_path, {"hour", "hits_static", "hits_dynamic",
                                    "msgs_static", "msgs_dynamic"});
  for (std::size_t h = sta.warmup_bucket; h <= sta.last_bucket; ++h)
    csv.add_row({std::to_string(h), std::to_string(sta.hits.bucket(h)),
                 std::to_string(dyn.hits.bucket(h)),
                 std::to_string(sta.messages.bucket(h)),
                 std::to_string(dyn.messages.bucket(h))});
  std::printf("  full hourly series written to %s\n", csv_path.c_str());
}

}  // namespace dsf::bench
