// Building a new system on the framework primitives directly: a tiny
// document-sharing overlay with a custom benefit function, assembled from
// NeighborTable + flood_search + StatsStore + plan_update, without any of
// the packaged scenario classes.  This is the path a downstream user takes
// to instantiate §3 for their own repository type.
//
//   ./build/examples/custom_policy

#include <cstdio>
#include <set>
#include <vector>

#include "core/benefit.h"
#include "core/flood_search.h"
#include "core/relations.h"
#include "core/stats_store.h"
#include "core/update.h"
#include "core/visit_stamp.h"
#include "des/rng.h"

namespace {

/// Custom benefit: results from nodes that answered quickly AND serve many
/// items count more (a blend the packaged functions don't provide).
class FreshnessBenefit final : public dsf::core::BenefitFunction {
 public:
  double benefit(const dsf::core::ResultInfo& r) const override {
    return r.items / (0.05 + r.latency_s);
  }
  std::string_view name() const override { return "freshness"; }
};

}  // namespace

int main() {
  using namespace dsf;
  constexpr std::size_t kNodes = 40;
  constexpr std::size_t kDegree = 3;
  constexpr std::uint32_t kDocs = 400;

  des::Rng rng(99);

  // Each node holds a handful of documents, clustered: node n prefers
  // documents around n*10 — so good neighborhoods exist to be discovered.
  std::vector<std::set<std::uint32_t>> docs(kNodes);
  for (std::size_t n = 0; n < kNodes; ++n)
    for (int i = 0; i < 12; ++i)
      docs[n].insert(static_cast<std::uint32_t>(
          (n * 10 + rng.uniform_int(30)) % kDocs));

  // Asymmetric relations: every node picks its own outgoing list.
  core::NeighborTable overlay(kNodes, core::RelationKind::kPureAsymmetric,
                              kDegree, 0);
  for (net::NodeId n = 0; n < kNodes; ++n)
    while (!overlay.lists(n).out_full()) {
      const auto v = static_cast<net::NodeId>(rng.uniform_int(kNodes));
      if (v != n) overlay.link(n, v);
    }

  core::VisitStamp stamps(kNodes);
  core::SearchScratch scratch;
  std::vector<core::StatsStore> stats(kNodes);
  FreshnessBenefit benefit;

  core::SearchParams params;
  params.max_hops = 2;
  params.forward_when_hit = true;  // extensive search: collect everything

  std::uint64_t hits_before = 0, hits_after = 0;
  for (int round = 0; round < 3; ++round) {
    std::uint64_t round_hits = 0;
    for (int q = 0; q < 2000; ++q) {
      const auto initiator = static_cast<net::NodeId>(rng.uniform_int(kNodes));
      const auto doc = static_cast<std::uint32_t>(
          (initiator * 10 + rng.uniform_int(30)) % kDocs);
      const auto out = core::flood_search(
          initiator, params,
          [&](net::NodeId n) -> const std::vector<net::NodeId>& {
            return overlay.out_neighbors(n);
          },
          [&](net::NodeId n) { return docs[n].count(doc) != 0; },
          [](net::NodeId, net::NodeId) { return 0.05; }, stamps, scratch);
      round_hits += out.satisfied();
      for (const auto& hit : out.hits) {
        core::ResultInfo info;
        info.responder = hit.node;
        info.items = 1.0;
        info.latency_s = hit.reply_at_s;
        stats[initiator].add(hit.node, benefit.benefit(info));
      }
    }
    if (round == 0) hits_before = round_hits;
    hits_after = round_hits;

    // Algo 3 between rounds: adopt the top-k beneficial peers.
    for (net::NodeId n = 0; n < kNodes; ++n) {
      const auto plan =
          core::plan_update(stats[n], overlay.out_neighbors(n), kDegree,
                            [n](net::NodeId v) { return v != n; });
      for (net::NodeId x : plan.evictions) overlay.unlink(n, x);
      for (net::NodeId v : plan.additions) overlay.link(n, v);
    }
  }

  std::printf("custom benefit function: \"%s\"\n",
              std::string(benefit.name()).c_str());
  std::printf("hits in round 1 (random overlay):   %llu / 2000\n",
              static_cast<unsigned long long>(hits_before));
  std::printf("hits in round 3 (adapted overlay):  %llu / 2000\n",
              static_cast<unsigned long long>(hits_after));
  std::printf("overlay consistent: %s\n",
              overlay.consistent() ? "yes" : "NO");
  return hits_after >= hits_before ? 0 : 1;
}
