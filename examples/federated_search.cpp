// Federated digital-library search — the paper's abstract names
// distributed digital libraries as a target domain.  This example
// contrasts the three §3.1 list organizations on one federation: all-to-all
// (perfect recall, O(N) messages per query), static bounded lists, and
// framework-adaptive bounded lists.
//
//   ./build/examples/federated_search [num_repositories]

#include <cstdio>
#include <cstdlib>

#include "diglib/diglib_sim.h"

int main(int argc, char** argv) {
  using namespace dsf;

  diglib::DigLibConfig base;
  if (argc > 1) base.num_repositories = static_cast<std::uint32_t>(
      std::atoi(argv[1]));
  base.sim_hours = 1.5;
  base.warmup_hours = 0.25;

  std::printf("federation of %u repositories, %u docs, %u-hop search\n\n",
              base.num_repositories, base.num_docs, base.max_hops);

  struct Row {
    const char* name;
    diglib::ListMode mode;
  };
  const Row rows[] = {
      {"all-to-all", diglib::ListMode::kAllToAll},
      {"static bounded", diglib::ListMode::kStatic},
      {"adaptive bounded", diglib::ListMode::kAdaptive},
  };

  std::printf("%-18s %8s %14s %16s\n", "list organization", "recall",
              "msgs/query", "1st-result (ms)");
  for (const Row& row : rows) {
    diglib::DigLibConfig c = base;
    c.mode = row.mode;
    const auto r = diglib::DigLibSim(c).run();
    std::printf("%-18s %8.3f %14.1f %16.0f\n", row.name, r.recall(),
                r.messages_per_query.mean(),
                r.first_result_delay_s.mean() * 1000.0);
  }
  std::printf(
      "\nAdaptive bounded lists approach all-to-all recall at a fraction "
      "of the\nmessage cost — the framework's value proposition for "
      "always-on federations.\n");
  return 0;
}
