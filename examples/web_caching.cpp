// Cooperative web-proxy caching (Squid-like) — the framework's *pure
// asymmetric* instantiation (§3.1): any proxy may point its outgoing list
// at any other without agreement, neighbor update is plain Algo-3 top-k
// selection, and a separate exploration process (Algo 2) feeds the
// statistics because a one-hop search never sees distant proxies.
//
//   ./build/examples/web_caching

#include <cstdio>

#include "webcache/webcache_sim.h"

int main() {
  using namespace dsf;

  webcache::WebCacheConfig config;
  config.num_proxies = 64;
  config.sim_hours = 2.0;
  config.warmup_hours = 0.5;

  std::printf("cooperative web caching: %u proxies, %u-page caches, "
              "%u outgoing neighbors\n\n",
              config.num_proxies, config.cache_capacity,
              config.num_neighbors);

  const auto dyn = webcache::WebCacheSim(config).run();
  auto static_config = config;
  static_config.dynamic = false;
  const auto sta = webcache::WebCacheSim(static_config).run();

  std::printf("%-28s %12s %12s\n", "", "static", "dynamic");
  std::printf("%-28s %12llu %12llu\n", "requests",
              static_cast<unsigned long long>(sta.requests),
              static_cast<unsigned long long>(dyn.requests));
  std::printf("%-28s %11.1f%% %11.1f%%\n", "local hit rate",
              sta.local_hit_rate() * 100.0, dyn.local_hit_rate() * 100.0);
  std::printf("%-28s %11.1f%% %11.1f%%\n", "neighbor hit rate (of misses)",
              sta.neighbor_hit_rate() * 100.0,
              dyn.neighbor_hit_rate() * 100.0);
  std::printf("%-28s %11.0fms %11.0fms\n", "mean request latency",
              sta.latency_s.mean() * 1000.0, dyn.latency_s.mean() * 1000.0);
  std::printf("%-28s %12llu %12llu\n", "exploration messages",
              static_cast<unsigned long long>(
                  sta.traffic.total(net::MessageType::kExploreQuery)),
              static_cast<unsigned long long>(
                  dyn.traffic.total(net::MessageType::kExploreQuery)));
  std::printf(
      "\nAdaptive outgoing lists point each proxy at the peers that keep "
      "serving\nits misses, so more misses are absorbed before reaching the "
      "origin server.\n");
  return 0;
}
