// Quickstart: run a small adaptive content-sharing network and print what
// the framework did.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The Simulation class wires the framework's pieces together (symmetric
// neighbor lists, flood search, B/R benefit statistics, invitation-based
// reconfiguration) over the paper's synthetic music workload.  This example
// scales everything down so it finishes in about a second.

#include <cstdio>

#include "gnutella/simulation.h"

int main() {
  using namespace dsf;

  gnutella::Config config;
  config.num_users = 500;            // paper: 2000
  config.catalog.num_songs = 50000;  // paper: 200000
  config.catalog.num_categories = 25;
  config.max_hops = 2;
  config.sim_hours = 12.0;
  config.warmup_hours = 2.0;
  config.seed = 2003;

  std::printf("simulating %u users for %.0f hours (dynamic Gnutella)...\n",
              config.num_users, config.sim_hours);
  const gnutella::RunResult dyn = gnutella::Simulation(config).run();
  const gnutella::RunResult sta =
      gnutella::Simulation(config.as_static()).run();

  std::printf("\n%-28s %12s %12s\n", "", "static", "dynamic");
  std::printf("%-28s %12llu %12llu\n", "queries satisfied",
              static_cast<unsigned long long>(sta.total_hits()),
              static_cast<unsigned long long>(dyn.total_hits()));
  std::printf("%-28s %12llu %12llu\n", "query messages",
              static_cast<unsigned long long>(sta.total_messages()),
              static_cast<unsigned long long>(dyn.total_messages()));
  std::printf("%-28s %12llu %12llu\n", "individual results",
              static_cast<unsigned long long>(sta.total_results()),
              static_cast<unsigned long long>(dyn.total_results()));
  std::printf("%-28s %11.0fms %11.0fms\n", "mean first-result delay",
              sta.first_result_delay_s.mean() * 1000.0,
              dyn.first_result_delay_s.mean() * 1000.0);
  std::printf("%-28s %12s %12llu\n", "reconfigurations", "-",
              static_cast<unsigned long long>(dyn.reconfigurations));
  std::printf(
      "\nThe dynamic scheme groups users with similar taste, so more "
      "queries\nare answered within the hop limit, with fewer messages and "
      "lower delay.\n");
  return 0;
}
