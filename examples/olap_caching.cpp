// PeerOlap-like distributed OLAP result caching — the framework with
// asymmetric relations, extensive (partial-result) search and a
// processing-time-saved benefit function (§2, §3.4).
//
//   ./build/examples/olap_caching

#include <cstdio>

#include "olap/olap_sim.h"

int main() {
  using namespace dsf;

  olap::OlapConfig config;
  config.sim_hours = 3.0;
  config.warmup_hours = 0.5;

  std::printf("distributed OLAP cache: %u peers, %u-chunk queries, "
              "warehouse %.1fs/chunk\n\n",
              config.num_peers, config.query_span,
              config.warehouse_s_per_chunk);

  const auto dyn = olap::OlapSim(config).run();
  auto static_config = config;
  static_config.dynamic = false;
  const auto sta = olap::OlapSim(static_config).run();

  std::printf("%-28s %12s %12s\n", "", "static", "dynamic");
  std::printf("%-28s %12llu %12llu\n", "queries",
              static_cast<unsigned long long>(sta.queries),
              static_cast<unsigned long long>(dyn.queries));
  std::printf("%-28s %11.1f%% %11.1f%%\n", "peer hit rate (of misses)",
              sta.peer_hit_rate() * 100.0, dyn.peer_hit_rate() * 100.0);
  std::printf("%-28s %11.2fs %11.2fs\n", "mean query response time",
              sta.response_time_s.mean(), dyn.response_time_s.mean());
  std::printf("%-28s %12llu %12llu\n", "chunks from warehouse",
              static_cast<unsigned long long>(sta.chunks_from_warehouse),
              static_cast<unsigned long long>(dyn.chunks_from_warehouse));
  std::printf(
      "\nBenefit here is warehouse processing time avoided; the adaptive "
      "overlay\nlearns which peers cache the requester's cube region.\n");
  return 0;
}
