// Music-sharing scenario (the paper's §4 case study) at closer-to-paper
// scale, with an hour-by-hour trace like Figure 1.
//
//   ./build/examples/music_sharing [hops] [threshold]
//
// Prints the per-hour hits/messages series for static vs dynamic Gnutella
// and a summary of the adaptation machinery (invitations, evictions,
// reconfigurations).

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "gnutella/simulation.h"
#include "metrics/table.h"

int main(int argc, char** argv) {
  using namespace dsf;

  gnutella::Config config;
  config.num_users = 1000;            // paper: 2000 (halved for speed)
  config.catalog.num_songs = 100000;  // paper: 200000
  config.catalog.num_categories = 50;
  config.max_hops = argc > 1 ? std::atoi(argv[1]) : 2;
  config.reconfig_threshold =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 2;
  config.sim_hours = 48.0;
  config.warmup_hours = 12.0;
  config.seed = 1;

  std::printf("music sharing: %u users, hops=%d, T=%u, %.0f hours\n\n",
              config.num_users, config.max_hops, config.reconfig_threshold,
              config.sim_hours);

  const auto dyn = gnutella::Simulation(config).run();
  const auto sta = gnutella::Simulation(config.as_static()).run();

  metrics::Table table({"hour", "hits(static)", "hits(dynamic)",
                        "msgs(static)", "msgs(dynamic)"});
  for (std::size_t h = static_cast<std::size_t>(config.warmup_hours);
       h < static_cast<std::size_t>(config.sim_hours); h += 4) {
    table.add_row({std::to_string(h), metrics::fmt_count(sta.hits.bucket(h)),
                   metrics::fmt_count(dyn.hits.bucket(h)),
                   metrics::fmt_count(sta.messages.bucket(h)),
                   metrics::fmt_count(dyn.messages.bucket(h))});
  }
  table.print(std::cout);

  std::printf(
      "\nadaptation machinery (dynamic): %llu reconfigurations, "
      "%llu invitations accepted, %llu evictions\n",
      static_cast<unsigned long long>(dyn.reconfigurations),
      static_cast<unsigned long long>(dyn.invitations_accepted),
      static_cast<unsigned long long>(dyn.evictions));
  std::printf(
      "totals over reporting window: hits %llu -> %llu, messages %llu -> "
      "%llu\n",
      static_cast<unsigned long long>(sta.total_hits()),
      static_cast<unsigned long long>(dyn.total_hits()),
      static_cast<unsigned long long>(sta.total_messages()),
      static_cast<unsigned long long>(dyn.total_messages()));
  return 0;
}
