// The resume-equals-straight-through battery (DESIGN.md §1.9's contract):
// for every simulator, running to sim-second T, writing a snapshot,
// loading it into a freshly constructed simulation and running to the
// horizon must produce metric fingerprints byte-identical to the
// uninterrupted run — and the save itself must not perturb the saving
// run's trajectory.  Saving at the same T twice must produce identical
// file bytes (the format sorts every unordered container at write time).
//
// Variants cover every keyed-event kind and domain container: gnutella's
// trial-period invitations and probe periodics, the summary-gated policy
// with growing libraries (recent-query rings + spill lists), the crash
// process (dead set + pending crash tick), webcache's Squid hierarchy
// (parent-only digest periodics) and the LRU/Bloom/StatsStore codecs in
// olap/webcache/diglib.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "../sim/sim_fingerprints.h"
#include "sim/fault.h"

namespace dsf {
namespace {

using simtest::fingerprint;

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

/// Straight-through vs save-run vs resumed-run fingerprints, plus
/// save-twice byte identity.  `arm` configures each simulation identically
/// (fault plans, crash models) before anything runs.
template <typename Sim, typename Config, typename Arm>
void expect_resume_equals_straight(const Config& cfg, double save_at_s,
                                   const std::string& tag, Arm arm) {
  const std::string path = ::testing::TempDir() + "dsf_" + tag + ".snap";
  const std::string path2 = path + ".again";

  std::uint64_t straight_fp = 0;
  {
    Sim straight(cfg);
    arm(straight);
    straight_fp = fingerprint(straight.run()).value();
  }
  {
    Sim saver(cfg);
    arm(saver);
    saver.request_snapshot_save(path, save_at_s);
    EXPECT_EQ(straight_fp, fingerprint(saver.run()).value())
        << tag << ": the save perturbed the saving run";
  }
  {
    Sim resumer(cfg);
    arm(resumer);
    resumer.load_snapshot(path);
    EXPECT_TRUE(resumer.resumed());
    EXPECT_EQ(straight_fp, fingerprint(resumer.run()).value())
        << tag << ": resumed trajectory diverged";
  }
  {
    Sim saver(cfg);
    arm(saver);
    saver.request_snapshot_save(path2, save_at_s);
    saver.run();
  }
  EXPECT_EQ(slurp(path), slurp(path2))
      << tag << ": saving at the same T twice produced different bytes";
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

template <typename Sim, typename Config>
void expect_resume_equals_straight(const Config& cfg, double save_at_s,
                                   const std::string& tag) {
  expect_resume_equals_straight<Sim>(cfg, save_at_s, tag, [](Sim&) {});
}

// Small configs keep the battery inside the fast tier; they are derived
// from the golden fingerprint configs so the workloads stay representative.
gnutella::Config small_gnutella() {
  gnutella::Config c = simtest::golden_gnutella_config();
  c.num_users = 120;
  c.sim_hours = 2.0;
  c.warmup_hours = 0.5;
  return c;
}

olap::OlapConfig small_olap() {
  olap::OlapConfig c = simtest::golden_olap_config();
  c.sim_hours = 0.5;
  c.warmup_hours = 0.1;
  return c;
}

TEST(ResumeDifferential, Gnutella) {
  expect_resume_equals_straight<gnutella::Simulation>(small_gnutella(), 3600.0,
                                                      "gnutella");
}

TEST(ResumeDifferential, GnutellaTrialPeriodAndProbes) {
  // Exercises the trial keyed events (pending cross-user evaluations at T)
  // and the probe periodic / ProbeSample restore.
  gnutella::Config c = small_gnutella();
  c.invitation_policy = core::InvitationPolicy::kTrialPeriod;
  c.probe_period_s = 600.0;
  expect_resume_equals_straight<gnutella::Simulation>(c, 3600.0,
                                                      "gnutella_trial");
}

TEST(ResumeDifferential, GnutellaSummaryGatedWithLibraryGrowth) {
  // Exercises the recent-query rings (summary-gated invitations) and the
  // library-pool spill lists (downloads at T must survive the resume).
  gnutella::Config c = small_gnutella();
  c.invitation_policy = core::InvitationPolicy::kSummaryGated;
  c.library_growth = true;
  expect_resume_equals_straight<gnutella::Simulation>(c, 3600.0,
                                                      "gnutella_summary");
}

TEST(ResumeDifferential, GnutellaWithCrashes) {
  // Exercises the crash process: the dead set, the pending crash tick and
  // the fault RNG lane all cross the snapshot.
  gnutella::Config c = small_gnutella();
  sim::CrashModel crashes;
  crashes.rate_per_hour = 6.0;
  expect_resume_equals_straight<gnutella::Simulation>(
      c, 3600.0, "gnutella_crash",
      [&crashes](gnutella::Simulation& sim) { sim.set_crash_model(crashes); });
}

TEST(ResumeDifferential, Olap) {
  expect_resume_equals_straight<olap::OlapSim>(small_olap(), 900.0, "olap");
}

TEST(ResumeDifferential, Webcache) {
  expect_resume_equals_straight<webcache::WebCacheSim>(
      simtest::golden_webcache_config(), 1800.0, "webcache");
}

TEST(ResumeDifferential, WebcacheHierarchy) {
  // Squid-hierarchy mode: parents register only the digest periodic, so
  // the per-node periodic registration order differs from the flat mesh.
  webcache::WebCacheConfig c = simtest::golden_webcache_config();
  c.num_parents = 4;
  expect_resume_equals_straight<webcache::WebCacheSim>(c, 1800.0,
                                                       "webcache_hier");
}

TEST(ResumeDifferential, Diglib) {
  expect_resume_equals_straight<diglib::DigLibSim>(
      simtest::golden_diglib_config(), 900.0, "diglib");
}

TEST(ResumeDifferential, CrashModelArmedOnlyOnResumeStillFires) {
  // The EXPERIMENTS.md warm-start recipe: bootstrap once without faults,
  // then fork a crash scenario from the checkpoint.  The saved run carried
  // no crash tick, so the resumed engine must start the process itself,
  // from the restored clock — and only after the fork point.
  const gnutella::Config cfg = small_gnutella();
  const std::string path = ::testing::TempDir() + "dsf_fork.snap";
  {
    gnutella::Simulation saver(cfg);
    saver.request_snapshot_save(path, 1800.0);
    saver.run();
  }
  gnutella::Simulation fork(cfg);
  sim::CrashModel crashes;
  crashes.rate_per_hour = 30.0;
  fork.set_crash_model(crashes);
  fork.load_snapshot(path);
  fork.run();
  EXPECT_GT(fork.crashes(), 0u)
      << "crash model armed on a resumed run never fired";
  std::remove(path.c_str());
}

TEST(ResumeDifferential, EventsExecutedContinuesAcrossResume) {
  // The lifetime event counter is part of the engine core section, so a
  // resumed run reports the same total as the uninterrupted one.
  const gnutella::Config cfg = small_gnutella();
  const std::string path = ::testing::TempDir() + "dsf_events.snap";
  const auto straight = gnutella::Simulation(cfg).run();
  {
    gnutella::Simulation saver(cfg);
    saver.request_snapshot_save(path, 3600.0);
    saver.run();
  }
  gnutella::Simulation resumer(cfg);
  resumer.load_snapshot(path);
  EXPECT_EQ(straight.events_executed, resumer.run().events_executed);
  std::remove(path.c_str());
}

TEST(ResumeDifferential, MisuseIsRejected) {
  const olap::OlapConfig cfg = small_olap();
  const std::string path = ::testing::TempDir() + "dsf_misuse.snap";
  {
    olap::OlapSim saver(cfg);
    saver.request_snapshot_save(path, 60.0);
    saver.run();
  }
  {
    // The save point must lie inside the run.
    olap::OlapSim sim(cfg);
    EXPECT_THROW(sim.request_snapshot_save(path, 0.0), std::invalid_argument);
    EXPECT_THROW(sim.request_snapshot_save(path, -5.0), std::invalid_argument);
  }
  {
    // Resuming twice (or into a used simulation) is rejected: restore
    // targets must be freshly constructed.
    olap::OlapSim sim(cfg);
    sim.load_snapshot(path);
    EXPECT_THROW(sim.load_snapshot(path), std::logic_error);
  }
  {
    olap::OlapSim sim(cfg);
    sim.run();
    EXPECT_THROW(sim.load_snapshot(path), std::logic_error);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dsf
