// Fail-closed battery for the snapshot reader: every way a file can be
// damaged — truncation at any level, a flipped byte in every section,
// a wrong magic, a future version, a stored-CRC flip — must surface as a
// typed snap::SnapshotError, and a failed load must leave the simulation
// untouched (the reader validates the whole file before any state is
// applied, so the same object can still load a good file afterwards).
// The suite also runs under ASan/UBSan in CI: a malformed length that
// slipped past validation would trip the sanitizers here.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "../sim/sim_fingerprints.h"
#include "snap/snapshot.h"

namespace dsf {
namespace {

using simtest::fingerprint;

olap::OlapConfig tiny_olap() {
  olap::OlapConfig c;
  c.num_peers = 16;
  c.num_chunks = 1'200;
  c.num_regions = 6;
  c.cache_capacity = 100;
  c.sim_hours = 0.2;
  c.warmup_hours = 0.05;
  c.seed = 21;
  return c;
}

std::vector<unsigned char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::vector<char> raw{std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>()};
  return {raw.begin(), raw.end()};
}

void spit(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

std::uint32_t read_u32(const std::vector<unsigned char>& b, std::size_t at) {
  return static_cast<std::uint32_t>(b[at]) |
         (static_cast<std::uint32_t>(b[at + 1]) << 8) |
         (static_cast<std::uint32_t>(b[at + 2]) << 16) |
         (static_cast<std::uint32_t>(b[at + 3]) << 24);
}

std::uint64_t read_u64(const std::vector<unsigned char>& b, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i)
    v = (v << 8) | static_cast<std::uint64_t>(b[at + static_cast<std::size_t>(i)]);
  return v;
}

/// One section frame as laid out on disk (u32 id, u64 length, u32 crc,
/// payload).
struct Frame {
  std::uint32_t id = 0;
  std::size_t crc_offset = 0;
  std::size_t payload_offset = 0;
  std::size_t payload_length = 0;
};

std::vector<Frame> parse_frames(const std::vector<unsigned char>& bytes) {
  std::vector<Frame> frames;
  std::size_t at = 12;  // 8-byte magic + u32 version
  while (at < bytes.size()) {
    Frame f;
    f.id = read_u32(bytes, at);
    f.payload_length = static_cast<std::size_t>(read_u64(bytes, at + 4));
    f.crc_offset = at + 12;
    f.payload_offset = at + 16;
    frames.push_back(f);
    at = f.payload_offset + f.payload_length;
  }
  EXPECT_EQ(at, bytes.size()) << "section frames must tile the file exactly";
  return frames;
}

class CorruptSnapshotTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Per-process filename: ctest runs each case as its own process, and
    // a shared path would let one process's teardown delete the good file
    // from under another's fixture mid-read.
    good_path_ = new std::string(::testing::TempDir() + "dsf_corrupt_good_" +
                                 std::to_string(::getpid()) + ".snap");
    olap::OlapSim saver(tiny_olap());
    saver.request_snapshot_save(*good_path_, 60.0);
    oracle_fp_ = fingerprint(saver.run()).value();
    good_bytes_ = new std::vector<unsigned char>(slurp(*good_path_));
    ASSERT_GT(good_bytes_->size(), 12u);
  }

  static void TearDownTestSuite() {
    std::remove(good_path_->c_str());
    delete good_path_;
    delete good_bytes_;
    good_path_ = nullptr;
    good_bytes_ = nullptr;
  }

  /// Writes `bytes` to a scratch file and expects load_snapshot to throw
  /// SnapshotError — then proves the failed attempt mutated nothing by
  /// loading the good file into the SAME simulation and matching the
  /// resumed fingerprint against the straight-through oracle.
  void expect_rejected(const std::vector<unsigned char>& bytes,
                       const std::string& label) {
    const std::string path = ::testing::TempDir() + "dsf_corrupt_" + label +
                             "_" + std::to_string(::getpid()) + ".snap";
    spit(path, bytes);
    olap::OlapSim sim(tiny_olap());
    EXPECT_THROW(sim.load_snapshot(path), snap::SnapshotError) << label;
    EXPECT_FALSE(sim.resumed()) << label;
    sim.load_snapshot(*good_path_);
    EXPECT_EQ(oracle_fp_, fingerprint(sim.run()).value())
        << label << ": the rejected load left partial state behind";
    std::remove(path.c_str());
  }

  static std::string* good_path_;
  static std::vector<unsigned char>* good_bytes_;
  static std::uint64_t oracle_fp_;
};

std::string* CorruptSnapshotTest::good_path_ = nullptr;
std::vector<unsigned char>* CorruptSnapshotTest::good_bytes_ = nullptr;
std::uint64_t CorruptSnapshotTest::oracle_fp_ = 0;

TEST_F(CorruptSnapshotTest, WrongMagic) {
  auto bytes = *good_bytes_;
  bytes[0] ^= 0xFF;
  expect_rejected(bytes, "magic");
}

TEST_F(CorruptSnapshotTest, FutureVersionIsRejectedForward) {
  auto bytes = *good_bytes_;
  bytes[8] = 2;  // version u32 little-endian: v2 reader required
  bytes[9] = bytes[10] = bytes[11] = 0;
  expect_rejected(bytes, "version");
}

TEST_F(CorruptSnapshotTest, TruncatedHeader) {
  auto bytes = *good_bytes_;
  bytes.resize(7);
  expect_rejected(bytes, "header");
}

TEST_F(CorruptSnapshotTest, TruncatedSectionFrame) {
  auto bytes = *good_bytes_;
  bytes.resize(12 + 5);  // mid-frame: id present, length cut short
  expect_rejected(bytes, "frame");
}

TEST_F(CorruptSnapshotTest, TruncatedPayload) {
  const auto frames = parse_frames(*good_bytes_);
  ASSERT_FALSE(frames.empty());
  auto bytes = *good_bytes_;
  bytes.resize(frames.back().payload_offset + frames.back().payload_length / 2);
  expect_rejected(bytes, "payload");
}

TEST_F(CorruptSnapshotTest, TruncatedLastByte) {
  auto bytes = *good_bytes_;
  bytes.pop_back();
  expect_rejected(bytes, "lastbyte");
}

TEST_F(CorruptSnapshotTest, FlippedByteInEverySection) {
  const auto frames = parse_frames(*good_bytes_);
  ASSERT_GE(frames.size(), 5u) << "expected all five v1 sections";
  for (const Frame& f : frames) {
    SCOPED_TRACE("section " + std::to_string(f.id));
    ASSERT_GT(f.payload_length, 0u);
    auto bytes = *good_bytes_;
    bytes[f.payload_offset + f.payload_length / 2] ^= 0x01;
    expect_rejected(bytes, "flip_s" + std::to_string(f.id));
  }
}

TEST_F(CorruptSnapshotTest, FlippedStoredCrc) {
  const auto frames = parse_frames(*good_bytes_);
  ASSERT_FALSE(frames.empty());
  auto bytes = *good_bytes_;
  bytes[frames.front().crc_offset] ^= 0x01;
  expect_rejected(bytes, "crc");
}

TEST_F(CorruptSnapshotTest, InflatedSectionLength) {
  // A length that points past end-of-file must be caught by the framing
  // check, never by reading out of bounds (sanitizer-audited in CI).
  const auto frames = parse_frames(*good_bytes_);
  ASSERT_FALSE(frames.empty());
  auto bytes = *good_bytes_;
  const std::size_t len_at = frames.back().crc_offset - 8;
  for (std::size_t i = 0; i < 8; ++i) bytes[len_at + i] = 0xFF;
  expect_rejected(bytes, "length");
}

TEST_F(CorruptSnapshotTest, ScenarioMismatch) {
  // An intact olap snapshot is still rejected by a webcache simulation:
  // the identity section pins scenario name, population and seed.
  webcache::WebCacheConfig cfg = simtest::golden_webcache_config();
  webcache::WebCacheSim sim(cfg);
  EXPECT_THROW(sim.load_snapshot(*good_path_), snap::SnapshotError);
}

TEST_F(CorruptSnapshotTest, ConfigMismatch) {
  olap::OlapConfig cfg = tiny_olap();
  cfg.num_peers = 24;  // same scenario, different population
  olap::OlapSim wrong_pop(cfg);
  EXPECT_THROW(wrong_pop.load_snapshot(*good_path_), snap::SnapshotError);

  olap::OlapConfig seed_cfg = tiny_olap();
  seed_cfg.seed = 22;  // different master seed: RNG replay would diverge
  olap::OlapSim wrong_seed(seed_cfg);
  EXPECT_THROW(wrong_seed.load_snapshot(*good_path_), snap::SnapshotError);
}

TEST_F(CorruptSnapshotTest, MissingFile) {
  olap::OlapSim sim(tiny_olap());
  EXPECT_THROW(sim.load_snapshot(::testing::TempDir() + "does_not_exist.snap"),
               snap::SnapshotError);
}

}  // namespace
}  // namespace dsf
