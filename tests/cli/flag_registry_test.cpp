// The declarative flag surface: typed defaults, alias resolution,
// generated help, and — the behavior change this registry exists for —
// rejection of undeclared options with a nearest-match suggestion.
#include <gtest/gtest.h>

#include <vector>

#include "cli/flag_registry.h"

namespace dsf::cli {
namespace {

/// argv helper: builds the (argc, argv) pair gtest-side.
struct Argv {
  explicit Argv(std::vector<const char*> words) : words_(std::move(words)) {
    words_.insert(words_.begin(), "prog");
  }
  int argc() const { return static_cast<int>(words_.size()); }
  const char* const* argv() const { return words_.data(); }
  std::vector<const char*> words_;
};

FlagRegistry make_registry() {
  FlagRegistry reg("prog [options]", "test surface");
  reg.add_int("peers", 100, "population");
  reg.add_double("drop", 0.0, "loss probability");
  reg.add_bool("dynamic", false, "reconfigure overlay");
  reg.add_string("mode", "adaptive", "strategy");
  reg.alias("users", "peers");
  return reg;
}

TEST(FlagRegistry, DefaultsApplyWhenUnset) {
  auto reg = make_registry();
  reg.parse(Argv({}).argc(), Argv({}).argv());
  EXPECT_EQ(reg.get_int("peers"), 100);
  EXPECT_DOUBLE_EQ(reg.get_double("drop"), 0.0);
  EXPECT_FALSE(reg.get_bool("dynamic"));
  EXPECT_EQ(reg.get_string("mode"), "adaptive");
  EXPECT_FALSE(reg.was_set("peers"));
}

TEST(FlagRegistry, BindsTypedValues) {
  auto reg = make_registry();
  const Argv a({"--peers", "250", "--drop=0.25", "--dynamic", "--mode",
                "flood"});
  reg.parse(a.argc(), a.argv());
  EXPECT_EQ(reg.get_int("peers"), 250);
  EXPECT_DOUBLE_EQ(reg.get_double("drop"), 0.25);
  EXPECT_TRUE(reg.get_bool("dynamic"));
  EXPECT_EQ(reg.get_string("mode"), "flood");
  EXPECT_TRUE(reg.was_set("peers"));
  EXPECT_TRUE(reg.was_set("drop"));
}

TEST(FlagRegistry, AliasBindsTheCanonicalFlag) {
  auto reg = make_registry();
  const Argv a({"--users", "64"});
  reg.parse(a.argc(), a.argv());
  EXPECT_EQ(reg.get_int("peers"), 64);
  EXPECT_TRUE(reg.was_set("peers"));
}

TEST(FlagRegistry, CanonicalSpellingWinsOverAlias) {
  auto reg = make_registry();
  const Argv a({"--users", "64", "--peers", "32"});
  reg.parse(a.argc(), a.argv());
  EXPECT_EQ(reg.get_int("peers"), 32);
}

TEST(FlagRegistry, UnknownFlagThrowsWithSuggestion) {
  auto reg = make_registry();
  const Argv a({"--peeers", "64"});
  try {
    reg.parse(a.argc(), a.argv());
    FAIL() << "expected UnknownFlag";
  } catch (const UnknownFlag& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--peeers"), std::string::npos) << msg;
    EXPECT_NE(msg.find("did you mean --peers"), std::string::npos) << msg;
  }
}

TEST(FlagRegistry, UnknownFlagFarFromEverythingGetsNoSuggestion) {
  auto reg = make_registry();
  const Argv a({"--zzzqqqxxx", "1"});
  try {
    reg.parse(a.argc(), a.argv());
    FAIL() << "expected UnknownFlag";
  } catch (const UnknownFlag& e) {
    const std::string msg = e.what();
    EXPECT_EQ(msg.find("did you mean"), std::string::npos) << msg;
  }
}

TEST(FlagRegistry, BadTypedValueThrows) {
  auto reg = make_registry();
  const Argv a({"--peers", "many"});
  EXPECT_THROW(reg.parse(a.argc(), a.argv()), std::invalid_argument);
}

TEST(FlagRegistry, OverflowIntegerIsATypedOutOfRangeError) {
  // Eager validation in parse() must catch a value that parses but does
  // not fit in int64 — and say so, instead of the old "not an integer"
  // (or, worse, an uncaught std::out_of_range crossing main).
  auto reg = make_registry();
  const Argv a({"--peers", "99999999999999999999"});
  try {
    reg.parse(a.argc(), a.argv());
    FAIL() << "expected FlagError";
  } catch (const FlagError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--peers"), std::string::npos) << msg;
    EXPECT_NE(msg.find("integer out of range"), std::string::npos) << msg;
  }
}

TEST(FlagRegistry, OverflowDoubleIsATypedOutOfRangeError) {
  auto reg = make_registry();
  const Argv a({"--drop", "1e999"});
  try {
    reg.parse(a.argc(), a.argv());
    FAIL() << "expected FlagError";
  } catch (const FlagError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--drop"), std::string::npos) << msg;
    EXPECT_NE(msg.find("number out of range"), std::string::npos) << msg;
  }
}

TEST(FlagRegistry, HelpIsDeclaredAndRendersGroupsAliasesDefaults) {
  auto reg = make_registry();
  const Argv a({"--help"});
  reg.parse(a.argc(), a.argv());
  EXPECT_TRUE(reg.help_requested());
  const std::string h = reg.help();
  EXPECT_NE(h.find("prog [options]"), std::string::npos);
  EXPECT_NE(h.find("--peers"), std::string::npos);
  EXPECT_NE(h.find("alias --users"), std::string::npos);
  EXPECT_NE(h.find("default"), std::string::npos);
}

TEST(FlagRegistry, HiddenFlagsParseButStayOutOfHelp) {
  FlagRegistry reg("prog");
  reg.add_double("fault-drop-query", -1.0, "");
  reg.hide("fault-drop-query");
  const Argv a({"--fault-drop-query", "0.5"});
  reg.parse(a.argc(), a.argv());
  EXPECT_DOUBLE_EQ(reg.get_double("fault-drop-query"), 0.5);
  EXPECT_EQ(reg.help().find("fault-drop-query"), std::string::npos);
}

TEST(FlagRegistry, UndeclaredAccessIsAProgrammingError) {
  auto reg = make_registry();
  reg.parse(Argv({}).argc(), Argv({}).argv());
  EXPECT_THROW(reg.get_int("nonesuch"), std::logic_error);
}

TEST(FlagRegistry, DuplicateDeclarationIsAProgrammingError) {
  FlagRegistry reg("prog");
  reg.add_int("peers", 1, "");
  EXPECT_THROW(reg.add_int("peers", 2, ""), std::logic_error);
}

TEST(FlagRegistry, PositionalArgumentsSurviveParsing) {
  auto reg = make_registry();
  const Argv a({"gnutella", "--peers", "12"});
  const Args& args = reg.parse(a.argc(), a.argv());
  ASSERT_FALSE(args.positional().empty());
  EXPECT_EQ(args.positional()[0], "gnutella");
}

TEST(EditDistance, MatchesClassicCases) {
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("abc", ""), 3u);
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
  EXPECT_EQ(edit_distance("fault-drp", "fault-drop"), 1u);
}

}  // namespace
}  // namespace dsf::cli
