#include "cli/args.h"

#include <gtest/gtest.h>

namespace dsf::cli {
namespace {

Args make(std::initializer_list<const char*> argv) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), argv.begin(), argv.end());
  return Args(static_cast<int>(v.size()), v.data());
}

TEST(Args, PositionalArguments) {
  const Args a = make({"gnutella", "extra"});
  EXPECT_EQ(a.positional(),
            (std::vector<std::string>{"gnutella", "extra"}));
}

TEST(Args, KeyValuePairs) {
  const Args a = make({"--users", "2000", "--hops=4"});
  EXPECT_EQ(a.get_int("users", 0), 2000);
  EXPECT_EQ(a.get_int("hops", 0), 4);
}

TEST(Args, BooleanFlagWithoutValue) {
  const Args a = make({"--json", "--dynamic", "false"});
  EXPECT_TRUE(a.get_bool("json", false));
  EXPECT_FALSE(a.get_bool("dynamic", true));
}

TEST(Args, BoolSpellings) {
  const Args a = make({"--a", "yes", "--b", "0", "--c=on", "--d", "off"});
  EXPECT_TRUE(a.get_bool("a", false));
  EXPECT_FALSE(a.get_bool("b", true));
  EXPECT_TRUE(a.get_bool("c", false));
  EXPECT_FALSE(a.get_bool("d", true));
}

TEST(Args, Fallbacks) {
  const Args a = make({});
  EXPECT_EQ(a.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(a.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(a.get_string("missing", "x"), "x");
  EXPECT_TRUE(a.get_bool("missing", true));
  EXPECT_FALSE(a.has("missing"));
  EXPECT_EQ(a.get("missing"), std::nullopt);
}

TEST(Args, MalformedValuesThrow) {
  const Args a = make({"--n", "12x", "--f", "1.5.2", "--b", "maybe"});
  EXPECT_THROW(a.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(a.get_double("f", 0.0), std::invalid_argument);
  EXPECT_THROW(a.get_bool("b", false), std::invalid_argument);
}

TEST(Args, DoubleParsing) {
  const Args a = make({"--hours", "1.5"});
  EXPECT_DOUBLE_EQ(a.get_double("hours", 0.0), 1.5);
}

TEST(Args, UnrecognizedTracking) {
  const Args a = make({"--known", "1", "--typo", "2"});
  EXPECT_EQ(a.get_int("known", 0), 1);
  const auto unknown = a.unrecognized();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(Args, EqualsFormWithEmptyValue) {
  const Args a = make({"--name="});
  EXPECT_EQ(a.get_string("name", "?"), "");
}

TEST(Args, NegativeNumbersAsValues) {
  // "-5" must not be mistaken for an option.
  const Args a = make({"--offset", "-5"});
  EXPECT_EQ(a.get_int("offset", 0), -5);
}

TEST(Args, ShortOptionWithValue) {
  const Args a = make({"-j", "4"});
  EXPECT_EQ(a.get_int("j", 0), 4);
}

TEST(Args, ShortOptionAsBoolean) {
  const Args a = make({"-v", "--peers", "100"});
  EXPECT_TRUE(a.get_bool("v", false));
  EXPECT_EQ(a.get_int("peers", 0), 100);
}

TEST(Args, ShortOptionDoesNotSwallowNegativeValue) {
  // A short option followed by a negative number takes it as a value
  // (a digit after '-' is never an option).
  const Args a = make({"-j", "-1"});
  EXPECT_EQ(a.get_int("j", 0), -1);
}

TEST(Args, OverflowIntegerThrowsTypedOutOfRangeError) {
  // std::stoll throws std::out_of_range here; the old blanket catch
  // re-labeled it "not an integer", and before that the exception
  // escaped the driver entirely.  It must surface as a FlagError (so
  // drivers can map it to exit 2) that names both the flag and the
  // actual problem.
  const Args a = make({"--peers", "99999999999999999999"});
  try {
    a.get_int("peers", 0);
    FAIL() << "expected FlagError";
  } catch (const FlagError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--peers"), std::string::npos) << msg;
    EXPECT_NE(msg.find("out of range"), std::string::npos) << msg;
  }
}

TEST(Args, OverflowDoubleThrowsTypedOutOfRangeError) {
  const Args a = make({"--rate", "1e999"});
  try {
    a.get_double("rate", 0.0);
    FAIL() << "expected FlagError";
  } catch (const FlagError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--rate"), std::string::npos) << msg;
    EXPECT_NE(msg.find("out of range"), std::string::npos) << msg;
  }
}

TEST(Args, FlagErrorIsAnInvalidArgument) {
  // Existing catch-sites that handle std::invalid_argument keep working.
  const Args a = make({"--n", "99999999999999999999"});
  EXPECT_THROW(a.get_int("n", 0), std::invalid_argument);
}

TEST(Args, DashDigitAndBareDashAreNotOptions) {
  const Args a = make({"-7", "-"});
  EXPECT_EQ(a.positional(), (std::vector<std::string>{"-7", "-"}));
}

}  // namespace
}  // namespace dsf::cli
