#include "core/benefit.h"

#include <gtest/gtest.h>

namespace dsf::core {
namespace {

TEST(BandwidthOverResults, PaperFormula) {
  BandwidthOverResults f;
  ResultInfo r;
  r.bandwidth_kbps = 1500.0;
  r.total_results = 3;
  EXPECT_DOUBLE_EQ(f.benefit(r), 500.0);
}

TEST(BandwidthOverResults, LargerResultListsDiluteBenefit) {
  BandwidthOverResults f;
  ResultInfo few, many;
  few.bandwidth_kbps = many.bandwidth_kbps = 56.0;
  few.total_results = 1;
  many.total_results = 10;
  EXPECT_GT(f.benefit(few), f.benefit(many));
}

TEST(BandwidthOverResults, FasterLinksWorthMore) {
  BandwidthOverResults f;
  ResultInfo modem, lan;
  modem.bandwidth_kbps = 56.0;
  lan.bandwidth_kbps = 10000.0;
  modem.total_results = lan.total_results = 2;
  EXPECT_GT(f.benefit(lan), f.benefit(modem));
}

TEST(BandwidthOverResults, ZeroResultsGuarded) {
  BandwidthOverResults f;
  ResultInfo r;
  r.bandwidth_kbps = 100.0;
  r.total_results = 0;
  EXPECT_DOUBLE_EQ(f.benefit(r), 100.0);  // clamped to 1
}

TEST(ItemsOverLatency, MorePagesFasterIsBetter) {
  ItemsOverLatency f;
  ResultInfo slow, fast;
  slow.items = fast.items = 4.0;
  slow.latency_s = 1.0;
  fast.latency_s = 0.1;
  EXPECT_GT(f.benefit(fast), f.benefit(slow));
  EXPECT_DOUBLE_EQ(f.benefit(slow), 4.0);
}

TEST(ItemsOverLatency, TinyLatencyClamped) {
  ItemsOverLatency f(1e-3);
  ResultInfo r;
  r.items = 1.0;
  r.latency_s = 0.0;
  EXPECT_DOUBLE_EQ(f.benefit(r), 1000.0);
}

TEST(ProcessingTimeSaved, PassesThrough) {
  ProcessingTimeSaved f;
  ResultInfo r;
  r.processing_time_saved_s = 1.8;
  EXPECT_DOUBLE_EQ(f.benefit(r), 1.8);
}

TEST(UnitBenefit, AlwaysOne) {
  UnitBenefit f;
  ResultInfo a, b;
  a.bandwidth_kbps = 1e6;
  b.latency_s = 100.0;
  EXPECT_DOUBLE_EQ(f.benefit(a), 1.0);
  EXPECT_DOUBLE_EQ(f.benefit(b), 1.0);
}

TEST(InverseLatency, OrdersByLatencyOnly) {
  InverseLatency f;
  ResultInfo near, far;
  near.latency_s = 0.1;
  far.latency_s = 1.0;
  near.bandwidth_kbps = 56.0;   // bandwidth must not matter
  far.bandwidth_kbps = 10000.0;
  EXPECT_GT(f.benefit(near), f.benefit(far));
}

TEST(BenefitFunctions, HaveDistinctNames) {
  BandwidthOverResults a;
  ItemsOverLatency b;
  ProcessingTimeSaved c;
  UnitBenefit d;
  InverseLatency e;
  EXPECT_NE(a.name(), b.name());
  EXPECT_NE(b.name(), c.name());
  EXPECT_NE(c.name(), d.name());
  EXPECT_NE(d.name(), e.name());
}

}  // namespace
}  // namespace dsf::core
