#include <gtest/gtest.h>

#include "core/relations.h"
#include "des/rng.h"

namespace dsf::core {
namespace {

/// Property sweep: under any relation kind and any random operation
/// sequence, the §3.1 consistency predicate and the capacity bounds must
/// hold after every single operation.  (Pure asymmetric networks are
/// additionally consistent *by construction*, which is exactly the
/// paper's argument for them.)
class RelationsProperty
    : public ::testing::TestWithParam<std::tuple<RelationKind, std::size_t>> {
 protected:
  RelationKind kind() const { return std::get<0>(GetParam()); }
  std::size_t capacity() const { return std::get<1>(GetParam()); }
};

TEST_P(RelationsProperty, RandomOperationSequencePreservesInvariants) {
  constexpr std::size_t kNodes = 24;
  NeighborTable table(kNodes, kind(), capacity(), capacity());
  des::Rng rng(0xABCDEF ^ static_cast<std::uint64_t>(capacity()) ^
               (static_cast<std::uint64_t>(kind()) << 8));

  for (int op = 0; op < 2000; ++op) {
    const auto a = static_cast<net::NodeId>(rng.uniform_int(kNodes));
    const auto b = static_cast<net::NodeId>(rng.uniform_int(kNodes));
    switch (rng.uniform_int(10)) {
      case 0:
        table.isolate(a);
        break;
      case 1:
      case 2:
        table.unlink(a, b);
        break;
      default:
        table.link(a, b);
        break;
    }

    ASSERT_TRUE(table.consistent()) << "op " << op;
    for (net::NodeId i = 0; i < kNodes; ++i) {
      const auto& l = table.lists(i);
      ASSERT_LE(l.out().size(), l.out_capacity());
      ASSERT_LE(l.in().size(), l.in_capacity());
      ASSERT_FALSE(l.has_out(i)) << "self-loop at " << i;
    }
  }
}

TEST_P(RelationsProperty, IsolateAlwaysLeavesNodeDisconnected) {
  constexpr std::size_t kNodes = 16;
  NeighborTable table(kNodes, kind(), capacity(), capacity());
  des::Rng rng(42);
  for (int op = 0; op < 300; ++op) {
    table.link(static_cast<net::NodeId>(rng.uniform_int(kNodes)),
               static_cast<net::NodeId>(rng.uniform_int(kNodes)));
  }
  for (net::NodeId i = 0; i < kNodes; ++i) {
    table.isolate(i);
    EXPECT_TRUE(table.lists(i).out().empty());
    EXPECT_TRUE(table.lists(i).in().empty());
    EXPECT_TRUE(table.consistent());
    for (net::NodeId j = 0; j < kNodes; ++j) {
      EXPECT_FALSE(table.lists(j).has_out(i));
      EXPECT_FALSE(table.lists(j).has_in(i));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndCapacities, RelationsProperty,
    ::testing::Combine(::testing::Values(RelationKind::kSymmetric,
                                         RelationKind::kAsymmetric,
                                         RelationKind::kPureAsymmetric,
                                         RelationKind::kAllToAll),
                       ::testing::Values<std::size_t>(1, 4, 8)),
    [](const auto& info) {
      const auto kind = std::get<0>(info.param);
      return std::string(to_string(kind) == "all-to-all"
                             ? "AllToAll"
                             : to_string(kind) == "symmetric"
                                   ? "Symmetric"
                                   : to_string(kind) == "asymmetric"
                                         ? "Asymmetric"
                                         : "PureAsymmetric") +
             "_cap" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace dsf::core
