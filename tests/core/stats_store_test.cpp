#include "core/stats_store.h"

#include <gtest/gtest.h>

namespace dsf::core {
namespace {

const auto kAll = [](net::NodeId) { return true; };

TEST(StatsStore, AccumulatesBenefit) {
  StatsStore s;
  s.add(3, 1.5);
  s.add(3, 2.5);
  EXPECT_DOUBLE_EQ(s.benefit_of(3), 4.0);
  EXPECT_TRUE(s.knows(3));
  EXPECT_EQ(s.size(), 1u);
}

TEST(StatsStore, UnknownPeerIsZero) {
  StatsStore s;
  EXPECT_DOUBLE_EQ(s.benefit_of(99), 0.0);
  EXPECT_FALSE(s.knows(99));
}

TEST(StatsStore, ResetForgetsOnePeer) {
  StatsStore s;
  s.add(1, 5.0);
  s.add(2, 3.0);
  s.reset(1);
  EXPECT_FALSE(s.knows(1));
  EXPECT_TRUE(s.knows(2));
}

TEST(StatsStore, ClearForgetsEverything) {
  StatsStore s;
  s.add(1, 1.0);
  s.add(2, 2.0);
  s.clear();
  EXPECT_EQ(s.size(), 0u);
}

TEST(StatsStore, DecayScalesEntries) {
  StatsStore s;
  s.add(1, 10.0);
  s.add(2, 4.0);
  s.decay(0.5);
  EXPECT_DOUBLE_EQ(s.benefit_of(1), 5.0);
  EXPECT_DOUBLE_EQ(s.benefit_of(2), 2.0);
}

TEST(StatsStore, TopKOrdersByBenefit) {
  StatsStore s;
  s.add(1, 1.0);
  s.add(2, 5.0);
  s.add(3, 3.0);
  s.add(4, 4.0);
  const auto top = s.top_k(2, kAll);
  EXPECT_EQ(top, (std::vector<net::NodeId>{2, 4}));
}

TEST(StatsStore, TopKRespectsEligibility) {
  StatsStore s;
  s.add(1, 10.0);
  s.add(2, 5.0);
  s.add(3, 1.0);
  const auto top =
      s.top_k(2, [](net::NodeId n) { return n != 1; });  // 1 is "offline"
  EXPECT_EQ(top, (std::vector<net::NodeId>{2, 3}));
}

TEST(StatsStore, TopKTieBreaksByNodeId) {
  StatsStore s;
  s.add(7, 2.0);
  s.add(3, 2.0);
  s.add(5, 2.0);
  const auto top = s.top_k(3, kAll);
  EXPECT_EQ(top, (std::vector<net::NodeId>{3, 5, 7}));
}

TEST(StatsStore, TopKSmallerThanK) {
  StatsStore s;
  s.add(1, 1.0);
  EXPECT_EQ(s.top_k(5, kAll).size(), 1u);
}

}  // namespace
}  // namespace dsf::core
