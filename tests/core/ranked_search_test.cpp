#include "core/ranked_search.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/flood_search.h"

namespace dsf::core {
namespace {

/// Hand-built overlay with per-node scores and unit delays: every ranked
/// property (ordering, truncation, floor pruning, accounting parity with
/// the flood) can be asserted exactly.
class RankedFixture {
 public:
  explicit RankedFixture(std::size_t n) : adj_(n), stamps_(n) {}

  void edge(net::NodeId a, net::NodeId b) {  // undirected helper
    adj_[a].push_back(b);
    adj_[b].push_back(a);
  }
  void score(net::NodeId n, double s) { scores_[n] = s; }

  SearchOutcome search(net::NodeId from, SearchParams p, std::uint32_t k) {
    return ranked_topk_search(
        from, p, k,
        [this](net::NodeId n) -> const std::vector<net::NodeId>& {
          return adj_[n];
        },
        [this](net::NodeId n) {
          const auto it = scores_.find(n);
          return it == scores_.end() ? 0.0 : it->second;
        },
        [](net::NodeId, net::NodeId) { return 1.0; },  // unit delays
        reliable_, stamps_, scratch_);
  }

  SearchOutcome flood(net::NodeId from, SearchParams p) {
    return flood_search(
        from, p,
        [this](net::NodeId n) -> const std::vector<net::NodeId>& {
          return adj_[n];
        },
        [this](net::NodeId n) { return scores_.count(n) != 0; },
        [](net::NodeId, net::NodeId) { return 1.0; }, stamps_, scratch_);
  }

 private:
  std::vector<std::vector<net::NodeId>> adj_;
  std::map<net::NodeId, double> scores_;
  ReliableTransmit reliable_;
  VisitStamp stamps_;
  SearchScratch scratch_;
};

SearchParams params(int hops) {
  SearchParams p;
  p.max_hops = hops;
  p.forward_when_hit = false;
  p.timeout_s = 100.0;
  return p;
}

TEST(RankedSearch, ReturnsBestKSortedByScore) {
  // Star: 0 at the hub, four scored leaves.
  RankedFixture f(5);
  for (net::NodeId n = 1; n < 5; ++n) f.edge(0, n);
  f.score(1, 0.2);
  f.score(2, 0.9);
  f.score(3, 0.5);
  f.score(4, 0.7);
  const auto out = f.search(0, params(1), 2);
  ASSERT_EQ(out.hits.size(), 2u);
  EXPECT_EQ(out.hits[0].node, 2u);
  EXPECT_DOUBLE_EQ(out.hits[0].score, 0.9);
  EXPECT_EQ(out.hits[1].node, 4u);
  EXPECT_DOUBLE_EQ(out.hits[1].score, 0.7);
  EXPECT_EQ(out.k_target, 2u);
  EXPECT_TRUE(out.k_satisfied());
}

TEST(RankedSearch, ZeroKReturnsNothingAndSendsNothing) {
  RankedFixture f(3);
  f.edge(0, 1);
  f.score(1, 1.0);
  const auto out = f.search(0, params(1), 0);
  EXPECT_TRUE(out.hits.empty());
  EXPECT_EQ(out.query_messages, 0u);
}

TEST(RankedSearch, ContentlessLastHopForwardsArePruned) {
  // Star with unscored leaves: the digest bound (0) never clears the
  // floor (0 until k fills, and nothing fills it), so every last-hop
  // forward is withheld.  The flood would send all four.
  RankedFixture f(5);
  for (net::NodeId n = 1; n < 5; ++n) f.edge(0, n);
  const auto out = f.search(0, params(1), 1);
  EXPECT_TRUE(out.hits.empty());
  EXPECT_EQ(out.query_messages, 0u);
  EXPECT_EQ(out.pruned_subtrees, 4u);
  const auto fl = f.flood(0, params(1));
  EXPECT_EQ(fl.query_messages, 4u);
}

TEST(RankedSearch, HitVerdictMatchesFloodOnEveryTopology) {
  // Two-hop tree with mixed holders: pruning only withholds last-hop
  // forwards whose digest bound cannot beat the floor, so the
  // has-a-result verdict must match the flood exactly.
  RankedFixture f(7);
  f.edge(0, 1);
  f.edge(0, 2);
  f.edge(1, 3);
  f.edge(1, 4);
  f.edge(2, 5);
  f.edge(2, 6);
  f.score(4, 0.3);
  f.score(6, 0.8);
  const auto ranked = f.search(0, params(2), 1);
  const auto flood = f.flood(0, params(2));
  EXPECT_EQ(ranked.hits.empty(), flood.hits.empty());
  ASSERT_EQ(ranked.hits.size(), 1u);
  EXPECT_EQ(ranked.hits[0].node, 6u);
  // Savings are real: the ranked walk sent strictly fewer queries.
  EXPECT_LT(ranked.query_messages, flood.query_messages);
  EXPECT_GT(ranked.pruned_subtrees, 0u);
}

TEST(RankedSearch, MovingFloorPrunesWeakSubtreesOnlyAfterKFills) {
  // Hub 0 with a near strong holder (score 0.9 at hop 1) and a far weak
  // leaf behind 2 (score 0.1 at hop 2).  With k=1 the strong reply
  // arrives (reply_at 2.0) before the hop-2 forward is expanded
  // (arrival 1.0 -> forward at 1.0... the forward happens at arrival
  // time 1.0 < 2.0), so time-ordering decides: the weak leaf's bound
  // (0.1) is still above the unfilled floor (0) when expanded, and the
  // weak hit is collected, then truncated by the final top-k sort.
  RankedFixture f(4);
  f.edge(0, 1);
  f.edge(0, 2);
  f.edge(2, 3);
  f.score(1, 0.9);
  f.score(3, 0.1);
  const auto out = f.search(0, params(2), 1);
  ASSERT_EQ(out.hits.size(), 1u);
  EXPECT_EQ(out.hits[0].node, 1u);
  EXPECT_DOUBLE_EQ(out.hits[0].score, 0.9);
}

TEST(RankedSearch, FloorPrunesOnceRepliesArrive) {
  // Long chain to the weak subtree so its last-hop forward expands
  // *after* the strong reply reaches the initiator: 0-1 (score 0.9,
  // reply at 2.0); 0-2-3-4 where 4 scores 0.2 and the forward 3->4
  // happens at arrival(3) = 3.0 > 2.0.  The floor is then 0.9 and the
  // 0.2-bound forward is withheld.
  RankedFixture f(5);
  f.edge(0, 1);
  f.edge(0, 2);
  f.edge(2, 3);
  f.edge(3, 4);
  f.score(1, 0.9);
  f.score(4, 0.2);
  const auto out = f.search(0, params(3), 1);
  ASSERT_EQ(out.hits.size(), 1u);
  EXPECT_EQ(out.hits[0].node, 1u);
  EXPECT_EQ(out.pruned_subtrees, 1u);
}

TEST(RankedSearch, AccountingMatchesFloodWhenNothingPrunes) {
  // Every node scored: no last-hop bound can fall at or below the floor
  // before k fills... with k large, the floor never fills, every bound
  // (> 0) clears 0, so message accounting must equal the flood's.
  RankedFixture f(6);
  f.edge(0, 1);
  f.edge(0, 2);
  f.edge(1, 3);
  f.edge(2, 4);
  f.edge(4, 5);
  for (net::NodeId n = 1; n < 6; ++n) f.score(n, 0.1 * (n + 1));
  SearchParams p = params(3);
  p.forward_when_hit = true;  // keep propagation identical to the flood
  const auto ranked = f.search(0, p, 100);
  const auto flood = f.flood(0, p);
  EXPECT_EQ(ranked.query_messages, flood.query_messages);
  EXPECT_EQ(ranked.reply_messages, flood.reply_messages);
  EXPECT_EQ(ranked.nodes_reached, flood.nodes_reached);
  EXPECT_EQ(ranked.pruned_subtrees, 0u);
  EXPECT_EQ(ranked.hits.size(), flood.hits.size());
}

TEST(RankedSearch, TiesBreakTowardEarlierRepliesThenLowerIds) {
  RankedFixture f(4);
  f.edge(0, 1);
  f.edge(0, 2);
  f.edge(0, 3);
  f.score(1, 0.5);
  f.score(2, 0.5);
  f.score(3, 0.5);
  const auto out = f.search(0, params(1), 2);
  ASSERT_EQ(out.hits.size(), 2u);
  // Equal scores and equal reply times: node id decides.
  EXPECT_EQ(out.hits[0].node, 1u);
  EXPECT_EQ(out.hits[1].node, 2u);
}

}  // namespace
}  // namespace dsf::core
