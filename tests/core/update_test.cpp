#include "core/update.h"

#include <gtest/gtest.h>

namespace dsf::core {
namespace {

const auto kAll = [](net::NodeId) { return true; };

/// The planner APIs take spans now; a braced list needs backing storage.
using Ids = std::vector<net::NodeId>;

TEST(PlanUpdate, PicksTopBeneficialNodes) {
  StatsStore s;
  s.add(1, 1.0);
  s.add(2, 9.0);
  s.add(3, 5.0);
  s.add(4, 7.0);
  const auto plan = plan_update(s, Ids{1, 3}, 2, kAll);
  EXPECT_EQ(plan.new_out, (std::vector<net::NodeId>{2, 4}));
  EXPECT_EQ(plan.additions, (std::vector<net::NodeId>{2, 4}));
  EXPECT_EQ(plan.evictions, (std::vector<net::NodeId>{1, 3}));
}

TEST(PlanUpdate, KeepsBeneficialCurrentNeighbors) {
  StatsStore s;
  s.add(1, 10.0);  // current, great
  s.add(2, 1.0);   // current, weak
  s.add(3, 5.0);   // candidate, better than 2
  const auto plan = plan_update(s, Ids{1, 2}, 2, kAll);
  EXPECT_EQ(plan.new_out, (std::vector<net::NodeId>{1, 3}));
  EXPECT_EQ(plan.additions, (std::vector<net::NodeId>{3}));
  EXPECT_EQ(plan.evictions, (std::vector<net::NodeId>{2}));
}

TEST(PlanUpdate, SparseStatsKeepCurrentNeighborhood) {
  // Current neighbors without statistics must not be evicted in favour of
  // nothing: the plan retains them (ties prefer current).
  StatsStore s;
  const auto plan = plan_update(s, Ids{5, 6, 7}, 4, kAll);
  EXPECT_TRUE(plan.additions.empty());
  EXPECT_TRUE(plan.evictions.empty());
  EXPECT_EQ(plan.new_out.size(), 3u);
}

TEST(PlanUpdate, TiePrefersCurrentNeighbor) {
  StatsStore s;
  s.add(1, 2.0);  // current
  s.add(9, 2.0);  // equal-benefit outsider
  const auto plan = plan_update(s, Ids{1}, 1, kAll);
  EXPECT_EQ(plan.new_out, (std::vector<net::NodeId>{1}));
  EXPECT_TRUE(plan.evictions.empty());
}

TEST(PlanUpdate, IneligibleNodesExcluded) {
  StatsStore s;
  s.add(1, 10.0);
  s.add(2, 5.0);
  const auto offline1 = [](net::NodeId n) { return n != 1; };
  const auto plan = plan_update(s, Ids{}, 2, offline1);
  EXPECT_EQ(plan.new_out, (std::vector<net::NodeId>{2}));
}

TEST(PlanUpdate, OfflineCurrentNeighborDropped) {
  StatsStore s;
  s.add(1, 10.0);
  const auto offline1 = [](net::NodeId n) { return n != 1; };
  const auto plan = plan_update(s, Ids{1}, 2, offline1);
  EXPECT_TRUE(plan.new_out.empty());
  EXPECT_EQ(plan.evictions, (std::vector<net::NodeId>{1}));
}

TEST(PlanUpdate, CapacityBoundsResult) {
  StatsStore s;
  for (net::NodeId n = 0; n < 10; ++n) s.add(n, static_cast<double>(n));
  const auto plan = plan_update(s, Ids{}, 4, kAll);
  EXPECT_EQ(plan.new_out, (std::vector<net::NodeId>{9, 8, 7, 6}));
}

TEST(LeastBeneficial, FindsWorst) {
  StatsStore s;
  s.add(1, 3.0);
  s.add(2, 1.0);
  s.add(3, 2.0);
  EXPECT_EQ(least_beneficial(s, Ids{1, 2, 3}), 2u);
}

TEST(LeastBeneficial, UnknownNodesAreWorst) {
  StatsStore s;
  s.add(1, 3.0);
  EXPECT_EQ(least_beneficial(s, Ids{1, 9}), 9u);
}

TEST(LeastBeneficial, EmptyListInvalid) {
  StatsStore s;
  EXPECT_EQ(least_beneficial(s, Ids{}), net::kInvalidNode);
}

TEST(DecideInvitation, FreeSlotAlwaysAccepts) {
  StatsStore s;
  const auto d = decide_invitation(s, 7, Ids{1, 2}, 4,
                                   InvitationPolicy::kBenefitGated);
  EXPECT_TRUE(d.accept);
  EXPECT_EQ(d.evict, net::kInvalidNode);
}

TEST(DecideInvitation, AlwaysAcceptEvictsWorstWhenFull) {
  StatsStore s;
  s.add(1, 5.0);
  s.add(2, 1.0);
  const auto d =
      decide_invitation(s, 7, Ids{1, 2}, 2, InvitationPolicy::kAlwaysAccept);
  EXPECT_TRUE(d.accept);
  EXPECT_EQ(d.evict, 2u);
}

TEST(DecideInvitation, BenefitGatedRejectsWeakInviter) {
  StatsStore s;
  s.add(1, 5.0);
  s.add(2, 3.0);
  s.add(7, 1.0);  // inviter weaker than both neighbors
  const auto d =
      decide_invitation(s, 7, Ids{1, 2}, 2, InvitationPolicy::kBenefitGated);
  EXPECT_FALSE(d.accept);
}

TEST(DecideInvitation, BenefitGatedAcceptsStrongInviter) {
  StatsStore s;
  s.add(1, 5.0);
  s.add(2, 3.0);
  s.add(7, 4.0);  // beats neighbor 2
  const auto d =
      decide_invitation(s, 7, Ids{1, 2}, 2, InvitationPolicy::kBenefitGated);
  EXPECT_TRUE(d.accept);
  EXPECT_EQ(d.evict, 2u);
}

TEST(DecideInvitation, ExistingNeighborRejected) {
  StatsStore s;
  const auto d =
      decide_invitation(s, 1, Ids{1, 2}, 4, InvitationPolicy::kAlwaysAccept);
  EXPECT_FALSE(d.accept);
}

TEST(ReconfigCounter, FiresAtThreshold) {
  ReconfigCounter c(2);  // the paper's default T = 2
  EXPECT_FALSE(c.on_request());
  EXPECT_TRUE(c.on_request());
  EXPECT_FALSE(c.on_request());  // restarted
  EXPECT_TRUE(c.on_request());
}

TEST(ReconfigCounter, ResetDampsCascades) {
  ReconfigCounter c(2);
  c.on_request();
  c.reset();  // e.g. an invitation arrived
  EXPECT_FALSE(c.on_request());
  EXPECT_TRUE(c.on_request());
}

TEST(ReconfigCounter, ZeroThresholdNeverFires) {
  ReconfigCounter c(0);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(c.on_request());
}

TEST(ReconfigCounter, ThresholdOneFiresEveryRequest) {
  ReconfigCounter c(1);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(c.on_request());
}

}  // namespace
}  // namespace dsf::core
