#include "core/event_flood.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/flood_search.h"
#include "des/rng.h"

namespace dsf::core {
namespace {

/// Equivalence harness between the eager flood (what the experiment
/// benches run) and the message-level event-driven reference.
class EventFloodEquivalence : public ::testing::Test {
 protected:
  void build_random(std::size_t n, int degree, double holder_density,
                    std::uint64_t seed) {
    des::Rng rng(seed);
    adj_.assign(n, {});
    for (net::NodeId u = 0; u < n; ++u) {
      int attempts = 40;
      while (adj_[u].size() < static_cast<std::size_t>(degree) &&
             attempts-- > 0) {
        const auto v = static_cast<net::NodeId>(rng.uniform_int(n));
        if (v == u) continue;
        if (std::find(adj_[u].begin(), adj_[u].end(), v) != adj_[u].end())
          continue;
        adj_[u].push_back(v);
        adj_[v].push_back(u);
      }
    }
    holder_.assign(n, false);
    for (std::size_t i = 0; i < n; ++i)
      holder_[i] = rng.bernoulli(holder_density);
  }

  void build_tree(std::size_t n) {
    adj_.assign(n, {});
    for (net::NodeId i = 1; i < n; ++i) {
      const net::NodeId parent = (i - 1) / 3;  // ternary tree
      adj_[i].push_back(parent);
      adj_[parent].push_back(i);
    }
    holder_.assign(n, false);
    for (std::size_t i = 0; i < n; i += 5) holder_[i] = true;
    holder_[0] = false;  // initiator
  }

  template <typename DelayFn>
  void expect_equivalent(net::NodeId from, const SearchParams& params,
                         DelayFn&& delay, bool compare_times) {
    VisitStamp stamps_a(adj_.size());
    SearchScratch scratch;
    const auto neighbors = [this](net::NodeId x) -> const std::vector<net::NodeId>& {
      return adj_[x];
    };
    const auto has = [this](net::NodeId x) {
      return static_cast<bool>(holder_[x]);
    };
    const auto eager =
        flood_search(from, params, neighbors, has, delay, stamps_a, scratch);

    VisitStamp stamps_b(adj_.size());
    des::Simulator sim;
    const auto event = event_flood_search(sim, from, params, neighbors, has,
                                          delay, stamps_b);

    EXPECT_EQ(eager.query_messages, event.query_messages);
    EXPECT_EQ(eager.nodes_reached, event.nodes_reached);
    EXPECT_EQ(eager.reply_messages, event.reply_messages);

    std::set<net::NodeId> hits_a, hits_b;
    for (const auto& h : eager.hits) hits_a.insert(h.node);
    for (const auto& h : event.hits) hits_b.insert(h.node);
    EXPECT_EQ(hits_a, hits_b);

    if (compare_times && eager.satisfied()) {
      EXPECT_DOUBLE_EQ(eager.first_result_delay_s(),
                       event.first_result_delay_s());
    }
  }

  std::vector<std::vector<net::NodeId>> adj_;
  std::vector<bool> holder_;
};

TEST_F(EventFloodEquivalence, ConstantDelayRandomGraphs) {
  // With uniform edge delays, event-time order equals hop order, so the
  // two implementations must agree exactly — messages, reach, hit sets
  // and reply times.
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    build_random(150, 4, 0.1, seed);
    for (int hops = 1; hops <= 4; ++hops) {
      SearchParams p;
      p.max_hops = hops;
      expect_equivalent(0, p, [](net::NodeId, net::NodeId) { return 0.25; },
                        /*compare_times=*/true);
    }
  }
}

TEST_F(EventFloodEquivalence, HeterogeneousDelaysOnTrees) {
  // On trees every node has a unique path, so even per-pair-varying
  // (deterministic) delays must match exactly, including times.
  build_tree(121);
  const auto pair_delay = [](net::NodeId a, net::NodeId b) {
    return 0.01 + 0.001 * static_cast<double>((a * 31 + b * 17) % 100);
  };
  for (int hops = 1; hops <= 5; ++hops) {
    SearchParams p;
    p.max_hops = hops;
    expect_equivalent(0, p, pair_delay, /*compare_times=*/true);
  }
}

TEST_F(EventFloodEquivalence, ForwardWhenHitMode) {
  build_tree(40);
  SearchParams p;
  p.max_hops = 4;
  p.forward_when_hit = true;
  expect_equivalent(0, p,
                    [](net::NodeId, net::NodeId) { return 0.1; },
                    /*compare_times=*/true);
}

TEST_F(EventFloodEquivalence, TimeoutFiltersBothSides) {
  build_tree(121);
  SearchParams p;
  p.max_hops = 5;
  p.timeout_s = 0.35;  // cuts off deep replies at 0.1s/hop
  expect_equivalent(0, p, [](net::NodeId, net::NodeId) { return 0.1; },
                    /*compare_times=*/true);
}

TEST(EventFlood, RunsAtSimulatorOffset) {
  // The flood must be anchored at sim.now(), not zero.
  des::Simulator sim;
  sim.schedule_at(100.0, [] {});
  sim.run();
  ASSERT_DOUBLE_EQ(sim.now(), 100.0);

  std::vector<std::vector<net::NodeId>> adj{{1}, {0}};
  std::vector<bool> holder{false, true};
  VisitStamp stamps(2);
  SearchParams p;
  p.max_hops = 1;
  const auto out = event_flood_search(
      sim, 0, p,
      [&adj](net::NodeId n) -> const std::vector<net::NodeId>& {
        return adj[n];
      },
      [&holder](net::NodeId n) { return static_cast<bool>(holder[n]); },
      [](net::NodeId, net::NodeId) { return 1.0; }, stamps);
  ASSERT_TRUE(out.satisfied());
  // Relative timestamps, despite the absolute-time scheduling inside.
  EXPECT_DOUBLE_EQ(out.hits[0].arrival_s, 1.0);
  EXPECT_DOUBLE_EQ(out.hits[0].reply_at_s, 2.0);
}

}  // namespace
}  // namespace dsf::core
