// Randomized differential test: CompactNeighborTable against the
// reference NeighborTable (the std::vector implementation it replaces in
// the engine).  Mirrors tests/des/event_queue_random_test.cpp — the same
// seeded operation stream drives both tables, and after every phase the
// full adjacency state must match element-for-element, including
// insertion order (call sites iterate lists positionally, so order is
// part of the behavioral contract, not an implementation detail).
//
// The raw add/remove primitives are exercised alongside link/unlink —
// they bypass the relation-kind maintenance exactly like ungraceful
// crashes do, leaving dangling one-sided entries the compact table must
// represent identically (and report identically through consistent()).

#include "core/compact_relations.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/relations.h"
#include "des/rng.h"
#include "net/node_id.h"

namespace dsf::core {
namespace {

class DifferentialHarness {
 public:
  DifferentialHarness(std::size_t n, RelationKind kind, std::size_t out_cap,
                      std::size_t in_cap, std::uint64_t seed)
      : n_(n),
        oracle_(n, kind, out_cap, in_cap),
        compact_(n, kind, out_cap, in_cap),
        rng_(seed) {}

  void run_phase(std::size_t ops) {
    for (std::size_t k = 0; k < ops; ++k) {
      step();
      if (::testing::Test::HasFatalFailure()) return;
    }
    check_full_state();
  }

  void check_full_state() {
    ASSERT_EQ(oracle_.size(), compact_.size());
    for (net::NodeId i = 0; i < n_; ++i) {
      const auto& ol = oracle_.lists(i);
      const auto cl = compact_.lists(i);
      ASSERT_TRUE(equal(ol.out(), cl.out())) << "out list of node " << i;
      ASSERT_TRUE(equal(ol.in(), cl.in())) << "in list of node " << i;
      ASSERT_EQ(ol.out_full(), cl.out_full()) << i;
      ASSERT_EQ(ol.in_full(), cl.in_full()) << i;
    }
    ASSERT_EQ(oracle_.consistent(), compact_.consistent());
  }

 private:
  static bool equal(const std::vector<net::NodeId>& v, NeighborView s) {
    if (v.size() != s.size()) return false;
    for (std::size_t i = 0; i < v.size(); ++i)
      if (v[i] != s[i]) return false;
    return true;
  }

  net::NodeId pick() { return rng_.uniform_int(n_); }

  void step() {
    const net::NodeId i = pick(), j = pick();
    switch (rng_.uniform_int(10)) {
      case 0:
      case 1:
      case 2:
        ASSERT_EQ(oracle_.link(i, j), compact_.link(i, j))
            << "link(" << i << ", " << j << ")";
        break;
      case 3:
        ASSERT_EQ(oracle_.unlink(i, j), compact_.unlink(i, j))
            << "unlink(" << i << ", " << j << ")";
        break;
      case 4: {
        const auto a = oracle_.isolate(i);
        const auto b = compact_.isolate(i);
        ASSERT_EQ(a, b) << "isolate(" << i << ")";
        break;
      }
      // Raw primitives: crash-style one-sided mutations.
      case 5:
        ASSERT_EQ(oracle_.lists(i).add_out(j), compact_.lists(i).add_out(j));
        break;
      case 6:
        ASSERT_EQ(oracle_.lists(i).add_in(j), compact_.lists(i).add_in(j));
        break;
      case 7:
        ASSERT_EQ(oracle_.lists(i).remove_out(j),
                  compact_.lists(i).remove_out(j));
        break;
      case 8:
        ASSERT_EQ(oracle_.lists(i).remove_in(j),
                  compact_.lists(i).remove_in(j));
        break;
      case 9:
        // Rare full clear keeps list sizes cycling through grow/shrink.
        if (rng_.uniform_int(8) == 0) {
          oracle_.lists(i).clear();
          compact_.lists(i).clear();
        } else {
          ASSERT_EQ(oracle_.link(j, i), compact_.link(j, i));
        }
        break;
    }
  }

  std::size_t n_;
  NeighborTable oracle_;
  CompactNeighborTable compact_;
  des::Rng rng_;
};

TEST(CompactRelationsDifferential, SymmetricSmallDegree) {
  // The gnutella shape: capacity 4, everything stays in inline slots.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    DifferentialHarness h(40, RelationKind::kSymmetric, 4, 4, seed);
    for (int phase = 0; phase < 5; ++phase) {
      h.run_phase(400);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(CompactRelationsDifferential, AsymmetricOverflowsInline) {
  // Capacity 32 forces lists through the inline → arena growth path and
  // back (isolate/clear release chunks to the free lists for reuse).
  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    DifferentialHarness h(48, RelationKind::kAsymmetric, 32, 32, seed);
    for (int phase = 0; phase < 5; ++phase) {
      h.run_phase(600);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(CompactRelationsDifferential, PureAsymmetricUnboundedIn) {
  // In-capacity is the population: in-lists grow far past the inline
  // slots, exercising repeated chunk doubling.
  for (std::uint64_t seed = 21; seed <= 23; ++seed) {
    DifferentialHarness h(64, RelationKind::kPureAsymmetric, 6, 64, seed);
    for (int phase = 0; phase < 4; ++phase) {
      h.run_phase(800);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(CompactRelationsDifferential, AllToAllLargeLists) {
  for (std::uint64_t seed = 31; seed <= 32; ++seed) {
    DifferentialHarness h(56, RelationKind::kAllToAll, 56, 56, seed);
    for (int phase = 0; phase < 4; ++phase) {
      h.run_phase(700);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(CompactRelationsDifferential, TinyPopulationEdgeCases) {
  // Self-links, immediate saturation, n=2 isolate churn.
  for (std::uint64_t seed = 41; seed <= 44; ++seed) {
    DifferentialHarness h(2, RelationKind::kSymmetric, 4, 4, seed);
    for (int phase = 0; phase < 3; ++phase) {
      h.run_phase(200);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(CompactRelations, MemoryBytesGrowsWithArenaUse) {
  CompactNeighborTable t(128, RelationKind::kPureAsymmetric, 4, 128);
  const std::size_t before = t.memory_bytes();
  for (net::NodeId i = 1; i < 128; ++i) ASSERT_TRUE(t.link(i, 0));
  EXPECT_GT(t.memory_bytes(), before);  // node 0's in-list left the inline block
  EXPECT_TRUE(t.consistent());
}

}  // namespace
}  // namespace dsf::core
