#include "core/relations.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace dsf::core {
namespace {

TEST(NeighborLists, CapacityEnforced) {
  NeighborLists l(2, 2);
  EXPECT_TRUE(l.add_out(1));
  EXPECT_TRUE(l.add_out(2));
  EXPECT_TRUE(l.out_full());
  EXPECT_FALSE(l.add_out(3));
  EXPECT_EQ(l.out().size(), 2u);
}

TEST(NeighborLists, NoDuplicates) {
  NeighborLists l(4, 4);
  EXPECT_TRUE(l.add_out(1));
  EXPECT_FALSE(l.add_out(1));
  EXPECT_TRUE(l.add_in(1));
  EXPECT_FALSE(l.add_in(1));
}

TEST(NeighborLists, RemoveWorks) {
  NeighborLists l(4, 4);
  l.add_out(1);
  l.add_out(2);
  EXPECT_TRUE(l.remove_out(1));
  EXPECT_FALSE(l.remove_out(1));
  EXPECT_FALSE(l.has_out(1));
  EXPECT_TRUE(l.has_out(2));
}

TEST(RelationKind, Names) {
  EXPECT_EQ(to_string(RelationKind::kSymmetric), "symmetric");
  EXPECT_EQ(to_string(RelationKind::kPureAsymmetric), "pure-asymmetric");
  EXPECT_EQ(to_string(RelationKind::kAsymmetric), "asymmetric");
  EXPECT_EQ(to_string(RelationKind::kAllToAll), "all-to-all");
}

TEST(NeighborTable, SymmetricLinkInstallsBothDirections) {
  NeighborTable t(4, RelationKind::kSymmetric, 4, 4);
  EXPECT_TRUE(t.link(0, 1));
  EXPECT_TRUE(t.lists(0).has_out(1));
  EXPECT_TRUE(t.lists(0).has_in(1));
  EXPECT_TRUE(t.lists(1).has_out(0));
  EXPECT_TRUE(t.lists(1).has_in(0));
  EXPECT_TRUE(t.consistent());
}

TEST(NeighborTable, SymmetricUnlinkRemovesBothDirections) {
  NeighborTable t(4, RelationKind::kSymmetric, 4, 4);
  t.link(0, 1);
  EXPECT_TRUE(t.unlink(1, 0));  // either end may sever
  EXPECT_FALSE(t.lists(0).has_out(1));
  EXPECT_FALSE(t.lists(1).has_out(0));
  EXPECT_TRUE(t.consistent());
}

TEST(NeighborTable, SelfLinkRejected) {
  NeighborTable t(2, RelationKind::kSymmetric, 4, 4);
  EXPECT_FALSE(t.link(0, 0));
}

TEST(NeighborTable, DuplicateLinkRejected) {
  NeighborTable t(3, RelationKind::kSymmetric, 4, 4);
  EXPECT_TRUE(t.link(0, 1));
  EXPECT_FALSE(t.link(0, 1));
  EXPECT_FALSE(t.link(1, 0));  // symmetric: reverse already exists
}

TEST(NeighborTable, SymmetricCapacityBlocksLink) {
  NeighborTable t(4, RelationKind::kSymmetric, 1, 1);
  EXPECT_TRUE(t.link(0, 1));
  EXPECT_FALSE(t.link(0, 2));  // 0 is full
  EXPECT_FALSE(t.link(2, 1));  // 1 is full
  EXPECT_TRUE(t.link(2, 3));
  EXPECT_TRUE(t.consistent());
}

TEST(NeighborTable, AsymmetricLinkIsOneWay) {
  NeighborTable t(3, RelationKind::kAsymmetric, 2, 2);
  EXPECT_TRUE(t.link(0, 1));
  EXPECT_TRUE(t.lists(0).has_out(1));
  EXPECT_TRUE(t.lists(1).has_in(0));
  EXPECT_FALSE(t.lists(1).has_out(0));
  EXPECT_TRUE(t.consistent());
  // Reverse direction is an independent edge.
  EXPECT_TRUE(t.link(1, 0));
  EXPECT_TRUE(t.consistent());
}

TEST(NeighborTable, PureAsymmetricInListUnbounded) {
  NeighborTable t(10, RelationKind::kPureAsymmetric, 1, 0);
  // Every node can point at node 9 even though out-capacity is 1.
  for (net::NodeId i = 0; i < 9; ++i) EXPECT_TRUE(t.link(i, 9));
  EXPECT_EQ(t.lists(9).in().size(), 9u);
  EXPECT_TRUE(t.consistent());
}

TEST(NeighborTable, AllToAllCapacitiesCoverNetwork) {
  NeighborTable t(5, RelationKind::kAllToAll, 1, 1);
  for (net::NodeId i = 0; i < 5; ++i)
    for (net::NodeId j = 0; j < 5; ++j)
      if (i != j) {
        EXPECT_TRUE(t.link(i, j));
      }
  EXPECT_TRUE(t.consistent());
}

TEST(NeighborTable, IsolateSeversAllAndReportsAffected) {
  NeighborTable t(5, RelationKind::kSymmetric, 4, 4);
  t.link(0, 1);
  t.link(0, 2);
  t.link(3, 0);
  t.link(1, 2);  // unrelated edge survives
  auto affected = t.isolate(0);
  std::sort(affected.begin(), affected.end());
  EXPECT_EQ(affected, (std::vector<net::NodeId>{1, 2, 3}));
  EXPECT_TRUE(t.lists(0).out().empty());
  EXPECT_TRUE(t.lists(0).in().empty());
  EXPECT_FALSE(t.lists(1).has_out(0));
  EXPECT_FALSE(t.lists(3).has_out(0));
  EXPECT_TRUE(t.lists(1).has_out(2));
  EXPECT_TRUE(t.consistent());
}

TEST(NeighborTable, IsolateAsymmetric) {
  NeighborTable t(4, RelationKind::kAsymmetric, 4, 4);
  t.link(0, 1);  // 0 → 1
  t.link(2, 0);  // 2 → 0
  const auto affected = t.isolate(0);
  EXPECT_EQ(affected, (std::vector<net::NodeId>{2}));
  EXPECT_FALSE(t.lists(2).has_out(0));
  EXPECT_FALSE(t.lists(1).has_in(0));
  EXPECT_TRUE(t.consistent());
}

TEST(NeighborTable, ConsistencyDetectsManualDamage) {
  NeighborTable t(3, RelationKind::kAsymmetric, 2, 2);
  t.link(0, 1);
  // Damage: remove the in-edge only.
  t.lists(1).remove_in(0);
  EXPECT_FALSE(t.consistent());
}

TEST(NeighborTable, SymmetricConsistencyRequiresEqualLists) {
  NeighborTable t(3, RelationKind::kSymmetric, 2, 2);
  t.link(0, 1);
  t.lists(0).remove_in(1);  // break O == I at node 0
  EXPECT_FALSE(t.consistent());
}

TEST(NeighborTable, UnlinkMissingEdgeFails) {
  NeighborTable t(3, RelationKind::kSymmetric, 2, 2);
  EXPECT_FALSE(t.unlink(0, 1));
}

}  // namespace
}  // namespace dsf::core
