#include "core/flood_search.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace dsf::core {
namespace {

/// Tiny fixture: a hand-built directed adjacency with unit delays and a
/// content set, so every flood property can be asserted exactly.
class FloodFixture {
 public:
  explicit FloodFixture(std::size_t n) : adj_(n), stamps_(n) {}

  void edge(net::NodeId a, net::NodeId b) {  // undirected helper
    adj_[a].push_back(b);
    adj_[b].push_back(a);
  }
  void content(net::NodeId n) { holders_.insert(n); }

  SearchOutcome search(net::NodeId from, SearchParams p) {
    return flood_search(
        from, p,
        [this](net::NodeId n) -> const std::vector<net::NodeId>& {
          return adj_[n];
        },
        [this](net::NodeId n) { return holders_.count(n) != 0; },
        [](net::NodeId, net::NodeId) { return 1.0; },  // unit delays
        stamps_, scratch_);
  }

 private:
  std::vector<std::vector<net::NodeId>> adj_;
  std::set<net::NodeId> holders_;
  VisitStamp stamps_;
  SearchScratch scratch_;
};

TEST(VisitStamp, MarksOncePerSearch) {
  VisitStamp v(4);
  v.begin_search();
  EXPECT_TRUE(v.mark(2));
  EXPECT_FALSE(v.mark(2));
  EXPECT_TRUE(v.visited(2));
  EXPECT_FALSE(v.visited(1));
  v.begin_search();
  EXPECT_FALSE(v.visited(2));
  EXPECT_TRUE(v.mark(2));
}

TEST(FloodSearch, FindsContentAtNeighbor) {
  FloodFixture f(3);
  f.edge(0, 1);
  f.edge(1, 2);
  f.content(1);
  SearchParams p;
  p.max_hops = 2;
  const auto out = f.search(0, p);
  ASSERT_TRUE(out.satisfied());
  EXPECT_EQ(out.hits.size(), 1u);
  EXPECT_EQ(out.hits[0].node, 1u);
  EXPECT_EQ(out.hits[0].hop, 1);
}

TEST(FloodSearch, HopLimitStopsPropagation) {
  // Line: 0 - 1 - 2 - 3, content at 3.
  FloodFixture f(4);
  f.edge(0, 1);
  f.edge(1, 2);
  f.edge(2, 3);
  f.content(3);
  SearchParams p;
  p.max_hops = 2;
  EXPECT_FALSE(f.search(0, p).satisfied());
  p.max_hops = 3;
  EXPECT_TRUE(f.search(0, p).satisfied());
}

TEST(FloodSearch, HitNodeDoesNotForwardByDefault) {
  // Line: 0 - 1 - 2; both 1 and 2 hold content, but 1 absorbs the query.
  FloodFixture f(3);
  f.edge(0, 1);
  f.edge(1, 2);
  f.content(1);
  f.content(2);
  SearchParams p;
  p.max_hops = 5;
  const auto out = f.search(0, p);
  EXPECT_EQ(out.hits.size(), 1u);
  EXPECT_EQ(out.hits[0].node, 1u);
}

TEST(FloodSearch, ForwardWhenHitCollectsAll) {
  FloodFixture f(3);
  f.edge(0, 1);
  f.edge(1, 2);
  f.content(1);
  f.content(2);
  SearchParams p;
  p.max_hops = 5;
  p.forward_when_hit = true;
  const auto out = f.search(0, p);
  EXPECT_EQ(out.hits.size(), 2u);
}

TEST(FloodSearch, NeverEchoesToSender) {
  // 0 - 1 only: 1 must not send the query back to 0.
  FloodFixture f(2);
  f.edge(0, 1);
  SearchParams p;
  p.max_hops = 5;
  const auto out = f.search(0, p);
  EXPECT_EQ(out.query_messages, 1u);
  EXPECT_EQ(out.nodes_reached, 1u);
}

TEST(FloodSearch, DuplicateDeliveriesCountedButDiscarded) {
  // Triangle 0-1-2: 1 and 2 both forward to each other at hop 2.
  FloodFixture f(3);
  f.edge(0, 1);
  f.edge(0, 2);
  f.edge(1, 2);
  SearchParams p;
  p.max_hops = 2;
  const auto out = f.search(0, p);
  // 0→1, 0→2, 1→2, 2→1 = 4 transmissions, 2 distinct nodes.
  EXPECT_EQ(out.query_messages, 4u);
  EXPECT_EQ(out.nodes_reached, 2u);
}

TEST(FloodSearch, MessageCountOnFullTree) {
  // Star-of-stars: root 0 with 4 children, each child with 3 extra leaves
  // (degree 4 like the paper).  hops=2 floods everything exactly once.
  FloodFixture f(17);
  for (net::NodeId c = 1; c <= 4; ++c) {
    f.edge(0, c);
    for (net::NodeId l = 0; l < 3; ++l)
      f.edge(c, static_cast<net::NodeId>(4 + (c - 1) * 3 + l + 1));
  }
  SearchParams p;
  p.max_hops = 2;
  const auto out = f.search(0, p);
  EXPECT_EQ(out.query_messages, 4u + 4u * 3u);  // 16 = 4 + 4·(4−1)
  EXPECT_EQ(out.nodes_reached, 16u);
}

TEST(FloodSearch, FirstResultDelayIsMinOverHits) {
  // 0 connected to 1 and 2; both hold content; unit delays → both reply at
  // 2.0 (1 hop out + 1 hop back).
  FloodFixture f(3);
  f.edge(0, 1);
  f.edge(0, 2);
  f.content(1);
  f.content(2);
  SearchParams p;
  p.max_hops = 1;
  const auto out = f.search(0, p);
  ASSERT_EQ(out.hits.size(), 2u);
  EXPECT_DOUBLE_EQ(out.first_result_delay_s(), 2.0);
  EXPECT_EQ(out.reply_messages, 2u);
}

TEST(FloodSearch, DeeperHitsHaveLargerDelay) {
  FloodFixture f(4);
  f.edge(0, 1);
  f.edge(1, 2);
  f.edge(2, 3);
  f.content(3);
  SearchParams p;
  p.max_hops = 3;
  const auto out = f.search(0, p);
  ASSERT_TRUE(out.satisfied());
  // 3 hops out (3.0) + direct reply (1.0).
  EXPECT_DOUBLE_EQ(out.first_result_delay_s(), 4.0);
  EXPECT_EQ(out.hits[0].hop, 3);
}

TEST(FloodSearch, TimeoutDropsLateReplies) {
  FloodFixture f(4);
  f.edge(0, 1);
  f.edge(1, 2);
  f.edge(2, 3);
  f.content(3);
  SearchParams p;
  p.max_hops = 3;
  p.timeout_s = 3.5;  // reply would land at 4.0
  EXPECT_FALSE(f.search(0, p).satisfied());
}

TEST(FloodSearch, InitiatorHoldingContentStillSearches) {
  // The framework's local check happens before flooding; the flood itself
  // must not treat the initiator as a responder.
  FloodFixture f(2);
  f.edge(0, 1);
  f.content(0);
  SearchParams p;
  p.max_hops = 1;
  const auto out = f.search(0, p);
  EXPECT_FALSE(out.satisfied());
}

TEST(FloodSearch, DisconnectedInitiatorProducesNothing) {
  FloodFixture f(3);
  f.edge(1, 2);
  f.content(2);
  SearchParams p;
  p.max_hops = 5;
  const auto out = f.search(0, p);
  EXPECT_FALSE(out.satisfied());
  EXPECT_EQ(out.query_messages, 0u);
}

TEST(FloodSearch, ZeroHopsSendsNothing) {
  FloodFixture f(2);
  f.edge(0, 1);
  f.content(1);
  SearchParams p;
  p.max_hops = 0;
  const auto out = f.search(0, p);
  // Initiator is at hop 0 and may not forward at all...
  EXPECT_EQ(out.hits.size(), 0u);
}

TEST(FloodSearch, UnsatisfiedSearchAnswersZeroDelaySentinel) {
  // Pinned contract: an empty outcome answers 0.0 — finite, never NaN —
  // the same documented sentinel as an empty histogram's quantile, so
  // aggregation paths (span tables, bench reducers) need no NaN guard.
  // Callers that must distinguish "instant" from "missed" check
  // satisfied() first.
  const SearchOutcome empty;
  EXPECT_FALSE(empty.satisfied());
  EXPECT_EQ(empty.first_hit(), nullptr);
  EXPECT_DOUBLE_EQ(empty.first_result_delay_s(), 0.0);
  EXPECT_FALSE(std::isnan(empty.first_result_delay_s()));
  EXPECT_DOUBLE_EQ(empty.best_score(), 0.0);

  // A missed search through the real machinery answers the same sentinel.
  FloodFixture f(3);
  f.edge(0, 1);
  f.edge(1, 2);
  SearchParams p;
  p.max_hops = 2;
  const auto out = f.search(0, p);
  EXPECT_FALSE(out.satisfied());
  EXPECT_DOUBLE_EQ(out.first_result_delay_s(), 0.0);
}

}  // namespace
}  // namespace dsf::core
