#include "core/search_strategies.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace dsf::core {
namespace {

class StrategyFixture {
 public:
  explicit StrategyFixture(std::size_t n)
      : adj_(n), stamps_(n), hit_stamps_(n) {}

  void edge(net::NodeId a, net::NodeId b) {
    adj_[a].push_back(b);
    adj_[b].push_back(a);
  }
  void content(net::NodeId n) { holders_.insert(n); }

  auto neighbors() {
    return [this](net::NodeId n) -> const std::vector<net::NodeId>& {
      return adj_[n];
    };
  }
  auto has_content() {
    return [this](net::NodeId n) { return holders_.count(n) != 0; };
  }
  static double unit_delay(net::NodeId, net::NodeId) { return 1.0; }

  std::vector<std::vector<net::NodeId>> adj_;
  std::set<net::NodeId> holders_;
  VisitStamp stamps_;
  VisitStamp hit_stamps_;
  SearchScratch scratch_;
};

TEST(DepthLadder, SingleCycleForShallowBudgets) {
  EXPECT_EQ(default_depth_ladder(1), (std::vector<int>{1}));
  EXPECT_EQ(default_depth_ladder(0), (std::vector<int>{0}));
}

TEST(DepthLadder, ProbeThenFullDepth) {
  EXPECT_EQ(default_depth_ladder(4), (std::vector<int>{2, 4}));
  EXPECT_EQ(default_depth_ladder(5), (std::vector<int>{3, 5}));
  EXPECT_EQ(default_depth_ladder(2), (std::vector<int>{1, 2}));
}

TEST(IterativeDeepening, StopsAtFirstSatisfiedCycle) {
  // Line 0-1-2-3, content at 1: the depth-2 probe already finds it.
  StrategyFixture f(4);
  f.edge(0, 1);
  f.edge(1, 2);
  f.edge(2, 3);
  f.content(1);
  SearchParams p;
  const auto out = iterative_deepening_search(
      0, p, {2, 4}, f.neighbors(), f.has_content(),
      StrategyFixture::unit_delay, f.stamps_, f.scratch_);
  EXPECT_TRUE(out.satisfied());
  EXPECT_EQ(out.cycles, 1);
  EXPECT_EQ(out.final_depth, 2);
}

TEST(IterativeDeepening, EscalatesWhenNearbyMisses) {
  // Content only at 3: the depth-2 probe fails, depth-4 succeeds.
  StrategyFixture f(5);
  f.edge(0, 1);
  f.edge(1, 2);
  f.edge(2, 3);
  f.content(3);
  SearchParams p;
  const auto out = iterative_deepening_search(
      0, p, {2, 4}, f.neighbors(), f.has_content(),
      StrategyFixture::unit_delay, f.stamps_, f.scratch_);
  EXPECT_TRUE(out.satisfied());
  EXPECT_EQ(out.cycles, 2);
  EXPECT_EQ(out.final_depth, 4);
}

TEST(IterativeDeepening, AccumulatesMessagesAcrossCycles) {
  StrategyFixture f(4);
  f.edge(0, 1);
  f.edge(1, 2);
  f.edge(2, 3);  // no content anywhere
  SearchParams p;
  const auto out = iterative_deepening_search(
      0, p, {1, 3}, f.neighbors(), f.has_content(),
      StrategyFixture::unit_delay, f.stamps_, f.scratch_);
  EXPECT_FALSE(out.satisfied());
  // Cycle 1 (depth 1): 0→1 = 1 message.  Cycle 2 (depth 3): 0→1, 1→2,
  // 2→3 = 3 messages.  Total 4.
  EXPECT_EQ(out.total_messages, 4u);
  EXPECT_EQ(out.cycles, 2);
}

TEST(IterativeDeepening, CheaperThanFullFloodWhenResultsNearby) {
  // Star with content at a first-hop neighbor: probe depth 1 suffices.
  StrategyFixture f(8);
  for (net::NodeId i = 1; i < 8; ++i) f.edge(0, i);
  f.content(1);
  SearchParams p;
  const auto iterative = iterative_deepening_search(
      0, p, {1, 4}, f.neighbors(), f.has_content(),
      StrategyFixture::unit_delay, f.stamps_, f.scratch_);
  p.max_hops = 4;
  const auto flood =
      flood_search(0, p, f.neighbors(), f.has_content(),
                   StrategyFixture::unit_delay, f.stamps_, f.scratch_);
  EXPECT_TRUE(iterative.satisfied());
  EXPECT_LE(iterative.total_messages, flood.query_messages);
}

TEST(DirectedSubset, PicksTopBeneficialNeighbors) {
  StatsStore stats;
  stats.add(1, 1.0);
  stats.add(2, 9.0);
  stats.add(3, 5.0);
  const auto subset = select_directed_subset(stats, std::vector<net::NodeId>{1, 2, 3, 4}, 2);
  EXPECT_EQ(subset, (std::vector<net::NodeId>{2, 3}));
}

TEST(DirectedSubset, UnknownNeighborsRankLast) {
  StatsStore stats;
  stats.add(4, 0.5);
  const auto subset = select_directed_subset(stats, std::vector<net::NodeId>{1, 2, 4}, 2);
  EXPECT_EQ(subset, (std::vector<net::NodeId>{4, 1}));
}

TEST(DirectedSubset, FanoutLargerThanDegreeKeepsAll) {
  StatsStore stats;
  const auto subset = select_directed_subset(stats, std::vector<net::NodeId>{3, 1}, 10);
  EXPECT_EQ(subset.size(), 2u);
}

TEST(DirectedBft, OnlySubsetReceivesFromInitiator) {
  // Star: initiator 0 with neighbors 1..4; content at 4, which is NOT in
  // the directed subset — the query must miss.
  StrategyFixture f(5);
  for (net::NodeId i = 1; i < 5; ++i) f.edge(0, i);
  f.content(4);
  StatsStore stats;
  stats.add(1, 3.0);
  stats.add(2, 2.0);
  SearchParams p;
  p.max_hops = 1;
  const auto subset = select_directed_subset(stats, f.adj_[0], 2);
  const auto out = directed_flood_search(
      0, p, subset, f.neighbors(), f.has_content(),
      StrategyFixture::unit_delay, f.stamps_, f.scratch_);
  EXPECT_FALSE(out.satisfied());
  EXPECT_EQ(out.query_messages, 2u);
}

TEST(DirectedBft, IntermediateNodesFloodNormally) {
  // 0 -(subset)-> 1 -> {2, 3}; content at 3 is reachable because node 1
  // forwards to its whole list.
  StrategyFixture f(4);
  f.edge(0, 1);
  f.edge(1, 2);
  f.edge(1, 3);
  f.content(3);
  StatsStore stats;
  SearchParams p;
  p.max_hops = 2;
  const auto out = directed_flood_search(
      0, p, {1}, f.neighbors(), f.has_content(),
      StrategyFixture::unit_delay, f.stamps_, f.scratch_);
  EXPECT_TRUE(out.satisfied());
  EXPECT_EQ(out.hits[0].node, 3u);
}

TEST(LocalIndices, InitiatorIndexAnswersAtHopZero) {
  StrategyFixture f(3);
  f.edge(0, 1);
  f.edge(1, 2);
  f.content(1);
  SearchParams p;
  p.max_hops = 2;
  const auto out =
      indexed_flood_search(0, p, f.neighbors(), f.has_content(),
                           StrategyFixture::unit_delay, f.stamps_,
                           f.hit_stamps_, f.scratch_);
  ASSERT_TRUE(out.satisfied());
  EXPECT_EQ(out.hits[0].node, 1u);
  EXPECT_EQ(out.hits[0].hop, 0);                 // answered from the index
  EXPECT_DOUBLE_EQ(out.hits[0].reply_at_s, 0.0);  // no network round trip
  EXPECT_EQ(out.query_messages, 0u);              // stop-at-hit: no flood
}

TEST(LocalIndices, RadiusExtendsEffectiveDepth) {
  // Line 0-1-2-3 with content only at 3.  A plain flood needs 3 hops; the
  // indexed search needs only 2 (node 2's index covers node 3).
  StrategyFixture f(4);
  f.edge(0, 1);
  f.edge(1, 2);
  f.edge(2, 3);
  f.content(3);
  SearchParams p;
  p.max_hops = 2;
  const auto plain =
      flood_search(0, p, f.neighbors(), f.has_content(),
                   StrategyFixture::unit_delay, f.stamps_, f.scratch_);
  EXPECT_FALSE(plain.satisfied());
  const auto indexed =
      indexed_flood_search(0, p, f.neighbors(), f.has_content(),
                           StrategyFixture::unit_delay, f.stamps_,
                           f.hit_stamps_, f.scratch_);
  EXPECT_TRUE(indexed.satisfied());
  EXPECT_EQ(indexed.hits[0].node, 3u);
}

TEST(LocalIndices, HolderReportedOnceDespiteMultipleIndexers) {
  // Triangle 0-1-2 plus holder 3 linked to both 1 and 2: nodes 1 and 2
  // both index 3, but it must appear in the results once.
  StrategyFixture f(4);
  f.edge(0, 1);
  f.edge(0, 2);
  f.edge(1, 2);
  f.edge(1, 3);
  f.edge(2, 3);
  f.content(3);
  SearchParams p;
  p.max_hops = 2;
  p.forward_when_hit = true;  // let both branches run
  const auto out =
      indexed_flood_search(0, p, f.neighbors(), f.has_content(),
                           StrategyFixture::unit_delay, f.stamps_,
                           f.hit_stamps_, f.scratch_);
  std::size_t count = 0;
  for (const auto& h : out.hits)
    if (h.node == 3) ++count;
  EXPECT_EQ(count, 1u);
}

TEST(LocalIndices, FewerMessagesThanPlainFloodSameCoverage) {
  // Random-ish overlay: indexed search at depth d-1 vs plain at depth d.
  StrategyFixture f(30);
  for (net::NodeId i = 1; i < 30; ++i)
    f.edge(i, (i * 7 + 3) % i);  // pseudo-random parent: tree-ish overlay
  f.content(29);
  SearchParams deep;
  deep.max_hops = 4;
  const auto plain =
      flood_search(0, deep, f.neighbors(), f.has_content(),
                   StrategyFixture::unit_delay, f.stamps_, f.scratch_);
  SearchParams shallow;
  shallow.max_hops = 3;
  const auto indexed =
      indexed_flood_search(0, shallow, f.neighbors(), f.has_content(),
                           StrategyFixture::unit_delay, f.stamps_,
                           f.hit_stamps_, f.scratch_);
  EXPECT_LE(indexed.query_messages, plain.query_messages);
}

}  // namespace
}  // namespace dsf::core
