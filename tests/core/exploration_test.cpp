#include "core/exploration.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace dsf::core {
namespace {

class ExploreFixture {
 public:
  explicit ExploreFixture(std::size_t n) : adj_(n), stamps_(n) {}

  void edge(net::NodeId a, net::NodeId b) {
    adj_[a].push_back(b);
    adj_[b].push_back(a);
  }
  void summary(net::NodeId n, double v) { summaries_[n] = v; }

  ExploreOutcome run(net::NodeId from, int hops) {
    ExploreParams p;
    p.max_hops = hops;
    return explore(
        from, p,
        [this](net::NodeId n) -> const std::vector<net::NodeId>& {
          return adj_[n];
        },
        [this](net::NodeId n) {
          const auto it = summaries_.find(n);
          return it == summaries_.end() ? 0.0 : it->second;
        },
        stamps_);
  }

 private:
  std::vector<std::vector<net::NodeId>> adj_;
  std::map<net::NodeId, double> summaries_;
  VisitStamp stamps_;
};

TEST(Explore, EveryReachedNodeReports) {
  ExploreFixture f(4);
  f.edge(0, 1);
  f.edge(1, 2);
  f.edge(2, 3);
  const auto out = f.run(0, 3);
  EXPECT_EQ(out.reports.size(), 3u);
  EXPECT_EQ(out.reply_messages, 3u);
}

TEST(Explore, HopLimitRespected) {
  ExploreFixture f(4);
  f.edge(0, 1);
  f.edge(1, 2);
  f.edge(2, 3);
  const auto out = f.run(0, 2);
  EXPECT_EQ(out.reports.size(), 2u);
  for (const auto& r : out.reports) EXPECT_LE(r.hop, 2);
}

TEST(Explore, SummariesComeFromNodes) {
  ExploreFixture f(3);
  f.edge(0, 1);
  f.edge(0, 2);
  f.summary(1, 4.0);
  f.summary(2, 7.0);
  const auto out = f.run(0, 1);
  double total = 0.0;
  for (const auto& r : out.reports) total += r.summary;
  EXPECT_DOUBLE_EQ(total, 11.0);
}

TEST(Explore, ContentRichNodesKeepPropagating) {
  // Unlike search, a node with a high summary still forwards.
  ExploreFixture f(3);
  f.edge(0, 1);
  f.edge(1, 2);
  f.summary(1, 100.0);
  const auto out = f.run(0, 2);
  EXPECT_EQ(out.reports.size(), 2u);  // both 1 and 2 report
}

TEST(Explore, DuplicatesCountedOnce) {
  ExploreFixture f(3);
  f.edge(0, 1);
  f.edge(0, 2);
  f.edge(1, 2);
  const auto out = f.run(0, 2);
  EXPECT_EQ(out.reports.size(), 2u);
  EXPECT_EQ(out.explore_messages, 4u);  // 0→1, 0→2, 1→2, 2→1
}

TEST(Explore, IsolatedInitiator) {
  ExploreFixture f(2);
  const auto out = f.run(0, 3);
  EXPECT_TRUE(out.reports.empty());
  EXPECT_EQ(out.explore_messages, 0u);
}

}  // namespace
}  // namespace dsf::core
