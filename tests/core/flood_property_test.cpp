#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/flood_search.h"
#include "des/rng.h"

namespace dsf::core {
namespace {

/// Property sweep over random overlays: (degree, hop limit, holder density)
/// parameterized; invariants of the flood algorithm must hold on every
/// instance.
class FloodProperty
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {
 protected:
  void SetUp() override {
    degree_ = std::get<0>(GetParam());
    hops_ = std::get<1>(GetParam());
    density_ = std::get<2>(GetParam());

    des::Rng rng(1234 + degree_ * 100 + hops_ * 10 +
                 static_cast<int>(density_ * 100));
    adj_.assign(kNodes, {});
    for (net::NodeId u = 0; u < kNodes; ++u) {
      int attempts = 40;
      while (adj_[u].size() < static_cast<std::size_t>(degree_) &&
             attempts-- > 0) {
        const auto v = static_cast<net::NodeId>(rng.uniform_int(kNodes));
        if (v == u) continue;
        if (std::find(adj_[u].begin(), adj_[u].end(), v) != adj_[u].end())
          continue;
        if (adj_[v].size() >= static_cast<std::size_t>(degree_) + 2) continue;
        adj_[u].push_back(v);
        adj_[v].push_back(u);
      }
    }
    holder_.assign(kNodes, false);
    for (std::size_t i = 0; i < kNodes; ++i) holder_[i] = rng.bernoulli(density_);
  }

  SearchOutcome run(net::NodeId from, std::uint64_t delay_seed) {
    des::Rng delay_rng(delay_seed);
    VisitStamp stamps(kNodes);
    SearchScratch scratch;
    SearchParams p;
    p.max_hops = hops_;
    return flood_search(
        from, p,
        [this](net::NodeId n) -> const std::vector<net::NodeId>& {
          return adj_[n];
        },
        [this](net::NodeId n) { return static_cast<bool>(holder_[n]); },
        [&delay_rng](net::NodeId, net::NodeId) {
          return 0.01 + 0.1 * delay_rng.uniform();
        },
        stamps, scratch);
  }

  static constexpr std::size_t kNodes = 200;
  int degree_ = 0;
  int hops_ = 0;
  double density_ = 0.0;
  std::vector<std::vector<net::NodeId>> adj_;
  std::vector<bool> holder_;
};

TEST_P(FloodProperty, Deterministic) {
  for (net::NodeId from = 0; from < 10; ++from) {
    const auto a = run(from, 7);
    const auto b = run(from, 7);
    EXPECT_EQ(a.query_messages, b.query_messages);
    EXPECT_EQ(a.nodes_reached, b.nodes_reached);
    ASSERT_EQ(a.hits.size(), b.hits.size());
    for (std::size_t i = 0; i < a.hits.size(); ++i) {
      EXPECT_EQ(a.hits[i].node, b.hits[i].node);
      EXPECT_DOUBLE_EQ(a.hits[i].reply_at_s, b.hits[i].reply_at_s);
    }
  }
}

TEST_P(FloodProperty, ReachNeverExceedsMessages) {
  for (net::NodeId from = 0; from < 20; ++from) {
    const auto out = run(from, 11);
    EXPECT_LE(out.nodes_reached, out.query_messages);
    EXPECT_LE(out.hits.size(), out.nodes_reached);
  }
}

TEST_P(FloodProperty, HitsAreDistinctHoldersWithinHopLimit) {
  for (net::NodeId from = 0; from < 20; ++from) {
    const auto out = run(from, 13);
    std::set<net::NodeId> seen;
    for (const auto& h : out.hits) {
      EXPECT_TRUE(holder_[h.node]);
      EXPECT_NE(h.node, from);  // the initiator never replies to itself
      EXPECT_GE(h.hop, 1);
      EXPECT_LE(h.hop, hops_);
      EXPECT_GT(h.reply_at_s, h.arrival_s);
      EXPECT_TRUE(seen.insert(h.node).second) << "duplicate hit";
    }
    EXPECT_EQ(out.reply_messages, out.hits.size());
  }
}

TEST_P(FloodProperty, MessageCountBoundedByTheoreticalFlood) {
  // Upper bound: every reached node (plus the initiator) sends to at most
  // (its degree) neighbors.
  for (net::NodeId from = 0; from < 20; ++from) {
    const auto out = run(from, 17);
    std::uint64_t bound = 0;
    for (const auto& nbrs : adj_) bound += nbrs.size();
    EXPECT_LE(out.query_messages, bound);
  }
}

TEST_P(FloodProperty, WiderHopLimitNeverReachesFewer) {
  if (hops_ < 2) return;
  VisitStamp stamps(kNodes);
  SearchScratch scratch;
  for (net::NodeId from = 0; from < 10; ++from) {
    SearchParams narrow;
    narrow.max_hops = hops_ - 1;
    SearchParams wide;
    wide.max_hops = hops_;
    const auto neighbors = [this](net::NodeId n) -> const std::vector<net::NodeId>& {
      return adj_[n];
    };
    const auto never_hold = [](net::NodeId) { return false; };
    const auto unit = [](net::NodeId, net::NodeId) { return 1.0; };
    const auto a =
        flood_search(from, narrow, neighbors, never_hold, unit, stamps, scratch);
    const auto b =
        flood_search(from, wide, neighbors, never_hold, unit, stamps, scratch);
    EXPECT_LE(a.nodes_reached, b.nodes_reached);
    EXPECT_LE(a.query_messages, b.query_messages);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DegreeHopsDensity, FloodProperty,
    ::testing::Combine(::testing::Values(2, 4, 8),      // degree
                       ::testing::Values(1, 2, 4),      // hop limit
                       ::testing::Values(0.01, 0.2)),   // holder density
    [](const auto& info) {
      return "deg" + std::to_string(std::get<0>(info.param)) + "_hops" +
             std::to_string(std::get<1>(info.param)) + "_dens" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 100));
    });

}  // namespace
}  // namespace dsf::core
