#include "core/graph_stats.h"

#include <gtest/gtest.h>

namespace dsf::core {
namespace {

const auto kAll = [](net::NodeId) { return true; };

TEST(Gini, EmptyAndUniform) {
  EXPECT_DOUBLE_EQ(gini({}), 0.0);
  EXPECT_NEAR(gini({3, 3, 3, 3}), 0.0, 1e-12);
}

TEST(Gini, MaximalConcentration) {
  // One node holds everything: Gini → (n-1)/n.
  EXPECT_NEAR(gini({0, 0, 0, 10}), 0.75, 1e-12);
}

TEST(Gini, KnownValue) {
  // {1, 3}: mean 2, Gini = |1-3| / (2n²·mean) summed = 2/(2·4·2)·2 = 0.25.
  EXPECT_NEAR(gini({1, 3}), 0.25, 1e-12);
}

TEST(Gini, ScaleInvariant) {
  EXPECT_NEAR(gini({1, 2, 3}), gini({10, 20, 30}), 1e-12);
}

TEST(GraphStats, MeanDegreeCountsOutEdges) {
  NeighborTable t(4, RelationKind::kAsymmetric, 4, 4);
  t.link(0, 1);
  t.link(0, 2);
  t.link(1, 2);
  EXPECT_DOUBLE_EQ(mean_degree(t, kAll), 3.0 / 4.0);
}

TEST(GraphStats, FilterRestrictsPopulation) {
  NeighborTable t(4, RelationKind::kAsymmetric, 4, 4);
  t.link(0, 1);
  t.link(0, 2);
  const auto only0 = [](net::NodeId n) { return n == 0; };
  EXPECT_DOUBLE_EQ(mean_degree(t, only0), 2.0);
}

TEST(GraphStats, DegreeGiniZeroForRegularGraph) {
  NeighborTable t(4, RelationKind::kSymmetric, 4, 4);
  // Ring: every node has degree 2.
  t.link(0, 1);
  t.link(1, 2);
  t.link(2, 3);
  t.link(3, 0);
  EXPECT_NEAR(degree_gini(t, kAll), 0.0, 1e-12);
}

TEST(GraphStats, DegreeGiniPositiveForStar) {
  NeighborTable t(5, RelationKind::kSymmetric, 8, 8);
  for (net::NodeId i = 1; i < 5; ++i) t.link(0, i);
  EXPECT_GT(degree_gini(t, kAll), 0.3);
}

TEST(GraphStats, ClusteringTriangleIsOne) {
  NeighborTable t(3, RelationKind::kSymmetric, 4, 4);
  t.link(0, 1);
  t.link(1, 2);
  t.link(2, 0);
  EXPECT_DOUBLE_EQ(clustering_coefficient(t, kAll), 1.0);
}

TEST(GraphStats, ClusteringStarIsZero) {
  NeighborTable t(5, RelationKind::kSymmetric, 8, 8);
  for (net::NodeId i = 1; i < 5; ++i) t.link(0, i);
  EXPECT_DOUBLE_EQ(clustering_coefficient(t, kAll), 0.0);
}

TEST(GraphStats, ClusteringSkipsDegreeOneNodes) {
  NeighborTable t(3, RelationKind::kSymmetric, 4, 4);
  t.link(0, 1);  // both endpoints have a single neighbor
  EXPECT_DOUBLE_EQ(clustering_coefficient(t, kAll), 0.0);
}

TEST(GraphStats, HomophilyFraction) {
  NeighborTable t(4, RelationKind::kAsymmetric, 4, 4);
  t.link(0, 1);  // same attribute (0, 1 -> class 0)
  t.link(0, 2);  // different
  t.link(3, 2);  // same (2, 3 -> class 1)
  const auto cls = [](net::NodeId n) -> std::uint32_t { return n / 2; };
  EXPECT_DOUBLE_EQ(same_attribute_fraction(t, kAll, cls), 2.0 / 3.0);
}

TEST(GraphStats, EmptyGraphIsAllZero) {
  NeighborTable t(3, RelationKind::kSymmetric, 4, 4);
  EXPECT_DOUBLE_EQ(mean_degree(t, kAll), 0.0);
  EXPECT_DOUBLE_EQ(degree_gini(t, kAll), 0.0);
  EXPECT_DOUBLE_EQ(clustering_coefficient(t, kAll), 0.0);
  EXPECT_DOUBLE_EQ(
      same_attribute_fraction(t, kAll, [](net::NodeId) { return 0u; }), 0.0);
}

}  // namespace
}  // namespace dsf::core
