#include "core/lsh.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/flood_search.h"
#include "des/rng.h"

namespace dsf::core {
namespace {

using Item = std::uint64_t;

double true_jaccard(const std::vector<Item>& a, const std::vector<Item>& b) {
  std::vector<Item> inter, uni;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(inter));
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(uni));
  return uni.empty() ? 0.0
                     : static_cast<double>(inter.size()) /
                           static_cast<double>(uni.size());
}

TEST(LshIndex, IdenticalSetsShareEverySignaturePosition) {
  LshIndex idx;
  const std::vector<Item> items = {3, 17, 42, 99, 1000};
  idx.append_node(std::span<const Item>(items));
  idx.append_node(std::span<const Item>(items));
  EXPECT_DOUBLE_EQ(idx.estimated_similarity(0, 1), 1.0);
  EXPECT_TRUE(idx.candidate(0, 1));
}

TEST(LshIndex, SelfIsNeverACandidateButMaximallySimilar) {
  LshIndex idx;
  const std::vector<Item> items = {1, 2, 3};
  idx.append_node(std::span<const Item>(items));
  EXPECT_FALSE(idx.candidate(0, 0));
  EXPECT_DOUBLE_EQ(idx.estimated_similarity(0, 0), 1.0);
}

TEST(LshIndex, EmptySetsMatchNothingIncludingEachOther) {
  LshIndex idx;
  const std::vector<Item> items = {1, 2, 3};
  const std::vector<Item> none;
  idx.append_node(std::span<const Item>(none));
  idx.append_node(std::span<const Item>(none));
  idx.append_node(std::span<const Item>(items));
  EXPECT_FALSE(idx.candidate(0, 1));  // two free-riders must not cluster
  EXPECT_FALSE(idx.candidate(0, 2));
  EXPECT_DOUBLE_EQ(idx.estimated_similarity(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(idx.estimated_similarity(0, 2), 0.0);
}

TEST(LshIndex, DisjointSetsRarelyCollide) {
  LshIndex idx;
  std::vector<Item> a, b;
  for (Item i = 0; i < 50; ++i) a.push_back(i);
  for (Item i = 1000; i < 1050; ++i) b.push_back(i);
  idx.append_node(std::span<const Item>(a));
  idx.append_node(std::span<const Item>(b));
  // s = 0: collision probability 1 - (1 - 0)^bands = 0 in expectation;
  // the estimate should be (near) zero too.
  EXPECT_LT(idx.estimated_similarity(0, 1), 0.1);
}

TEST(LshCollisionProbability, SCurveEndpointsAndMonotonicity) {
  EXPECT_DOUBLE_EQ(lsh_collision_probability(0.0, 16, 4), 0.0);
  EXPECT_NEAR(lsh_collision_probability(1.0, 16, 4), 1.0, 1e-12);
  double prev = -1.0;
  for (double s = 0.0; s <= 1.0; s += 0.05) {
    const double p = lsh_collision_probability(s, 16, 4);
    EXPECT_GE(p, prev);
    prev = p;
  }
  // The default geometry pins the steep rise: ~0.9998 at s = 0.8,
  // still small at s = 0.2.
  EXPECT_GT(lsh_collision_probability(0.8, 16, 4), 0.99);
  EXPECT_LT(lsh_collision_probability(0.2, 16, 4), 0.05);
}

/// Planted-duplicates library: peers derive their sets from a handful of
/// prototypes with small mutations, so true-Jaccard >= threshold pairs
/// exist by construction.  The index must retrieve >= 90% of the
/// initiator's true neighbors through the candidate-and-threshold gate —
/// the recall floor the scheme-sweep bench certifies end to end.
TEST(LshIndex, PlantedDuplicatesRecallAtLeastPointNine) {
  constexpr std::uint32_t kPeers = 120;
  constexpr std::uint32_t kProtos = 6;
  constexpr std::uint32_t kSetSize = 60;
  constexpr double kThreshold = 0.5;
  des::Rng rng(20260809);

  // Prototypes are disjoint item ranges; each peer copies its prototype
  // and mutates ~7% of the items, leaving true Jaccard ~0.76 within a
  // family (safely above the threshold) and ~0 across families.
  std::vector<std::vector<Item>> sets(kPeers);
  for (std::uint32_t p = 0; p < kPeers; ++p) {
    const std::uint32_t proto = p % kProtos;
    std::vector<Item>& s = sets[p];
    for (Item i = 0; i < kSetSize; ++i) {
      if (rng.uniform() < 0.07) {
        s.push_back(1'000'000 + p * kSetSize + i);  // private mutation
      } else {
        s.push_back(proto * kSetSize + i);  // shared prototype item
      }
    }
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
  }

  LshIndex idx;
  idx.reserve(kPeers);
  for (const auto& s : sets) idx.append_node(std::span<const Item>(s));

  std::uint64_t truth = 0;
  std::uint64_t retrieved = 0;
  std::uint64_t false_hits = 0;
  for (std::uint32_t a = 0; a < kPeers; ++a) {
    for (std::uint32_t b = 0; b < kPeers; ++b) {
      if (a == b) continue;
      const bool is_true = true_jaccard(sets[a], sets[b]) >= kThreshold;
      const bool is_hit = idx.candidate(a, b) &&
                          idx.estimated_similarity(a, b) >= kThreshold;
      truth += is_true;
      if (is_true && is_hit) ++retrieved;
      if (!is_true && is_hit) ++false_hits;
    }
  }
  ASSERT_GT(truth, 0u);
  const double recall =
      static_cast<double>(retrieved) / static_cast<double>(truth);
  EXPECT_GE(recall, 0.9);
  // Cross-family pairs have Jaccard ~0, so false hits should be rare.
  EXPECT_LT(false_hits, truth / 10);
}

/// lsh_similarity_search over a small overlay: scatter covers the first
/// ceil(max_hops/2) hops, the gather phase follows buckets only, and
/// every reported hit clears the threshold.
TEST(LshSimilaritySearch, ScatterThenBucketRoutedGather) {
  // Line overlay 0-1-2-3 where 0, 2 and 3 share a prototype and 1 is
  // unrelated: the hop-1 scatter always reaches 1, but the hop-2 forward
  // (gather) only goes where buckets collide.
  const std::vector<Item> proto = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<Item> other = {100, 101, 102, 103};
  LshIndex idx;
  idx.append_node(std::span<const Item>(proto));   // 0 (initiator)
  idx.append_node(std::span<const Item>(other));   // 1
  idx.append_node(std::span<const Item>(proto));   // 2
  idx.append_node(std::span<const Item>(proto));   // 3

  std::vector<std::vector<net::NodeId>> adj = {{1}, {0, 2}, {1, 3}, {2}};
  VisitStamp stamps(4);
  SearchScratch scratch;
  ReliableTransmit reliable;
  SearchParams p;
  p.max_hops = 3;
  p.forward_when_hit = true;
  p.timeout_s = 100.0;

  const auto out = lsh_similarity_search(
      0, p, 0.5,
      [&](net::NodeId n) -> const std::vector<net::NodeId>& {
        return adj[n];
      },
      [&](net::NodeId n) { return idx.estimated_similarity(0, n); },
      [&](net::NodeId n) { return idx.candidate(0, n); },
      [](net::NodeId, net::NodeId) { return 1.0; }, reliable, stamps,
      scratch);

  // Scatter radius = (3+1)/2 = 2: hops 1 and 2 forward everywhere, so
  // node 1 is visited despite similarity 0 (no hit) and node 2 is
  // reached and replies; the hop-3 forward to node 3 passes the bucket
  // gate only because its signature collides with the initiator's.
  ASSERT_EQ(out.hits.size(), 2u);
  EXPECT_EQ(out.hits[0].node, 2u);
  EXPECT_EQ(out.hits[1].node, 3u);
  for (const auto& h : out.hits) EXPECT_GE(h.score, 0.5);
  EXPECT_EQ(out.nodes_reached, 3u);
}

TEST(LshSimilaritySearch, GatherWithholdsNonCandidates) {
  // Star at 1 hop + leaves at 2 hops, max_hops = 2 => scatter radius 1.
  // Hop-2 forwards only follow bucket collisions; the unrelated leaf is
  // pruned.
  const std::vector<Item> proto = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<Item> other = {100, 101, 102, 103};
  LshIndex idx;
  idx.append_node(std::span<const Item>(proto));   // 0 initiator
  idx.append_node(std::span<const Item>(other));   // 1 relay
  idx.append_node(std::span<const Item>(proto));   // 2 similar leaf
  idx.append_node(std::span<const Item>(other));   // 3 unrelated leaf

  std::vector<std::vector<net::NodeId>> adj = {{1}, {0, 2, 3}, {1}, {1}};
  VisitStamp stamps(4);
  SearchScratch scratch;
  ReliableTransmit reliable;
  SearchParams p;
  p.max_hops = 2;
  p.forward_when_hit = true;
  p.timeout_s = 100.0;

  const auto out = lsh_similarity_search(
      0, p, 0.5,
      [&](net::NodeId n) -> const std::vector<net::NodeId>& {
        return adj[n];
      },
      [&](net::NodeId n) { return idx.estimated_similarity(0, n); },
      [&](net::NodeId n) { return idx.candidate(0, n); },
      [](net::NodeId, net::NodeId) { return 1.0; }, reliable, stamps,
      scratch);

  ASSERT_EQ(out.hits.size(), 1u);
  EXPECT_EQ(out.hits[0].node, 2u);
  EXPECT_EQ(out.pruned_subtrees, 1u);  // the 1 -> 3 forward was withheld
  EXPECT_EQ(out.nodes_reached, 2u);    // 1 (scatter) and 2 (gather)
}

}  // namespace
}  // namespace dsf::core
