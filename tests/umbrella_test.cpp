// Compile-level test: the umbrella header is self-contained and the whole
// public API coexists in one translation unit.

#include "dsf.h"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EveryModuleUsableFromOneHeader) {
  dsf::des::Rng rng(1);
  dsf::des::Simulator sim;
  dsf::net::MessageStats traffic;
  dsf::core::StatsStore stats;
  stats.add(1, 2.0);
  dsf::core::NeighborTable overlay(4, dsf::core::RelationKind::kSymmetric, 2,
                                   2);
  EXPECT_TRUE(overlay.link(0, 1));
  EXPECT_TRUE(overlay.consistent());

  dsf::workload::Catalog catalog;
  EXPECT_EQ(catalog.num_songs(), 200'000u);

  dsf::metrics::Summary s;
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 1.0);

  dsf::gnutella::Config config;
  EXPECT_TRUE(config.dynamic);
  EXPECT_FALSE(config.as_static().dynamic);
}

}  // namespace
