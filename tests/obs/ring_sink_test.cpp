// The ring is the recorder's only data structure; these tests pin its
// contract: fixed footprint, oldest-first overwrite, chronological
// snapshots, and an overwrite count that owns up to lost history.
#include <gtest/gtest.h>

#include <type_traits>

#include "obs/record.h"
#include "obs/ring_sink.h"
#include "obs/sink.h"

namespace dsf::obs {
namespace {

Record stamped(double t, std::uint32_t from) {
  Record r;
  r.time_s = t;
  r.from = from;
  r.kind = RecordKind::kSend;
  return r;
}

TEST(Record, StaysCompactAndTriviallyCopyable) {
  EXPECT_EQ(sizeof(Record), 48u);
  EXPECT_TRUE(std::is_trivially_copyable_v<Record>);
}

TEST(Record, DelayRoundTripsThroughBits) {
  Record r;
  r.b = Record::pack_delay(0.602481);
  EXPECT_DOUBLE_EQ(r.unpack_delay(), 0.602481);
  r.b = Record::pack_delay(-1.0);
  EXPECT_DOUBLE_EQ(r.unpack_delay(), -1.0);
}

TEST(RingSink, EmptyByDefault) {
  RingSink ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total(), 0u);
  EXPECT_EQ(ring.overwritten(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
  EXPECT_TRUE(ring.enabled());
}

TEST(RingSink, HoldsRecordsInOrderBeforeWrap) {
  RingSink ring(8);
  for (int i = 0; i < 5; ++i) ring.record(stamped(i, 100 + i));
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.total(), 5u);
  EXPECT_EQ(ring.overwritten(), 0u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(snap[i].time_s, i);
    EXPECT_EQ(snap[i].from, 100u + i);
  }
}

TEST(RingSink, WrapKeepsNewestAndCountsOverwrites) {
  RingSink ring(4);
  for (int i = 0; i < 11; ++i) ring.record(stamped(i, i));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total(), 11u);
  EXPECT_EQ(ring.overwritten(), 7u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // Oldest-first: records 7, 8, 9, 10 survive.
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(snap[i].time_s, 7 + i);
}

TEST(RingSink, SnapshotIsChronologicalAtExactWrapBoundary) {
  RingSink ring(4);
  for (int i = 0; i < 8; ++i) ring.record(stamped(i, i));
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(snap[i].time_s, 4 + i);
}

TEST(RingSink, ClearForgetsRecordsButKeepsCapacity) {
  RingSink ring(4);
  for (int i = 0; i < 6; ++i) ring.record(stamped(i, i));
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total(), 0u);
  EXPECT_EQ(ring.capacity(), 4u);
  ring.record(stamped(42.0, 1));
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_DOUBLE_EQ(snap[0].time_s, 42.0);
}

TEST(NullSink, IsDisabledSingleton) {
  EXPECT_FALSE(NullSink::instance().enabled());
  // record() must be callable and a no-op.
  NullSink::instance().record(stamped(0.0, 0));
}

}  // namespace
}  // namespace dsf::obs
