// The Chrome-trace exporter's output must be a document a real trace
// viewer would load: valid JSON, async begin/end pairs per span, instant
// events for wire records, counters for heartbeats, and honest metadata
// about ring truncation.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "json_check.h"
#include "obs/chrome_trace.h"
#include "obs/record.h"

namespace dsf::obs {
namespace {

std::vector<Record> sample_trace() {
  std::vector<Record> recs;

  Record begin;
  begin.kind = RecordKind::kSearchBegin;
  begin.time_s = 1.5;
  begin.span = 1;
  begin.from = 7;
  begin.ttl = 2;
  begin.a = 42;
  recs.push_back(begin);

  Record send;
  send.kind = RecordKind::kSend;
  send.time_s = 1.5;
  send.span = 1;
  send.from = 7;
  send.to = 8;
  send.ttl = 2;
  send.a = 120;
  send.b = 1;
  recs.push_back(send);

  Record end;
  end.kind = RecordKind::kSearchEnd;
  end.time_s = 1.75;
  end.span = 1;
  end.from = 7;
  end.ttl = 1;
  end.a = 3;
  end.b = Record::pack_delay(0.25);
  recs.push_back(end);

  Record crash;
  crash.kind = RecordKind::kPeerCrash;
  crash.time_s = 2.0;
  crash.from = 9;
  recs.push_back(crash);

  Record hb;
  hb.kind = RecordKind::kHeartbeat;
  hb.time_s = 3.0;
  hb.from = 17;   // queue population
  hb.to = 1200;   // wall ms
  hb.a = 5000;    // events executed
  hb.b = 64u << 20;  // RSS bytes
  recs.push_back(hb);

  return recs;
}

TEST(ChromeTrace, EmitsParseableDocumentWithAllEventClasses) {
  std::ostringstream os;
  write_chrome_trace(os, sample_trace(), /*overwritten=*/5);

  const auto doc = testjson::parse(os.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("displayTimeUnit").string, "ms");
  EXPECT_DOUBLE_EQ(doc.at("otherData").at("records").number, 5.0);
  EXPECT_DOUBLE_EQ(doc.at("otherData").at("overwritten").number, 5.0);

  const auto& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());

  bool saw_begin = false, saw_end = false, saw_wire = false,
       saw_crash = false;
  int counters = 0;
  for (const auto& e : events.array) {
    const std::string ph = e.at("ph").string;
    if (ph == "b") {
      saw_begin = true;
      EXPECT_DOUBLE_EQ(e.at("ts").number, 1.5e6);  // sim seconds → µs
      EXPECT_DOUBLE_EQ(e.at("args").at("item").number, 42.0);
      EXPECT_DOUBLE_EQ(e.at("args").at("max_hops").number, 2.0);
    } else if (ph == "e") {
      saw_end = true;
      EXPECT_DOUBLE_EQ(e.at("args").at("results").number, 3.0);
      EXPECT_DOUBLE_EQ(e.at("args").at("first_hit_hop").number, 1.0);
    } else if (ph == "i" && e.at("name").string != "peer-crash") {
      saw_wire = true;
      EXPECT_DOUBLE_EQ(e.at("args").at("from").number, 7.0);
      EXPECT_DOUBLE_EQ(e.at("args").at("to").number, 8.0);
      EXPECT_DOUBLE_EQ(e.at("args").at("span").number, 1.0);
    } else if (ph == "i") {
      saw_crash = true;
    } else if (ph == "C") {
      ++counters;
    }
  }
  EXPECT_TRUE(saw_begin);
  EXPECT_TRUE(saw_end);
  EXPECT_TRUE(saw_wire);
  EXPECT_TRUE(saw_crash);
  EXPECT_EQ(counters, 3);  // events/sec, queue population, RSS
}

TEST(ChromeTrace, BeginAndEndShareTheAsyncId) {
  std::ostringstream os;
  write_chrome_trace(os, sample_trace());
  const auto doc = testjson::parse(os.str());
  double begin_id = -1.0, end_id = -2.0;
  for (const auto& e : doc.at("traceEvents").array) {
    if (e.at("ph").string == "b") begin_id = e.at("id").number;
    if (e.at("ph").string == "e") end_id = e.at("id").number;
  }
  EXPECT_DOUBLE_EQ(begin_id, 1.0);
  EXPECT_DOUBLE_EQ(begin_id, end_id);
}

TEST(ChromeTrace, EmptyStreamIsStillValid) {
  std::ostringstream os;
  write_chrome_trace(os, std::vector<Record>{});
  const auto doc = testjson::parse(os.str());
  EXPECT_TRUE(doc.at("traceEvents").is_array());
  EXPECT_TRUE(doc.at("traceEvents").array.empty());
  EXPECT_DOUBLE_EQ(doc.at("otherData").at("overwritten").number, 0.0);
}

}  // namespace
}  // namespace dsf::obs
