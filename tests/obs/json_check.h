#pragma once

// Minimal recursive-descent JSON parser for test assertions: enough to
// verify that the Chrome-trace exporter and JsonEmitter produce documents
// a real consumer would accept, without adding a JSON dependency to the
// build.  Parses the full value grammar (objects, arrays, strings with
// escapes, numbers, true/false/null); numbers are held as double.

#include <cctype>
#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace dsf::testjson {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool has(const std::string& key) const {
    return is_object() && object.count(key) > 0;
  }
  const Value& at(const std::string& key) const {
    auto it = object.find(key);
    if (it == object.end()) throw std::out_of_range("no key: " + key);
    return it->second;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        Value v;
        v.type = Value::Type::kString;
        v.string = string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        Value v;
        v.type = Value::Type::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        Value v;
        v.type = Value::Type::kBool;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      }
      default: return number();
    }
  }

  Value object() {
    expect('{');
    Value v;
    v.type = Value::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object[key] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value array() {
    expect('[');
    Value v;
    v.type = Value::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u digit");
          }
          // Tests only emit ASCII escapes; reconstruct the low byte.
          out += static_cast<char>(code & 0x7f);
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("not a value");
    Value v;
    v.type = Value::Type::kNumber;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

inline Value parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace dsf::testjson
