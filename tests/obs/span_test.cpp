// Span reconstruction: a hand-built record stream must fold back into
// exactly the summary its encoding table promises, and a real traced
// Gnutella run must produce internally consistent spans end to end.
#include <gtest/gtest.h>

#include <sstream>

#include "gnutella/config.h"
#include "gnutella/simulation.h"
#include "obs/record.h"
#include "obs/ring_sink.h"
#include "obs/span_table.h"

namespace dsf::obs {
namespace {

Record wire(RecordKind kind, double t, std::uint32_t span, std::uint32_t from,
            std::uint32_t to, int ttl, std::uint64_t copies = 1) {
  Record r;
  r.kind = kind;
  r.time_s = t;
  r.span = span;
  r.from = from;
  r.to = to;
  r.ttl = static_cast<std::int16_t>(ttl);
  r.a = 120;  // bytes; irrelevant to reconstruction
  r.b = copies;
  return r;
}

TEST(SpanReconstruct, SyntheticSearchRoundTrips) {
  std::vector<Record> recs;

  Record begin;
  begin.kind = RecordKind::kSearchBegin;
  begin.time_s = 10.0;
  begin.span = 1;
  begin.from = 7;
  begin.ttl = 3;  // hop budget
  begin.a = 555;  // target item
  recs.push_back(begin);

  // Hop 1: two query copies out of the initiator (full budget).
  recs.push_back(wire(RecordKind::kSend, 10.0, 1, 7, 8, 3));
  recs.push_back(wire(RecordKind::kSend, 10.0, 1, 7, 9, 3));
  recs.push_back(wire(RecordKind::kRecv, 10.0, 1, 7, 8, 3));
  recs.push_back(wire(RecordKind::kRecv, 10.0, 1, 7, 9, 3));
  // Hop 2: one forward, one loss.
  recs.push_back(wire(RecordKind::kSend, 10.0, 1, 8, 11, 2));
  recs.push_back(wire(RecordKind::kDrop, 10.0, 1, 9, 12, 2));
  // A reply travels without a hop budget: counts as a send, not a query.
  recs.push_back(wire(RecordKind::kSend, 10.2, 1, 8, 7, -1));

  Record end;
  end.kind = RecordKind::kSearchEnd;
  end.time_s = 10.5;
  end.span = 1;
  end.from = 7;
  end.ttl = 1;  // first hit at hop 1
  end.a = 2;    // results
  end.b = Record::pack_delay(0.25);
  recs.push_back(end);

  const auto spans = reconstruct_spans(recs);
  ASSERT_EQ(spans.size(), 1u);
  const SpanSummary& s = spans[0];
  EXPECT_EQ(s.span, 1u);
  EXPECT_EQ(s.initiator, 7u);
  EXPECT_EQ(s.item, 555u);
  EXPECT_EQ(s.max_hops, 3);
  EXPECT_DOUBLE_EQ(s.begin_s, 10.0);
  EXPECT_DOUBLE_EQ(s.end_s, 10.5);
  EXPECT_EQ(s.sends, 4u);        // 2 queries hop 1 + 1 hop 2 + 1 reply
  EXPECT_EQ(s.query_sends, 3u);  // the reply carries no hop budget
  EXPECT_EQ(s.delivers, 2u);
  EXPECT_EQ(s.drops, 1u);
  EXPECT_EQ(s.depth, 2);   // budget 3 spent down to 2 → hop 2
  EXPECT_EQ(s.fanout, 2);  // full-budget sends
  EXPECT_EQ(s.results, 2u);
  EXPECT_EQ(s.first_hit_hop, 1);
  EXPECT_TRUE(s.hit());
  EXPECT_DOUBLE_EQ(s.first_result_delay_s, 0.25);
  EXPECT_NEAR(s.slowest_gap_s, 0.3, 1e-12);  // 10.2 → 10.5
  EXPECT_TRUE(s.complete);
}

TEST(SpanReconstruct, DuplicatedCopiesCountViaTheCopiesField) {
  std::vector<Record> recs;
  recs.push_back(wire(RecordKind::kSend, 1.0, 3, 1, 2, 4, /*copies=*/2));
  recs.push_back(wire(RecordKind::kRecv, 1.0, 3, 1, 2, 4, /*copies=*/2));
  const auto spans = reconstruct_spans(recs);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].sends, 2u);
  EXPECT_EQ(spans[0].delivers, 2u);
}

TEST(SpanReconstruct, EndWithoutBeginIsPartial) {
  Record end;
  end.kind = RecordKind::kSearchEnd;
  end.time_s = 2.0;
  end.span = 9;
  end.from = 4;
  end.ttl = -1;
  end.b = Record::pack_delay(-1.0);
  const std::vector<Record> recs = {end};
  const auto spans = reconstruct_spans(recs);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_FALSE(spans[0].complete);
  EXPECT_FALSE(spans[0].hit());
}

TEST(SpanReconstruct, SpanlessRecordsAreIgnored) {
  Record hb;
  hb.kind = RecordKind::kHeartbeat;
  hb.span = 0;
  const std::vector<Record> recs = {hb};
  EXPECT_TRUE(reconstruct_spans(recs).empty());
}

TEST(SpanTable, RendersOneRowPerSpan) {
  std::vector<Record> recs;
  recs.push_back(wire(RecordKind::kSend, 1.0, 1, 1, 2, 2));
  recs.push_back(wire(RecordKind::kSend, 2.0, 2, 3, 4, 2));
  const auto table = span_table(reconstruct_spans(recs));
  std::ostringstream os;
  table.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("span"), std::string::npos);
  EXPECT_NE(text.find("partial"), std::string::npos);
}

// End to end: a traced Gnutella run produces one span per issued query,
// each internally consistent.
TEST(SpanReconstruct, TracedGnutellaRunProducesConsistentSpans) {
  gnutella::Config config;
  config.num_users = 80;
  config.sim_hours = 0.5;
  config.warmup_hours = 0.1;
  config.seed = 42;

  RingSink ring(1u << 20);  // large enough that nothing wraps
  gnutella::Simulation sim(config);
  sim.set_trace_sink(&ring);
  const auto result = sim.run();

  ASSERT_GT(ring.total(), 0u);
  ASSERT_EQ(ring.overwritten(), 0u);
  const auto snap = ring.snapshot();

  std::uint64_t begins = 0, ends = 0;
  for (const Record& r : snap) {
    if (r.kind == RecordKind::kSearchBegin) ++begins;
    if (r.kind == RecordKind::kSearchEnd) ++ends;
  }
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends) << "every span must close";

  const auto spans = reconstruct_spans(snap);
  EXPECT_EQ(spans.size(), begins);
  std::uint64_t hits = 0;
  for (const auto& s : spans) {
    EXPECT_TRUE(s.complete) << "span " << s.span;
    EXPECT_GT(s.max_hops, 0);
    EXPECT_LE(s.begin_s, s.end_s);
    EXPECT_LE(s.depth, s.max_hops);
    if (s.hit()) {
      ++hits;
      EXPECT_GE(s.first_result_delay_s, 0.0);
      EXPECT_LE(s.first_hit_hop, s.max_hops);
    }
  }
  EXPECT_GT(hits, 0u) << "golden-ish config should satisfy some queries";
  // The traced run's metrics must agree with the span view where the two
  // overlap: remote hits are spans that ended with results.
  EXPECT_GT(result.queries_issued, 0u);
}

}  // namespace
}  // namespace dsf::obs
