#include <gtest/gtest.h>

#include "diglib/diglib_sim.h"

namespace dsf::diglib {
namespace {

/// Property sweep over federation sizes and list modes.
class DigLibProperty
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, ListMode>> {
 protected:
  DigLibConfig make_config() const {
    DigLibConfig c;
    c.num_repositories = std::get<0>(GetParam());
    c.mode = std::get<1>(GetParam());
    c.num_docs = 8000;
    c.num_topics = 8;
    c.holdings = 300;
    c.sim_hours = 0.75;
    c.warmup_hours = 0.1;
    c.seed = 5 + c.num_repositories;
    return c;
  }
};

TEST_P(DigLibProperty, AccountingBalances) {
  const DigLibConfig c = make_config();
  const auto r = DigLibSim(c).run();
  EXPECT_GT(r.queries, 0u);
  EXPECT_LE(r.satisfied, r.queries);
  EXPECT_LE(r.copies_found, r.copies_available);
  EXPECT_EQ(r.first_result_delay_s.count(), r.satisfied);
  EXPECT_EQ(r.messages_per_query.count(), r.queries);
}

TEST_P(DigLibProperty, OverlayShapeMatchesMode) {
  const DigLibConfig c = make_config();
  DigLibSim sim(c);
  sim.run();
  EXPECT_TRUE(sim.overlay().consistent());
  for (net::NodeId p = 0; p < c.num_repositories; ++p) {
    const auto degree = sim.overlay().lists(p).out().size();
    if (c.mode == ListMode::kAllToAll) {
      EXPECT_EQ(degree, c.num_repositories - 1);
    } else {
      EXPECT_LE(degree, c.num_neighbors);
    }
  }
}

TEST_P(DigLibProperty, AllToAllAlwaysFullRecall) {
  const DigLibConfig c = make_config();
  if (c.mode != ListMode::kAllToAll) return;
  const auto r = DigLibSim(c).run();
  EXPECT_DOUBLE_EQ(r.recall(), 1.0);
  EXPECT_DOUBLE_EQ(r.messages_per_query.mean(),
                   static_cast<double>(c.num_repositories - 1));
}

std::string param_name(
    const ::testing::TestParamInfo<std::tuple<std::uint32_t, ListMode>>&
        info) {
  static constexpr const char* kModeNames[] = {"AllToAll", "Static",
                                               "Adaptive"};
  return "N" + std::to_string(std::get<0>(info.param)) + "_" +
         kModeNames[static_cast<int>(std::get<1>(info.param))];
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndModes, DigLibProperty,
    ::testing::Combine(::testing::Values<std::uint32_t>(8, 24, 48),
                       ::testing::Values(ListMode::kAllToAll,
                                         ListMode::kStatic,
                                         ListMode::kAdaptive)),
    param_name);

}  // namespace
}  // namespace dsf::diglib
