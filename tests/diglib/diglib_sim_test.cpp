#include "diglib/diglib_sim.h"

#include <gtest/gtest.h>

namespace dsf::diglib {
namespace {

DigLibConfig fast_config() {
  DigLibConfig c;
  c.num_repositories = 32;
  c.num_docs = 8000;
  c.num_topics = 8;
  c.holdings = 400;
  c.sim_hours = 1.0;
  c.warmup_hours = 0.1;
  c.seed = 21;
  return c;
}

TEST(DigLibSim, RejectsUnevenTopicSplit) {
  DigLibConfig c = fast_config();
  c.num_docs = 8001;
  EXPECT_THROW(DigLibSim{c}, std::invalid_argument);
}

TEST(DigLibSim, CopyCountsMatchHoldings) {
  DigLibConfig c = fast_config();
  DigLibSim sim(c);
  // Sum of per-document copies must equal total holdings.
  std::uint64_t copies = 0;
  for (DocId d = 0; d < c.num_docs; ++d) copies += sim.copies_of(d);
  EXPECT_EQ(copies, static_cast<std::uint64_t>(c.num_repositories) * c.holdings);
}

TEST(DigLibSim, RunProducesQueriesAndBoundedRecall) {
  const auto r = DigLibSim(fast_config()).run();
  EXPECT_GT(r.queries, 0u);
  EXPECT_GE(r.recall(), 0.0);
  EXPECT_LE(r.recall(), 1.0);
  EXPECT_LE(r.copies_found, r.copies_available);
}

TEST(DigLibSim, DeterministicForSameSeed) {
  const auto a = DigLibSim(fast_config()).run();
  const auto b = DigLibSim(fast_config()).run();
  EXPECT_EQ(a.copies_found, b.copies_found);
  EXPECT_DOUBLE_EQ(a.first_result_delay_s.mean(),
                   b.first_result_delay_s.mean());
}

TEST(DigLibSim, AllToAllAchievesFullRecall) {
  // §3.1: with all-to-all lists every repository is one hop away, so
  // extensive search retrieves every existing copy.
  DigLibConfig c = fast_config();
  c.mode = ListMode::kAllToAll;
  const auto r = DigLibSim(c).run();
  EXPECT_DOUBLE_EQ(r.recall(), 1.0);
}

TEST(DigLibSim, AllToAllOverlayShape) {
  DigLibConfig c = fast_config();
  c.mode = ListMode::kAllToAll;
  DigLibSim sim(c);
  EXPECT_EQ(sim.overlay().kind(), core::RelationKind::kAllToAll);
  EXPECT_TRUE(sim.overlay().consistent());
  for (net::NodeId r = 0; r < c.num_repositories; ++r)
    EXPECT_EQ(sim.overlay().lists(r).out().size(), c.num_repositories - 1);
}

TEST(DigLibSim, AllToAllCostsMoreMessagesThanBoundedLists) {
  DigLibConfig all = fast_config();
  all.mode = ListMode::kAllToAll;
  DigLibConfig bounded = fast_config();
  bounded.mode = ListMode::kStatic;
  const auto ra = DigLibSim(all).run();
  const auto rb = DigLibSim(bounded).run();
  EXPECT_GT(ra.messages_per_query.mean(), rb.messages_per_query.mean());
}

TEST(DigLibSim, AdaptiveBeatsStaticOnHitRate) {
  // Popular documents are replicated everywhere, so *recall* is bounded
  // by distinct reach and cannot reward adaptation; the hit rate —
  // dominated by tail documents that only same-topic repositories hold —
  // is where topology targeting pays.
  DigLibConfig adaptive = fast_config();
  adaptive.sim_hours = 2.0;
  DigLibConfig fixed = adaptive;
  fixed.mode = ListMode::kStatic;
  const auto ra = DigLibSim(adaptive).run();
  const auto rs = DigLibSim(fixed).run();
  EXPECT_GT(ra.hit_rate(), rs.hit_rate());
}

TEST(DigLibSim, HitRateIsProperFraction) {
  const auto r = DigLibSim(fast_config()).run();
  EXPECT_GE(r.hit_rate(), 0.0);
  EXPECT_LE(r.hit_rate(), 1.0);
  EXPECT_LE(r.satisfied, r.queries);
}

TEST(DigLibSim, StaticModeNeverSendsControlTraffic) {
  DigLibConfig c = fast_config();
  c.mode = ListMode::kStatic;
  const auto r = DigLibSim(c).run();
  EXPECT_EQ(r.traffic.control_traffic(), 0u);
}

}  // namespace
}  // namespace dsf::diglib
