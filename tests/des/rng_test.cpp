#include "des/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace dsf::des {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntStaysBelowBound) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform_int(10), 10u);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(19);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntIsApproximatelyUniform) {
  Rng rng(23);
  std::vector<int> counts(16, 0);
  const int n = 160000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(16)];
  for (int c : counts) EXPECT_NEAR(c, n / 16, n / 16 * 0.1);
}

TEST(Rng, InclusiveRangeHitsBothEnds) {
  Rng rng(29);
  bool lo = false, hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    lo |= (v == -2);
    hi |= (v == 2);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(41);
  Rng child = parent.split();
  // Child and parent sequences should not match element-wise.
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (parent.next() == child.next()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(43), b(43);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next(), cb.next());
}

TEST(Rng, HashSeedSpreadsStreams) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 1000; ++s) seeds.insert(hash_seed(99, s));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace dsf::des
