#include "des/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace dsf::des {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(3.0, [&] { fired.push_back(3); });
  q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i)
    q.schedule(5.0, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueue, PopReturnsTimestamp) {
  EventQueue q;
  q.schedule(4.25, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 4.25);
  auto [t, cb] = q.pop();
  EXPECT_DOUBLE_EQ(t, 4.25);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterPopFails) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, StaleHandleCannotCancelRecycledSlot) {
  EventQueue q;
  const EventId old_id = q.schedule(1.0, [] {});
  q.pop();  // slot freed
  bool ran = false;
  q.schedule(2.0, [&] { ran = true; });  // reuses the slot
  EXPECT_FALSE(q.cancel(old_id));        // generation mismatch
  q.pop().second();
  EXPECT_TRUE(ran);
}

TEST(EventQueue, CancelMiddleKeepsOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(1.0, [&] { fired.push_back(1); });
  const EventId id = q.schedule(2.0, [&] { fired.push_back(2); });
  q.schedule(3.0, [&] { fired.push_back(3); });
  q.cancel(id);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, ManyEventsRandomOrder) {
  EventQueue q;
  // xorshift: pseudo-random but deterministic times
  std::vector<double> times;
  std::uint64_t x = 88172645463325252ULL;
  for (int i = 0; i < 5000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    times.push_back(static_cast<double>(x % 100000) / 100.0);
  }
  for (double t : times) q.schedule(t, [] {});
  double prev = -1.0;
  while (!q.empty()) {
    auto [t, cb] = q.pop();
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(EventQueue, SlotReuseKeepsTotalScheduledMonotone) {
  EventQueue q;
  for (int i = 0; i < 100; ++i) {
    q.schedule(static_cast<double>(i), [] {});
    q.pop();
  }
  EXPECT_EQ(q.total_scheduled(), 100u);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace dsf::des
