// Randomized differential test of EventQueue against an ordered-set
// oracle.  The queue is a two-level structure (timing wheel + overflow
// heap) whose pop order must be exactly the strict total order
// (time, seq) — the oracle is a std::set keyed the same way, and every
// interleaving of schedule / batch-schedule / cancel / pop / shrink must
// agree with it event-for-event: same timestamp bits, same callback, same
// size.  Populations are driven well past the wheel-enable threshold and
// back down so both representations and the transitions between them
// (enable, lap wrap, window jump, rebase, tombstone compaction) are all
// crossed many times.

#include "des/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <set>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace dsf::des {
namespace {

class DifferentialHarness {
 public:
  explicit DifferentialHarness(std::uint64_t seed) : rng_(seed) {}

  void schedule_one(double t) {
    const std::uint64_t tag = next_tag_++;
    std::uint64_t* fired = &fired_tag_;
    const EventId id = q_.schedule(t, [fired, tag] { *fired = tag; });
    ref_.emplace(t, tag);
    handles_.emplace(tag, std::pair<EventId, double>{id, t});
    cancellable_.push_back(tag);
  }

  void schedule_batch(std::size_t n, double base_t) {
    // Batch fan-outs return no handles, so these tags are never
    // cancelled — mirroring how the engine uses the API.
    std::vector<double> times(n);
    for (std::size_t i = 0; i < n; ++i)
      times[i] = base_t + 0.25 * static_cast<double>(rng_() % 64);
    const std::uint64_t first_tag = next_tag_;
    std::uint64_t* fired = &fired_tag_;
    q_.schedule_batch(n, [&](std::size_t i) {
      const std::uint64_t tag = first_tag + i;
      return std::pair<SimTime, EventQueue::Callback>(
          times[i], [fired, tag] { *fired = tag; });
    });
    for (std::size_t i = 0; i < n; ++i) ref_.emplace(times[i], first_tag + i);
    next_tag_ += n;
  }

  void pop_one() {
    ASSERT_FALSE(ref_.empty());
    const auto expect = *ref_.begin();
    ASSERT_FALSE(q_.empty());
    EXPECT_EQ(q_.next_time(), expect.first);
    auto [t, cb] = q_.pop();
    EXPECT_EQ(t, expect.first);  // exact, not approximate
    fired_tag_ = ~std::uint64_t{0};
    cb();
    EXPECT_EQ(fired_tag_, expect.second);
    ref_.erase(ref_.begin());
    gone_.insert(expect.second);
    now_ = t;
  }

  void cancel_random() {
    for (int attempt = 0; attempt < 8 && !cancellable_.empty(); ++attempt) {
      const std::size_t i = rng_() % cancellable_.size();
      const std::uint64_t tag = cancellable_[i];
      cancellable_[i] = cancellable_.back();
      cancellable_.pop_back();
      if (gone_.count(tag) != 0) continue;  // already popped; try another
      const auto [id, t] = handles_.at(tag);
      EXPECT_TRUE(q_.cancel(id));
      EXPECT_FALSE(q_.cancel(id));  // second cancel must fail
      ref_.erase(ref_.find({t, tag}));
      gone_.insert(tag);
      return;
    }
  }

  void drain_all() {
    while (!ref_.empty()) {
      pop_one();
      // A failed ASSERT inside pop_one only returns from that helper;
      // without this check a mismatch would loop here forever.
      if (::testing::Test::HasFatalFailure() ||
          ::testing::Test::HasNonfatalFailure())
        return;
    }
    EXPECT_TRUE(q_.empty());
    EXPECT_EQ(q_.size(), 0u);
  }

  void check_size() { EXPECT_EQ(q_.size(), ref_.size()); }

  // One mixed phase: random ops biased toward `target` standing events.
  void run_phase(int ops, std::size_t target) {
    for (int op = 0; op < ops; ++op) {
      const std::uint64_t r = rng_() % 100;
      const bool grow = ref_.size() < target;
      if (ref_.empty() || (grow && r < 55)) {
        schedule_one(draw_time());
      } else if (r < 5) {
        schedule_batch(2 + rng_() % 15, now_ + 1.0);
      } else if (r < 20 && !cancellable_.empty()) {
        cancel_random();
      } else if (r < 60) {
        pop_one();
      } else {
        schedule_one(draw_time());
      }
      if (::testing::Test::HasFatalFailure() ||
          ::testing::Test::HasNonfatalFailure())
        return;
      if ((op & 1023) == 0) check_size();
      if ((op & 8191) == 8191) q_.shrink_to_fit();
    }
  }

 private:
  double draw_time() {
    const std::uint64_t r = rng_() % 100;
    if (r < 70) {
      // Coarse grid around now: plenty of exact ties to exercise FIFO.
      return now_ + 0.25 * static_cast<double>(rng_() % 256);
    }
    if (r < 85) {
      // Continuous near future.
      return now_ + static_cast<double>(rng_() % 100000) * 1e-3;
    }
    if (r < 95) {
      // Far future: lands in the overflow heap, migrates at a lap.
      return now_ + 1000.0 + static_cast<double>(rng_() % 1000);
    }
    // Behind the current window, possibly negative: forces a rebase.
    return now_ - static_cast<double>(rng_() % 50);
  }

  std::mt19937_64 rng_;
  EventQueue q_;
  std::set<std::pair<double, std::uint64_t>> ref_;
  std::unordered_map<std::uint64_t, std::pair<EventId, double>> handles_;
  std::unordered_set<std::uint64_t> gone_;
  std::vector<std::uint64_t> cancellable_;
  std::uint64_t next_tag_ = 0;
  std::uint64_t fired_tag_ = 0;
  double now_ = 0.0;
};

TEST(EventQueueDifferential, HeapOnlySmallPopulation) {
  // Stays below the wheel-enable threshold: pure heap representation.
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    DifferentialHarness h(seed);
    h.run_phase(20000, 64);
    h.drain_all();
  }
}

TEST(EventQueueDifferential, WheelLargePopulation) {
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    DifferentialHarness h(seed);
    h.run_phase(15000, 3000);  // well past enable: wheel + overflow heap
    h.run_phase(15000, 400);   // shrink back through the disable band
    h.drain_all();
  }
}

TEST(EventQueueDifferential, GrowDrainCycles) {
  // Repeated collapse and regrowth crosses enable/disable hysteresis and
  // the empty-wheel wrap path over and over.
  DifferentialHarness h(31);
  for (int cycle = 0; cycle < 6; ++cycle) {
    h.run_phase(4000, 1500);
    h.drain_all();
  }
}

TEST(EventQueueDifferential, ClusteredTimeJumps) {
  // Clusters separated by huge gaps: each drain forces the wheel window
  // to jump directly to the overflow heap's minimum rather than lapping
  // across the gap.
  DifferentialHarness h(41);
  for (int cluster = 0; cluster < 5; ++cluster) {
    h.run_phase(3000, 800);
    h.schedule_batch(64, 1.0e6 * static_cast<double>(cluster + 1));
    h.drain_all();
  }
}

TEST(EventQueueDifferential, SnapshotRoundTripPreservesPopOrder) {
  // Mirrors how the checkpoint layer serializes the event section: live
  // events are enumerated through for_each_live (unspecified order, dead
  // slots skipped), sorted by (time, seq) and re-scheduled into a fresh
  // queue with new ascending seqs.  Because the sort key IS the pop
  // order, FIFO ties survive the re-numbering: the restored queue must
  // drain in exactly the oracle's order, bit-exact timestamps included.
  std::mt19937_64 rng(77);
  for (int round = 0; round < 4; ++round) {
    EventQueue q;
    std::set<std::pair<double, std::uint64_t>> oracle;  // (time, tag)
    std::unordered_map<std::uint64_t, std::uint64_t> tag_by_seq;
    std::vector<std::pair<EventId, std::pair<double, std::uint64_t>>> live;
    std::uint64_t next_tag = 0;
    double now = 0.0;

    const auto draw = [&]() -> double {
      const std::uint64_t r = rng() % 100;
      if (r < 60) return now + 0.25 * static_cast<double>(rng() % 256);
      if (r < 90) return now + static_cast<double>(rng() % 100000) * 1e-3;
      return now + 2000.0 + static_cast<double>(rng() % 1000);  // overflow heap
    };

    for (int op = 0; op < 6000; ++op) {
      const std::uint64_t r = rng() % 100;
      if (oracle.size() < 2500 || r < 55) {
        const double t = draw();
        const std::uint64_t tag = next_tag++;
        const EventId id = q.schedule(t, [] {});
        tag_by_seq.emplace(id.seq, tag);
        oracle.emplace(t, tag);
        live.push_back({id, {t, tag}});
      } else if (r < 70 && !live.empty()) {
        // Cancelled events must be invisible to for_each_live.
        const std::size_t i = rng() % live.size();
        ASSERT_TRUE(q.cancel(live[i].first));
        oracle.erase(live[i].second);
        tag_by_seq.erase(live[i].first.seq);
        live[i] = live.back();
        live.pop_back();
      } else if (!oracle.empty()) {
        auto [t, cb] = q.pop();
        EXPECT_EQ(t, oracle.begin()->first);
        const std::uint64_t popped_tag = oracle.begin()->second;
        oracle.erase(oracle.begin());
        const auto it = std::find_if(
            live.begin(), live.end(),
            [&](const auto& e) { return e.second.second == popped_tag; });
        ASSERT_NE(it, live.end());
        tag_by_seq.erase(it->first.seq);
        *it = live.back();
        live.pop_back();
        now = t;
      }
    }
    ASSERT_FALSE(oracle.empty());

    // --- Save: enumerate, join with the note table, sort by (time, seq).
    struct Rec {
      double t;
      std::uint64_t seq;
      std::uint64_t tag;
    };
    std::vector<Rec> recs;
    q.for_each_live([&](double t, std::uint64_t seq, EventId) {
      const auto it = tag_by_seq.find(seq);
      ASSERT_NE(it, tag_by_seq.end()) << "dead event leaked into the walk";
      recs.push_back({t, seq, it->second});
    });
    ASSERT_EQ(recs.size(), oracle.size());
    std::sort(recs.begin(), recs.end(), [](const Rec& a, const Rec& b) {
      return std::tie(a.t, a.seq) < std::tie(b.t, b.seq);
    });

    // --- Restore: replay into a fresh queue in sorted order.
    EventQueue fresh;
    std::uint64_t fired = ~std::uint64_t{0};
    for (const Rec& r : recs)
      fresh.schedule(r.t, [&fired, tag = r.tag] { fired = tag; });

    // --- Drain: the restored queue agrees with the oracle event-for-event.
    for (const auto& [t, tag] : oracle) {
      ASSERT_FALSE(fresh.empty());
      auto [pt, cb] = fresh.pop();
      EXPECT_EQ(pt, t);
      fired = ~std::uint64_t{0};
      cb();
      EXPECT_EQ(fired, tag);
      if (::testing::Test::HasNonfatalFailure()) return;
    }
    EXPECT_TRUE(fresh.empty());
  }
}

TEST(EventQueueDifferential, EqualTimestampFifoAcrossRepresentations) {
  // A thousand events at one instant, scheduled while the wheel is
  // active, must fire in exact insertion order.
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 400; ++i)
    q.schedule(0.5 * i, [] {});  // push population past wheel enable
  for (int i = 0; i < 1000; ++i)
    q.schedule(1.0, [&fired, i] { fired.push_back(i); });
  int seen = 0;
  while (!q.empty()) {
    auto [t, cb] = q.pop();
    cb();
    if (t > 1.0) break;
  }
  for (std::size_t i = 0; i < fired.size(); ++i)
    EXPECT_EQ(fired[i], static_cast<int>(i));
  EXPECT_EQ(fired.size(), 1000u);
  (void)seen;
}

}  // namespace
}  // namespace dsf::des
