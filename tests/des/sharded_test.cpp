#include "des/sharded.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "des/rng.h"
#include "des/simulator.h"

namespace dsf::des {
namespace {

TEST(ShardedSimulator, RejectsBadConstruction) {
  EXPECT_THROW(ShardedSimulator(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ShardedSimulator(2, 0.0), std::invalid_argument);
  EXPECT_THROW(ShardedSimulator(2, -1.0), std::invalid_argument);
}

TEST(ShardedSimulator, SingleShardMatchesPlainSimulator) {
  // One shard, windowed execution: same events, same order, same clock as
  // a plain Simulator run.
  std::vector<int> sharded_order;
  ShardedSimulator ss(1, 0.5);
  for (int i = 0; i < 10; ++i)
    ss.post(0, 0.3 * i, [&sharded_order, i] { sharded_order.push_back(i); });
  const std::uint64_t ran = ss.run_until(10.0);

  std::vector<int> plain_order;
  Simulator sim;
  for (int i = 0; i < 10; ++i)
    sim.schedule_at(0.3 * i, [&plain_order, i] { plain_order.push_back(i); });
  sim.run_until(10.0);

  EXPECT_EQ(ran, 10u);
  EXPECT_EQ(sharded_order, plain_order);
  EXPECT_DOUBLE_EQ(ss.shard(0).now(), 10.0);
  EXPECT_EQ(ss.lookahead_clamps(), 0u);
}

TEST(ShardedSimulator, EventExactlyOnWindowBoundary) {
  // Two events at t=0 and t=window: the boundary event must not run in the
  // first window (interior windows are half-open) yet must still run, in
  // the window it opens, before the horizon.
  ShardedSimulator ss(2, 1.0);
  std::vector<std::pair<int, double>> log;
  std::mutex log_mu;
  auto mark = [&](int tag) {
    return [&, tag] {
      const std::lock_guard<std::mutex> lock(log_mu);
      const std::uint32_t s = ShardedSimulator::current_shard();
      log.emplace_back(tag, ss.shard(s).now());
    };
  };
  ss.post(0, 0.0, mark(1));
  ss.post(0, 1.0, mark(2));  // exactly at the first window's end
  ss.post(1, 1.0, mark(3));  // same boundary, other shard
  ss.run_until(5.0);

  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].first, 1);
  EXPECT_DOUBLE_EQ(log[0].second, 0.0);
  // Events 2 and 3 run concurrently on different shards at t=1.0; only
  // their times are deterministic, not their relative log order.
  EXPECT_DOUBLE_EQ(log[1].second, 1.0);
  EXPECT_DOUBLE_EQ(log[2].second, 1.0);
  // The first window was [0, 1): the boundary event opened a second one.
  EXPECT_GE(ss.windows(), 2u);
}

TEST(ShardedSimulator, EventExactlyAtHorizonRuns) {
  // run_until is closed at the horizon, like Simulator::run_until.
  ShardedSimulator ss(2, 1.0);
  bool at_horizon = false;
  ss.post(1, 3.0, [&] { at_horizon = true; });
  ss.run_until(3.0);
  EXPECT_TRUE(at_horizon);
  EXPECT_DOUBLE_EQ(ss.shard(0).now(), 3.0);
  EXPECT_DOUBLE_EQ(ss.shard(1).now(), 3.0);
}

TEST(ShardedSimulator, CrossShardPostArrivesAfterBarrier) {
  // A post from shard 0's window into shard 1 with delay >= window must be
  // executed by shard 1 at exactly the posted time.
  ShardedSimulator ss(2, 1.0);
  double delivered_at = -1.0;
  std::uint32_t delivered_on = kNoShard;
  ss.post(0, 0.5, [&] {
    const double t = ss.shard(0).now();
    ss.post(1, t + 1.0, [&] {
      delivered_at = ss.shard(1).now();
      delivered_on = ShardedSimulator::current_shard();
    });
  });
  ss.run_until(10.0);
  EXPECT_DOUBLE_EQ(delivered_at, 1.5);
  EXPECT_EQ(delivered_on, 1u);
  EXPECT_EQ(ss.lookahead_clamps(), 0u);
}

TEST(ShardedSimulator, LookaheadViolationIsClampedAndCounted) {
  // Posting with a delay *below* the window (a model whose configured
  // window exceeds its true minimum delay) may land in the destination's
  // past; the post is clamped to the destination clock and counted.
  ShardedSimulator ss(2, 1.0);
  double delivered_at = -1.0;
  ss.post(0, 0.9, [&] {
    // Shard 1's clock will be at the window end (1.0) when this drains.
    ss.post(1, 0.95, [&] { delivered_at = ss.shard(1).now(); });
  });
  ss.run_until(10.0);
  EXPECT_GE(delivered_at, 0.95);
  EXPECT_EQ(ss.lookahead_clamps(), 1u);
}

// Differential harness: a small random workload where every shard streams
// timestamped ticks; the multiset of (shard, time, tag) triples must be
// identical for any shard count, and per-shard subsequences must be in
// the sequential order.
struct Tick {
  std::uint32_t shard;
  double t;
  int tag;
  bool operator==(const Tick& o) const {
    return shard == o.shard && t == o.t && tag == o.tag;
  }
  bool operator<(const Tick& o) const {
    if (shard != o.shard) return shard < o.shard;
    if (t != o.t) return t < o.t;
    return tag < o.tag;
  }
};

std::vector<Tick> run_workload(std::uint32_t shards, std::uint64_t seed) {
  // Model: `shards` logical domains; each event re-posts to a random
  // domain with delay in [window, 2*window) so lookahead always holds.
  const double window = 0.25;
  ShardedSimulator ss(shards, window);
  std::vector<Tick> ticks;
  std::mutex mu;
  // One RNG per logical domain, seeded identically for every shard count,
  // touched only by the domain's own events — trajectories are identical
  // regardless of which thread runs them.
  std::vector<Rng> rngs;
  for (std::uint32_t d = 0; d < shards; ++d)
    rngs.push_back(Rng(hash_seed(seed, d)));

  std::function<void(std::uint32_t, int)> hop = [&](std::uint32_t d,
                                                    int depth) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      ticks.push_back(Tick{d, ss.shard(d).now(), depth});
    }
    if (depth >= 40) return;
    Rng& r = rngs[d];
    const auto next = static_cast<std::uint32_t>(r.uniform_int(
        static_cast<std::uint64_t>(shards)));
    const double delay = window + window * r.uniform();
    ss.post(next, ss.shard(d).now() + delay,
            [&hop, next, depth] { hop(next, depth + 1); });
  };
  for (std::uint32_t d = 0; d < shards; ++d)
    ss.post(d, 0.01 * (d + 1), [&hop, d] { hop(d, 0); });
  ss.run_until(100.0);
  return ticks;
}

TEST(ShardedSimulator, FixedShardCountIsDeterministic) {
  auto a = run_workload(4, 20260809);
  auto b = run_workload(4, 20260809);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(ShardedSimulator, RepostingWorkloadTerminates) {
  // Smoke the barrier protocol under contention: plenty of windows, all
  // chains hit the depth cap, nothing deadlocks.
  const auto ticks = run_workload(8, 7);
  EXPECT_EQ(ticks.size(), 8u * 41u);
}

TEST(ShardedSimulator, BarrierHookSeesQuiescentShards) {
  // The hook runs between windows with all workers parked; summing the
  // shard clocks there must never observe a torn window (all clocks equal
  // the window end handed to the hook).
  ShardedSimulator ss(4, 0.5);
  std::atomic<int> violations{0};
  ss.set_barrier_hook([&](SimTime wend) {
    for (std::uint32_t s = 0; s < 4; ++s)
      if (ss.shard(s).now() != wend) violations.fetch_add(1);
  });
  for (std::uint32_t s = 0; s < 4; ++s)
    for (int i = 0; i < 5; ++i)
      ss.post(s, 0.4 * i, [] {});
  ss.run_until(2.0);
  EXPECT_EQ(violations.load(), 0);
  EXPECT_GT(ss.windows(), 0u);
}

TEST(ShardedSimulator, RunUntilIsResumable) {
  // Back-to-back run_until calls behave like one long run.
  ShardedSimulator ss(2, 1.0);
  std::vector<double> times;
  std::mutex mu;
  for (int i = 0; i < 6; ++i) {
    const auto dst = static_cast<std::uint32_t>(i % 2);
    ss.post(dst, 1.5 * i, [&, dst] {
      const std::lock_guard<std::mutex> lock(mu);
      times.push_back(ss.shard(dst).now());
    });
  }
  const std::uint64_t first = ss.run_until(4.0);
  const std::uint64_t second = ss.run_until(10.0);
  EXPECT_EQ(first + second, 6u);
  EXPECT_EQ(times.size(), 6u);
  EXPECT_DOUBLE_EQ(ss.shard(0).now(), 10.0);
  EXPECT_DOUBLE_EQ(ss.shard(1).now(), 10.0);
}

TEST(ShardedSimulator, ExecutedAndPendingAggregate) {
  ShardedSimulator ss(3, 1.0);
  for (std::uint32_t s = 0; s < 3; ++s) ss.post(s, 1.0 + s, [] {});
  EXPECT_EQ(ss.pending(), 3u);
  ss.run_until(0.5);
  EXPECT_EQ(ss.executed(), 0u);
  EXPECT_EQ(ss.pending(), 3u);
  ss.run_until(5.0);
  EXPECT_EQ(ss.executed(), 3u);
  EXPECT_EQ(ss.pending(), 0u);
}

}  // namespace
}  // namespace dsf::des
