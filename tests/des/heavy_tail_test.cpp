#include <gtest/gtest.h>

#include <cmath>

#include "des/distributions.h"

namespace dsf::des {
namespace {

TEST(Pareto, RejectsBadParams) {
  EXPECT_THROW(Pareto(0.0, 1.5), std::invalid_argument);
  EXPECT_THROW(Pareto(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(Pareto::from_mean(10.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Pareto::from_mean(-1.0, 2.0), std::invalid_argument);
}

TEST(Pareto, SamplesAboveScale) {
  Rng rng(1);
  Pareto p(2.0, 1.5);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(p.sample(rng), 2.0);
}

TEST(Pareto, MeanFormula) {
  Pareto p(2.0, 3.0);
  EXPECT_DOUBLE_EQ(p.mean(), 3.0);  // 3·2/(3−1)
  Pareto heavy(1.0, 0.9);
  EXPECT_TRUE(std::isinf(heavy.mean()));
}

TEST(Pareto, FromMeanRoundTrips) {
  const Pareto p = Pareto::from_mean(3.0 * 3600.0, 1.5);
  EXPECT_NEAR(p.mean(), 3.0 * 3600.0, 1e-9);
}

TEST(Pareto, EmpiricalMeanConverges) {
  // Shape 2.5 has finite variance, so the sample mean converges usably.
  Rng rng(2);
  const Pareto p = Pareto::from_mean(100.0, 2.5);
  double sum = 0.0;
  const int n = 500000;
  for (int i = 0; i < n; ++i) sum += p.sample(rng);
  EXPECT_NEAR(sum / n, 100.0, 2.0);
}

TEST(Pareto, TailHeavierThanExponential) {
  // At the same mean, Pareto(1.5) produces far more sessions beyond
  // 10× the mean than the exponential does (e^-10 ≈ 4.5e-5).
  Rng rng(3);
  const Pareto p = Pareto::from_mean(1.0, 1.5);
  Exponential e(1.0);
  int pareto_tail = 0, exp_tail = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    pareto_tail += p.sample(rng) > 10.0;
    exp_tail += e.sample(rng) > 10.0;
  }
  EXPECT_GT(pareto_tail, 10 * exp_tail);
}

TEST(Pareto, SurvivalMatchesClosedForm) {
  // P(X > x) = (x_m/x)^alpha.
  Rng rng(4);
  Pareto p(1.0, 2.0);
  int over2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) over2 += p.sample(rng) > 2.0;
  EXPECT_NEAR(static_cast<double>(over2) / n, 0.25, 0.005);
}

TEST(LogNormal, RejectsBadSigma) {
  EXPECT_THROW(LogNormal(0.0, 0.0), std::invalid_argument);
}

TEST(LogNormal, SamplesArePositive) {
  Rng rng(5);
  LogNormal d(0.0, 1.0);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(d.sample(rng), 0.0);
}

TEST(LogNormal, EmpiricalMeanMatchesFormula) {
  Rng rng(6);
  LogNormal d(1.0, 0.5);
  double sum = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / n, d.mean(), 0.02 * d.mean());
}

TEST(LogNormal, MedianIsExpMu) {
  Rng rng(7);
  LogNormal d(2.0, 0.8);
  int below = 0;
  const int n = 100000;
  const double median = std::exp(2.0);
  for (int i = 0; i < n; ++i) below += d.sample(rng) < median;
  EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 0.01);
}

}  // namespace
}  // namespace dsf::des
