// Unit tests for the event queue's SBO callback: inline-storage rules,
// move-only ownership transfer across all three storage strategies
// (trivially-relocatable inline, non-trivial inline, heap fallback), and
// captured-state lifetime.

#include "des/callback.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace dsf::des {
namespace {

TEST(Callback, DefaultAndNullptrAreEmpty) {
  Callback a;
  Callback b = nullptr;
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_FALSE(static_cast<bool>(b));
  EXPECT_TRUE(a == nullptr);
}

TEST(Callback, InvokesStoredLambda) {
  int hits = 0;
  Callback cb([&hits] { ++hits; });
  EXPECT_TRUE(static_cast<bool>(cb));
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(Callback, InlineStorageRules) {
  // The shapes the simulators actually schedule stay inline...
  std::uint64_t sink = 0;
  double d = 1.0;
  std::uint32_t tag = 2;
  auto delivery = [&sink, d, tag] { sink += static_cast<std::uint64_t>(d) + tag; };
  static_assert(Callback::stores_inline<decltype(delivery)>());

  struct Exact48 {
    double a[6];
  };
  auto full = [e = Exact48{}] { (void)e; };
  static_assert(sizeof(full) == Callback::kInlineBytes);
  static_assert(Callback::stores_inline<decltype(full)>());

  // ...one byte over spills to the heap...
  struct Over48 {
    double a[6];
    char extra;
  };
  auto big = [e = Over48{}] { (void)e; };
  static_assert(!Callback::stores_inline<decltype(big)>());

  // ...and so does anything needing more than 8-byte alignment, since the
  // buffer is deliberately only 8-aligned to keep slab entries compact.
  struct alignas(32) Wide {
    double v;
  };
  auto wide = [w = Wide{}] { (void)w; };
  static_assert(!Callback::stores_inline<decltype(wide)>());
}

TEST(Callback, MoveTransfersTriviallyCopyableInline) {
  std::uint64_t sum = 0;
  std::uint64_t* sink = &sum;
  Callback a([sink] { *sink += 7; });
  Callback b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(sum, 7u);
}

TEST(Callback, MoveTransfersNonTrivialInline) {
  // std::string is inline-sized but not trivially copyable, so this
  // exercises the out-of-line relocate path.
  std::string out;
  std::string payload = "alpha-beta-gamma";
  static_assert(sizeof(std::string) <= Callback::kInlineBytes);
  Callback a([&out, payload] { out = payload; });
  Callback b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  b();
  EXPECT_EQ(out, "alpha-beta-gamma");
}

TEST(Callback, HeapFallbackLargeCapture) {
  std::array<std::uint64_t, 32> blob{};
  for (std::size_t i = 0; i < blob.size(); ++i) blob[i] = i;
  std::uint64_t sum = 0;
  auto fn = [&sum, blob] {
    for (auto v : blob) sum += v;
  };
  static_assert(!Callback::stores_inline<decltype(fn)>());
  Callback a(fn);
  Callback b = std::move(a);  // heap case relocates by moving one pointer
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  b();
  EXPECT_EQ(sum, 32u * 31u / 2u);
}

TEST(Callback, DestroysCapturedStateOnReset) {
  auto token = std::make_shared<int>(5);
  std::weak_ptr<int> watch = token;
  Callback cb([token] { (void)*token; });
  token.reset();
  EXPECT_FALSE(watch.expired());  // callback still owns it
  cb = nullptr;                   // what cancel() does with a released slot
  EXPECT_TRUE(watch.expired());
}

TEST(Callback, DestroysCapturedStateOnDestruction) {
  auto token = std::make_shared<int>(6);
  std::weak_ptr<int> watch = token;
  {
    Callback cb([token] { (void)*token; });
    token.reset();
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(Callback, MoveAssignReleasesPreviousState) {
  auto old_token = std::make_shared<int>(1);
  std::weak_ptr<int> old_watch = old_token;
  Callback cb([old_token] { (void)*old_token; });
  old_token.reset();

  int hits = 0;
  cb = Callback([&hits] { ++hits; });
  EXPECT_TRUE(old_watch.expired());  // previous capture destroyed
  cb();
  EXPECT_EQ(hits, 1);
}

TEST(Callback, MoveAssignFromEmptyClears) {
  int hits = 0;
  Callback cb([&hits] { ++hits; });
  cb = Callback();
  EXPECT_FALSE(static_cast<bool>(cb));
  EXPECT_EQ(hits, 0);
}

}  // namespace
}  // namespace dsf::des
