#include "des/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace dsf::des {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Simulator, NowIsExactInsideCallback) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule_in(2.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
}

TEST(Simulator, ChainedEventsAccumulateTime) {
  Simulator sim;
  std::vector<double> times;
  std::function<void()> hop = [&] {
    times.push_back(sim.now());
    if (times.size() < 4) sim.schedule_in(1.0, hop);
  };
  sim.schedule_in(1.0, hop);
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i)
    sim.schedule_at(static_cast<double>(i), [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 5);  // events at 1..5 inclusive
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run();
  EXPECT_EQ(fired, 10);
}

TEST(Simulator, RunUntilAdvancesClockWhenQueueDrains) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  sim.run_until(100.0);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulator, StopRequestHaltsExecution) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();  // resumable after stop
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelledEventsDoNotRun) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_in(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, ExecutedCountsLifetime) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.executed(), 7u);
}

TEST(Simulator, EventsScheduledFromCallbacksAtSameTimeRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] {
    sim.schedule_at(1.0, [&] { ++fired; });  // same timestamp
  });
  sim.run_until(1.0);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, PastSchedulingClampsToNow) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_at(10.0, [&] {
    // Both of these target the past; they must fire "now", not rewind.
    sim.schedule_at(3.0, [&] { times.push_back(sim.now()); });
    sim.schedule_in(-5.0, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 10.0);
  EXPECT_DOUBLE_EQ(times[1], 10.0);
}

TEST(Simulator, ClockIsMonotoneThroughCallbacks) {
  Simulator sim;
  double last = -1.0;
  for (int i = 0; i < 50; ++i) {
    sim.schedule_at(static_cast<double>(i % 7), [&] {
      EXPECT_GE(sim.now(), last);
      last = sim.now();
    });
  }
  sim.run();
}

TEST(Simulator, ReturnsEventCountPerRun) {
  Simulator sim;
  for (int i = 1; i <= 4; ++i) sim.schedule_at(i, [] {});
  EXPECT_EQ(sim.run_until(2.0), 2u);
  EXPECT_EQ(sim.run_until(10.0), 2u);
}

}  // namespace
}  // namespace dsf::des
