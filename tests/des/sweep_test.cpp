#include "des/sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <numeric>
#include <stdexcept>
#include <type_traits>

#include "des/rng.h"
#include "metrics/time_series.h"

namespace dsf::des {
namespace {

TEST(ParallelMap, EmptyInput) {
  const std::vector<int> empty;
  const auto out = parallel_map(empty, [](int x) { return x; });
  EXPECT_TRUE(out.empty());
}

TEST(ParallelMap, PreservesInputOrder) {
  std::vector<int> in(100);
  std::iota(in.begin(), in.end(), 0);
  const auto out = parallel_map(in, [](int x) { return x * x; }, 4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMap, SingleThreadFallback) {
  const std::vector<int> in{3, 1, 4};
  const auto out = parallel_map(in, [](int x) { return x + 1; }, 1);
  EXPECT_EQ(out, (std::vector<int>{4, 2, 5}));
}

TEST(ParallelMap, DeterministicAcrossThreadCounts) {
  // Each job runs its own seeded RNG — results must not depend on how
  // jobs are scheduled onto threads.
  std::vector<std::uint64_t> seeds(32);
  std::iota(seeds.begin(), seeds.end(), 100);
  const auto run = [](std::uint64_t seed) {
    Rng rng(seed);
    double sum = 0.0;
    for (int i = 0; i < 1000; ++i) sum += rng.uniform();
    return sum;
  };
  const auto a = parallel_map(seeds, run, 1);
  const auto b = parallel_map(seeds, run, 4);
  const auto c = parallel_map(seeds, run, 13);
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
}

TEST(ParallelMap, MoreThreadsThanJobs) {
  const std::vector<int> in{1, 2};
  const auto out = parallel_map(in, [](int x) { return -x; }, 16);
  EXPECT_EQ(out, (std::vector<int>{-1, -2}));
}

// A result type with no default constructor: parallel_map must not
// require one (it assembles results through optional slots).
struct Wrapped {
  explicit Wrapped(int x) : value(x) {}
  int value;
  bool operator==(const Wrapped& o) const { return value == o.value; }
};

TEST(ParallelMap, ResultTypeNeedNotBeDefaultConstructible) {
  static_assert(!std::is_default_constructible_v<Wrapped>);
  std::vector<int> in{1, 2, 3, 4, 5};
  const auto one = parallel_map(in, [](int x) { return Wrapped(x * 2); }, 1);
  const auto many = parallel_map(in, [](int x) { return Wrapped(x * 2); }, 4);
  ASSERT_EQ(one.size(), 5u);
  EXPECT_EQ(one, many);
  EXPECT_EQ(one[4].value, 10);
}

TEST(ParallelMap, ThrowPropagatesSingleThread) {
  const std::vector<int> in{0, 1, 2, 3};
  try {
    parallel_map(
        in,
        [](int x) {
          if (x == 2) throw std::runtime_error("job 2 failed");
          return x;
        },
        1);
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "job 2 failed");
  }
}

TEST(ParallelMap, ThrowPropagatesAcrossWorkerThreads) {
  // The exception is raised on a worker; the caller must see it (not
  // std::terminate) and every other job must still run to completion
  // before it surfaces — workers are joined, not abandoned.
  std::vector<int> in(64);
  std::iota(in.begin(), in.end(), 0);
  std::atomic<int> completed{0};
  try {
    parallel_map(
        in,
        [&](int x) {
          if (x == 17) throw std::runtime_error("job 17 failed");
          completed.fetch_add(1, std::memory_order_relaxed);
          return x;
        },
        8);
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "job 17 failed");
  }
  EXPECT_LE(completed.load(), 63);
}

TEST(ParallelMap, FirstOfSeveralThrowsStillSurfaces) {
  // More than one job throwing must not lose the exception or crash;
  // exactly one of them is rethrown.
  std::vector<int> in(32);
  std::iota(in.begin(), in.end(), 0);
  EXPECT_THROW(parallel_map(
                   in,
                   [](int x) {
                     if (x % 3 == 0) throw std::runtime_error("boom");
                     return x;
                   },
                   4),
               std::runtime_error);
}

TEST(SweepThreads, BoundedByJobsAndHardware) {
  EXPECT_EQ(sweep_threads(1), 1u);
  EXPECT_GE(sweep_threads(1000), 1u);
  EXPECT_LE(sweep_threads(2), 2u);
}

TEST(ParallelMap, ExplicitZeroThreadsThrows) {
  // threads == 0 used to fall through to "auto"; a caller that computed 0
  // (bad config, failed parse) now gets a loud error instead of a silently
  // different thread count — and never a hung sweep.
  const std::vector<int> in{1, 2, 3};
  EXPECT_THROW(parallel_map(in, [](int x) { return x; }, 0),
               std::invalid_argument);
  EXPECT_THROW(parallel_map_reduce(
                   in, [](int x) { return x; }, 0,
                   [](int& acc, int v) { acc += v; }, 0),
               std::invalid_argument);
  // Even an empty input validates the thread count first.
  const std::vector<int> empty;
  EXPECT_THROW(parallel_map(empty, [](int x) { return x; }, 0),
               std::invalid_argument);
}

TEST(ParallelMap, AutoSentinelMatchesExplicitChoice) {
  std::vector<int> in(24);
  std::iota(in.begin(), in.end(), 0);
  const auto auto_out = parallel_map(in, [](int x) { return 3 * x; },
                                     kAutoThreads);
  const auto one_out = parallel_map(in, [](int x) { return 3 * x; }, 1);
  EXPECT_EQ(auto_out, one_out);
  // kAutoThreads is also the default argument.
  const auto def_out = parallel_map(in, [](int x) { return 3 * x; });
  EXPECT_EQ(def_out, one_out);
}

TEST(ParallelMap, OversizedThreadCountIsClampedToJobs) {
  // More threads than jobs must not spawn idle workers that fight over the
  // index counter; result is identical either way.
  const std::vector<int> in{5, 6};
  const auto out = parallel_map(in, [](int x) { return x * x; }, 64);
  EXPECT_EQ(out, (std::vector<int>{25, 36}));
}

// --- deterministic shard merging ---------------------------------------
//
// Replicated runs collect metrics into per-shard accumulators; the sweep
// layer folds them in input order on the calling thread.  These tests pin
// the contract the scale sweep depends on: the merged accumulator is
// BYTE-identical for any thread count, including the floating-point state
// of Welford summaries, where merge order genuinely changes the bits.

struct MetricShard {
  metrics::Summary delay;
  metrics::Histogram hist{0.0, 1.0, 50};
  metrics::TimeSeries hits{3600.0};
};

MetricShard make_shard(std::uint64_t seed) {
  Rng rng(seed);
  MetricShard s;
  for (int i = 0; i < 4096; ++i) {
    const double x = rng.uniform();
    s.delay.add(x);
    s.hist.add(x * 1.2 - 0.1);  // exercises under- and overflow bins
    s.hits.add(x * 7200.0);
  }
  return s;
}

void merge_shard(MetricShard& acc, MetricShard& s) {
  acc.delay += s.delay;
  acc.hist += s.hist;
  acc.hits += s.hits;
}

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

TEST(ParallelMapReduce, ShardMergeByteIdenticalForAnyThreadCount) {
  std::vector<std::uint64_t> seeds(24);
  std::iota(seeds.begin(), seeds.end(), 1000);
  const auto run = [&](unsigned threads) {
    return parallel_map_reduce(seeds, make_shard, MetricShard{}, merge_shard,
                               threads);
  };
  const MetricShard a = run(1);
  for (const unsigned threads : {2u, 4u, 7u, 13u, 32u}) {
    const MetricShard b = run(threads);
    // Exact bit comparison: == on doubles would also pass for -0.0 vs 0.0
    // and hides nothing here, but bits make the intent unmissable.
    EXPECT_EQ(bits(a.delay.mean()), bits(b.delay.mean())) << threads;
    EXPECT_EQ(bits(a.delay.variance()), bits(b.delay.variance())) << threads;
    EXPECT_EQ(bits(a.delay.min()), bits(b.delay.min())) << threads;
    EXPECT_EQ(bits(a.delay.max()), bits(b.delay.max())) << threads;
    EXPECT_EQ(a.delay.count(), b.delay.count()) << threads;
    EXPECT_EQ(a.hist.bins(), b.hist.bins()) << threads;
    EXPECT_EQ(a.hist.underflow(), b.hist.underflow()) << threads;
    EXPECT_EQ(a.hist.overflow(), b.hist.overflow()) << threads;
    EXPECT_EQ(bits(a.hist.quantile(0.95)), bits(b.hist.quantile(0.95)))
        << threads;
    EXPECT_EQ(a.hits.buckets(), b.hits.buckets()) << threads;
  }
}

TEST(ParallelMapReduce, MergedCountersMatchSingleStream) {
  // Counter-typed metrics (histogram bins, time-series buckets) merged
  // from shards must equal one accumulator that saw every sample — the
  // split loses nothing.
  std::vector<std::uint64_t> seeds(8);
  std::iota(seeds.begin(), seeds.end(), 55);
  const MetricShard merged = parallel_map_reduce(
      seeds, make_shard, MetricShard{}, merge_shard, 4);
  MetricShard single;
  for (const std::uint64_t seed : seeds) {
    Rng rng(seed);
    for (int i = 0; i < 4096; ++i) {
      const double x = rng.uniform();
      single.delay.add(x);
      single.hist.add(x * 1.2 - 0.1);
      single.hits.add(x * 7200.0);
    }
  }
  EXPECT_EQ(merged.hist.bins(), single.hist.bins());
  EXPECT_EQ(merged.hits.buckets(), single.hits.buckets());
  EXPECT_EQ(merged.delay.count(), single.delay.count());
  EXPECT_EQ(bits(merged.delay.min()), bits(single.delay.min()));
  EXPECT_EQ(bits(merged.delay.max()), bits(single.delay.max()));
  // Welford merge and sequential ingestion agree to rounding, not bits.
  EXPECT_NEAR(merged.delay.mean(), single.delay.mean(), 1e-12);
}

TEST(ParallelMapReduce, FoldsInInputOrder) {
  std::vector<int> in{1, 2, 3, 4, 5, 6};
  const auto order = parallel_map_reduce(
      in, [](int x) { return x; }, std::vector<int>{},
      [](std::vector<int>& acc, int x) { acc.push_back(x); }, 4);
  EXPECT_EQ(order, in);
}

TEST(MergeGeometry, MismatchedHistogramThrows) {
  metrics::Histogram a(0.0, 1.0, 10), b(0.0, 2.0, 10), c(0.0, 1.0, 20);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a += c, std::invalid_argument);
}

TEST(MergeGeometry, MismatchedTimeSeriesWidthThrows) {
  metrics::TimeSeries a(3600.0), b(60.0);
  EXPECT_THROW(a += b, std::invalid_argument);
}

TEST(MergeGeometry, MergingLongerSeriesExtendsShorter) {
  metrics::TimeSeries a(10.0), b(10.0);
  a.add(5.0, 2);
  b.add(95.0, 3);
  a += b;
  ASSERT_EQ(a.num_buckets(), 10u);
  EXPECT_EQ(a.bucket(0), 2u);
  EXPECT_EQ(a.bucket(9), 3u);
  EXPECT_EQ(a.total(), 5u);
}

}  // namespace
}  // namespace dsf::des
