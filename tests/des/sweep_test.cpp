#include "des/sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <type_traits>

#include "des/rng.h"

namespace dsf::des {
namespace {

TEST(ParallelMap, EmptyInput) {
  const std::vector<int> empty;
  const auto out = parallel_map(empty, [](int x) { return x; });
  EXPECT_TRUE(out.empty());
}

TEST(ParallelMap, PreservesInputOrder) {
  std::vector<int> in(100);
  std::iota(in.begin(), in.end(), 0);
  const auto out = parallel_map(in, [](int x) { return x * x; }, 4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMap, SingleThreadFallback) {
  const std::vector<int> in{3, 1, 4};
  const auto out = parallel_map(in, [](int x) { return x + 1; }, 1);
  EXPECT_EQ(out, (std::vector<int>{4, 2, 5}));
}

TEST(ParallelMap, DeterministicAcrossThreadCounts) {
  // Each job runs its own seeded RNG — results must not depend on how
  // jobs are scheduled onto threads.
  std::vector<std::uint64_t> seeds(32);
  std::iota(seeds.begin(), seeds.end(), 100);
  const auto run = [](std::uint64_t seed) {
    Rng rng(seed);
    double sum = 0.0;
    for (int i = 0; i < 1000; ++i) sum += rng.uniform();
    return sum;
  };
  const auto a = parallel_map(seeds, run, 1);
  const auto b = parallel_map(seeds, run, 4);
  const auto c = parallel_map(seeds, run, 13);
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
}

TEST(ParallelMap, MoreThreadsThanJobs) {
  const std::vector<int> in{1, 2};
  const auto out = parallel_map(in, [](int x) { return -x; }, 16);
  EXPECT_EQ(out, (std::vector<int>{-1, -2}));
}

// A result type with no default constructor: parallel_map must not
// require one (it assembles results through optional slots).
struct Wrapped {
  explicit Wrapped(int x) : value(x) {}
  int value;
  bool operator==(const Wrapped& o) const { return value == o.value; }
};

TEST(ParallelMap, ResultTypeNeedNotBeDefaultConstructible) {
  static_assert(!std::is_default_constructible_v<Wrapped>);
  std::vector<int> in{1, 2, 3, 4, 5};
  const auto one = parallel_map(in, [](int x) { return Wrapped(x * 2); }, 1);
  const auto many = parallel_map(in, [](int x) { return Wrapped(x * 2); }, 4);
  ASSERT_EQ(one.size(), 5u);
  EXPECT_EQ(one, many);
  EXPECT_EQ(one[4].value, 10);
}

TEST(ParallelMap, ThrowPropagatesSingleThread) {
  const std::vector<int> in{0, 1, 2, 3};
  try {
    parallel_map(
        in,
        [](int x) {
          if (x == 2) throw std::runtime_error("job 2 failed");
          return x;
        },
        1);
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "job 2 failed");
  }
}

TEST(ParallelMap, ThrowPropagatesAcrossWorkerThreads) {
  // The exception is raised on a worker; the caller must see it (not
  // std::terminate) and every other job must still run to completion
  // before it surfaces — workers are joined, not abandoned.
  std::vector<int> in(64);
  std::iota(in.begin(), in.end(), 0);
  std::atomic<int> completed{0};
  try {
    parallel_map(
        in,
        [&](int x) {
          if (x == 17) throw std::runtime_error("job 17 failed");
          completed.fetch_add(1, std::memory_order_relaxed);
          return x;
        },
        8);
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "job 17 failed");
  }
  EXPECT_LE(completed.load(), 63);
}

TEST(ParallelMap, FirstOfSeveralThrowsStillSurfaces) {
  // More than one job throwing must not lose the exception or crash;
  // exactly one of them is rethrown.
  std::vector<int> in(32);
  std::iota(in.begin(), in.end(), 0);
  EXPECT_THROW(parallel_map(
                   in,
                   [](int x) {
                     if (x % 3 == 0) throw std::runtime_error("boom");
                     return x;
                   },
                   4),
               std::runtime_error);
}

TEST(SweepThreads, BoundedByJobsAndHardware) {
  EXPECT_EQ(sweep_threads(1), 1u);
  EXPECT_GE(sweep_threads(1000), 1u);
  EXPECT_LE(sweep_threads(2), 2u);
}

}  // namespace
}  // namespace dsf::des
