#include "des/sweep.h"

#include <gtest/gtest.h>

#include <numeric>

#include "des/rng.h"

namespace dsf::des {
namespace {

TEST(ParallelMap, EmptyInput) {
  const std::vector<int> empty;
  const auto out = parallel_map(empty, [](int x) { return x; });
  EXPECT_TRUE(out.empty());
}

TEST(ParallelMap, PreservesInputOrder) {
  std::vector<int> in(100);
  std::iota(in.begin(), in.end(), 0);
  const auto out = parallel_map(in, [](int x) { return x * x; }, 4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMap, SingleThreadFallback) {
  const std::vector<int> in{3, 1, 4};
  const auto out = parallel_map(in, [](int x) { return x + 1; }, 1);
  EXPECT_EQ(out, (std::vector<int>{4, 2, 5}));
}

TEST(ParallelMap, DeterministicAcrossThreadCounts) {
  // Each job runs its own seeded RNG — results must not depend on how
  // jobs are scheduled onto threads.
  std::vector<std::uint64_t> seeds(32);
  std::iota(seeds.begin(), seeds.end(), 100);
  const auto run = [](std::uint64_t seed) {
    Rng rng(seed);
    double sum = 0.0;
    for (int i = 0; i < 1000; ++i) sum += rng.uniform();
    return sum;
  };
  const auto a = parallel_map(seeds, run, 1);
  const auto b = parallel_map(seeds, run, 4);
  const auto c = parallel_map(seeds, run, 13);
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
}

TEST(ParallelMap, MoreThreadsThanJobs) {
  const std::vector<int> in{1, 2};
  const auto out = parallel_map(in, [](int x) { return -x; }, 16);
  EXPECT_EQ(out, (std::vector<int>{-1, -2}));
}

TEST(SweepThreads, BoundedByJobsAndHardware) {
  EXPECT_EQ(sweep_threads(1), 1u);
  EXPECT_GE(sweep_threads(1000), 1u);
  EXPECT_LE(sweep_threads(2), 2u);
}

}  // namespace
}  // namespace dsf::des
