#include "des/distributions.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace dsf::des {
namespace {

TEST(Exponential, RejectsNonPositiveMean) {
  EXPECT_THROW(Exponential(0.0), std::invalid_argument);
  EXPECT_THROW(Exponential(-1.0), std::invalid_argument);
}

TEST(Exponential, SamplesAreNonNegative) {
  Rng rng(1);
  Exponential e(5.0);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(e.sample(rng), 0.0);
}

TEST(Exponential, EmpiricalMeanMatches) {
  Rng rng(2);
  Exponential e(3.0 * 3600.0);  // the paper's 3-hour session mean
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += e.sample(rng);
  EXPECT_NEAR(sum / n / 3600.0, 3.0, 0.05);
}

TEST(Exponential, MemorylessTailFraction) {
  // P(X > mean) should be e^-1.
  Rng rng(3);
  Exponential e(10.0);
  int over = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) over += e.sample(rng) > 10.0;
  EXPECT_NEAR(static_cast<double>(over) / n, std::exp(-1.0), 0.01);
}

TEST(TruncatedGaussian, RejectsBadParams) {
  EXPECT_THROW(TruncatedGaussian(0, 0, -1, 1), std::invalid_argument);
  EXPECT_THROW(TruncatedGaussian(0, 1, 2, 1), std::invalid_argument);
}

TEST(TruncatedGaussian, RespectsBounds) {
  Rng rng(4);
  TruncatedGaussian g(200.0, 50.0, 10.0, 400.0);  // library-size settings
  for (int i = 0; i < 20000; ++i) {
    const double x = g.sample(rng);
    EXPECT_GE(x, 10.0);
    EXPECT_LE(x, 400.0);
  }
}

TEST(TruncatedGaussian, EmpiricalMoments) {
  Rng rng(5);
  TruncatedGaussian g(200.0, 50.0, 10.0, 400.0);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = g.sample(rng);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double stddev = std::sqrt(sq / n - mean * mean);
  // Truncation at ±~4σ barely perturbs the moments.
  EXPECT_NEAR(mean, 200.0, 1.0);
  EXPECT_NEAR(stddev, 50.0, 1.0);
}

TEST(TruncatedGaussian, DelaySettingsStayInWindow) {
  Rng rng(6);
  TruncatedGaussian g(0.300, 0.020, 0.010, 0.600);  // modem-path delays
  for (int i = 0; i < 20000; ++i) {
    const double x = g.sample(rng);
    EXPECT_GE(x, 0.010);
    EXPECT_LE(x, 0.600);
  }
}

TEST(Zipf, RejectsBadParams) {
  EXPECT_THROW(Zipf(0, 0.9), std::invalid_argument);
  EXPECT_THROW(Zipf(10, -0.1), std::invalid_argument);
}

TEST(Zipf, PmfSumsToOne) {
  Zipf z(1000, 0.9);
  double sum = 0.0;
  for (std::size_t k = 0; k < 1000; ++k) sum += z.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, PmfIsMonotoneDecreasing) {
  Zipf z(500, 0.9);
  for (std::size_t k = 1; k < 500; ++k) EXPECT_LE(z.pmf(k), z.pmf(k - 1));
}

TEST(Zipf, PmfMatchesClosedForm) {
  const std::size_t n = 100;
  const double theta = 0.9;
  Zipf z(n, theta);
  double h = 0.0;
  for (std::size_t k = 1; k <= n; ++k)
    h += 1.0 / std::pow(static_cast<double>(k), theta);
  for (std::size_t k = 0; k < n; k += 7)
    EXPECT_NEAR(z.pmf(k),
                1.0 / std::pow(static_cast<double>(k + 1), theta) / h, 1e-12);
}

TEST(Zipf, SampleFrequenciesTrackPmf) {
  Rng rng(7);
  Zipf z(50, 0.9);  // user→category assignment settings
  std::vector<int> counts(50, 0);
  const int n = 500000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  for (std::size_t k = 0; k < 50; k += 5) {
    const double expected = z.pmf(k) * n;
    EXPECT_NEAR(counts[k], expected, 5.0 * std::sqrt(expected) + 10.0);
  }
}

TEST(Zipf, ThetaZeroIsUniform) {
  Zipf z(10, 0.0);
  for (std::size_t k = 0; k < 10; ++k) EXPECT_NEAR(z.pmf(k), 0.1, 1e-12);
}

TEST(AliasTable, RejectsBadWeights) {
  EXPECT_THROW(AliasTable({}), std::invalid_argument);
  EXPECT_THROW(AliasTable({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(AliasTable({1.0, -0.5}), std::invalid_argument);
}

TEST(AliasTable, MatchesWeights) {
  Rng rng(8);
  AliasTable t({1.0, 2.0, 3.0, 4.0});
  std::vector<int> counts(4, 0);
  const int n = 400000;
  for (int i = 0; i < n; ++i) ++counts[t.sample(rng)];
  for (int k = 0; k < 4; ++k) {
    const double expected = (k + 1) / 10.0 * n;
    EXPECT_NEAR(counts[k], expected, 0.02 * n);
  }
}

TEST(AliasTable, ZeroWeightNeverSampled) {
  Rng rng(9);
  AliasTable t({0.0, 1.0, 0.0});
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(t.sample(rng), 1u);
}

TEST(AliasTable, AgreesWithZipfPmf) {
  const std::size_t n = 4000;  // songs per category in the paper
  Zipf z(n, 0.9);
  std::vector<double> w(n);
  for (std::size_t k = 0; k < n; ++k) w[k] = z.pmf(k);
  AliasTable t(w);
  Rng rng(10);
  std::vector<int> counts(n, 0);
  const int draws = 400000;
  for (int i = 0; i < draws; ++i) ++counts[t.sample(rng)];
  // Spot-check the head of the distribution where counts are large.
  for (std::size_t k = 0; k < 5; ++k) {
    const double expected = z.pmf(k) * draws;
    EXPECT_NEAR(counts[k], expected, 5.0 * std::sqrt(expected) + 10.0);
  }
}

TEST(SampleWithoutReplacement, ProducesDistinctValues) {
  Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    auto v = sample_without_replacement(50, 5, rng);
    std::set<std::size_t> s(v.begin(), v.end());
    EXPECT_EQ(s.size(), 5u);
    for (auto x : v) EXPECT_LT(x, 50u);
  }
}

TEST(SampleWithoutReplacement, FullRangeIsPermutation) {
  Rng rng(12);
  auto v = sample_without_replacement(10, 10, rng);
  std::sort(v.begin(), v.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(v[i], i);
}

TEST(SampleWithoutReplacement, RejectsKGreaterThanN) {
  Rng rng(13);
  EXPECT_THROW(sample_without_replacement(3, 4, rng), std::invalid_argument);
}

TEST(SampleWithoutReplacement, IsUnbiased) {
  Rng rng(14);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int t = 0; t < trials; ++t)
    for (auto x : sample_without_replacement(10, 3, rng)) ++counts[x];
  for (int c : counts) EXPECT_NEAR(c, trials * 3 / 10, trials * 0.01);
}

}  // namespace
}  // namespace dsf::des
