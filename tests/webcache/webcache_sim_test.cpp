#include "webcache/webcache_sim.h"

#include <gtest/gtest.h>

namespace dsf::webcache {
namespace {

WebCacheConfig fast_config() {
  WebCacheConfig c;
  c.num_proxies = 32;
  c.num_pages = 20000;
  c.num_topics = 8;
  c.cache_capacity = 500;
  c.sim_hours = 1.0;
  c.warmup_hours = 0.25;
  c.mean_interrequest_s = 2.0;
  c.seed = 5;
  return c;
}

TEST(WebCacheSim, RunProducesRequests) {
  const auto r = WebCacheSim(fast_config()).run();
  EXPECT_GT(r.requests, 0u);
  EXPECT_EQ(r.requests, r.local_hits + r.neighbor_hits + r.origin_fetches);
}

TEST(WebCacheSim, DeterministicForSameSeed) {
  const auto a = WebCacheSim(fast_config()).run();
  const auto b = WebCacheSim(fast_config()).run();
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.neighbor_hits, b.neighbor_hits);
  EXPECT_DOUBLE_EQ(a.latency_s.mean(), b.latency_s.mean());
}

TEST(WebCacheSim, OverlayRespectsPureAsymmetricShape) {
  WebCacheSim sim(fast_config());
  const auto& t = sim.overlay();
  EXPECT_EQ(t.kind(), core::RelationKind::kPureAsymmetric);
  EXPECT_TRUE(t.consistent());
  for (net::NodeId p = 0; p < sim.config().num_proxies; ++p)
    EXPECT_LE(t.lists(p).out().size(), sim.config().num_neighbors);
}

TEST(WebCacheSim, DynamicBeatsStaticOnNeighborHitRate) {
  WebCacheConfig dyn = fast_config();
  dyn.sim_hours = 2.0;
  WebCacheConfig sta = dyn;
  sta.dynamic = false;
  const auto rd = WebCacheSim(dyn).run();
  const auto rs = WebCacheSim(sta).run();
  EXPECT_GT(rd.neighbor_hit_rate(), rs.neighbor_hit_rate());
}

TEST(WebCacheSim, DynamicLowersMeanLatency) {
  WebCacheConfig dyn = fast_config();
  dyn.sim_hours = 2.0;
  WebCacheConfig sta = dyn;
  sta.dynamic = false;
  const auto rd = WebCacheSim(dyn).run();
  const auto rs = WebCacheSim(sta).run();
  EXPECT_LT(rd.latency_s.mean(), rs.latency_s.mean());
}

TEST(WebCacheSim, StaticGeneratesNoControlTraffic) {
  WebCacheConfig c = fast_config();
  c.dynamic = false;
  const auto r = WebCacheSim(c).run();
  EXPECT_EQ(r.traffic.control_traffic(), 0u);
}

TEST(WebCacheSim, DynamicGeneratesExplorationTraffic) {
  const auto r = WebCacheSim(fast_config()).run();
  EXPECT_GT(r.traffic.total(net::MessageType::kExploreQuery), 0u);
}

TEST(WebCacheSim, DigestsAndLiveCachesBothAdapt) {
  WebCacheConfig digests = fast_config();
  digests.sim_hours = 2.0;
  WebCacheConfig live = digests;
  live.digest_rebuild_period_s = 0.0;  // exploration reads live caches
  WebCacheConfig sta = digests;
  sta.dynamic = false;
  const auto rd = WebCacheSim(digests).run();
  const auto rl = WebCacheSim(live).run();
  const auto rs = WebCacheSim(sta).run();
  // Both adaptive variants must beat static; stale digests may cost a
  // little versus live knowledge but not collapse.
  EXPECT_GT(rd.neighbor_hit_rate(), rs.neighbor_hit_rate());
  EXPECT_GT(rl.neighbor_hit_rate(), rs.neighbor_hit_rate());
}

TEST(WebCacheSim, HierarchyRejectsAllParents) {
  WebCacheConfig c = fast_config();
  c.num_parents = c.num_proxies;
  EXPECT_THROW(WebCacheSim{c}, std::invalid_argument);
}

TEST(WebCacheSim, HierarchyLeavesPointOnlyAtParents) {
  WebCacheConfig c = fast_config();
  c.num_parents = 4;
  WebCacheSim sim(c);
  for (net::NodeId p = 0; p < c.num_proxies; ++p) {
    if (p < c.num_parents) {
      EXPECT_TRUE(sim.overlay().lists(p).out().empty());
    } else {
      for (net::NodeId q : sim.overlay().lists(p).out())
        EXPECT_LT(q, c.num_parents) << "leaf " << p << " points at a leaf";
    }
  }
}

TEST(WebCacheSim, HierarchyStaysParentOnlyAfterAdaptiveRun) {
  WebCacheConfig c = fast_config();
  c.num_parents = 4;
  c.sim_hours = 1.0;
  WebCacheSim sim(c);
  sim.run();
  for (net::NodeId p = c.num_parents; p < c.num_proxies; ++p)
    for (net::NodeId q : sim.overlay().lists(p).out())
      EXPECT_LT(q, c.num_parents);
}

TEST(WebCacheSim, HierarchyAggregationBeatsFlatStaticMesh) {
  // Top-level proxies warmed by every leaf's misses absorb far more
  // traffic than a static flat mesh of equals.
  WebCacheConfig hierarchy = fast_config();
  hierarchy.num_parents = 4;
  hierarchy.sim_hours = 2.0;
  WebCacheConfig flat = fast_config();
  flat.dynamic = false;
  flat.sim_hours = 2.0;
  const auto rh = WebCacheSim(hierarchy).run();
  const auto rf = WebCacheSim(flat).run();
  EXPECT_GT(rh.neighbor_hit_rate(), rf.neighbor_hit_rate());
}

TEST(WebCacheSim, AdaptiveParentChoiceBeatsRandomParents) {
  // Leaves that pick the parent matching their topic community beat
  // leaves stuck with random parents.
  WebCacheConfig adaptive = fast_config();
  adaptive.num_parents = 8;
  adaptive.sim_hours = 2.0;
  WebCacheConfig random_parents = adaptive;
  random_parents.dynamic = false;
  const auto ra = WebCacheSim(adaptive).run();
  const auto rr = WebCacheSim(random_parents).run();
  EXPECT_GT(ra.neighbor_hit_rate(), rr.neighbor_hit_rate());
}

TEST(WebCacheSim, HitRatesAreProperFractions) {
  const auto r = WebCacheSim(fast_config()).run();
  EXPECT_GE(r.local_hit_rate(), 0.0);
  EXPECT_LE(r.local_hit_rate(), 1.0);
  EXPECT_GE(r.neighbor_hit_rate(), 0.0);
  EXPECT_LE(r.neighbor_hit_rate(), 1.0);
}

}  // namespace
}  // namespace dsf::webcache
