#include "webcache/lru_cache.h"

#include <gtest/gtest.h>

namespace dsf::webcache {
namespace {

TEST(LruCache, RejectsZeroCapacity) {
  EXPECT_THROW(LruCache<int>(0), std::invalid_argument);
}

TEST(LruCache, InsertAndContains) {
  LruCache<int> c(3);
  c.insert(1);
  c.insert(2);
  EXPECT_TRUE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
  EXPECT_FALSE(c.contains(3));
  EXPECT_EQ(c.size(), 2u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache<int> c(2);
  c.insert(1);
  c.insert(2);
  const auto [evicted, victim] = c.insert(3);
  EXPECT_TRUE(evicted);
  EXPECT_EQ(victim, 1);
  EXPECT_FALSE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
  EXPECT_TRUE(c.contains(3));
}

TEST(LruCache, TouchPromotes) {
  LruCache<int> c(2);
  c.insert(1);
  c.insert(2);
  EXPECT_TRUE(c.touch(1));  // 1 becomes MRU
  const auto [evicted, victim] = c.insert(3);
  EXPECT_TRUE(evicted);
  EXPECT_EQ(victim, 2);
  EXPECT_TRUE(c.contains(1));
}

TEST(LruCache, TouchMissReturnsFalse) {
  LruCache<int> c(2);
  EXPECT_FALSE(c.touch(5));
}

TEST(LruCache, ReinsertPromotesWithoutGrowth) {
  LruCache<int> c(2);
  c.insert(1);
  c.insert(2);
  const auto [evicted, victim] = c.insert(1);  // promote, not duplicate
  EXPECT_FALSE(evicted);
  EXPECT_EQ(c.size(), 2u);
  c.insert(3);
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
}

TEST(LruCache, EraseRemoves) {
  LruCache<int> c(3);
  c.insert(1);
  c.insert(2);
  EXPECT_TRUE(c.erase(1));
  EXPECT_FALSE(c.erase(1));
  EXPECT_FALSE(c.contains(1));
  EXPECT_EQ(c.size(), 1u);
}

TEST(LruCache, OrderIsMruFirst) {
  LruCache<int> c(3);
  c.insert(1);
  c.insert(2);
  c.insert(3);
  c.touch(1);
  const auto& order = c.order();
  auto it = order.begin();
  EXPECT_EQ(*it++, 1);
  EXPECT_EQ(*it++, 3);
  EXPECT_EQ(*it++, 2);
}

TEST(LruCache, StressKeepsSizeBounded) {
  LruCache<int> c(10);
  for (int i = 0; i < 1000; ++i) c.insert(i % 37);
  EXPECT_LE(c.size(), 10u);
}

}  // namespace
}  // namespace dsf::webcache
