#include <gtest/gtest.h>

#include "webcache/webcache_sim.h"

namespace dsf::webcache {
namespace {

/// Property sweep over the web-caching scenario: (dynamic?, hierarchy
/// parents, digests?) — accounting and structural invariants must hold
/// for every combination.
class WebCacheProperty
    : public ::testing::TestWithParam<std::tuple<bool, std::uint32_t, bool>> {
 protected:
  WebCacheConfig make_config() const {
    WebCacheConfig c;
    c.num_proxies = 24;
    c.num_pages = 12000;
    c.num_topics = 6;
    c.cache_capacity = 300;
    c.mean_interrequest_s = 2.0;
    c.sim_hours = 0.75;
    c.warmup_hours = 0.1;
    c.dynamic = std::get<0>(GetParam());
    c.num_parents = std::get<1>(GetParam());
    c.digest_rebuild_period_s = std::get<2>(GetParam()) ? 300.0 : 0.0;
    c.seed = 99 + c.num_parents;
    return c;
  }
};

TEST_P(WebCacheProperty, AccountingBalances) {
  const WebCacheConfig c = make_config();
  const auto r = WebCacheSim(c).run();
  EXPECT_GT(r.requests, 0u);
  EXPECT_EQ(r.requests, r.local_hits + r.neighbor_hits + r.origin_fetches);
  EXPECT_EQ(r.latency_s.count(), r.requests);
  EXPECT_GE(r.latency_s.min(), 0.0);
  if (!c.dynamic) {
    EXPECT_EQ(r.traffic.control_traffic(), 0u);
  }
}

TEST_P(WebCacheProperty, OverlayShapeInvariants) {
  const WebCacheConfig c = make_config();
  WebCacheSim sim(c);
  sim.run();
  EXPECT_TRUE(sim.overlay().consistent());
  for (net::NodeId p = 0; p < c.num_proxies; ++p) {
    EXPECT_LE(sim.overlay().lists(p).out().size(), c.num_neighbors);
    if (c.num_parents > 0) {
      if (p < c.num_parents) {
        EXPECT_TRUE(sim.overlay().lists(p).out().empty());
      } else {
        for (net::NodeId q : sim.overlay().lists(p).out())
          EXPECT_LT(q, c.num_parents);
      }
    }
    for (net::NodeId q : sim.overlay().lists(p).out()) EXPECT_NE(q, p);
  }
}

TEST_P(WebCacheProperty, Deterministic) {
  const WebCacheConfig c = make_config();
  const auto a = WebCacheSim(c).run();
  const auto b = WebCacheSim(c).run();
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.neighbor_hits, b.neighbor_hits);
  EXPECT_EQ(a.origin_fetches, b.origin_fetches);
}

INSTANTIATE_TEST_SUITE_P(
    ModesParentsDigests, WebCacheProperty,
    ::testing::Combine(::testing::Bool(),                    // dynamic
                       ::testing::Values<std::uint32_t>(0, 4),  // parents
                       ::testing::Bool()),                   // digests
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ? "dynamic" : "static") +
             "_parents" + std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_digests" : "_live");
    });

}  // namespace
}  // namespace dsf::webcache
