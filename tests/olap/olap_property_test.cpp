#include <gtest/gtest.h>

#include <algorithm>

#include "olap/olap_sim.h"

namespace dsf::olap {
namespace {

/// Property sweep over hop limits and adaptivity.
class OlapProperty
    : public ::testing::TestWithParam<std::tuple<int, bool>> {
 protected:
  OlapConfig make_config() const {
    OlapConfig c;
    c.num_peers = 20;
    c.num_chunks = 9600;
    c.num_regions = 6;
    c.cache_capacity = 300;
    c.mean_interquery_s = 6.0;
    c.sim_hours = 1.0;
    c.warmup_hours = 0.1;
    c.max_hops = std::get<0>(GetParam());
    c.dynamic = std::get<1>(GetParam());
    c.seed = 31 + static_cast<std::uint64_t>(c.max_hops);
    return c;
  }
};

TEST_P(OlapProperty, ChunkAccountingBalances) {
  const OlapConfig c = make_config();
  const auto r = OlapSim(c).run();
  EXPECT_GT(r.queries, 0u);
  EXPECT_EQ(r.chunks_requested, r.queries * c.query_span);
  EXPECT_EQ(r.chunks_requested,
            r.chunks_local + r.chunks_from_peers + r.chunks_from_warehouse);
  EXPECT_EQ(r.response_time_s.count(), r.queries);
}

TEST_P(OlapProperty, ResponseTimeWithinPhysicalBounds) {
  const OlapConfig c = make_config();
  const auto r = OlapSim(c).run();
  EXPECT_GE(r.response_time_s.min(), 0.0);
  // Worst case per chunk: warehouse, or a deep peer fetch (transfer cost
  // plus a round trip per hop at the modem-path delay ceiling of 0.6 s).
  const double worst_peer =
      c.peer_s_per_chunk + 2.0 * 0.6 * static_cast<double>(c.max_hops);
  const double bound =
      c.query_span * std::max(c.warehouse_s_per_chunk, worst_peer);
  EXPECT_LE(r.response_time_s.max(), bound + 1e-9);
}

TEST_P(OlapProperty, OverlayBoundedAndConsistent) {
  const OlapConfig c = make_config();
  OlapSim sim(c);
  sim.run();
  EXPECT_TRUE(sim.overlay().consistent());
  for (net::NodeId p = 0; p < c.num_peers; ++p)
    EXPECT_LE(sim.overlay().lists(p).out().size(), c.num_neighbors);
}

TEST_P(OlapProperty, Deterministic) {
  const OlapConfig c = make_config();
  const auto a = OlapSim(c).run();
  const auto b = OlapSim(c).run();
  EXPECT_EQ(a.chunks_from_peers, b.chunks_from_peers);
  EXPECT_EQ(a.chunks_from_warehouse, b.chunks_from_warehouse);
}

std::string param_name(
    const ::testing::TestParamInfo<std::tuple<int, bool>>& info) {
  return "hops" + std::to_string(std::get<0>(info.param)) +
         (std::get<1>(info.param) ? "_dynamic" : "_static");
}

INSTANTIATE_TEST_SUITE_P(HopsAndModes, OlapProperty,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Bool()),
                         param_name);

}  // namespace
}  // namespace dsf::olap
