#include "olap/olap_sim.h"

#include <gtest/gtest.h>

namespace dsf::olap {
namespace {

OlapConfig fast_config() {
  OlapConfig c;
  c.num_peers = 24;
  c.num_chunks = 12000;
  c.num_regions = 6;
  c.cache_capacity = 400;
  c.mean_interquery_s = 5.0;
  c.sim_hours = 1.5;
  c.warmup_hours = 0.25;
  c.seed = 3;
  return c;
}

TEST(OlapSim, RejectsBadGeometry) {
  OlapConfig span = fast_config();
  span.query_span = 100000;
  EXPECT_THROW(OlapSim{span}, std::invalid_argument);
  OlapConfig regions = fast_config();
  regions.num_chunks = 12001;
  EXPECT_THROW(OlapSim{regions}, std::invalid_argument);
  OlapConfig zero = fast_config();
  zero.query_span = 0;
  EXPECT_THROW(OlapSim{zero}, std::invalid_argument);
}

TEST(OlapSim, QueriesStayInsideOneRegion) {
  // query_span chunks anchored inside a region must never cross into the
  // next region — guarded by the anchor clamping.
  OlapConfig c = fast_config();
  const auto r = OlapSim(c).run();
  // Indirect check: all accounting balances (a cross-region anchor would
  // read out-of-range chunk ids and distort per-query counts).
  EXPECT_EQ(r.chunks_requested, r.queries * c.query_span);
}

TEST(OlapSim, RunProducesQueries) {
  const auto r = OlapSim(fast_config()).run();
  EXPECT_GT(r.queries, 0u);
  EXPECT_EQ(r.chunks_requested,
            r.chunks_local + r.chunks_from_peers + r.chunks_from_warehouse);
}

TEST(OlapSim, ChunksPerQueryMatchesSpan) {
  OlapConfig c = fast_config();
  const auto r = OlapSim(c).run();
  EXPECT_EQ(r.chunks_requested, r.queries * c.query_span);
}

TEST(OlapSim, DeterministicForSameSeed) {
  const auto a = OlapSim(fast_config()).run();
  const auto b = OlapSim(fast_config()).run();
  EXPECT_EQ(a.chunks_from_peers, b.chunks_from_peers);
  EXPECT_DOUBLE_EQ(a.response_time_s.mean(), b.response_time_s.mean());
}

TEST(OlapSim, DynamicBeatsStaticOnResponseTime) {
  // Default scale: enough peers and hours for adaptation to express itself
  // (the tiny fast_config population gives static too much accidental
  // same-region coverage).
  OlapConfig dyn;  // 48 peers
  dyn.sim_hours = 4.0;
  dyn.warmup_hours = 0.5;
  OlapConfig sta = dyn;
  sta.dynamic = false;
  const auto rd = OlapSim(dyn).run();
  const auto rs = OlapSim(sta).run();
  EXPECT_LT(rd.response_time_s.mean(), rs.response_time_s.mean());
  EXPECT_GT(rd.peer_hit_rate(), rs.peer_hit_rate());
}

TEST(OlapSim, ResponseTimeBelowAllWarehouseBound) {
  OlapConfig c = fast_config();
  const auto r = OlapSim(c).run();
  // All-warehouse would cost span × warehouse_s_per_chunk per query.
  EXPECT_LT(r.response_time_s.mean(),
            c.query_span * c.warehouse_s_per_chunk);
}

TEST(OlapSim, OverlayIsAsymmetric) {
  OlapSim sim(fast_config());
  EXPECT_EQ(sim.overlay().kind(), core::RelationKind::kAsymmetric);
  EXPECT_TRUE(sim.overlay().consistent());
}

TEST(OlapSim, StaticGeneratesNoControlTraffic) {
  OlapConfig c = fast_config();
  c.dynamic = false;
  const auto r = OlapSim(c).run();
  EXPECT_EQ(r.traffic.control_traffic(), 0u);
}

}  // namespace
}  // namespace dsf::olap
