#include <gtest/gtest.h>

#include "des/rng.h"
#include "gnutella/simulation.h"

namespace dsf::gnutella {
namespace {

/// Config fuzzing: many small random-but-valid configurations, each run
/// to completion with the full invariant battery.  The point is to shake
/// out interactions between knobs (policy × strategy × thresholds ×
/// session shapes) that no hand-picked test covers.
class FuzzConfig : public ::testing::TestWithParam<std::uint64_t> {};

Config random_config(std::uint64_t seed) {
  des::Rng rng(seed);
  Config c;
  c.num_users = 40 + static_cast<std::uint32_t>(rng.uniform_int(120));
  c.catalog.num_categories = 6 + static_cast<std::uint32_t>(rng.uniform_int(10));
  c.catalog.num_songs = c.catalog.num_categories *
                        (200 + static_cast<std::uint32_t>(rng.uniform_int(800)));
  c.catalog.zipf_theta = rng.uniform(0.5, 1.1);
  c.user_zipf_theta = rng.uniform(0.5, 1.1);
  c.library.mean_size = 30.0 + rng.uniform(0.0, 60.0);
  c.library.stddev_size = 5.0 + rng.uniform(0.0, 15.0);
  c.library.min_size = 5.0;
  c.library.max_size = c.library.mean_size * 2.0;
  c.session.mean_online_s = 1800.0 + rng.uniform(0.0, 7200.0);
  c.session.mean_offline_s = 1800.0 + rng.uniform(0.0, 7200.0);
  c.session.mean_interquery_s = 60.0 + rng.uniform(0.0, 300.0);
  c.session.duration_kind = rng.bernoulli(0.3) ? workload::DurationKind::kPareto
                                               : workload::DurationKind::kExponential;
  c.max_neighbors = 2 + static_cast<std::uint32_t>(rng.uniform_int(4));
  c.max_hops = 1 + static_cast<int>(rng.uniform_int(5));
  c.dynamic = rng.bernoulli(0.8);
  c.reconfig_threshold = static_cast<std::uint32_t>(rng.uniform_int(6));
  c.max_exchanges_per_reconfig =
      rng.bernoulli(0.2) ? UINT32_MAX
                         : 1 + static_cast<std::uint32_t>(rng.uniform_int(3));
  c.eviction_refill_floor =
      static_cast<std::uint32_t>(rng.uniform_int(c.max_neighbors + 1));
  c.invitation_policy = static_cast<core::InvitationPolicy>(rng.uniform_int(4));
  c.trial_period_s = 120.0 + rng.uniform(0.0, 1800.0);
  c.benefit = static_cast<BenefitKind>(rng.uniform_int(3));
  c.search_strategy = static_cast<SearchStrategy>(rng.uniform_int(4));
  c.directed_fanout = 1 + static_cast<std::uint32_t>(rng.uniform_int(3));
  c.exclude_owned_songs = rng.bernoulli(0.3);
  c.library_growth = rng.bernoulli(0.3);
  c.persist_stats_across_sessions = rng.bernoulli(0.8);
  c.sim_hours = 1.5;
  c.warmup_hours = 0.25;
  c.probe_period_s = rng.bernoulli(0.3) ? 900.0 : 0.0;
  c.seed = seed * 7919;
  return c;
}

TEST_P(FuzzConfig, RunsCleanWithInvariantsIntact) {
  const Config c = random_config(GetParam());
  Simulation sim(c);
  sim.prime();
  const double horizon = c.sim_hours * 3600.0;
  double t = 0.0;
  while (t < horizon) {
    t += horizon / 6.0;
    sim.simulator().run_until(t);
    ASSERT_TRUE(sim.overlay().consistent());
    for (net::NodeId u = 0; u < c.num_users; ++u) {
      ASSERT_LE(sim.overlay().lists(u).out().size(), c.max_neighbors);
      if (!sim.online(u)) {
        ASSERT_TRUE(sim.overlay().lists(u).out().empty());
      }
      for (net::NodeId v : sim.overlay().lists(u).out()) {
        ASSERT_NE(v, u);
        ASSERT_TRUE(sim.online(v));
      }
    }
  }
}

TEST_P(FuzzConfig, FullRunAccountingIsSane) {
  const Config c = random_config(GetParam() + 1000);
  const auto r = Simulation(c).run();
  EXPECT_LE(r.total_hits(), r.queries_issued + r.local_hits + 1);
  EXPECT_GE(r.total_results(), r.total_hits());
  if (!c.dynamic) {
    EXPECT_EQ(r.reconfigurations, 0u);
    EXPECT_EQ(r.evictions, 0u);
  }
  if (r.first_result_delay_s.count() > 0) {
    // Local indices answer from the initiator's own index at delay 0, so
    // the lower bound is >= 0 rather than strictly positive.
    EXPECT_GE(r.first_result_delay_s.min(), 0.0);
    EXPECT_LE(r.first_result_delay_s.max(), c.query_timeout_s);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzConfig,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace dsf::gnutella
