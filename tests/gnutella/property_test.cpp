#include <gtest/gtest.h>

#include "gnutella/simulation.h"

namespace dsf::gnutella {
namespace {

/// End-to-end property sweep: for every combination of hop limit,
/// reconfiguration threshold and search strategy, a full (small) run must
/// satisfy the accounting and structural invariants of the system.
class SimulationProperty
    : public ::testing::TestWithParam<
          std::tuple<int, std::uint32_t, SearchStrategy>> {
 protected:
  Config make_config() const {
    Config c;
    c.num_users = 120;
    c.catalog.num_songs = 6000;
    c.catalog.num_categories = 12;
    c.library.mean_size = 60.0;
    c.library.stddev_size = 10.0;
    c.library.min_size = 10.0;
    c.library.max_size = 120.0;
    c.session.mean_interquery_s = 150.0;
    c.sim_hours = 3.0;
    c.warmup_hours = 0.5;
    c.max_hops = std::get<0>(GetParam());
    c.reconfig_threshold = std::get<1>(GetParam());
    c.search_strategy = std::get<2>(GetParam());
    c.seed = 5150 + static_cast<std::uint64_t>(c.max_hops) * 131 +
             c.reconfig_threshold;
    return c;
  }
};

TEST_P(SimulationProperty, AccountingInvariantsHold) {
  const Config c = make_config();
  const auto r = Simulation(c).run();

  EXPECT_GT(r.queries_issued, 0u);
  EXPECT_LE(r.total_hits(), r.queries_issued);
  EXPECT_GE(r.total_results(), r.total_hits());
  if (r.total_hits() > 0) {
    EXPECT_GT(r.first_result_delay_s.count(), 0u);
    EXPECT_GE(r.first_result_delay_s.min(), 0.0);
    EXPECT_LE(r.first_result_delay_s.max(), c.query_timeout_s);
  }
  // Replies are one per result (for plain flood both counted post- and
  // pre-warmup series must agree).
  if (c.search_strategy == SearchStrategy::kFlood) {
    EXPECT_EQ(r.traffic.total(net::MessageType::kQueryReply),
              r.results.total());
  }
  // Eviction notifications never exceed invitations + reconfigurations
  // (each reconfiguration exchange evicts at most once on each side).
  EXPECT_LE(r.evictions,
            r.traffic.total(net::MessageType::kInvitation) +
                r.reconfigurations);
}

TEST_P(SimulationProperty, OverlayConsistentThroughoutRun) {
  const Config c = make_config();
  Simulation sim(c);
  sim.prime();
  double t = 0.0;
  while (t < c.sim_hours * 3600.0) {
    t += 900.0;
    sim.simulator().run_until(t);
    ASSERT_TRUE(sim.overlay().consistent()) << "inconsistent at t=" << t;
    for (net::NodeId u = 0; u < c.num_users; ++u) {
      if (sim.online(u)) continue;
      ASSERT_TRUE(sim.overlay().lists(u).out().empty())
          << "offline node " << u << " linked at t=" << t;
    }
  }
}

TEST_P(SimulationProperty, DeterministicAcrossRuns) {
  const Config c = make_config();
  const auto a = Simulation(c).run();
  const auto b = Simulation(c).run();
  EXPECT_EQ(a.total_hits(), b.total_hits());
  EXPECT_EQ(a.total_messages(), b.total_messages());
  EXPECT_EQ(a.reconfigurations, b.reconfigurations);
  EXPECT_EQ(a.evictions, b.evictions);
}

std::string param_name(
    const ::testing::TestParamInfo<std::tuple<int, std::uint32_t,
                                              SearchStrategy>>& info) {
  static constexpr const char* kStrategyNames[] = {"Flood", "IterDeep",
                                                   "Directed", "LocalIdx"};
  return "hops" + std::to_string(std::get<0>(info.param)) + "_T" +
         std::to_string(std::get<1>(info.param)) + "_" +
         kStrategyNames[static_cast<int>(std::get<2>(info.param))];
}

INSTANTIATE_TEST_SUITE_P(
    HopsThresholdStrategy, SimulationProperty,
    ::testing::Combine(
        ::testing::Values(1, 2, 4),                 // max_hops
        ::testing::Values<std::uint32_t>(1, 2, 8),  // reconfig threshold
        ::testing::Values(SearchStrategy::kFlood,
                          SearchStrategy::kIterativeDeepening,
                          SearchStrategy::kDirectedBft,
                          SearchStrategy::kLocalIndices)),
    param_name);

}  // namespace
}  // namespace dsf::gnutella
