#include "gnutella/simulation.h"

#include <gtest/gtest.h>

namespace dsf::gnutella {
namespace {

/// Small, fast configuration for unit-level checks.
Config small_config() {
  Config c;
  c.num_users = 100;
  c.catalog.num_songs = 5000;
  c.catalog.num_categories = 10;
  c.library.mean_size = 50.0;
  c.library.stddev_size = 10.0;
  c.library.min_size = 5.0;
  c.library.max_size = 100.0;
  c.session.mean_interquery_s = 120.0;
  c.sim_hours = 2.0;
  c.warmup_hours = 0.5;
  c.seed = 1234;
  return c;
}

TEST(GnutellaSim, PrimePutsHalfPopulationOnline) {
  Config c = small_config();
  c.num_users = 1000;
  Simulation sim(c);
  sim.prime();
  EXPECT_NEAR(static_cast<double>(sim.online_count()), 500.0, 70.0);
}

TEST(GnutellaSim, InitialOverlayIsConsistentAndBounded) {
  Simulation sim(small_config());
  sim.prime();
  EXPECT_TRUE(sim.overlay().consistent());
  for (net::NodeId u = 0; u < sim.config().num_users; ++u) {
    EXPECT_LE(sim.overlay().lists(u).out().size(), 4u);
    if (!sim.online(u)) {
      EXPECT_TRUE(sim.overlay().lists(u).out().empty());
    }
  }
}

TEST(GnutellaSim, OfflineNodesNeverInOverlay) {
  Simulation sim(small_config());
  sim.prime();
  // Step through a chunk of events and re-check the invariant repeatedly.
  for (int burst = 0; burst < 20; ++burst) {
    for (int i = 0; i < 200 && sim.simulator().step(); ++i) {
    }
    for (net::NodeId u = 0; u < sim.config().num_users; ++u) {
      if (!sim.online(u)) {
        EXPECT_TRUE(sim.overlay().lists(u).out().empty())
            << "offline node " << u << " still linked";
      }
      for (net::NodeId v : sim.overlay().lists(u).out())
        EXPECT_TRUE(sim.online(v)) << "link to offline node " << v;
    }
    EXPECT_TRUE(sim.overlay().consistent());
  }
}

TEST(GnutellaSim, RunProducesActivity) {
  const auto r = Simulation(small_config()).run();
  EXPECT_GT(r.queries_issued, 0u);
  EXPECT_GT(r.total_messages(), 0u);
  EXPECT_GT(r.traffic.total(net::MessageType::kQuery), 0u);
}

TEST(GnutellaSim, DeterministicForSameSeed) {
  const auto a = Simulation(small_config()).run();
  const auto b = Simulation(small_config()).run();
  EXPECT_EQ(a.queries_issued, b.queries_issued);
  EXPECT_EQ(a.total_hits(), b.total_hits());
  EXPECT_EQ(a.total_messages(), b.total_messages());
  EXPECT_EQ(a.reconfigurations, b.reconfigurations);
  EXPECT_DOUBLE_EQ(a.first_result_delay_s.mean(),
                   b.first_result_delay_s.mean());
}

TEST(GnutellaSim, DifferentSeedsDiffer) {
  Config c1 = small_config();
  Config c2 = small_config();
  c2.seed = 999;
  const auto a = Simulation(c1).run();
  const auto b = Simulation(c2).run();
  EXPECT_NE(a.total_messages(), b.total_messages());
}

TEST(GnutellaSim, StaticSchemeNeverReconfigures) {
  const auto r = Simulation(small_config().as_static()).run();
  EXPECT_EQ(r.reconfigurations, 0u);
  EXPECT_EQ(r.evictions, 0u);
  EXPECT_EQ(r.invitations_accepted, 0u);
  EXPECT_EQ(r.traffic.total(net::MessageType::kInvitation), 0u);
  EXPECT_EQ(r.traffic.total(net::MessageType::kEviction), 0u);
}

TEST(GnutellaSim, DynamicSchemeReconfigures) {
  const auto r = Simulation(small_config()).run();
  EXPECT_GT(r.reconfigurations, 0u);
}

TEST(GnutellaSim, HitsNeverExceedQueries) {
  const auto r = Simulation(small_config()).run();
  EXPECT_LE(r.total_hits(), r.queries_issued);
  EXPECT_LE(r.total_hits(), r.total_results());
}

TEST(GnutellaSim, ReplyCountMatchesResults) {
  const auto r = Simulation(small_config()).run();
  // Every result is exactly one direct reply (whole horizon, both metrics).
  EXPECT_EQ(r.traffic.total(net::MessageType::kQueryReply),
            r.results.total());
}

TEST(GnutellaSim, DelayMetricWithinPhysicalBounds) {
  Config c = small_config();
  c.max_hops = 2;
  const auto r = Simulation(c).run();
  if (r.first_result_delay_s.count() > 0) {
    // Min possible: LAN floor both ways; max: 2 modem hops + reply.
    EXPECT_GE(r.first_result_delay_s.min(), 2 * 0.010);
    EXPECT_LE(r.first_result_delay_s.max(), 3 * 0.600);
  }
}

TEST(GnutellaSim, DelayHistogramTracksSummary) {
  const auto r = Simulation(small_config()).run();
  ASSERT_GT(r.first_result_delay_s.count(), 0u);
  EXPECT_EQ(r.first_result_delay_hist.count(),
            r.first_result_delay_s.count());
  // The median must sit between the observed extremes, and p95 at or
  // above the mean for this right-skewed metric.
  const double median = r.first_result_delay_hist.quantile(0.5);
  EXPECT_GE(median, r.first_result_delay_s.min() - 0.01);
  EXPECT_LE(median, r.first_result_delay_s.max() + 0.01);
  EXPECT_GE(r.first_result_delay_hist.quantile(0.95),
            median - 0.01);
  EXPECT_EQ(r.first_result_delay_hist.overflow(), 0u);  // range covers all
}

TEST(GnutellaSim, HigherHopLimitFindsMore) {
  Config c2 = small_config();
  c2.max_hops = 1;
  Config c4 = small_config();
  c4.max_hops = 4;
  const auto r1 = Simulation(c2).run();
  const auto r4 = Simulation(c4).run();
  EXPECT_GT(r4.total_hits(), r1.total_hits());
  EXPECT_GT(r4.total_messages(), r1.total_messages());
}

TEST(GnutellaSim, StatsPersistenceTogglable) {
  Config keep = small_config();
  Config drop = small_config();
  drop.persist_stats_across_sessions = false;
  const auto a = Simulation(keep).run();
  const auto b = Simulation(drop).run();
  // Both must run; the toggle changes the trajectory.
  EXPECT_NE(a.total_messages(), b.total_messages());
}

TEST(GnutellaSim, BenefitKindSelectable) {
  Config c = small_config();
  c.benefit = BenefitKind::kUnit;
  const auto r = Simulation(c).run();
  EXPECT_GT(r.queries_issued, 0u);
}

TEST(GnutellaSim, SummaryGatedInvitationsRun) {
  Config c = small_config();
  c.invitation_policy = core::InvitationPolicy::kSummaryGated;
  const auto r = Simulation(c).run();
  EXPECT_GT(r.reconfigurations, 0u);
  EXPECT_GT(r.queries_issued, 0u);
  // Gating may reject invitations, so acceptances are bounded by attempts.
  EXPECT_LE(r.invitations_accepted,
            r.traffic.total(net::MessageType::kInvitation));
}

TEST(GnutellaSim, BenefitGatedAcceptsFewerThanAlwaysAccept) {
  Config always = small_config();
  Config gated = small_config();
  gated.invitation_policy = core::InvitationPolicy::kBenefitGated;
  const auto ra = Simulation(always).run();
  const auto rg = Simulation(gated).run();
  const double accept_rate_a =
      static_cast<double>(ra.invitations_accepted) /
      static_cast<double>(ra.traffic.total(net::MessageType::kInvitation));
  const double accept_rate_g =
      static_cast<double>(rg.invitations_accepted) /
      static_cast<double>(rg.traffic.total(net::MessageType::kInvitation));
  EXPECT_LT(accept_rate_g, accept_rate_a);
}

TEST(GnutellaSim, TrialPeriodEvaluatesRelationships) {
  Config c = small_config();
  c.invitation_policy = core::InvitationPolicy::kTrialPeriod;
  c.trial_period_s = 600.0;
  const auto r = Simulation(c).run();
  EXPECT_GT(r.invitations_accepted, 0u);
  // Every accepted invitation eventually resolves to kept/rejected unless
  // the link died first (log-off or eviction in the meantime).
  EXPECT_LE(r.trials_kept + r.trials_rejected, r.invitations_accepted);
  EXPECT_GT(r.trials_kept + r.trials_rejected, 0u);
}

TEST(GnutellaSim, TrialPeriodTerminatesSomeRelationships) {
  Config c = small_config();
  c.invitation_policy = core::InvitationPolicy::kTrialPeriod;
  c.trial_period_s = 300.0;  // short trial: little time to prove benefit
  const auto r = Simulation(c).run();
  EXPECT_GT(r.trials_rejected, 0u);
}

TEST(GnutellaSim, CascadeDampingReducesControlChurn) {
  Config damped = small_config();
  Config undamped = small_config();
  undamped.damp_cascades = false;
  const auto rd = Simulation(damped).run();
  const auto ru = Simulation(undamped).run();
  // Without the §4.1 counter reset, nodes that just accepted an invitation
  // reconfigure again almost immediately — more reconfigurations and more
  // eviction churn for the same workload.
  EXPECT_LT(rd.reconfigurations, ru.reconfigurations);
  EXPECT_LE(rd.evictions, ru.evictions);
}

TEST(GnutellaSim, AlwaysAcceptHasNoTrials) {
  const auto r = Simulation(small_config()).run();
  EXPECT_EQ(r.trials_kept, 0u);
  EXPECT_EQ(r.trials_rejected, 0u);
}

TEST(GnutellaSim, SearchStrategiesAllRun) {
  for (const auto strategy :
       {SearchStrategy::kFlood, SearchStrategy::kIterativeDeepening,
        SearchStrategy::kDirectedBft, SearchStrategy::kLocalIndices}) {
    Config c = small_config();
    c.search_strategy = strategy;
    const auto r = Simulation(c).run();
    EXPECT_GT(r.queries_issued, 0u);
  }
}

TEST(GnutellaSim, DirectedBftSendsFewerMessages) {
  Config flood = small_config();
  Config directed = small_config();
  directed.search_strategy = SearchStrategy::kDirectedBft;
  directed.directed_fanout = 2;
  const auto rf = Simulation(flood).run();
  const auto rd = Simulation(directed).run();
  EXPECT_LT(rd.total_messages(), rf.total_messages());
}

TEST(GnutellaSim, LocalIndicesFindMoreWithinSameHops) {
  Config flood = small_config();
  Config indexed = small_config();
  indexed.search_strategy = SearchStrategy::kLocalIndices;
  const auto rf = Simulation(flood).run();
  const auto ri = Simulation(indexed).run();
  EXPECT_GT(ri.total_hits(), rf.total_hits());
  // Index maintenance shows up as control traffic.
  EXPECT_GT(ri.traffic.total(net::MessageType::kExploreReply), 0u);
}

TEST(GnutellaSim, LibraryGrowthRaisesHitRate) {
  Config fixed = small_config();
  Config growing = small_config();
  growing.library_growth = true;
  const auto rf = Simulation(fixed).run();
  const auto rg = Simulation(growing).run();
  EXPECT_GE(rg.total_hits(), rf.total_hits());
}

TEST(GnutellaSim, ParetoChurnRuns) {
  Config c = small_config();
  c.session.duration_kind = workload::DurationKind::kPareto;
  const auto r = Simulation(c).run();
  EXPECT_GT(r.queries_issued, 0u);
}

TEST(GnutellaSim, ExcludeOwnedSongsReducesQueryVolume) {
  Config raw = small_config();
  Config conditioned = small_config();
  conditioned.exclude_owned_songs = true;
  const auto rr = Simulation(raw).run();
  const auto rc = Simulation(conditioned).run();
  // Conditioned queries skip nothing network-wise (the rejection loop
  // redraws), but the distribution shifts to the tail, lowering hits.
  EXPECT_LT(static_cast<double>(rc.total_hits()) / rc.queries_issued,
            static_cast<double>(rr.total_hits()) / rr.queries_issued);
}

TEST(GnutellaSim, ProbeSamplesCollected) {
  Config c = small_config();
  c.probe_period_s = 1800.0;
  const auto r = Simulation(c).run();
  // 2 h horizon / 30 min period = ~4 samples (the one at the horizon may
  // or may not fire depending on event ordering).
  EXPECT_GE(r.probes.size(), 3u);
  for (const auto& p : r.probes) {
    EXPECT_GT(p.online, 0u);
    EXPECT_GE(p.mean_degree, 0.0);
    EXPECT_LE(p.mean_degree, 4.0);
    EXPECT_GE(p.degree_gini, 0.0);
    EXPECT_LE(p.degree_gini, 1.0);
    EXPECT_GE(p.same_favorite, 0.0);
    EXPECT_LE(p.same_favorite, 1.0);
  }
}

TEST(GnutellaSim, MakeBenefitCoversAllKinds) {
  EXPECT_EQ(make_benefit(BenefitKind::kBandwidthOverResults)->name(),
            "bandwidth/results");
  EXPECT_EQ(make_benefit(BenefitKind::kUnit)->name(), "unit");
  EXPECT_EQ(make_benefit(BenefitKind::kInverseLatency)->name(), "1/latency");
}

}  // namespace
}  // namespace dsf::gnutella
