#include <gtest/gtest.h>

#include "gnutella/simulation.h"

namespace dsf::gnutella {
namespace {

/// Medium-scale integration runs: a scaled-down version of the paper's
/// setting (enough users and hours for adaptation to show, small enough to
/// stay fast in CI).  These check the *shape* of the paper's findings.
Config medium_config() {
  Config c;
  c.num_users = 400;
  c.catalog.num_songs = 20000;
  c.catalog.num_categories = 20;
  c.library.mean_size = 100.0;
  c.library.stddev_size = 20.0;
  c.library.min_size = 10.0;
  c.library.max_size = 200.0;
  c.session.mean_interquery_s = 180.0;
  c.max_hops = 2;
  c.sim_hours = 12.0;
  c.warmup_hours = 2.0;
  c.seed = 77;
  return c;
}

class GnutellaIntegration : public ::testing::Test {
 protected:
  static RunResult run_dynamic() {
    static const RunResult r = Simulation(medium_config()).run();
    return r;
  }
  static RunResult run_static() {
    static const RunResult r = Simulation(medium_config().as_static()).run();
    return r;
  }
};

TEST_F(GnutellaIntegration, DynamicProducesMoreHitsThanStatic) {
  // Fig 1(a)'s headline: dynamic reconfiguration satisfies more queries.
  EXPECT_GT(run_dynamic().total_hits(), run_static().total_hits());
}

TEST_F(GnutellaIntegration, DynamicReducesMessageOverhead) {
  // Fig 1(b): content clustering satisfies queries earlier, reducing
  // propagation.
  EXPECT_LT(run_dynamic().total_messages(), run_static().total_messages());
}

TEST_F(GnutellaIntegration, DynamicLowersFirstResultDelay) {
  // Fig 3(a): results come from nearby neighbors after adaptation.
  EXPECT_LT(run_dynamic().first_result_delay_s.mean(),
            run_static().first_result_delay_s.mean());
}

TEST_F(GnutellaIntegration, DynamicImprovesOverTime) {
  // The hit rate of the dynamic scheme should be higher in the second half
  // of the run than in the first (learning), while static stays flat-ish.
  const auto r = run_dynamic();
  const std::size_t mid = (r.warmup_bucket + r.last_bucket) / 2;
  const auto first_half = r.hits.sum(r.warmup_bucket, mid);
  const auto second_half = r.hits.sum(mid + 1, r.last_bucket);
  // Allow noise: second half must reach at least 95% of the first.
  EXPECT_GT(static_cast<double>(second_half),
            0.95 * static_cast<double>(first_half));
}

TEST_F(GnutellaIntegration, NeighborhoodsClusterByTaste) {
  // After adaptation, a node's neighbors share its favourite category far
  // more often than random assignment (expected share under random pairing
  // is ~the category popularity; we test against the population baseline).
  Config c = medium_config();
  Simulation sim(c);
  sim.prime();
  sim.simulator().run_until(c.sim_hours * 3600.0);

  std::size_t same = 0, pairs = 0;
  std::vector<std::size_t> category_count(c.catalog.num_categories, 0);
  for (net::NodeId u = 0; u < c.num_users; ++u)
    ++category_count[sim.profile(u).favorite];
  double random_baseline = 0.0;  // P(two random users share favourite)
  for (const auto count : category_count) {
    const double share = static_cast<double>(count) / c.num_users;
    random_baseline += share * share;
  }
  for (net::NodeId u = 0; u < c.num_users; ++u) {
    for (net::NodeId v : sim.overlay().lists(u).out()) {
      ++pairs;
      if (sim.profile(u).favorite == sim.profile(v).favorite) ++same;
    }
  }
  ASSERT_GT(pairs, 0u);
  const double observed = static_cast<double>(same) / pairs;
  EXPECT_GT(observed, random_baseline * 1.3)
      << "observed same-category share " << observed << " vs baseline "
      << random_baseline;
}

TEST_F(GnutellaIntegration, ThresholdOneIsWorseThanTwo) {
  // Fig 3(b): T=1 latches onto the first responder and underperforms T=2.
  Config t1 = medium_config();
  t1.reconfig_threshold = 1;
  Config t2 = medium_config();
  t2.reconfig_threshold = 2;
  const auto r1 = Simulation(t1).run();
  const auto r2 = Simulation(t2).run();
  EXPECT_LT(r1.total_hits(), (r2.total_hits() * 11) / 10);
}

TEST_F(GnutellaIntegration, HugeThresholdApproachesStatic) {
  // Fig 3(b)'s right edge: with T enormous, reconfiguration (other than
  // log-off-triggered) never fires and results drift toward static.
  Config t = medium_config();
  t.reconfig_threshold = 100000;
  const auto rt = Simulation(t).run();
  const auto rs = run_static();
  const double ratio = static_cast<double>(rt.total_hits()) /
                       static_cast<double>(rs.total_hits());
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.45);
}

TEST_F(GnutellaIntegration, OverlayStaysConsistentAfterFullRun) {
  Config c = medium_config();
  Simulation sim(c);
  sim.prime();
  sim.simulator().run_until(c.sim_hours * 3600.0);
  EXPECT_TRUE(sim.overlay().consistent());
}

}  // namespace
}  // namespace dsf::gnutella
