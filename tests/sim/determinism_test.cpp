// Cross-sim determinism regression: every scenario simulator, run twice
// with the same seed, must produce bit-identical metrics; and a golden-seed
// smoke test pins each simulator's output at a fixed configuration so any
// behavioral drift in the shared engine (RNG lane order, event ordering,
// bootstrap draws) fails loudly instead of silently shifting figures.
//
// The golden values below were captured from the pre-refactor hand-rolled
// simulators at these exact configurations; the ported engine-based
// simulators must replay them. Integer counters are compared exactly;
// double aggregates with a tight relative tolerance (libm/FMA differences
// across compilers can perturb the last bits of a mean).
#include <gtest/gtest.h>

#include "sim_fingerprints.h"

namespace dsf {
namespace {

using simtest::fingerprint;
using simtest::golden_diglib_config;
using simtest::golden_gnutella_config;
using simtest::golden_olap_config;
using simtest::golden_webcache_config;

constexpr double kRelTol = 1e-9;

void expect_near_rel(double expected, double actual, const char* what) {
  EXPECT_NEAR(actual, expected, std::abs(expected) * kRelTol) << what;
}

// --- run-twice determinism ----------------------------------------------

TEST(CrossSimDeterminism, GnutellaSameSeedSameFingerprint) {
  const auto c = golden_gnutella_config();
  const auto a = fingerprint(gnutella::Simulation(c).run());
  const auto b = fingerprint(gnutella::Simulation(c).run());
  EXPECT_EQ(a.value(), b.value());
}

TEST(CrossSimDeterminism, DigLibSameSeedSameFingerprint) {
  const auto c = golden_diglib_config();
  const auto a = fingerprint(diglib::DigLibSim(c).run());
  const auto b = fingerprint(diglib::DigLibSim(c).run());
  EXPECT_EQ(a.value(), b.value());
}

TEST(CrossSimDeterminism, OlapSameSeedSameFingerprint) {
  const auto c = golden_olap_config();
  const auto a = fingerprint(olap::OlapSim(c).run());
  const auto b = fingerprint(olap::OlapSim(c).run());
  EXPECT_EQ(a.value(), b.value());
}

TEST(CrossSimDeterminism, WebCacheSameSeedSameFingerprint) {
  const auto c = golden_webcache_config();
  const auto a = fingerprint(webcache::WebCacheSim(c).run());
  const auto b = fingerprint(webcache::WebCacheSim(c).run());
  EXPECT_EQ(a.value(), b.value());
}

TEST(CrossSimDeterminism, DifferentSeedsDiverge) {
  auto c = golden_webcache_config();
  const auto a = fingerprint(webcache::WebCacheSim(c).run());
  c.seed += 1;
  const auto b = fingerprint(webcache::WebCacheSim(c).run());
  EXPECT_NE(a.value(), b.value());
}

// --- golden-seed smoke tests --------------------------------------------

TEST(GoldenSeed, Gnutella) {
  const auto r = gnutella::Simulation(golden_gnutella_config()).run();
  EXPECT_EQ(r.queries_issued, 6817u);
  EXPECT_EQ(r.local_hits, 0u);
  EXPECT_EQ(r.total_hits(), 3176u);
  EXPECT_EQ(r.total_messages(), 90427u);
  EXPECT_EQ(r.total_results(), 5590u);
  EXPECT_EQ(r.reconfigurations, 4347u);
  EXPECT_EQ(r.invitations_accepted, 2337u);
  EXPECT_EQ(r.evictions, 3438u);
  EXPECT_EQ(r.traffic.total(), 124731u);
  EXPECT_EQ(r.traffic.total(net::MessageType::kQuery), 109787u);
  EXPECT_EQ(r.traffic.total(net::MessageType::kEviction), 3438u);
  expect_near_rel(0.49646308815258683, r.first_result_delay_s.mean(),
                  "first_result_delay_mean");
  expect_near_rel(11.980636643684898, r.nodes_reached.mean(),
                  "nodes_reached_mean");
}

TEST(GoldenSeed, DigLib) {
  const auto r = diglib::DigLibSim(golden_diglib_config()).run();
  EXPECT_EQ(r.queries, 9089u);
  EXPECT_EQ(r.satisfied, 5911u);
  EXPECT_EQ(r.copies_found, 18540u);
  EXPECT_EQ(r.copies_available, 55594u);
  EXPECT_EQ(r.traffic.total(), 155532u);
  expect_near_rel(11.526570579821733, r.messages_per_query.mean(),
                  "messages_per_query_mean");
  expect_near_rel(0.51970339689194456, r.first_result_delay_s.mean(),
                  "first_result_delay_mean");
}

TEST(GoldenSeed, Olap) {
  const auto r = olap::OlapSim(golden_olap_config()).run();
  EXPECT_EQ(r.queries, 6448u);
  EXPECT_EQ(r.chunks_requested, 51584u);
  EXPECT_EQ(r.chunks_local, 18697u);
  EXPECT_EQ(r.chunks_from_peers, 12538u);
  EXPECT_EQ(r.chunks_from_warehouse, 20349u);
  EXPECT_EQ(r.traffic.total(), 442556u);
  expect_near_rel(7.2040078682321536, r.response_time_s.mean(),
                  "response_time_mean");
}

TEST(GoldenSeed, WebCache) {
  const auto r = webcache::WebCacheSim(golden_webcache_config()).run();
  EXPECT_EQ(r.requests, 86306u);
  EXPECT_EQ(r.local_hits, 32587u);
  EXPECT_EQ(r.neighbor_hits, 10336u);
  EXPECT_EQ(r.origin_fetches, 43383u);
  EXPECT_EQ(r.traffic.total(), 451288u);
  expect_near_rel(0.55078769985489284, r.latency_s.mean(), "latency_mean");
}

}  // namespace
}  // namespace dsf
