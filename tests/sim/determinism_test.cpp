// Cross-sim determinism regression: every scenario simulator, run twice
// with the same seed, must produce bit-identical metrics; and a golden-seed
// smoke test pins each simulator's output at a fixed configuration so any
// behavioral drift in the shared engine (RNG lane order, event ordering,
// bootstrap draws) fails loudly instead of silently shifting figures.
//
// The golden values below were captured from the pre-refactor hand-rolled
// simulators at these exact configurations; the ported engine-based
// simulators must replay them. Integer counters are compared exactly;
// double aggregates with a tight relative tolerance (libm/FMA differences
// across compilers can perturb the last bits of a mean).
#include <gtest/gtest.h>

#include "diglib/diglib_sim.h"
#include "gnutella/simulation.h"
#include "metrics/digest.h"
#include "olap/olap_sim.h"
#include "webcache/webcache_sim.h"

namespace dsf {
namespace {

constexpr double kRelTol = 1e-9;

void expect_near_rel(double expected, double actual, const char* what) {
  EXPECT_NEAR(actual, expected, std::abs(expected) * kRelTol) << what;
}

gnutella::Config golden_gnutella_config() {
  gnutella::Config c;
  c.num_users = 250;
  c.catalog.num_songs = 25'000;
  c.sim_hours = 6.0;
  c.warmup_hours = 1.0;
  c.max_hops = 2;
  c.seed = 20260805;
  return c;
}

diglib::DigLibConfig golden_diglib_config() {
  diglib::DigLibConfig c;
  c.num_repositories = 32;
  c.num_docs = 8'000;
  c.num_topics = 8;
  c.holdings = 400;
  c.sim_hours = 0.5;
  c.warmup_hours = 0.1;
  c.seed = 99;
  return c;
}

olap::OlapConfig golden_olap_config() {
  olap::OlapConfig c;
  c.num_peers = 24;
  c.num_chunks = 12'000;
  c.num_regions = 6;
  c.cache_capacity = 400;
  c.sim_hours = 1.0;
  c.warmup_hours = 0.25;
  c.seed = 5;
  return c;
}

webcache::WebCacheConfig golden_webcache_config() {
  webcache::WebCacheConfig c;
  c.num_proxies = 32;
  c.num_pages = 20'000;
  c.cache_capacity = 500;
  c.sim_hours = 1.0;
  c.warmup_hours = 0.25;
  c.seed = 13;
  return c;
}

// --- per-scenario metric fingerprints (exact, bit-level) -----------------

metrics::Fingerprint fingerprint(const gnutella::RunResult& r) {
  metrics::Fingerprint fp;
  fp.add(r.queries_issued)
      .add(r.local_hits)
      .add(r.total_hits())
      .add(r.total_messages())
      .add(r.total_results())
      .add(r.reconfigurations)
      .add(r.invitations_accepted)
      .add(r.evictions)
      .add(r.traffic.total())
      .add(r.first_result_delay_s.mean())
      .add(r.nodes_reached.mean());
  return fp;
}

metrics::Fingerprint fingerprint(const diglib::DigLibResult& r) {
  metrics::Fingerprint fp;
  fp.add(r.queries)
      .add(r.satisfied)
      .add(r.copies_found)
      .add(r.copies_available)
      .add(r.traffic.total())
      .add(r.messages_per_query.mean())
      .add(r.first_result_delay_s.mean());
  return fp;
}

metrics::Fingerprint fingerprint(const olap::OlapResult& r) {
  metrics::Fingerprint fp;
  fp.add(r.queries)
      .add(r.chunks_requested)
      .add(r.chunks_local)
      .add(r.chunks_from_peers)
      .add(r.chunks_from_warehouse)
      .add(r.traffic.total())
      .add(r.response_time_s.mean());
  return fp;
}

metrics::Fingerprint fingerprint(const webcache::WebCacheResult& r) {
  metrics::Fingerprint fp;
  fp.add(r.requests)
      .add(r.local_hits)
      .add(r.neighbor_hits)
      .add(r.origin_fetches)
      .add(r.traffic.total())
      .add(r.latency_s.mean());
  return fp;
}

// --- run-twice determinism ----------------------------------------------

TEST(CrossSimDeterminism, GnutellaSameSeedSameFingerprint) {
  const auto c = golden_gnutella_config();
  const auto a = fingerprint(gnutella::Simulation(c).run());
  const auto b = fingerprint(gnutella::Simulation(c).run());
  EXPECT_EQ(a.value(), b.value());
}

TEST(CrossSimDeterminism, DigLibSameSeedSameFingerprint) {
  const auto c = golden_diglib_config();
  const auto a = fingerprint(diglib::DigLibSim(c).run());
  const auto b = fingerprint(diglib::DigLibSim(c).run());
  EXPECT_EQ(a.value(), b.value());
}

TEST(CrossSimDeterminism, OlapSameSeedSameFingerprint) {
  const auto c = golden_olap_config();
  const auto a = fingerprint(olap::OlapSim(c).run());
  const auto b = fingerprint(olap::OlapSim(c).run());
  EXPECT_EQ(a.value(), b.value());
}

TEST(CrossSimDeterminism, WebCacheSameSeedSameFingerprint) {
  const auto c = golden_webcache_config();
  const auto a = fingerprint(webcache::WebCacheSim(c).run());
  const auto b = fingerprint(webcache::WebCacheSim(c).run());
  EXPECT_EQ(a.value(), b.value());
}

TEST(CrossSimDeterminism, DifferentSeedsDiverge) {
  auto c = golden_webcache_config();
  const auto a = fingerprint(webcache::WebCacheSim(c).run());
  c.seed += 1;
  const auto b = fingerprint(webcache::WebCacheSim(c).run());
  EXPECT_NE(a.value(), b.value());
}

// --- golden-seed smoke tests --------------------------------------------

TEST(GoldenSeed, Gnutella) {
  const auto r = gnutella::Simulation(golden_gnutella_config()).run();
  EXPECT_EQ(r.queries_issued, 6817u);
  EXPECT_EQ(r.local_hits, 0u);
  EXPECT_EQ(r.total_hits(), 3176u);
  EXPECT_EQ(r.total_messages(), 90427u);
  EXPECT_EQ(r.total_results(), 5590u);
  EXPECT_EQ(r.reconfigurations, 4347u);
  EXPECT_EQ(r.invitations_accepted, 2337u);
  EXPECT_EQ(r.evictions, 3438u);
  EXPECT_EQ(r.traffic.total(), 124731u);
  EXPECT_EQ(r.traffic.total(net::MessageType::kQuery), 109787u);
  EXPECT_EQ(r.traffic.total(net::MessageType::kEviction), 3438u);
  expect_near_rel(0.49646308815258683, r.first_result_delay_s.mean(),
                  "first_result_delay_mean");
  expect_near_rel(11.980636643684898, r.nodes_reached.mean(),
                  "nodes_reached_mean");
}

TEST(GoldenSeed, DigLib) {
  const auto r = diglib::DigLibSim(golden_diglib_config()).run();
  EXPECT_EQ(r.queries, 9089u);
  EXPECT_EQ(r.satisfied, 5911u);
  EXPECT_EQ(r.copies_found, 18540u);
  EXPECT_EQ(r.copies_available, 55594u);
  EXPECT_EQ(r.traffic.total(), 155532u);
  expect_near_rel(11.526570579821733, r.messages_per_query.mean(),
                  "messages_per_query_mean");
  expect_near_rel(0.51970339689194456, r.first_result_delay_s.mean(),
                  "first_result_delay_mean");
}

TEST(GoldenSeed, Olap) {
  const auto r = olap::OlapSim(golden_olap_config()).run();
  EXPECT_EQ(r.queries, 6448u);
  EXPECT_EQ(r.chunks_requested, 51584u);
  EXPECT_EQ(r.chunks_local, 18697u);
  EXPECT_EQ(r.chunks_from_peers, 12538u);
  EXPECT_EQ(r.chunks_from_warehouse, 20349u);
  EXPECT_EQ(r.traffic.total(), 442556u);
  expect_near_rel(7.2040078682321536, r.response_time_s.mean(),
                  "response_time_mean");
}

TEST(GoldenSeed, WebCache) {
  const auto r = webcache::WebCacheSim(golden_webcache_config()).run();
  EXPECT_EQ(r.requests, 86306u);
  EXPECT_EQ(r.local_hits, 32587u);
  EXPECT_EQ(r.neighbor_hits, 10336u);
  EXPECT_EQ(r.origin_fetches, 43383u);
  EXPECT_EQ(r.traffic.total(), 451288u);
  expect_near_rel(0.55078769985489284, r.latency_s.mean(), "latency_mean");
}

}  // namespace
}  // namespace dsf
