// Ranked-query-plane battery, in three movements:
//
//   1. Byte-identity pins: the QuerySpec/SearchContext redesign routes
//      every simulator through the new dispatch, so each golden
//      configuration's metric fingerprint is pinned to the value captured
//      from the pre-redesign positional dispatch.  Any accounting drift
//      in the migration — an extra RNG draw, a reordered transmit, a
//      changed message count — moves the digest and fails loudly.
//
//   2. Top-k behavioral pins: FD-style ranked search must keep the
//      per-query satisfied verdict identical to the flood (it only
//      withholds last-hop forwards whose score bound cannot contribute)
//      while sending measurably less query traffic; the invariant
//      checker certifies every outcome against the spec (k bound, score
//      ordering) as the run goes.
//
//   3. LSH behavioral pins: banded bucket routing is deterministic,
//      prunes the gather phase hard, and every reported neighbor clears
//      the similarity threshold (checker-enforced per search).
//
// The golden configurations are shared with determinism_test.cpp via
// sim_fingerprints.h; runs here keep the suite in the PR fast tier
// (label: scheme).

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "sim/invariants.h"
#include "sim/policy.h"
#include "sim_fingerprints.h"

namespace dsf {
namespace {

using simtest::fingerprint;

// --- byte-identity pins (all four sims, default exact-match flood) -------

// Captured from the positional dispatch_search immediately before the
// QuerySpec/SearchContext migration, at the shared golden configurations.
constexpr std::uint64_t kGnutellaGolden = 0xb9277ed18171a2a5ULL;
constexpr std::uint64_t kDigLibGolden = 0xd7f24cb668478baeULL;
constexpr std::uint64_t kOlapGolden = 0xe88d3bb0331b9740ULL;
constexpr std::uint64_t kWebCacheGolden = 0x46a492fd4f3b797bULL;

TEST(SchemeGolden, GnutellaByteIdenticalAcrossRedesign) {
  // The checker rides along: exact-match outcomes must carry no scores
  // and no pruned subtrees (violation class "scheme"), and attaching the
  // checker must not perturb the digest.
  sim::InvariantChecker checker;
  gnutella::Simulation sim(simtest::golden_gnutella_config());
  sim.attach_checker(&checker);
  EXPECT_EQ(fingerprint(sim.run()).value(), kGnutellaGolden);
  checker.check_overlay(sim.overlay());
  checker.check_ledger(sim.ledger());
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(SchemeGolden, DigLibByteIdenticalAcrossRedesign) {
  sim::InvariantChecker checker;
  diglib::DigLibSim sim(simtest::golden_diglib_config());
  sim.attach_checker(&checker);
  EXPECT_EQ(fingerprint(sim.run()).value(), kDigLibGolden);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(SchemeGolden, OlapByteIdenticalAcrossRedesign) {
  EXPECT_EQ(fingerprint(olap::OlapSim(simtest::golden_olap_config()).run())
                .value(),
            kOlapGolden);
}

TEST(SchemeGolden, WebCacheByteIdenticalAcrossRedesign) {
  EXPECT_EQ(
      fingerprint(webcache::WebCacheSim(simtest::golden_webcache_config()).run())
          .value(),
      kWebCacheGolden);
}

// --- top-k behavioral pins ------------------------------------------------

/// Shortened golden gnutella configuration for the scheme comparisons:
/// static overlay so the flood and ranked arms see the exact same query
/// workload (four-lane RNG keeps the query lane independent of search
/// messaging), traded horizon for wall-clock.
gnutella::Config scheme_gnutella_config() {
  auto c = simtest::golden_gnutella_config().as_static();
  c.sim_hours = 1.0;
  c.warmup_hours = 0.25;
  return c;
}

TEST(TopKScheme, EqualHitVerdictsWithLessQueryTraffic) {
  const auto config = scheme_gnutella_config();
  const auto flood = gnutella::Simulation(config).run();

  auto ranked_config = config;
  ranked_config.search_strategy = sim::SearchStrategyKind::kTopK;
  ranked_config.top_k = 4;
  sim::InvariantChecker checker;
  gnutella::Simulation sim(ranked_config);
  sim.attach_checker(&checker);
  const auto ranked = sim.run();

  // Static overlay + independent query lane: both arms issue the same
  // queries, and ranked pruning never withholds a forward that could
  // change a query's has-a-result verdict.
  EXPECT_EQ(ranked.queries_issued, flood.queries_issued);
  EXPECT_EQ(ranked.total_hits(), flood.total_hits());
  // Results are truncated to the k best per query.
  EXPECT_LE(ranked.total_results(), flood.total_results());
  // The savings this scheme exists for: the last hop only chases scored
  // digests, so query traffic drops well below the flood's (the bench
  // certifies the >= 3x acceptance bar at full horizon).
  const auto flood_queries = flood.traffic.total(net::MessageType::kQuery);
  const auto ranked_queries = ranked.traffic.total(net::MessageType::kQuery);
  EXPECT_GE(static_cast<double>(flood_queries),
            2.0 * static_cast<double>(ranked_queries));

  checker.check_overlay(sim.overlay());
  checker.check_ledger(sim.ledger());
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GT(checker.events_seen(), 0u)
      << "checker attached but no traffic was traced";
}

TEST(TopKScheme, SameSeedSameFingerprint) {
  auto config = scheme_gnutella_config();
  config.search_strategy = sim::SearchStrategyKind::kTopK;
  config.top_k = 4;
  const auto a = fingerprint(gnutella::Simulation(config).run());
  const auto b = fingerprint(gnutella::Simulation(config).run());
  EXPECT_EQ(a.value(), b.value());
}

TEST(TopKScheme, DigLibRankedRetrievalHonorsTheKBound) {
  // diglib runs on the compact (single-lane) RNG layout, so a flood arm
  // is not draw-for-draw comparable; the pins here are the ranked
  // contract itself: ranked retrieval still satisfies queries, never
  // returns more than k copies per query (checker-certified per search),
  // and is deterministic.
  auto config = simtest::golden_diglib_config();
  config.search_strategy = sim::SearchStrategyKind::kTopK;
  config.top_k = 2;
  sim::InvariantChecker checker;
  diglib::DigLibSim sim(config);
  sim.attach_checker(&checker);
  const auto ranked = sim.run();

  EXPECT_GT(ranked.queries, 0u);
  EXPECT_GT(ranked.satisfied, 0u);
  EXPECT_LE(ranked.copies_found, config.top_k * ranked.queries);
  EXPECT_TRUE(checker.ok()) << checker.report();

  const auto again = fingerprint(diglib::DigLibSim(config).run());
  EXPECT_EQ(fingerprint(ranked).value(), again.value());
}

// --- LSH behavioral pins --------------------------------------------------

TEST(LshScheme, BucketRoutingPrunesAndStaysCertified) {
  const auto config = scheme_gnutella_config();
  const auto flood = gnutella::Simulation(config).run();

  auto lsh_config = config;
  lsh_config.search_strategy = sim::SearchStrategyKind::kLsh;
  lsh_config.sim_threshold = 0.2;
  sim::InvariantChecker checker;
  gnutella::Simulation sim(lsh_config);
  sim.attach_checker(&checker);
  const auto lsh = sim.run();

  // Same query arrivals; the gather phase follows bucket collisions only,
  // so the similarity scheme sends far less than an exhaustive flood.
  EXPECT_EQ(lsh.queries_issued, flood.queries_issued);
  EXPECT_LT(lsh.traffic.total(net::MessageType::kQuery),
            flood.traffic.total(net::MessageType::kQuery));
  // Every reported neighbor cleared the threshold — the checker verified
  // each outcome against the similarity spec as the run went.
  checker.check_overlay(sim.overlay());
  checker.check_ledger(sim.ledger());
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GT(checker.events_seen(), 0u);
}

TEST(LshScheme, SameSeedSameFingerprint) {
  auto config = scheme_gnutella_config();
  config.search_strategy = sim::SearchStrategyKind::kLsh;
  config.sim_threshold = 0.2;
  const auto a = fingerprint(gnutella::Simulation(config).run());
  const auto b = fingerprint(gnutella::Simulation(config).run());
  EXPECT_EQ(a.value(), b.value());
}

TEST(LshScheme, DigLibRejectsSimilarityQueries) {
  auto config = simtest::golden_diglib_config();
  config.search_strategy = sim::SearchStrategyKind::kLsh;
  EXPECT_THROW(diglib::DigLibSim{config}, std::invalid_argument);
}

}  // namespace
}  // namespace dsf
