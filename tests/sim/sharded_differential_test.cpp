// Differential tests for the sharded parallel execution path (DESIGN.md
// §1.8's determinism contract):
//
//  * `--shards 1` is a no-op: metric fingerprints are byte-identical to
//    the serial engine for all four simulators.
//  * `--shards N` is statistically pinned: a sharded run is a different
//    but valid interleaving, so aggregate rates must agree with the
//    serial oracle within loose tolerances, and an attached
//    InvariantChecker (which upgrades searches to exclusive sections and
//    audits TTL/conservation/dead-delivery invariants on every trace
//    record) must come back clean.
//  * Invalid parallel configurations are rejected up front: more shards
//    than peers, enabling the crash model, gnutella's library_growth,
//    and resharding after events exist.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "sim/invariants.h"
#include "sim_fingerprints.h"

namespace dsf {
namespace {

using simtest::fingerprint;

// Loose relative agreement for counters: sharded runs draw from per-shard
// RNG lanes, so only the statistics are pinned, not the trajectories.
void expect_close(double oracle, double sharded, double rel,
                  const char* what) {
  const double denom = std::abs(oracle) > 1e-12 ? std::abs(oracle) : 1.0;
  EXPECT_LE(std::abs(oracle - sharded) / denom, rel)
      << what << ": oracle=" << oracle << " sharded=" << sharded;
}

// Small configs keep the differential sweep inside the fast tier.
gnutella::Config small_gnutella() {
  gnutella::Config c = simtest::golden_gnutella_config();
  c.num_users = 120;
  c.sim_hours = 2.0;
  c.warmup_hours = 0.5;
  return c;
}

olap::OlapConfig small_olap() {
  olap::OlapConfig c = simtest::golden_olap_config();
  c.sim_hours = 0.5;
  c.warmup_hours = 0.1;
  return c;
}

TEST(ShardedDifferential, SingleShardIsByteIdenticalForAllSims) {
  {
    const auto serial = gnutella::Simulation(small_gnutella()).run();
    gnutella::Simulation one(small_gnutella());
    one.set_shards(1);
    EXPECT_EQ(fingerprint(serial).value(), fingerprint(one.run()).value());
  }
  {
    const auto serial =
        diglib::DigLibSim(simtest::golden_diglib_config()).run();
    diglib::DigLibSim one(simtest::golden_diglib_config());
    one.set_shards(1);
    EXPECT_EQ(fingerprint(serial).value(), fingerprint(one.run()).value());
  }
  {
    const auto serial = olap::OlapSim(small_olap()).run();
    olap::OlapSim one(small_olap());
    one.set_shards(1);
    EXPECT_EQ(fingerprint(serial).value(), fingerprint(one.run()).value());
  }
  {
    const auto serial =
        webcache::WebCacheSim(simtest::golden_webcache_config()).run();
    webcache::WebCacheSim one(simtest::golden_webcache_config());
    one.set_shards(1);
    EXPECT_EQ(fingerprint(serial).value(), fingerprint(one.run()).value());
  }
}

// The tentpole differential: gnutella (four-lane RNG, dynamic overlay,
// invitations/evictions) sharded at N in {2, 4, 8} against the serial
// oracle, with the checker certifying every sharded run.
TEST(ShardedDifferential, GnutellaShardedMatchesSerialOracleStatistically) {
  const auto oracle = gnutella::Simulation(small_gnutella()).run();
  ASSERT_GT(oracle.queries_issued, 0u);

  for (const std::uint32_t n : {2u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(n));
    gnutella::Simulation sim(small_gnutella());
    sim.set_shards(n);
    sim::InvariantChecker checker;
    sim.attach_checker(&checker);
    const auto r = sim.run();

    EXPECT_TRUE(checker.ok()) << checker.report();
    EXPECT_GT(r.queries_issued, 0u);
    expect_close(static_cast<double>(oracle.queries_issued),
                 static_cast<double>(r.queries_issued), 0.25,
                 "queries_issued");
    expect_close(static_cast<double>(oracle.total_messages()),
                 static_cast<double>(r.total_messages()), 0.35,
                 "total_messages");
    expect_close(static_cast<double>(oracle.traffic.total()),
                 static_cast<double>(r.traffic.total()), 0.35,
                 "traffic.total");
    // Hit rate is the paper's headline metric; compare as an absolute gap.
    const auto rate = [](const gnutella::RunResult& x) {
      return x.queries_issued ? static_cast<double>(x.total_hits()) /
                                    static_cast<double>(x.queries_issued)
                              : 0.0;
    };
    EXPECT_NEAR(rate(oracle), rate(r), 0.15);
    EXPECT_LE(r.total_hits(), r.queries_issued);
  }
}

// Same sweep for a compact-layout scenario with per-peer mutable caches
// (stripe-guard coverage): olap at N in {2, 4, 8}.
TEST(ShardedDifferential, OlapShardedMatchesSerialOracleStatistically) {
  const auto oracle = olap::OlapSim(small_olap()).run();
  ASSERT_GT(oracle.chunks_requested, 0u);

  for (const std::uint32_t n : {2u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(n));
    olap::OlapSim sim(small_olap());
    sim.set_shards(n);
    sim::InvariantChecker checker;
    sim.attach_checker(&checker);
    const auto r = sim.run();

    EXPECT_TRUE(checker.ok()) << checker.report();
    EXPECT_GT(r.queries, 0u);
    EXPECT_EQ(r.chunks_requested,
              r.chunks_local + r.chunks_from_peers + r.chunks_from_warehouse);
    expect_close(static_cast<double>(oracle.queries),
                 static_cast<double>(r.queries), 0.25, "queries");
    expect_close(static_cast<double>(oracle.chunks_requested),
                 static_cast<double>(r.chunks_requested), 0.25,
                 "chunks_requested");
    EXPECT_NEAR(oracle.peer_hit_rate(), r.peer_hit_rate(), 0.2);
  }
}

// A fixed shard count must give the same answer on every run, regardless
// of thread scheduling: the mailbox drains in canonical order and every
// lane is owned by exactly one shard.
TEST(ShardedDifferential, FixedShardCountIsReproducible) {
  auto cfg = small_gnutella();
  cfg.sim_hours = 1.0;
  cfg.warmup_hours = 0.25;
  gnutella::Simulation a(cfg);
  a.set_shards(4);
  gnutella::Simulation b(cfg);
  b.set_shards(4);
  EXPECT_EQ(fingerprint(a.run()).value(), fingerprint(b.run()).value());
}

TEST(ShardedDifferential, ShardsExceedingPeerCountThrow) {
  auto cfg = simtest::golden_olap_config();
  olap::OlapSim sim(cfg);
  EXPECT_THROW(sim.set_shards(cfg.num_peers + 1), std::invalid_argument);
  EXPECT_THROW(sim.set_shards(0), std::invalid_argument);
}

TEST(ShardedDifferential, CrashModelIsRejectedWhenSharded) {
  webcache::WebCacheSim sim(simtest::golden_webcache_config());
  sim.set_shards(2);
  sim::CrashModel crashes;
  crashes.rate_per_hour = 4.0;
  sim.set_crash_model(crashes);
  EXPECT_THROW(sim.run(), std::invalid_argument);
}

TEST(ShardedDifferential, LibraryGrowthIsRejectedWhenSharded) {
  auto cfg = small_gnutella();
  cfg.library_growth = true;
  gnutella::Simulation sim(cfg);
  sim.set_shards(2);
  EXPECT_THROW(sim.run(), std::invalid_argument);
}

TEST(ShardedDifferential, ReshardingAfterPrimeThrows) {
  gnutella::Simulation sim(small_gnutella());
  sim.prime();  // events now pending: the partition may no longer change
  EXPECT_THROW(sim.set_shards(2), std::logic_error);
}

TEST(ShardedDifferential, SnapshotsAreMutuallyExclusiveWithSharding) {
  // DESIGN.md §1.9: the checkpoint captures one serial clock and one set
  // of RNG lanes, which per-shard clocks cannot be reconciled with — so
  // snapshot use and --shards > 1 reject each other in both orders.
  const std::string path = ::testing::TempDir() + "dsf_sharded_snap.snap";
  {
    olap::OlapSim saver(small_olap());
    saver.request_snapshot_save(path, 120.0);
    saver.run();
  }
  {
    // A sharded engine refuses both snapshot directions up front.
    olap::OlapSim sim(small_olap());
    sim.set_shards(2);
    EXPECT_THROW(sim.load_snapshot(path), std::invalid_argument);
    EXPECT_THROW(sim.request_snapshot_save(path + ".x", 60.0),
                 std::invalid_argument);
  }
  {
    // ...and a loaded engine refuses to shard — but --shards 1 (the serial
    // no-op dsf_sim always applies) must stay allowed after a load.
    olap::OlapSim sim(small_olap());
    sim.load_snapshot(path);
    EXPECT_THROW(sim.set_shards(2), std::invalid_argument);
    sim.set_shards(1);
  }
  {
    olap::OlapSim sim(small_olap());
    sim.request_snapshot_save(path + ".y", 60.0);
    EXPECT_THROW(sim.set_shards(2), std::invalid_argument);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dsf
