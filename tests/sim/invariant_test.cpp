// Seeded-violation tests: every invariant class the checker claims to
// enforce is broken on purpose — hand-crafted bad traces, corrupted
// overlays, tampered ledgers — and the checker must catch each one.  A
// checker that silently misses a violation class is worse than none.
#include "sim/invariants.h"

#include <gtest/gtest.h>

#include <string>

#include "core/relations.h"
#include "sim/engine.h"

namespace dsf::sim {
namespace {

TraceEvent event(TraceKind kind, net::NodeId from, net::NodeId to,
                 net::MessageType type, int ttl = -1, double t = 1.0) {
  TraceEvent ev;
  ev.kind = kind;
  ev.time_s = t;
  ev.from = from;
  ev.to = to;
  ev.type = type;
  ev.bytes = 10;
  ev.ttl = ttl;
  return ev;
}

bool has_violation(const InvariantChecker& c, const std::string& invariant) {
  for (const auto& v : c.violations())
    if (v.invariant == invariant) return true;
  return false;
}

// --- conservation --------------------------------------------------------

TEST(InvariantChecker, CleanSendDeliverCycleIsOk) {
  InvariantChecker c;
  c.on_trace(event(TraceKind::kSend, 0, 1, net::MessageType::kPing));
  c.on_trace(event(TraceKind::kDeliver, 0, 1, net::MessageType::kPing));
  EXPECT_TRUE(c.ok()) << c.report();
  EXPECT_EQ(c.sent(net::MessageType::kPing), 1u);
  EXPECT_EQ(c.delivered(net::MessageType::kPing), 1u);
  EXPECT_EQ(c.in_flight(net::MessageType::kPing), 0);
}

TEST(InvariantChecker, DeliverWithoutSendViolatesConservation) {
  InvariantChecker c;
  c.on_trace(event(TraceKind::kDeliver, 0, 1, net::MessageType::kQuery));
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(has_violation(c, "conservation"));
  EXPECT_EQ(c.in_flight(net::MessageType::kQuery), -1);
}

TEST(InvariantChecker, DoubleDeliveryOfOneSendViolatesConservation) {
  InvariantChecker c;
  c.on_trace(event(TraceKind::kSend, 0, 1, net::MessageType::kQuery));
  c.on_trace(event(TraceKind::kDeliver, 0, 1, net::MessageType::kQuery));
  EXPECT_TRUE(c.ok());
  c.on_trace(event(TraceKind::kDeliver, 0, 1, net::MessageType::kQuery));
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(has_violation(c, "conservation"));
}

TEST(InvariantChecker, DropPastSentCountViolatesConservation) {
  InvariantChecker c;
  c.on_trace(event(TraceKind::kSend, 0, 1, net::MessageType::kEviction));
  c.on_trace(event(TraceKind::kDrop, 0, 1, net::MessageType::kEviction));
  EXPECT_TRUE(c.ok());
  c.on_trace(event(TraceKind::kDrop, 0, 1, net::MessageType::kEviction));
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(has_violation(c, "conservation"));
}

// --- TTL monotonicity ----------------------------------------------------

TEST(InvariantChecker, TtlAboveSearchBudgetIsCaught) {
  InvariantChecker c;
  c.on_search_begin(3);
  c.on_trace(event(TraceKind::kSend, 0, 1, net::MessageType::kQuery, 4));
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(has_violation(c, "ttl"));
}

TEST(InvariantChecker, TtlBelowOneIsCaught) {
  InvariantChecker c;
  c.on_search_begin(3);
  c.on_trace(event(TraceKind::kSend, 0, 1, net::MessageType::kQuery, 0));
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(has_violation(c, "ttl"));
}

TEST(InvariantChecker, TtlIncreaseWithinOneSearchIsCaught) {
  InvariantChecker c;
  c.on_search_begin(3);
  c.on_trace(event(TraceKind::kSend, 0, 1, net::MessageType::kQuery, 3));
  c.on_trace(event(TraceKind::kSend, 1, 2, net::MessageType::kQuery, 2));
  EXPECT_TRUE(c.ok());
  c.on_trace(event(TraceKind::kSend, 2, 3, net::MessageType::kQuery, 3));
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(has_violation(c, "ttl"));
}

TEST(InvariantChecker, NewSearchResetsTheTtlContext) {
  InvariantChecker c;
  c.on_search_begin(2);
  c.on_trace(event(TraceKind::kSend, 0, 1, net::MessageType::kQuery, 2));
  c.on_trace(event(TraceKind::kSend, 1, 2, net::MessageType::kQuery, 1));
  c.on_search_begin(2);  // next search may start at the full budget again
  c.on_trace(event(TraceKind::kSend, 3, 4, net::MessageType::kQuery, 2));
  EXPECT_TRUE(c.ok()) << c.report();
}

TEST(InvariantChecker, NonQueryTypesCarryNoTtlObligation) {
  InvariantChecker c;
  c.on_search_begin(2);
  // Replies and control traffic are sent with ttl = -1; never checked.
  c.on_trace(event(TraceKind::kSend, 0, 1, net::MessageType::kQueryReply));
  c.on_trace(event(TraceKind::kSend, 0, 1, net::MessageType::kPing));
  EXPECT_TRUE(c.ok()) << c.report();
}

// --- dead deliveries -----------------------------------------------------

TEST(InvariantChecker, DeliveryToCrashedPeerIsCaught) {
  InvariantChecker c;
  c.on_trace(event(TraceKind::kCrash, 5, net::kInvalidNode,
                   net::MessageType::kQuery));
  EXPECT_EQ(c.crashes_seen(), 1u);
  c.on_trace(event(TraceKind::kSend, 0, 5, net::MessageType::kQuery, 1));
  EXPECT_TRUE(c.ok()) << "sending toward a dead peer is legal";
  c.on_trace(event(TraceKind::kDeliver, 0, 5, net::MessageType::kQuery));
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(has_violation(c, "dead-delivery"));
}

TEST(InvariantChecker, DropAtCrashedPeerIsTheLegalFate) {
  InvariantChecker c;
  c.on_trace(event(TraceKind::kCrash, 5, net::kInvalidNode,
                   net::MessageType::kQuery));
  c.on_trace(event(TraceKind::kSend, 0, 5, net::MessageType::kQuery, 1));
  c.on_trace(event(TraceKind::kDrop, 0, 5, net::MessageType::kQuery));
  EXPECT_TRUE(c.ok()) << c.report();
}

// --- overlay sanity ------------------------------------------------------

TEST(InvariantChecker, AdjacencySelfLoopIsCaught) {
  InvariantChecker c;
  c.check_adjacency(3, std::vector<net::NodeId>{3}, {}, 8);
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(has_violation(c, "overlay"));
}

TEST(InvariantChecker, AdjacencyDuplicateEntryIsCaught) {
  InvariantChecker c;
  c.check_adjacency(0, std::vector<net::NodeId>{1, 2, 1}, {}, 8);
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(has_violation(c, "overlay"));
}

TEST(InvariantChecker, AdjacencyOutOfRangeIdIsCaught) {
  InvariantChecker c;
  c.check_adjacency(0, std::vector<net::NodeId>{1},
                    std::vector<net::NodeId>{42}, 8);
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(has_violation(c, "overlay"));
}

TEST(InvariantChecker, CleanOverlayPasses) {
  core::NeighborTable table(4, core::RelationKind::kAsymmetric, 2, 4);
  table.link(0, 1);
  table.link(1, 2);
  table.link(2, 0);
  InvariantChecker c;
  c.check_overlay(table);
  EXPECT_TRUE(c.ok()) << c.report();
}

TEST(InvariantChecker, SeededSelfLoopInOverlayIsCaught) {
  core::NeighborTable table(4, core::RelationKind::kAsymmetric, 2, 4);
  table.link(0, 1);
  // Corrupt the raw lists directly — link() itself refuses self-loops.
  table.lists(2).add_out(2);
  InvariantChecker c;
  c.check_overlay(table);
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(has_violation(c, "overlay"));
}

TEST(InvariantChecker, OneSidedLinkViolatesConsistency) {
  core::NeighborTable table(4, core::RelationKind::kAsymmetric, 2, 4);
  // An outgoing entry with no matching incoming entry breaks the §3.1
  // agreement that both sides of a link record it.
  table.lists(0).add_out(1);
  InvariantChecker c;
  c.check_overlay(table);
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(has_violation(c, "overlay"));
}

// --- ledger reconciliation -----------------------------------------------

TEST(InvariantChecker, MatchingLedgerReconciles) {
  InvariantChecker c;
  c.on_trace(event(TraceKind::kSend, 0, 1, net::MessageType::kQuery, 1));
  c.on_trace(event(TraceKind::kDeliver, 0, 1, net::MessageType::kQuery));
  MessageLedger ledger;
  ledger.count(net::MessageType::kQuery);
  ledger.count_delivered(net::MessageType::kQuery);
  c.check_ledger(ledger, {net::MessageType::kQuery});
  EXPECT_TRUE(c.ok()) << c.report();
}

TEST(InvariantChecker, TamperedDeliveredCounterIsCaught) {
  InvariantChecker c;
  c.on_trace(event(TraceKind::kSend, 0, 1, net::MessageType::kQuery, 1));
  c.on_trace(event(TraceKind::kDeliver, 0, 1, net::MessageType::kQuery));
  MessageLedger ledger;
  ledger.count(net::MessageType::kQuery);
  ledger.count_delivered(net::MessageType::kQuery);
  ledger.count_delivered(net::MessageType::kQuery);  // the tamper
  c.check_ledger(ledger);
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(has_violation(c, "ledger"));
}

TEST(InvariantChecker, TamperedDroppedCounterIsCaught) {
  InvariantChecker c;
  c.on_trace(event(TraceKind::kSend, 0, 1, net::MessageType::kPing, -1));
  c.on_trace(event(TraceKind::kDrop, 0, 1, net::MessageType::kPing));
  MessageLedger ledger;
  ledger.count(net::MessageType::kPing);
  // The tamper: the ledger claims no drop happened.
  c.check_ledger(ledger);
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(has_violation(c, "ledger"));
}

TEST(InvariantChecker, SentMismatchCaughtOnlyForExactTypes) {
  InvariantChecker c;
  c.on_trace(event(TraceKind::kSend, 0, 1, net::MessageType::kQuery, 1));
  c.on_trace(event(TraceKind::kDeliver, 0, 1, net::MessageType::kQuery));
  MessageLedger ledger;
  ledger.count(net::MessageType::kQuery, 5);  // bulk count: 4 untraced
  ledger.count_delivered(net::MessageType::kQuery);

  InvariantChecker lenient = c;
  lenient.check_ledger(ledger);  // no exact types: bulk counting is fine
  EXPECT_TRUE(lenient.ok()) << lenient.report();

  c.check_ledger(ledger, {net::MessageType::kQuery});
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(has_violation(c, "ledger"));
}

// --- admission conservation ----------------------------------------------

TEST(InvariantChecker, CleanAdmissionAccountingPasses) {
  load::LoadStats s;
  s.offered = 100;
  s.admitted = 80;
  s.rejected = 20;
  s.completed = 70;
  s.shed = 4;
  s.pending = 6;
  s.hits = 33;
  InvariantChecker c;
  c.check_admission(s);
  EXPECT_TRUE(c.ok()) << c.report();
}

TEST(InvariantChecker, LostArrivalViolatesAdmissionConservation) {
  load::LoadStats s;
  s.offered = 100;
  s.admitted = 80;
  s.rejected = 19;  // one arrival vanished between admission and rejection
  s.completed = 80;
  InvariantChecker c;
  c.check_admission(s);
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(has_violation(c, "admission"));
}

TEST(InvariantChecker, LeakedAdmittedQueryIsCaught) {
  load::LoadStats s;
  s.offered = 50;
  s.admitted = 50;
  s.completed = 40;
  s.shed = 2;
  s.pending = 7;  // 40 + 2 + 7 != 50: one admitted query leaked
  InvariantChecker c;
  c.check_admission(s);
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(has_violation(c, "admission"));
}

TEST(InvariantChecker, MoreHitsThanCompletionsIsCaught) {
  load::LoadStats s;
  s.offered = 10;
  s.admitted = 10;
  s.completed = 10;
  s.hits = 11;
  InvariantChecker c;
  c.check_admission(s);
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(has_violation(c, "admission"));
}

TEST(InvariantChecker, AllZeroLoadStatsAreVacuouslyClean) {
  // Closed-loop runs call check_admission unconditionally; a disabled
  // layer reports all-zero stats and must not trip anything.
  InvariantChecker c;
  c.check_admission(load::LoadStats{});
  EXPECT_TRUE(c.ok()) << c.report();
}

// --- scheme (ranked query plane outcome contracts) ------------------------

core::SearchHit hit(net::NodeId node, double score) {
  core::SearchHit h;
  h.node = node;
  h.hop = 1;
  h.arrival_s = 1.0;
  h.reply_at_s = 2.0;
  h.score = score;
  return h;
}

TEST(InvariantChecker, ExactMatchOutcomeWithPruningIsCaught) {
  InvariantChecker c;
  core::SearchParams p;
  core::SearchOutcome out;
  out.pruned_subtrees = 3;  // nothing bounds a flood
  c.check_search_outcome(core::QuerySpec::exact(p), out);
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(has_violation(c, "scheme"));
}

TEST(InvariantChecker, ExactMatchHitCarryingAScoreIsCaught) {
  InvariantChecker c;
  core::SearchParams p;
  core::SearchOutcome out;
  out.hits.push_back(hit(4, 0.7));
  c.check_search_outcome(core::QuerySpec::exact(p), out);
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(has_violation(c, "scheme"));
}

TEST(InvariantChecker, TopKOverflowIsCaught) {
  InvariantChecker c;
  core::SearchParams p;
  core::SearchOutcome out;
  out.hits.push_back(hit(1, 0.9));
  out.hits.push_back(hit(2, 0.8));
  out.hits.push_back(hit(3, 0.7));
  c.check_search_outcome(core::QuerySpec::top_k(p, 2), out);
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(has_violation(c, "scheme"));
}

TEST(InvariantChecker, RankedHitWithNonPositiveScoreIsCaught) {
  InvariantChecker c;
  core::SearchParams p;
  core::SearchOutcome out;
  out.hits.push_back(hit(1, 0.0));
  c.check_search_outcome(core::QuerySpec::top_k(p, 2), out);
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(has_violation(c, "scheme"));
}

TEST(InvariantChecker, RankedHitsOutOfScoreOrderAreCaught) {
  InvariantChecker c;
  core::SearchParams p;
  core::SearchOutcome out;
  out.hits.push_back(hit(1, 0.3));
  out.hits.push_back(hit(2, 0.8));  // ascending: the sort contract broke
  c.check_search_outcome(core::QuerySpec::top_k(p, 2), out);
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(has_violation(c, "scheme"));
}

TEST(InvariantChecker, SubThresholdSimilarityHitIsCaught) {
  InvariantChecker c;
  core::SearchParams p;
  core::SearchOutcome out;
  out.hits.push_back(hit(1, 0.3));
  c.check_search_outcome(core::QuerySpec::similar(p, 0.5), out);
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(has_violation(c, "scheme"));
}

TEST(InvariantChecker, WellFormedOutcomesOfEveryClassAreClean) {
  InvariantChecker c;
  core::SearchParams p;

  core::SearchOutcome exact;
  exact.hits.push_back(hit(1, 0.0));
  c.check_search_outcome(core::QuerySpec::exact(p), exact);

  core::SearchOutcome ranked;
  ranked.hits.push_back(hit(1, 0.9));
  ranked.hits.push_back(hit(2, 0.4));
  ranked.pruned_subtrees = 7;  // ranked schemes are allowed to prune
  c.check_search_outcome(core::QuerySpec::top_k(p, 2), ranked);

  core::SearchOutcome similar;
  similar.hits.push_back(hit(1, 0.6));
  c.check_search_outcome(core::QuerySpec::similar(p, 0.5), similar);

  EXPECT_TRUE(c.ok()) << c.report();
}

// --- reporting and the recording cap -------------------------------------

TEST(InvariantChecker, ViolationCapCountsExactly) {
  InvariantChecker c;
  const int n = 100;  // > kMaxRecorded
  for (int i = 0; i < n; ++i)
    c.on_trace(event(TraceKind::kDeliver, 0, 1, net::MessageType::kQuery));
  EXPECT_EQ(c.total_violations(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(c.violations().size(), InvariantChecker::kMaxRecorded);
  const auto report = c.report();
  EXPECT_NE(report.find("100"), std::string::npos);
  EXPECT_NE(report.find("suppressed"), std::string::npos);
}

TEST(InvariantChecker, ReportNamesTheInvariantAndDetail) {
  InvariantChecker c;
  c.on_search_begin(2);
  c.on_trace(event(TraceKind::kSend, 0, 1, net::MessageType::kQuery, 7));
  const auto report = c.report();
  EXPECT_NE(report.find("[ttl]"), std::string::npos) << report;
  EXPECT_NE(report.find("outside [1, 2]"), std::string::npos) << report;

  InvariantChecker clean;
  EXPECT_NE(clean.report().find("invariant violations: 0"),
            std::string::npos);
}

}  // namespace
}  // namespace dsf::sim
