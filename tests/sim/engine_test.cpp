#include "sim/engine.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/benefit.h"
#include "diglib/diglib_sim.h"
#include "core/stats_store.h"
#include "core/visit_stamp.h"
#include "des/rng.h"
#include "sim/policy.h"
#include "sim/validate.h"

namespace dsf::sim {
namespace {

/// Exposes the protected scenario-facing surface for direct testing.
class TestEngine : public OverlayEngine {
 public:
  explicit TestEngine(EngineConfig cfg) : OverlayEngine(std::move(cfg)) {}

  using OverlayEngine::count;
  using OverlayEngine::default_bootstrap_attempts;
  using OverlayEngine::draw_initial_online;
  using OverlayEngine::engine_config;
  using OverlayEngine::fill_random_neighbors;
  using OverlayEngine::horizon_s;
  using OverlayEngine::query_rng;
  using OverlayEngine::reporting;
  using OverlayEngine::rng;
  using OverlayEngine::run_until_horizon;
  using OverlayEngine::sample_delay_s;
  using OverlayEngine::schedule_every;
  using OverlayEngine::send;
  using OverlayEngine::send_batch;
  using OverlayEngine::session_rng;
  using OverlayEngine::topo_rng;
  using OverlayEngine::warmup_s;
};

EngineConfig small_config() {
  EngineConfig cfg;
  cfg.name = "test";
  cfg.num_nodes = 8;
  cfg.seed = 42;
  cfg.relation = core::RelationKind::kAsymmetric;
  cfg.out_capacity = 3;
  cfg.in_capacity = 8;
  cfg.sim_hours = 0.01;  // 36 s horizon
  cfg.warmup_hours = 0.0;
  return cfg;
}

TEST(MakeLanes, FourLaneSplitsInFixedOrder) {
  des::Rng master(7);
  auto lanes = make_lanes(master, RngLayout::kFourLane);

  des::Rng reference(7);
  des::Rng topo = reference.split();
  des::Rng session = reference.split();
  des::Rng query = reference.split();
  des::Rng delay = reference.split();

  EXPECT_EQ(lanes.topo.next(), topo.next());
  EXPECT_EQ(lanes.session.next(), session.next());
  EXPECT_EQ(lanes.query.next(), query.next());
  EXPECT_EQ(lanes.delay.next(), delay.next());
  // The master streams advanced identically.
  EXPECT_EQ(master.next(), reference.next());
}

TEST(MakeLanes, CompactSplitsOnlyTheDelayLane) {
  des::Rng master(7);
  auto lanes = make_lanes(master, RngLayout::kCompact);

  des::Rng reference(7);
  des::Rng delay = reference.split();

  EXPECT_EQ(lanes.delay.next(), delay.next());
  EXPECT_EQ(master.next(), reference.next());
}

TEST(OverlayEngine, CompactLaneAccessorsAliasTheMasterStream) {
  TestEngine e(small_config());
  // All three accessors are one stream: interleaved draws advance it.
  const auto a = e.topo_rng().next();
  const auto b = e.session_rng().next();
  const auto c = e.query_rng().next();
  EXPECT_NE(a, b);
  EXPECT_EQ(&e.topo_rng(), &e.session_rng());
  EXPECT_EQ(&e.session_rng(), &e.query_rng());
  EXPECT_EQ(&e.query_rng(), &e.rng());
  (void)c;
}

TEST(OverlayEngine, FourLaneAccessorsAreIndependentStreams) {
  auto cfg = small_config();
  cfg.rng_layout = RngLayout::kFourLane;
  TestEngine e(cfg);
  EXPECT_NE(&e.topo_rng(), &e.session_rng());
  EXPECT_NE(&e.session_rng(), &e.query_rng());
  EXPECT_NE(&e.topo_rng(), &e.rng());
}

TEST(MessageLedger, CountsMessagesAndDefaultBytes) {
  MessageLedger ledger;
  ledger.count(net::MessageType::kQuery);
  ledger.count(net::MessageType::kQuery, 2);
  ledger.count(net::MessageType::kPong, 1, 100);  // explicit byte override

  EXPECT_EQ(ledger.stats().total(net::MessageType::kQuery), 3u);
  EXPECT_EQ(ledger.bytes(net::MessageType::kQuery),
            3 * default_message_bytes(net::MessageType::kQuery));
  EXPECT_EQ(ledger.bytes(net::MessageType::kPong), 100u);
  EXPECT_EQ(ledger.total_bytes(),
            3 * default_message_bytes(net::MessageType::kQuery) + 100u);
  EXPECT_EQ(ledger.stats().total(), 4u);
}

TEST(DefaultMessageBytes, EveryTypeHasAPositiveWireSize) {
  for (int i = 0; i < net::kNumMessageTypes; ++i)
    EXPECT_GT(default_message_bytes(static_cast<net::MessageType>(i)), 0u)
        << "type " << i;
}

TEST(OverlayEngine, SendAccountsTracesAndDelivers) {
  TestEngine e(small_config());
  std::vector<TraceEvent> trace;
  e.set_trace_hook([&](const TraceEvent& ev) { trace.push_back(ev); });

  bool delivered = false;
  e.send(0, 1, net::MessageType::kQuery, [&] { delivered = true; });

  EXPECT_EQ(e.traffic().total(net::MessageType::kQuery), 1u);
  EXPECT_EQ(e.ledger().bytes(net::MessageType::kQuery),
            default_message_bytes(net::MessageType::kQuery));
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].kind, TraceKind::kSend);
  EXPECT_EQ(trace[0].from, 0u);
  EXPECT_EQ(trace[0].to, 1u);
  EXPECT_EQ(trace[0].type, net::MessageType::kQuery);
  EXPECT_EQ(trace[0].bytes, default_message_bytes(net::MessageType::kQuery));
  EXPECT_EQ(trace[0].ttl, -1);  // send() traffic carries no hop budget

  EXPECT_FALSE(delivered);
  e.simulator().run();
  EXPECT_TRUE(delivered);
  EXPECT_GT(e.simulator().now(), 0.0);  // the delay sample was positive
}

TEST(OverlayEngine, SendBatchMatchesPerTargetSendExactly) {
  // The batched fan-out is an accounting + scheduling shortcut, not a
  // semantic change: with the same seed it must produce byte-identical
  // ledger counts, trace streams, and delivery times as a per-target
  // send() loop, because delays are sampled in target order either way.
  const std::vector<net::NodeId> targets{1, 3, 5, 2, 7};

  TestEngine a(small_config());
  std::vector<TraceEvent> trace_a;
  a.set_trace_hook([&](const TraceEvent& ev) { trace_a.push_back(ev); });
  std::vector<std::pair<net::NodeId, double>> deliveries_a;
  for (const auto to : targets)
    a.send(0, to, net::MessageType::kQuery,
           [&, to] { deliveries_a.emplace_back(to, a.simulator().now()); });
  a.simulator().run();

  TestEngine b(small_config());
  std::vector<TraceEvent> trace_b;
  b.set_trace_hook([&](const TraceEvent& ev) { trace_b.push_back(ev); });
  std::vector<std::pair<net::NodeId, double>> deliveries_b;
  b.send_batch(0, targets, net::MessageType::kQuery, [&](std::size_t i) {
    const auto to = targets[i];
    return [&, to] { deliveries_b.emplace_back(to, b.simulator().now()); };
  });
  b.simulator().run();

  EXPECT_EQ(a.traffic().total(net::MessageType::kQuery), targets.size());
  EXPECT_EQ(b.traffic().total(net::MessageType::kQuery), targets.size());
  EXPECT_EQ(a.ledger().bytes(net::MessageType::kQuery),
            b.ledger().bytes(net::MessageType::kQuery));

  ASSERT_EQ(trace_a.size(), targets.size());
  ASSERT_EQ(trace_b.size(), targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    EXPECT_EQ(trace_a[i].to, trace_b[i].to);
    EXPECT_EQ(trace_a[i].type, trace_b[i].type);
    EXPECT_EQ(trace_a[i].bytes, trace_b[i].bytes);
  }

  ASSERT_EQ(deliveries_a.size(), targets.size());
  ASSERT_EQ(deliveries_b.size(), targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    EXPECT_EQ(deliveries_a[i].first, deliveries_b[i].first);
    EXPECT_EQ(deliveries_a[i].second, deliveries_b[i].second);  // exact
  }
}

TEST(OverlayEngine, SendBatchWithEmptyTargetListIsANoOp) {
  TestEngine e(small_config());
  const std::vector<net::NodeId> none;
  e.send_batch(0, none, net::MessageType::kQuery,
               [&](std::size_t) { return [] {}; });
  EXPECT_EQ(e.traffic().total(net::MessageType::kQuery), 0u);
  EXPECT_TRUE(e.simulator().queue().empty());
}

TEST(OverlayEngine, ScheduleEveryFiresAtFirstDelayThenEveryPeriod) {
  TestEngine e(small_config());
  std::vector<double> fire_times;
  e.schedule_every(1.0, 2.0,
                   [&] { fire_times.push_back(e.simulator().now()); });
  e.simulator().run_until(6.0);
  ASSERT_EQ(fire_times.size(), 3u);
  EXPECT_DOUBLE_EQ(fire_times[0], 1.0);
  EXPECT_DOUBLE_EQ(fire_times[1], 3.0);
  EXPECT_DOUBLE_EQ(fire_times[2], 5.0);
}

TEST(OverlayEngine, FillRandomNeighborsReachesTargetDegree) {
  TestEngine e(small_config());
  int links = 0;
  e.fill_random_neighbors(
      0, 3, e.default_bootstrap_attempts(),
      [&] { return static_cast<net::NodeId>(e.rng().uniform_int(8)); },
      [&] { ++links; });
  EXPECT_EQ(e.overlay().out_neighbors(0).size(), 3u);
  EXPECT_EQ(links, 3);
  EXPECT_EQ(e.bootstrap_underfills(), 0u);
  EXPECT_TRUE(e.overlay().consistent());
}

TEST(OverlayEngine, FillRandomNeighborsRecordsUnderfill) {
  TestEngine e(small_config());
  // A pick that only ever proposes a self-link exhausts the budget.
  int attempts_seen = 0;
  e.fill_random_neighbors(
      0, 3, e.default_bootstrap_attempts(),
      [&] {
        ++attempts_seen;
        return static_cast<net::NodeId>(0);
      },
      [] { FAIL() << "no link should form"; });
  EXPECT_EQ(attempts_seen, e.default_bootstrap_attempts());
  EXPECT_TRUE(e.overlay().out_neighbors(0).empty());
  EXPECT_EQ(e.bootstrap_underfills(), 1u);
}

TEST(OverlayEngine, BootstrapUnderfillReportsThroughWarningSink) {
  TestEngine e(small_config());
  std::vector<std::string> warnings;
  e.set_warning_sink([&](const std::string& w) { warnings.push_back(w); });
  // Same degenerate pick as above: the budget burns out with zero links.
  e.fill_random_neighbors(
      0, 3, e.default_bootstrap_attempts(),
      [] { return static_cast<net::NodeId>(0); }, [] {});
  ASSERT_EQ(e.bootstrap_underfills(), 1u);
  EXPECT_TRUE(warnings.empty()) << "report happens at end of run, not inline";

  e.run_until_horizon();
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("bootstrap"), std::string::npos) << warnings[0];
  EXPECT_NE(warnings[0].find("1"), std::string::npos) << warnings[0];

  // The report fires once, not once per horizon call.
  e.run_until_horizon();
  EXPECT_EQ(warnings.size(), 1u);
}

TEST(OverlayEngine, TooDenseConfigReportsUnderfillFromRealRun) {
  // Two repositories cannot give each other three distinct neighbors: the
  // bootstrap must under-fill and say so through the sink.
  diglib::DigLibConfig c;
  c.num_repositories = 2;
  c.num_neighbors = 3;
  c.num_docs = 100;
  c.num_topics = 2;
  c.holdings = 10;
  c.sim_hours = 0.02;
  c.warmup_hours = 0.0;
  c.seed = 3;
  diglib::DigLibSim sim(c);
  std::vector<std::string> warnings;
  sim.set_warning_sink([&](const std::string& w) { warnings.push_back(w); });
  sim.run();
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("bootstrap"), std::string::npos) << warnings[0];
}

TEST(OverlayEngine, DefaultBootstrapAttemptsIsFourPerSlot) {
  TestEngine e(small_config());
  EXPECT_EQ(e.default_bootstrap_attempts(), 12);  // 4 * out_capacity(3)
}

TEST(OverlayEngine, DrawInitialOnlineWithNoChurnSelectsEveryNode) {
  TestEngine e(small_config());
  const NoChurn churn;
  const auto online = e.draw_initial_online(churn, e.rng());
  ASSERT_EQ(online.size(), e.num_nodes());
  for (net::NodeId u = 0; u < e.num_nodes(); ++u) EXPECT_EQ(online[u], u);
}

TEST(OverlayEngine, TrafficSamplingRecordsCumulativeCounts) {
  TestEngine e(small_config());
  e.set_traffic_sample_period(10.0);
  // One query at t=0 and one more every 12 s via a periodic event.
  e.count(net::MessageType::kQuery);
  e.schedule_every(12.0, 12.0, [&] { e.count(net::MessageType::kQuery); });
  e.run_until_horizon();  // 36 s horizon -> samples at 10, 20, 30

  const auto& samples = e.traffic_samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_DOUBLE_EQ(samples[0].time_s, 10.0);
  EXPECT_EQ(samples[0].messages, 1u);  // t=0 count only
  EXPECT_EQ(samples[1].messages, 2u);  // + t=12
  EXPECT_EQ(samples[2].messages, 3u);  // + t=24
  EXPECT_GT(samples[2].bytes, samples[0].bytes);
  ASSERT_TRUE(e.traffic_series().has_value());
}

TEST(OverlayEngine, ReportingFlipsAfterWarmup) {
  auto cfg = small_config();
  cfg.warmup_hours = 0.005;  // 18 s
  TestEngine e(cfg);
  EXPECT_FALSE(e.reporting());
  e.simulator().run_until(18.0);
  EXPECT_TRUE(e.reporting());
}

TEST(Validate, HelpersProduceConsistentMessages) {
  EXPECT_NO_THROW(validate_or_throw(true, "x", "fine"));
  try {
    require_positive("olap", "num_peers", 0);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "olap: num_peers must be positive");
  }
  try {
    require_divides("diglib", "num_docs", 10, "num_topics", 3);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "diglib: num_docs must divide evenly into num_topics");
  }
  // A zero divisor is rejected before the modulo.
  EXPECT_THROW(require_divides("diglib", "num_docs", 10, "num_topics", 0),
               std::invalid_argument);
  EXPECT_NO_THROW(require_divides("diglib", "num_docs", 12, "num_topics", 3));
}

TEST(MakeBenefit, CoversEveryPolicy) {
  const struct {
    BenefitPolicy policy;
    std::string_view name;
  } kCases[] = {
      {BenefitPolicy::kBandwidthOverResults, "bandwidth/results"},
      {BenefitPolicy::kItemsOverLatency, "items/latency"},
      {BenefitPolicy::kProcessingTimeSaved, "processing-time-saved"},
      {BenefitPolicy::kUnit, "unit"},
      {BenefitPolicy::kInverseLatency, "1/latency"},
  };
  for (const auto& c : kCases) {
    const auto fn = make_benefit(c.policy);
    ASSERT_NE(fn, nullptr);
    EXPECT_EQ(fn->name(), c.name);
  }
  core::ResultInfo info;
  EXPECT_DOUBLE_EQ(make_benefit(BenefitPolicy::kUnit)->benefit(info), 1.0);
}

TEST(DispatchSearch, EveryStrategyFindsReachableContent) {
  // Line overlay 0 -> 1 -> 2 -> 3 with content at node 2.
  const std::vector<std::vector<net::NodeId>> adj = {{1}, {2}, {3}, {}};
  auto neighbors = [&](net::NodeId n) -> const std::vector<net::NodeId>& {
    return adj[n];
  };
  auto has_content = [](net::NodeId n) { return n == 2; };
  auto delay = [](net::NodeId, net::NodeId) { return 0.1; };

  core::SearchParams params;
  params.max_hops = 3;
  core::StatsStore stats;
  core::VisitStamp stamps(4);
  core::VisitStamp hit_stamps(4);
  core::SearchScratch scratch;

  for (auto kind :
       {SearchStrategyKind::kFlood, SearchStrategyKind::kIterativeDeepening,
        SearchStrategyKind::kDirectedBft, SearchStrategyKind::kLocalIndices}) {
    const auto out =
        dispatch_search(kind, 0, params, stats, /*directed_fanout=*/2,
                        neighbors, has_content, delay, stamps, hit_stamps,
                        scratch);
    EXPECT_TRUE(out.satisfied()) << "strategy " << static_cast<int>(kind);
    EXPECT_GT(out.query_messages, 0u);
  }
}

TEST(DispatchSearch, IterativeDeepeningAccumulatesCycleCost) {
  const std::vector<std::vector<net::NodeId>> adj = {{1}, {2}, {3}, {}};
  auto neighbors = [&](net::NodeId n) -> const std::vector<net::NodeId>& {
    return adj[n];
  };
  auto has_content = [](net::NodeId n) { return n == 3; };
  auto delay = [](net::NodeId, net::NodeId) { return 0.1; };

  core::SearchParams params;
  params.max_hops = 3;
  core::StatsStore stats;
  core::VisitStamp stamps(4);
  core::VisitStamp hit_stamps(4);
  core::SearchScratch scratch;

  const auto flood = dispatch_search(
      SearchStrategyKind::kFlood, 0, params, stats, 2, neighbors, has_content,
      delay, stamps, hit_stamps, scratch);
  const auto iter = dispatch_search(
      SearchStrategyKind::kIterativeDeepening, 0, params, stats, 2, neighbors,
      has_content, delay, stamps, hit_stamps, scratch);
  // Deepening repeats shallow cycles before the hit at depth 3, so its
  // accumulated message cost exceeds one full flood.
  EXPECT_GT(iter.query_messages, flood.query_messages);
  EXPECT_TRUE(iter.satisfied());
}

TEST(DispatchSearch, ContextFormMatchesDeprecatedPositionalForm) {
  // The one-release positional shim must route through the same machinery
  // as the QuerySpec/SearchContext form: identical outcomes, per strategy.
  const std::vector<std::vector<net::NodeId>> adj = {{1}, {2}, {3}, {}};
  auto neighbors = [&](net::NodeId n) -> const std::vector<net::NodeId>& {
    return adj[n];
  };
  auto has_content = [](net::NodeId n) { return n == 2; };
  auto delay = [](net::NodeId, net::NodeId) { return 0.1; };

  core::SearchParams params;
  params.max_hops = 3;
  core::StatsStore stats;
  core::VisitStamp stamps(4);
  core::VisitStamp hit_stamps(4);
  core::SearchScratch scratch;

  for (auto kind :
       {SearchStrategyKind::kFlood, SearchStrategyKind::kIterativeDeepening,
        SearchStrategyKind::kDirectedBft, SearchStrategyKind::kLocalIndices}) {
    const auto old_form =
        dispatch_search(kind, 0, params, stats, /*directed_fanout=*/2,
                        neighbors, has_content, delay, stamps, hit_stamps,
                        scratch);
    auto ctx = core::make_search_context(0, neighbors, has_content, delay,
                                         core::ReliableTransmit{}, stamps,
                                         hit_stamps, scratch);
    ctx.stats = &stats;
    const auto new_form = dispatch_search(kind, core::QuerySpec::exact(params),
                                          /*directed_fanout=*/2, ctx);
    EXPECT_EQ(old_form.satisfied(), new_form.satisfied())
        << "strategy " << to_string(kind);
    EXPECT_EQ(old_form.query_messages, new_form.query_messages);
    EXPECT_EQ(old_form.reply_messages, new_form.reply_messages);
    EXPECT_EQ(old_form.nodes_reached, new_form.nodes_reached);
    EXPECT_EQ(old_form.hits.size(), new_form.hits.size());
  }
}

TEST(DispatchSearch, RankedSchemesRouteThroughTheContextBindings) {
  // Star hub 0 with three leaves; leaves 1 and 3 score, 2 does not.
  const std::vector<std::vector<net::NodeId>> adj = {{1, 2, 3}, {0}, {0}, {0}};
  auto neighbors = [&](net::NodeId n) -> const std::vector<net::NodeId>& {
    return adj[n];
  };
  auto has_content = [](net::NodeId n) { return n == 1 || n == 3; };
  auto rank = [](net::NodeId n) { return n == 1 ? 0.9 : n == 3 ? 0.4 : 0.0; };
  auto candidate = [](net::NodeId n) { return n == 1 || n == 3; };
  auto delay = [](net::NodeId, net::NodeId) { return 0.1; };

  core::SearchParams params;
  params.max_hops = 1;
  core::VisitStamp stamps(4);
  core::VisitStamp hit_stamps(4);
  core::SearchScratch scratch;
  auto ctx = core::make_ranked_context(0, neighbors, has_content, rank,
                                       candidate, delay,
                                       core::ReliableTransmit{}, stamps,
                                       hit_stamps, scratch);

  const auto spec = core::QuerySpec::top_k(params, 1);
  const auto top = dispatch_search(SearchStrategyKind::kTopK, spec, 2, ctx);
  ASSERT_EQ(top.hits.size(), 1u);
  EXPECT_EQ(top.hits[0].node, 1u);
  EXPECT_DOUBLE_EQ(top.hits[0].score, 0.9);
  EXPECT_EQ(top.k_target, 1u);
  EXPECT_TRUE(top.k_satisfied());
  // The unscored leaf's last-hop forward was withheld.
  EXPECT_EQ(top.pruned_subtrees, 1u);

  const auto sim_spec = core::QuerySpec::similar(params, 0.5);
  const auto similar =
      dispatch_search(SearchStrategyKind::kLsh, sim_spec, 2, ctx);
  // Both candidates are visited; only the one clearing the threshold
  // (rank doubles as the similarity estimate here) replies.
  ASSERT_EQ(similar.hits.size(), 1u);
  EXPECT_EQ(similar.hits[0].node, 1u);
  EXPECT_GE(similar.hits[0].score, 0.5);
}

TEST(SearchStrategyKind, ParseAndPrintRoundTrip) {
  for (auto kind :
       {SearchStrategyKind::kFlood, SearchStrategyKind::kIterativeDeepening,
        SearchStrategyKind::kDirectedBft, SearchStrategyKind::kLocalIndices,
        SearchStrategyKind::kTopK, SearchStrategyKind::kLsh}) {
    EXPECT_EQ(parse_search_strategy(to_string(kind)), kind);
  }
  EXPECT_THROW(parse_search_strategy("gossip"), std::invalid_argument);
  EXPECT_THROW(parse_search_strategy(""), std::invalid_argument);
}

TEST(SearchStrategyKind, QueryClassAndSpecFactoriesAgree) {
  core::SearchParams params;
  params.max_hops = 2;

  EXPECT_EQ(query_class_of(SearchStrategyKind::kFlood),
            core::QueryClass::kExactMatch);
  EXPECT_EQ(query_class_of(SearchStrategyKind::kDirectedBft),
            core::QueryClass::kExactMatch);
  EXPECT_EQ(query_class_of(SearchStrategyKind::kTopK),
            core::QueryClass::kTopKRanked);
  EXPECT_EQ(query_class_of(SearchStrategyKind::kLsh),
            core::QueryClass::kSimilarity);

  const auto exact = query_spec_for(SearchStrategyKind::kFlood, params, 7, 0.9);
  EXPECT_EQ(exact.query_class, core::QueryClass::kExactMatch);
  const auto ranked = query_spec_for(SearchStrategyKind::kTopK, params, 7, 0.9);
  EXPECT_EQ(ranked.query_class, core::QueryClass::kTopKRanked);
  EXPECT_EQ(ranked.k, 7u);
  const auto similar = query_spec_for(SearchStrategyKind::kLsh, params, 7, 0.9);
  EXPECT_EQ(similar.query_class, core::QueryClass::kSimilarity);
  EXPECT_DOUBLE_EQ(similar.sim_threshold, 0.9);
  EXPECT_EQ(similar.params.max_hops, 2);
}

TEST(OverlayEngine, EngineConfigIsPreserved) {
  auto cfg = small_config();
  TestEngine e(cfg);
  EXPECT_EQ(e.engine_config().name, "test");
  EXPECT_EQ(e.num_nodes(), 8u);
  EXPECT_DOUBLE_EQ(e.horizon_s(), 36.0);
  EXPECT_DOUBLE_EQ(e.warmup_s(), 0.0);
}

}  // namespace
}  // namespace dsf::sim
