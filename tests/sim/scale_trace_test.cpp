// Acceptance: a traced 10k-peer run exports a Chrome trace from which a
// full search span — begin, hop-tree wire events, end — can be
// reconstructed.  Runs the flight recorder at the scale the EXPERIMENTS
// recipe documents, then verifies the exported document the way a trace
// viewer would: parse it and chase one span id through its events.
#include <gtest/gtest.h>

#include <sstream>

#include "../obs/json_check.h"
#include "gnutella/config.h"
#include "gnutella/simulation.h"
#include "obs/chrome_trace.h"
#include "obs/ring_sink.h"
#include "obs/span_table.h"

namespace dsf {
namespace {

TEST(ScaleTrace, TenThousandPeerRunExportsFullSearchSpan) {
  gnutella::Config config;
  config.num_users = 10'000;
  config.sim_hours = 0.3;
  config.warmup_hours = 0.05;
  config.max_hops = 2;
  config.seed = 7;

  obs::RingSink ring(1u << 20);
  gnutella::Simulation sim(config);
  sim.set_trace_sink(&ring);
  const auto result = sim.run();
  ASSERT_GT(result.queries_issued, 0u);
  ASSERT_GT(ring.total(), 0u);

  // Pick a complete span that actually flooded (sends > 0).
  const auto snap = ring.snapshot();
  const auto spans = obs::reconstruct_spans(snap);
  ASSERT_FALSE(spans.empty());
  const obs::SpanSummary* chosen = nullptr;
  for (const auto& s : spans) {
    if (s.complete && s.sends > 0) {
      chosen = &s;
      break;
    }
  }
  ASSERT_NE(chosen, nullptr) << "no complete flooded span in the trace";

  // Export and re-parse the Chrome trace document.
  std::ostringstream os;
  obs::write_chrome_trace(os, snap, ring.overwritten());
  const auto doc = testjson::parse(os.str());
  ASSERT_TRUE(doc.at("traceEvents").is_array());

  // The chosen span must appear as an async begin/end pair plus at least
  // one wire instant carrying its id — a viewer can reconstruct the
  // search end to end.
  const double id = static_cast<double>(chosen->span);
  bool begin = false, end = false;
  std::uint64_t wire_events = 0;
  double begin_ts = -1.0, end_ts = -1.0;
  for (const auto& e : doc.at("traceEvents").array) {
    const std::string& ph = e.at("ph").string;
    if (ph == "b" && e.at("id").number == id) {
      begin = true;
      begin_ts = e.at("ts").number;
    } else if (ph == "e" && e.at("id").number == id) {
      end = true;
      end_ts = e.at("ts").number;
    } else if (ph == "i" && e.has("args") && e.at("args").has("span") &&
               e.at("args").at("span").number == id) {
      ++wire_events;
    }
  }
  EXPECT_TRUE(begin);
  EXPECT_TRUE(end);
  EXPECT_GE(end_ts, begin_ts);
  EXPECT_GT(wire_events, 0u);
  // Every wire record the reconstruction counted is present in the
  // export (no faults armed, so each record carries exactly one copy).
  EXPECT_EQ(wire_events, chosen->sends + chosen->delivers + chosen->drops)
      << "span " << chosen->span;
}

}  // namespace
}  // namespace dsf
