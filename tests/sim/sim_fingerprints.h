#pragma once

// Shared golden configurations and metric fingerprints for the cross-sim
// regression tests: determinism_test.cpp pins the baseline values, and
// fault_golden_test.cpp re-runs the same configurations with an empty
// fault plan attached to prove the fault layer is a true no-op.
//
// The fingerprints fold every reported counter and aggregate into one
// 64-bit digest, so "byte-identical metrics" is a single EXPECT_EQ.

#include "diglib/diglib_sim.h"
#include "gnutella/simulation.h"
#include "metrics/digest.h"
#include "olap/olap_sim.h"
#include "webcache/webcache_sim.h"

namespace dsf::simtest {

inline gnutella::Config golden_gnutella_config() {
  gnutella::Config c;
  c.num_users = 250;
  c.catalog.num_songs = 25'000;
  c.sim_hours = 6.0;
  c.warmup_hours = 1.0;
  c.max_hops = 2;
  c.seed = 20260805;
  return c;
}

inline diglib::DigLibConfig golden_diglib_config() {
  diglib::DigLibConfig c;
  c.num_repositories = 32;
  c.num_docs = 8'000;
  c.num_topics = 8;
  c.holdings = 400;
  c.sim_hours = 0.5;
  c.warmup_hours = 0.1;
  c.seed = 99;
  return c;
}

inline olap::OlapConfig golden_olap_config() {
  olap::OlapConfig c;
  c.num_peers = 24;
  c.num_chunks = 12'000;
  c.num_regions = 6;
  c.cache_capacity = 400;
  c.sim_hours = 1.0;
  c.warmup_hours = 0.25;
  c.seed = 5;
  return c;
}

inline webcache::WebCacheConfig golden_webcache_config() {
  webcache::WebCacheConfig c;
  c.num_proxies = 32;
  c.num_pages = 20'000;
  c.cache_capacity = 500;
  c.sim_hours = 1.0;
  c.warmup_hours = 0.25;
  c.seed = 13;
  return c;
}

// --- per-scenario metric fingerprints (exact, bit-level) -----------------

inline metrics::Fingerprint fingerprint(const gnutella::RunResult& r) {
  metrics::Fingerprint fp;
  fp.add(r.queries_issued)
      .add(r.local_hits)
      .add(r.total_hits())
      .add(r.total_messages())
      .add(r.total_results())
      .add(r.reconfigurations)
      .add(r.invitations_accepted)
      .add(r.evictions)
      .add(r.traffic.total())
      .add(r.first_result_delay_s.mean())
      .add(r.nodes_reached.mean());
  return fp;
}

inline metrics::Fingerprint fingerprint(const diglib::DigLibResult& r) {
  metrics::Fingerprint fp;
  fp.add(r.queries)
      .add(r.satisfied)
      .add(r.copies_found)
      .add(r.copies_available)
      .add(r.traffic.total())
      .add(r.messages_per_query.mean())
      .add(r.first_result_delay_s.mean());
  return fp;
}

inline metrics::Fingerprint fingerprint(const olap::OlapResult& r) {
  metrics::Fingerprint fp;
  fp.add(r.queries)
      .add(r.chunks_requested)
      .add(r.chunks_local)
      .add(r.chunks_from_peers)
      .add(r.chunks_from_warehouse)
      .add(r.traffic.total())
      .add(r.response_time_s.mean());
  return fp;
}

inline metrics::Fingerprint fingerprint(const webcache::WebCacheResult& r) {
  metrics::Fingerprint fp;
  fp.add(r.requests)
      .add(r.local_hits)
      .add(r.neighbor_hits)
      .add(r.origin_fetches)
      .add(r.traffic.total())
      .add(r.latency_s.mean());
  return fp;
}

}  // namespace dsf::simtest
