// Flight-recorder zero-perturbation regression: attaching a trace sink
// must leave every scenario's metrics byte-identical to the untraced
// baseline.  This is stronger than "tracing off is free": the recorder
// rides the same traced transmit path as the fault layer but never draws
// from any RNG lane, so even a fully armed RingSink cannot move a single
// counter.  The NullSink variant additionally proves the disabled sink
// collapses to the plain path (set_trace_sink drops it to nullptr).
//
// Full golden configurations (same as determinism_test.cpp), so this file
// lives in the slow suite.
#include <gtest/gtest.h>

#include "obs/ring_sink.h"
#include "obs/sink.h"
#include "sim_fingerprints.h"

namespace dsf {
namespace {

using simtest::fingerprint;

template <typename Sim, typename Config>
void expect_tracing_is_noop(const Config& config) {
  const auto baseline = fingerprint(Sim(config).run());

  // A disabled sink must collapse to no sink at all.
  Sim null_sim(config);
  null_sim.set_trace_sink(&obs::NullSink::instance());
  EXPECT_EQ(null_sim.trace_sink(), nullptr);
  const auto with_null = fingerprint(null_sim.run());
  EXPECT_EQ(baseline.value(), with_null.value())
      << "NullSink perturbed the run";

  // A live ring records the run without moving any metric.
  obs::RingSink ring;
  Sim traced_sim(config);
  traced_sim.set_trace_sink(&ring);
  EXPECT_EQ(traced_sim.trace_sink(), &ring);
  const auto traced = fingerprint(traced_sim.run());
  EXPECT_EQ(baseline.value(), traced.value()) << "RingSink perturbed the run";
  EXPECT_GT(ring.total(), 0u) << "sink attached but nothing was recorded";
}

TEST(TraceGolden, GnutellaTracedRunMatchesBaseline) {
  expect_tracing_is_noop<gnutella::Simulation>(
      simtest::golden_gnutella_config());
}

TEST(TraceGolden, DigLibTracedRunMatchesBaseline) {
  expect_tracing_is_noop<diglib::DigLibSim>(simtest::golden_diglib_config());
}

TEST(TraceGolden, OlapTracedRunMatchesBaseline) {
  expect_tracing_is_noop<olap::OlapSim>(simtest::golden_olap_config());
}

TEST(TraceGolden, WebCacheTracedRunMatchesBaseline) {
  expect_tracing_is_noop<webcache::WebCacheSim>(
      simtest::golden_webcache_config());
}

}  // namespace
}  // namespace dsf
