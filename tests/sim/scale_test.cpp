// Large-population smoke tests for the compact scale path (ctest label
// `scale`: excluded from the PR fast tier, run on main and nightly).
//
// 100k peers is the smallest population where the old per-peer-vector
// representation visibly hurt (heap fragmentation, ~150 MB of allocator
// overhead before the first event fired) and large enough to exercise the
// arena overflow path through a realistic bootstrap.  The test pins three
// things: the bootstrap completes inside the ctest timeout, peak RSS per
// peer stays under a budget, and the resulting overlay passes the full
// invariant audit.

#include <gtest/gtest.h>

#include <sys/resource.h>

#include <cstddef>

#include "gnutella/config.h"
#include "gnutella/simulation.h"
#include "sim/invariants.h"

namespace dsf {
namespace {

std::size_t peak_rss_bytes() {
  struct rusage u {};
  getrusage(RUSAGE_SELF, &u);
  return static_cast<std::size_t>(u.ru_maxrss) * 1024;  // KiB on Linux
}

// Address/undefined instrumentation inflates RSS by shadow memory and
// redzones; the budget is only meaningful for a plain build.
constexpr bool kSanitized =
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
    true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
    true;
#else
    false;
#endif
#else
    false;
#endif

gnutella::Config scale_config(std::size_t peers) {
  gnutella::Config c;
  c.num_users = static_cast<std::uint32_t>(peers);
  c.seed = 20260805;
  c.sim_hours = 1.0;
  c.warmup_hours = 0.0;
  c.dynamic = true;
  return c;
}

TEST(ScaleTest, HundredThousandPeerBootstrap) {
  constexpr std::size_t kPeers = 100'000;
  gnutella::Simulation sim(scale_config(kPeers));
  sim.prime();

  // The session model puts roughly the paper's steady-state fraction of
  // the population on-line; bootstrap must have linked them.
  EXPECT_GT(sim.online_count(), kPeers / 10);
  EXPECT_LT(sim.online_count(), kPeers);

  // Full §3.1 audit over all 100k nodes: symmetric mirror-consistency and
  // no out-of-range or duplicate entries anywhere in the compact table.
  sim::InvariantChecker checker;
  checker.check_overlay(sim.overlay());
  EXPECT_TRUE(checker.ok()) << checker.report();

  // The compact representation itself: refs + inline store + arena.  At
  // capacity 4 the table must stay within ~80 bytes/peer even after
  // bootstrap overflowed some lists into the arena.
  EXPECT_LT(sim.overlay().memory_bytes(), kPeers * 96);

  if (!kSanitized) {
    // Whole-process budget: libraries (~200 songs/peer), overlay, user
    // state, event queue and allocator slack.  The pre-compaction layout
    // exceeded 2.5 KiB/peer on the same config; the pin keeps the win.
    EXPECT_LT(peak_rss_bytes(), kPeers * std::size_t{2048})
        << "peak RSS " << peak_rss_bytes() / (1024 * 1024) << " MiB";
  }
}

TEST(ScaleTest, HundredThousandPeerShortDay) {
  // A slice of simulated time on the full population: events flow, churn
  // reconfigures the overlay, and the audit still passes afterwards.
  gnutella::Config c = scale_config(100'000);
  c.sim_hours = 0.05;  // 3 simulated minutes of churn + queries
  gnutella::Simulation sim(c);
  const auto result = sim.run();
  EXPECT_GT(result.traffic.total(), 0u);

  sim::InvariantChecker checker;
  checker.check_overlay(sim.overlay());
  EXPECT_TRUE(checker.ok()) << checker.report();
}

}  // namespace
}  // namespace dsf
