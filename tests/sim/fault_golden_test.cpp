// Zero-perturbation regression: attaching the fault layer with an EMPTY
// plan (no rules, no crashes) plus the invariant checker must leave every
// scenario's metrics byte-identical to the plain baseline run.  This is
// the contract that makes the fault layer safe to wire permanently into
// the simulators: the fault RNG lane is separate from the workload lanes
// and consumes zero draws when nothing is armed, and the traced transmit
// path adds zero delay and drops nothing.
//
// The runs are full golden configurations (same as determinism_test.cpp),
// so this file lives in the slow suite.
#include <gtest/gtest.h>

#include "sim/invariants.h"
#include "sim_fingerprints.h"

namespace dsf {
namespace {

using simtest::fingerprint;

/// Runs `Sim(config)` twice — plain, and with empty plan + disabled
/// crashes + checker attached — and requires identical fingerprints and
/// a clean checker.
template <typename Sim, typename Config>
void expect_noop_fault_layer(const Config& config) {
  const auto baseline = fingerprint(Sim(config).run());

  sim::InvariantChecker checker;
  Sim sim(config);
  sim.set_fault_plan(sim::FaultPlan{});
  sim.set_crash_model(sim::CrashModel{});
  sim.attach_checker(&checker);
  const auto armed = fingerprint(sim.run());

  EXPECT_EQ(baseline.value(), armed.value())
      << "empty fault plan perturbed the run";
  checker.check_overlay(sim.overlay());
  checker.check_ledger(sim.ledger());
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GT(checker.events_seen(), 0u)
      << "checker attached but no traffic was traced";
  EXPECT_EQ(checker.crashes_seen(), 0u);
}

TEST(FaultGolden, GnutellaEmptyPlanIsNoop) {
  expect_noop_fault_layer<gnutella::Simulation>(
      simtest::golden_gnutella_config());
}

TEST(FaultGolden, DigLibEmptyPlanIsNoop) {
  expect_noop_fault_layer<diglib::DigLibSim>(simtest::golden_diglib_config());
}

TEST(FaultGolden, OlapEmptyPlanIsNoop) {
  expect_noop_fault_layer<olap::OlapSim>(simtest::golden_olap_config());
}

TEST(FaultGolden, WebCacheEmptyPlanIsNoop) {
  expect_noop_fault_layer<webcache::WebCacheSim>(
      simtest::golden_webcache_config());
}

// With real loss the checker still closes every invariant, and the flood
// strategy's ledger reconciles exactly (every query/reply is transmitted
// individually).
TEST(FaultGolden, GnutellaLossyRunIsCheckerClean) {
  auto config = simtest::golden_gnutella_config();
  sim::FaultRule rule;
  rule.drop_prob = 0.1;
  rule.duplicate_prob = 0.05;
  sim::FaultPlan plan;
  plan.set_rule(net::MessageType::kQuery, rule);
  plan.set_rule(net::MessageType::kQueryReply, rule);

  sim::InvariantChecker checker;
  gnutella::Simulation sim(config);
  sim.set_fault_plan(plan);
  sim.attach_checker(&checker);
  const auto r = sim.run();

  checker.check_overlay(sim.overlay());
  checker.check_ledger(sim.ledger(), {net::MessageType::kQuery,
                                      net::MessageType::kQueryReply});
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GT(sim.ledger().total_dropped(), 0u);
  EXPECT_GT(r.total_hits(), 0u);
}

}  // namespace
}  // namespace dsf
