// Adversary-layer battery, in three movements:
//
//   1. Zero-perturbation goldens: attaching the adversary layer with a
//      DISABLED plan must leave every scenario's metric fingerprint
//      byte-identical to the plain baseline — the adversary lane draws
//      nothing and schedules nothing, the same contract the fault layer
//      pins in fault_golden_test.cpp.  This is what makes the layer safe
//      to wire permanently into all four simulators.
//
//   2. Behavioral pins: each armed adversity actually bites — abusers
//      spray attributed traffic, free-riders depress the hit ratio, the
//      regional outage crashes its class, churn storms deliver kicks,
//      capacity bounds cap degrees — and every armed run stays clean
//      under the full invariant battery including the abuse-accounting
//      and abuser-overlay audits.
//
//   3. Capture round-trip: --capture-trace writes the run's closed-loop
//      arrivals in the open-loop trace grammar, and replaying the file
//      with the trace-driven injector reproduces the captured run's
//      offered/admitted counts exactly.
//
// The golden configurations are shared with determinism_test.cpp via
// sim_fingerprints.h; runs here keep the suite in the PR fast tier
// (label: adversary).

#include "sim/adversary.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <stdexcept>
#include <string>

#include "load/open_loop.h"
#include "load/trace_reader.h"
#include "sim/invariants.h"
#include "sim_fingerprints.h"

namespace dsf {
namespace {

using simtest::fingerprint;

/// Runs `Sim(config)` twice — plain, and with a disabled plan attached
/// plus the checker — and requires identical fingerprints, a clean
/// checker, and an entirely idle adversary layer.
template <typename Sim, typename Config>
void expect_noop_adversary_layer(const Config& config) {
  const auto baseline = fingerprint(Sim(config).run());

  sim::InvariantChecker checker;
  Sim sim(config);
  sim.set_adversary(sim::AdversaryPlan{});
  sim.attach_checker(&checker);
  const auto armed = fingerprint(sim.run());

  EXPECT_EQ(baseline.value(), armed.value())
      << "disabled adversary plan perturbed the run";

  const sim::AdversaryStats& s = sim.adversary_stats();
  EXPECT_EQ(s.abusers, 0u);
  EXPECT_EQ(s.free_riders, 0u);
  EXPECT_EQ(s.abuse_queries, 0u);
  EXPECT_EQ(s.outage_victims, 0u);
  EXPECT_EQ(s.storm_kicks, 0u);
  EXPECT_TRUE(sim.abusers().empty());
  EXPECT_EQ(sim.abuse_ledger().stats().total(), 0u);

  checker.check_overlay(sim.overlay());
  checker.check_ledger(sim.ledger());
  checker.check_abuse(s, sim.abuse_ledger(), sim.ledger());
  checker.check_abuser_overlay(sim.overlay(), sim.abusers());
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GT(checker.events_seen(), 0u)
      << "checker attached but no traffic was traced";
}

TEST(AdversaryGolden, GnutellaDisabledPlanIsNoop) {
  expect_noop_adversary_layer<gnutella::Simulation>(
      simtest::golden_gnutella_config());
}

TEST(AdversaryGolden, DigLibDisabledPlanIsNoop) {
  expect_noop_adversary_layer<diglib::DigLibSim>(
      simtest::golden_diglib_config());
}

TEST(AdversaryGolden, OlapDisabledPlanIsNoop) {
  expect_noop_adversary_layer<olap::OlapSim>(simtest::golden_olap_config());
}

TEST(AdversaryGolden, WebCacheDisabledPlanIsNoop) {
  expect_noop_adversary_layer<webcache::WebCacheSim>(
      simtest::golden_webcache_config());
}

// --- behavioral pins (armed adversities must bite, and stay clean) -------

/// A shortened golden gnutella configuration: armed adversities multiply
/// the event count, so the behavioral pins trade horizon for wall-clock
/// while keeping the golden population and catalog.
gnutella::Config adversarial_gnutella_config() {
  auto c = simtest::golden_gnutella_config();
  c.sim_hours = 1.0;
  c.warmup_hours = 0.25;
  return c;
}

/// Full certification battery for an armed gnutella run.
void expect_certified(gnutella::Simulation& sim,
                      sim::InvariantChecker& checker) {
  checker.check_overlay(sim.overlay());
  checker.check_ledger(sim.ledger());
  checker.check_abuse(sim.adversary_stats(), sim.abuse_ledger(), sim.ledger());
  checker.check_abuser_overlay(sim.overlay(), sim.abusers());
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(AdversaryBehavior, AbusersSprayAttributedTraffic) {
  const auto config = adversarial_gnutella_config();
  const auto baseline = fingerprint(gnutella::Simulation(config).run());

  sim::AdversaryPlan plan;
  plan.abuser_fraction = 0.1;
  plan.abuse_rate_per_s = 0.02;  // 25 abusers * 0.02 q/s over the horizon

  sim::InvariantChecker checker;
  gnutella::Simulation sim(config);
  sim.set_adversary(plan);
  sim.attach_checker(&checker);
  const auto armed = fingerprint(sim.run());

  const sim::AdversaryStats& s = sim.adversary_stats();
  EXPECT_EQ(s.abusers, 25u);  // llround(0.1 * 250)
  EXPECT_EQ(sim.abusers().size(), 25u);
  EXPECT_GT(s.abuse_queries, 0u);
  EXPECT_LE(s.abuse_hits, s.abuse_queries);
  // The blast radius is real traffic, attributed: a non-empty strict
  // subset of the run ledger.
  EXPECT_GT(sim.abuse_ledger().stats().total(), 0u);
  EXPECT_LT(sim.abuse_ledger().stats().total(), sim.ledger().stats().total());
  EXPECT_NE(baseline.value(), armed.value())
      << "an armed abuse spray must perturb the trajectory";
  expect_certified(sim, checker);
}

TEST(AdversaryBehavior, FreeRidersDepressTheHitRatio) {
  const auto config = adversarial_gnutella_config();
  const auto base = gnutella::Simulation(config).run();
  const double base_ratio =
      static_cast<double>(base.total_hits()) /
      static_cast<double>(base.queries_issued);

  sim::AdversaryPlan plan;
  plan.free_rider_fraction = 0.5;

  sim::InvariantChecker checker;
  gnutella::Simulation sim(config);
  sim.set_adversary(plan);
  sim.attach_checker(&checker);
  const auto r = sim.run();
  const double ratio = static_cast<double>(r.total_hits()) /
                       static_cast<double>(r.queries_issued);

  EXPECT_GT(sim.adversary_stats().free_riders, 0u);
  EXPECT_LT(ratio, base_ratio)
      << "half the population serving nothing must depress the hit ratio";
  expect_certified(sim, checker);
}

TEST(AdversaryBehavior, RegionalOutageCrashesTheClass) {
  const auto config = adversarial_gnutella_config();

  sim::AdversaryPlan plan;
  plan.outage_class = 0;  // 56K, the most populous class
  plan.outage_at_s = 1800.0;

  sim::InvariantChecker checker;
  gnutella::Simulation sim(config);
  sim.set_adversary(plan);
  sim.attach_checker(&checker);
  sim.run();

  const sim::AdversaryStats& s = sim.adversary_stats();
  EXPECT_GT(s.outage_victims, 0u);
  // Every victim crashed through the traced crash path, like CrashModel
  // victims: the checker saw each one and tracks the dangling entries.
  EXPECT_EQ(checker.crashes_seen(), s.outage_victims);
  expect_certified(sim, checker);
}

TEST(AdversaryBehavior, ChurnStormDeliversParetoKicks) {
  const auto config = adversarial_gnutella_config();
  const auto baseline = fingerprint(gnutella::Simulation(config).run());

  sim::AdversaryPlan plan;
  plan.storm_rate_per_s = 0.05;  // ~180 kicks over the hour
  plan.storm_pareto_shape = 1.5;
  plan.storm_offline_mean_s = 600.0;

  sim::InvariantChecker checker;
  gnutella::Simulation sim(config);
  sim.set_adversary(plan);
  sim.attach_checker(&checker);
  const auto armed = fingerprint(sim.run());

  EXPECT_GT(sim.adversary_stats().storm_kicks, 0u);
  EXPECT_NE(baseline.value(), armed.value())
      << "forced log-offs must perturb the trajectory";
  expect_certified(sim, checker);
}

TEST(AdversaryBehavior, CapacityBoundsCapEveryDegree) {
  auto config = adversarial_gnutella_config();
  config.dynamic = true;

  sim::AdversaryPlan plan;
  plan.degree_bound = {2, 2, 2};  // well under the configured degree

  sim::InvariantChecker checker;
  gnutella::Simulation sim(config);
  sim.set_adversary(plan);
  sim.attach_checker(&checker);
  sim.run();

  for (net::NodeId u = 0; u < sim.overlay().size(); ++u)
    ASSERT_LE(sim.overlay().lists(u).out().size(), 2u)
        << "peer " << u << " exceeded its capacity bound";
  expect_certified(sim, checker);
}

TEST(AdversaryBehavior, BenefitWeightsSteerReconfiguration) {
  auto config = adversarial_gnutella_config();
  config.dynamic = true;
  const auto baseline = fingerprint(gnutella::Simulation(config).run());

  sim::AdversaryPlan plan;
  plan.benefit_weight = {0.25, 1.0, 4.0};  // value LAN answers, discount 56K

  gnutella::Simulation sim(config);
  sim.set_adversary(plan);
  const auto weighted = fingerprint(sim.run());

  EXPECT_NE(baseline.value(), weighted.value())
      << "per-class benefit weights must steer the dynamic scheme";
}

// --- plan validation ------------------------------------------------------

TEST(AdversaryPlan, ValidateRejectsBadKnobs) {
  sim::AdversaryPlan p;
  p.abuser_fraction = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = sim::AdversaryPlan{};
  p.free_rider_fraction = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = sim::AdversaryPlan{};
  p.outage_class = 3;  // only three classes exist
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = sim::AdversaryPlan{};
  p.storm_rate_per_s = 0.1;
  p.storm_pareto_shape = 1.0;  // infinite mean
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = sim::AdversaryPlan{};
  p.abuser_fraction = 0.1;
  p.abuse_rate_per_s = 1.0;
  p.abuse_end_s = -5.0;  // inverted window
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = sim::AdversaryPlan{};
  p.benefit_weight[1] = -2.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  EXPECT_NO_THROW(sim::AdversaryPlan{}.validate());
}

// --- capture round-trip ---------------------------------------------------

TEST(CaptureTrace, RoundTripReproducesOfferedAndAdmitted) {
  // Small and quick: the round trip is about exactness, not scale.
  auto config = simtest::golden_gnutella_config();
  config.num_users = 100;
  config.sim_hours = 0.5;
  config.warmup_hours = 0.1;

  // Unique path per process: parallel ctest shards must not share it.
  const std::string path = testing::TempDir() + "dsf_capture_roundtrip_" +
                           std::to_string(::getpid()) + ".trace";

  gnutella::Simulation captured(config);
  captured.set_capture_trace(path);
  captured.run();
  const std::uint64_t arrivals = captured.captured_arrivals();
  ASSERT_GT(arrivals, 0u);

  // The file parses under the open-loop trace grammar and holds exactly
  // the captured arrivals.
  const auto trace = load::read_trace(path);
  ASSERT_EQ(trace.size(), arrivals);
  for (const auto& a : trace) {
    ASSERT_GE(a.time_s, 0.0);
    ASSERT_GE(a.peer, 0);
    ASSERT_LT(a.peer, static_cast<std::int64_t>(config.num_users));
  }

  // Replay through the trace-driven injector: the same session
  // trajectory is live (same seed, closed-loop workload untouched by
  // injection), so every captured arrival lands on an on-line peer and
  // offered == admitted == captured, with zero rejections.
  gnutella::Simulation replay(config);
  load::OpenLoopOptions o;
  o.enabled = true;
  o.trace = trace;
  o.admission_cap = 1u << 20;  // never the limiting factor
  replay.set_open_loop(std::move(o));
  replay.run();

  const load::LoadStats& s = replay.load_stats();
  EXPECT_EQ(s.offered, arrivals);
  EXPECT_EQ(s.admitted, arrivals);
  EXPECT_EQ(s.rejected, 0u);

  std::remove(path.c_str());
}

TEST(CaptureTrace, MutuallyExclusiveWithShards) {
  gnutella::Simulation sharded(simtest::golden_gnutella_config());
  sharded.set_shards(2);
  EXPECT_THROW(sharded.set_capture_trace("/tmp/never-written.trace"),
               std::invalid_argument);

  gnutella::Simulation serial(simtest::golden_gnutella_config());
  EXPECT_THROW(serial.set_capture_trace(""), std::invalid_argument);
}

TEST(AdversaryPlan, MutuallyExclusiveWithShards) {
  gnutella::Simulation sharded(simtest::golden_gnutella_config());
  sharded.set_shards(2);
  sim::AdversaryPlan plan;
  plan.free_rider_fraction = 0.5;
  EXPECT_THROW(sharded.set_adversary(plan), std::invalid_argument);
}

}  // namespace
}  // namespace dsf
