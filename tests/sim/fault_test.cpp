// Fault-injection layer: plan validation, the zero-draw guarantees that
// make an armed-but-idle layer a true no-op, per-type drop/duplicate/
// delay behaviour through the engine's unified send(), the crash model's
// no-cleanup semantics, and small adversarial end-to-end runs of every
// scenario simulator with the invariant checker attached.
#include "sim/fault.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "diglib/diglib_sim.h"
#include "gnutella/simulation.h"
#include "olap/olap_sim.h"
#include "sim/engine.h"
#include "sim/invariants.h"
#include "webcache/webcache_sim.h"

namespace dsf::sim {
namespace {

class TestEngine : public OverlayEngine {
 public:
  explicit TestEngine(EngineConfig cfg) : OverlayEngine(std::move(cfg)) {}

  using OverlayEngine::begin_faulty_search;
  using OverlayEngine::fault_layer_active;
  using OverlayEngine::run_until_horizon;
  using OverlayEngine::send;
  using OverlayEngine::transmit;
};

EngineConfig small_config() {
  EngineConfig cfg;
  cfg.name = "fault-test";
  cfg.num_nodes = 8;
  cfg.seed = 42;
  cfg.relation = core::RelationKind::kAsymmetric;
  cfg.out_capacity = 3;
  cfg.in_capacity = 8;
  cfg.sim_hours = 1.0;
  cfg.warmup_hours = 0.0;
  return cfg;
}

// --- plan construction ---------------------------------------------------

TEST(FaultPlan, RejectsInvalidRules) {
  FaultPlan plan;
  FaultRule r;

  r.drop_prob = -0.1;
  EXPECT_THROW(plan.set_rule(net::MessageType::kQuery, r),
               std::invalid_argument);
  r.drop_prob = 1.5;
  EXPECT_THROW(plan.set_rule(net::MessageType::kQuery, r),
               std::invalid_argument);

  r = FaultRule{};
  r.drop_prob = 0.6;
  r.duplicate_prob = 0.5;  // sum > 1: the single draw cannot partition
  EXPECT_THROW(plan.set_rule(net::MessageType::kQuery, r),
               std::invalid_argument);

  r = FaultRule{};
  r.delay_prob = 0.1;
  r.extra_delay_s = -1.0;
  EXPECT_THROW(plan.set_rule(net::MessageType::kQuery, r),
               std::invalid_argument);

  r = FaultRule{};
  r.drop_prob = 0.1;
  r.window_start_s = 50.0;
  r.window_end_s = 10.0;  // inverted window
  EXPECT_THROW(plan.set_rule(net::MessageType::kQuery, r),
               std::invalid_argument);

  EXPECT_TRUE(plan.empty()) << "rejected rules must not arm the plan";
}

TEST(FaultPlan, EmptyAndTrivialRulesStayEmpty) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.set_rule(net::MessageType::kQuery, FaultRule{});  // all-zero probs
  EXPECT_TRUE(plan.empty());

  FaultRule r;
  r.drop_prob = 0.25;
  plan.set_rule(net::MessageType::kQuery, r);
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(plan.targets(net::MessageType::kQuery));
  EXPECT_FALSE(plan.targets(net::MessageType::kPing));
}

// --- the zero-draw guarantees --------------------------------------------

TEST(FaultPlan, DecideConsumesNoDrawForUntargetedType) {
  FaultPlan plan;
  FaultRule r;
  r.drop_prob = 1.0;
  plan.set_rule(net::MessageType::kQuery, r);

  des::Rng lane = make_fault_lane(7);
  des::Rng reference = lane;
  const auto d = plan.decide(net::MessageType::kPing, 0.0, lane);
  EXPECT_FALSE(d.drop);
  EXPECT_EQ(lane.next(), reference.next()) << "untargeted decide drew";
}

TEST(FaultPlan, DecideConsumesNoDrawOutsideTheWindow) {
  FaultPlan plan;
  FaultRule r;
  r.drop_prob = 1.0;
  r.window_start_s = 10.0;
  r.window_end_s = 20.0;
  plan.set_rule(net::MessageType::kQuery, r);

  des::Rng lane = make_fault_lane(7);
  des::Rng reference = lane;
  EXPECT_FALSE(plan.decide(net::MessageType::kQuery, 5.0, lane).drop);
  EXPECT_FALSE(plan.decide(net::MessageType::kQuery, 20.0, lane).drop);
  EXPECT_EQ(lane.next(), reference.next()) << "out-of-window decide drew";

  des::Rng lane2 = make_fault_lane(7);
  EXPECT_TRUE(plan.decide(net::MessageType::kQuery, 15.0, lane2).drop);
}

TEST(FaultPlan, WindowBoundariesAreInclusiveStartExclusiveEnd) {
  // Pins the documented half-open [window_start_s, window_end_s)
  // semantics at the exact boundary instants: an event at precisely
  // window_start_s is inside (fires AND consumes its one draw), an event
  // at precisely window_end_s is outside (inert AND consumes zero draws).
  // The draw count is verified on the raw Rng state words, not just the
  // decision, so a refactor that keeps the decision but moves the draw
  // outside the window check still fails here.
  FaultPlan plan;
  FaultRule r;
  r.drop_prob = 1.0;
  r.window_start_s = 10.0;
  r.window_end_s = 20.0;
  plan.set_rule(net::MessageType::kQuery, r);

  des::Rng lane = make_fault_lane(7);
  const auto before_start = lane.state();
  EXPECT_TRUE(plan.decide(net::MessageType::kQuery, 10.0, lane).drop)
      << "an event at exactly window_start_s must be inside the window";
  EXPECT_NE(lane.state(), before_start)
      << "an in-window decide must consume exactly its draw";

  const auto before_end = lane.state();
  EXPECT_FALSE(plan.decide(net::MessageType::kQuery, 20.0, lane).drop)
      << "an event at exactly window_end_s must be outside the window";
  EXPECT_EQ(lane.state(), before_end)
      << "an out-of-window decide must not touch the lane";

  // Just inside the end: the last representable instant before
  // window_end_s still fires.
  const double just_inside =
      std::nextafter(20.0, 0.0);
  const auto before_inside = lane.state();
  EXPECT_TRUE(plan.decide(net::MessageType::kQuery, just_inside, lane).drop);
  EXPECT_NE(lane.state(), before_inside);
}

// --- per-type behaviour through the unified send() ------------------------

TEST(FaultLayer, DropsEveryTargetedTypeThroughSend) {
  for (int i = 0; i < net::kNumMessageTypes; ++i) {
    const auto type = static_cast<net::MessageType>(i);
    TestEngine e(small_config());
    FaultPlan plan;
    FaultRule r;
    r.drop_prob = 1.0;
    plan.set_rule(type, r);
    e.set_fault_plan(plan);
    ASSERT_TRUE(e.fault_layer_active());

    bool delivered = false;
    e.send(0, 1, type, [&] { delivered = true; });
    e.simulator().run();

    EXPECT_FALSE(delivered) << net::to_string(type);
    EXPECT_EQ(e.ledger().dropped(type), 1u) << net::to_string(type);
    EXPECT_EQ(e.ledger().delivered(type), 0u) << net::to_string(type);
    EXPECT_EQ(e.traffic().total(type), 1u) << net::to_string(type);
  }
}

TEST(FaultLayer, DuplicatesDeliverTwiceAndCountTwice) {
  TestEngine e(small_config());
  FaultPlan plan;
  FaultRule r;
  r.duplicate_prob = 1.0;
  plan.set_rule(net::MessageType::kPing, r);
  e.set_fault_plan(plan);

  int deliveries = 0;
  e.send(0, 1, net::MessageType::kPing, [&] { ++deliveries; });
  e.simulator().run();

  EXPECT_EQ(deliveries, 2);
  // Both copies were put on the wire and both arrived: conservation holds
  // with sent == delivered == 2.
  EXPECT_EQ(e.traffic().total(net::MessageType::kPing), 2u);
  EXPECT_EQ(e.ledger().delivered(net::MessageType::kPing), 2u);
  EXPECT_EQ(e.ledger().dropped(net::MessageType::kPing), 0u);
}

TEST(FaultLayer, ExtraDelayPostponesDelivery) {
  TestEngine e(small_config());
  FaultPlan plan;
  FaultRule r;
  r.delay_prob = 1.0;
  r.extra_delay_s = 5.0;
  plan.set_rule(net::MessageType::kPong, r);
  e.set_fault_plan(plan);

  double delivered_at = -1.0;
  e.send(0, 1, net::MessageType::kPong,
         [&] { delivered_at = e.simulator().now(); });
  e.simulator().run();

  EXPECT_GE(delivered_at, 5.0) << "extra delay was not applied";
  EXPECT_EQ(e.ledger().delivered(net::MessageType::kPong), 1u);
}

TEST(FaultLayer, SynchronousTransmitResolvesFates) {
  TestEngine e(small_config());
  FaultPlan plan;
  FaultRule r;
  r.drop_prob = 1.0;
  plan.set_rule(net::MessageType::kQuery, r);
  e.set_fault_plan(plan);

  e.begin_faulty_search(3);
  const auto dropped = e.transmit(net::MessageType::kQuery, 0, 1, 3);
  EXPECT_FALSE(dropped.deliver);
  EXPECT_EQ(e.ledger().dropped(net::MessageType::kQuery), 1u);

  // Untargeted type: clean pass-through.
  const auto clean = e.transmit(net::MessageType::kQueryReply, 1, 0, -1);
  EXPECT_TRUE(clean.deliver);
  EXPECT_FALSE(clean.duplicate);
  EXPECT_DOUBLE_EQ(clean.extra_delay_s, 0.0);
  EXPECT_EQ(e.ledger().delivered(net::MessageType::kQueryReply), 1u);
}

// --- crashes -------------------------------------------------------------

TEST(FaultLayer, CrashedPeerDropsArrivingCopies) {
  TestEngine e(small_config());
  InvariantChecker checker;
  e.attach_checker(&checker);

  e.crash_node(1);
  EXPECT_TRUE(e.node_dead(1));
  EXPECT_FALSE(e.node_dead(0));
  EXPECT_EQ(e.crashes(), 1u);
  e.crash_node(1);  // idempotent: a dead peer cannot crash again
  EXPECT_EQ(e.crashes(), 1u);

  bool delivered = false;
  e.send(0, 1, net::MessageType::kQuery, [&] { delivered = true; });
  e.simulator().run();

  EXPECT_FALSE(delivered);
  EXPECT_EQ(e.ledger().dropped(net::MessageType::kQuery), 1u);
  // The checker saw the crash and the drop — and no dead delivery.
  EXPECT_EQ(checker.crashes_seen(), 1u);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(FaultLayer, CrashModelSchedulesPoissonCrashes) {
  auto cfg = small_config();
  TestEngine e(cfg);
  CrashModel crashes;
  crashes.rate_per_hour = 20.0;  // ~20 expected over the 1 h horizon
  crashes.max_crashes = 5;
  e.set_crash_model(crashes);
  e.run_until_horizon();

  EXPECT_EQ(e.crashes(), 5u) << "rate 20/h over 1 h must hit the cap of 5";
  std::size_t dead = 0;
  for (net::NodeId u = 0; u < e.num_nodes(); ++u)
    if (e.node_dead(u)) ++dead;
  EXPECT_EQ(dead, 5u);
}

TEST(FaultLayer, CrashWindowConfinesCrashes) {
  auto cfg = small_config();
  TestEngine e(cfg);
  std::vector<double> crash_times;
  e.set_trace_hook([&](const TraceEvent& ev) {
    if (ev.kind == TraceKind::kCrash) crash_times.push_back(ev.time_s);
  });
  CrashModel crashes;
  crashes.rate_per_hour = 60.0;
  crashes.start_s = 1000.0;
  crashes.end_s = 2000.0;
  e.set_crash_model(crashes);
  e.run_until_horizon();

  ASSERT_FALSE(crash_times.empty());
  for (double t : crash_times) {
    EXPECT_GE(t, 1000.0);
    EXPECT_LT(t, 2000.0);
  }
}

// --- end-to-end: every scenario under loss + crashes, checker-clean ------

template <typename Sim, typename Config>
void expect_adversarial_run_clean(const Config& config, double drop) {
  FaultPlan plan;
  FaultRule r;
  r.drop_prob = drop;
  r.duplicate_prob = 0.05;
  r.delay_prob = 0.05;
  plan.set_rule_all(r);

  CrashModel crashes;
  crashes.rate_per_hour = 4.0;
  crashes.max_crashes = 3;

  InvariantChecker checker;
  Sim sim(config);
  sim.set_fault_plan(plan);
  sim.set_crash_model(crashes);
  sim.attach_checker(&checker);
  sim.run();

  checker.check_overlay(sim.overlay());
  checker.check_ledger(sim.ledger());
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GT(sim.ledger().total_dropped(), 0u)
      << "a lossy run must actually lose messages";
  EXPECT_GT(checker.events_seen(), 0u);
}

TEST(FaultAdversarial, GnutellaLossAndCrashesCheckerClean) {
  gnutella::Config c;
  c.num_users = 80;
  c.sim_hours = 1.0;
  c.warmup_hours = 0.2;
  c.seed = 4242;
  expect_adversarial_run_clean<gnutella::Simulation>(c, 0.2);
}

TEST(FaultAdversarial, GnutellaCrashMidQueryWindow) {
  // Crashes confined to the middle of the horizon: peers die while
  // queries and reconfigurations are in full swing, and the overlay must
  // keep every invariant (dangling entries are legal; deliveries to the
  // dead are not).
  gnutella::Config c;
  c.num_users = 80;
  c.sim_hours = 1.0;
  c.warmup_hours = 0.2;
  c.seed = 77;

  CrashModel crashes;
  crashes.rate_per_hour = 30.0;
  crashes.start_s = 1200.0;
  crashes.end_s = 2400.0;
  crashes.max_crashes = 8;

  InvariantChecker checker;
  gnutella::Simulation sim(c);
  sim.set_crash_model(crashes);
  sim.attach_checker(&checker);
  sim.run();

  checker.check_overlay(sim.overlay());
  checker.check_ledger(sim.ledger());
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GT(sim.crashes(), 0u);
}

TEST(FaultAdversarial, DigLibLossAndCrashesCheckerClean) {
  diglib::DigLibConfig c;
  c.num_repositories = 16;
  c.sim_hours = 0.4;
  c.warmup_hours = 0.1;
  c.seed = 4242;
  expect_adversarial_run_clean<diglib::DigLibSim>(c, 0.15);
}

TEST(FaultAdversarial, OlapLossAndCrashesCheckerClean) {
  olap::OlapConfig c;
  c.num_peers = 12;
  c.sim_hours = 0.4;
  c.warmup_hours = 0.1;
  c.seed = 4242;
  expect_adversarial_run_clean<olap::OlapSim>(c, 0.15);
}

TEST(FaultAdversarial, WebCacheLossAndCrashesCheckerClean) {
  webcache::WebCacheConfig c;
  c.num_proxies = 16;
  c.sim_hours = 0.4;
  c.warmup_hours = 0.1;
  c.seed = 4242;
  expect_adversarial_run_clean<webcache::WebCacheSim>(c, 0.15);
}

TEST(FaultAdversarial, LossReducesGnutellaHits) {
  gnutella::Config c;
  c.num_users = 100;
  c.sim_hours = 1.0;
  c.warmup_hours = 0.2;
  c.seed = 11;

  const auto baseline = gnutella::Simulation(c).run();

  FaultPlan plan;
  FaultRule r;
  r.drop_prob = 0.3;
  plan.set_rule(net::MessageType::kQuery, r);
  plan.set_rule(net::MessageType::kQueryReply, r);
  gnutella::Simulation lossy_sim(c);
  lossy_sim.set_fault_plan(plan);
  const auto lossy = lossy_sim.run();

  EXPECT_LT(lossy.total_hits(), baseline.total_hits())
      << "30% query/reply loss must cost hits";
  EXPECT_GT(lossy.total_hits(), 0u);
}

}  // namespace
}  // namespace dsf::sim
