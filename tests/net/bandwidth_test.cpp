#include "net/bandwidth.h"

#include <gtest/gtest.h>

namespace dsf::net {
namespace {

TEST(Bandwidth, PaperDelayMeans) {
  EXPECT_DOUBLE_EQ(mean_one_way_delay_s(BandwidthClass::kModem56K), 0.300);
  EXPECT_DOUBLE_EQ(mean_one_way_delay_s(BandwidthClass::kCable), 0.150);
  EXPECT_DOUBLE_EQ(mean_one_way_delay_s(BandwidthClass::kLan), 0.070);
}

TEST(Bandwidth, CapacityOrdering) {
  EXPECT_LT(bandwidth_kbps(BandwidthClass::kModem56K),
            bandwidth_kbps(BandwidthClass::kCable));
  EXPECT_LT(bandwidth_kbps(BandwidthClass::kCable),
            bandwidth_kbps(BandwidthClass::kLan));
}

TEST(Bandwidth, SlowerOfPicksTheSlowerClass) {
  EXPECT_EQ(slower_of(BandwidthClass::kModem56K, BandwidthClass::kLan),
            BandwidthClass::kModem56K);
  EXPECT_EQ(slower_of(BandwidthClass::kLan, BandwidthClass::kCable),
            BandwidthClass::kCable);
  EXPECT_EQ(slower_of(BandwidthClass::kLan, BandwidthClass::kLan),
            BandwidthClass::kLan);
}

TEST(Bandwidth, SlowerOfIsCommutative) {
  for (int a = 0; a < kNumBandwidthClasses; ++a)
    for (int b = 0; b < kNumBandwidthClasses; ++b)
      EXPECT_EQ(slower_of(static_cast<BandwidthClass>(a),
                          static_cast<BandwidthClass>(b)),
                slower_of(static_cast<BandwidthClass>(b),
                          static_cast<BandwidthClass>(a)));
}

TEST(Bandwidth, SlowerClassHasHigherDelay) {
  for (int a = 0; a < kNumBandwidthClasses - 1; ++a)
    EXPECT_GT(mean_one_way_delay_s(static_cast<BandwidthClass>(a)),
              mean_one_way_delay_s(static_cast<BandwidthClass>(a + 1)));
}

TEST(Bandwidth, Names) {
  EXPECT_EQ(to_string(BandwidthClass::kModem56K), "56K-modem");
  EXPECT_EQ(to_string(BandwidthClass::kCable), "cable");
  EXPECT_EQ(to_string(BandwidthClass::kLan), "LAN");
}

}  // namespace
}  // namespace dsf::net
