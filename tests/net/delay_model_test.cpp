#include "net/delay_model.h"

#include <gtest/gtest.h>

#include <array>

namespace dsf::net {
namespace {

TEST(DelayModel, AssignsAllNodesAClass) {
  des::Rng rng(1);
  DelayModel m(2000, rng);
  EXPECT_EQ(m.size(), 2000u);
  for (NodeId i = 0; i < 2000; ++i) {
    const int c = static_cast<int>(m.node_class(i));
    EXPECT_GE(c, 0);
    EXPECT_LT(c, kNumBandwidthClasses);
  }
}

TEST(DelayModel, ClassesAreApproximatelyUniform) {
  des::Rng rng(2);
  DelayModel m(30000, rng);
  std::array<int, kNumBandwidthClasses> counts{};
  for (NodeId i = 0; i < 30000; ++i) ++counts[static_cast<int>(m.node_class(i))];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(DelayModel, ExplicitAssignmentRespected) {
  DelayModel m({BandwidthClass::kLan, BandwidthClass::kModem56K});
  EXPECT_EQ(m.node_class(0), BandwidthClass::kLan);
  EXPECT_EQ(m.node_class(1), BandwidthClass::kModem56K);
}

TEST(DelayModel, EmptyAssignmentThrows) {
  EXPECT_THROW(DelayModel(std::vector<BandwidthClass>{}),
               std::invalid_argument);
}

TEST(DelayModel, SlowerEndpointGovernsMean) {
  DelayModel m({BandwidthClass::kLan, BandwidthClass::kModem56K,
                BandwidthClass::kCable});
  EXPECT_DOUBLE_EQ(m.mean_delay_s(0, 1), 0.300);  // LAN–modem → modem
  EXPECT_DOUBLE_EQ(m.mean_delay_s(0, 2), 0.150);  // LAN–cable → cable
  EXPECT_DOUBLE_EQ(m.mean_delay_s(1, 2), 0.300);  // modem–cable → modem
}

TEST(DelayModel, DelayIsSymmetricInDistribution) {
  DelayModel m({BandwidthClass::kLan, BandwidthClass::kModem56K});
  EXPECT_DOUBLE_EQ(m.mean_delay_s(0, 1), m.mean_delay_s(1, 0));
}

TEST(DelayModel, SampledDelaysRespectTruncation) {
  des::Rng rng(3);
  DelayModel m({BandwidthClass::kLan, BandwidthClass::kLan});
  for (int i = 0; i < 20000; ++i) {
    const double d = m.sample_delay_s(0, 1, rng);
    EXPECT_GE(d, 0.010);
    EXPECT_LE(d, 0.140);  // 2 × 70 ms
  }
}

TEST(DelayModel, SampledMeanMatchesClass) {
  des::Rng rng(4);
  DelayModel m({BandwidthClass::kModem56K, BandwidthClass::kCable});
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += m.sample_delay_s(0, 1, rng);
  EXPECT_NEAR(sum / n, 0.300, 0.002);
}

TEST(DelayModel, BandwidthWeightTracksClass) {
  DelayModel m({BandwidthClass::kModem56K, BandwidthClass::kLan});
  EXPECT_DOUBLE_EQ(m.bandwidth_weight(0), 56.0);
  EXPECT_DOUBLE_EQ(m.bandwidth_weight(1), 10000.0);
}

}  // namespace
}  // namespace dsf::net
