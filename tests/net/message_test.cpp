#include "net/message.h"

#include <gtest/gtest.h>

namespace dsf::net {
namespace {

TEST(MessageStats, StartsAtZero) {
  MessageStats s;
  EXPECT_EQ(s.total(), 0u);
  for (int i = 0; i < kNumMessageTypes; ++i)
    EXPECT_EQ(s.total(static_cast<MessageType>(i)), 0u);
}

TEST(MessageStats, CountsByType) {
  MessageStats s;
  s.count(MessageType::kQuery, 10);
  s.count(MessageType::kQuery);
  s.count(MessageType::kEviction, 2);
  EXPECT_EQ(s.total(MessageType::kQuery), 11u);
  EXPECT_EQ(s.total(MessageType::kEviction), 2u);
  EXPECT_EQ(s.total(), 13u);
}

TEST(MessageStats, SearchVsControlSplit) {
  MessageStats s;
  s.count(MessageType::kQuery, 100);
  s.count(MessageType::kQueryReply, 20);
  s.count(MessageType::kInvitation, 5);
  s.count(MessageType::kPing, 3);
  EXPECT_EQ(s.search_traffic(), 120u);
  EXPECT_EQ(s.control_traffic(), 8u);
}

TEST(MessageStats, ResetClears) {
  MessageStats s;
  s.count(MessageType::kPong, 7);
  s.reset();
  EXPECT_EQ(s.total(), 0u);
}

TEST(MessageStats, MergeAccumulates) {
  MessageStats a, b;
  a.count(MessageType::kQuery, 3);
  b.count(MessageType::kQuery, 4);
  b.count(MessageType::kEviction, 1);
  a += b;
  EXPECT_EQ(a.total(MessageType::kQuery), 7u);
  EXPECT_EQ(a.total(MessageType::kEviction), 1u);
}

TEST(MessageTypes, AllHaveNames) {
  for (int i = 0; i < kNumMessageTypes; ++i)
    EXPECT_FALSE(to_string(static_cast<MessageType>(i)).empty());
}

}  // namespace
}  // namespace dsf::net
