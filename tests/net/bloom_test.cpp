#include "net/bloom.h"

#include <gtest/gtest.h>

#include <cmath>

#include "des/rng.h"

namespace dsf::net {
namespace {

TEST(BloomFilter, RejectsBadParameters) {
  EXPECT_THROW(BloomFilter(0, 0.01), std::invalid_argument);
  EXPECT_THROW(BloomFilter(100, 0.0), std::invalid_argument);
  EXPECT_THROW(BloomFilter(100, 1.0), std::invalid_argument);
  EXPECT_THROW(BloomFilter(0, 3), std::invalid_argument);
  EXPECT_THROW(BloomFilter(64, 0), std::invalid_argument);
}

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter f(1000, 0.01);
  for (std::uint64_t x = 0; x < 1000; ++x) f.insert(x * 7919);
  for (std::uint64_t x = 0; x < 1000; ++x)
    EXPECT_TRUE(f.might_contain(x * 7919));
}

TEST(BloomFilter, FalsePositiveRateNearTarget) {
  BloomFilter f(1000, 0.01);
  for (std::uint64_t x = 0; x < 1000; ++x) f.insert(x);
  int fp = 0;
  const int probes = 100000;
  for (int i = 0; i < probes; ++i)
    fp += f.might_contain(1'000'000 + static_cast<std::uint64_t>(i));
  const double rate = static_cast<double>(fp) / probes;
  EXPECT_LT(rate, 0.02);   // within 2× of the 1% target
  EXPECT_GT(rate, 0.002);  // and not vacuously tiny (filter actually sized)
}

TEST(BloomFilter, EmptyFilterContainsNothing) {
  BloomFilter f(100, 0.01);
  int hits = 0;
  for (std::uint64_t x = 0; x < 1000; ++x) hits += f.might_contain(x);
  EXPECT_EQ(hits, 0);
  EXPECT_EQ(f.popcount(), 0u);
}

TEST(BloomFilter, ClearResets) {
  BloomFilter f(100, 0.01);
  f.insert(42);
  EXPECT_TRUE(f.might_contain(42));
  f.clear();
  EXPECT_FALSE(f.might_contain(42));
}

TEST(BloomFilter, EstimatedItemsTracksInsertions) {
  BloomFilter f(1000, 0.01);
  des::Rng rng(1);
  for (int n = 0; n < 1000; ++n) f.insert(rng.next());
  EXPECT_NEAR(f.estimated_items(), 1000.0, 100.0);
}

TEST(BloomFilter, MergeIsUnion) {
  BloomFilter a(500, 0.01), b(500, 0.01);
  a.insert(1);
  b.insert(2);
  a.merge(b);
  EXPECT_TRUE(a.might_contain(1));
  EXPECT_TRUE(a.might_contain(2));
}

TEST(BloomFilter, MergeGeometryMismatchThrows) {
  BloomFilter a(128, 3), b(256, 3);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  BloomFilter c(128, 4);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(BloomFilter, DeterministicAcrossInstances) {
  BloomFilter a(512, 4), b(512, 4);
  a.insert(123456789);
  b.insert(123456789);
  for (std::uint64_t x = 0; x < 100; ++x)
    EXPECT_EQ(a.might_contain(x), b.might_contain(x));
}

// Property test against the Kirsch–Mitzenmacher analytical bound: for a
// filter with m bits, k hashes and n inserted keys, the false-positive
// probability is p = (1 - e^(-kn/m))^k.  The measured rate over a large
// disjoint probe set must stay within 2× of that bound across sizes and
// fill densities (and must not be vacuously small when enough false
// positives are expected — the filter has to actually be loaded).
TEST(BloomFilter, FalsePositiveRateWithinAnalyticalBound) {
  const struct {
    std::size_t expected_items;
    double fpp;
    double fill;  ///< fraction of expected_items actually inserted
  } kCases[] = {
      {1000, 0.01, 1.0},   // at design capacity
      {1000, 0.01, 0.5},   // half full: p drops far below the target
      {5000, 0.05, 1.0},   // larger, sloppier filter
      {200, 0.02, 1.0},    // small filter, tight target
      {1000, 0.001, 1.0},  // aggressive target
  };
  const int kProbes = 200'000;

  for (const auto& c : kCases) {
    BloomFilter f(c.expected_items, c.fpp);
    const auto n =
        static_cast<std::uint64_t>(c.fill * static_cast<double>(c.expected_items));
    // Inserted keys and probe keys are disjoint by construction, so every
    // positive probe is a false positive.
    for (std::uint64_t x = 0; x < n; ++x) f.insert(x);

    const double m = static_cast<double>(f.bit_count());
    const double k = static_cast<double>(f.hash_count());
    const double analytical =
        std::pow(1.0 - std::exp(-k * static_cast<double>(n) / m), k);

    int fp = 0;
    for (int i = 0; i < kProbes; ++i)
      fp += f.might_contain(1'000'000'000ULL + static_cast<std::uint64_t>(i));
    const double measured = static_cast<double>(fp) / kProbes;

    EXPECT_LE(measured, 2.0 * analytical)
        << "m=" << m << " k=" << k << " n=" << n
        << " analytical=" << analytical << " measured=" << measured;
    // Only bound from below when enough false positives are expected for
    // the estimate to be statistically meaningful.
    if (analytical * kProbes >= 50.0) {
      EXPECT_GE(measured, analytical / 4.0)
          << "m=" << m << " k=" << k << " n=" << n
          << " analytical=" << analytical << " measured=" << measured;
    }
  }
}

TEST(BloomFilter, DuplicateInsertIdempotent) {
  BloomFilter f(128, 3);
  f.insert(7);
  const auto pop = f.popcount();
  f.insert(7);
  EXPECT_EQ(f.popcount(), pop);
}

}  // namespace
}  // namespace dsf::net
