// Open-loop injection layer: determinism (disabled layer is a true
// no-op; same seed + schedule reproduces the report byte for byte),
// admission conservation certified by the invariant checker on every
// scenario simulator, and the engine-level option validation.
#include "load/open_loop.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "../sim/sim_fingerprints.h"
#include "load/report.h"
#include "load/schedule.h"
#include "metrics/json_emitter.h"
#include "sim/invariants.h"

namespace dsf::load {
namespace {

gnutella::Config small_gnutella() {
  gnutella::Config c;
  c.num_users = 100;
  c.catalog.num_songs = 5'000;
  c.sim_hours = 0.5;
  c.warmup_hours = 0.1;
  c.max_hops = 2;
  c.seed = 77;
  return c;
}

OpenLoopOptions constant_load(double qps, std::size_t cap,
                              double horizon_s) {
  OpenLoopOptions o;
  o.enabled = true;
  o.schedule = make_schedule(ScheduleKind::kConstant, qps, 1.0, horizon_s);
  o.admission_cap = cap;
  return o;
}

std::string report_json(const LoadStats& s, double measure_s) {
  std::ostringstream out;
  metrics::JsonEmitter j(out);
  j.begin_object();
  write_load_stats(j, s, measure_s);
  j.end_object();
  j.finish();
  return out.str();
}

// --- determinism ---------------------------------------------------------

TEST(OpenLoop, DisabledLayerLeavesClosedLoopByteIdentical) {
  // The contract that lets the layer ship compiled-in: a run that never
  // enables injection must be bit-identical to one that explicitly set a
  // disabled options block — zero extra events, zero extra RNG draws.
  const auto c = small_gnutella();
  const auto baseline = simtest::fingerprint(gnutella::Simulation(c).run());

  gnutella::Simulation sim(c);
  sim.set_open_loop(OpenLoopOptions{});  // enabled = false
  const auto with_layer = simtest::fingerprint(sim.run());
  EXPECT_EQ(baseline.value(), with_layer.value());

  const LoadStats& s = sim.load_stats();
  EXPECT_EQ(s.offered, 0u);
  EXPECT_EQ(s.admitted, 0u);
}

TEST(OpenLoop, SameSeedSameScheduleIsByteIdenticalReport) {
  const auto c = small_gnutella();
  const double horizon_s = c.sim_hours * 3600.0;
  const double measure_s = (c.sim_hours - c.warmup_hours) * 3600.0;

  auto run_once = [&] {
    gnutella::Simulation sim(c);
    sim.set_open_loop(constant_load(4.0, 4, horizon_s));
    sim.run();
    return report_json(sim.load_stats(), measure_s);
  };
  const std::string a = run_once();
  const std::string b = run_once();
  EXPECT_GT(a.size(), 0u);
  EXPECT_EQ(a, b);
}

TEST(OpenLoop, InjectionDoesNotDisturbClosedLoopWorkload) {
  // The injected stream rides its own RNG lane, so the closed-loop side
  // of the same run keeps issuing the same number of its own queries.
  const auto c = small_gnutella();
  const auto closed = gnutella::Simulation(c).run();

  gnutella::Simulation sim(c);
  sim.set_open_loop(constant_load(2.0, 4, c.sim_hours * 3600.0));
  const auto mixed = sim.run();
  EXPECT_EQ(closed.queries_issued, mixed.queries_issued);
}

// --- conservation on every scenario --------------------------------------

TEST(OpenLoop, GnutellaConservationCertifiedByChecker) {
  const auto c = small_gnutella();
  gnutella::Simulation sim(c);
  sim.set_open_loop(constant_load(5.0, 4, c.sim_hours * 3600.0));
  sim.run();
  const LoadStats& s = sim.load_stats();
  EXPECT_GT(s.offered, 0u);
  EXPECT_GT(s.completed, 0u);
  sim::InvariantChecker checker;
  checker.check_admission(s);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(OpenLoop, WebCacheConservationCertifiedByChecker) {
  auto c = simtest::golden_webcache_config();
  c.sim_hours = 0.5;
  webcache::WebCacheSim sim(c);
  sim.set_open_loop(constant_load(3.0, 4, c.sim_hours * 3600.0));
  sim.run();
  const LoadStats& s = sim.load_stats();
  EXPECT_GT(s.completed, 0u);
  EXPECT_LE(s.hits, s.completed);
  sim::InvariantChecker checker;
  checker.check_admission(s);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(OpenLoop, OlapConservationCertifiedByChecker) {
  auto c = simtest::golden_olap_config();
  c.sim_hours = 0.5;
  olap::OlapSim sim(c);
  sim.set_open_loop(constant_load(2.0, 4, c.sim_hours * 3600.0));
  sim.run();
  const LoadStats& s = sim.load_stats();
  EXPECT_GT(s.completed, 0u);
  sim::InvariantChecker checker;
  checker.check_admission(s);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(OpenLoop, DigLibConservationCertifiedByChecker) {
  auto c = simtest::golden_diglib_config();
  diglib::DigLibSim sim(c);
  sim.set_open_loop(constant_load(3.0, 4, c.sim_hours * 3600.0));
  sim.run();
  const LoadStats& s = sim.load_stats();
  EXPECT_GT(s.completed, 0u);
  EXPECT_LE(s.hits, s.completed);
  sim::InvariantChecker checker;
  checker.check_admission(s);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

// --- admission behavior ---------------------------------------------------

TEST(OpenLoop, TightCapShedsUnderOverload) {
  const auto c = small_gnutella();
  gnutella::Simulation sim(c);
  // Offered far above what 100 peers can serve with one-deep queues.
  sim.set_open_loop(constant_load(40.0, 1, c.sim_hours * 3600.0));
  sim.run();
  const LoadStats& s = sim.load_stats();
  EXPECT_GT(s.rejected, 0u);
  EXPECT_GT(s.offered, s.admitted);
  sim::InvariantChecker checker;
  checker.check_admission(s);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(OpenLoop, TraceDrivenArrivalsAreCountedExactly) {
  const auto c = small_gnutella();
  gnutella::Simulation sim(c);
  OpenLoopOptions o;
  o.enabled = true;
  o.trace = {{100.0, 0, 42}, {200.0, kAnyPeer, kAnyItem}, {300.0, 5, 7}};
  o.admission_cap = 4;
  sim.set_open_loop(std::move(o));
  sim.run();
  const LoadStats& s = sim.load_stats();
  EXPECT_EQ(s.offered, 3u);
  sim::InvariantChecker checker;
  checker.check_admission(s);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

// --- option validation ----------------------------------------------------

TEST(OpenLoop, ZeroCapIsRejected) {
  gnutella::Simulation sim(small_gnutella());
  auto o = constant_load(1.0, 4, 1800.0);
  o.admission_cap = 0;
  EXPECT_THROW(sim.set_open_loop(std::move(o)), std::invalid_argument);
}

TEST(OpenLoop, NoRateAndNoTraceIsRejected) {
  gnutella::Simulation sim(small_gnutella());
  OpenLoopOptions o;
  o.enabled = true;  // but no schedule rate and no trace
  EXPECT_THROW(sim.set_open_loop(std::move(o)), std::invalid_argument);
}

TEST(OpenLoop, TracePeerBeyondPopulationIsRejected) {
  gnutella::Simulation sim(small_gnutella());
  OpenLoopOptions o;
  o.enabled = true;
  o.trace = {{10.0, 100, kAnyItem}};  // population is 100: ids 0..99
  EXPECT_THROW(sim.set_open_loop(std::move(o)), std::invalid_argument);
}

TEST(OpenLoop, ShardedRunsRejectOpenLoop) {
  gnutella::Simulation sim(small_gnutella());
  sim.set_shards(2);
  EXPECT_THROW(
      sim.set_open_loop(constant_load(1.0, 4, 1800.0)),
      std::invalid_argument);
}

TEST(OpenLoop, OpenLoopRunsRejectSharding) {
  gnutella::Simulation sim(small_gnutella());
  sim.set_open_loop(constant_load(1.0, 4, 1800.0));
  EXPECT_THROW(sim.set_shards(2), std::invalid_argument);
}

}  // namespace
}  // namespace dsf::load
