// Arrival schedules and the trace reader: the pure deterministic inputs
// to the open-loop generator.  Shapes are pinned pointwise (rate_at is a
// pure function) and the trace grammar is pinned line by line.
#include "load/schedule.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "load/trace_reader.h"

namespace dsf::load {
namespace {

TEST(Schedule, ParseRoundTripsEveryKind) {
  for (ScheduleKind k :
       {ScheduleKind::kConstant, ScheduleKind::kDiurnal, ScheduleKind::kFlash,
        ScheduleKind::kStep}) {
    EXPECT_EQ(parse_schedule(schedule_name(k)), k);
  }
}

TEST(Schedule, ParseRejectsUnknownName) {
  EXPECT_THROW(parse_schedule("bursty"), std::invalid_argument);
  EXPECT_THROW(parse_schedule(""), std::invalid_argument);
  EXPECT_THROW(parse_schedule("Constant"), std::invalid_argument);
}

TEST(Schedule, ConstantIsFlatAtBase) {
  const auto s = make_schedule(ScheduleKind::kConstant, 5.0, 1.0, 3600.0);
  EXPECT_DOUBLE_EQ(s.rate_at(0.0), 5.0);
  EXPECT_DOUBLE_EQ(s.rate_at(1800.0), 5.0);
  EXPECT_DOUBLE_EQ(s.rate_at(3599.9), 5.0);
  EXPECT_DOUBLE_EQ(s.peak_qps(), 5.0);
}

TEST(Schedule, StepFiresAtMidRun) {
  const auto s = make_schedule(ScheduleKind::kStep, 2.0, 4.0, 1000.0);
  EXPECT_DOUBLE_EQ(s.step_at_s, 500.0);
  EXPECT_DOUBLE_EQ(s.rate_at(499.9), 2.0);
  EXPECT_DOUBLE_EQ(s.rate_at(500.0), 8.0);  // boundary belongs to overload
  EXPECT_DOUBLE_EQ(s.rate_at(999.0), 8.0);
  EXPECT_DOUBLE_EQ(s.peak_qps(), 8.0);
}

TEST(Schedule, FlashCrowdOccupiesTheMiddleFifth) {
  const auto s = make_schedule(ScheduleKind::kFlash, 1.0, 10.0, 1000.0);
  EXPECT_DOUBLE_EQ(s.flash_start_s, 400.0);
  EXPECT_DOUBLE_EQ(s.flash_duration_s, 200.0);
  EXPECT_DOUBLE_EQ(s.rate_at(399.9), 1.0);
  EXPECT_DOUBLE_EQ(s.rate_at(400.0), 10.0);  // half-open [start, start+dur)
  EXPECT_DOUBLE_EQ(s.rate_at(599.9), 10.0);
  EXPECT_DOUBLE_EQ(s.rate_at(600.0), 1.0);
}

TEST(Schedule, DiurnalTroughAtStartCrestHalfAPeriodIn) {
  const auto s = make_schedule(ScheduleKind::kDiurnal, 2.0, 3.0, 86400.0);
  EXPECT_DOUBLE_EQ(s.diurnal_period_s, 86400.0);
  EXPECT_NEAR(s.rate_at(0.0), 2.0, 1e-9);       // trough = base
  EXPECT_NEAR(s.rate_at(43200.0), 6.0, 1e-9);   // crest = base * overload
  EXPECT_NEAR(s.rate_at(86400.0), 2.0, 1e-9);   // back to trough
  EXPECT_DOUBLE_EQ(s.peak_qps(), 6.0);
}

TEST(Schedule, DiurnalPeriodShrinksToShortHorizons) {
  // A half-hour run still sees a full crest: the wave spans the horizon.
  const auto s = make_schedule(ScheduleKind::kDiurnal, 1.0, 2.0, 1800.0);
  EXPECT_DOUBLE_EQ(s.diurnal_period_s, 1800.0);
  EXPECT_NEAR(s.rate_at(900.0), 2.0, 1e-9);
}

TEST(Schedule, MakeScheduleValidatesItsInputs) {
  EXPECT_THROW(make_schedule(ScheduleKind::kConstant, 0.0, 1.0, 100.0),
               std::invalid_argument);
  EXPECT_THROW(make_schedule(ScheduleKind::kConstant, -2.0, 1.0, 100.0),
               std::invalid_argument);
  EXPECT_THROW(make_schedule(ScheduleKind::kStep, 1.0, 0.5, 100.0),
               std::invalid_argument);
  EXPECT_THROW(make_schedule(ScheduleKind::kStep, 1.0, 101.0, 100.0),
               std::invalid_argument);
  EXPECT_THROW(make_schedule(ScheduleKind::kConstant, 1.0, 1.0, 0.0),
               std::invalid_argument);
}

TEST(Schedule, RateNeverBelowBaseNorAbovePeak) {
  for (ScheduleKind k :
       {ScheduleKind::kDiurnal, ScheduleKind::kFlash, ScheduleKind::kStep}) {
    const auto s = make_schedule(k, 3.0, 5.0, 7200.0);
    for (double t = 0.0; t <= 7200.0; t += 60.0) {
      EXPECT_GE(s.rate_at(t), s.base_qps - 1e-9) << schedule_name(k) << " " << t;
      EXPECT_LE(s.rate_at(t), s.peak_qps() + 1e-9) << schedule_name(k) << " " << t;
    }
  }
}

// --- trace grammar --------------------------------------------------------

TEST(TraceReader, ParsesArrivalLines) {
  TraceArrival a;
  ASSERT_TRUE(parse_trace_line("12.5 3 42", &a));
  EXPECT_DOUBLE_EQ(a.time_s, 12.5);
  EXPECT_EQ(a.peer, 3);
  EXPECT_EQ(a.item, 42u);
}

TEST(TraceReader, AnyPeerAndAnyItemSentinels) {
  TraceArrival a;
  ASSERT_TRUE(parse_trace_line("0.0 -1 -1", &a));
  EXPECT_EQ(a.peer, kAnyPeer);
  EXPECT_EQ(a.item, kAnyItem);
}

TEST(TraceReader, SkipsBlankAndCommentLines) {
  TraceArrival a;
  EXPECT_FALSE(parse_trace_line("", &a));
  EXPECT_FALSE(parse_trace_line("   ", &a));
  EXPECT_FALSE(parse_trace_line("# header", &a));
}

TEST(TraceReader, MalformedLinesThrow) {
  TraceArrival a;
  EXPECT_THROW(parse_trace_line("1.0", &a), std::invalid_argument);
  EXPECT_THROW(parse_trace_line("abc 0 0", &a), std::invalid_argument);
  EXPECT_THROW(parse_trace_line("-1.0 0 0", &a), std::invalid_argument);
  EXPECT_THROW(parse_trace_line("nan 0 0", &a), std::invalid_argument);
}

TEST(TraceReader, FileArrivalsComeBackSortedByTime) {
  const std::string path =
      testing::TempDir() + "/dsf_load_trace_sort_test.txt";
  {
    std::ofstream f(path);
    f << "# out-of-order on purpose\n"
      << "30.0 1 5\n"
      << "10.0 0 -1\n"
      << "20.0 -1 7\n";
  }
  const auto arrivals = read_trace(path);
  std::remove(path.c_str());
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_DOUBLE_EQ(arrivals[0].time_s, 10.0);
  EXPECT_DOUBLE_EQ(arrivals[1].time_s, 20.0);
  EXPECT_DOUBLE_EQ(arrivals[2].time_s, 30.0);
  EXPECT_EQ(arrivals[1].item, 7u);
}

TEST(TraceReader, MissingFileThrowsRuntimeError) {
  EXPECT_THROW(read_trace("/nonexistent/dsf_load_trace.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace dsf::load
