#include "workload/catalog.h"

#include <gtest/gtest.h>

#include <vector>

namespace dsf::workload {
namespace {

TEST(Catalog, PaperDefaults) {
  Catalog c;
  EXPECT_EQ(c.num_songs(), 200'000u);
  EXPECT_EQ(c.num_categories(), 50u);
  EXPECT_EQ(c.songs_per_category(), 4'000u);
  EXPECT_DOUBLE_EQ(c.zipf_theta(), 0.9);
}

TEST(Catalog, RejectsUnevenDivision) {
  Catalog::Params p;
  p.num_songs = 101;
  p.num_categories = 10;
  EXPECT_THROW(Catalog{p}, std::invalid_argument);
}

TEST(Catalog, RejectsZeroCategories) {
  Catalog::Params p;
  p.num_categories = 0;
  EXPECT_THROW(Catalog{p}, std::invalid_argument);
}

TEST(Catalog, CategoryLayoutIsContiguous) {
  Catalog::Params p;
  p.num_songs = 100;
  p.num_categories = 10;
  Catalog c(p);
  for (SongId s = 0; s < 100; ++s) {
    EXPECT_EQ(c.category_of(s), s / 10);
    EXPECT_EQ(c.rank_of(s), s % 10);
    EXPECT_EQ(c.song_at(c.category_of(s), c.rank_of(s)), s);
  }
}

TEST(Catalog, SampleStaysInCategory) {
  Catalog c;
  des::Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const CategoryId cat = static_cast<CategoryId>(i % 50);
    EXPECT_EQ(c.category_of(c.sample_song(cat, rng)), cat);
  }
}

TEST(Catalog, SampleRejectsBadCategory) {
  Catalog c;
  des::Rng rng(2);
  EXPECT_THROW(c.sample_song(50, rng), std::out_of_range);
}

TEST(Catalog, PopularRanksDominateSamples) {
  Catalog::Params p;
  p.num_songs = 4000;
  p.num_categories = 1;
  Catalog c(p);
  des::Rng rng(3);
  std::vector<int> counts(4000, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[c.rank_of(c.sample_song(0, rng))];
  // Zipf(0.9): rank 0 must beat rank 9 by roughly 10^0.9 ≈ 7.9×.
  EXPECT_GT(counts[0], counts[9] * 4);
  // Frequencies must track the exact PMF at the head.
  for (int r = 0; r < 3; ++r) {
    const double expected = c.rank_probability(r) * n;
    EXPECT_NEAR(counts[r], expected, 0.1 * expected + 20);
  }
}

}  // namespace
}  // namespace dsf::workload
