#include "workload/user_profile.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace dsf::workload {
namespace {

Catalog small_catalog() {
  Catalog::Params p;
  p.num_songs = 1000;
  p.num_categories = 10;
  return Catalog(p);
}

TEST(UserProfile, SideCategoriesAreDistinctAndExcludeFavorite) {
  const Catalog c = small_catalog();
  ProfileGenerator gen(c);
  des::Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const UserProfile p = gen.generate(rng);
    std::set<CategoryId> side(p.side.begin(), p.side.end());
    EXPECT_EQ(side.size(), p.side.size()) << "duplicate side category";
    EXPECT_EQ(side.count(p.favorite), 0u) << "favorite among side categories";
    for (CategoryId cat : side) EXPECT_LT(cat, c.num_categories());
    EXPECT_LT(p.favorite, c.num_categories());
  }
}

TEST(UserProfile, TooFewCategoriesThrows) {
  Catalog::Params p;
  p.num_songs = 50;
  p.num_categories = 5;
  const Catalog c{p};
  EXPECT_THROW(ProfileGenerator{c}, std::invalid_argument);
}

TEST(UserProfile, FavoriteAssignmentFollowsZipf) {
  const Catalog c = small_catalog();
  ProfileGenerator gen(c, 0.9);
  des::Rng rng(2);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[gen.generate(rng).favorite];
  // Category 0 is most popular; must clearly dominate category 9.
  EXPECT_GT(counts[0], counts[9] * 3);
  // Monotone (within noise) over a few spot pairs.
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[1], counts[7]);
}

TEST(UserProfile, SampleCategoryIsHalfFavorite) {
  const Catalog c = small_catalog();
  ProfileGenerator gen(c);
  des::Rng rng(3);
  const UserProfile p = gen.generate(rng);
  int favorite = 0;
  std::vector<int> side_counts(UserProfile::kNumSideCategories, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const CategoryId cat = p.sample_category(rng);
    if (cat == p.favorite) {
      ++favorite;
    } else {
      bool found = false;
      for (int s = 0; s < UserProfile::kNumSideCategories; ++s)
        if (p.side[s] == cat) {
          ++side_counts[s];
          found = true;
          break;
        }
      EXPECT_TRUE(found) << "sampled category outside the profile";
    }
  }
  EXPECT_NEAR(static_cast<double>(favorite) / n, 0.5, 0.01);
  for (int s : side_counts)
    EXPECT_NEAR(static_cast<double>(s) / n, 0.1, 0.01);
}

TEST(UserProfile, PopulationGeneratorCountMatches) {
  const Catalog c = small_catalog();
  ProfileGenerator gen(c);
  des::Rng rng(4);
  const auto pop = gen.generate_population(2000, rng);
  EXPECT_EQ(pop.size(), 2000u);
}

}  // namespace
}  // namespace dsf::workload
