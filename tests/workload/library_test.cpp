#include "workload/library.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace dsf::workload {
namespace {

TEST(Library, ContainsAndSize) {
  Library lib({5, 1, 3});
  EXPECT_EQ(lib.size(), 3u);
  EXPECT_TRUE(lib.contains(1));
  EXPECT_TRUE(lib.contains(3));
  EXPECT_TRUE(lib.contains(5));
  EXPECT_FALSE(lib.contains(2));
}

TEST(Library, ConstructorDeduplicatesAndSorts) {
  Library lib({4, 2, 4, 2, 9});
  EXPECT_EQ(lib.size(), 3u);
  EXPECT_EQ(lib.songs(), (std::vector<SongId>{2, 4, 9}));
}

TEST(Library, AddKeepsOrderAndUniqueness) {
  Library lib({10, 20});
  lib.add(15);
  lib.add(15);
  lib.add(5);
  EXPECT_EQ(lib.songs(), (std::vector<SongId>{5, 10, 15, 20}));
}

TEST(Library, EmptyLibrary) {
  Library lib;
  EXPECT_TRUE(lib.empty());
  EXPECT_FALSE(lib.contains(0));
}

class LibraryGeneratorTest : public ::testing::Test {
 protected:
  Catalog catalog_;  // paper defaults: 200k songs, 50 categories
  UserProfile profile_{.favorite = 3, .side = {7, 11, 19, 23, 42}};
};

TEST_F(LibraryGeneratorTest, SizeWithinTruncation) {
  LibraryGenerator gen(catalog_);
  des::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const Library lib = gen.generate(profile_, rng);
    EXPECT_GE(lib.size(), 8u);    // floor 10 minus integer split losses
    EXPECT_LE(lib.size(), 400u);  // ceiling
  }
}

TEST_F(LibraryGeneratorTest, MeanSizeNear200) {
  LibraryGenerator gen(catalog_);
  des::Rng rng(2);
  double sum = 0.0;
  const int n = 300;
  for (int i = 0; i < n; ++i) sum += gen.generate(profile_, rng).size();
  EXPECT_NEAR(sum / n, 200.0, 12.0);
}

TEST_F(LibraryGeneratorTest, HalfFromFavoriteCategory) {
  LibraryGenerator gen(catalog_);
  des::Rng rng(3);
  const Library lib = gen.generate(profile_, rng);
  std::map<CategoryId, int> per_category;
  for (SongId s : lib.songs()) ++per_category[catalog_.category_of(s)];
  const double favorite_share =
      static_cast<double>(per_category[profile_.favorite]) / lib.size();
  EXPECT_NEAR(favorite_share, 0.5, 0.05);
  // All songs must come from the profile's categories.
  std::set<CategoryId> allowed{profile_.favorite};
  allowed.insert(profile_.side.begin(), profile_.side.end());
  for (const auto& [cat, count] : per_category)
    EXPECT_EQ(allowed.count(cat), 1u) << "song outside profile categories";
}

TEST_F(LibraryGeneratorTest, SideCategoriesGetEqualShares) {
  LibraryGenerator gen(catalog_);
  des::Rng rng(4);
  std::map<CategoryId, int> per_category;
  std::size_t total = 0;
  for (int i = 0; i < 50; ++i) {
    const Library lib = gen.generate(profile_, rng);
    total += lib.size();
    for (SongId s : lib.songs()) ++per_category[catalog_.category_of(s)];
  }
  for (CategoryId c : profile_.side) {
    const double share = static_cast<double>(per_category[c]) / total;
    EXPECT_NEAR(share, 0.1, 0.02);
  }
}

TEST_F(LibraryGeneratorTest, PopularSongsAppearInMoreLibraries) {
  LibraryGenerator gen(catalog_);
  des::Rng rng(5);
  int top_rank_hits = 0, deep_rank_hits = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    const Library lib = gen.generate(profile_, rng);
    // rank 0 (most popular) vs rank 2000 (unpopular) of the favourite.
    if (lib.contains(catalog_.song_at(profile_.favorite, 0))) ++top_rank_hits;
    if (lib.contains(catalog_.song_at(profile_.favorite, 2000)))
      ++deep_rank_hits;
  }
  EXPECT_GT(top_rank_hits, n / 2);
  EXPECT_LT(deep_rank_hits, n / 10);
}

TEST(LibraryGeneratorSmall, NearFullCategoryTopsUpDeterministically) {
  Catalog::Params p;
  p.num_songs = 60;  // tiny catalog: 10 per category
  p.num_categories = 6;
  Catalog catalog(p);
  LibraryGenerator::Params lp;
  lp.mean_size = 40.0;
  lp.stddev_size = 1.0;
  lp.min_size = 39.0;
  lp.max_size = 41.0;
  LibraryGenerator gen(catalog, lp);
  UserProfile profile{.favorite = 0, .side = {1, 2, 3, 4, 5}};
  des::Rng rng(6);
  const Library lib = gen.generate(profile, rng);
  // Favourite wants ~20 of 10 available: capped to the category size.
  std::size_t favorite_count = 0;
  for (SongId s : lib.songs())
    if (catalog.category_of(s) == 0) ++favorite_count;
  EXPECT_EQ(favorite_count, 10u);
}

}  // namespace
}  // namespace dsf::workload
