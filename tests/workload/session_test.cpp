#include "workload/session.h"

#include <gtest/gtest.h>

namespace dsf::workload {
namespace {

TEST(SessionModel, PaperDefaults) {
  SessionModel m;
  EXPECT_DOUBLE_EQ(m.params().mean_online_s, 3.0 * 3600.0);
  EXPECT_DOUBLE_EQ(m.params().mean_offline_s, 3.0 * 3600.0);
  EXPECT_DOUBLE_EQ(m.stationary_online_probability(), 0.5);
}

TEST(SessionModel, StationaryProbabilityAsymmetric) {
  SessionModel::Params p;
  p.mean_online_s = 3600.0;
  p.mean_offline_s = 3.0 * 3600.0;
  SessionModel m(p);
  EXPECT_DOUBLE_EQ(m.stationary_online_probability(), 0.25);
}

TEST(SessionModel, InitialStateMatchesStationary) {
  SessionModel m;
  des::Rng rng(1);
  int online = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) online += m.draw_initial_online(rng);
  EXPECT_NEAR(static_cast<double>(online) / n, 0.5, 0.01);
}

TEST(SessionModel, DurationsHaveConfiguredMeans) {
  SessionModel m;
  des::Rng rng(2);
  double on = 0.0, off = 0.0, gap = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    on += m.draw_online_duration(rng);
    off += m.draw_offline_duration(rng);
    gap += m.draw_interquery_gap(rng);
  }
  EXPECT_NEAR(on / n / 3600.0, 3.0, 0.05);
  EXPECT_NEAR(off / n / 3600.0, 3.0, 0.05);
  EXPECT_NEAR(gap / n, 320.0, 5.0);
}

TEST(SessionModel, ParetoDurationsKeepConfiguredMeans) {
  SessionModel::Params p;
  p.duration_kind = DurationKind::kPareto;
  p.pareto_shape = 2.5;  // finite variance for a converging test
  SessionModel m(p);
  des::Rng rng(9);
  double on = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) on += m.draw_online_duration(rng);
  EXPECT_NEAR(on / n / 3600.0, 3.0, 0.1);
}

TEST(SessionModel, ParetoTailHeavierThanExponential) {
  SessionModel::Params pareto;
  pareto.duration_kind = DurationKind::kPareto;
  pareto.pareto_shape = 1.5;
  SessionModel heavy(pareto);
  SessionModel light;  // exponential
  des::Rng rng(10);
  const double cutoff = 10.0 * 3.0 * 3600.0;
  int heavy_tail = 0, light_tail = 0;
  for (int i = 0; i < 100000; ++i) {
    heavy_tail += heavy.draw_online_duration(rng) > cutoff;
    light_tail += light.draw_online_duration(rng) > cutoff;
  }
  EXPECT_GT(heavy_tail, light_tail * 5);
}

TEST(SessionModel, DurationsArePositive) {
  SessionModel m;
  des::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(m.draw_online_duration(rng), 0.0);
    EXPECT_GT(m.draw_offline_duration(rng), 0.0);
    EXPECT_GT(m.draw_interquery_gap(rng), 0.0);
  }
}

}  // namespace
}  // namespace dsf::workload
