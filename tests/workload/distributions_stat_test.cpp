// Statistical acceptance tests for the workload samplers, pinning the
// distributions the scale sweep stresses at n = 1e6 draws.
//
// Seeds are fixed, so each statistic is a deterministic number and the
// assertions never flake; the bounds are still the principled ones — the
// alpha = 0.001 critical values of the chi-square and Kolmogorov–Smirnov
// tests — so a regression that deforms a sampler (broken CDF inversion,
// clipped tail, biased binary search) fails loudly rather than drifting
// under a hand-tuned tolerance.

#include "des/distributions.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "core/lsh.h"
#include "des/rng.h"

namespace dsf::des {
namespace {

constexpr std::size_t kDraws = 1'000'000;

// --- Kolmogorov–Smirnov, continuous samplers ---------------------------

/// One-sample KS statistic of `samples` (sorted in place) against `cdf`.
double ks_statistic(std::vector<double>& samples,
                    const std::function<double(double)>& cdf) {
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double f = cdf(samples[i]);
    d = std::max(d, f - static_cast<double>(i) / n);
    d = std::max(d, static_cast<double>(i + 1) / n - f);
  }
  return d;
}

/// KS critical value at alpha = 0.001: sqrt(-ln(alpha/2)/2) / sqrt(n).
double ks_bound(std::size_t n) {
  return std::sqrt(-std::log(0.0005) / 2.0) /
         std::sqrt(static_cast<double>(n));
}

double normal_cdf(double z) { return 0.5 * (1.0 + std::erf(z / std::sqrt(2.0))); }

TEST(DistributionsStat, ExponentialPassesKS) {
  const double mean = 600.0;  // the paper's session-scale magnitude
  Exponential dist(mean);
  Rng rng(0xE4B0);
  std::vector<double> samples(kDraws);
  for (auto& s : samples) s = dist.sample(rng);
  const double d = ks_statistic(
      samples, [mean](double x) { return 1.0 - std::exp(-x / mean); });
  EXPECT_LT(d, ks_bound(kDraws)) << "KS statistic " << d;
}

TEST(DistributionsStat, ParetoPassesKS) {
  Pareto dist = Pareto::from_mean(3600.0, 1.5);
  const double xm = dist.scale(), a = dist.shape();
  Rng rng(0x9A7E70);
  std::vector<double> samples(kDraws);
  for (auto& s : samples) s = dist.sample(rng);
  const double d = ks_statistic(samples, [xm, a](double x) {
    return x < xm ? 0.0 : 1.0 - std::pow(xm / x, a);
  });
  EXPECT_LT(d, ks_bound(kDraws)) << "KS statistic " << d;
}

TEST(DistributionsStat, TruncatedGaussianPassesKS) {
  // The library-size parameterization (mu 200, sigma 50, truncated to
  // [10, 400]); the truncation must renormalize, not clip.
  const double mu = 200.0, sigma = 50.0, lo = 10.0, hi = 400.0;
  TruncatedGaussian dist(mu, sigma, lo, hi);
  Rng rng(0x76A055);
  std::vector<double> samples(kDraws);
  for (auto& s : samples) s = dist.sample(rng);
  const double f_lo = normal_cdf((lo - mu) / sigma);
  const double f_hi = normal_cdf((hi - mu) / sigma);
  const double d = ks_statistic(samples, [=](double x) {
    return (normal_cdf((x - mu) / sigma) - f_lo) / (f_hi - f_lo);
  });
  EXPECT_LT(d, ks_bound(kDraws)) << "KS statistic " << d;
  for (double s : samples) {
    ASSERT_GE(s, lo);
    ASSERT_LE(s, hi);
  }
}

// --- Chi-square, discrete sampler --------------------------------------

// Wilson–Hilferty approximation of the chi-square critical value at
// alpha = 0.001 (z = 3.0902) — accurate to a fraction of a percent for
// the dozens-to-hundreds of degrees of freedom used here.
double chi2_bound(std::size_t df) {
  const double k = static_cast<double>(df);
  const double z = 3.0902;
  const double t = 1.0 - 2.0 / (9.0 * k) + z * std::sqrt(2.0 / (9.0 * k));
  return k * t * t * t;
}

TEST(DistributionsStat, ZipfPassesChiSquare) {
  // The catalog's popularity profile: Zipf(0.9) over 4000 ranks.
  const std::size_t ranks = 4000;
  Zipf dist(ranks, 0.9);
  Rng rng(0x21BF09);
  std::vector<std::uint64_t> observed(ranks, 0);
  for (std::size_t i = 0; i < kDraws; ++i) ++observed[dist.sample(rng)];

  // Merge trailing ranks into bins with expected count >= 10 so the
  // chi-square approximation holds in the thin tail.
  double chi2 = 0.0;
  std::size_t bins = 0;
  double exp_acc = 0.0, obs_acc = 0.0;
  for (std::size_t k = 0; k < ranks; ++k) {
    exp_acc += dist.pmf(k) * static_cast<double>(kDraws);
    obs_acc += static_cast<double>(observed[k]);
    if (exp_acc >= 10.0) {
      const double diff = obs_acc - exp_acc;
      chi2 += diff * diff / exp_acc;
      ++bins;
      exp_acc = obs_acc = 0.0;
    }
  }
  if (exp_acc > 0.0) {
    const double diff = obs_acc - exp_acc;
    chi2 += diff * diff / exp_acc;
    ++bins;
  }
  ASSERT_GE(bins, 30u);  // the binning must not collapse the test away
  EXPECT_LT(chi2, chi2_bound(bins - 1))
      << "chi2 " << chi2 << " over " << bins << " bins";
}

TEST(DistributionsStat, ParetoSessionTailPassesChiSquare) {
  // The adversary layer's churn-storm parameterization (offline mean
  // 600 s, shape 1.5 — the heavy session tail): chi-square over 100
  // equal-probability bins, so the statistic weighs the far tail as
  // heavily as the body.  Catches a clipped or re-scaled tail that the
  // KS statistic (dominated by the body) can miss.
  Pareto dist = Pareto::from_mean(600.0, 1.5);
  const double xm = dist.scale(), a = dist.shape();
  Rng rng(0xAD5E7A);

  const std::size_t bins = 100;
  // Bin edges at the quantiles: F^-1(p) = xm / (1-p)^(1/a); the last
  // edge is +inf.
  std::vector<double> edges(bins);
  for (std::size_t b = 0; b + 1 < bins; ++b) {
    const double p = static_cast<double>(b + 1) / static_cast<double>(bins);
    edges[b] = xm / std::pow(1.0 - p, 1.0 / a);
  }
  edges[bins - 1] = std::numeric_limits<double>::infinity();

  std::vector<std::uint64_t> observed(bins, 0);
  for (std::size_t i = 0; i < kDraws; ++i) {
    const double s = dist.sample(rng);
    ASSERT_GE(s, xm) << "Pareto support starts at the scale";
    const auto it = std::lower_bound(edges.begin(), edges.end(), s);
    ++observed[static_cast<std::size_t>(it - edges.begin())];
  }

  const double expected = static_cast<double>(kDraws) / bins;
  double chi2 = 0.0;
  for (std::uint64_t o : observed) {
    const double diff = static_cast<double>(o) - expected;
    chi2 += diff * diff / expected;
  }
  EXPECT_LT(chi2, chi2_bound(bins - 1))
      << "chi2 " << chi2 << " over " << bins << " equal-probability bins";
}

TEST(DistributionsStat, ParetoStormScaleMatchesConfiguredMean) {
  // from_mean must invert the mean formula xm * a / (a - 1) exactly, and
  // the empirical mean of a million heavy-tailed draws should land within
  // a few percent of it (shape 1.5 has infinite variance, so the sample
  // mean converges slowly — the bound is deliberately loose but would
  // still catch a scale derived from the wrong formula by 3x).
  const double mean = 600.0, shape = 1.5;
  Pareto dist = Pareto::from_mean(mean, shape);
  EXPECT_DOUBLE_EQ(dist.scale() * shape / (shape - 1.0), mean);

  Rng rng(0x570F11);
  double acc = 0.0;
  for (std::size_t i = 0; i < kDraws; ++i) acc += dist.sample(rng);
  const double sample_mean = acc / static_cast<double>(kDraws);
  EXPECT_GT(sample_mean, 0.5 * mean);
  EXPECT_LT(sample_mean, 2.0 * mean);
}

// --- Chi-square, MinHash collision probability --------------------------

/// The smallest position hash over a set — one MinHash signature entry.
std::uint64_t minhash_position(std::uint64_t seed, std::uint32_t h,
                               const std::vector<std::uint64_t>& items) {
  std::uint64_t best = ~0ULL;
  for (const std::uint64_t item : items)
    best = std::min(best, core::lsh_position_hash(seed, h, item));
  return best;
}

TEST(DistributionsStat, MinHashCollisionRateMatchesJaccardChiSquare) {
  // The property the whole LSH scheme stands on: each signature position
  // matches between two sets with probability exactly their Jaccard
  // similarity (the minimum of a random permutation lands in the
  // intersection with probability |A∩B| / |A∪B|).  Construct pairs at
  // controlled Jaccard levels — S-item sets sharing I items, so
  // J = I / (2S - I) — and chi-square the observed match counts across
  // many independent positions against the exact expectation.  A biased
  // position hash (poor avalanche, correlated positions) fails here
  // before it would surface as bad routing recall.
  constexpr std::uint64_t kSeed = 0x315a7e57ba5eba11ULL;
  constexpr std::uint32_t kPositions = 50'000;
  constexpr std::uint64_t kSetSize = 100;
  const std::uint64_t shared_counts[] = {20, 40, 60, 80};

  double chi2 = 0.0;
  std::size_t df = 0;
  for (const std::uint64_t shared : shared_counts) {
    std::vector<std::uint64_t> a, b;
    for (std::uint64_t i = 0; i < shared; ++i) {
      a.push_back(i);
      b.push_back(i);
    }
    for (std::uint64_t i = shared; i < kSetSize; ++i) {
      a.push_back(1'000'000 + i);  // A-private
      b.push_back(2'000'000 + i);  // B-private
    }
    const double jaccard = static_cast<double>(shared) /
                           static_cast<double>(2 * kSetSize - shared);

    std::uint64_t matches = 0;
    for (std::uint32_t h = 0; h < kPositions; ++h)
      matches += minhash_position(kSeed, h, a) == minhash_position(kSeed, h, b);

    const double expect_match = jaccard * kPositions;
    const double expect_miss = kPositions - expect_match;
    const double dm = static_cast<double>(matches) - expect_match;
    chi2 += dm * dm / expect_match + dm * dm / expect_miss;
    ++df;  // two cells per level, one constraint
  }
  EXPECT_LT(chi2, chi2_bound(df))
      << "chi2 " << chi2 << " over " << df << " Jaccard levels";

  // Degenerate levels are exact, not statistical: disjoint sets share no
  // position (a 64-bit value collision is ~2^-64 per position), identical
  // sets share every position.
  std::vector<std::uint64_t> x, y;
  for (std::uint64_t i = 0; i < kSetSize; ++i) {
    x.push_back(i);
    y.push_back(1'000'000 + i);
  }
  std::uint64_t disjoint_matches = 0, identical_matches = 0;
  for (std::uint32_t h = 0; h < 1'000; ++h) {
    disjoint_matches += minhash_position(kSeed, h, x) == minhash_position(kSeed, h, y);
    identical_matches += minhash_position(kSeed, h, x) == minhash_position(kSeed, h, x);
  }
  EXPECT_EQ(disjoint_matches, 0u);
  EXPECT_EQ(identical_matches, 1'000u);
}

TEST(DistributionsStat, ZipfRankOneIsModal) {
  // Cheap structural cross-check on the same draw budget: observed
  // frequency ordering must follow the pmf for the head ranks.
  Zipf dist(100, 0.9);
  Rng rng(0x5EED);
  std::vector<std::uint64_t> observed(100, 0);
  for (std::size_t i = 0; i < kDraws; ++i) ++observed[dist.sample(rng)];
  EXPECT_GT(observed[0], observed[1]);
  EXPECT_GT(observed[1], observed[5]);
  EXPECT_GT(observed[5], observed[50]);
}

}  // namespace
}  // namespace dsf::des
