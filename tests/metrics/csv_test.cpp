#include "metrics/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace dsf::metrics {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "dsf_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"hour", "hits"});
    w.add_row({"12", "1800"});
    w.add_row({"27", "2300"});
  }
  EXPECT_EQ(slurp(path_), "hour,hits\n12,1800\n27,2300\n");
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  {
    CsvWriter w(path_, {"name"});
    w.add_row({"a,b"});
    w.add_row({"say \"hi\""});
  }
  EXPECT_EQ(slurp(path_), "name\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
}

TEST_F(CsvTest, RowWidthMismatchThrows) {
  CsvWriter w(path_, {"a", "b"});
  EXPECT_THROW(w.add_row({"only-one"}), std::invalid_argument);
}

TEST_F(CsvTest, EmptyHeaderThrows) {
  EXPECT_THROW(CsvWriter(path_, {}), std::invalid_argument);
}

TEST(Csv, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}),
               std::runtime_error);
}

}  // namespace
}  // namespace dsf::metrics
