#include "metrics/replication.h"

#include <gtest/gtest.h>

#include "des/distributions.h"
#include "des/rng.h"

namespace dsf::metrics {
namespace {

TEST(ConfidenceInterval, EmptySample) {
  const auto ci = confidence_interval({});
  EXPECT_EQ(ci.n, 0u);
  EXPECT_DOUBLE_EQ(ci.mean, 0.0);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
}

TEST(ConfidenceInterval, SingleValueHasZeroWidth) {
  const auto ci = confidence_interval({5.0});
  EXPECT_DOUBLE_EQ(ci.mean, 5.0);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
}

TEST(ConfidenceInterval, KnownSample) {
  // {2, 4, 6}: mean 4, s = 2, hw = 1.96·2/√3.
  const auto ci = confidence_interval({2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(ci.mean, 4.0);
  EXPECT_NEAR(ci.half_width, 1.96 * 2.0 / std::sqrt(3.0), 1e-12);
  EXPECT_TRUE(ci.contains(4.0));
  EXPECT_TRUE(ci.excludes_zero());
}

TEST(ConfidenceInterval, IntervalAroundZeroDoesNotExcludeIt) {
  const auto ci = confidence_interval({-1.0, 1.0, 0.5, -0.5});
  EXPECT_FALSE(ci.excludes_zero());
}

TEST(ConfidenceInterval, CoverageOnGaussianData) {
  // ~95% of CIs built from N(10, 2) samples should contain 10.
  des::Rng rng(3);
  des::TruncatedGaussian g(10.0, 2.0, 0.0, 20.0);
  int covered = 0;
  const int trials = 500;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> sample;
    for (int i = 0; i < 30; ++i) sample.push_back(g.sample(rng));
    if (confidence_interval(sample).contains(10.0)) ++covered;
  }
  EXPECT_NEAR(static_cast<double>(covered) / trials, 0.95, 0.04);
}

TEST(Replicate, DistinctSeedsPerReplica) {
  std::vector<std::uint64_t> seeds;
  replicate(5, 42, [&seeds](std::uint64_t s) {
    seeds.push_back(s);
    return 0.0;
  });
  ASSERT_EQ(seeds.size(), 5u);
  for (std::size_t i = 0; i < seeds.size(); ++i)
    for (std::size_t j = i + 1; j < seeds.size(); ++j)
      EXPECT_NE(seeds[i], seeds[j]);
}

TEST(Replicate, CollectsMeasurementsInOrder) {
  const auto out =
      replicate(3, 0, [](std::uint64_t seed) { return static_cast<double>(seed); });
  ASSERT_EQ(out.size(), 3u);
  EXPECT_LT(out[0], out[1]);
  EXPECT_LT(out[1], out[2]);
}

}  // namespace
}  // namespace dsf::metrics
