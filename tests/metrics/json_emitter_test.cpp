// JsonEmitter feeds every bench's machine-readable output; these tests
// parse its documents back with the test-side JSON parser to prove a
// real consumer accepts them — nesting, comma discipline, escaping,
// schema stamping, and the destructor's close-everything safety net.
#include <gtest/gtest.h>

#include <sstream>

#include "../obs/json_check.h"
#include "metrics/json_emitter.h"

namespace dsf::metrics {
namespace {

TEST(JsonEmitter, FlatObjectRoundTrips) {
  std::ostringstream os;
  {
    JsonEmitter j(os);
    j.begin_object();
    j.schema("perf-suite", 1);
    j.field("quick", true);
    j.field("items", std::uint64_t{12345});
    j.field("wall_s", 0.125, 3);
    j.field("name", "queue_ops");
    j.end_object();
    j.finish();
  }
  const auto doc = testjson::parse(os.str());
  EXPECT_EQ(doc.at("schema").string, "dsf-perf-suite-v1");
  EXPECT_TRUE(doc.at("quick").boolean);
  EXPECT_DOUBLE_EQ(doc.at("items").number, 12345.0);
  EXPECT_DOUBLE_EQ(doc.at("wall_s").number, 0.125);
  EXPECT_EQ(doc.at("name").string, "queue_ops");
}

TEST(JsonEmitter, NestedArraysAndObjects) {
  std::ostringstream os;
  {
    JsonEmitter j(os);
    j.begin_object();
    j.begin_array("results");
    for (int i = 0; i < 3; ++i) {
      j.begin_object();
      j.field("index", i);
      j.end_object();
    }
    j.end_array();
    j.begin_object("meta");
    j.field("done", true);
    j.end_object();
    j.end_object();
  }  // destructor finishes
  const auto doc = testjson::parse(os.str());
  const auto& results = doc.at("results");
  ASSERT_TRUE(results.is_array());
  ASSERT_EQ(results.array.size(), 3u);
  for (int i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(results.array[i].at("index").number, i);
  EXPECT_TRUE(doc.at("meta").at("done").boolean);
}

TEST(JsonEmitter, EmptyContainersAreValid) {
  std::ostringstream os;
  {
    JsonEmitter j(os);
    j.begin_object();
    j.begin_array("runs");
    j.end_array();
    j.begin_object("inner");
    j.end_object();
    j.end_object();
  }
  const auto doc = testjson::parse(os.str());
  EXPECT_TRUE(doc.at("runs").array.empty());
  EXPECT_TRUE(doc.at("inner").object.empty());
}

TEST(JsonEmitter, EscapesStringsCorrectly) {
  std::ostringstream os;
  {
    JsonEmitter j(os);
    j.begin_object();
    j.field("path", "C:\\tmp\\\"x\"\n\tend");
    j.field("ctrl", std::string("a\x01z"));
    j.end_object();
  }
  const auto doc = testjson::parse(os.str());
  EXPECT_EQ(doc.at("path").string, "C:\\tmp\\\"x\"\n\tend");
  EXPECT_EQ(doc.at("ctrl").string, std::string("a\x01z"));
}

TEST(JsonEmitter, NegativeAndLargeNumbers) {
  std::ostringstream os;
  {
    JsonEmitter j(os);
    j.begin_object();
    j.field("neg", std::int64_t{-42});
    j.field("big", std::uint64_t{1} << 53);
    j.field("delay", -1.0, 4);
    j.end_object();
  }
  const auto doc = testjson::parse(os.str());
  EXPECT_DOUBLE_EQ(doc.at("neg").number, -42.0);
  EXPECT_DOUBLE_EQ(doc.at("big").number, 9007199254740992.0);
  EXPECT_DOUBLE_EQ(doc.at("delay").number, -1.0);
}

TEST(JsonEmitter, FinishClosesAbandonedContainers) {
  std::ostringstream os;
  {
    JsonEmitter j(os);
    j.begin_object();
    j.begin_array("rows");
    j.begin_object();
    j.field("partial", true);
    // No explicit closes: the safety net must close object, array,
    // object in the right order.
  }
  const auto doc = testjson::parse(os.str());
  ASSERT_EQ(doc.at("rows").array.size(), 1u);
  EXPECT_TRUE(doc.at("rows").array[0].at("partial").boolean);
}

TEST(JsonEmitter, SchemaStampFormat) {
  std::ostringstream os;
  {
    JsonEmitter j(os);
    j.begin_object();
    j.schema("scale-run", 3);
    j.end_object();
  }
  const auto doc = testjson::parse(os.str());
  EXPECT_EQ(doc.at("schema").string, "dsf-scale-run-v3");
}

}  // namespace
}  // namespace dsf::metrics
