#include "metrics/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dsf::metrics {
namespace {

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"hour", "hits"});
  t.add_row({"12", "1800"});
  t.add_row({"27", "2300"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("hour"), std::string::npos);
  EXPECT_NE(out.find("1800"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, WideCellsStretchColumn) {
  Table t({"x"});
  t.add_row({"a-rather-long-cell"});
  std::ostringstream os;
  t.print(os);
  // Underline must cover the widest cell.
  EXPECT_NE(os.str().find(std::string(18, '-')), std::string::npos);
}

TEST(Fmt, FixedDigits) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

TEST(FmtCount, ThousandsSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(173493), "173,493");
  EXPECT_EQ(fmt_count(1234567890), "1,234,567,890");
}

}  // namespace
}  // namespace dsf::metrics
