#include "metrics/json.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dsf::metrics {
namespace {

TEST(Json, EmptyContainers) {
  EXPECT_EQ(JsonValue::object().to_string(), "{}");
  EXPECT_EQ(JsonValue::array().to_string(), "[]");
}

TEST(Json, Scalars) {
  EXPECT_EQ(JsonValue::string("hi").to_string(), "\"hi\"");
  EXPECT_EQ(JsonValue::number(std::int64_t{42}).to_string(), "42");
  EXPECT_EQ(JsonValue::number(std::int64_t{-3}).to_string(), "-3");
  EXPECT_EQ(JsonValue::boolean(true).to_string(), "true");
  EXPECT_EQ(JsonValue::boolean(false).to_string(), "false");
  EXPECT_EQ(JsonValue::number(1.5).to_string(), "1.5");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(JsonValue::number(std::nan("")).to_string(), "null");
  EXPECT_EQ(JsonValue::number(INFINITY).to_string(), "null");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(JsonValue::string("a\"b").to_string(), "\"a\\\"b\"");
  EXPECT_EQ(JsonValue::string("a\\b").to_string(), "\"a\\\\b\"");
  EXPECT_EQ(JsonValue::string("a\nb").to_string(), "\"a\\nb\"");
  EXPECT_EQ(JsonValue::string(std::string("a\x01") + "b").to_string(),
            "\"a\\u0001b\"");
}

TEST(Json, ObjectStructure) {
  JsonValue obj = JsonValue::object();
  obj.set("name", JsonValue::string("dsf"))
      .set("hits", JsonValue::number(std::uint64_t{163157}));
  const std::string s = obj.to_string();
  EXPECT_NE(s.find("\"name\": \"dsf\""), std::string::npos);
  EXPECT_NE(s.find("\"hits\": 163157"), std::string::npos);
  EXPECT_EQ(s.front(), '{');
  EXPECT_EQ(s.back(), '}');
}

TEST(Json, ArrayOfObjects) {
  JsonValue arr = JsonValue::array();
  for (int i = 0; i < 2; ++i) {
    JsonValue o = JsonValue::object();
    o.set("i", JsonValue::number(std::int64_t{i}));
    arr.push(std::move(o));
  }
  const std::string s = arr.to_string();
  EXPECT_NE(s.find("\"i\": 0"), std::string::npos);
  EXPECT_NE(s.find("\"i\": 1"), std::string::npos);
}

TEST(Json, TypeMisuseThrows) {
  EXPECT_THROW(JsonValue::array().set("k", JsonValue::boolean(true)),
               std::logic_error);
  EXPECT_THROW(JsonValue::object().push(JsonValue::boolean(true)),
               std::logic_error);
}

TEST(Json, DoublePrecisionRoundTrips) {
  const double v = 0.392943618125;
  const std::string s = JsonValue::number(v).to_string();
  EXPECT_DOUBLE_EQ(std::stod(s), v);
}

}  // namespace
}  // namespace dsf::metrics
