#include "metrics/time_series.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace dsf::metrics {
namespace {

TEST(TimeSeries, RejectsBadWidth) {
  EXPECT_THROW(TimeSeries(0.0), std::invalid_argument);
  EXPECT_THROW(TimeSeries(-1.0), std::invalid_argument);
}

TEST(TimeSeries, BucketsByHour) {
  TimeSeries ts(3600.0);
  ts.add(0.0);
  ts.add(3599.9);
  ts.add(3600.0, 5);
  ts.add(7250.0);
  EXPECT_EQ(ts.bucket(0), 2u);
  EXPECT_EQ(ts.bucket(1), 5u);
  EXPECT_EQ(ts.bucket(2), 1u);
  EXPECT_EQ(ts.bucket(99), 0u);  // beyond range reads as zero
}

TEST(TimeSeries, NegativeTimeThrows) {
  TimeSeries ts(10.0);
  EXPECT_THROW(ts.add(-0.5), std::invalid_argument);
}

TEST(TimeSeries, NonFiniteTimeThrows) {
  TimeSeries ts(10.0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(ts.add(nan), std::invalid_argument);
  EXPECT_THROW(ts.add(inf), std::invalid_argument);
  EXPECT_THROW(ts.add(-inf), std::invalid_argument);
  EXPECT_EQ(ts.total(), 0u);  // rejected samples leave no trace
}

TEST(TimeSeries, AstronomicalTimeThrowsInsteadOfOverflowingCast) {
  TimeSeries ts(1.0);
  // Finite but far past any representable bucket index: must throw
  // length_error, not silently wrap through the size_t cast.
  EXPECT_THROW(ts.add(1e18), std::length_error);
  EXPECT_EQ(ts.num_buckets(), 0u);
}

TEST(TimeSeries, SumOverWindow) {
  TimeSeries ts(1.0);
  for (int i = 0; i < 10; ++i) ts.add(static_cast<double>(i), i);
  EXPECT_EQ(ts.sum(2, 4), 2u + 3u + 4u);
  EXPECT_EQ(ts.sum(0, 100), 45u);  // clamped to range
  EXPECT_EQ(ts.sum(5, 2), 0u);     // inverted window
  EXPECT_EQ(ts.total(), 45u);
}

TEST(TimeSeries, GrowsOnDemand) {
  TimeSeries ts(1.0);
  ts.add(1000.0);
  EXPECT_EQ(ts.num_buckets(), 1001u);
  EXPECT_EQ(ts.bucket(1000), 1u);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Summary, MergeMatchesSequential) {
  Summary all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a += b;
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a, b;
  a.add(1.0);
  a.add(2.0);
  a += b;  // no-op
  EXPECT_EQ(a.count(), 2u);
  b += a;  // copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Histogram, RejectsBadParams) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, CountsOverflowUnderflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(5.0);
  h.add(15.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, MedianOfUniformFill) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.1), 10.0, 1.5);
}

TEST(Histogram, EmptyQuantileIsZero) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, NanSampleIsDroppedEntirely) {
  Histogram h(0.0, 10.0, 10);
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  h.add(5.0);
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.5);  // unperturbed by the NaNs
}

TEST(Histogram, QuantileZeroFindsFirstNonEmptyBin) {
  Histogram h(0.0, 100.0, 100);
  h.add(42.5);
  h.add(87.5);
  // No underflow mass: q=0 is the smallest recorded value's bin edge,
  // not the histogram's lower bound.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 42.0);
}

TEST(Histogram, QuantileZeroWithUnderflowMassIsLowerBound) {
  Histogram h(0.0, 100.0, 100);
  h.add(-5.0);
  h.add(42.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
}

TEST(Histogram, QuantileOneIsTopEdgeOfLastNonEmptyBin) {
  Histogram h(0.0, 100.0, 100);
  h.add(12.5);
  h.add(42.5);
  // No overflow mass: q=1 must not report the histogram's upper bound
  // (100) when the largest sample sits in bin [42, 43).
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 43.0);
}

TEST(Histogram, QuantileOneWithOverflowMassIsUpperBound) {
  Histogram h(0.0, 100.0, 100);
  h.add(42.5);
  h.add(250.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(Histogram, AllMassInOverflowQuantiles) {
  Histogram h(0.0, 10.0, 10);
  h.add(50.0);
  h.add(60.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(Histogram, EmptyQuantileIsZeroSentinel) {
  // The documented sentinel: an empty histogram answers 0.0 for every q
  // (the previous fall-through reached the hi_-edge branch and reported
  // the histogram's *upper* bound — and emitters formatting the result
  // with %f would otherwise print "nan"/"inf" and corrupt JSON).
  const Histogram h(0.0, 100.0, 10);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(Histogram, NonFiniteQuantileRankThrows) {
  // NaN survives std::clamp (every comparison is false), then fails every
  // cumulative-mass test and silently fell through to the hi_ edge.  A
  // non-finite rank is a caller bug and must throw, empty or not.
  Histogram h(0.0, 100.0, 10);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(h.quantile(nan), std::invalid_argument);
  EXPECT_THROW(h.quantile(inf), std::invalid_argument);
  h.add(5.0);
  EXPECT_THROW(h.quantile(nan), std::invalid_argument);
  EXPECT_THROW(h.quantile(-inf), std::invalid_argument);
}

TEST(TimeSeries, RejectsNonFiniteWidth) {
  // +inf passes a bare `> 0` check, folds every sample into bucket 0,
  // and still compares equal in the operator+= geometry check — a
  // silently wrong series on both ends.
  EXPECT_THROW(TimeSeries(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(TimeSeries(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
}

TEST(Histogram, RejectsNonFiniteEdges) {
  // An infinite edge passes `hi > lo` but makes the bin width infinite,
  // so every in-range add computes a NaN bin index (UB at the cast).
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(Histogram(-inf, 10.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, inf, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(std::numeric_limits<double>::quiet_NaN(), 10.0, 10),
               std::invalid_argument);
}

TEST(TimeSeries, MergeRejectsOneUlpWidthMismatch) {
  // The geometry check is a plain double compare, so it must already be
  // exact to the last ulp — pin that with bit_cast so a future "helpful"
  // epsilon-tolerance rewrite trips this test.
  const double w = 3600.0;
  const double w_ulp =
      std::bit_cast<double>(std::bit_cast<std::uint64_t>(w) + 1);
  ASSERT_NE(w, w_ulp);
  TimeSeries a(w);
  TimeSeries b(w_ulp);
  EXPECT_THROW(a += b, std::invalid_argument);
}

TEST(Histogram, MergeRejectsOneUlpEdgeMismatch) {
  const double hi = 60.0;
  const double hi_ulp =
      std::bit_cast<double>(std::bit_cast<std::uint64_t>(hi) + 1);
  Histogram a(0.0, hi, 100);
  Histogram b(0.0, hi_ulp, 100);
  EXPECT_THROW(a += b, std::invalid_argument);
}

TEST(Histogram, MergeAcceptsNegativeZeroEdge) {
  // -0.0 == 0.0: bitwise-different but numerically identical geometry.
  // Bin indices are computed from the numeric value, so samples land
  // identically on both sides and the merge is sound — the check is a
  // numeric compare, not a bit compare, and that is deliberate.
  ASSERT_NE(std::bit_cast<std::uint64_t>(0.0),
            std::bit_cast<std::uint64_t>(-0.0));
  Histogram a(0.0, 10.0, 10);
  Histogram b(-0.0, 10.0, 10);
  a.add(1.5);
  b.add(1.5);
  a += b;
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.bins()[1], 2u);
}

}  // namespace
}  // namespace dsf::metrics
