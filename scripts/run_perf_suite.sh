#!/usr/bin/env bash
# Builds (if needed) and runs the perf-regression suite, then validates
# that the emitted JSON is well-formed.  CI's bench-smoke job calls this
# with --quick and archives the JSON; locally, run without arguments for
# full budgets and compare items_per_s against BENCH_PR3.json.
#
# Usage: scripts/run_perf_suite.sh [--quick] [--out PATH] [--build-dir DIR]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"
out_path="${repo_root}/perf_suite.json"
quick_flag=""

while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) quick_flag="--quick"; shift ;;
    --out) out_path="$2"; shift 2 ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    *) echo "usage: $0 [--quick] [--out PATH] [--build-dir DIR]" >&2; exit 2 ;;
  esac
done

if [[ ! -x "${build_dir}/bench/bench_perf_suite" ]]; then
  cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release
  cmake --build "${build_dir}" --target bench_perf_suite -j
fi

"${build_dir}/bench/bench_perf_suite" ${quick_flag} --out "${out_path}"

# A truncated or malformed document must fail the job, not get archived.
if command -v python3 >/dev/null 2>&1; then
  python3 - "${out_path}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc.get("schema") == "dsf-perf-suite-v1", "unexpected schema"
results = doc["results"]
assert len(results) >= 5, "suite emitted too few results"
for r in results:
    assert r["items"] > 0 and r["wall_s"] > 0 and r["items_per_s"] > 0, r
print(f"validated {sys.argv[1]}: {len(results)} results")
EOF
else
  grep -q '"schema": "dsf-perf-suite-v1"' "${out_path}"
  echo "validated ${out_path} (grep only; python3 unavailable)"
fi
