#!/usr/bin/env bash
# Runs the open-loop load sweep (bench_load_sweep) and validates the
# resulting dsf-load-sweep-v1 document: schema tag, non-empty point list,
# the admission conservation laws on every point, and a sane rejection
# rate.  CI's bench-smoke job calls this with --quick (DSF_FAST, a step
# overload schedule) and archives the validated JSON; the full constant
# sweep produced BENCH_PR8.json at the repo root.
#
# Usage: scripts/run_load_sweep.sh [--quick] [--out PATH] [--build-dir DIR]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"
out_path="${repo_root}/load_sweep.json"
quick=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) quick=1; shift ;;
    --out) out_path="$2"; shift 2 ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    *) echo "usage: $0 [--quick] [--out PATH] [--build-dir DIR]" >&2; exit 2 ;;
  esac
done

if [[ ! -x "${build_dir}/bench/bench_load_sweep" ]]; then
  cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release
  cmake --build "${build_dir}" --target bench_load_sweep -j
fi

csv_path="${out_path%.json}_series.csv"
if [[ "${quick}" -eq 1 ]]; then
  # Step overload at 4x baseline under DSF_FAST: the shortest run that
  # still drives the federation through its saturation knee.
  DSF_FAST=1 "${build_dir}/bench/bench_load_sweep" \
    --schedule step --overload 4 \
    --out "${out_path}" --csv "${csv_path}"
else
  "${build_dir}/bench/bench_load_sweep" \
    --out "${out_path}" --csv "${csv_path}"
fi

# Validate before anything archives it; a malformed or
# conservation-violating document must fail the job.
python3 - "${out_path}" <<'EOF'
import json, sys
path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)
assert doc.get("schema") == "dsf-load-sweep-v1", f"bad schema in {path}"
assert doc.get("clean") is True, "sweep was not checker-clean"
points = doc.get("points", [])
assert points, "no sweep points"
for p in points:
    assert p["offered"] == p["admitted"] + p["rejected"], p
    assert p["admitted"] == p["completed"] + p["shed"] + p["pending"], p
    assert 0.0 <= p["rejection_rate"] <= 1.0, p
    assert p["latency_p50_ms"] <= p["latency_p95_ms"] <= p["latency_p99_ms"], p
p99s = [p["latency_p99_ms"] for p in points]
assert all(a <= b * 1.05 for a, b in zip(p99s, p99s[1:])), \
    f"p99 not monotone across offered-load steps: {p99s}"
print(f"validated {path}: {len(points)} points, "
      f"p99 {p99s[0]:.0f} -> {p99s[-1]:.0f} ms")
EOF
