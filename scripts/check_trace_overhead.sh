#!/usr/bin/env bash
# Flight-recorder overhead gate: runs the perf suite twice — once with the
# NullSink (tracing compiled in but disabled) and once with a live RingSink
# — and compares the hot-path benchmarks.  The contract this enforces:
#
#   * queue-ops (the engine's innermost loop, no sink in the path) must
#     stay within --threshold (default 5%) of the NullSink run, proving
#     the recorder costs nothing when it isn't recording;
#   * gnutella_day (full engine with the ring attached) is reported
#     informationally — a traced end-to-end run should also stay within a
#     few percent, but CI machines are too noisy to gate on it.
#
# Both runs use --repeat best-of-N so one noisy neighbor can't fail the
# gate.
#
# Usage: scripts/check_trace_overhead.sh [--build-dir DIR] [--repeat N]
#                                        [--threshold PCT]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"
repeat=3
threshold=5

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) build_dir="$2"; shift 2 ;;
    --repeat) repeat="$2"; shift 2 ;;
    --threshold) threshold="$2"; shift 2 ;;
    *) echo "usage: $0 [--build-dir DIR] [--repeat N] [--threshold PCT]" >&2
       exit 2 ;;
  esac
done

if [[ ! -x "${build_dir}/bench/bench_perf_suite" ]]; then
  cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release
  cmake --build "${build_dir}" --target bench_perf_suite -j
fi

null_json="$(mktemp)" ring_json="$(mktemp)"
trap 'rm -f "${null_json}" "${ring_json}"' EXIT

"${build_dir}/bench/bench_perf_suite" --quick --repeat "${repeat}" \
  --trace null --out "${null_json}"
"${build_dir}/bench/bench_perf_suite" --quick --repeat "${repeat}" \
  --trace ring --out "${ring_json}"

python3 - "${null_json}" "${ring_json}" "${threshold}" <<'EOF'
import json, sys

def load(path):
    with open(path) as f:
        doc = json.load(f)
    assert doc.get("schema") == "dsf-perf-suite-v1", "unexpected schema"
    return {r["name"]: r["items_per_s"] for r in doc["results"]}

null_run, ring_run = load(sys.argv[1]), load(sys.argv[2])
threshold = float(sys.argv[3])

failed = False
for name in sorted(null_run):
    base, traced = null_run[name], ring_run[name]
    overhead = 100.0 * (base - traced) / base
    gated = name.startswith("queue_ops")
    verdict = "ok"
    if gated and overhead > threshold:
        verdict = f"FAIL (> {threshold:.1f}%)"
        failed = True
    elif not gated:
        verdict = "info"
    print(f"{name:<20} null {base:>14.0f}/s  ring {traced:>14.0f}/s  "
          f"overhead {overhead:+6.2f}%  [{verdict}]")

if failed:
    sys.exit(1)
print(f"trace overhead within {threshold:.1f}% on all gated benchmarks")
EOF
