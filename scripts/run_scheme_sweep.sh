#!/usr/bin/env bash
# Runs the search-scheme sweep (bench_scheme_sweep) and validates the
# resulting dsf-scheme-sweep-v1 document: schema tag, checker-clean flag,
# all six scheme arms present over an identical query workload, the
# ranked-plane acceptance bars (top-k cuts query traffic >= 3x versus the
# flood at an EQUAL hit ratio — its pruning never withholds a forward
# that could change a verdict), and the planted-duplicates LSH recall
# stanza (>= 0.9).  CI's bench-smoke job calls this with --quick
# (DSF_FAST) and archives the validated JSON; the full sweep produced
# BENCH_PR10.json at the repo root.
#
# Usage: scripts/run_scheme_sweep.sh [--quick] [--out PATH] [--build-dir DIR]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"
out_path="${repo_root}/scheme_sweep.json"
quick=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) quick=1; shift ;;
    --out) out_path="$2"; shift 2 ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    *) echo "usage: $0 [--quick] [--out PATH] [--build-dir DIR]" >&2; exit 2 ;;
  esac
done

if [[ ! -x "${build_dir}/bench/bench_scheme_sweep" ]]; then
  cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release
  cmake --build "${build_dir}" --target bench_scheme_sweep -j
fi

csv_path="${out_path%.json}_series.csv"
if [[ "${quick}" -eq 1 ]]; then
  DSF_FAST=1 "${build_dir}/bench/bench_scheme_sweep" \
    --out "${out_path}" --csv "${csv_path}"
else
  "${build_dir}/bench/bench_scheme_sweep" \
    --out "${out_path}" --csv "${csv_path}"
fi

# Validate before anything archives it; a malformed document or a missed
# acceptance bar must fail the job.
python3 - "${out_path}" <<'EOF'
import json, sys
path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)
assert doc.get("schema") == "dsf-scheme-sweep-v1", f"bad schema in {path}"
assert doc.get("clean") is True, "sweep was not checker-clean"
arms = {a["scheme"]: a for a in doc.get("arms", [])}
expected = {"flood", "iterative", "directed", "local-indices", "top-k", "lsh"}
assert set(arms) == expected, f"missing scheme arm(s): {expected - set(arms)}"
queries = {a["queries"] for a in arms.values()}
assert len(queries) == 1, f"arms saw different query workloads: {queries}"
for a in arms.values():
    assert 0.0 <= a["hit_ratio"] <= 1.0, a
    assert a["hits"] <= a["queries"], a
# The ranked plane's acceptance bars.
comp = doc["topk_vs_flood"]
assert comp["traffic_reduction"] >= 3.0, \
    f"top-k traffic reduction {comp['traffic_reduction']} < 3x"
assert comp["topk_hits"] == comp["flood_hits"], \
    f"hit verdicts diverged: {comp['topk_hits']} vs {comp['flood_hits']}"
k = doc["top_k"]
assert arms["top-k"]["results"] <= k * arms["top-k"]["queries"], \
    "top-k arm returned more than k results per query"
recall = doc["lsh_recall"]
assert recall["true_pairs"] > 0, "recall stanza found no true pairs"
assert recall["recall"] >= 0.9, f"lsh recall {recall['recall']} < 0.9"
print(f"validated {path}: {len(arms)} arms, "
      f"top-k reduction {comp['traffic_reduction']:.2f}x at equal hit ratio, "
      f"lsh recall {recall['recall']:.3f}")
EOF
