#!/usr/bin/env bash
# Runs the Gnutella scale sweep — one bench_scale_sweep process per
# population so each run's peak RSS is attributable to its population —
# and assembles the per-run JSON documents into one dsf-scale-suite-v1
# file.  CI's bench-smoke job calls this with --quick (small populations,
# short horizons) and archives the suite JSON; the full sweep
# (10k / 100k / 1M peers, a simulated day each) produced BENCH_PR4.json
# at the repo root.
#
# Usage: scripts/run_scale_sweep.sh [--quick] [--out PATH] [--build-dir DIR]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"
out_path="${repo_root}/scale_suite.json"
quick=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) quick=1; shift ;;
    --out) out_path="$2"; shift 2 ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    *) echo "usage: $0 [--quick] [--out PATH] [--build-dir DIR]" >&2; exit 2 ;;
  esac
done

if [[ ! -x "${build_dir}/bench/bench_scale_sweep" ]]; then
  cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release
  cmake --build "${build_dir}" --target bench_scale_sweep -j
fi

# population  hours  replications — the full sweep is the paper-to-million
# trajectory; quick mode keeps CI under a minute while still exercising
# every code path (replicated merge included).
if [[ "${quick}" -eq 1 ]]; then
  runs=(
    "10000 0.5 2"
    "50000 0.25 1"
  )
else
  runs=(
    "10000 24 4"
    "100000 24 2"
    "1000000 24 1"
  )
fi

tmp_dir="$(mktemp -d)"
trap 'rm -rf "${tmp_dir}"' EXIT

run_files=()
for spec in "${runs[@]}"; do
  read -r peers hours reps <<<"${spec}"
  run_file="${tmp_dir}/run_${peers}.json"
  echo "--- scale sweep: ${peers} peers, ${hours} sim-hours, ${reps} replication(s)"
  "${build_dir}/bench/bench_scale_sweep" \
    --peers "${peers}" --hours "${hours}" --replications "${reps}" \
    --out "${run_file}"
  run_files+=("${run_file}")
done

# Assemble and validate the suite document; a truncated or malformed run
# file must fail the job, not get archived.
python3 - "${out_path}" "${quick}" "${run_files[@]}" <<'EOF'
import json, sys
out_path, quick, run_paths = sys.argv[1], sys.argv[2] == "1", sys.argv[3:]
runs = []
for path in run_paths:
    with open(path) as f:
        run = json.load(f)
    assert run.get("schema") == "dsf-scale-run-v1", f"bad schema in {path}"
    assert run["events"] > 0 and run["events_per_s"] > 0, run
    assert run["peak_rss_bytes"] > 0 and run["rss_per_peer"] > 0, run
    assert 0.0 <= run["hit_ratio"] <= 1.0, run
    runs.append(run)
suite = {"schema": "dsf-scale-suite-v1", "quick": quick, "runs": runs}
with open(out_path, "w") as f:
    json.dump(suite, f, indent=2)
    f.write("\n")
print(f"validated {out_path}: {len(runs)} runs")
EOF
