#!/usr/bin/env bash
# Runs the adversarial abuse sweep (bench_abuse_sweep) and validates the
# resulting dsf-abuse-sweep-v1 document: schema tag, checker-clean flag,
# non-empty point grid covering both schemes, the abuse conservation laws
# on every point (abuse traffic is a subset of total traffic, hits never
# exceed queries, a zero-fraction point carries zero abuse), and the case
# study stanza.  CI's bench-smoke job calls this with --quick (DSF_FAST)
# and archives the validated JSON; the full sweep produced BENCH_PR9.json
# at the repo root.
#
# Usage: scripts/run_abuse_sweep.sh [--quick] [--out PATH] [--build-dir DIR]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"
out_path="${repo_root}/abuse_sweep.json"
quick=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) quick=1; shift ;;
    --out) out_path="$2"; shift 2 ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    *) echo "usage: $0 [--quick] [--out PATH] [--build-dir DIR]" >&2; exit 2 ;;
  esac
done

if [[ ! -x "${build_dir}/bench/bench_abuse_sweep" ]]; then
  cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release
  cmake --build "${build_dir}" --target bench_abuse_sweep -j
fi

csv_path="${out_path%.json}_series.csv"
trace_path="${out_path%.json}_case_study_trace.json"
if [[ "${quick}" -eq 1 ]]; then
  DSF_FAST=1 "${build_dir}/bench/bench_abuse_sweep" \
    --out "${out_path}" --csv "${csv_path}" --trace-out "${trace_path}"
else
  "${build_dir}/bench/bench_abuse_sweep" \
    --out "${out_path}" --csv "${csv_path}" --trace-out "${trace_path}"
fi

# Validate before anything archives it; a malformed or
# conservation-violating document must fail the job.
python3 - "${out_path}" "${trace_path}" <<'EOF'
import json, sys
path, trace_path = sys.argv[1], sys.argv[2]
with open(path) as f:
    doc = json.load(f)
assert doc.get("schema") == "dsf-abuse-sweep-v1", f"bad schema in {path}"
assert doc.get("clean") is True, "sweep was not checker-clean"
points = doc.get("points", [])
assert points, "no sweep points"
schemes = {p["dynamic"] for p in points}
assert schemes == {True, False}, f"missing a scheme arm: {schemes}"
for p in points:
    # Abuse traffic is attributed, never invented: a strict subset of the
    # run ledger, hits bounded by queries, and exactly zero when the
    # abuser fraction is zero.
    assert p["abuse_messages"] <= p["total_messages"], p
    assert p["abuse_bytes"] <= p["total_bytes"], p
    assert p["abuse_hits"] <= p["abuse_queries"], p
    assert 0.0 <= p["abuse_traffic_share"] <= 1.0, p
    assert 0.0 <= p["good_hit_ratio"] <= 1.0, p
    if p["abuser_fraction"] == 0.0:
        assert p["abusers"] == 0 and p["abuse_queries"] == 0, p
        assert p["abuse_messages"] == 0 and p["abuse_bytes"] == 0, p
    else:
        assert p["abusers"] > 0 and p["abuse_queries"] > 0, p
case = doc.get("case_study", {})
assert case.get("abusers") == 1, f"case study should have one abuser: {case}"
assert case.get("trace_records", 0) > 0, "empty case-study trace"
with open(trace_path) as f:
    trace = json.load(f)
assert trace.get("traceEvents"), f"no traceEvents in {trace_path}"
shares = {(p["dynamic"], p["abuser_fraction"]): p["abuse_traffic_share"]
          for p in points}
print(f"validated {path}: {len(points)} points, "
      f"case-study share {case['abuse_traffic_share']:.3f}, "
      f"max abuse share {max(shares.values()):.3f}")
EOF
