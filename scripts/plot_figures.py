#!/usr/bin/env python3
"""Plot the paper-figure CSVs produced by the bench binaries.

Run the benches first (each writes its series CSV into the working
directory), then:

    python3 scripts/plot_figures.py [--dir DIR] [--out DIR]

Produces fig1.png .. fig3b.png mirroring the layout of Bakiras et al.
(IPDPS 2003) Figures 1-3.  Requires matplotlib; exits with a clear
message if it is unavailable (the CSVs remain usable with any tool).
"""

import argparse
import csv
import os
import sys


def read_csv(path):
    with open(path, newline="") as fh:
        rows = list(csv.DictReader(fh))
    if not rows:
        raise SystemExit(f"{path}: empty")
    return rows


def column(rows, key, cast=float):
    return [cast(r[key]) for r in rows]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default=".", help="directory with the CSVs")
    parser.add_argument("--out", default=".", help="output directory")
    args = parser.parse_args()

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        raise SystemExit(
            "matplotlib is not installed; the CSVs in "
            f"{os.path.abspath(args.dir)} are ready for any plotting tool")

    os.makedirs(args.out, exist_ok=True)

    def save(fig, name):
        path = os.path.join(args.out, name)
        fig.savefig(path, dpi=150, bbox_inches="tight")
        print(f"wrote {path}")

    # Figures 1 and 2: hits & messages per hour.
    for fig_name, csv_name, hops in (("fig1", "fig1_series.csv", 2),
                                     ("fig2", "fig2_series.csv", 4)):
        path = os.path.join(args.dir, csv_name)
        if not os.path.exists(path):
            print(f"skipping {fig_name}: {path} not found", file=sys.stderr)
            continue
        rows = read_csv(path)
        hours = column(rows, "hour")
        fig, (ax_hits, ax_msgs) = plt.subplots(1, 2, figsize=(11, 4))
        ax_hits.plot(hours, column(rows, "hits_static"), "s-",
                     label="Gnutella", markersize=3)
        ax_hits.plot(hours, column(rows, "hits_dynamic"), "o-",
                     label="Dynamic_Gnutella", markersize=3)
        ax_hits.set_xlabel("Hours")
        ax_hits.set_ylabel("Hits")
        ax_hits.set_title(f"(a) Queries satisfied (hops={hops})")
        ax_hits.legend()
        ax_msgs.plot(hours, column(rows, "msgs_static"), "s-",
                     label="Gnutella", markersize=3)
        ax_msgs.plot(hours, column(rows, "msgs_dynamic"), "o-",
                     label="Dynamic_Gnutella", markersize=3)
        ax_msgs.set_xlabel("Hours")
        ax_msgs.set_ylabel("Messages")
        ax_msgs.set_title(f"(b) Query overhead (hops={hops})")
        ax_msgs.legend()
        save(fig, f"{fig_name}.png")

    # Figure 3(a): delay bars annotated with total results.
    path = os.path.join(args.dir, "fig3a_series.csv")
    if os.path.exists(path):
        rows = read_csv(path)
        hops = column(rows, "hops")
        fig, ax = plt.subplots(figsize=(6.5, 4))
        width = 0.35
        xs = range(len(hops))
        static_delay = column(rows, "delay_ms_static")
        dynamic_delay = column(rows, "delay_ms_dynamic")
        bars_s = ax.bar([x - width / 2 for x in xs], static_delay, width,
                        label="Gnutella")
        bars_d = ax.bar([x + width / 2 for x in xs], dynamic_delay, width,
                        label="Dynamic_Gnutella")
        for bar, results in zip(bars_s, column(rows, "results_static", int)):
            ax.annotate(f"{results:,}", (bar.get_x() + bar.get_width() / 2,
                                         bar.get_height()),
                        ha="center", va="bottom", fontsize=7, rotation=45)
        for bar, results in zip(bars_d, column(rows, "results_dynamic", int)):
            ax.annotate(f"{results:,}", (bar.get_x() + bar.get_width() / 2,
                                         bar.get_height()),
                        ha="center", va="bottom", fontsize=7, rotation=45)
        ax.set_xticks(list(xs))
        ax.set_xticklabels(int(h) for h in hops)
        ax.set_xlabel("Terminating Condition (hops)")
        ax.set_ylabel("Average Delay (ms)")
        ax.set_title("(a) Average response time for first result")
        ax.legend()
        save(fig, "fig3a.png")

    # Figure 3(b): total results vs reconfiguration threshold.
    path = os.path.join(args.dir, "fig3b_series.csv")
    if os.path.exists(path):
        rows = read_csv(path)
        thresholds = column(rows, "threshold", int)
        fig, ax = plt.subplots(figsize=(6.5, 4))
        ax.plot(range(len(thresholds)), column(rows, "total_static"), "s-",
                label="Gnutella")
        ax.plot(range(len(thresholds)), column(rows, "total_dynamic"), "o-",
                label="Dynamic_Gnutella")
        ax.set_xticks(range(len(thresholds)))
        ax.set_xticklabels(thresholds)
        ax.set_xlabel("Reconfiguration Threshold (requests)")
        ax.set_ylabel("Total Hits")
        ax.set_title("(b) Effect of reconfiguration period")
        ax.legend()
        save(fig, "fig3b.png")


if __name__ == "__main__":
    main()
