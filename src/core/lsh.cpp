#include "core/lsh.h"

#include <cmath>

namespace dsf::core {

double lsh_collision_probability(double jaccard, std::uint32_t bands,
                                 std::uint32_t rows) noexcept {
  const double band_match = std::pow(jaccard, static_cast<double>(rows));
  return 1.0 - std::pow(1.0 - band_match, static_cast<double>(bands));
}

namespace {

/// splitmix64 finalizer: full-avalanche mixing of one 64-bit word.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t lsh_position_hash(std::uint64_t seed, std::uint32_t h,
                                std::uint64_t item) noexcept {
  // Each position h acts as an independent random permutation of the item
  // universe: mix the (seed, h) pair into a per-position key, then mix the
  // item under that key.
  return mix64(mix64(seed + h) ^ item);
}

void LshIndex::reserve(std::size_t num_nodes) {
  sigs_.reserve(num_nodes * params_.hashes());
  keys_.reserve(num_nodes * params_.bands);
  empty_.reserve(num_nodes);
}

void LshIndex::append_band_keys(std::size_t sig_base) {
  for (std::uint32_t b = 0; b < params_.bands; ++b) {
    // Fold the band's rows into one bucket key; the band index is mixed in
    // so identical row values in different bands never alias.
    std::uint64_t key = mix64(params_.seed ^ (0xb0b0'0000ULL + b));
    for (std::uint32_t r = 0; r < params_.rows; ++r)
      key = mix64(key ^ sigs_[sig_base + std::size_t{b} * params_.rows + r]);
    keys_.push_back(key);
  }
}

bool LshIndex::candidate(net::NodeId a, net::NodeId b) const noexcept {
  if (a == b) return false;
  if (empty_[a] || empty_[b]) return false;
  const auto ka = band_keys(a);
  const auto kb = band_keys(b);
  for (std::uint32_t i = 0; i < params_.bands; ++i)
    if (ka[i] == kb[i]) return true;
  return false;
}

double LshIndex::estimated_similarity(net::NodeId a,
                                      net::NodeId b) const noexcept {
  if (a == b) return 1.0;
  if (empty_[a] || empty_[b]) return 0.0;
  const auto sa = signature(a);
  const auto sb = signature(b);
  std::uint32_t match = 0;
  for (std::uint32_t i = 0; i < params_.hashes(); ++i)
    if (sa[i] == sb[i]) ++match;
  return static_cast<double>(match) / static_cast<double>(params_.hashes());
}

}  // namespace dsf::core
