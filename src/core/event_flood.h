#pragma once

// Message-level reference implementation of the query flood: every
// transmission is a discrete event on a Simulator.  This exists to
// validate the eager expansion of flood_search() (DESIGN.md §1.4): with a
// deterministic delay function the two produce identical message counts,
// hit sets and reply times.  The eager version is what the experiment
// harness uses (it is ~50× faster); this one is the ground truth the
// equivalence tests compare against, and a template for users who need
// queries that interact mid-flight.
//
// The fan-out follows the batched DES dispatch contract (DESIGN.md §1.5):
// one node's expansion counts and stamps every neighbor first, then issues
// a single bulk insertion into the event queue.  Each scheduled hop
// captures a raw pointer to the flood context — which lives on the
// caller's stack for the whole drain — plus the hop coordinates, 32 bytes
// in total, so steady-state flooding never touches the heap allocator for
// callbacks.

#include <utility>
#include <vector>

#include "core/flood_search.h"
#include "des/simulator.h"

namespace dsf::core {

/// Runs one query flood by scheduling each hop as a simulator event,
/// starting at the simulator's current time.  Returns when the simulator
/// drains (the caller's simulator must not hold unrelated events).
/// Semantics mirror flood_search: forward to every neighbor except the
/// sender, duplicates counted-then-discarded, holders reply directly to
/// the initiator and do not forward unless `forward_when_hit`.
template <typename NeighborsFn, typename HasContentFn, typename DelayFn>
SearchOutcome event_flood_search(des::Simulator& sim, net::NodeId initiator,
                                 const SearchParams& params,
                                 NeighborsFn&& neighbors,
                                 HasContentFn&& has_content, DelayFn&& delay,
                                 VisitStamp& stamps) {
  // All flood state lives in this frame: sim.run() below drains every
  // scheduled hop before the function returns, so events reference the
  // context by plain pointer instead of a shared_ptr copy per hop.
  struct Ctx {
    des::Simulator& sim;
    const SearchParams& params;
    NeighborsFn& neighbors;
    HasContentFn& has_content;
    DelayFn& delay;
    VisitStamp& stamps;
    net::NodeId initiator;
    double start;
    SearchOutcome out;

    /// One expansion's accepted deliveries, gathered before the bulk
    /// schedule.  Reused across expansions: send_from never recurses (it
    /// only schedules future events), so one buffer suffices.
    struct Pending {
      net::NodeId nbr;
      double arrival;
    };
    std::vector<Pending> fanout;

    void send_from(net::NodeId node, net::NodeId sender, int hop,
                   double now_rel) {
      if (hop >= params.max_hops) return;
      fanout.clear();
      for (net::NodeId nbr : neighbors(node)) {
        if (nbr == sender) continue;
        ++out.query_messages;
        if (!stamps.mark(nbr)) continue;  // counted, but receiver will drop
        const double arrival = now_rel + delay(node, nbr);
        ++out.nodes_reached;
        fanout.push_back({nbr, arrival});
      }
      const int next_hop = hop + 1;
      Ctx* ctx = this;
      sim.schedule_at_batch(fanout.size(), [&](std::size_t i) {
        const Pending p = fanout[i];
        auto hop_cb = [ctx, p, node, next_hop] {
          ctx->arrive(p.nbr, node, next_hop, p.arrival);
        };
        static_assert(des::Callback::stores_inline<decltype(hop_cb)>(),
                      "event-flood hop capture must fit the callback SBO");
        return std::pair<des::SimTime, des::Callback>(start + p.arrival,
                                                      std::move(hop_cb));
      });
    }

    void arrive(net::NodeId node, net::NodeId sender, int hop,
                double arrival) {
      bool forward = true;
      if (has_content(node)) {
        const double reply_at = arrival + delay(node, initiator);
        if (reply_at <= params.timeout_s) {
          ++out.reply_messages;
          out.hits.push_back({node, hop, arrival, reply_at});
        }
        if (!params.forward_when_hit) forward = false;
      }
      if (forward) send_from(node, sender, hop, arrival);
    }
  };

  Ctx ctx{sim,    params,    neighbors, has_content, delay,
          stamps, initiator, sim.now(), {},          {}};
  ctx.stamps.begin_search();
  ctx.stamps.mark(initiator);
  ctx.send_from(initiator, net::kInvalidNode, 0, 0.0);
  sim.run();
  return ctx.out;
}

}  // namespace dsf::core
