#pragma once

// Message-level reference implementation of the query flood: every
// transmission is a discrete event on a Simulator.  This exists to
// validate the eager expansion of flood_search() (DESIGN.md §1.4): with a
// deterministic delay function the two produce identical message counts,
// hit sets and reply times.  The eager version is what the experiment
// harness uses (it is ~50× faster); this one is the ground truth the
// equivalence tests compare against, and a template for users who need
// queries that interact mid-flight.

#include <memory>

#include "core/flood_search.h"
#include "des/simulator.h"

namespace dsf::core {

/// Runs one query flood by scheduling each hop as a simulator event,
/// starting at the simulator's current time.  Returns when the simulator
/// drains (the caller's simulator must not hold unrelated events).
/// Semantics mirror flood_search: forward to every neighbor except the
/// sender, duplicates counted-then-discarded, holders reply directly to
/// the initiator and do not forward unless `forward_when_hit`.
template <typename NeighborsFn, typename HasContentFn, typename DelayFn>
SearchOutcome event_flood_search(des::Simulator& sim, net::NodeId initiator,
                                 const SearchParams& params,
                                 NeighborsFn&& neighbors,
                                 HasContentFn&& has_content, DelayFn&& delay,
                                 VisitStamp& stamps) {
  struct State {
    SearchOutcome out;
    double start = 0.0;
  };
  auto state = std::make_shared<State>();
  state->start = sim.now();
  stamps.begin_search();
  stamps.mark(initiator);

  // Recursive lambda via shared_ptr: deliver(node, sender, hop) runs when
  // the query message lands on `node`.
  struct Deliver {
    des::Simulator& sim;
    std::shared_ptr<State> state;
    const SearchParams& params;
    NeighborsFn& neighbors;
    HasContentFn& has_content;
    DelayFn& delay;
    VisitStamp& stamps;
    net::NodeId initiator;

    void send_from(net::NodeId node, net::NodeId sender, int hop,
                   double now_rel) {
      if (hop >= params.max_hops) return;
      for (net::NodeId nbr : neighbors(node)) {
        if (nbr == sender) continue;
        ++state->out.query_messages;
        if (!stamps.mark(nbr)) continue;  // counted, but receiver will drop
        const double arrival = now_rel + delay(node, nbr);
        ++state->out.nodes_reached;
        const int next_hop = hop + 1;
        auto self = *this;
        sim.schedule_at(state->start + arrival,
                        [self, nbr, node, next_hop, arrival]() mutable {
                          self.arrive(nbr, node, next_hop, arrival);
                        });
      }
    }

    void arrive(net::NodeId node, net::NodeId sender, int hop,
                double arrival) {
      bool forward = true;
      if (has_content(node)) {
        const double reply_at = arrival + delay(node, initiator);
        if (reply_at <= params.timeout_s) {
          ++state->out.reply_messages;
          state->out.hits.push_back({node, hop, arrival, reply_at});
        }
        if (!params.forward_when_hit) forward = false;
      }
      if (forward) send_from(node, sender, hop, arrival);
    }
  };

  Deliver deliver{sim,     state,       params, neighbors,
                  has_content, delay, stamps, initiator};
  deliver.send_from(initiator, net::kInvalidNode, 0, 0.0);
  sim.run();
  return state->out;
}

}  // namespace dsf::core
