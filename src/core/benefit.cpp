#include "core/benefit.h"

#include <algorithm>

namespace dsf::core {

double BandwidthOverResults::benefit(const ResultInfo& r) const {
  const double results = std::max<std::uint32_t>(r.total_results, 1);
  return r.bandwidth_kbps / results;
}

double ItemsOverLatency::benefit(const ResultInfo& r) const {
  return r.items / std::max(r.latency_s, min_latency_s_);
}

double ProcessingTimeSaved::benefit(const ResultInfo& r) const {
  return r.processing_time_saved_s;
}

double InverseLatency::benefit(const ResultInfo& r) const {
  return 1.0 / std::max(r.latency_s, min_latency_s_);
}

}  // namespace dsf::core
