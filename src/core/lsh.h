#pragma once

// Distributed locality-sensitive hashing over per-peer item sets (Bahmani,
// Goel & Shinde, "Efficient distributed locality sensitive hashing"): each
// peer summarizes its library as a MinHash signature — bands × rows
// independent min-hashes — and advertises one bucket key per band (the
// hash of that band's rows).  Two peers land in the same bucket for some
// band with probability 1 - (1 - s^rows)^bands, the classic S-curve in
// their true Jaccard similarity s, so bucket collision is a cheap,
// tunable filter for "similar enough".
//
// The index answers two questions the similarity scheme needs:
//   * candidate(a, b)            — do any of a's and b's band buckets
//                                  collide (the routing/examination gate);
//   * estimated_similarity(a, b) — the fraction of matching signature
//                                  positions, an unbiased estimate of the
//                                  Jaccard similarity (each position
//                                  matches independently with probability
//                                  exactly s — the MinHash property the
//                                  chi-square stat test pins).
//
// lsh_similarity_search runs the query over an unstructured overlay in
// two phases: a scatter phase (the first ceil(max_hops/2) hops forward
// everywhere, getting the signature out of the initiator's neighborhood)
// and a gather phase (beyond the scatter radius, a peer forwards only to
// neighbors whose advertised buckets collide with the query's — banded
// bucket routing over the same one-hop digest exchange the local-indices
// strategy assumes).  Withheld forwards count into pruned_subtrees.

#include <cstdint>
#include <span>
#include <vector>

#include "core/flood_search.h"
#include "net/message.h"
#include "net/node_id.h"

namespace dsf::core {

/// Signature geometry.  Collision probability at Jaccard s is
/// 1 - (1 - s^rows)^bands: the defaults put the S-curve's steep rise
/// around s ~ 0.5 (16 bands x 4 rows).
struct LshParams {
  std::uint32_t bands = 16;
  std::uint32_t rows = 4;
  std::uint64_t seed = 0x15bd1f3a5c0ffee5ULL;

  std::uint32_t hashes() const noexcept { return bands * rows; }
};

/// P(some band collides) = 1 - (1 - s^rows)^bands for true Jaccard s.
double lsh_collision_probability(double jaccard, std::uint32_t bands,
                                 std::uint32_t rows) noexcept;

/// Stateless position hash: the h-th min-hash permutation applied to one
/// item (splitmix64-style finalizer; exposed for the stat tests).
std::uint64_t lsh_position_hash(std::uint64_t seed, std::uint32_t h,
                                std::uint64_t item) noexcept;

/// Per-peer MinHash signatures plus banded bucket keys, nodes appended in
/// id order.  Empty item sets get a sentinel signature that never matches
/// anything (an empty library resembles nothing, including another empty
/// one — free-riders must not cluster).
class LshIndex {
 public:
  explicit LshIndex(LshParams params = {}) : params_(params) {}

  void reserve(std::size_t num_nodes);

  /// Appends the next node's signature from its (unique-element) item set.
  template <typename Item>
  void append_node(std::span<const Item> items) {
    const std::uint32_t n = params_.hashes();
    const std::size_t base = sigs_.size();
    sigs_.resize(base + n, ~0ULL);
    empty_.push_back(items.empty() ? 1 : 0);
    for (std::uint32_t h = 0; h < n; ++h) {
      std::uint64_t best = ~0ULL;
      for (const Item item : items) {
        const std::uint64_t v = lsh_position_hash(
            params_.seed, h, static_cast<std::uint64_t>(item));
        if (v < best) best = v;
      }
      sigs_[base + h] = best;
    }
    append_band_keys(base);
  }

  std::size_t num_nodes() const noexcept { return empty_.size(); }
  const LshParams& params() const noexcept { return params_; }

  std::span<const std::uint64_t> signature(net::NodeId n) const noexcept {
    return {sigs_.data() + std::size_t{n} * params_.hashes(),
            params_.hashes()};
  }
  std::span<const std::uint64_t> band_keys(net::NodeId n) const noexcept {
    return {keys_.data() + std::size_t{n} * params_.bands, params_.bands};
  }

  /// Any band bucket shared?  False whenever either side is empty.
  bool candidate(net::NodeId a, net::NodeId b) const noexcept;

  /// Fraction of matching signature positions — the MinHash estimate of
  /// the Jaccard similarity.  0 whenever either side is empty.
  double estimated_similarity(net::NodeId a, net::NodeId b) const noexcept;

  std::size_t memory_bytes() const noexcept {
    return sigs_.capacity() * sizeof(std::uint64_t) +
           keys_.capacity() * sizeof(std::uint64_t) + empty_.capacity();
  }

 private:
  void append_band_keys(std::size_t sig_base);

  LshParams params_;
  std::vector<std::uint64_t> sigs_;   ///< num_nodes x hashes()
  std::vector<std::uint64_t> keys_;   ///< num_nodes x bands
  std::vector<std::uint8_t> empty_;   ///< 1 = empty item set (matches nothing)
};

/// Similarity search over an unstructured overlay ("find peers like the
/// initiator").  `similarity(n)` estimates the initiator's similarity to
/// n; `candidate(n)` is the band-bucket collision gate.  A visited peer
/// replies (scored hit) when it is a candidate and clears `threshold`;
/// forwarding scatters for the first ceil(max_hops/2) hops, then follows
/// buckets only.  Message accounting matches flood_search: attempted
/// transmissions count, lost copies do not mark, delays are sampled only
/// for first deliveries; withheld gather-phase forwards count into
/// pruned_subtrees.
template <typename NeighborsFn, typename SimilarityFn, typename CandidateFn,
          typename DelayFn, typename TransmitFn>
SearchOutcome lsh_similarity_search(net::NodeId initiator,
                                    const SearchParams& params,
                                    double threshold, NeighborsFn&& neighbors,
                                    SimilarityFn&& similarity,
                                    CandidateFn&& candidate, DelayFn&& delay,
                                    TransmitFn&& transmit, VisitStamp& stamps,
                                    SearchScratch& scratch) {
  SearchOutcome out;
  transmit.begin(params.max_hops);
  stamps.begin_search();
  stamps.mark(initiator);

  const int scatter_radius = (params.max_hops + 1) / 2;

  auto& queue = scratch.queue;
  queue.clear();
  queue.push_back({initiator, net::kInvalidNode, 0, 0.0});

  for (std::size_t head = 0; head < queue.size(); ++head) {
    const auto cur = queue[head];  // copy: push_back below may reallocate
    if (cur.hop >= params.max_hops) continue;
    for (net::NodeId nbr : neighbors(cur.node)) {
      if (nbr == cur.sender) continue;
      // Banded bucket routing: beyond the scatter radius the query
      // follows the advertised buckets only.
      if (cur.hop + 1 > scatter_radius && !candidate(nbr)) {
        ++out.pruned_subtrees;
        continue;
      }
      ++out.query_messages;
      const TransmitResult tq = transmit(net::MessageType::kQuery, cur.node,
                                         nbr, params.max_hops - cur.hop);
      if (tq.duplicate) ++out.query_messages;
      if (!tq.deliver) continue;
      if (!stamps.mark(nbr)) continue;
      const double arrival =
          cur.arrival_s + delay(cur.node, nbr) + tq.extra_delay_s;
      ++out.nodes_reached;

      const int hop = cur.hop + 1;
      bool forward = hop < params.max_hops;
      if (candidate(nbr)) {
        const double score = similarity(nbr);
        if (score >= threshold) {
          const double reply_at = arrival + delay(nbr, initiator);
          if (reply_at <= params.timeout_s) {
            ++out.reply_messages;
            const TransmitResult tr =
                transmit(net::MessageType::kQueryReply, nbr, initiator, -1);
            if (tr.duplicate) ++out.reply_messages;
            if (tr.deliver && reply_at + tr.extra_delay_s <= params.timeout_s)
              out.hits.push_back(
                  {nbr, hop, arrival, reply_at + tr.extra_delay_s, score});
          }
          if (!params.forward_when_hit) forward = false;
        }
      }
      if (forward) queue.push_back({nbr, cur.node, hop, arrival});
    }
  }
  return out;
}

}  // namespace dsf::core
