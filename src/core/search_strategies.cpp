#include "core/search_strategies.h"

namespace dsf::core {

std::vector<int> default_depth_ladder(int max_hops) {
  if (max_hops <= 1) return {max_hops};
  const int probe = (max_hops + 1) / 2;
  if (probe == max_hops) return {max_hops};
  return {probe, max_hops};
}

std::vector<net::NodeId> select_directed_subset(
    const StatsStore& stats, std::span<const net::NodeId> neighbors,
    std::size_t fanout) {
  std::vector<net::NodeId> ranked(neighbors.begin(), neighbors.end());
  std::sort(ranked.begin(), ranked.end(),
            [&stats](net::NodeId a, net::NodeId b) {
              const double ba = stats.benefit_of(a);
              const double bb = stats.benefit_of(b);
              if (ba != bb) return ba > bb;
              return a < b;
            });
  if (ranked.size() > fanout) ranked.resize(fanout);
  return ranked;
}

}  // namespace dsf::core
