#include "core/update.h"

#include <algorithm>
#include <span>

namespace dsf::core {

namespace {

bool contains(std::span<const net::NodeId> v, net::NodeId n) noexcept {
  return std::find(v.begin(), v.end(), n) != v.end();
}

}  // namespace

UpdatePlan plan_update(const StatsStore& stats,
                       std::span<const net::NodeId> current_out,
                       std::size_t capacity, const EligibleFn& eligible) {
  // Candidate set: known peers plus current neighbors (the latter may have
  // no statistics yet, e.g. fresh random links).
  struct Ranked {
    double benefit;
    bool is_current;
    net::NodeId node;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(stats.size() + current_out.size());
  for (const auto& [peer, b] : stats.entries()) {
    if (!eligible(peer)) continue;
    ranked.push_back({b, contains(current_out, peer), peer});
  }
  for (net::NodeId n : current_out) {
    if (!stats.knows(n) && eligible(n)) ranked.push_back({0.0, true, n});
  }

  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.benefit != b.benefit) return a.benefit > b.benefit;
    if (a.is_current != b.is_current) return a.is_current;  // damp churn
    return a.node < b.node;
  });
  if (ranked.size() > capacity) ranked.resize(capacity);

  UpdatePlan plan;
  plan.new_out.reserve(ranked.size());
  for (const Ranked& r : ranked) plan.new_out.push_back(r.node);
  for (net::NodeId n : plan.new_out)
    if (!contains(current_out, n)) plan.additions.push_back(n);
  for (net::NodeId n : current_out)
    if (!contains(plan.new_out, n)) plan.evictions.push_back(n);
  return plan;
}

net::NodeId least_beneficial(const StatsStore& stats,
                             std::span<const net::NodeId> list) {
  net::NodeId worst = net::kInvalidNode;
  double worst_benefit = 0.0;
  for (net::NodeId n : list) {
    const double b = stats.benefit_of(n);
    if (worst == net::kInvalidNode || b < worst_benefit ||
        (b == worst_benefit && n > worst)) {
      worst = n;
      worst_benefit = b;
    }
  }
  return worst;
}

InvitationDecision decide_invitation(const StatsStore& stats,
                                     net::NodeId inviter,
                                     std::span<const net::NodeId> in_list,
                                     std::size_t capacity,
                                     InvitationPolicy policy) {
  InvitationDecision d;
  if (contains(in_list, inviter)) return d;  // already a neighbor: reject
  if (in_list.size() < capacity) {
    d.accept = true;
    return d;
  }
  const net::NodeId worst = least_beneficial(stats, in_list);
  switch (policy) {
    case InvitationPolicy::kAlwaysAccept:
    case InvitationPolicy::kTrialPeriod:  // provisional accept; the trial
                                          // evaluation is the scenario's job
      d.accept = true;
      d.evict = worst;
      break;
    case InvitationPolicy::kBenefitGated:
    case InvitationPolicy::kSummaryGated:  // no digest here: stats fallback
      if (stats.benefit_of(inviter) > stats.benefit_of(worst)) {
        d.accept = true;
        d.evict = worst;
      }
      break;
  }
  return d;
}

}  // namespace dsf::core
