#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/relations.h"
#include "net/node_id.h"

namespace dsf::core {

/// Predicate selecting which nodes participate in a graph statistic
/// (typically: the on-line ones).
using NodeFilter = std::function<bool(net::NodeId)>;

/// Gini of an arbitrary non-negative sample (exposed for tests and other
/// inequality metrics).
double gini(std::vector<double> values);

// The statistics are templates over the table type so the reference
// NeighborTable and the compact million-peer table (compact_relations.h)
// share one implementation — both expose size(), lists(i).out() and
// lists(i).has_out().

/// Mean outgoing degree over the nodes accepted by `filter`.
template <typename Table>
double mean_degree(const Table& table, const NodeFilter& filter) {
  double sum = 0.0;
  std::size_t n = 0;
  for (net::NodeId i = 0; i < table.size(); ++i) {
    if (!filter(i)) continue;
    sum += static_cast<double>(table.lists(i).out().size());
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

/// Gini coefficient of the outgoing-degree distribution over the accepted
/// nodes — 0 when every node has the same degree, →1 as connectivity
/// concentrates on few nodes.  The always-accept invitation protocol tends
/// to starve unattractive nodes; this is the one-number summary of that
/// effect (see DESIGN.md).
template <typename Table>
double degree_gini(const Table& table, const NodeFilter& filter) {
  std::vector<double> degrees;
  for (net::NodeId i = 0; i < table.size(); ++i)
    if (filter(i))
      degrees.push_back(static_cast<double>(table.lists(i).out().size()));
  return gini(std::move(degrees));
}

/// Mean local clustering coefficient (fraction of a node's neighbor pairs
/// that are themselves linked), treating out-lists as undirected edges.
/// Random overlays sit near degree/N; taste-clustered communities score an
/// order of magnitude higher.
template <typename Table>
double clustering_coefficient(const Table& table, const NodeFilter& filter) {
  double sum = 0.0;
  std::size_t n = 0;
  for (net::NodeId i = 0; i < table.size(); ++i) {
    if (!filter(i)) continue;
    const auto& nbrs = table.lists(i).out();
    if (nbrs.size() < 2) continue;
    std::size_t linked = 0, pairs = 0;
    for (std::size_t a = 0; a < nbrs.size(); ++a) {
      for (std::size_t b = a + 1; b < nbrs.size(); ++b) {
        ++pairs;
        if (table.lists(nbrs[a]).has_out(nbrs[b]) ||
            table.lists(nbrs[b]).has_out(nbrs[a]))
          ++linked;
      }
    }
    sum += static_cast<double>(linked) / static_cast<double>(pairs);
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

/// Fraction of (node, out-neighbor) pairs whose `attribute` matches — the
/// homophily measure used for "neighbors share the favourite category".
template <typename Table>
double same_attribute_fraction(
    const Table& table, const NodeFilter& filter,
    const std::function<std::uint32_t(net::NodeId)>& attribute) {
  std::size_t same = 0, pairs = 0;
  for (net::NodeId i = 0; i < table.size(); ++i) {
    if (!filter(i)) continue;
    const std::uint32_t a = attribute(i);
    for (net::NodeId j : table.lists(i).out()) {
      ++pairs;
      if (attribute(j) == a) ++same;
    }
  }
  return pairs ? static_cast<double>(same) / static_cast<double>(pairs) : 0.0;
}

}  // namespace dsf::core
