#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/relations.h"
#include "net/node_id.h"

namespace dsf::core {

/// Predicate selecting which nodes participate in a graph statistic
/// (typically: the on-line ones).
using NodeFilter = std::function<bool(net::NodeId)>;

/// Mean outgoing degree over the nodes accepted by `filter`.
double mean_degree(const NeighborTable& table, const NodeFilter& filter);

/// Gini coefficient of the outgoing-degree distribution over the accepted
/// nodes — 0 when every node has the same degree, →1 as connectivity
/// concentrates on few nodes.  The always-accept invitation protocol tends
/// to starve unattractive nodes; this is the one-number summary of that
/// effect (see DESIGN.md).
double degree_gini(const NeighborTable& table, const NodeFilter& filter);

/// Mean local clustering coefficient (fraction of a node's neighbor pairs
/// that are themselves linked), treating out-lists as undirected edges.
/// Random overlays sit near degree/N; taste-clustered communities score an
/// order of magnitude higher.
double clustering_coefficient(const NeighborTable& table,
                              const NodeFilter& filter);

/// Fraction of (node, out-neighbor) pairs whose `attribute` matches — the
/// homophily measure used for "neighbors share the favourite category".
double same_attribute_fraction(
    const NeighborTable& table, const NodeFilter& filter,
    const std::function<std::uint32_t(net::NodeId)>& attribute);

/// Gini of an arbitrary non-negative sample (exposed for tests and other
/// inequality metrics).
double gini(std::vector<double> values);

}  // namespace dsf::core
