#pragma once

// Fully-distributed top-k search with threshold propagation (Akbarinia,
// Pacitti & Valduriez, "Reducing network traffic in unstructured P2P
// systems using Top-k queries"): every peer scores the query against its
// local items, replies carry scores, and the query itself carries the
// initiator's current k-th-best floor so subtrees that cannot beat it are
// never entered.
//
// The model grants each peer a scored one-hop digest of its neighbors —
// the same digest machinery the local-indices strategy already assumes
// for content (neighbors exchange summaries when a link forms).  That
// digest is what makes the floor *enforceable*: a peer about to spend the
// query's last hop on neighbor m knows m's best local score, and withholds
// the forward when that bound cannot clear the floor.  Deeper subtrees
// have no sound bound (anything may hide two hops away), so they are
// always entered — pruning never costs a result the flood would have
// found, which is what keeps the satisfied() verdict identical per query.
//
// The frontier is expanded in arrival-time order (a min-heap on the
// per-edge delay sums) rather than BFS order, because the floor is a
// *moving* threshold: it is the k-th best score among replies that have
// reached the initiator by the time the forward happens.  Time-ordering
// makes "by the time" well-defined and deterministic.
//
// Message accounting matches flood_search exactly: every attempted
// transmission counts (duplicates included), lost copies do not mark the
// receiver, and delays are sampled only for first deliveries.  Withheld
// forwards count into SearchOutcome::pruned_subtrees instead of
// query_messages — they are the scheme's savings.

#include <algorithm>
#include <cstdint>

#include "core/flood_search.h"
#include "net/message.h"
#include "net/node_id.h"

namespace dsf::core {

/// Ranked top-k search.  `rank(n)` is n's best local score for this query:
/// > 0 iff n can contribute a result (for exact-content scenarios,
/// 0 unless `n` holds the item).  Hits carry their scores; the outcome's
/// hit list is the true top-k by score (ties broken toward earlier
/// replies), truncated to k, sorted best-first.
template <typename NeighborsFn, typename RankFn, typename DelayFn,
          typename TransmitFn>
SearchOutcome ranked_topk_search(net::NodeId initiator,
                                 const SearchParams& params, std::uint32_t k,
                                 NeighborsFn&& neighbors, RankFn&& rank,
                                 DelayFn&& delay, TransmitFn&& transmit,
                                 VisitStamp& stamps, SearchScratch& scratch) {
  SearchOutcome out;
  out.k_target = k;
  if (k == 0) return out;
  transmit.begin(params.max_hops);
  stamps.begin_search();
  stamps.mark(initiator);

  using Frontier = SearchScratch::Frontier;
  // Earliest arrival first; ties broken on (node, sender, hop) so the
  // expansion order is a pure function of the inputs.
  const auto later = [](const Frontier& a, const Frontier& b) {
    if (a.arrival_s != b.arrival_s) return a.arrival_s > b.arrival_s;
    if (a.node != b.node) return a.node > b.node;
    if (a.sender != b.sender) return a.sender > b.sender;
    return a.hop > b.hop;
  };

  auto& heap = scratch.heap;
  heap.clear();
  heap.push_back({initiator, net::kInvalidNode, 0, 0.0});

  // Replies en route to the initiator, consumed into the floor set once
  // the expansion clock passes their arrival.  Both kept deterministic:
  // `pending` is filled in expansion order and scanned linearly (searches
  // touch tens of nodes, not thousands), `floor_scores` holds the k best
  // scores among arrived replies.
  auto& pending = scratch.replies;
  pending.clear();
  auto& floor_scores = scratch.floor_scores;  // size <= k, min first when full
  floor_scores.clear();

  const auto floor_at = [&](double now_s) {
    for (std::size_t i = 0; i < pending.size();) {
      if (pending[i].reply_at_s <= now_s) {
        const double s = pending[i].score;
        if (floor_scores.size() < k) {
          floor_scores.push_back(s);
          std::sort(floor_scores.begin(), floor_scores.end());
        } else if (s > floor_scores.front()) {
          floor_scores.front() = s;
          std::sort(floor_scores.begin(), floor_scores.end());
        }
        pending[i] = pending.back();
        pending.pop_back();
      } else {
        ++i;
      }
    }
    // The floor starts at 0: until the top-k fills, any positive score —
    // i.e. any peer that has content at all — clears it.
    return floor_scores.size() < k ? 0.0 : floor_scores.front();
  };

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    const Frontier cur = heap.back();
    heap.pop_back();
    if (cur.hop >= params.max_hops) continue;
    const double floor = floor_at(cur.arrival_s);
    const bool last_hop = cur.hop + 1 >= params.max_hops;
    for (net::NodeId nbr : neighbors(cur.node)) {
      if (nbr == cur.sender) continue;
      // Threshold propagation: the query carries `floor`, and the scored
      // one-hop digest bounds what `nbr` alone can contribute.  When the
      // forward's remaining budget ends at nbr (last hop), a bound at or
      // below the floor cannot change the top-k — withhold the forward.
      // Deeper forwards have no sound bound and always go out.
      if (last_hop && rank(nbr) <= floor) {
        ++out.pruned_subtrees;
        continue;
      }
      ++out.query_messages;
      const TransmitResult tq = transmit(net::MessageType::kQuery, cur.node,
                                         nbr, params.max_hops - cur.hop);
      if (tq.duplicate) ++out.query_messages;
      if (!tq.deliver) continue;
      if (!stamps.mark(nbr)) continue;
      const double arrival =
          cur.arrival_s + delay(cur.node, nbr) + tq.extra_delay_s;
      ++out.nodes_reached;

      const int hop = cur.hop + 1;
      bool forward = hop < params.max_hops;
      const double score = rank(nbr);
      if (score > 0.0) {
        const double reply_at = arrival + delay(nbr, initiator);
        if (reply_at <= params.timeout_s) {
          ++out.reply_messages;
          const TransmitResult tr =
              transmit(net::MessageType::kQueryReply, nbr, initiator, -1);
          if (tr.duplicate) ++out.reply_messages;
          if (tr.deliver && reply_at + tr.extra_delay_s <= params.timeout_s) {
            out.hits.push_back(
                {nbr, hop, arrival, reply_at + tr.extra_delay_s, score});
            pending.push_back({reply_at + tr.extra_delay_s, score});
          }
        }
        if (!params.forward_when_hit) forward = false;
      }
      if (forward) {
        heap.push_back({nbr, cur.node, hop, arrival});
        std::push_heap(heap.begin(), heap.end(), later);
      }
    }
  }

  // The initiator keeps the k best: best score first, earlier replies
  // breaking ties (deterministic for equal scores).
  std::sort(out.hits.begin(), out.hits.end(),
            [](const SearchHit& a, const SearchHit& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.reply_at_s != b.reply_at_s)
                return a.reply_at_s < b.reply_at_s;
              return a.node < b.node;
            });
  if (out.hits.size() > k) out.hits.resize(k);
  return out;
}

}  // namespace dsf::core
