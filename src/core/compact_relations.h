#pragma once

// Arena-backed compact neighbor storage for million-peer overlays.
//
// core::NeighborTable keeps two std::vectors per node — 6 heap blocks and
// ~144 bytes of bookkeeping per peer before a single neighbor is stored,
// which is what caps single-process populations at the paper's few
// thousand.  CompactNeighborTable is the same §3.1 relation table (same
// link/unlink/isolate/consistent semantics, same insertion-order
// iteration, same erase-and-shift removal — a representation change, not a
// behavior change; the golden-seed fingerprints pin this) over three flat
// allocations:
//
//   * refs_         — one {data*, size, store} triple per direction per
//                     node (32 bytes/node),
//   * inline_store_ — one contiguous block holding every node's small-
//                     degree slots (capacity clamped to kInlineSlots), so
//                     the common case — bounded-degree overlays like
//                     Gnutella's 4-neighbor rule — needs no further
//                     allocation at all,
//   * arena_        — a chunked overflow arena for lists that outgrow
//                     their inline block (all-to-all tables, pure-
//                     asymmetric incoming lists).  Chunks come from
//                     fixed-size blocks and are recycled through
//                     power-of-two size-class free lists; a grown list
//                     copies into a bigger chunk and frees the old one.
//
// Chunks and the inline store never move once allocated, so a NeighborView
// taken from a list stays valid until that same list grows past its
// current storage or shrinks — exactly the iterator-invalidation contract
// std::vector gave the call sites, minus the reallocation-on-unrelated-
// growth hazard vectors never had here anyway (each list owns its block).
//
// The table is index-addressed by 32-bit net::NodeId throughout; per-list
// sizes are 32-bit.  At Gnutella's 4-neighbor symmetric overlay this is
// 64 bytes/peer all-in — ~64 MB for a million peers.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/relations.h"
#include "net/node_id.h"

namespace dsf::core {

/// Read-only view of one adjacency list.  std::vector converts to it
/// implicitly, so call sites accepting NeighborView serve both tables.
using NeighborView = std::span<const net::NodeId>;

/// Chunked pool for overflow adjacency storage.  allocate() returns a
/// pointer-stable block of exactly `cap` entries where `cap` is a power of
/// two >= kMinChunk; release() recycles it through a per-size-class free
/// list (the next-pointer lives in the freed chunk's first bytes).  Blocks
/// are only ever freed wholesale with the arena.
class NeighborArena {
 public:
  static constexpr std::uint32_t kMinChunk = 16;  ///< entries; >= 2 pointers
  /// Entries per backing block (256 KiB).  Requests larger than a block
  /// get a dedicated block of exactly their size.
  static constexpr std::size_t kBlockEntries = std::size_t{1} << 16;

  NeighborArena() = default;
  NeighborArena(const NeighborArena&) = delete;
  NeighborArena& operator=(const NeighborArena&) = delete;

  net::NodeId* allocate(std::uint32_t cap);
  void release(net::NodeId* chunk, std::uint32_t cap) noexcept;

  /// Rounds a requested capacity up to an allocatable chunk size.
  static std::uint32_t chunk_size_for(std::uint32_t cap) noexcept;

  /// Total entries reserved from the OS (diagnostics / scale tests).
  std::size_t entries_reserved() const noexcept { return entries_reserved_; }

 private:
  static int class_of(std::uint32_t cap) noexcept;

  // Largest class actually reachable is 27 (a 2^31-entry chunk); 29 also
  // covers countr_zero's value-0 result so the compiler can prove every
  // free-list index in range.
  static constexpr int kNumClasses = 29;
  std::vector<std::unique_ptr<net::NodeId[]>> blocks_;
  std::size_t block_free_ = 0;  ///< unused entries at the current block tail
  net::NodeId* block_cursor_ = nullptr;
  net::NodeId* free_[kNumClasses] = {};
  std::size_t entries_reserved_ = 0;
};

/// Compact drop-in for core::NeighborTable (which remains the reference
/// implementation and the differential-test oracle).  lists(i) returns a
/// lightweight proxy by value instead of NeighborLists by reference — the
/// proxy reads through to the table, so it stays current across
/// link/unlink calls exactly like the reference held by the old code.
class CompactNeighborTable {
 public:
  CompactNeighborTable(std::size_t num_nodes, RelationKind kind,
                       std::size_t out_capacity, std::size_t in_capacity);

  RelationKind kind() const noexcept { return kind_; }
  std::size_t size() const noexcept { return refs_.size(); }

  NeighborView out_neighbors(net::NodeId i) const {
    const ListRef& r = refs_.at(i).out;
    return {r.data, r.size};
  }
  NeighborView in_neighbors(net::NodeId i) const {
    const ListRef& r = refs_.at(i).in;
    return {r.data, r.size};
  }

  std::size_t out_capacity() const noexcept { return out_capacity_; }
  std::size_t in_capacity() const noexcept { return in_capacity_; }

  /// Read-only per-node proxy mirroring the NeighborLists accessors.
  class ConstLists {
   public:
    NeighborView out() const { return t_->out_neighbors(i_); }
    NeighborView in() const { return t_->in_neighbors(i_); }
    std::size_t out_capacity() const noexcept { return t_->out_capacity_; }
    std::size_t in_capacity() const noexcept { return t_->in_capacity_; }
    bool out_full() const { return out().size() >= t_->out_capacity_; }
    bool in_full() const { return in().size() >= t_->in_capacity_; }
    bool has_out(net::NodeId n) const { return contains(out(), n); }
    bool has_in(net::NodeId n) const { return contains(in(), n); }

   protected:
    friend class CompactNeighborTable;
    ConstLists(const CompactNeighborTable* t, net::NodeId i) : t_(t), i_(i) {}
    static bool contains(NeighborView v, net::NodeId n) noexcept;
    const CompactNeighborTable* t_;
    net::NodeId i_;
  };

  /// Mutable per-node proxy; the raw add/remove primitives bypass the
  /// relation-kind link maintenance just like NeighborLists' did (the
  /// differential and invariant tests seed inconsistent states through
  /// them deliberately).
  class Lists : public ConstLists {
   public:
    // The proxy is a handle: mutators are const on the handle itself.
    bool add_out(net::NodeId n) const { return mt()->add(i_, Dir::kOut, n); }
    bool add_in(net::NodeId n) const { return mt()->add(i_, Dir::kIn, n); }
    bool remove_out(net::NodeId n) const noexcept {
      return mt()->remove(i_, Dir::kOut, n);
    }
    bool remove_in(net::NodeId n) const noexcept {
      return mt()->remove(i_, Dir::kIn, n);
    }
    void clear() const noexcept { mt()->clear_node(i_); }

   private:
    friend class CompactNeighborTable;
    Lists(CompactNeighborTable* t, net::NodeId i) : ConstLists(t, i) {}
    CompactNeighborTable* mt() const {
      return const_cast<CompactNeighborTable*>(t_);
    }
  };

  Lists lists(net::NodeId i) {
    check_index(i);
    return Lists(this, i);
  }
  ConstLists lists(net::NodeId i) const {
    check_index(i);
    return ConstLists(this, i);
  }

  /// Identical contract to NeighborTable::link (§3.1 maintenance).
  bool link(net::NodeId i, net::NodeId j);
  /// Identical contract to NeighborTable::unlink.
  bool unlink(net::NodeId i, net::NodeId j);
  /// Identical contract to NeighborTable::isolate: removes every edge
  /// touching `i`, returns the nodes that lost `i` as an outgoing
  /// neighbor, in their in-list discovery order.
  std::vector<net::NodeId> isolate(net::NodeId i);
  /// Identical contract to NeighborTable::consistent.
  bool consistent() const;

  /// Bytes owned by the table (refs + inline store + arena blocks) —
  /// what the scale tests pin per-peer budgets against.
  std::size_t memory_bytes() const noexcept;

 private:
  enum class Dir : std::uint8_t { kOut, kIn };

  /// One adjacency list: where it lives, how many entries, how many the
  /// current storage holds.  `store` <= the inline clamp means the data
  /// pointer aims into inline_store_; anything larger is an arena chunk.
  struct ListRef {
    net::NodeId* data = nullptr;
    std::uint32_t size = 0;
    std::uint32_t store = 0;
  };
  struct NodeRefs {
    ListRef out;
    ListRef in;
  };

  /// Per-direction inline slots; 8 keeps a 4-neighbor symmetric overlay
  /// entirely inline while capping the inline store at 64 bytes/node.
  static constexpr std::uint32_t kInlineSlots = 8;

  void check_index(net::NodeId i) const;
  ListRef& ref(net::NodeId i, Dir d) {
    return d == Dir::kOut ? refs_[i].out : refs_[i].in;
  }
  net::NodeId* inline_block(net::NodeId i, Dir d) noexcept;
  std::uint32_t limit(Dir d) const noexcept {
    const std::size_t cap = d == Dir::kOut ? out_capacity_ : in_capacity_;
    return cap > UINT32_MAX ? UINT32_MAX : static_cast<std::uint32_t>(cap);
  }
  std::uint32_t inline_slots(Dir d) const noexcept {
    return d == Dir::kOut ? inline_out_ : inline_in_;
  }

  bool add(net::NodeId i, Dir d, net::NodeId n);
  bool remove(net::NodeId i, Dir d, net::NodeId n) noexcept;
  void clear_node(net::NodeId i) noexcept;
  void clear_list(net::NodeId i, Dir d) noexcept;
  void grow(net::NodeId i, Dir d);

  RelationKind kind_;
  std::size_t out_capacity_ = 0;
  std::size_t in_capacity_ = 0;
  std::uint32_t inline_out_ = 0;  ///< inline slots per out list
  std::uint32_t inline_in_ = 0;   ///< inline slots per in list
  std::vector<NodeRefs> refs_;
  std::unique_ptr<net::NodeId[]> inline_store_;
  NeighborArena arena_;
};

}  // namespace dsf::core
