#pragma once

#include <cstdint>
#include <vector>

#include "core/visit_stamp.h"
#include "net/node_id.h"

namespace dsf::core {

/// Parameters of the generic exploration algorithm (§3.3, Algo 2).
/// Exploration queries about collections of data — without fetching — and
/// propagates until a terminating condition, collecting statistics and
/// summarized information from every node reached.
struct ExploreParams {
  int max_hops = 2;
};

/// Summary returned by one node to an exploration query: an
/// application-defined score (e.g. the number of locally stored items
/// matching the probed collection, or a digest match count).
struct ExploreReport {
  net::NodeId node = net::kInvalidNode;
  int hop = 0;
  double summary = 0.0;
};

struct ExploreOutcome {
  std::vector<ExploreReport> reports;
  std::uint64_t explore_messages = 0;
  std::uint64_t reply_messages = 0;
};

/// Floods an exploration query from `initiator` (Algo 2).  Unlike search,
/// every reached node replies with its summary and keeps propagating — the
/// purpose is reconnaissance, not retrieval, so there is no stop-at-hit.
///
/// `neighbors(n)` -> const std::vector<net::NodeId>&
/// `summarize(n)` -> double : the node's summary for the probed collection
template <typename NeighborsFn, typename SummarizeFn>
ExploreOutcome explore(net::NodeId initiator, const ExploreParams& params,
                       NeighborsFn&& neighbors, SummarizeFn&& summarize,
                       VisitStamp& stamps) {
  ExploreOutcome out;
  stamps.begin_search();
  stamps.mark(initiator);

  struct Frontier {
    net::NodeId node;
    net::NodeId sender;
    int hop;
  };
  std::vector<Frontier> queue;
  queue.push_back({initiator, net::kInvalidNode, 0});

  for (std::size_t head = 0; head < queue.size(); ++head) {
    const auto cur = queue[head];
    for (net::NodeId nbr : neighbors(cur.node)) {
      if (nbr == cur.sender) continue;
      ++out.explore_messages;
      if (!stamps.mark(nbr)) continue;
      const int hop = cur.hop + 1;
      ++out.reply_messages;
      out.reports.push_back({nbr, hop, summarize(nbr)});
      if (hop < params.max_hops) queue.push_back({nbr, cur.node, hop});
    }
  }
  return out;
}

/// Events that may trigger exploration or neighbor update (§3.3/§3.4).
/// Scenarios combine these as appropriate: the Gnutella case study uses
/// kRequestThreshold (the reconfiguration counter) and kNeighborLoss;
/// web caching adds kPeriodic tuned to content-change frequency.
enum class TriggerKind : std::uint8_t {
  kPeriodic,          ///< fixed simulated-time period
  kRequestThreshold,  ///< every T issued requests (the paper's T)
  kNeighborLoss,      ///< a neighbor logged off / abandoned us
  kBetterCandidate,   ///< stats show a non-neighbor beating a neighbor
};

}  // namespace dsf::core
