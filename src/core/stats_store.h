#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/node_id.h"

namespace dsf::core {

/// Per-repository statistics about other nodes encountered through search
/// and exploration (§3.4): cumulative benefit keyed by peer.  This is the
/// state the neighbor-update algorithms sort to pick the new neighborhood.
class StatsStore {
 public:
  /// Adds `delta` to the cumulative benefit of `peer`.
  void add(net::NodeId peer, double delta) { benefit_[peer] += delta; }

  /// Cumulative benefit (0 for unknown peers).
  double benefit_of(net::NodeId peer) const {
    const auto it = benefit_.find(peer);
    return it == benefit_.end() ? 0.0 : it->second;
  }

  bool knows(net::NodeId peer) const { return benefit_.count(peer) != 0; }

  /// Forgets a peer entirely (§4.1: an evicted node resets the evictor's
  /// statistics so it does not attempt to reconnect in the near future).
  void reset(net::NodeId peer) { benefit_.erase(peer); }

  void clear() { benefit_.clear(); }

  /// Multiplies every entry by `factor` (aging; optional extension).
  void decay(double factor) {
    for (auto& [peer, b] : benefit_) b *= factor;
  }

  std::size_t size() const noexcept { return benefit_.size(); }

  /// Returns up to `k` peers with the highest cumulative benefit among
  /// those accepted by `eligible`, best first.  Ties broken by node id for
  /// determinism.  O(n log n) on the number of known peers — the stores are
  /// small (peers encountered recently), so this is never hot.
  template <typename Eligible>
  std::vector<net::NodeId> top_k(std::size_t k, Eligible&& eligible) const {
    std::vector<std::pair<double, net::NodeId>> ranked;
    ranked.reserve(benefit_.size());
    for (const auto& [peer, b] : benefit_)
      if (eligible(peer)) ranked.emplace_back(b, peer);
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    if (ranked.size() > k) ranked.resize(k);
    std::vector<net::NodeId> out;
    out.reserve(ranked.size());
    for (const auto& [b, peer] : ranked) out.push_back(peer);
    return out;
  }

  /// Iteration support (tests, debugging, serialization).
  const std::unordered_map<net::NodeId, double>& entries() const noexcept {
    return benefit_;
  }

 private:
  std::unordered_map<net::NodeId, double> benefit_;
};

}  // namespace dsf::core
