#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "net/node_id.h"

namespace dsf::core {

/// O(1) per-search visited-set over a dense node range.
///
/// The simulator runs millions of query floods; clearing a bitset or hash
/// set per flood would dominate.  Instead each node has a generation stamp
/// and a search is "begun" by bumping the generation — marking and testing
/// are single array accesses and reset is free.
class VisitStamp {
 public:
  explicit VisitStamp(std::size_t n) : stamps_(n, 0) {}

  /// Starts a new search: all nodes become unvisited in O(1).
  void begin_search() noexcept {
    if (++generation_ == 0) {  // wrapped: do the rare full clear
      std::fill(stamps_.begin(), stamps_.end(), 0);
      generation_ = 1;
    }
  }

  bool visited(net::NodeId n) const noexcept {
    return stamps_[n] == generation_;
  }

  /// Marks `n` visited; returns false if it already was.
  bool mark(net::NodeId n) noexcept {
    if (stamps_[n] == generation_) return false;
    stamps_[n] = generation_;
    return true;
  }

  std::size_t size() const noexcept { return stamps_.size(); }

 private:
  std::vector<std::uint32_t> stamps_;
  std::uint32_t generation_ = 0;
};

}  // namespace dsf::core
