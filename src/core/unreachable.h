#pragma once

#include <cstdio>
#include <cstdlib>

namespace dsf::core {

/// Marks the end of an exhaustive switch over an enum.  Every legitimate
/// value returns from its case; control only reaches the call when a
/// corrupted or out-of-range value was cast into the enum.  Aborting loudly
/// beats the silently-wrong fallback return it replaces.
[[noreturn]] inline void unreachable_enum(const char* what) noexcept {
  std::fprintf(stderr, "fatal: out-of-range %s value in exhaustive switch\n",
               what);
  std::abort();
}

}  // namespace dsf::core
