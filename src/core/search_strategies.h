#pragma once

// The three query-cost-reduction techniques of Yang & Garcia-Molina
// ("Efficient search in peer-to-peer networks", ICDCS 2002), which §2 of
// the paper singles out as orthogonal to dynamic reconfiguration and
// usable inside the framework:
//
//  * Iterative deepening — repeated search cycles of growing depth until
//    the query is satisfied or the depth budget is exhausted.
//  * Directed BFT — the initiator forwards only to a beneficial subset of
//    its neighbors instead of all of them.
//  * Local indices — each node answers the query for every peer within a
//    radius `r` of itself, so a flood of depth d covers depth d + r.
//
// All three are implemented on top of flood_search() so they compose with
// any overlay, content predicate and delay model.

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/flood_search.h"
#include "core/stats_store.h"

namespace dsf::core {

/// Outcome of an iterative-deepening search: the last cycle's outcome plus
/// accumulated cost across all cycles.
struct IterativeOutcome {
  SearchOutcome last;                ///< hits of the final (successful) cycle
  std::uint64_t total_messages = 0;  ///< messages across every cycle
  int cycles = 0;                    ///< cycles actually run
  int final_depth = 0;               ///< depth of the last cycle

  bool satisfied() const noexcept { return last.satisfied(); }
};

/// Iterative deepening: runs flood_search at each depth of `depths`
/// (ascending) until one cycle is satisfied.  Each cycle is a fresh flood,
/// so messages accumulate — the technique pays repeated shallow floods to
/// avoid one deep flood when results are nearby.  (Yang & GM's "frozen
/// query" refinement resumes at the previous frontier instead of
/// re-flooding; the re-flood model is the conservative upper bound on
/// cost and keeps cycles independent.)
template <typename NeighborsFn, typename HasContentFn, typename DelayFn,
          typename TransmitFn>
IterativeOutcome iterative_deepening_search(
    net::NodeId initiator, const SearchParams& base,
    const std::vector<int>& depths, NeighborsFn&& neighbors,
    HasContentFn&& has_content, DelayFn&& delay, TransmitFn&& transmit,
    VisitStamp& stamps, SearchScratch& scratch) {
  IterativeOutcome out;
  for (int depth : depths) {
    SearchParams params = base;
    params.max_hops = depth;
    // Each cycle is an independent flood; flood_search re-begins the
    // transmit policy with the cycle's own hop budget, so TTL bookkeeping
    // (the invariant checker's monotonicity context) resets per cycle.
    out.last = flood_search(initiator, params, neighbors, has_content, delay,
                            transmit, stamps, scratch);
    out.total_messages += out.last.query_messages;
    ++out.cycles;
    out.final_depth = depth;
    if (out.last.satisfied()) break;
  }
  return out;
}

template <typename NeighborsFn, typename HasContentFn, typename DelayFn>
IterativeOutcome iterative_deepening_search(
    net::NodeId initiator, const SearchParams& base,
    const std::vector<int>& depths, NeighborsFn&& neighbors,
    HasContentFn&& has_content, DelayFn&& delay, VisitStamp& stamps,
    SearchScratch& scratch) {
  ReliableTransmit reliable;
  return iterative_deepening_search(
      initiator, base, depths, std::forward<NeighborsFn>(neighbors),
      std::forward<HasContentFn>(has_content), std::forward<DelayFn>(delay),
      reliable, stamps, scratch);
}

/// Builds the canonical depth ladder for a hop budget `max_hops`:
/// {ceil(h/2), h} — one cheap probe of the near neighborhood, then the
/// full-depth flood.  For h <= 1 a single cycle.
std::vector<int> default_depth_ladder(int max_hops);

/// Directed BFT: the initiator forwards only to its `fanout` most
/// beneficial neighbors according to `stats` (ties and unknown neighbors
/// ranked after known ones, by id).  Intermediate nodes flood normally, as
/// in Yang & GM.  Returns the chosen subset via `chosen` for statistics.
std::vector<net::NodeId> select_directed_subset(
    const StatsStore& stats, std::span<const net::NodeId> neighbors,
    std::size_t fanout);

/// Runs a flood in which the initiator uses only `subset` as its first-hop
/// targets; every other node forwards through its full neighbor list.
template <typename NeighborsFn, typename HasContentFn, typename DelayFn,
          typename TransmitFn>
SearchOutcome directed_flood_search(
    net::NodeId initiator, const SearchParams& params,
    const std::vector<net::NodeId>& subset, NeighborsFn&& neighbors,
    HasContentFn&& has_content, DelayFn&& delay, TransmitFn&& transmit,
    VisitStamp& stamps, SearchScratch& scratch) {
  // NeighborView so `neighbors` may return either a vector reference or a
  // span over compact storage (both convert).
  auto patched = [&](net::NodeId n) -> std::span<const net::NodeId> {
    if (n == initiator) return subset;
    return neighbors(n);
  };
  return flood_search(initiator, params, patched, has_content, delay,
                      transmit, stamps, scratch);
}

template <typename NeighborsFn, typename HasContentFn, typename DelayFn>
SearchOutcome directed_flood_search(net::NodeId initiator,
                                    const SearchParams& params,
                                    const std::vector<net::NodeId>& subset,
                                    NeighborsFn&& neighbors,
                                    HasContentFn&& has_content,
                                    DelayFn&& delay, VisitStamp& stamps,
                                    SearchScratch& scratch) {
  ReliableTransmit reliable;
  return directed_flood_search(initiator, params, subset,
                               std::forward<NeighborsFn>(neighbors),
                               std::forward<HasContentFn>(has_content),
                               std::forward<DelayFn>(delay), reliable, stamps,
                               scratch);
}

/// Local indices with radius 1: every visited node answers for itself AND
/// its direct neighbors (it maintains an index over their content), so a
/// depth-d flood covers depth d+1.  A holder discovered through a peer's
/// index replies through that peer; `index_lookup(n, out)` must append the
/// nodes whose content `n` indexes (typically `neighbors(n)`).
///
/// The caller accounts for index maintenance separately (content digests
/// exchanged whenever a link forms — see the Gnutella scenario).
template <typename NeighborsFn, typename HasContentFn, typename DelayFn,
          typename TransmitFn>
SearchOutcome indexed_flood_search(net::NodeId initiator,
                                   const SearchParams& params,
                                   NeighborsFn&& neighbors,
                                   HasContentFn&& has_content, DelayFn&& delay,
                                   TransmitFn&& transmit, VisitStamp& stamps,
                                   VisitStamp& hit_stamps,
                                   SearchScratch& scratch) {
  SearchOutcome out;
  transmit.begin(params.max_hops);
  stamps.begin_search();
  stamps.mark(initiator);
  hit_stamps.begin_search();

  // The initiator indexes its own neighbors too: hits there are "hop 0"
  // lookups answered before any message is sent.
  auto record_hit = [&](net::NodeId holder, net::NodeId via, int hop,
                        double arrival) {
    if (!hit_stamps.mark(holder)) return false;
    const double reply_at =
        via == initiator ? arrival : arrival + delay(via, initiator);
    if (reply_at > params.timeout_s) return false;
    ++out.reply_messages;
    TransmitResult tr;  // hop-0 index hits are answered locally: no message
    if (via != initiator) {
      tr = transmit(net::MessageType::kQueryReply, via, initiator, -1);
      if (tr.duplicate) ++out.reply_messages;
    }
    if (!tr.deliver || reply_at + tr.extra_delay_s > params.timeout_s)
      return false;
    out.hits.push_back({holder, hop, arrival, reply_at + tr.extra_delay_s});
    return true;
  };

  auto& queue = scratch.queue;
  queue.clear();
  queue.push_back({initiator, net::kInvalidNode, 0, 0.0});

  for (std::size_t head = 0; head < queue.size(); ++head) {
    const auto cur = queue[head];
    // Index lookup at the current node: covers its whole neighbor list.
    bool found_via_index = false;
    for (net::NodeId indexed : neighbors(cur.node)) {
      if (has_content(indexed))
        found_via_index |= record_hit(indexed, cur.node, cur.hop, cur.arrival_s);
    }
    if (found_via_index && !params.forward_when_hit) continue;
    if (cur.hop >= params.max_hops) continue;

    for (net::NodeId nbr : neighbors(cur.node)) {
      if (nbr == cur.sender) continue;
      ++out.query_messages;
      const TransmitResult tq = transmit(net::MessageType::kQuery, cur.node,
                                         nbr, params.max_hops - cur.hop);
      if (tq.duplicate) ++out.query_messages;
      if (!tq.deliver) continue;
      if (!stamps.mark(nbr)) continue;
      const double arrival =
          cur.arrival_s + delay(cur.node, nbr) + tq.extra_delay_s;
      ++out.nodes_reached;
      const int hop = cur.hop + 1;
      bool forward = true;
      if (has_content(nbr)) {
        record_hit(nbr, nbr, hop, arrival);
        if (!params.forward_when_hit) forward = false;
      }
      if (forward) queue.push_back({nbr, cur.node, hop, arrival});
    }
  }
  return out;
}

template <typename NeighborsFn, typename HasContentFn, typename DelayFn>
SearchOutcome indexed_flood_search(net::NodeId initiator,
                                   const SearchParams& params,
                                   NeighborsFn&& neighbors,
                                   HasContentFn&& has_content, DelayFn&& delay,
                                   VisitStamp& stamps, VisitStamp& hit_stamps,
                                   SearchScratch& scratch) {
  ReliableTransmit reliable;
  return indexed_flood_search(initiator, params,
                              std::forward<NeighborsFn>(neighbors),
                              std::forward<HasContentFn>(has_content),
                              std::forward<DelayFn>(delay), reliable, stamps,
                              hit_stamps, scratch);
}

}  // namespace dsf::core
