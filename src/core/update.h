#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/stats_store.h"
#include "net/node_id.h"

namespace dsf::core {

/// The outcome of computing a new outgoing neighborhood (Algo 3 / the
/// planning half of Algo 4): the desired list, who must be invited/added
/// and who must be evicted relative to the current list.
struct UpdatePlan {
  std::vector<net::NodeId> new_out;    ///< desired outgoing list, best first
  std::vector<net::NodeId> additions;  ///< in new_out but not current
  std::vector<net::NodeId> evictions;  ///< in current but not new_out
};

/// Predicate deciding whether a peer may become a neighbor right now
/// (typically: is on-line and is not this node).
using EligibleFn = std::function<bool(net::NodeId)>;

/// Computes the most-beneficial neighborhood of size <= `capacity` from the
/// statistics (Algo 3; also the planning step of Algo 5's Reconfigure).
///
/// Candidates are the union of the statistics' peers and the current
/// neighbors, ranked by cumulative benefit.  Current neighbors win ties so
/// that reconfiguration never churns between equally-good peers; this also
/// means a node with sparse statistics keeps its current neighborhood
/// rather than shrinking it.
/// Neighbor lists arrive as spans so both the reference and the compact
/// overlay tables (and plain vectors in tests) can feed the planner.
UpdatePlan plan_update(const StatsStore& stats,
                       std::span<const net::NodeId> current_out,
                       std::size_t capacity, const EligibleFn& eligible);

/// How an invited node reacts to a neighboring invitation (§3.4's two
/// symmetric-update variants).
enum class InvitationPolicy : std::uint8_t {
  /// Variant (i): always accept, evicting the least beneficial incoming
  /// neighbor if the list is full.  This is what the Gnutella case study
  /// uses (§4.1: "the invited node always accepts an invitation").
  kAlwaysAccept,
  /// Variant (ii): accept only if the inviter's (estimated) benefit exceeds
  /// that of at least one current incoming neighbor.
  kBenefitGated,
  /// Variant (ii-b), §3.4 solution (b): the invitation carries summarized
  /// information (a content digest) from which the invited node estimates
  /// the inviter's potential benefit — useful when it has no statistics
  /// about the inviter yet.  Scenarios with digest support implement the
  /// estimate themselves; core's decide_invitation falls back to
  /// kBenefitGated semantics.
  kSummaryGated,
  /// Variant (ii-a), §3.4 solution (a): a *temporary relationship* — the
  /// invited node always accepts provisionally, exchanges search traffic
  /// to gather statistics, and after a time threshold either keeps the
  /// inviter (it now beats the worst other neighbor) or terminates the
  /// relationship.  The trial scheduling lives in the scenario; core's
  /// decide_invitation accepts like kAlwaysAccept.
  kTrialPeriod,
};

struct InvitationDecision {
  bool accept = false;
  /// Neighbor to evict to make room; kInvalidNode when a free slot exists.
  net::NodeId evict = net::kInvalidNode;
};

/// Decides an invitation from `inviter` given the invited node's incoming
/// list and statistics (Algo 4, "On Neighboring Invitation Arrival").
InvitationDecision decide_invitation(const StatsStore& stats,
                                     net::NodeId inviter,
                                     std::span<const net::NodeId> in_list,
                                     std::size_t capacity,
                                     InvitationPolicy policy);

/// Returns the least beneficial node of `list` according to `stats`
/// (kInvalidNode for an empty list).  Ties broken toward the higher id so
/// older/lower ids — about which more is typically known — survive.
net::NodeId least_beneficial(const StatsStore& stats,
                             std::span<const net::NodeId> list);

/// Reconfiguration trigger of the case study (§4.1/§4.3): a counter of
/// requests issued since the last reconfiguration; firing at `threshold`
/// (the paper's parameter T, swept in Fig 3b).  Invitations and evictions
/// reset the counter to damp cascading updates.
class ReconfigCounter {
 public:
  explicit ReconfigCounter(std::uint32_t threshold) : threshold_(threshold) {}

  std::uint32_t threshold() const noexcept { return threshold_; }

  /// Registers one issued request; returns true when the threshold is
  /// reached (the caller should reconfigure and the counter resets).
  bool on_request() noexcept {
    if (threshold_ == 0) return false;  // 0 disables periodic reconfiguration
    if (++count_ < threshold_) return false;
    count_ = 0;
    return true;
  }

  void reset() noexcept { count_ = 0; }
  std::uint32_t count() const noexcept { return count_; }

 private:
  std::uint32_t threshold_;
  std::uint32_t count_ = 0;
};

}  // namespace dsf::core
