#pragma once

// The typed query plane: what a search asks for (QuerySpec) and what it
// runs against (SearchContext), replacing the positional flood plumbing
// that used to thread ten arguments through every call site.
//
//   * QuerySpec — the query's class (exact-match | top-k ranked |
//     similarity) plus the class-specific knobs (k, similarity threshold)
//     and the propagation parameters shared by every class.
//   * SearchContext — the bindings a search runs over: initiator, overlay
//     (neighbors), content predicate, scoring, delay model, transport
//     policy, dedup stamps and scratch buffers.  Built once per call site
//     through make_search_context / make_ranked_context, which also own
//     the reliable-transmit default that used to live in a duplicated
//     overload of every search entry point.
//
// The flood-family schemes read only the exact-match subset of the
// context; the ranked scheme (ranked_search.h) adds `rank`, and the
// similarity scheme (lsh.h) adds `candidate`.  sim::dispatch_search picks
// the algorithm from the strategy kind and hands it the right slices.

#include <cstdint>

#include "core/flood_search.h"
#include "core/stats_store.h"
#include "core/visit_stamp.h"
#include "net/node_id.h"

namespace dsf::core {

/// What kind of answer the query wants (the three query classes of the
/// ranked query plane).
enum class QueryClass : std::uint8_t {
  kExactMatch,  ///< any holder of the requested item (the historical class)
  kTopKRanked,  ///< the k best-scored results, pruned by score floor
  kSimilarity,  ///< every peer whose signature similarity clears a threshold
};

constexpr const char* to_string(QueryClass c) noexcept {
  switch (c) {
    case QueryClass::kExactMatch: return "exact-match";
    case QueryClass::kTopKRanked: return "top-k";
    case QueryClass::kSimilarity: return "similarity";
  }
  return "?";
}

/// One query, fully typed: class, class-specific knobs, and the shared
/// propagation parameters.  Construct through the factories so every call
/// site states its class explicitly.
struct QuerySpec {
  QueryClass query_class = QueryClass::kExactMatch;
  SearchParams params;
  /// kTopKRanked: how many results the initiator wants (>= 1).
  std::uint32_t k = 1;
  /// kSimilarity: minimum estimated similarity a reply must clear, in
  /// [0, 1].
  double sim_threshold = 0.5;

  static QuerySpec exact(const SearchParams& params) {
    QuerySpec s;
    s.query_class = QueryClass::kExactMatch;
    s.params = params;
    return s;
  }
  static QuerySpec top_k(const SearchParams& params, std::uint32_t k) {
    QuerySpec s;
    s.query_class = QueryClass::kTopKRanked;
    s.params = params;
    s.k = k;
    return s;
  }
  static QuerySpec similar(const SearchParams& params, double threshold) {
    QuerySpec s;
    s.query_class = QueryClass::kSimilarity;
    s.params = params;
    s.sim_threshold = threshold;
    return s;
  }
};

/// Rank binding for exact-match contexts: nothing scores.
struct NoRank {
  constexpr double operator()(net::NodeId) const noexcept { return 0.0; }
};

/// Candidate binding for exact-match contexts: nothing matches a bucket.
struct NoCandidate {
  constexpr bool operator()(net::NodeId) const noexcept { return false; }
};

/// Everything one search runs against, bound once at the call site:
///
///   `neighbors(n)`   -> NeighborView : outgoing list of n
///   `has_content(n)` -> bool : does n hold the requested item
///   `rank(n)`        -> double : n's best local score for this query
///                       (> 0 iff n can contribute a ranked result)
///   `candidate(n)`   -> bool : do n's LSH band buckets collide with the
///                       query signature's (similarity routing)
///   `delay(a, b)`    -> double : one-way delay seconds per transmission
///   `transmit(...)`  -> TransmitResult : transport verdict per copy
///
/// `stats` feeds directed-BFT subset selection; stamps/scratch are the
/// engine-owned dedup and reuse buffers.  The struct is an aggregate so a
/// site can adjust a binding after construction (e.g. ctx.stats).
template <typename NeighborsFn, typename HasContentFn, typename DelayFn,
          typename TransmitFn, typename RankFn = NoRank,
          typename CandidateFn = NoCandidate>
struct SearchContext {
  net::NodeId initiator = net::kInvalidNode;
  NeighborsFn neighbors;
  HasContentFn has_content;
  DelayFn delay;
  TransmitFn transmit;
  RankFn rank{};
  CandidateFn candidate{};
  const StatsStore* stats = nullptr;  ///< directed BFT only
  VisitStamp* stamps = nullptr;
  VisitStamp* hit_stamps = nullptr;  ///< local indices only
  SearchScratch* scratch = nullptr;
};

/// Builds an exact-match context.  This builder subsumes the historical
/// reliable-transmit overload pair: pass core::ReliableTransmit{} (or let
/// the engine's search_transmit() collapse the fault/no-fault branch) —
/// there is exactly one entry point either way.
template <typename NeighborsFn, typename HasContentFn, typename DelayFn,
          typename TransmitFn>
auto make_search_context(net::NodeId initiator, NeighborsFn neighbors,
                         HasContentFn has_content, DelayFn delay,
                         TransmitFn transmit, VisitStamp& stamps,
                         VisitStamp& hit_stamps, SearchScratch& scratch) {
  SearchContext<NeighborsFn, HasContentFn, DelayFn, TransmitFn> ctx{
      initiator, neighbors, has_content, delay, transmit};
  ctx.stamps = &stamps;
  ctx.hit_stamps = &hit_stamps;
  ctx.scratch = &scratch;
  return ctx;
}

/// Builds a ranked/similarity context: an exact-match context plus the
/// scoring and bucket-candidate bindings the ranked schemes read.
template <typename NeighborsFn, typename HasContentFn, typename DelayFn,
          typename TransmitFn, typename RankFn, typename CandidateFn>
auto make_ranked_context(net::NodeId initiator, NeighborsFn neighbors,
                         HasContentFn has_content, RankFn rank,
                         CandidateFn candidate, DelayFn delay,
                         TransmitFn transmit, VisitStamp& stamps,
                         VisitStamp& hit_stamps, SearchScratch& scratch) {
  SearchContext<NeighborsFn, HasContentFn, DelayFn, TransmitFn, RankFn,
                CandidateFn>
      ctx{initiator, neighbors, has_content, delay, transmit, rank, candidate};
  ctx.stamps = &stamps;
  ctx.hit_stamps = &hit_stamps;
  ctx.scratch = &scratch;
  return ctx;
}

}  // namespace dsf::core
