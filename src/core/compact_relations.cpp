#include "core/compact_relations.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <stdexcept>

namespace dsf::core {

// ---------------------------------------------------------------------------
// NeighborArena

std::uint32_t NeighborArena::chunk_size_for(std::uint32_t cap) noexcept {
  if (cap <= kMinChunk) return kMinChunk;
  return std::bit_ceil(cap);
}

int NeighborArena::class_of(std::uint32_t cap) noexcept {
  assert(cap >= kMinChunk && std::has_single_bit(cap));
  return std::countr_zero(cap) - std::countr_zero(kMinChunk);
}

net::NodeId* NeighborArena::allocate(std::uint32_t cap) {
  assert(cap >= kMinChunk && std::has_single_bit(cap));
  const int cls = class_of(cap);
  if (net::NodeId* head = free_[cls]) {
    // Pop the recycled chunk; its next-pointer sits in its first bytes.
    std::memcpy(&free_[cls], head, sizeof(net::NodeId*));
    return head;
  }
  if (cap > kBlockEntries) {
    // Oversize request: a dedicated block, never bump-allocated from.
    blocks_.push_back(std::make_unique<net::NodeId[]>(cap));
    entries_reserved_ += cap;
    return blocks_.back().get();
  }
  if (block_free_ < cap) {
    // The tail remainder (if any) is smaller than the smallest chunk the
    // next request could want at this class or below it would have been
    // served from the free list; donate it to the largest class it fits.
    while (block_free_ >= kMinChunk) {
      const auto piece = std::bit_floor(block_free_);
      const auto sz = static_cast<std::uint32_t>(
          std::min<std::size_t>(piece, kBlockEntries));
      std::memcpy(block_cursor_, &free_[class_of(sz)], sizeof(net::NodeId*));
      free_[class_of(sz)] = block_cursor_;
      block_cursor_ += sz;
      block_free_ -= sz;
    }
    blocks_.push_back(std::make_unique<net::NodeId[]>(kBlockEntries));
    entries_reserved_ += kBlockEntries;
    block_cursor_ = blocks_.back().get();
    block_free_ = kBlockEntries;
  }
  net::NodeId* chunk = block_cursor_;
  block_cursor_ += cap;
  block_free_ -= cap;
  return chunk;
}

void NeighborArena::release(net::NodeId* chunk, std::uint32_t cap) noexcept {
  const int cls = class_of(cap);
  std::memcpy(chunk, &free_[cls], sizeof(net::NodeId*));
  free_[cls] = chunk;
}

// ---------------------------------------------------------------------------
// CompactNeighborTable

bool CompactNeighborTable::ConstLists::contains(NeighborView v,
                                                net::NodeId n) noexcept {
  return std::find(v.begin(), v.end(), n) != v.end();
}

CompactNeighborTable::CompactNeighborTable(std::size_t num_nodes,
                                           RelationKind kind,
                                           std::size_t out_capacity,
                                           std::size_t in_capacity)
    : kind_(kind), out_capacity_(out_capacity), in_capacity_(in_capacity) {
  // Same capacity overrides as NeighborTable's constructor.
  if (kind == RelationKind::kPureAsymmetric) in_capacity_ = num_nodes;
  if (kind == RelationKind::kAllToAll) {
    out_capacity_ = num_nodes;
    in_capacity_ = num_nodes;
  }
  inline_out_ = static_cast<std::uint32_t>(
      std::min<std::size_t>(out_capacity_, kInlineSlots));
  inline_in_ = static_cast<std::uint32_t>(
      std::min<std::size_t>(in_capacity_, kInlineSlots));

  refs_.resize(num_nodes);
  const std::size_t per_node = inline_out_ + inline_in_;
  if (per_node > 0 && num_nodes > 0) {
    inline_store_ = std::make_unique<net::NodeId[]>(num_nodes * per_node);
    for (std::size_t i = 0; i < num_nodes; ++i) {
      net::NodeId* base = inline_store_.get() + i * per_node;
      refs_[i].out.data = base;
      refs_[i].out.store = inline_out_;
      refs_[i].in.data = base + inline_out_;
      refs_[i].in.store = inline_in_;
    }
  }
}

void CompactNeighborTable::check_index(net::NodeId i) const {
  if (i >= refs_.size())
    throw std::out_of_range("CompactNeighborTable: node id out of range");
}

net::NodeId* CompactNeighborTable::inline_block(net::NodeId i,
                                                Dir d) noexcept {
  net::NodeId* base =
      inline_store_.get() +
      static_cast<std::size_t>(i) * (inline_out_ + inline_in_);
  return d == Dir::kOut ? base : base + inline_out_;
}

void CompactNeighborTable::grow(net::NodeId i, Dir d) {
  ListRef& r = ref(i, d);
  const std::uint32_t new_store =
      NeighborArena::chunk_size_for(r.store ? r.store * 2 : 1);
  net::NodeId* chunk = arena_.allocate(new_store);
  std::memcpy(chunk, r.data, r.size * sizeof(net::NodeId));
  if (r.store > inline_slots(d)) arena_.release(r.data, r.store);
  r.data = chunk;
  r.store = new_store;
}

bool CompactNeighborTable::add(net::NodeId i, Dir d, net::NodeId n) {
  ListRef& r = ref(i, d);
  if (r.size >= limit(d)) return false;
  const NeighborView view{r.data, r.size};
  if (std::find(view.begin(), view.end(), n) != view.end()) return false;
  if (r.size == r.store) grow(i, d);
  r.data[r.size] = n;
  ++r.size;
  return true;
}

bool CompactNeighborTable::remove(net::NodeId i, Dir d,
                                  net::NodeId n) noexcept {
  ListRef& r = ref(i, d);
  net::NodeId* const end = r.data + r.size;
  net::NodeId* const it = std::find(r.data, end, n);
  if (it == end) return false;
  // Erase-and-shift, preserving the order std::vector::erase kept.
  std::memmove(it, it + 1, static_cast<std::size_t>(end - it - 1) *
                               sizeof(net::NodeId));
  --r.size;
  return true;
}

void CompactNeighborTable::clear_list(net::NodeId i, Dir d) noexcept {
  ListRef& r = ref(i, d);
  r.size = 0;
  if (r.store > inline_slots(d)) {
    // Shrink back onto the inline block so a log-off reclaims the chunk.
    arena_.release(r.data, r.store);
    r.data = inline_block(i, d);
    r.store = inline_slots(d);
  }
}

void CompactNeighborTable::clear_node(net::NodeId i) noexcept {
  clear_list(i, Dir::kOut);
  clear_list(i, Dir::kIn);
}

bool CompactNeighborTable::link(net::NodeId i, net::NodeId j) {
  if (i == j || i >= refs_.size() || j >= refs_.size()) return false;
  const Lists li = lists(i);
  const Lists lj = lists(j);
  if (li.has_out(j)) return false;

  if (kind_ == RelationKind::kSymmetric) {
    // A symmetric link consumes an out and an in slot at both ends.
    if (li.out_full() || li.in_full() || lj.out_full() || lj.in_full())
      return false;
    li.add_out(j);
    li.add_in(j);
    lj.add_out(i);
    lj.add_in(i);
    return true;
  }

  if (li.out_full() || lj.in_full()) return false;
  li.add_out(j);
  lj.add_in(i);
  return true;
}

bool CompactNeighborTable::unlink(net::NodeId i, net::NodeId j) {
  if (i >= refs_.size() || j >= refs_.size()) return false;
  if (!remove(i, Dir::kOut, j)) return false;
  remove(j, Dir::kIn, i);
  if (kind_ == RelationKind::kSymmetric) {
    remove(j, Dir::kOut, i);
    remove(i, Dir::kIn, j);
  }
  return true;
}

std::vector<net::NodeId> CompactNeighborTable::isolate(net::NodeId i) {
  std::vector<net::NodeId> affected;
  if (i >= refs_.size()) return affected;
  const Lists li = lists(i);

  // Peers that will lose i from their outgoing list.  The removals below
  // touch only the *other* endpoint's lists, so iterating i's own views
  // while they run is safe (i's storage is untouched until the clear).
  for (net::NodeId j : li.in())
    if (std::find(affected.begin(), affected.end(), j) == affected.end())
      affected.push_back(j);

  for (net::NodeId j : li.out()) {
    remove(j, Dir::kIn, i);
    if (kind_ == RelationKind::kSymmetric) remove(j, Dir::kOut, i);
  }
  for (net::NodeId j : li.in()) {
    remove(j, Dir::kOut, i);
    if (kind_ == RelationKind::kSymmetric) remove(j, Dir::kIn, i);
  }
  clear_node(i);
  return affected;
}

bool CompactNeighborTable::consistent() const {
  for (net::NodeId i = 0; i < refs_.size(); ++i) {
    for (net::NodeId j : out_neighbors(i)) {
      if (j >= refs_.size()) return false;
      if (!lists(j).has_in(i)) return false;
    }
    if (kind_ == RelationKind::kSymmetric) {
      const ConstLists l = lists(i);
      if (l.out().size() != l.in().size()) return false;
      for (net::NodeId j : l.out())
        if (!l.has_in(j)) return false;
    }
  }
  return true;
}

std::size_t CompactNeighborTable::memory_bytes() const noexcept {
  return refs_.capacity() * sizeof(NodeRefs) +
         refs_.size() * (inline_out_ + inline_in_) * sizeof(net::NodeId) +
         arena_.entries_reserved() * sizeof(net::NodeId);
}

}  // namespace dsf::core
