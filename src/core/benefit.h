#pragma once

#include <memory>
#include <string_view>

#include "net/node_id.h"

namespace dsf::core {

/// Everything a benefit function may want to know about one search result
/// (§3.4: "the statistics depend on the specific choice of the benefit
/// function").  Fields that a scenario does not produce are left at their
/// defaults and simply ignored by functions that do not read them.
struct ResultInfo {
  net::NodeId responder = net::kInvalidNode;
  double bandwidth_kbps = 0.0;      ///< B: answering link bandwidth
  double latency_s = 0.0;           ///< end-to-end delay of this reply
  std::uint32_t total_results = 1;  ///< R: results accumulated by the query
  double items = 1.0;               ///< pages/chunks retrieved from responder
  double processing_time_saved_s = 0.0;  ///< OLAP: warehouse time avoided
};

/// Benefit function interface (§3.4).  Implementations are stateless and
/// cheap; they are called once per (query, responder) pair.
class BenefitFunction {
 public:
  virtual ~BenefitFunction() = default;
  virtual double benefit(const ResultInfo& r) const = 0;
  virtual std::string_view name() const = 0;
};

/// The case study's benefit (§4.1): B / R — the answering link's bandwidth
/// divided by the total number of results of the query.  Large result lists
/// dilute each individual result's significance.
class BandwidthOverResults final : public BenefitFunction {
 public:
  double benefit(const ResultInfo& r) const override;
  std::string_view name() const override { return "bandwidth/results"; }
};

/// Web-caching benefit (§3.4): retrieved pages combined with end-to-end
/// latency; page size plays little role, so benefit = items / latency.
class ItemsOverLatency final : public BenefitFunction {
 public:
  /// `min_latency_s` guards the division for near-zero latencies.
  explicit ItemsOverLatency(double min_latency_s = 1e-3)
      : min_latency_s_(min_latency_s) {}
  double benefit(const ResultInfo& r) const override;
  std::string_view name() const override { return "items/latency"; }

 private:
  double min_latency_s_;
};

/// PeerOlap-style benefit (§3.4): the dominating cost is query processing
/// time, so benefit = warehouse processing time avoided.
class ProcessingTimeSaved final : public BenefitFunction {
 public:
  double benefit(const ResultInfo& r) const override;
  std::string_view name() const override { return "processing-time-saved"; }
};

/// Ablation baseline: every result is worth exactly 1 (pure hit counting,
/// no bandwidth or size weighting).
class UnitBenefit final : public BenefitFunction {
 public:
  double benefit(const ResultInfo&) const override { return 1.0; }
  std::string_view name() const override { return "unit"; }
};

/// Ablation baseline: rewards low latency only (1 / latency).
class InverseLatency final : public BenefitFunction {
 public:
  explicit InverseLatency(double min_latency_s = 1e-3)
      : min_latency_s_(min_latency_s) {}
  double benefit(const ResultInfo& r) const override;
  std::string_view name() const override { return "1/latency"; }

 private:
  double min_latency_s_;
};

}  // namespace dsf::core
