#include "core/relations.h"

#include <algorithm>

#include "core/unreachable.h"

namespace dsf::core {

std::string_view to_string(RelationKind k) noexcept {
  switch (k) {
    case RelationKind::kAllToAll:
      return "all-to-all";
    case RelationKind::kAsymmetric:
      return "asymmetric";
    case RelationKind::kPureAsymmetric:
      return "pure-asymmetric";
    case RelationKind::kSymmetric:
      return "symmetric";
  }
  unreachable_enum("core::RelationKind");
}

namespace {

bool contains(const std::vector<net::NodeId>& v, net::NodeId n) noexcept {
  return std::find(v.begin(), v.end(), n) != v.end();
}

bool erase_value(std::vector<net::NodeId>& v, net::NodeId n) noexcept {
  const auto it = std::find(v.begin(), v.end(), n);
  if (it == v.end()) return false;
  v.erase(it);
  return true;
}

}  // namespace

bool NeighborLists::has_out(net::NodeId n) const noexcept {
  return contains(out_, n);
}

bool NeighborLists::has_in(net::NodeId n) const noexcept {
  return contains(in_, n);
}

bool NeighborLists::add_out(net::NodeId n) {
  if (out_full() || contains(out_, n)) return false;
  out_.push_back(n);
  return true;
}

bool NeighborLists::add_in(net::NodeId n) {
  if (in_full() || contains(in_, n)) return false;
  in_.push_back(n);
  return true;
}

bool NeighborLists::remove_out(net::NodeId n) noexcept {
  return erase_value(out_, n);
}

bool NeighborLists::remove_in(net::NodeId n) noexcept {
  return erase_value(in_, n);
}

NeighborTable::NeighborTable(std::size_t num_nodes, RelationKind kind,
                             std::size_t out_capacity,
                             std::size_t in_capacity)
    : kind_(kind) {
  if (kind == RelationKind::kPureAsymmetric) in_capacity = num_nodes;
  if (kind == RelationKind::kAllToAll) {
    out_capacity = num_nodes;
    in_capacity = num_nodes;
  }
  lists_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i)
    lists_.emplace_back(out_capacity, in_capacity);
}

bool NeighborTable::link(net::NodeId i, net::NodeId j) {
  if (i == j || i >= lists_.size() || j >= lists_.size()) return false;
  NeighborLists& li = lists_[i];
  NeighborLists& lj = lists_[j];
  if (li.has_out(j)) return false;

  if (kind_ == RelationKind::kSymmetric) {
    // A symmetric link consumes an out and an in slot at both ends.
    if (li.out_full() || li.in_full() || lj.out_full() || lj.in_full())
      return false;
    li.add_out(j);
    li.add_in(j);
    lj.add_out(i);
    lj.add_in(i);
    return true;
  }

  if (li.out_full() || lj.in_full()) return false;
  li.add_out(j);
  lj.add_in(i);
  return true;
}

bool NeighborTable::unlink(net::NodeId i, net::NodeId j) {
  if (i >= lists_.size() || j >= lists_.size()) return false;
  if (!lists_[i].remove_out(j)) return false;
  lists_[j].remove_in(i);
  if (kind_ == RelationKind::kSymmetric) {
    lists_[j].remove_out(i);
    lists_[i].remove_in(j);
  }
  return true;
}

std::vector<net::NodeId> NeighborTable::isolate(net::NodeId i) {
  std::vector<net::NodeId> affected;
  if (i >= lists_.size()) return affected;
  NeighborLists& li = lists_[i];

  // Peers that will lose i from their outgoing list.
  for (net::NodeId j : li.in())
    if (!contains(affected, j)) affected.push_back(j);

  for (net::NodeId j : li.out()) {
    lists_[j].remove_in(i);
    if (kind_ == RelationKind::kSymmetric) lists_[j].remove_out(i);
  }
  for (net::NodeId j : li.in()) {
    lists_[j].remove_out(i);
    if (kind_ == RelationKind::kSymmetric) lists_[j].remove_in(i);
  }
  li.clear();
  return affected;
}

bool NeighborTable::consistent() const {
  for (net::NodeId i = 0; i < lists_.size(); ++i) {
    for (net::NodeId j : lists_[i].out()) {
      if (j >= lists_.size()) return false;
      if (!lists_[j].has_in(i)) return false;
    }
    if (kind_ == RelationKind::kSymmetric) {
      const auto& l = lists_[i];
      if (l.out().size() != l.in().size()) return false;
      for (net::NodeId j : l.out())
        if (!l.has_in(j)) return false;
    }
  }
  return true;
}

}  // namespace dsf::core
