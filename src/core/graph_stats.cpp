#include "core/graph_stats.h"

#include <algorithm>

namespace dsf::core {

double gini(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double cum_weighted = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    cum_weighted += static_cast<double>(i + 1) * values[i];
    total += values[i];
  }
  if (total <= 0.0) return 0.0;
  const double n = static_cast<double>(values.size());
  return (2.0 * cum_weighted) / (n * total) - (n + 1.0) / n;
}

double mean_degree(const NeighborTable& table, const NodeFilter& filter) {
  double sum = 0.0;
  std::size_t n = 0;
  for (net::NodeId i = 0; i < table.size(); ++i) {
    if (!filter(i)) continue;
    sum += static_cast<double>(table.lists(i).out().size());
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double degree_gini(const NeighborTable& table, const NodeFilter& filter) {
  std::vector<double> degrees;
  for (net::NodeId i = 0; i < table.size(); ++i)
    if (filter(i))
      degrees.push_back(static_cast<double>(table.lists(i).out().size()));
  return gini(std::move(degrees));
}

double clustering_coefficient(const NeighborTable& table,
                              const NodeFilter& filter) {
  double sum = 0.0;
  std::size_t n = 0;
  for (net::NodeId i = 0; i < table.size(); ++i) {
    if (!filter(i)) continue;
    const auto& nbrs = table.lists(i).out();
    if (nbrs.size() < 2) continue;
    std::size_t linked = 0, pairs = 0;
    for (std::size_t a = 0; a < nbrs.size(); ++a) {
      for (std::size_t b = a + 1; b < nbrs.size(); ++b) {
        ++pairs;
        if (table.lists(nbrs[a]).has_out(nbrs[b]) ||
            table.lists(nbrs[b]).has_out(nbrs[a]))
          ++linked;
      }
    }
    sum += static_cast<double>(linked) / static_cast<double>(pairs);
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double same_attribute_fraction(
    const NeighborTable& table, const NodeFilter& filter,
    const std::function<std::uint32_t(net::NodeId)>& attribute) {
  std::size_t same = 0, pairs = 0;
  for (net::NodeId i = 0; i < table.size(); ++i) {
    if (!filter(i)) continue;
    const std::uint32_t a = attribute(i);
    for (net::NodeId j : table.lists(i).out()) {
      ++pairs;
      if (attribute(j) == a) ++same;
    }
  }
  return pairs ? static_cast<double>(same) / static_cast<double>(pairs) : 0.0;
}

}  // namespace dsf::core
