#include "core/graph_stats.h"

#include <algorithm>

namespace dsf::core {

double gini(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double cum_weighted = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    cum_weighted += static_cast<double>(i + 1) * values[i];
    total += values[i];
  }
  if (total <= 0.0) return 0.0;
  const double n = static_cast<double>(values.size());
  return (2.0 * cum_weighted) / (n * total) - (n + 1.0) / n;
}

}  // namespace dsf::core
