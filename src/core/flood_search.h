#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "core/visit_stamp.h"
#include "net/message.h"
#include "net/node_id.h"

namespace dsf::core {

/// What the transport decided for one transmission.  The default describes
/// a perfectly reliable network: one copy, delivered, on time.  The fault
/// layer (sim/fault.h) returns non-default results to model lossy links.
struct TransmitResult {
  bool deliver = true;        ///< false: the copy was lost in the network
  bool duplicate = false;     ///< true: a second copy was transmitted too
  double extra_delay_s = 0.0; ///< congestion delay added to propagation
};

/// The no-op transport policy: every transmission succeeds.  Passing this
/// to the transmit-aware searches compiles down to the historical
/// fault-free bodies, so the reliable overloads stay bit-identical.
struct ReliableTransmit {
  /// Called once per search (or per iterative-deepening cycle) with the
  /// cycle's hop budget, before any transmission is attempted.
  constexpr void begin(int /*max_ttl*/) const noexcept {}
  constexpr TransmitResult operator()(net::MessageType /*type*/,
                                      net::NodeId /*from*/, net::NodeId /*to*/,
                                      int /*ttl*/) const noexcept {
    return {};
  }
};

/// Parameters of the generic search algorithm (§3.2, Algo 1).
struct SearchParams {
  /// Propagation terminating condition: maximum hops a query may traverse
  /// (Squid uses 1, Gnutella up to 7; the case study sweeps 1–5).
  int max_hops = 5;
  /// §4.1: "if a neighbor contains the query results, it replies to the
  /// initiator without further propagating the query".  Extensive-search
  /// systems (music sharing that maximizes result count) set this true.
  bool forward_when_hit = false;
  /// Initiator-side collection timeout; replies arriving later are dropped
  /// and do not contribute hits or statistics.
  double timeout_s = std::numeric_limits<double>::infinity();
};

/// One result of a search: a node holding (or resembling) the requested
/// content, when the query reached it, when its direct reply lands back at
/// the initiator, and — for the ranked/similarity schemes — the result's
/// score.  Exact-match schemes leave the score at 0.0.
struct SearchHit {
  net::NodeId node = net::kInvalidNode;
  int hop = 0;               ///< hops from the initiator
  double arrival_s = 0.0;    ///< query arrival time at `node` (relative)
  double reply_at_s = 0.0;   ///< reply arrival back at the initiator
  double score = 0.0;        ///< ranked/similarity score (0 = unscored)
};

/// Outcome of one query, common to every scheme.  Exact-match floods leave
/// the ranked fields (k_target, pruned_subtrees, scores) at their zero
/// defaults, so the historical aggregate paths read identical values.
struct SearchOutcome {
  std::vector<SearchHit> hits;
  std::uint64_t query_messages = 0;  ///< query propagations (the paper's
                                     ///< "messages" metric)
  std::uint64_t reply_messages = 0;  ///< direct replies to the initiator
  std::uint32_t nodes_reached = 0;   ///< distinct nodes that processed it
  /// Ranked schemes: subtree forwards withheld because their known score
  /// bound could not beat the initiator's floor (the saved transmissions).
  std::uint32_t pruned_subtrees = 0;
  /// Ranked schemes: the k the query asked for (0 = unranked query).
  std::uint32_t k_target = 0;

  bool satisfied() const noexcept { return !hits.empty(); }

  /// Ranked satisfaction: a top-k query is k-satisfied when it returned a
  /// full k results; an unranked query degenerates to satisfied().
  bool k_satisfied() const noexcept {
    return k_target == 0 ? satisfied() : hits.size() >= k_target;
  }

  /// Best per-hit score (0.0 when unscored or empty).
  double best_score() const noexcept {
    double best = 0.0;
    for (const auto& h : hits) best = std::max(best, h.score);
    return best;
  }

  /// The earliest-arriving hit, or nullptr when the search missed (what
  /// the scenarios' span bookkeeping reads).
  const SearchHit* first_hit() const noexcept {
    const SearchHit* first = nullptr;
    for (const auto& h : hits)
      if (!first || h.reply_at_s < first->reply_at_s) first = &h;
    return first;
  }

  /// Delay until the first result reaches the initiator (Fig 3a's metric).
  /// An unsatisfied search answers 0.0 — the same documented sentinel as
  /// metrics::Histogram::quantile on an empty histogram — so the value is
  /// always finite and NaN-safe; callers that must distinguish check
  /// satisfied() first.
  double first_result_delay_s() const noexcept {
    const SearchHit* first = first_hit();
    return first ? first->reply_at_s : 0.0;
  }
};

/// Scratch buffers reused across searches so steady-state queries allocate
/// nothing.  `queue` is the BFS frontier of the flood family; the ranked
/// scheme additionally time-orders its frontier (`heap`) and tracks the
/// replies that feed the k-th-score floor (`replies`).
struct SearchScratch {
  struct Frontier {
    net::NodeId node;
    net::NodeId sender;
    int hop;
    double arrival_s;
  };
  std::vector<Frontier> queue;
  std::vector<Frontier> heap;  ///< ranked scheme: arrival-ordered frontier
  struct RankedReply {
    double reply_at_s;
    double score;
  };
  std::vector<RankedReply> replies;  ///< ranked scheme: floor bookkeeping
  std::vector<double> floor_scores;  ///< ranked scheme: k best arrived scores
};

/// Generic BFS query flood over an overlay (Algo 1 with the Gnutella
/// forwarding rule: forward to every outgoing neighbor except the sender;
/// duplicate deliveries are transmitted — and therefore counted — but
/// discarded by the receiver via its recent-messages list, modeled by
/// `stamps`).
///
/// The flood is expanded eagerly with per-edge delays drawn from `delay`,
/// which is semantically equivalent to scheduling each transmission as a
/// discrete event because queries only interact through statistics applied
/// at completion (see DESIGN.md §1.4).
///
/// `neighbors(n)`  -> const std::vector<net::NodeId>& : outgoing list of n
/// `has_content(n)`-> bool : does n hold the requested item
/// `delay(a, b)`   -> double : one-way delay seconds for this transmission
/// `transmit(type, from, to, ttl)` -> TransmitResult : transport verdict
///    for one copy (ReliableTransmit, or the engine's fault layer); `ttl`
///    is the remaining hop budget carried by a query, -1 for replies.
///
/// With ReliableTransmit every TransmitResult is the default, the extra
/// delay terms add exactly 0.0, and the body reduces to the historical
/// fault-free flood — the reliable overload below delegates here and
/// replays byte-identically.
template <typename NeighborsFn, typename HasContentFn, typename DelayFn,
          typename TransmitFn>
SearchOutcome flood_search(net::NodeId initiator, const SearchParams& params,
                           NeighborsFn&& neighbors, HasContentFn&& has_content,
                           DelayFn&& delay, TransmitFn&& transmit,
                           VisitStamp& stamps, SearchScratch& scratch) {
  SearchOutcome out;
  transmit.begin(params.max_hops);
  stamps.begin_search();
  stamps.mark(initiator);

  auto& queue = scratch.queue;
  queue.clear();
  queue.push_back({initiator, net::kInvalidNode, 0, 0.0});

  for (std::size_t head = 0; head < queue.size(); ++head) {
    // Copy, not reference: queue.push_back below may reallocate.
    const auto cur = queue[head];
    if (cur.hop >= params.max_hops) continue;  // guards the max_hops==0 case
    for (net::NodeId nbr : neighbors(cur.node)) {
      if (nbr == cur.sender) continue;  // never echo back to the sender
      ++out.query_messages;             // transmission happens regardless
      const TransmitResult tq = transmit(net::MessageType::kQuery, cur.node,
                                         nbr, params.max_hops - cur.hop);
      if (tq.duplicate) ++out.query_messages;
      // A lost copy never reaches nbr, and crucially does not mark it:
      // the node may still be reached through another path.
      if (!tq.deliver) continue;
      if (!stamps.mark(nbr)) continue;  // duplicate: receiver discards
      // Delay is sampled only for first deliveries: duplicates are counted
      // above but need no timestamp, which halves RNG work in the flood.
      const double arrival =
          cur.arrival_s + delay(cur.node, nbr) + tq.extra_delay_s;
      ++out.nodes_reached;

      const int hop = cur.hop + 1;
      bool forward = hop < params.max_hops;
      if (has_content(nbr)) {
        const double reply_at = arrival + delay(nbr, initiator);
        if (reply_at <= params.timeout_s) {
          ++out.reply_messages;
          const TransmitResult tr =
              transmit(net::MessageType::kQueryReply, nbr, initiator, -1);
          if (tr.duplicate) ++out.reply_messages;
          if (tr.deliver && reply_at + tr.extra_delay_s <= params.timeout_s)
            out.hits.push_back({nbr, hop, arrival,
                                reply_at + tr.extra_delay_s});
        }
        if (!params.forward_when_hit) forward = false;
      }
      if (forward) queue.push_back({nbr, cur.node, hop, arrival});
    }
  }
  return out;
}

/// Reliable-network flood (the historical entry point).
template <typename NeighborsFn, typename HasContentFn, typename DelayFn>
SearchOutcome flood_search(net::NodeId initiator, const SearchParams& params,
                           NeighborsFn&& neighbors, HasContentFn&& has_content,
                           DelayFn&& delay, VisitStamp& stamps,
                           SearchScratch& scratch) {
  ReliableTransmit reliable;
  return flood_search(initiator, params, std::forward<NeighborsFn>(neighbors),
                      std::forward<HasContentFn>(has_content),
                      std::forward<DelayFn>(delay), reliable, stamps, scratch);
}

}  // namespace dsf::core
