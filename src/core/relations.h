#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "net/node_id.h"

namespace dsf::core {

/// Kinds of neighboring relations between repositories (§3.1).
enum class RelationKind : std::uint8_t {
  kAllToAll,        ///< O_i and I_i contain all repositories (small N only)
  kAsymmetric,      ///< O_i and I_i may differ; both are capacity-bounded
  kPureAsymmetric,  ///< I_i capacity is N: anyone may pick anyone (Squid top level)
  kSymmetric,       ///< O_i == I_i; changes require pairwise agreement (Gnutella)
};

std::string_view to_string(RelationKind k) noexcept;

/// The incoming/outgoing neighbor lists of one repository.  Lists are kept
/// as small flat vectors (typical capacity: 4); membership tests are linear
/// scans, which outperform any hashing at these sizes.
class NeighborLists {
 public:
  NeighborLists() = default;
  NeighborLists(std::size_t out_capacity, std::size_t in_capacity)
      : out_capacity_(out_capacity), in_capacity_(in_capacity) {}

  const std::vector<net::NodeId>& out() const noexcept { return out_; }
  const std::vector<net::NodeId>& in() const noexcept { return in_; }

  std::size_t out_capacity() const noexcept { return out_capacity_; }
  std::size_t in_capacity() const noexcept { return in_capacity_; }
  bool out_full() const noexcept { return out_.size() >= out_capacity_; }
  bool in_full() const noexcept { return in_.size() >= in_capacity_; }

  bool has_out(net::NodeId n) const noexcept;
  bool has_in(net::NodeId n) const noexcept;

  /// Adds to the outgoing list.  Returns false if already present or full.
  bool add_out(net::NodeId n);
  /// Adds to the incoming list.  Returns false if already present or full.
  bool add_in(net::NodeId n);

  bool remove_out(net::NodeId n) noexcept;
  bool remove_in(net::NodeId n) noexcept;

  void clear() noexcept {
    out_.clear();
    in_.clear();
  }

 private:
  std::vector<net::NodeId> out_;
  std::vector<net::NodeId> in_;
  std::size_t out_capacity_ = SIZE_MAX;
  std::size_t in_capacity_ = SIZE_MAX;
};

/// The neighbor lists of a whole network, with the §3.1 consistency
/// predicate and relation-kind-aware link maintenance.
class NeighborTable {
 public:
  NeighborTable(std::size_t num_nodes, RelationKind kind,
                std::size_t out_capacity, std::size_t in_capacity);

  RelationKind kind() const noexcept { return kind_; }
  std::size_t size() const noexcept { return lists_.size(); }

  NeighborLists& lists(net::NodeId i) { return lists_.at(i); }
  const NeighborLists& lists(net::NodeId i) const { return lists_.at(i); }

  const std::vector<net::NodeId>& out_neighbors(net::NodeId i) const {
    return lists_.at(i).out();
  }

  /// Establishes i → j (j becomes an outgoing neighbor of i, i an incoming
  /// neighbor of j); for symmetric relations the reverse edge is installed
  /// too.  Returns false (and changes nothing) if any involved list is full
  /// or the edge already exists.
  bool link(net::NodeId i, net::NodeId j);

  /// Removes i → j (and j → i for symmetric relations).  Returns false if
  /// the edge did not exist.
  bool unlink(net::NodeId i, net::NodeId j);

  /// Removes every edge touching `i` (log-off).  Returns the nodes that
  /// lost `i` as an outgoing neighbor (they may want to react).
  std::vector<net::NodeId> isolate(net::NodeId i);

  /// §3.1: the network is consistent iff there is no pair (i, j) with
  /// j ∈ O_i but i ∉ I_j.  For symmetric relations additionally O_i == I_i
  /// as a set for every i.
  bool consistent() const;

 private:
  RelationKind kind_;
  std::vector<NeighborLists> lists_;
};

}  // namespace dsf::core
