#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/benefit.h"
#include "core/relations.h"
#include "core/stats_store.h"
#include "core/update.h"
#include "des/distributions.h"
#include "des/rng.h"
#include "des/simulator.h"
#include "metrics/time_series.h"
#include "net/bloom.h"
#include "net/message.h"
#include "sim/engine.h"
#include "webcache/lru_cache.h"

namespace dsf::webcache {

using PageId = std::uint32_t;

/// Cooperative web-proxy caching à la Squid (§1, §3 examples): proxies keep
/// LRU page caches; a local miss probes the outgoing neighbors (hop limit 1
/// — the Squid convention, since the origin server is always available as
/// the alternative repository) before falling back to the origin.
///
/// Relations are *pure asymmetric* (§3.1): any proxy may point its outgoing
/// list at any other, no agreement required, so neighbor update is the
/// simple Algo-3 top-k selection, driven by items/latency benefit and fed
/// by periodic exploration (Algo 2) that summarizes how much of the
/// requester's hot set a candidate holds.
struct WebCacheConfig {
  std::uint32_t num_proxies = 64;
  std::uint32_t num_pages = 100'000;
  std::uint32_t num_topics = 16;       ///< interest communities
  double topic_share = 0.6;            ///< fraction of requests in own topic
  double zipf_theta = 0.8;             ///< page popularity within a topic
  std::uint32_t cache_capacity = 1'000;
  std::uint32_t num_neighbors = 3;     ///< outgoing-list capacity
  /// Squid-hierarchy mode (§3.1's pure-asymmetric example): the first
  /// `num_parents` proxies are top-level caches that accept requests from
  /// every leaf but never forward to them.  Leaves point their outgoing
  /// lists only at parents; a miss at every probed parent is fetched from
  /// the origin *through* the primary parent, which caches it (the
  /// aggregation effect of a hierarchy).  0 = flat cooperative mesh.
  std::uint32_t num_parents = 0;
  std::uint32_t parent_capacity_factor = 4;  ///< parent cache size multiplier
  double mean_interrequest_s = 1.0;    ///< per-proxy request rate
  double origin_latency_s = 1.0;       ///< fetch from the web server
  bool dynamic = true;                 ///< adaptive vs static random lists
  double explore_period_s = 300.0;     ///< Algo-2 trigger (periodic)
  std::uint32_t explore_sample = 8;    ///< candidates probed per exploration
  std::uint32_t hot_set_size = 64;     ///< MRU prefix matched in exploration
  /// Proxies advertise Bloom digests of their content (Squid cache
  /// digests); exploration matches the hot set against the candidate's
  /// digest instead of its live cache.  Digests are rebuilt periodically,
  /// so they can be stale — the realistic failure mode of digest-based
  /// cooperation.  0 disables digests (exploration reads live caches).
  double digest_rebuild_period_s = 600.0;
  double digest_fpp = 0.02;            ///< digest false-positive target
  double update_period_s = 600.0;      ///< Algo-3 trigger (periodic)
  double sim_hours = 4.0;
  double warmup_hours = 0.5;
  std::uint64_t seed = 7;
};

struct WebCacheResult {
  std::uint64_t requests = 0;       ///< post-warmup
  std::uint64_t local_hits = 0;
  std::uint64_t neighbor_hits = 0;
  std::uint64_t origin_fetches = 0;
  metrics::Summary latency_s;       ///< end-to-end per request
  net::MessageStats traffic;

  double neighbor_hit_rate() const {
    const std::uint64_t misses = neighbor_hits + origin_fetches;
    return misses ? static_cast<double>(neighbor_hits) /
                        static_cast<double>(misses)
                  : 0.0;
  }
  double local_hit_rate() const {
    return requests ? static_cast<double>(local_hits) /
                          static_cast<double>(requests)
                    : 0.0;
  }
};

class WebCacheSim : public sim::OverlayEngine {
 public:
  explicit WebCacheSim(const WebCacheConfig& config);

  WebCacheResult run();

  const WebCacheConfig& config() const noexcept { return config_; }

 protected:
  /// Open-loop injection: serves one external page request at proxy `p`
  /// through the same cache/probe/origin path as closed-loop requests
  /// (caches warm, dynamic statistics fed, span-visible) without touching
  /// the closed-loop WebCacheResult counters.  `item` is a PageId, or
  /// load::kAnyItem to draw from `p`'s topic mix on the load lane.  Every
  /// request is served (the origin is always available); hit means the
  /// page came from a cooperative cache, local or neighbor.
  load::Served serve_injected_query(net::NodeId p,
                                    std::uint64_t item) override;

  /// Snapshot hooks: per-proxy caches, benefit statistics and content
  /// digests (mutable — rebuilt periodically) plus the result accumulators.
  void save_domain(snap::Writer::Out& out) const override;
  void load_domain(snap::Reader::In& in) override;
  void restore_keyed_event(double t, std::uint32_t kind, std::uint64_t a,
                           std::uint64_t b) override;

 private:
  /// Keyed event kinds (snapshot pending-event records).
  static constexpr std::uint32_t kWebRequest = kKeyedUserBase + 0;  ///< a = p

  struct Proxy {
    LruCache<PageId> cache;
    core::StatsStore stats;
    net::BloomFilter digest;
    std::uint32_t topic = 0;
    Proxy(std::size_t capacity, std::size_t digest_bits, int digest_hashes)
        : cache(capacity), digest(digest_bits, digest_hashes) {}
  };

  /// Validates the config and builds the engine parameterization.
  static sim::EngineConfig make_engine_config(const WebCacheConfig& config);

  void request(net::NodeId p);
  /// The service path shared by closed-loop requests and open-loop
  /// injection: local LRU touch, one-hop neighbor probe, origin fallback.
  /// Returns the end-to-end latency; sets *hit when the page was served
  /// from a cache (own or neighbor) rather than the origin.  `record`
  /// gates the WebCacheResult counters (false for injected queries).
  double serve_page(net::NodeId p, PageId page, bool record, bool* hit);
  void explore_from(net::NodeId p);
  void update_neighbors(net::NodeId p);
  void rebuild_digest(net::NodeId p);
  PageId draw_page(net::NodeId p) { return draw_page(p, rng()); }
  PageId draw_page(net::NodeId p, des::Rng& r);
  bool is_parent(net::NodeId p) const noexcept {
    return p < config_.num_parents;
  }

  /// Shard-local accumulator during parallel windows, `result_` otherwise.
  WebCacheResult& res() noexcept {
    const std::uint32_t s = des::ShardedSimulator::current_shard();
    return (!shard_results_.empty() && s != des::kNoShard)
               ? shard_results_[s]
               : result_;
  }

  WebCacheConfig config_;
  std::vector<Proxy> proxies_;
  des::Zipf page_zipf_;
  des::Exponential interrequest_;
  core::ItemsOverLatency benefit_;
  WebCacheResult result_;
  std::vector<WebCacheResult> shard_results_;  ///< parallel runs only
};

/// Folds shard-local metrics into `into` (canonical shard-order merge).
void merge_results(WebCacheResult& into, const WebCacheResult& shard);

}  // namespace dsf::webcache
