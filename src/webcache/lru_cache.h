#pragma once

#include <cstdint>
#include <list>
#include <stdexcept>
#include <unordered_map>

namespace dsf::webcache {

/// Fixed-capacity LRU set of item ids — the content store of a proxy (web
/// pages) or an OLAP peer (chunks).  `touch` promotes on hit; `insert`
/// evicts the least-recently-used item when full.
template <typename Key>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0)
      throw std::invalid_argument("LruCache: capacity must be > 0");
    index_.reserve(capacity * 2);
  }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return index_.size(); }

  bool contains(const Key& k) const { return index_.count(k) != 0; }

  /// Hit path: returns true and promotes `k` to most-recently-used.
  bool touch(const Key& k) {
    const auto it = index_.find(k);
    if (it == index_.end()) return false;
    order_.splice(order_.begin(), order_, it->second);
    return true;
  }

  /// Inserts (or promotes) `k`; returns the evicted key if any.
  /// The bool of the pair reports whether an eviction happened.
  std::pair<bool, Key> insert(const Key& k) {
    if (touch(k)) return {false, Key{}};
    std::pair<bool, Key> evicted{false, Key{}};
    if (index_.size() >= capacity_) {
      const Key& victim = order_.back();
      evicted = {true, victim};
      index_.erase(victim);
      order_.pop_back();
    }
    order_.push_front(k);
    index_[k] = order_.begin();
    return evicted;
  }

  bool erase(const Key& k) {
    const auto it = index_.find(k);
    if (it == index_.end()) return false;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  /// Most-recently-used first.
  const std::list<Key>& order() const noexcept { return order_; }

 private:
  std::size_t capacity_;
  std::list<Key> order_;
  std::unordered_map<Key, typename std::list<Key>::iterator> index_;
};

}  // namespace dsf::webcache
