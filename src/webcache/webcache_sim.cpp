#include "webcache/webcache_sim.h"

#include <algorithm>

#include "snap/codec.h"

namespace dsf::webcache {

sim::EngineConfig WebCacheSim::make_engine_config(const WebCacheConfig& config) {
  sim::require_positive("webcache", "num_proxies", config.num_proxies);
  sim::require_positive("webcache", "num_topics", config.num_topics);
  sim::require_positive("webcache", "num_neighbors", config.num_neighbors);
  sim::require_positive("webcache", "cache_capacity", config.cache_capacity);
  sim::validate_or_throw(config.num_parents < config.num_proxies, "webcache",
                         "num_parents must leave at least one leaf");
  sim::EngineConfig ec;
  ec.name = "webcache";
  ec.num_nodes = config.num_proxies;
  ec.seed = config.seed;
  ec.rng_layout = sim::RngLayout::kCompact;
  ec.relation = core::RelationKind::kPureAsymmetric;
  ec.out_capacity = config.num_neighbors;
  ec.in_capacity = 0;  // overridden to N by the pure-asymmetric relation
  ec.sim_hours = config.sim_hours;
  ec.warmup_hours = config.warmup_hours;
  return ec;
}

WebCacheSim::WebCacheSim(const WebCacheConfig& config)
    : sim::OverlayEngine(make_engine_config(config)),
      config_(config),
      page_zipf_(config.num_pages / config.num_topics, config.zipf_theta),
      interrequest_(config.mean_interrequest_s) {
  // Digest geometry sized once for the (parent) cache capacity at the
  // target false-positive rate.
  const std::size_t parent_capacity =
      static_cast<std::size_t>(config.cache_capacity) *
      config.parent_capacity_factor;
  const net::BloomFilter reference(
      config.num_parents ? parent_capacity : config.cache_capacity,
      config.digest_fpp);
  proxies_.reserve(config.num_proxies);
  for (std::uint32_t p = 0; p < config.num_proxies; ++p) {
    const std::size_t capacity =
        p < config.num_parents ? parent_capacity : config.cache_capacity;
    proxies_.emplace_back(capacity, reference.bit_count(),
                          reference.hash_count());
    proxies_.back().topic = p % config.num_topics;
  }
  // Initial outgoing lists: random, as a fresh deployment would start.
  // In hierarchy mode leaves point only at parents; parents point nowhere
  // (they resolve misses at the origin).
  for (net::NodeId p = 0; p < config.num_proxies; ++p) {
    if (is_parent(p)) continue;
    fill_random_neighbors(
        p, config.num_neighbors, default_bootstrap_attempts(),
        [this] {
          return static_cast<net::NodeId>(
              config_.num_parents ? rng().uniform_int(config_.num_parents)
                                  : rng().uniform_int(config_.num_proxies));
        },
        [] {});
  }
}

PageId WebCacheSim::draw_page(net::NodeId p, des::Rng& r) {
  // topic_share of requests in the proxy's own community, the rest uniform
  // over all topics — the cross-topic tail is what adaptive neighbor choice
  // cannot help with, keeping the comparison honest.
  const std::uint32_t pages_per_topic = config_.num_pages / config_.num_topics;
  std::uint32_t topic = proxies_[p].topic;
  if (!r.bernoulli(config_.topic_share))
    topic = static_cast<std::uint32_t>(r.uniform_int(config_.num_topics));
  const auto rank = static_cast<std::uint32_t>(page_zipf_.sample(r));
  return topic * pages_per_topic + rank;
}

double WebCacheSim::serve_page(net::NodeId p, PageId page, bool record,
                               bool* hit) {
  Proxy& proxy = proxies_[p];
  // Inactive fault layer => default verdicts, zero draws: one transmit
  // binding serves both regimes byte-identically.
  const auto tx = search_transmit();
  bool local;
  {
    const auto guard = peer_section(p);
    local = proxy.cache.touch(page);
  }
  if (local) {
    if (record) {
      ++res().local_hits;
      res().latency_s.add(0.001);  // local service time
    }
    if (hit) *hit = true;
    return 0.001;
  }
  // One-hop probe of the outgoing neighbors (Squid: hops = 1), then the
  // origin server as the alternative repository.
  const std::uint32_t span = obs_search_begin(p, 1, page);
  tx.begin(1);
  double latency = 0.0;
  net::NodeId holder = net::kInvalidNode;
  for (net::NodeId q : overlay_.out_neighbors(p)) {
    count(net::MessageType::kQuery);
    const auto tq = tx(net::MessageType::kQuery, p, q, 1);
    if (tq.duplicate) count(net::MessageType::kQuery);
    if (!tq.deliver) continue;  // probe lost or neighbor crashed
    count(net::MessageType::kQueryReply);
    const auto tr = tx(net::MessageType::kQueryReply, q, p, -1);
    if (tr.duplicate) count(net::MessageType::kQueryReply);
    if (!tr.deliver) continue;  // reply lost: the probe goes unanswered
    // Free-riders (adversary layer) never serve from their cache; the role
    // test is a single always-false branch when the layer is off.
    if (holder == net::kInvalidNode && !is_free_rider(q)) {
      const auto guard = peer_section(q);
      if (proxies_[q].cache.contains(page)) holder = q;
    }
  }
  if (holder != net::kInvalidNode) {
    // Request + page transfer from the neighbor.
    latency = 2.0 * sample_delay_s(p, holder);
    if (record) ++res().neighbor_hits;
    if (config_.dynamic) {
      core::ResultInfo info;
      info.responder = holder;
      info.items = 1.0;
      info.latency_s = latency;
      proxy.stats.add(holder,
                      benefit_.benefit(info) * adversary_benefit_weight(holder));
    }
  } else if (config_.num_parents > 0 && !overlay_.out_neighbors(p).empty() &&
             !node_dead(overlay_.out_neighbors(p).front())) {
    // Hierarchy: the miss resolves at the origin *through* the primary
    // parent, which caches the page on the way — the aggregation that
    // makes top-level proxies worth having.
    const net::NodeId parent = overlay_.out_neighbors(p).front();
    latency = config_.origin_latency_s + 2.0 * sample_delay_s(p, parent);
    {
      const auto guard = peer_section(parent);
      proxies_[parent].cache.insert(page);
    }
    if (record) ++res().origin_fetches;
  } else {
    latency = config_.origin_latency_s;
    if (record) ++res().origin_fetches;
  }
  if (holder != net::kInvalidNode)
    obs_search_end(span, p, 1, 1, latency);
  else
    obs_search_end(span, p, 0, -1, -1.0);
  if (record) res().latency_s.add(latency);
  {
    const auto guard = peer_section(p);
    proxy.cache.insert(page);
  }
  if (hit) *hit = holder != net::kInvalidNode;
  return latency;
}

void WebCacheSim::request(net::NodeId p) {
  if (node_dead(p)) return;  // a crashed proxy stops serving its clients
  {
    // Requests only read the overlay, so shards serve concurrently under
    // the shared section; per-proxy caches get stripe guards inside
    // serve_page because the probe reads remote caches (and a hierarchy
    // miss warms the parent's) while owners mutate their own LRU state.
    // Serially every guard is a no-op.
    const Section lock = shared_section();
    const PageId page = draw_page(p);
    capture_query_arrival(p, page);
    if (reporting()) ++res().requests;
    serve_page(p, page, reporting(), nullptr);
  }

  schedule_keyed_self(p, interrequest_.sample(rng()), kWebRequest, p, 0,
                      [this, p] { request(p); });
}

load::Served WebCacheSim::serve_injected_query(net::NodeId p,
                                               std::uint64_t item) {
  // Open-loop runs are serial, so the sections are no-ops; taking them
  // anyway keeps the path identical to closed-loop service.
  const Section lock = shared_section();
  const PageId page = item == load::kAnyItem
                          ? draw_page(p, load_lane())
                          : static_cast<PageId>(item % config_.num_pages);
  load::Served served;
  served.latency_s = serve_page(p, page, /*record=*/false, &served.hit);
  return served;
}

void WebCacheSim::explore_from(net::NodeId p) {
  // Algo 2: probe a random candidate set with the proxy's hot set (MRU
  // prefix) as the summarized collection; each reply reports how many of
  // those pages the candidate holds, converted into benefit via the mean
  // path latency.
  if (node_dead(p)) return;  // crashed: no more exploration
  Proxy& proxy = proxies_[p];
  const auto tx = search_transmit();
  std::vector<PageId> hot;
  hot.reserve(config_.hot_set_size);
  for (PageId page : proxy.cache.order()) {
    hot.push_back(page);
    if (hot.size() >= config_.hot_set_size) break;
  }
  const bool use_digests = config_.digest_rebuild_period_s > 0.0;
  for (std::uint32_t i = 0; i < config_.explore_sample; ++i) {
    // In hierarchy mode only top-level proxies are candidate neighbors.
    const auto q = static_cast<net::NodeId>(
        config_.num_parents ? rng().uniform_int(config_.num_parents)
                            : rng().uniform_int(config_.num_proxies));
    if (q == p) continue;
    count(net::MessageType::kExploreQuery);
    const auto tq = tx(net::MessageType::kExploreQuery, p, q, -1);
    if (tq.duplicate) count(net::MessageType::kExploreQuery);
    if (!tq.deliver) continue;  // probe lost or candidate crashed
    count(net::MessageType::kExploreReply);
    const auto tr = tx(net::MessageType::kExploreReply, q, p, -1);
    if (tr.duplicate) count(net::MessageType::kExploreReply);
    if (!tr.deliver) continue;  // reply lost: candidate goes unscored
    std::uint32_t overlap = 0;
    for (PageId page : hot) {
      // Digest match: cheap and shippable, but stale between rebuilds and
      // subject to false positives — the price of summarized information.
      const bool match = use_digests
                             ? proxies_[q].digest.might_contain(page)
                             : proxies_[q].cache.contains(page);
      if (match) ++overlap;
    }
    if (overlap > 0) {
      core::ResultInfo info;
      info.responder = q;
      info.items = overlap;
      info.latency_s = 2.0 * delay_.mean_delay_s(p, q);
      proxy.stats.add(q, benefit_.benefit(info) * adversary_benefit_weight(q));
    }
  }
}

void WebCacheSim::update_neighbors(net::NodeId p) {
  if (node_dead(p)) return;  // crashed: no more reorganizations
  // Algo 3 (pure asymmetric): adopt the top-k beneficial nodes outright —
  // no agreement needed, the incoming side accepts everyone.  Hierarchy
  // mode restricts eligibility to the top-level proxies.
  const auto plan = core::plan_update(
      proxies_[p].stats, overlay_.out_neighbors(p),
      adversary_degree_bound(p, config_.num_neighbors),
      [this, p](net::NodeId n) {
        return n != p && (config_.num_parents == 0 || is_parent(n));
      });
  for (net::NodeId x : plan.evictions) {
    overlay_.unlink(p, x);
    count(net::MessageType::kEviction);
  }
  for (net::NodeId v : plan.additions) {
    overlay_.link(p, v);
    count(net::MessageType::kInvitation);
  }
}

void WebCacheSim::rebuild_digest(net::NodeId p) {
  if (node_dead(p)) return;  // crashed: digest freezes at its last state
  Proxy& proxy = proxies_[p];
  proxy.digest.clear();
  for (PageId page : proxy.cache.order()) proxy.digest.insert(page);
}

WebCacheResult WebCacheSim::run() {
  if (parallel()) shard_results_.assign(shards(), WebCacheResult{});
  // A resumed run takes its pending request events from the snapshot and
  // must not draw the initial delays, but it still registers every periodic
  // in the same order so indices line up with the file.
  const bool fresh = !resumed();
  for (net::NodeId p = 0; p < config_.num_proxies; ++p) {
    // Parents have no client population of their own; they serve (and are
    // warmed by) leaf misses only.
    if (!is_parent(p) && fresh)
      schedule_keyed_self(p, interrequest_.sample(rng()), kWebRequest, p, 0,
                          [this, p] { request(p); });
    if (is_parent(p)) {
      if (config_.digest_rebuild_period_s > 0.0) {
        if (fresh)
          schedule_every(rng().uniform(0.0, config_.digest_rebuild_period_s),
                         config_.digest_rebuild_period_s,
                         [this, p] { rebuild_digest(p); });
        else
          register_periodic(config_.digest_rebuild_period_s,
                            [this, p] { rebuild_digest(p); });
      }
      continue;
    }
    if (config_.dynamic) {
      if (fresh) {
        schedule_every(rng().uniform(0.0, config_.explore_period_s),
                       config_.explore_period_s,
                       [this, p] { explore_from(p); });
        schedule_every(rng().uniform(0.0, config_.update_period_s),
                       config_.update_period_s,
                       [this, p] { update_neighbors(p); });
        if (config_.digest_rebuild_period_s > 0.0) {
          schedule_every(rng().uniform(0.0, config_.digest_rebuild_period_s),
                         config_.digest_rebuild_period_s,
                         [this, p] { rebuild_digest(p); });
        }
      } else {
        register_periodic(config_.explore_period_s,
                          [this, p] { explore_from(p); });
        register_periodic(config_.update_period_s,
                          [this, p] { update_neighbors(p); });
        if (config_.digest_rebuild_period_s > 0.0)
          register_periodic(config_.digest_rebuild_period_s,
                            [this, p] { rebuild_digest(p); });
      }
    }
  }
  run_until_horizon();
  for (const WebCacheResult& r : shard_results_) merge_results(result_, r);
  shard_results_.clear();
  result_.traffic = traffic();
  return result_;
}

void merge_results(WebCacheResult& into, const WebCacheResult& shard) {
  into.requests += shard.requests;
  into.local_hits += shard.local_hits;
  into.neighbor_hits += shard.neighbor_hits;
  into.origin_fetches += shard.origin_fetches;
  into.latency_s += shard.latency_s;
}

void WebCacheSim::save_domain(snap::Writer::Out& out) const {
  for (const Proxy& proxy : proxies_) {
    snap::put_lru(out, proxy.cache);
    snap::put_stats_store(out, proxy.stats);
    snap::put_bloom(out, proxy.digest);
  }
  // traffic is assigned at the end of run() from the restored ledger.
  out.u64(result_.requests);
  out.u64(result_.local_hits);
  out.u64(result_.neighbor_hits);
  out.u64(result_.origin_fetches);
  snap::put_summary(out, result_.latency_s);
}

void WebCacheSim::load_domain(snap::Reader::In& in) {
  for (Proxy& proxy : proxies_) {
    snap::get_lru(in, proxy.cache);
    snap::get_stats_store(in, proxy.stats);
    snap::get_bloom(in, proxy.digest);
  }
  result_.requests = in.u64();
  result_.local_hits = in.u64();
  result_.neighbor_hits = in.u64();
  result_.origin_fetches = in.u64();
  snap::get_summary(in, result_.latency_s);
}

void WebCacheSim::restore_keyed_event(double t, std::uint32_t kind,
                                      std::uint64_t a, std::uint64_t b) {
  if (kind == kWebRequest) {
    if (a >= proxies_.size())
      throw snap::SnapshotError("webcache: request event proxy out of range");
    const auto p = static_cast<net::NodeId>(a);
    schedule_keyed_at(t, kWebRequest, a, 0, [this, p] { request(p); });
    return;
  }
  OverlayEngine::restore_keyed_event(t, kind, a, b);
}

}  // namespace dsf::webcache
