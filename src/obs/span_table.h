#pragma once

// Span reconstruction: folds a flight-recorder stream back into one
// summary row per search span — the per-search causality the aggregate
// curves cannot show.  A span is everything between a kSearchBegin and
// its matching kSearchEnd with the same span id: the hop tree's sends,
// deliveries and drops, plus the terminal verdict the scenario stamped on
// the end record (result count, first-hit hop, first-result delay).

#include <cstdint>
#include <span>
#include <vector>

#include "metrics/table.h"
#include "obs/record.h"

namespace dsf::obs {

/// One reconstructed search span.
struct SpanSummary {
  std::uint32_t span = 0;       ///< span id (engine-assigned, 1-based)
  std::uint32_t initiator = 0;  ///< node that issued the search
  std::uint64_t item = 0;       ///< target item id from the begin record
  double begin_s = 0.0;
  double end_s = 0.0;
  int max_hops = 0;             ///< hop budget from the begin record

  std::uint64_t sends = 0;      ///< wire copies put on the wire
  std::uint64_t delivers = 0;
  std::uint64_t drops = 0;
  std::uint64_t query_sends = 0;  ///< kQuery copies only

  int depth = 0;          ///< deepest hop a query reached (from TTLs)
  int fanout = 0;         ///< hop-1 query sends out of the initiator
  int first_hit_hop = -1; ///< hop of the first result (-1: miss)
  std::uint64_t results = 0;
  double best_score = 0.0;  ///< best ranked score (0 for exact-match spans)
  double first_result_delay_s = -1.0;  ///< -1 when the search missed
  /// Largest simulation-time gap between consecutive records inside the
  /// span — the slowest observable step.  Zero for eagerly expanded
  /// floods (their hop tree is stamped at one instant); meaningful for
  /// event-driven exchanges.
  double slowest_gap_s = 0.0;

  bool complete = false;  ///< both begin and end records were retained

  bool hit() const noexcept { return first_hit_hop >= 0; }
};

/// Groups `records` (chronological, e.g. RingSink::snapshot()) into span
/// summaries, ordered by span id.  Spans whose begin record was lost to
/// ring wraparound — or whose end lies beyond the retained window — are
/// reported with complete == false and whatever was observed.
std::vector<SpanSummary> reconstruct_spans(std::span<const Record> records);

/// Renders summaries as a fixed-width table (one row per span) for the
/// CLI driver's --trace-spans output.
metrics::Table span_table(const std::vector<SpanSummary>& spans);

}  // namespace dsf::obs
