#pragma once

// Chrome trace_event exporter: converts a flight-recorder stream into the
// JSON trace format that chrome://tracing and Perfetto load directly, so
// a simulated search can be inspected on a real timeline instead of as a
// table.  The mapping:
//
//   * search spans    -> async begin/end pairs ("ph":"b"/"e", id = span),
//                        one track per initiating node;
//   * send/recv/drop  -> instant events ("ph":"i") carrying from/to/type/
//                        ttl/span in args;
//   * peer crashes    -> process-scoped instant events;
//   * heartbeats      -> counter events ("ph":"C") plotting events/sec,
//                        queue population and RSS over the run.
//
// Timestamps are simulation time scaled to microseconds (the format's
// unit).  The writer streams; it never materializes the document.

#include <cstdint>
#include <ostream>
#include <span>
#include <string>

#include "obs/record.h"

namespace dsf::obs {

/// Writes `records` (chronological) as one complete Chrome trace JSON
/// document ({"traceEvents": [...]}).  `overwritten` (e.g. from
/// RingSink::overwritten()) is recorded in the document's metadata so a
/// truncated trace announces itself.
void write_chrome_trace(std::ostream& os, std::span<const Record> records,
                        std::uint64_t overwritten = 0);

/// Convenience: open `path`, write, close.  Returns false on I/O failure.
bool write_chrome_trace_file(const std::string& path,
                             std::span<const Record> records,
                             std::uint64_t overwritten = 0);

}  // namespace dsf::obs
