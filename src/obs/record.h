#pragma once

// The flight recorder's wire format: one fixed-size POD record per
// observable event.  Records are designed to be cheap to stamp (a struct
// copy into a preallocated ring, no allocation, no formatting) and rich
// enough to reconstruct a search's full hop tree afterwards: every record
// carries the simulation time, the id of the search span it belongs to,
// and (for sharded parallel runs) the executing shard, so an exporter can
// group a query's begin → per-hop sends/receives → terminal into one
// causal trace and lay shards out as separate lanes.
//
// The payload fields `a`/`b` (and the reused `ttl` slot) are
// kind-specific; the table below is the authoritative encoding and the
// exporters in chrome_trace.cpp / span_table.cpp are its only consumers:
//
//   kind          from        to        ttl            a              b
//   ------------  ----------  --------  -------------  -------------  ----------------
//   kSend         sender      receiver  hop budget     bytes          copies (dup = 2)
//   kRecv         sender      receiver  hop budget     bytes          copies
//   kDrop         sender      receiver  hop budget     bytes          copies
//   kSearchBegin  initiator   invalid   max hops       target item    0
//   kSearchEnd    initiator   invalid   first-hit hop  results (low   first-result
//                                       (-1: miss)     32) + best-    delay bits
//                                                      score float
//                                                      bits (high 32)
//   kPeerCrash    victim      invalid   -1             0              0
//   kHeartbeat    queue pop.  wall ms   -1             events so far  RSS bytes
//
// (kSearchEnd.b is a double stored via std::bit_cast so the record stays
// trivially copyable.  kSearchEnd.a packs the result count into the low
// 32 bits and the best ranked score — float bits — into the high 32;
// exact-match searches have score 0, so their `a` equals the bare result
// count and pre-ranked-plane captures decode unchanged.  kHeartbeat packs
// the queue population and the wall clock into the two 32-bit node slots,
// which caps them at ~4.2e9 — plenty for a progress pulse.)

#include <bit>
#include <cstdint>
#include <type_traits>

namespace dsf::obs {

enum class RecordKind : std::uint8_t {
  kSend = 0,     ///< a message copy was put on the wire
  kRecv,         ///< the copy reached its receiver
  kDrop,         ///< the copy was lost (fault rule, or receiver dead)
  kSearchBegin,  ///< a search span opened at `from`
  kSearchEnd,    ///< the span closed (hit or miss)
  kPeerCrash,    ///< `from` crashed ungracefully
  kHeartbeat,    ///< periodic progress pulse (long-run liveness)
};

inline constexpr int kNumRecordKinds =
    static_cast<int>(RecordKind::kHeartbeat) + 1;

constexpr const char* to_string(RecordKind k) noexcept {
  switch (k) {
    case RecordKind::kSend: return "send";
    case RecordKind::kRecv: return "recv";
    case RecordKind::kDrop: return "drop";
    case RecordKind::kSearchBegin: return "search-begin";
    case RecordKind::kSearchEnd: return "search-end";
    case RecordKind::kPeerCrash: return "peer-crash";
    case RecordKind::kHeartbeat: return "heartbeat";
  }
  return "?";
}

/// One flight-recorder record: 48 bytes, trivially copyable, no pointers.
struct Record {
  double time_s = 0.0;      ///< simulation time of the event
  std::uint64_t a = 0;      ///< kind-specific payload (see table above)
  std::uint64_t b = 0;      ///< kind-specific payload
  std::uint32_t span = 0;   ///< enclosing search span id (0 = none)
  std::uint32_t from = 0;   ///< kind-specific node slot
  std::uint32_t to = 0;     ///< kind-specific node slot
  std::int16_t ttl = -1;    ///< remaining hop budget / first-hit hop / -1
  RecordKind kind = RecordKind::kSend;
  std::uint8_t type = 0;    ///< net::MessageType for wire records
  /// Executing shard + 1 for records from a sharded parallel run, 0 for
  /// serial runs (and barrier-emitted records).  Exporters use it to lay
  /// wire traffic out in per-shard lanes.
  std::uint16_t shard = 0;
  std::uint16_t reserved_[3] = {0, 0, 0};  ///< padding, keep zeroed

  /// kSearchEnd helper: the first-result delay travels as raw double bits.
  static std::uint64_t pack_delay(double delay_s) noexcept {
    return std::bit_cast<std::uint64_t>(delay_s);
  }
  double unpack_delay() const noexcept { return std::bit_cast<double>(b); }

  /// kSearchEnd helper: result count (low 32 bits of `a`) plus the best
  /// ranked score as float bits (high 32).  Score 0 — every exact-match
  /// search — leaves `a` equal to the bare result count.
  static std::uint64_t pack_results_score(std::uint64_t results,
                                          double best_score) noexcept {
    const auto score_bits = best_score > 0.0
                                ? std::bit_cast<std::uint32_t>(
                                      static_cast<float>(best_score))
                                : std::uint32_t{0};
    return (std::uint64_t{score_bits} << 32) | (results & 0xffffffffULL);
  }
  std::uint64_t unpack_results() const noexcept { return a & 0xffffffffULL; }
  double unpack_score() const noexcept {
    return static_cast<double>(
        std::bit_cast<float>(static_cast<std::uint32_t>(a >> 32)));
  }
};

static_assert(std::is_trivially_copyable_v<Record>,
              "records are raw-copied into the ring");
static_assert(sizeof(Record) == 48, "keep the flight-recorder record compact");

}  // namespace dsf::obs
