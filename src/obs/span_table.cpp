#include "obs/span_table.h"

#include <algorithm>
#include <map>
#include <string>

namespace dsf::obs {

namespace {

/// Query depth implied by one send record: the begin record's hop budget
/// minus the remaining budget, plus one (a send with full budget lands at
/// hop 1).  Records without a TTL (replies, control) carry no depth.
int depth_of(const SpanSummary& s, const Record& r) {
  if (r.ttl < 0 || s.max_hops <= 0) return 0;
  return s.max_hops - static_cast<int>(r.ttl) + 1;
}

}  // namespace

std::vector<SpanSummary> reconstruct_spans(std::span<const Record> records) {
  // Span ids are issued in increasing order, so an ordered map doubles as
  // the output ordering.
  std::map<std::uint32_t, SpanSummary> spans;
  std::map<std::uint32_t, double> last_time;

  for (const Record& r : records) {
    if (r.span == 0) continue;  // spanless record (heartbeat, crash, ...)
    SpanSummary& s = spans[r.span];
    if (s.span == 0) {
      s.span = r.span;
      s.begin_s = r.time_s;
    }
    // Slowest observable step so far.
    const auto lt = last_time.find(r.span);
    if (lt != last_time.end())
      s.slowest_gap_s = std::max(s.slowest_gap_s, r.time_s - lt->second);
    last_time[r.span] = r.time_s;
    s.end_s = std::max(s.end_s, r.time_s);

    switch (r.kind) {
      case RecordKind::kSearchBegin:
        s.initiator = r.from;
        s.item = r.a;
        s.max_hops = r.ttl;
        s.begin_s = r.time_s;
        s.complete = false;  // until the end record arrives
        break;
      case RecordKind::kSearchEnd:
        s.first_hit_hop = r.ttl;
        s.results = r.unpack_results();
        s.best_score = r.unpack_score();
        s.first_result_delay_s = r.unpack_delay();
        s.end_s = r.time_s;
        // Complete only if the begin was retained too (max_hops is set
        // exclusively by the begin record).
        s.complete = s.max_hops > 0;
        break;
      case RecordKind::kSend:
        s.sends += r.b ? r.b : 1;
        if (r.ttl >= 0) {
          s.query_sends += r.b ? r.b : 1;
          s.depth = std::max(s.depth, depth_of(s, r));
          if (s.max_hops > 0 && r.ttl == s.max_hops) ++s.fanout;
        }
        break;
      case RecordKind::kRecv:
        s.delivers += r.b ? r.b : 1;
        break;
      case RecordKind::kDrop:
        s.drops += r.b ? r.b : 1;
        break;
      case RecordKind::kPeerCrash:
      case RecordKind::kHeartbeat:
        break;
    }
  }

  std::vector<SpanSummary> out;
  out.reserve(spans.size());
  for (auto& [id, s] : spans) out.push_back(s);
  return out;
}

metrics::Table span_table(const std::vector<SpanSummary>& spans) {
  metrics::Table table({"span", "initiator", "begin_s", "sends", "depth",
                        "fanout", "results", "score", "first_hit_hop",
                        "first_result_ms", "slowest_gap_ms", "complete"});
  for (const SpanSummary& s : spans) {
    table.add_row({std::to_string(s.span), std::to_string(s.initiator),
                   metrics::fmt(s.begin_s, 3), std::to_string(s.sends),
                   std::to_string(s.depth), std::to_string(s.fanout),
                   std::to_string(s.results),
                   s.best_score > 0.0 ? metrics::fmt(s.best_score, 3) : "-",
                   std::to_string(s.first_hit_hop),
                   s.hit() ? metrics::fmt(s.first_result_delay_s * 1e3, 1)
                           : "-",
                   metrics::fmt(s.slowest_gap_s * 1e3, 1),
                   s.complete ? "yes" : "partial"});
  }
  return table;
}

}  // namespace dsf::obs
