#pragma once

// RingSink: the production flight recorder.  A fixed-size ring of POD
// records, preallocated up front, overwritten oldest-first — recording is
// one struct copy plus a cursor bump, so a fully traced run stays within
// a few percent of untraced and a week-long soak holds the last N events
// instead of an unbounded log.  snapshot() restores chronological order;
// overwrites are counted so an exporter can say "trace truncated, oldest
// M records lost" instead of silently presenting a partial story.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/sink.h"

namespace dsf::obs {

class RingSink final : public TraceSink {
 public:
  /// Default capacity: 64Ki records = 2.5 MiB — enough for the full hop
  /// tree of thousands of searches while staying cache-friendly.
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  explicit RingSink(std::size_t capacity = kDefaultCapacity);

  void record(const Record& r) noexcept override;

  std::size_t capacity() const noexcept { return buf_.size(); }
  /// Records currently held (== min(total, capacity)).
  std::size_t size() const noexcept;
  /// Records ever offered to the sink.
  std::uint64_t total() const noexcept { return total_; }
  /// Records lost to wraparound (total - size).
  std::uint64_t overwritten() const noexcept;

  /// The retained records, oldest first.
  std::vector<Record> snapshot() const;

  /// Forgets everything; capacity is retained.
  void clear() noexcept;

 private:
  std::vector<Record> buf_;
  std::size_t next_ = 0;      ///< write cursor
  std::uint64_t total_ = 0;   ///< records ever written
};

}  // namespace dsf::obs
