#include "obs/process_stats.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace dsf::obs {

std::uint64_t peak_rss_bytes() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  rusage u{};
  if (getrusage(RUSAGE_SELF, &u) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(u.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(u.ru_maxrss) * 1024u;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace dsf::obs
