#include "obs/ring_sink.h"

#include <algorithm>

namespace dsf::obs {

RingSink::RingSink(std::size_t capacity) {
  buf_.resize(capacity ? capacity : 1);
}

void RingSink::record(const Record& r) noexcept {
  buf_[next_] = r;
  if (++next_ == buf_.size()) next_ = 0;
  ++total_;
}

std::size_t RingSink::size() const noexcept {
  return total_ < buf_.size() ? static_cast<std::size_t>(total_) : buf_.size();
}

std::uint64_t RingSink::overwritten() const noexcept {
  return total_ - size();
}

std::vector<Record> RingSink::snapshot() const {
  std::vector<Record> out;
  const std::size_t n = size();
  out.reserve(n);
  // When the ring has wrapped, the oldest retained record sits at the
  // write cursor; otherwise the buffer was filled from index 0.
  const std::size_t start = total_ > buf_.size() ? next_ : 0;
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(buf_[(start + i) % buf_.size()]);
  return out;
}

void RingSink::clear() noexcept {
  next_ = 0;
  total_ = 0;
}

}  // namespace dsf::obs
