#pragma once

// Process-level stats for heartbeat records and bench reports.

#include <cstdint>

namespace dsf::obs {

/// Peak resident set in bytes (0 when the platform offers no getrusage).
std::uint64_t peak_rss_bytes() noexcept;

}  // namespace dsf::obs
