#pragma once

// TraceSink: where the overlay engine's flight-recorder records go.  The
// contract is built for a hot path that must cost nothing when tracing is
// off: the engine stores a plain pointer that is null unless an *enabled*
// sink is attached, so the disabled path is one perfectly predicted
// branch and zero virtual calls.  NullSink exists so callers can express
// "tracing explicitly off" through the same API surface (a FlagRegistry
// value, a config default) without the engine paying for it: attaching a
// sink whose enabled() is false is identical to attaching nothing.

#include "obs/record.h"

namespace dsf::obs {

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Consumes one record.  Must be cheap and must not throw: it runs at
  /// every traced transmission.
  virtual void record(const Record& r) noexcept = 0;

  /// False means "discard everything": the engine treats the sink as
  /// detached and never calls record().
  virtual bool enabled() const noexcept { return true; }
};

/// The do-nothing default.  Never actually consulted by the engine (its
/// enabled() == false collapses the attachment to a null pointer), which
/// is what keeps golden-seed fingerprints byte-identical and the disabled
/// path branch-predictable.
class NullSink final : public TraceSink {
 public:
  void record(const Record&) noexcept override {}
  bool enabled() const noexcept override { return false; }

  /// Shared instance for call sites that need a sink by reference.
  static NullSink& instance() noexcept {
    static NullSink sink;
    return sink;
  }
};

}  // namespace dsf::obs
