#include "obs/chrome_trace.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <string>

#include "net/message.h"

namespace dsf::obs {

namespace {

/// Simulation seconds -> trace microseconds, printed compactly.
std::string us(double time_s) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", time_s * 1e6);
  return buf;
}

const char* type_name(std::uint8_t type) {
  if (type >= net::kNumMessageTypes) return "?";
  return net::to_string(static_cast<net::MessageType>(type)).data();
}

/// Emits one trace-event object.  `first` tracks the comma discipline.
class EventWriter {
 public:
  explicit EventWriter(std::ostream& os) : os_(os) {}

  void open(const Record& r, const char* name, const char* ph,
            const char* cat) {
    if (!first_) os_ << ",\n";
    first_ = false;
    os_ << "    {\"name\": \"" << name << "\", \"cat\": \"" << cat
        << "\", \"ph\": \"" << ph << "\", \"pid\": 1, \"ts\": "
        << us(r.time_s);
  }

  void field(const char* key, const std::string& value) {
    os_ << ", \"" << key << "\": " << value;
  }

  void close() { os_ << "}"; }

 private:
  std::ostream& os_;
  bool first_ = true;
};

std::string u64(std::uint64_t v) { return std::to_string(v); }

/// Trace lane for a record: sharded parallel runs lay records out per
/// shard (shard field is shard + 1); serial records keep the historical
/// per-node lanes.
std::string tid(const Record& r) {
  return r.shard != 0 ? u64(r.shard) : u64(r.from);
}

}  // namespace

void write_chrome_trace(std::ostream& os, std::span<const Record> records,
                        std::uint64_t overwritten) {
  os << "{\n  \"displayTimeUnit\": \"ms\",\n"
     << "  \"otherData\": {\"source\": \"dsf flight recorder\", "
     << "\"records\": " << records.size()
     << ", \"overwritten\": " << overwritten << "},\n"
     << "  \"traceEvents\": [\n";

  EventWriter w(os);
  for (const Record& r : records) {
    switch (r.kind) {
      case RecordKind::kSearchBegin:
        w.open(r, "search", "b", "search");
        w.field("id", u64(r.span));
        w.field("tid", tid(r));
        w.field("args", "{\"initiator\": " + u64(r.from) +
                            ", \"item\": " + u64(r.a) +
                            ", \"max_hops\": " + std::to_string(r.ttl) + "}");
        w.close();
        break;
      case RecordKind::kSearchEnd: {
        w.open(r, "search", "e", "search");
        w.field("id", u64(r.span));
        w.field("tid", tid(r));
        // The score arg appears only on ranked spans, so exact-match
        // traces stay byte-identical to pre-ranked-plane captures.
        std::string args = "{\"results\": " + u64(r.unpack_results()) +
                           ", \"first_hit_hop\": " + std::to_string(r.ttl);
        if (const double score = r.unpack_score(); score > 0.0) {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%.4f", score);
          args += ", \"score\": ";
          args += buf;
        }
        args += "}";
        w.field("args", args);
        w.close();
        break;
      }
      case RecordKind::kSend:
      case RecordKind::kRecv:
      case RecordKind::kDrop: {
        w.open(r, to_string(r.kind), "i", "wire");
        w.field("s", "\"t\"");
        w.field("tid", tid(r));
        w.field("args", std::string("{\"type\": \"") + type_name(r.type) +
                            "\", \"from\": " + u64(r.from) +
                            ", \"to\": " + u64(r.to) +
                            ", \"ttl\": " + std::to_string(r.ttl) +
                            ", \"span\": " + u64(r.span) + "}");
        w.close();
        break;
      }
      case RecordKind::kPeerCrash:
        w.open(r, "peer-crash", "i", "fault");
        w.field("s", "\"p\"");
        w.field("tid", tid(r));
        w.field("args", "{\"victim\": " + u64(r.from) + "}");
        w.close();
        break;
      case RecordKind::kHeartbeat:
        // Three counter tracks out of one pulse record.
        w.open(r, "events", "C", "heartbeat");
        w.field("args", "{\"executed\": " + u64(r.a) + "}");
        w.close();
        w.open(r, "queue", "C", "heartbeat");
        w.field("args", "{\"pending\": " + u64(r.from) + "}");
        w.close();
        w.open(r, "rss_mib", "C", "heartbeat");
        w.field("args",
                "{\"mib\": " + std::to_string(r.b / (1024 * 1024)) + "}");
        w.close();
        break;
    }
  }
  os << "\n  ]\n}\n";
}

bool write_chrome_trace_file(const std::string& path,
                             std::span<const Record> records,
                             std::uint64_t overwritten) {
  std::ofstream f(path);
  if (!f) return false;
  write_chrome_trace(f, records, overwritten);
  return static_cast<bool>(f);
}

}  // namespace dsf::obs
