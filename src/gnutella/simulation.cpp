#include "gnutella/simulation.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "core/graph_stats.h"
#include "core/unreachable.h"
#include "des/distributions.h"
#include "sim/invariants.h"
#include "snap/codec.h"
#include "workload/user_profile.h"

namespace dsf::gnutella {

std::unique_ptr<core::BenefitFunction> make_benefit(BenefitKind kind) {
  switch (kind) {
    case BenefitKind::kBandwidthOverResults:
      return sim::make_benefit(sim::BenefitPolicy::kBandwidthOverResults);
    case BenefitKind::kUnit:
      return sim::make_benefit(sim::BenefitPolicy::kUnit);
    case BenefitKind::kInverseLatency:
      return sim::make_benefit(sim::BenefitPolicy::kInverseLatency);
  }
  core::unreachable_enum("gnutella::BenefitKind");
}

sim::EngineConfig Simulation::make_engine_config(const Config& config) {
  sim::require_positive("gnutella", "num_users", config.num_users);
  sim::require_positive("gnutella", "max_neighbors", config.max_neighbors);
  sim::require_positive("gnutella", "catalog.num_songs",
                        config.catalog.num_songs);
  sim::EngineConfig ec;
  ec.name = "gnutella";
  ec.num_nodes = config.num_users;
  ec.seed = config.seed;
  ec.rng_layout = sim::RngLayout::kFourLane;
  ec.relation = core::RelationKind::kSymmetric;
  ec.out_capacity = config.max_neighbors;
  ec.in_capacity = config.max_neighbors;
  ec.sim_hours = config.sim_hours;
  ec.warmup_hours = config.warmup_hours;
  return ec;
}

Simulation::Simulation(const Config& config)
    : sim::OverlayEngine(make_engine_config(config)),
      config_(config),
      catalog_(config.catalog),
      library_gen_(catalog_, config.library),
      query_gen_(catalog_),
      session_(config.session),
      hit_stamps_(config.num_users),
      benefit_fn_(make_benefit(config.benefit)) {
  des::Rng profile_rng = rng().split();
  workload::ProfileGenerator profiles(catalog_, config.user_zipf_theta);
  hot_.resize(config.num_users);
  cold_.resize(config.num_users);
  libraries_.reserve(config.num_users,
                     static_cast<std::size_t>(
                         static_cast<double>(config.num_users) *
                         config.library.mean_size));
  for (auto& c : cold_) {
    c.profile = profiles.generate(profile_rng);
    // Generation order and RNG draws are identical to the per-user Library
    // path; the pool only changes where the sorted songs end up living.
    libraries_.append(library_gen_.generate(c.profile, profile_rng));
  }

  if (config.invitation_policy == core::InvitationPolicy::kSummaryGated) {
    // Libraries never change, so each user's digest is built once.  ~1%
    // false positives keeps the benefit estimate honest at window size 32.
    digests_.reserve(config.num_users);
    for (net::NodeId u = 0; u < config.num_users; ++u) {
      const auto songs = libraries_.base(u);
      digests_.emplace_back(std::max<std::size_t>(songs.size(), 16), 0.01);
      for (workload::SongId s : songs) digests_.back().insert(s);
    }
  }

  if (config.search_strategy == SearchStrategy::kLsh) {
    // One MinHash signature per user over the start-up library, seeded
    // from the run seed so two runs with equal configs build equal
    // buckets.  Draw-free: no RNG lane is consumed.
    core::LshParams lp;
    lp.bands = config.lsh_bands;
    lp.rows = config.lsh_rows;
    lp.seed = des::hash_seed(config.seed, /*stream=*/0x15151515u);
    lsh_ = std::make_unique<core::LshIndex>(lp);
    lsh_->reserve(config.num_users);
    for (net::NodeId u = 0; u < config.num_users; ++u)
      lsh_->append_node(libraries_.base(u));
  }
}

std::uint32_t Simulation::summary_estimate(net::NodeId v, net::NodeId c) const {
  std::uint32_t overlap = 0;
  for (workload::SongId s : cold_[v].recent_queries)
    if (digests_[c].might_contain(s)) ++overlap;
  return overlap;
}

void Simulation::prime() {
  // Decide every user's initial state first so the bootstrap graph is
  // built over the full initial on-line population.
  const SessionChurn churn(session_);
  const std::vector<net::NodeId> initially_online =
      draw_initial_online(churn, session_rng());
  for (net::NodeId u : initially_online) {
    hot_[u].online = true;
    hot_[u].online_pos = static_cast<std::uint32_t>(online_nodes_.size());
    online_nodes_.push_back(u);
  }
  for (net::NodeId u : initially_online) fill_with_random_neighbors(u);
  for (net::NodeId u = 0; u < hot_.size(); ++u) {
    UserHot& st = hot_[u];
    if (st.online) {
      st.session_event = schedule_keyed_self(
          u, session_.draw_online_duration(session_rng()), kGnuSession, u, 0,
          [this, u] {
            const Section lock = exclusive_section();
            log_off(u);
          });
      schedule_next_query(u);
    } else {
      st.session_event = schedule_keyed_self(
          u, session_.draw_offline_duration(session_rng()), kGnuSession, u, 0,
          [this, u] {
            const Section lock = exclusive_section();
            log_in(u);
          });
    }
  }
}

void Simulation::probe_overlay() {
  const auto online = [this](net::NodeId n) { return hot_[n].online; };
  ProbeSample sample;
  sample.time_s = now_s();
  sample.online = online_nodes_.size();
  sample.mean_degree = core::mean_degree(overlay_, online);
  sample.degree_gini = core::degree_gini(overlay_, online);
  sample.clustering = core::clustering_coefficient(overlay_, online);
  sample.same_favorite = core::same_attribute_fraction(
      overlay_, online,
      [this](net::NodeId n) { return cold_[n].profile.favorite; });
  result_.probes.push_back(sample);
}

RunResult Simulation::run() {
  if (parallel()) {
    // Downloads append to the shared library spill lists mid-search, which
    // concurrent readers on other shards would observe torn.
    if (config_.library_growth)
      throw std::invalid_argument(
          "gnutella: library_growth is unsupported with --shards > 1");
    shard_results_.assign(shards(), RunResult{});
    shard_hit_stamps_.clear();
    shard_hit_stamps_.reserve(shards());
    for (std::uint32_t s = 0; s < shards(); ++s)
      shard_hit_stamps_.emplace_back(config_.num_users);
  }
  // A resumed run skips priming (hot/cold state, roster and pending events
  // come from the snapshot) but must still register its periodics in the
  // same order as a fresh run so periodic indices line up with the file.
  if (!resumed()) prime();
  if (config_.probe_period_s > 0.0) {
    if (resumed())
      register_periodic(config_.probe_period_s, [this] { probe_overlay(); });
    else
      schedule_every(config_.probe_period_s, config_.probe_period_s,
                     [this] { probe_overlay(); });
  }
  result_.events_executed = run_until_horizon();
  for (const RunResult& r : shard_results_) merge_results(result_, r);
  shard_results_.clear();
  shard_hit_stamps_.clear();
  result_.warmup_bucket = static_cast<std::size_t>(config_.warmup_hours);
  result_.last_bucket = static_cast<std::size_t>(config_.sim_hours) - 1;
  result_.traffic = traffic();
  return result_;
}

void merge_results(RunResult& into, const RunResult& shard) {
  into.hits += shard.hits;
  into.messages += shard.messages;
  into.results += shard.results;
  into.first_result_delay_s += shard.first_result_delay_s;
  into.first_result_delay_hist += shard.first_result_delay_hist;
  into.queries_issued += shard.queries_issued;
  into.local_hits += shard.local_hits;
  into.nodes_reached += shard.nodes_reached;
  into.queries_favorite += shard.queries_favorite;
  into.hits_favorite += shard.hits_favorite;
  into.queries_side += shard.queries_side;
  into.hits_side += shard.hits_side;
  into.reconfigurations += shard.reconfigurations;
  into.invitations_accepted += shard.invitations_accepted;
  into.evictions += shard.evictions;
  into.trials_kept += shard.trials_kept;
  into.trials_rejected += shard.trials_rejected;
  into.probes.insert(into.probes.end(), shard.probes.begin(),
                     shard.probes.end());
}

void Simulation::fill_with_random_neighbors(net::NodeId u,
                                             std::size_t target) {
  if (online_nodes_.size() < 2) return;
  target = std::min<std::size_t>(
      target, adversary_degree_bound(u, config_.max_neighbors));
  // A bounded number of random probes; when the population is nearly
  // saturated some probes fail, exactly as a real bootstrap would.
  fill_random_neighbors(
      u, target, default_bootstrap_attempts(),
      [this] {
        return online_nodes_[topo_rng().uniform_int(online_nodes_.size())];
      },
      [this] { on_link_formed(); });
}

void Simulation::on_link_formed() {
  // Local indices must be maintained: a new link triggers a content-digest
  // exchange in both directions (Yang & GM's index-update cost).
  if (config_.search_strategy == SearchStrategy::kLocalIndices)
    count(net::MessageType::kExploreReply, 2);
}

void Simulation::log_in(net::NodeId u) {
  UserHot& st = hot_[u];
  assert(!st.online);
  st.online = true;
  st.online_pos = static_cast<std::uint32_t>(online_nodes_.size());
  online_nodes_.push_back(u);
  if (!config_.persist_stats_across_sessions) cold_[u].stats.clear();
  st.reconfig_count = 0;

  // Gnutella bootstrap: the rendezvous server hands out random on-line
  // addresses; the neighborhood starts random in both schemes.
  fill_with_random_neighbors(u);

  st.session_event = schedule_keyed_self(
      u, session_.draw_online_duration(session_rng()), kGnuSession, u, 0,
      [this, u] {
        const Section lock = exclusive_section();
        log_off(u);
      });
  schedule_next_query(u);
}

void Simulation::log_off(net::NodeId u) {
  UserHot& st = hot_[u];
  assert(st.online);
  st.online = false;
  if (st.has_query_event) {
    cancel_self(u, st.query_event);
    st.has_query_event = false;
  }

  // Swap-pop from the on-line roster.
  const std::uint32_t pos = st.online_pos;
  const net::NodeId moved = online_nodes_.back();
  online_nodes_[pos] = moved;
  hot_[moved].online_pos = pos;
  online_nodes_.pop_back();

  // Sever all overlay links; ex-neighbors react per scheme.
  const std::vector<net::NodeId> affected = overlay_.isolate(u);
  for (net::NodeId v : affected) {
    if (!hot_[v].online) continue;  // defensive; overlay holds online only
    if (config_.dynamic) {
      // §4.1(v): neighbor log-offs trigger the update process.
      reconfigure(v);
      hot_[v].reconfig_count = 0;
    } else {
      // Static Gnutella: replace the lost neighbor with a random peer.
      fill_with_random_neighbors(v);
    }
  }

  st.session_event = schedule_keyed_self(
      u, session_.draw_offline_duration(session_rng()), kGnuSession, u, 0,
      [this, u] {
        const Section lock = exclusive_section();
        log_in(u);
      });
}

void Simulation::schedule_next_query(net::NodeId u) {
  UserHot& st = hot_[u];
  st.query_event = schedule_keyed_self(
      u, session_.draw_interquery_gap(session_rng()), kGnuQuery, u, 0,
      [this, u] { issue_query(u); });
  st.has_query_event = true;
}

void Simulation::issue_query(net::NodeId u) {
  hot_[u].has_query_event = false;
  UserCold& st = cold_[u];

  // The search itself only reads shared overlay/library state, so
  // concurrent shards may search together; reconfiguration mutates the
  // overlay and is deferred past the shared scope.  Serially both
  // sections are no-ops.
  bool do_reconfig = false;
  {
    const Section lock = shared_section();

    // By default users search for songs they do not already own (the
    // preference distribution conditioned on non-ownership by rejection);
    // with exclude_owned_songs=false, Send Query floods the raw draw, as
    // in Algo 5's pseudo-code.
    workload::SongId song = query_gen_.draw(st.profile, query_rng());
    if (config_.exclude_owned_songs) {
      bool found = !libraries_.contains(u, song);
      for (int tries = 0; tries < 64 && !found; ++tries) {
        song = query_gen_.draw(st.profile, query_rng());
        found = !libraries_.contains(u, song);
      }
      if (!found) {
        ++res().local_hits;
        schedule_next_query(u);
        return;
      }
    }

    if (config_.invitation_policy == core::InvitationPolicy::kSummaryGated) {
      if (st.recent_queries.size() < kRecentQueryWindow) {
        st.recent_queries.push_back(song);
      } else {
        st.recent_queries[st.recent_pos] = song;
        st.recent_pos = (st.recent_pos + 1) % kRecentQueryWindow;
      }
    }

    capture_query_arrival(u, song);

    core::SearchParams params;
    params.max_hops = config_.max_hops;
    params.forward_when_hit = false;  // §4.1: repliers do not propagate
    params.timeout_s = config_.query_timeout_s;

    const std::uint32_t span = obs_search_begin(u, params.max_hops, song);
    const auto outcome = run_search(u, song, params);
    finish_search(span, u, params, outcome);

    const des::SimTime now = now_s();
    RunResult& out = res();
    out.messages.add(now, outcome.query_messages);
    count(net::MessageType::kQuery, outcome.query_messages);
    count(net::MessageType::kQueryReply, outcome.reply_messages);
    if (reporting()) {
      ++out.queries_issued;
      out.nodes_reached.add(outcome.nodes_reached);
      const bool favorite = catalog_.category_of(song) == st.profile.favorite;
      ++(favorite ? out.queries_favorite : out.queries_side);
      if (outcome.satisfied())
        ++(favorite ? out.hits_favorite : out.hits_side);
    }
    if (outcome.satisfied()) {
      out.hits.add(now, 1);
      out.results.add(now, outcome.hits.size());
      if (reporting()) {
        const double delay = outcome.first_result_delay_s();
        out.first_result_delay_s.add(delay);
        out.first_result_delay_hist.add(delay);
      }
      // Extension: the user downloads the song and becomes a holder.  (The
      // summary-gated digests deliberately stay as built at start-up —
      // digests in deployed systems are periodically rebuilt, not updated
      // per download.)
      if (config_.library_growth) libraries_.add(u, song);
    }

    if (config_.dynamic) {
      // Combined search & exploration (§4.1): every result feeds statistics.
      const auto total = static_cast<std::uint32_t>(outcome.hits.size());
      for (const auto& hit : outcome.hits) {
        core::ResultInfo info;
        info.responder = hit.node;
        info.bandwidth_kbps = config_.benefit_bandwidth_weights[static_cast<int>(
            delay_.node_class(hit.node))];
        info.latency_s = hit.reply_at_s;
        info.total_results = total;
        st.stats.add(hit.node,
                     benefit_of(info) * adversary_benefit_weight(hit.node));
      }
      if (config_.reconfig_threshold > 0 &&
          ++hot_[u].reconfig_count >= config_.reconfig_threshold)
        do_reconfig = true;
    }
  }

  if (do_reconfig) {
    const Section lock = exclusive_section();
    reconfigure(u);
    hot_[u].reconfig_count = 0;
  }

  schedule_next_query(u);
}

load::Served Simulation::serve_injected_query(net::NodeId u,
                                              std::uint64_t item) {
  UserCold& st = cold_[u];
  bool do_reconfig = false;
  load::Served served;
  served.latency_s = config_.query_timeout_s;  // a miss serves the timeout
  {
    const Section lock = shared_section();
    const workload::SongId song =
        item == load::kAnyItem
            ? query_gen_.draw(st.profile, load_lane())
            : static_cast<workload::SongId>(item % catalog_.num_songs());

    core::SearchParams params;
    params.max_hops = config_.max_hops;
    params.forward_when_hit = false;
    params.timeout_s = config_.query_timeout_s;

    const std::uint32_t span = obs_search_begin(u, params.max_hops, song);
    const auto outcome = run_search(u, song, params);
    finish_search(span, u, params, outcome);

    // Injected traffic is real traffic to the network (ledger, checker,
    // flight recorder) but is reported through LoadStats, not the
    // closed-loop RunResult series.
    count(net::MessageType::kQuery, outcome.query_messages);
    count(net::MessageType::kQueryReply, outcome.reply_messages);
    if (outcome.satisfied()) {
      served.hit = true;
      served.latency_s = outcome.first_result_delay_s();
    }

    if (config_.dynamic) {
      // Injected results feed Algo 5's statistics exactly like the user's
      // own: the saturation experiments compare reconfiguration's effect
      // under overload, so the control loop must see the load.
      const auto total = static_cast<std::uint32_t>(outcome.hits.size());
      for (const auto& hit : outcome.hits) {
        core::ResultInfo info;
        info.responder = hit.node;
        info.bandwidth_kbps = config_.benefit_bandwidth_weights[static_cast<int>(
            delay_.node_class(hit.node))];
        info.latency_s = hit.reply_at_s;
        info.total_results = total;
        st.stats.add(hit.node,
                     benefit_of(info) * adversary_benefit_weight(hit.node));
      }
      if (config_.reconfig_threshold > 0 &&
          ++hot_[u].reconfig_count >= config_.reconfig_threshold)
        do_reconfig = true;
    }
  }

  if (do_reconfig) {
    const Section lock = exclusive_section();
    reconfigure(u);
    hot_[u].reconfig_count = 0;
  }
  return served;
}

double Simulation::ranked_score(net::NodeId n,
                                workload::SongId song) const noexcept {
  // Holders get a deterministic relevance in (0, 1] keyed on
  // (seed, holder, song) — e.g. replica quality or bitrate.  Non-holders
  // (and free-riders) score 0 and can never contribute, which keeps the
  // ranked scheme's hit/miss verdict identical to the flood's.
  if (is_free_rider(n) || !libraries_.contains(n, song)) return 0.0;
  const std::uint64_t bits =
      des::hash_seed(des::hash_seed(config_.seed, 0x7a5cede5u) ^ n, song);
  return (static_cast<double>(bits >> 11) + 1.0) * 0x1.0p-53;
}

void Simulation::finish_search(std::uint32_t span, net::NodeId u,
                               const core::SearchParams& params,
                               const core::SearchOutcome& outcome) {
  if (span != 0) {
    // First hit = minimum reply arrival (first_result_delay_s's metric);
    // its hop is the span's first-hit depth.
    const core::SearchHit* first = outcome.first_hit();
    obs_search_end(span, u, outcome.hits.size(), first ? first->hop : -1,
                   first ? first->reply_at_s : -1.0, outcome.best_score());
  }
  if (sim::InvariantChecker* c = checker())
    c->check_search_outcome(
        sim::query_spec_for(config_.search_strategy, params, config_.top_k,
                            config_.sim_threshold),
        outcome);
}

core::SearchOutcome Simulation::run_search(net::NodeId u,
                                           workload::SongId song,
                                           const core::SearchParams& params) {
  const auto neighbors = [this](net::NodeId n) -> core::NeighborView {
    return overlay_.out_neighbors(n);
  };
  const auto has_content = [this, song](net::NodeId n) {
    // Free-riders (adversary layer) answer nothing; with the layer off the
    // role test is a single always-false branch.
    return !is_free_rider(n) && libraries_.contains(n, song);
  };
  const auto delay = [this](net::NodeId a, net::NodeId b) {
    return sample_delay_s(a, b);
  };
  // kTopK's score doubles as the one-hop digest bound; kLsh reads the
  // initiator-anchored similarity estimate plus the band-bucket gate.
  const auto rank = [this, u, song](net::NodeId n) {
    return config_.search_strategy == SearchStrategy::kLsh
               ? lsh_->estimated_similarity(u, n)
               : ranked_score(n, song);
  };
  const auto candidate = [this, u](net::NodeId n) {
    return !is_free_rider(n) && lsh_->candidate(u, n);
  };
  auto ctx = core::make_ranked_context(u, neighbors, has_content, rank,
                                       candidate, delay, search_transmit(),
                                       visit_stamps(), hit_stamps(),
                                       search_scratch());
  ctx.stats = &cold_[u].stats;
  return sim::dispatch_search(
      config_.search_strategy,
      sim::query_spec_for(config_.search_strategy, params, config_.top_k,
                          config_.sim_threshold),
      config_.directed_fanout, ctx);
}

void Simulation::on_peer_crashed(net::NodeId u) {
  UserHot& st = hot_[u];
  if (st.has_query_event) {
    cancel_self(u, st.query_event);
    st.has_query_event = false;
  }
  cancel_self(u, st.session_event);
  if (!st.online) return;
  st.online = false;
  // Swap-pop from the on-line roster so the bootstrap server stops
  // handing out the crashed peer's address.  The overlay is deliberately
  // left alone: no isolate(), no neighbor reactions.
  const std::uint32_t pos = st.online_pos;
  const net::NodeId moved = online_nodes_.back();
  online_nodes_[pos] = moved;
  hot_[moved].online_pos = pos;
  online_nodes_.pop_back();
}

bool Simulation::adversary_churn_kick(des::Rng& lane, double offline_mean_s,
                                      double shape) {
  const Section lock = exclusive_section();
  if (online_nodes_.empty()) return false;
  const net::NodeId u = online_nodes_[lane.uniform_int(online_nodes_.size())];
  // Cancel the pending scheduled log-off, force the log-off now, then
  // replace the session-model comeback log_off just scheduled with the
  // storm's Pareto-tailed offline time.  (The session-lane draw inside
  // log_off is consumed either way; the layer is enabled here, so the
  // zero-draws contract is not in play.)
  cancel_self(u, hot_[u].session_event);
  log_off(u);
  cancel_self(u, hot_[u].session_event);
  hot_[u].session_event = schedule_keyed_self(
      u, des::Pareto::from_mean(offline_mean_s, shape).sample(lane),
      kGnuSession, u, 0, [this, u] {
        const Section lock = exclusive_section();
        log_in(u);
      });
  return true;
}

bool Simulation::invite(net::NodeId u, net::NodeId v) {
  UserHot& target = hot_[v];
  if (fault_layer_active()) {
    count(net::MessageType::kInvitation);
    const auto ti = transmit(net::MessageType::kInvitation, u, v, -1);
    if (ti.duplicate) count(net::MessageType::kInvitation);
    // A lost invitation (or a crashed target) elicits no reply at all.
    if (!ti.deliver) return false;
    count(net::MessageType::kInvitationReply);
    const auto tr = transmit(net::MessageType::kInvitationReply, v, u, -1);
    if (tr.duplicate) count(net::MessageType::kInvitationReply);
    if (!target.online) return false;
    // A lost reply means u never learns of the acceptance: the exchange
    // fails (retry/timeout recovery is ROADMAP work, not modeled here).
    if (!tr.deliver) return false;
  } else {
    count(net::MessageType::kInvitation);
    count(net::MessageType::kInvitationReply);
    if (!target.online) return false;
  }

  core::InvitationDecision decision;
  if (config_.invitation_policy == core::InvitationPolicy::kSummaryGated) {
    // §3.4 option (b): the invitation carries u's library digest; v ranks
    // u against its current neighbors by how much of its recent demand
    // each one could have served.
    const auto& in_list = overlay_.lists(v).in();
    if (std::find(in_list.begin(), in_list.end(), u) != in_list.end()) {
      decision.accept = false;
    } else if (in_list.size() <
               adversary_degree_bound(v, config_.max_neighbors)) {
      decision.accept = true;
    } else {
      net::NodeId worst = net::kInvalidNode;
      std::uint32_t worst_estimate = 0;
      for (net::NodeId w : in_list) {
        const std::uint32_t e = summary_estimate(v, w);
        if (worst == net::kInvalidNode || e < worst_estimate) {
          worst = w;
          worst_estimate = e;
        }
      }
      if (summary_estimate(v, u) > worst_estimate) {
        decision.accept = true;
        decision.evict = worst;
      }
    }
  } else {
    decision = core::decide_invitation(
        cold_[v].stats, u, overlay_.lists(v).in(),
        adversary_degree_bound(v, config_.max_neighbors),
        config_.invitation_policy);
  }
  if (!decision.accept) return false;

  if (decision.evict != net::kInvalidNode) evict(v, decision.evict);
  // The eviction's synchronous refill (Process Eviction) may have filled
  // either end back to its capacity bound meanwhile; with the adversary
  // layer off the bound is infinite here and link() below enforces the
  // table capacity exactly as before.
  constexpr auto kNoBound = std::numeric_limits<std::size_t>::max();
  if (overlay_.lists(u).out().size() >= adversary_degree_bound(u, kNoBound) ||
      overlay_.lists(v).out().size() >= adversary_degree_bound(v, kNoBound))
    return false;
  if (!overlay_.link(u, v)) return false;  // u saturated meanwhile
  on_link_formed();
  ++res().invitations_accepted;
  // Accepting resets the invited node's own counter to damp cascades
  // (§4.1); the ablation knob leaves the counter running.
  if (config_.damp_cascades) target.reconfig_count = 0;

  // §3.4 option (a): the acceptance is provisional — after the trial
  // period, v keeps u only if the statistics gathered meanwhile rank u
  // above at least one other neighbor.
  if (config_.invitation_policy == core::InvitationPolicy::kTrialPeriod) {
    // The evaluation reads v's statistics and may evict, so it runs as an
    // exclusive event on v's shard (mailbox-routed: the inviter's shard
    // may differ).
    schedule_keyed_for(v, config_.trial_period_s, kGnuTrial, u, v,
                       [this, u, v] {
                         const Section lock = exclusive_section();
                         evaluate_trial(u, v);
                       });
  }
  return true;
}

void Simulation::evaluate_trial(net::NodeId inviter, net::NodeId invitee) {
  // The relationship may already be gone (log-off, eviction); only a
  // still-standing link is evaluated.
  if (!hot_[invitee].online || !hot_[inviter].online) return;
  if (!overlay_.lists(invitee).has_out(inviter)) return;

  const auto& neighbors = overlay_.out_neighbors(invitee);
  const core::StatsStore& stats = cold_[invitee].stats;
  bool beats_someone = false;
  for (net::NodeId w : neighbors) {
    if (w == inviter) continue;
    if (stats.benefit_of(inviter) > stats.benefit_of(w)) {
      beats_someone = true;
      break;
    }
  }
  // A sole neighbor is kept unconditionally — terminating it would
  // disconnect the node for nothing.
  if (neighbors.size() <= 1) beats_someone = true;
  if (!beats_someone) {
    ++res().trials_rejected;
    evict(invitee, inviter);
  } else {
    ++res().trials_kept;
  }
}

void Simulation::evict(net::NodeId evictor, net::NodeId evictee) {
  count(net::MessageType::kEviction);
  bool evictee_reacts = true;
  if (fault_layer_active()) {
    const auto t = transmit(net::MessageType::kEviction, evictor, evictee, -1);
    if (t.duplicate) count(net::MessageType::kEviction);
    // The evictor severs the link either way (the symmetric table is the
    // ground truth), but a lost eviction — or a crashed evictee — means
    // the other side never runs its Process Eviction reaction.
    evictee_reacts = t.deliver;
  }
  overlay_.unlink(evictor, evictee);
  ++res().evictions;
  if (!evictee_reacts) return;
  // Process Eviction (§4.1): the evicted node resets the evictor's
  // statistics so it does not try to reconnect in the near future; it
  // restores basic connectivity up to the configured floor and leaves the
  // remaining slots to the reorganization machinery.
  cold_[evictee].stats.reset(evictor);
  if (config_.eviction_refill_floor > 0)
    fill_with_random_neighbors(evictee, config_.eviction_refill_floor);
}

void Simulation::reconfigure(net::NodeId u) {
  ++res().reconfigurations;
  UserCold& st = cold_[u];
  const auto plan = core::plan_update(
      st.stats, overlay_.out_neighbors(u),
      adversary_degree_bound(u, config_.max_neighbors),
      [this, u](net::NodeId n) { return n != u && hot_[n].online; });

  // §4.3: at most `max_exchanges_per_reconfig` neighbors are exchanged per
  // reconfiguration (one, in the paper's experiments).  Evictions happen
  // only to make room for an accepted addition, starting from the least
  // beneficial current neighbor.
  std::uint32_t exchanges = 0;
  for (net::NodeId v : plan.additions) {
    if (exchanges >= config_.max_exchanges_per_reconfig) break;
    // "Full" means the table is saturated OR the peer's capacity bound is
    // reached (the bound equals the table capacity when the adversary
    // layer is off, so this is the plain out_full() check then).
    if (overlay_.lists(u).out_full() ||
        overlay_.out_neighbors(u).size() >=
            adversary_degree_bound(u, config_.max_neighbors)) {
      const net::NodeId worst =
          core::least_beneficial(st.stats, overlay_.out_neighbors(u));
      if (worst == net::kInvalidNode) break;
      evict(u, worst);
    }
    invite(u, v);
    ++exchanges;
  }
  // Remaining free slots are refilled through the rendezvous server, the
  // same exploration primitive both schemes use at login.
  fill_with_random_neighbors(u);
}

void Simulation::save_domain(snap::Writer::Out& out) const {
  for (const UserHot& h : hot_) {
    out.u8(h.online ? 1 : 0);
    out.u8(h.has_query_event ? 1 : 0);
    out.u32(h.reconfig_count);
    out.u32(h.online_pos);
  }
  out.u64(online_nodes_.size());
  for (net::NodeId u : online_nodes_) out.u32(u);
  for (const UserCold& c : cold_) {
    snap::put_stats_store(out, c.stats);
    out.u64(c.recent_queries.size());
    for (workload::SongId s : c.recent_queries) out.u64(s);
    out.u64(c.recent_pos);
  }
  // Downloaded songs (library_growth): spill lists keyed by user, sorted so
  // identical state writes identical bytes.
  std::vector<std::uint32_t> spill_users;
  spill_users.reserve(libraries_.spill().size());
  for (const auto& [u, songs] : libraries_.spill()) spill_users.push_back(u);
  std::sort(spill_users.begin(), spill_users.end());
  out.u64(spill_users.size());
  for (std::uint32_t u : spill_users) {
    const auto& songs = libraries_.spill().at(u);
    out.u32(u);
    out.u64(songs.size());
    for (workload::SongId s : songs) out.u64(s);
  }
  // Result accumulators.  events_executed, warmup_bucket, last_bucket and
  // traffic are assigned at the end of run() (from engine state that the
  // core section restores), so they are not part of the domain image.
  snap::put_time_series(out, result_.hits);
  snap::put_time_series(out, result_.messages);
  snap::put_time_series(out, result_.results);
  snap::put_summary(out, result_.first_result_delay_s);
  snap::put_histogram(out, result_.first_result_delay_hist);
  out.u64(result_.queries_issued);
  out.u64(result_.local_hits);
  snap::put_summary(out, result_.nodes_reached);
  out.u64(result_.queries_favorite);
  out.u64(result_.hits_favorite);
  out.u64(result_.queries_side);
  out.u64(result_.hits_side);
  out.u64(result_.reconfigurations);
  out.u64(result_.invitations_accepted);
  out.u64(result_.evictions);
  out.u64(result_.trials_kept);
  out.u64(result_.trials_rejected);
  out.u64(result_.probes.size());
  for (const ProbeSample& p : result_.probes) {
    out.f64(p.time_s);
    out.f64(p.mean_degree);
    out.f64(p.degree_gini);
    out.f64(p.same_favorite);
    out.f64(p.clustering);
    out.u64(p.online);
  }
}

void Simulation::load_domain(snap::Reader::In& in) {
  for (UserHot& h : hot_) {
    h.online = in.u8() != 0;
    h.has_query_event = in.u8() != 0;
    h.reconfig_count = in.u32();
    h.online_pos = in.u32();
    // Event handles are re-established by restore_keyed_event.
    h.query_event = des::EventId{};
    h.session_event = des::EventId{};
  }
  online_nodes_.clear();
  const std::uint64_t online_count = in.u64();
  online_nodes_.reserve(static_cast<std::size_t>(online_count));
  for (std::uint64_t i = 0; i < online_count; ++i) {
    const net::NodeId u = in.u32();
    if (u >= hot_.size())
      throw snap::SnapshotError("gnutella: on-line roster entry out of range");
    online_nodes_.push_back(u);
  }
  for (UserCold& c : cold_) {
    snap::get_stats_store(in, c.stats);
    c.recent_queries.clear();
    const std::uint64_t nq = in.u64();
    if (nq > kRecentQueryWindow)
      throw snap::SnapshotError("gnutella: recent-query window overflow");
    c.recent_queries.reserve(static_cast<std::size_t>(nq));
    for (std::uint64_t i = 0; i < nq; ++i)
      c.recent_queries.push_back(static_cast<workload::SongId>(in.u64()));
    c.recent_pos = static_cast<std::size_t>(in.u64());
  }
  const std::uint64_t spill_users = in.u64();
  for (std::uint64_t i = 0; i < spill_users; ++i) {
    const std::uint32_t u = in.u32();
    if (u >= hot_.size())
      throw snap::SnapshotError("gnutella: spill-list user out of range");
    const std::uint64_t nsongs = in.u64();
    for (std::uint64_t j = 0; j < nsongs; ++j)
      libraries_.add(u, static_cast<workload::SongId>(in.u64()));
  }
  snap::get_time_series(in, result_.hits);
  snap::get_time_series(in, result_.messages);
  snap::get_time_series(in, result_.results);
  snap::get_summary(in, result_.first_result_delay_s);
  snap::get_histogram(in, result_.first_result_delay_hist);
  result_.queries_issued = in.u64();
  result_.local_hits = in.u64();
  snap::get_summary(in, result_.nodes_reached);
  result_.queries_favorite = in.u64();
  result_.hits_favorite = in.u64();
  result_.queries_side = in.u64();
  result_.hits_side = in.u64();
  result_.reconfigurations = in.u64();
  result_.invitations_accepted = in.u64();
  result_.evictions = in.u64();
  result_.trials_kept = in.u64();
  result_.trials_rejected = in.u64();
  result_.probes.clear();
  const std::uint64_t nprobes = in.u64();
  result_.probes.reserve(static_cast<std::size_t>(nprobes));
  for (std::uint64_t i = 0; i < nprobes; ++i) {
    ProbeSample p;
    p.time_s = in.f64();
    p.mean_degree = in.f64();
    p.degree_gini = in.f64();
    p.same_favorite = in.f64();
    p.clustering = in.f64();
    p.online = static_cast<std::size_t>(in.u64());
    result_.probes.push_back(p);
  }
}

void Simulation::restore_keyed_event(double t, std::uint32_t kind,
                                     std::uint64_t a, std::uint64_t b) {
  switch (kind) {
    case kGnuSession: {
      if (a >= hot_.size())
        throw snap::SnapshotError("gnutella: session event user out of range");
      const auto u = static_cast<net::NodeId>(a);
      if (hot_[u].online) {
        hot_[u].session_event =
            schedule_keyed_at(t, kGnuSession, a, 0, [this, u] {
              const Section lock = exclusive_section();
              log_off(u);
            });
      } else {
        hot_[u].session_event =
            schedule_keyed_at(t, kGnuSession, a, 0, [this, u] {
              const Section lock = exclusive_section();
              log_in(u);
            });
      }
      return;
    }
    case kGnuQuery: {
      if (a >= hot_.size())
        throw snap::SnapshotError("gnutella: query event user out of range");
      const auto u = static_cast<net::NodeId>(a);
      hot_[u].query_event = schedule_keyed_at(
          t, kGnuQuery, a, 0, [this, u] { issue_query(u); });
      hot_[u].has_query_event = true;
      return;
    }
    case kGnuTrial: {
      if (a >= hot_.size() || b >= hot_.size())
        throw snap::SnapshotError("gnutella: trial event node out of range");
      const auto u = static_cast<net::NodeId>(a);
      const auto v = static_cast<net::NodeId>(b);
      schedule_keyed_at(t, kGnuTrial, a, b, [this, u, v] {
        const Section lock = exclusive_section();
        evaluate_trial(u, v);
      });
      return;
    }
    default:
      OverlayEngine::restore_keyed_event(t, kind, a, b);
  }
}

}  // namespace dsf::gnutella
