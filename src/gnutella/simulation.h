#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/benefit.h"
#include "core/flood_search.h"
#include "core/lsh.h"
#include "core/query_plane.h"
#include "core/relations.h"
#include "core/search_strategies.h"
#include "core/stats_store.h"
#include "core/update.h"
#include "core/visit_stamp.h"
#include "des/rng.h"
#include "des/simulator.h"
#include "gnutella/config.h"
#include "metrics/time_series.h"
#include "net/bloom.h"
#include "net/delay_model.h"
#include "net/message.h"
#include "sim/engine.h"
#include "workload/catalog.h"
#include "workload/library.h"
#include "workload/library_pool.h"
#include "workload/query_gen.h"
#include "workload/session.h"
#include "workload/user_profile.h"

namespace dsf::gnutella {

/// One overlay-structure sample (Config::probe_period_s > 0).
struct ProbeSample {
  double time_s = 0.0;
  double mean_degree = 0.0;
  double degree_gini = 0.0;
  double same_favorite = 0.0;  ///< homophily of out-links
  double clustering = 0.0;     ///< mean local clustering coefficient
  std::size_t online = 0;
};

/// Everything a figure needs from one run.
struct RunResult {
  metrics::TimeSeries hits{3600.0};      ///< queries satisfied per hour
  metrics::TimeSeries messages{3600.0};  ///< query propagations per hour
  metrics::TimeSeries results{3600.0};   ///< individual results per hour
  metrics::Summary first_result_delay_s; ///< over satisfied queries (post-warmup)
  /// Same delays, binned for quantiles (p50/p95/p99); range covers the
  /// physical maximum of a 5-hop modem path plus reply.
  metrics::Histogram first_result_delay_hist{0.0, 5.0, 500};
  net::MessageStats traffic;             ///< all message types incl. control

  std::uint64_t queries_issued = 0;   ///< network queries (post-warmup)
  std::uint64_t local_hits = 0;       ///< requests satisfied from own library
  metrics::Summary nodes_reached;     ///< distinct nodes per flood (post-warmup)
  std::uint64_t queries_favorite = 0; ///< queries in the user's favourite category
  std::uint64_t hits_favorite = 0;
  std::uint64_t queries_side = 0;     ///< queries in a side category
  std::uint64_t hits_side = 0;
  std::uint64_t reconfigurations = 0; ///< Reconfigure executions
  std::uint64_t invitations_accepted = 0;
  std::uint64_t evictions = 0;
  std::uint64_t trials_kept = 0;      ///< kTrialPeriod: relationships kept
  std::uint64_t trials_rejected = 0;  ///< kTrialPeriod: terminated after trial
  std::uint64_t events_executed = 0;  ///< DES events over the whole horizon

  std::vector<ProbeSample> probes;  ///< overlay-structure evolution

  std::size_t warmup_bucket = 0;  ///< first reporting bucket (hour index)
  std::size_t last_bucket = 0;    ///< last full bucket of the horizon

  std::uint64_t total_hits() const {
    return hits.sum(warmup_bucket, last_bucket);
  }
  std::uint64_t total_messages() const {
    return messages.sum(warmup_bucket, last_bucket);
  }
  std::uint64_t total_results() const {
    return results.sum(warmup_bucket, last_bucket);
  }
};

/// Adapts workload::SessionModel to the engine's ChurnModel policy surface
/// (the §4.2 on/off churn as a plug-in the engine helpers can consume).
class SessionChurn final : public sim::ChurnModel {
 public:
  explicit SessionChurn(const workload::SessionModel& session)
      : session_(session) {}
  bool initially_online(des::Rng& rng) const override {
    return session_.draw_initial_online(rng);
  }
  double online_duration_s(des::Rng& rng) const override {
    return session_.draw_online_duration(rng);
  }
  double offline_duration_s(des::Rng& rng) const override {
    return session_.draw_offline_duration(rng);
  }

 private:
  const workload::SessionModel& session_;
};

/// The §4 case study: a population of music-sharing users over a symmetric
/// overlay, either static (random neighbors, random replacement on log-off)
/// or dynamic (Algo 5: combined search/exploration, benefit-ranked
/// reconfiguration with invitations and evictions).
///
/// The class is also the reference example of instantiating the framework:
/// sim::OverlayEngine provides the simulator, RNG lanes, delay model,
/// overlay table and message accounting; this class adds the workload
/// (catalog/libraries/sessions) and the Algo 5 event handlers.
class Simulation : public sim::OverlayEngine {
 public:
  explicit Simulation(const Config& config);

  /// Runs the full horizon and returns the collected metrics.
  RunResult run();

  /// --- instrumented access (tests, examples) ---
  const Config& config() const noexcept { return config_; }
  const workload::Catalog& catalog() const noexcept { return catalog_; }
  bool online(net::NodeId u) const { return hot_.at(u).online; }
  /// The user's construction-time library, sorted ascending.  Songs
  /// downloaded afterwards (library_growth) live in the pool's spill lists
  /// and are visible through owns(), not here — mirroring the
  /// digests-stay-as-built rule.
  std::span<const workload::SongId> library(net::NodeId u) const {
    return libraries_.base(u);
  }
  /// Ownership including downloaded songs.
  bool owns(net::NodeId u, workload::SongId s) const {
    return libraries_.contains(u, s);
  }
  const workload::UserProfile& profile(net::NodeId u) const {
    return cold_.at(u).profile;
  }
  const core::StatsStore& stats(net::NodeId u) const {
    return cold_.at(u).stats;
  }
  std::size_t online_count() const noexcept { return online_nodes_.size(); }
  const workload::LibraryPool& libraries() const noexcept {
    return libraries_;
  }

  /// Prepares the initial event population without running (tests drive
  /// the simulator manually afterwards).
  void prime();

 protected:
  /// Ungraceful failure (CrashModel victim or explicit crash_node): the
  /// victim's own pending activity stops, but — unlike log_off — nobody
  /// isolates it from the overlay, so ex-neighbors keep dangling entries
  /// and their future sends to it are dropped on arrival.
  void on_peer_crashed(net::NodeId u) override;

  /// Open-loop injection: serves one external query at `u` through the
  /// same strategy dispatch as closed-loop searches (ledger-accounted,
  /// span-visible, dynamic statistics fed), without touching the
  /// closed-loop RunResult series.  `item` is a SongId, or load::kAnyItem
  /// to draw from `u`'s preference profile on the load lane.  A miss
  /// serves for the full query timeout.
  load::Served serve_injected_query(net::NodeId u,
                                    std::uint64_t item) override;

  /// Churn-storm kick (adversary layer): forces a uniformly chosen on-line
  /// user off immediately and holds it off for a Pareto-tailed time drawn
  /// from the adversary lane (heavy-tailed sessions, the storm pathology).
  bool adversary_churn_kick(des::Rng& lane, double offline_mean_s,
                            double shape) override;

  /// Snapshot hooks: per-user hot/cold mutable state, the on-line roster,
  /// library growth spills and the result accumulators.  Catalog,
  /// profiles, libraries and digests are reconstructed by the constructor.
  void save_domain(snap::Writer::Out& out) const override;
  void load_domain(snap::Reader::In& in) override;
  void restore_keyed_event(double t, std::uint32_t kind, std::uint64_t a,
                           std::uint64_t b) override;

 private:
  // Per-user state is split SoA-style.  The hot record is what every
  // session/query event dispatch touches — 32 bytes, so a million-peer
  // event loop walks a dense array instead of dragging profiles,
  // statistics and query windows through the cache.  Libraries live in a
  // shared workload::LibraryPool arena (one allocation for the whole
  // population instead of one vector per user).
  struct UserHot {
    des::EventId query_event{};
    des::EventId session_event{};
    std::uint32_t reconfig_count = 0;
    std::uint32_t online_pos = 0;  ///< index in online_nodes_ when online
    bool online = false;
    bool has_query_event = false;
  };
  /// Cold per-user state: read on queries and invitations, not per event.
  struct UserCold {
    workload::UserProfile profile;
    core::StatsStore stats;
    /// Ring of the user's most recent query targets, matched against
    /// library digests by the summary-gated invitation policy.
    std::vector<workload::SongId> recent_queries;
    std::size_t recent_pos = 0;
  };
  static constexpr std::size_t kRecentQueryWindow = 32;

  /// Keyed event kinds (snapshot pending-event records).  A session wake's
  /// direction (log_in vs log_off) is not stored: it is re-derived from the
  /// restored hot_[u].online flag, which is exact by construction.
  static constexpr std::uint32_t kGnuSession = kKeyedUserBase + 0;  ///< a = u
  static constexpr std::uint32_t kGnuQuery = kKeyedUserBase + 1;    ///< a = u
  static constexpr std::uint32_t kGnuTrial =
      kKeyedUserBase + 2;  ///< a = inviter, b = invitee

  /// Validates the config and builds the engine parameterization.
  static sim::EngineConfig make_engine_config(const Config& config);

  void log_in(net::NodeId u);
  void log_off(net::NodeId u);
  void issue_query(net::NodeId u);
  /// Dispatches to the configured SearchStrategy (§2's orthogonal
  /// techniques all run over the same overlay/content/delay bindings; the
  /// ranked plane's schemes add scoring/bucket bindings on top).
  core::SearchOutcome run_search(net::NodeId u, workload::SongId song,
                                 const core::SearchParams& params);
  /// kTopK's per-peer score for a (peer, song) query: 0 unless the peer
  /// holds the song; holders get a deterministic score in (0, 1] keyed on
  /// (seed, peer, song) — the relevance spread the ranked scheme orders.
  double ranked_score(net::NodeId n, workload::SongId song) const noexcept;
  /// Records one finished search: trace span end, query/reply accounting,
  /// and per-search scheme certification when a checker is attached.
  void finish_search(std::uint32_t span, net::NodeId u,
                     const core::SearchParams& params,
                     const core::SearchOutcome& outcome);
  void schedule_next_query(net::NodeId u);
  void reconfigure(net::NodeId u);
  /// Sends an invitation u → v; returns true if v accepted and the link is
  /// up (Algo 5, Process Invitation).
  bool invite(net::NodeId u, net::NodeId v);
  /// §3.4 option (b): v estimates the potential benefit of candidate `c`
  /// as the number of its recent query targets that c's library digest
  /// claims to hold.
  std::uint32_t summary_estimate(net::NodeId v, net::NodeId c) const;
  /// §3.4 option (a): end of a provisional relationship — keep the
  /// inviter if it now beats at least one other neighbor, else terminate.
  void evaluate_trial(net::NodeId inviter, net::NodeId invitee);
  /// Sends an eviction from `evictor` severing the link to `evictee`
  /// (Algo 5, Process Eviction).
  void evict(net::NodeId evictor, net::NodeId evictee);
  /// Connects `u` to random online peers until its list holds `target`
  /// entries (default: full) or the attempt budget is spent
  /// (bootstrap-server behaviour of Gnutella).
  void fill_with_random_neighbors(net::NodeId u, std::size_t target = SIZE_MAX);
  /// Accounting hook for every new overlay link (index maintenance etc.).
  void on_link_formed();
  /// Samples overlay-structure statistics (rescheduled by the engine).
  void probe_overlay();
  double benefit_of(const core::ResultInfo& info) const {
    return benefit_fn_->benefit(info);
  }

  /// The result accumulator for the calling thread: the shard-local
  /// accumulator while a parallel window executes, `result_` otherwise.
  /// Shard accumulators are folded into `result_` in canonical shard
  /// order at the end of run().
  RunResult& res() noexcept {
    const std::uint32_t s = des::ShardedSimulator::current_shard();
    return (!shard_results_.empty() && s != des::kNoShard)
               ? shard_results_[s]
               : result_;
  }
  /// Per-shard holder-dedup stamps (generation counters cannot be shared
  /// across concurrent searches).
  core::VisitStamp& hit_stamps() noexcept {
    const std::uint32_t s = des::ShardedSimulator::current_shard();
    return (!shard_hit_stamps_.empty() && s != des::kNoShard)
               ? shard_hit_stamps_[s]
               : hit_stamps_;
  }

  Config config_;
  workload::Catalog catalog_;
  workload::LibraryGenerator library_gen_;
  workload::QueryGenerator query_gen_;
  workload::SessionModel session_;
  std::vector<UserHot> hot_;
  std::vector<UserCold> cold_;
  workload::LibraryPool libraries_;
  /// One library digest per user (libraries are static, built once); only
  /// materialized when the summary-gated policy is active.
  std::vector<net::BloomFilter> digests_;
  std::vector<net::NodeId> online_nodes_;
  /// kLsh: per-user MinHash signatures over the start-up libraries (like
  /// the summary-gated digests, signatures stay as built — deployed
  /// systems rebuild them periodically, not per download).  Null for
  /// every other strategy.
  std::unique_ptr<core::LshIndex> lsh_;
  core::VisitStamp hit_stamps_;  ///< per-search holder dedup (local indices)
  std::unique_ptr<core::BenefitFunction> benefit_fn_;
  RunResult result_;
  std::vector<RunResult> shard_results_;        ///< parallel runs only
  std::vector<core::VisitStamp> shard_hit_stamps_;
};

/// Folds shard-local metrics into `into` (canonical merge used by the
/// sharded run path; exposed for the differential tests).
void merge_results(RunResult& into, const RunResult& shard);

/// Builds the benefit function for a config (exposed for tests/ablations).
std::unique_ptr<core::BenefitFunction> make_benefit(BenefitKind kind);

}  // namespace dsf::gnutella
