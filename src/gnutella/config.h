#pragma once

#include <array>
#include <cstdint>

#include "core/update.h"
#include "sim/policy.h"
#include "workload/catalog.h"
#include "workload/library.h"
#include "workload/session.h"

namespace dsf::gnutella {

/// Which benefit function drives neighbor selection (ablation hook; the
/// paper's case study uses kBandwidthOverResults).
enum class BenefitKind : std::uint8_t {
  kBandwidthOverResults,  ///< §4.1: B / R
  kUnit,                  ///< result counting only
  kInverseLatency,        ///< reply latency only
};

/// Query-propagation technique — the shared sim-layer policy enum; the
/// alias keeps historical call sites (`SearchStrategy::kFlood`) intact.
using SearchStrategy = sim::SearchStrategyKind;

/// Full parameterization of the §4 case study.  Defaults reproduce the
/// paper's settings (§4.2/§4.3); benches override `max_hops`,
/// `reconfig_threshold` and `dynamic` per figure.
struct Config {
  // --- population & content (§4.2) ---
  std::uint32_t num_users = 2000;
  workload::Catalog::Params catalog{};    // 200k songs, 50 categories, θ=0.9
  double user_zipf_theta = 0.9;           // user → category assignment
  workload::LibraryGenerator::Params library{};  // Gaussian(200, 50)
  workload::SessionModel::Params session{};      // 3h on / 3h off, 320s gap

  // --- overlay & search (§4.1/§4.3) ---
  std::uint32_t max_neighbors = 4;
  int max_hops = 2;              ///< propagation terminating condition
  double query_timeout_s = 10.0; ///< initiator's collection window
  SearchStrategy search_strategy = SearchStrategy::kFlood;
  /// kDirectedBft: how many of the initiator's neighbors receive the query
  /// (the most beneficial ones by the node's statistics).
  std::uint32_t directed_fanout = 2;
  /// kTopK: how many results the initiator wants per query (the ranked
  /// plane's k; the floor that prunes last-hop forwards is the k-th best
  /// score among replies arrived so far).
  std::uint32_t top_k = 1;
  /// kLsh: MinHash signature geometry (bands x rows) and the minimum
  /// estimated Jaccard similarity a replying peer must clear.
  std::uint32_t lsh_bands = 16;
  std::uint32_t lsh_rows = 4;
  double sim_threshold = 0.5;

  // --- reconfiguration (§4.1) ---
  bool dynamic = true;                 ///< false = static Gnutella baseline
  std::uint32_t reconfig_threshold = 2;  ///< T, in issued requests (Fig 3b)
  /// §4.3: "only one neighbor is exchanged during each reconfiguration".
  /// Exchanging the full neighborhood at once over-clusters the overlay
  /// (neighbors' neighbors collapse onto the same community), which
  /// shrinks the reachable set and hurts the 50% of queries that fall in
  /// side categories — see bench_ablation_exchange.  UINT32_MAX restores
  /// full replacement.
  std::uint32_t max_exchanges_per_reconfig = 1;
  /// Degree an evicted node immediately restores (with random on-line
  /// peers) before falling back to §4.1's waiting rule for the remaining
  /// slots.  0 = pure waiting (the evicted node stays under-connected
  /// until an invitation arrives or its own reorganization threshold
  /// fires); max_neighbors = eager refill.  The eviction rate of the
  /// always-accept protocol is high (tens per node-hour), so pure waiting
  /// leaves a standing degree deficit that shrinks the reachable set at
  /// high hop limits; the default keeps nodes connected while still
  /// leaving one slot to the reorganization machinery.
  /// bench_ablation_update sweeps this.
  std::uint32_t eviction_refill_floor = 3;
  /// If false (default), Send Query floods whatever the preference
  /// distribution draws, exactly as Algo 5's pseudo-code (which has no
  /// initiator-side local check) — this reproduces the paper's regime
  /// where same-taste neighbors absorb many queries at the first hop.  If
  /// true, users only issue network queries for songs they do not already
  /// own; queries then concentrate on the popularity tail, where
  /// clustering buys less (ablation).
  bool exclude_owned_songs = false;
  /// If true, a satisfied query ends in a download: the song joins the
  /// user's library and the user can serve it from then on.  The paper
  /// keeps libraries fixed (its static baseline is flat over 4 days, which
  /// rules out network-wide replication growth), so this is an extension
  /// ablation (bench_ablation_workload).
  bool library_growth = false;
  core::InvitationPolicy invitation_policy =
      core::InvitationPolicy::kAlwaysAccept;
  /// kTrialPeriod: how long a provisionally accepted inviter has to prove
  /// itself before the invited node re-evaluates the relationship.
  double trial_period_s = 1800.0;
  /// §4.1: accepting an invitation resets the invited node's
  /// reconfiguration counter "to avoid updating the neighborhood in the
  /// near future (which could trigger cascading updates)".  Disabling this
  /// is the ablation that measures how much cascading the rule prevents.
  bool damp_cascades = true;
  BenefitKind benefit = BenefitKind::kBandwidthOverResults;
  /// The `B` fed into B/R per bandwidth class (modem, cable, LAN).  The
  /// paper does not give the scale of `B`; raw kbit/s (56/1500/10000) makes
  /// one LAN reply outweigh ~180 modem replies, turning neighbor selection
  /// into bandwidth-chasing instead of taste-matching (see
  /// bench_ablation_benefit).  The default expresses "prefer faster links"
  /// without drowning the repetition signal.
  std::array<double, 3> benefit_bandwidth_weights{1.0, 2.0, 3.0};
  /// Persist benefit statistics across a user's off-line periods (see
  /// DESIGN.md interpretation notes); ablation hook.
  bool persist_stats_across_sessions = true;

  // --- horizon & reporting (§4.3) ---
  double sim_hours = 96.0;     ///< 4 simulated days
  double warmup_hours = 12.0;  ///< steady state reached; report from here
  /// When > 0, the simulation samples overlay-structure statistics (mean
  /// degree, degree Gini, taste homophily, clustering coefficient) every
  /// `probe_period_s` simulated seconds into RunResult::probes.
  double probe_period_s = 0.0;

  std::uint64_t seed = 42;

  /// The static baseline is the same config with reconfiguration disabled.
  Config as_static() const {
    Config c = *this;
    c.dynamic = false;
    return c;
  }
};

}  // namespace dsf::gnutella
