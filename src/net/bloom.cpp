#include "net/bloom.h"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace dsf::net {

namespace {

constexpr double kLn2 = 0.6931471805599453;

std::size_t size_bits(std::size_t n, double p) {
  if (n == 0) throw std::invalid_argument("BloomFilter: zero expected items");
  if (!(p > 0.0 && p < 1.0))
    throw std::invalid_argument("BloomFilter: fpp must be in (0, 1)");
  const double m = -static_cast<double>(n) * std::log(p) / (kLn2 * kLn2);
  return static_cast<std::size_t>(m) + 1;
}

int optimal_hashes(std::size_t bits, std::size_t n) {
  const double k = static_cast<double>(bits) / static_cast<double>(n) * kLn2;
  return std::max(1, static_cast<int>(k + 0.5));
}

}  // namespace

BloomFilter::BloomFilter(std::size_t expected_items, double false_positive_rate)
    : BloomFilter(size_bits(expected_items, false_positive_rate),
                  optimal_hashes(size_bits(expected_items, false_positive_rate),
                                 expected_items)) {}

BloomFilter::BloomFilter(std::size_t bits, int hashes)
    : bits_((bits + 63) / 64 * 64), hashes_(hashes),
      words_(bits_ / 64, 0) {
  if (bits == 0) throw std::invalid_argument("BloomFilter: zero bits");
  if (hashes <= 0) throw std::invalid_argument("BloomFilter: zero hashes");
}

std::uint64_t BloomFilter::mix(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

void BloomFilter::insert(std::uint64_t item) noexcept {
  const std::uint64_t h1 = mix(item);
  const std::uint64_t h2 = mix(item ^ 0x9e3779b97f4a7c15ULL) | 1;
  for (int i = 0; i < hashes_; ++i) {
    const std::uint64_t bit = (h1 + static_cast<std::uint64_t>(i) * h2) % bits_;
    words_[bit / 64] |= 1ULL << (bit % 64);
  }
}

bool BloomFilter::might_contain(std::uint64_t item) const noexcept {
  const std::uint64_t h1 = mix(item);
  const std::uint64_t h2 = mix(item ^ 0x9e3779b97f4a7c15ULL) | 1;
  for (int i = 0; i < hashes_; ++i) {
    const std::uint64_t bit = (h1 + static_cast<std::uint64_t>(i) * h2) % bits_;
    if (!(words_[bit / 64] & (1ULL << (bit % 64)))) return false;
  }
  return true;
}

std::size_t BloomFilter::popcount() const noexcept {
  std::size_t count = 0;
  for (std::uint64_t w : words_) count += std::popcount(w);
  return count;
}

void BloomFilter::clear() noexcept {
  for (auto& w : words_) w = 0;
}

double BloomFilter::estimated_items() const noexcept {
  const double x = static_cast<double>(popcount());
  const double m = static_cast<double>(bits_);
  if (x >= m) return m;  // saturated
  return -m / hashes_ * std::log1p(-x / m);
}

BloomFilter& BloomFilter::merge(const BloomFilter& other) {
  if (bits_ != other.bits_ || hashes_ != other.hashes_)
    throw std::invalid_argument("BloomFilter::merge: geometry mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

}  // namespace dsf::net
