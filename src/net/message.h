#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace dsf::net {

/// Message taxonomy of the framework.  Search carries Query/QueryReply;
/// exploration carries Ping/Pong (the Gnutella exploration primitive) and
/// ExploreQuery/ExploreReply (the generic Algo-2 form that returns
/// statistics/summaries without fetching content); symmetric neighbor
/// update carries Invitation/InvitationReply/Eviction.
enum class MessageType : std::uint8_t {
  kQuery = 0,
  kQueryReply,
  kPing,
  kPong,
  kExploreQuery,
  kExploreReply,
  kInvitation,
  kInvitationReply,
  kEviction,
  kCount_,  // sentinel
};

inline constexpr int kNumMessageTypes =
    static_cast<int>(MessageType::kCount_);

constexpr std::string_view to_string(MessageType t) noexcept {
  constexpr std::array<std::string_view, kNumMessageTypes> kNames{
      "query",     "query-reply",      "ping",     "pong",    "explore-query",
      "explore-reply", "invitation", "invitation-reply", "eviction"};
  return kNames[static_cast<int>(t)];
}

/// Per-type message counters.  The paper's "query overhead" figures count
/// kQuery propagations; the framework additionally accounts for control
/// traffic so the reconfiguration cost itself can be reported.
class MessageStats {
 public:
  void count(MessageType t, std::uint64_t n = 1) noexcept {
    counts_[static_cast<int>(t)] += n;
  }

  std::uint64_t total(MessageType t) const noexcept {
    return counts_[static_cast<int>(t)];
  }

  std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (auto c : counts_) sum += c;
    return sum;
  }

  /// Search traffic only (queries + replies).
  std::uint64_t search_traffic() const noexcept {
    return total(MessageType::kQuery) + total(MessageType::kQueryReply);
  }

  /// Control traffic (exploration + reconfiguration messages).
  std::uint64_t control_traffic() const noexcept {
    return total() - search_traffic();
  }

  void reset() noexcept { counts_.fill(0); }

  MessageStats& operator+=(const MessageStats& other) noexcept {
    for (int i = 0; i < kNumMessageTypes; ++i) counts_[i] += other.counts_[i];
    return *this;
  }

 private:
  std::array<std::uint64_t, kNumMessageTypes> counts_{};
};

}  // namespace dsf::net
