#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace dsf::net {

/// Bloom-filter content digest — the "summarized information" of §3.4
/// (option b for assessing an inviter's potential benefit) and the cache
/// digest used by cooperative web caches.  A digest answers "might this
/// node hold item x?" with no false negatives and a tunable false-positive
/// rate, at a fraction of the cost of shipping the item list.
///
/// Hashing is double hashing over a 64-bit mix (Kirsch–Mitzenmeyer), so
/// digests are deterministic across runs and machines.
class BloomFilter {
 public:
  /// Sizes the filter for `expected_items` at the given false-positive
  /// rate (standard m = -n·ln(p)/ln(2)², k = m/n·ln(2) formulas).
  BloomFilter(std::size_t expected_items, double false_positive_rate);

  /// Explicit geometry (bits rounded up to a multiple of 64).
  BloomFilter(std::size_t bits, int hashes);

  void insert(std::uint64_t item) noexcept;
  bool might_contain(std::uint64_t item) const noexcept;

  /// Number of set bits — used to estimate digest fullness.
  std::size_t popcount() const noexcept;

  std::size_t bit_count() const noexcept { return bits_; }
  int hash_count() const noexcept { return hashes_; }

  void clear() noexcept;

  /// Approximate number of distinct inserted items, from the fill ratio:
  /// n ≈ -m/k · ln(1 - X/m).
  double estimated_items() const noexcept;

  /// Bitwise union with a same-geometry filter (e.g. merging the digests
  /// of several peers).  Throws on geometry mismatch.
  BloomFilter& merge(const BloomFilter& other);

  /// Raw bit words, for checkpointing mutable digests (rebuilt-over-time
  /// cache digests; construction-time digests are reconstructed instead).
  const std::vector<std::uint64_t>& words() const noexcept { return words_; }
  void restore_words(const std::vector<std::uint64_t>& w) {
    if (w.size() != words_.size())
      throw std::invalid_argument("BloomFilter::restore_words: geometry");
    words_ = w;
  }

 private:
  static std::uint64_t mix(std::uint64_t x) noexcept;

  std::size_t bits_;
  int hashes_;
  std::vector<std::uint64_t> words_;
};

}  // namespace dsf::net
