#pragma once

#include <cstdint>
#include <limits>

namespace dsf::net {

/// Dense node (repository/peer/proxy) identifier.  Nodes are created in a
/// contiguous range [0, n) so NodeId can index flat arrays everywhere in
/// the hot path.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

}  // namespace dsf::net
