#pragma once

#include <vector>

#include "des/distributions.h"
#include "des/rng.h"
#include "net/bandwidth.h"
#include "net/node_id.h"

namespace dsf::net {

/// Tuning knobs of the delay distribution (declared at namespace scope so
/// they can appear in default arguments of DelayModel's constructors).
struct DelayModelParams {
  double stddev_s = 0.020;  ///< σ of the Gaussian spread (paper: 20 ms)
  double floor_s = 0.010;   ///< lower truncation bound
  /// Upper truncation bound as a multiple of the class mean; the exact
  /// interval is unreadable in the paper scan (see DESIGN.md).
  double ceil_mean_multiple = 2.0;
};

/// Pairwise one-way delay model of §4.2: the mean delay between two users
/// is governed by the slower endpoint (300/150/70 ms for modem/cable/LAN),
/// with a Gaussian spread of σ = 20 ms truncated to [10 ms, 2·mean].
///
/// The model owns the per-node class assignment so every component that
/// needs a delay or a bandwidth weight goes through one object.
class DelayModel {
 public:
  using Params = DelayModelParams;

  /// Assigns each of `n` nodes a class uniformly at random (paper: each
  /// user equally likely modem/cable/LAN).
  DelayModel(std::size_t n, des::Rng& rng, const Params& params = Params());

  /// Builds from an explicit class assignment (for tests/scenarios).
  DelayModel(std::vector<BandwidthClass> classes, const Params& params = Params());

  std::size_t size() const noexcept { return classes_.size(); }
  BandwidthClass node_class(NodeId id) const { return classes_.at(id); }

  /// Benefit weight `B` of an answer delivered by `id` (its link bandwidth
  /// in kbit/s).
  double bandwidth_weight(NodeId id) const {
    return bandwidth_kbps(node_class(id));
  }

  /// Samples the one-way delay (seconds) from `from` to `to`.  Symmetric in
  /// distribution: governed by the slower endpoint.
  double sample_delay_s(NodeId from, NodeId to, des::Rng& rng) const;

  /// Mean one-way delay (seconds) of the (from, to) pair.
  double mean_delay_s(NodeId from, NodeId to) const;

 private:
  std::vector<BandwidthClass> classes_;
  // One truncated Gaussian per governing class, indexed by BandwidthClass.
  std::vector<des::TruncatedGaussian> dists_;
};

}  // namespace dsf::net
