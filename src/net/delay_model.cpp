#include "net/delay_model.h"

#include <stdexcept>

namespace dsf::net {

namespace {

std::vector<des::TruncatedGaussian> build_dists(
    const DelayModel::Params& params) {
  std::vector<des::TruncatedGaussian> dists;
  dists.reserve(kNumBandwidthClasses);
  for (int c = 0; c < kNumBandwidthClasses; ++c) {
    const double mean = mean_one_way_delay_s(static_cast<BandwidthClass>(c));
    dists.emplace_back(mean, params.stddev_s, params.floor_s,
                       mean * params.ceil_mean_multiple);
  }
  return dists;
}

}  // namespace

DelayModel::DelayModel(std::size_t n, des::Rng& rng, const Params& params)
    : dists_(build_dists(params)) {
  classes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    classes_.push_back(
        static_cast<BandwidthClass>(rng.uniform_int(kNumBandwidthClasses)));
  }
}

DelayModel::DelayModel(std::vector<BandwidthClass> classes,
                       const Params& params)
    : classes_(std::move(classes)), dists_(build_dists(params)) {
  if (classes_.empty())
    throw std::invalid_argument("DelayModel: empty class assignment");
}

double DelayModel::sample_delay_s(NodeId from, NodeId to,
                                  des::Rng& rng) const {
  const BandwidthClass governing =
      slower_of(node_class(from), node_class(to));
  return dists_[static_cast<int>(governing)].sample(rng);
}

double DelayModel::mean_delay_s(NodeId from, NodeId to) const {
  return mean_one_way_delay_s(slower_of(node_class(from), node_class(to)));
}

}  // namespace dsf::net
