#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace dsf::net {

/// Access-link classes used by the paper's simulation (§4.2): each user is
/// equally likely to be connected through a 56K modem, a cable modem, or a
/// LAN.  The class determines both the benefit weight of a query answer
/// (the paper's `B`) and the mean one-way delay toward that user.
enum class BandwidthClass : std::uint8_t {
  kModem56K = 0,
  kCable = 1,
  kLan = 2,
};

inline constexpr int kNumBandwidthClasses = 3;

/// Nominal downstream capacity in kbit/s; used as the benefit weight `B`.
constexpr double bandwidth_kbps(BandwidthClass c) noexcept {
  constexpr std::array<double, kNumBandwidthClasses> kKbps{56.0, 1500.0,
                                                           10000.0};
  return kKbps[static_cast<int>(c)];
}

/// Mean one-way delay (seconds) of a path whose *slower* endpoint has class
/// `c` (paper §4.2: 300 ms / 150 ms / 70 ms).
constexpr double mean_one_way_delay_s(BandwidthClass c) noexcept {
  constexpr std::array<double, kNumBandwidthClasses> kDelay{0.300, 0.150,
                                                            0.070};
  return kDelay[static_cast<int>(c)];
}

/// The slower of two endpoint classes governs the path delay.
constexpr BandwidthClass slower_of(BandwidthClass a, BandwidthClass b) noexcept {
  return static_cast<int>(a) < static_cast<int>(b) ? a : b;
}

constexpr std::string_view to_string(BandwidthClass c) noexcept {
  constexpr std::array<std::string_view, kNumBandwidthClasses> kNames{
      "56K-modem", "cable", "LAN"};
  return kNames[static_cast<int>(c)];
}

}  // namespace dsf::net
