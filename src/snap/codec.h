#pragma once

// Shared (de)serializers for the container types that appear in scenario
// snapshot sections.  Conventions:
//
//  - unordered containers are sorted by key at write time, so identical
//    state always produces identical bytes (the save-twice test);
//  - restore targets are freshly constructed objects with the original
//    geometry — helpers replay content, constructors supply shape;
//  - metrics restore exactly (raw Welford state, trailing zero buckets),
//    because the resume-equals-straight-through contract is byte-level.

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/stats_store.h"
#include "metrics/time_series.h"
#include "net/bloom.h"
#include "snap/snapshot.h"

namespace dsf::snap {

inline void put_summary(Writer::Out& out, const metrics::Summary& s) {
  const metrics::Summary::Raw r = s.raw();
  out.u64(r.n);
  out.f64(r.mean);
  out.f64(r.m2);
  out.f64(r.min);
  out.f64(r.max);
}

inline void get_summary(Reader::In& in, metrics::Summary& s) {
  metrics::Summary::Raw r;
  r.n = in.u64();
  r.mean = in.f64();
  r.m2 = in.f64();
  r.min = in.f64();
  r.max = in.f64();
  s.restore(r);
}

inline void put_time_series(Writer::Out& out, const metrics::TimeSeries& t) {
  out.u64(t.buckets().size());
  for (std::uint64_t b : t.buckets()) out.u64(b);
}

inline void get_time_series(Reader::In& in, metrics::TimeSeries& t) {
  std::vector<std::uint64_t> buckets(static_cast<std::size_t>(in.u64()));
  for (std::uint64_t& b : buckets) b = in.u64();
  t.restore(std::move(buckets));
}

inline void put_histogram(Writer::Out& out, const metrics::Histogram& h) {
  out.u64(h.bins().size());
  for (std::uint64_t b : h.bins()) out.u64(b);
  out.u64(h.count());
  out.u64(h.underflow());
  out.u64(h.overflow());
}

inline void get_histogram(Reader::In& in, metrics::Histogram& h) {
  std::vector<std::uint64_t> bins(static_cast<std::size_t>(in.u64()));
  for (std::uint64_t& b : bins) b = in.u64();
  const std::uint64_t count = in.u64();
  const std::uint64_t underflow = in.u64();
  const std::uint64_t overflow = in.u64();
  try {
    h.restore(std::move(bins), count, underflow, overflow);
  } catch (const std::invalid_argument& e) {
    throw SnapshotError(e.what());
  }
}

/// Benefit entries sorted by peer id.  Restore replays through add();
/// iteration-order consumers (plan_update, top_k) apply total-order sorts
/// with id tie-breaks, so the rebuilt map's layout is behavior-neutral.
inline void put_stats_store(Writer::Out& out, const core::StatsStore& s) {
  std::vector<std::pair<net::NodeId, double>> entries(s.entries().begin(),
                                                      s.entries().end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out.u64(entries.size());
  for (const auto& [peer, benefit] : entries) {
    out.u32(peer);
    out.f64(benefit);
  }
}

inline void get_stats_store(Reader::In& in, core::StatsStore& s) {
  s.clear();
  const std::uint64_t n = in.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const net::NodeId peer = in.u32();
    s.add(peer, in.f64());
  }
}

/// LRU cache content in recency order (MRU first, matching order()).
template <typename Cache>
void put_lru(Writer::Out& out, const Cache& c) {
  out.u64(c.order().size());
  for (const auto& key : c.order()) out.u64(key);
}

/// Restore by inserting LRU-to-MRU into a fresh same-capacity cache: the
/// saved population never exceeds capacity, so no insert evicts, and the
/// final recency order equals the saved one.
template <typename Cache>
void get_lru(Reader::In& in, Cache& c) {
  std::vector<std::uint64_t> keys(static_cast<std::size_t>(in.u64()));
  for (std::uint64_t& k : keys) k = in.u64();
  for (std::size_t i = keys.size(); i-- > 0;) c.insert(keys[i]);
}

inline void put_bloom(Writer::Out& out, const net::BloomFilter& f) {
  out.u64(f.words().size());
  for (std::uint64_t w : f.words()) out.u64(w);
}

inline void get_bloom(Reader::In& in, net::BloomFilter& f) {
  std::vector<std::uint64_t> words(static_cast<std::size_t>(in.u64()));
  for (std::uint64_t& w : words) w = in.u64();
  try {
    f.restore_words(words);
  } catch (const std::invalid_argument& e) {
    throw SnapshotError(e.what());
  }
}

}  // namespace dsf::snap
