#pragma once

// Versioned, checksummed binary snapshot container (DESIGN.md §1.9).
//
// A snapshot is a flat file: an 8-byte magic, a format version, and a
// sequence of independently CRC-protected sections.  Sections carry the
// mutable simulation state only — catalogs, profiles, holdings and
// anything else the scenario constructor derives deterministically from
// its config are *reconstructed*, never serialized, which keeps the
// format small and forward-portable across representation changes.
//
// Fail-closed contract: Reader validates the entire file — magic,
// version, section framing against the file size, and every section's
// CRC — in its constructor, before the engine applies a single byte of
// state.  Any defect throws snap::SnapshotError; a truncated download or
// a flipped bit can therefore never leave a half-restored simulation.
// Unknown versions are rejected outright (no forward parsing).
//
// Encoding: little-endian fixed-width integers; doubles as their IEEE-754
// bit pattern.  Writers emit sections in a fixed order and sort any
// unordered-container contents, so identical state always produces
// byte-identical files (the save-twice test pins this).

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace dsf::snap {

/// Typed failure of any snapshot operation: malformed or corrupt file,
/// configuration mismatch, unsnapshottable state.  dsf_sim maps it to
/// exit code 5.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what)
      : std::runtime_error("snapshot: " + what) {}
};

/// "DSFSNAP\0" little-endian.
inline constexpr std::uint64_t kMagic = 0x0050414E53465344ULL;
inline constexpr std::uint32_t kVersion = 1;

enum class SectionId : std::uint32_t {
  kIdentity = 1,    ///< scenario name, population, seed
  kEngineCore = 2,  ///< clock, RNG lanes, ledger, fault + sampling state
  kOverlay = 3,     ///< compact neighbor table (raw per-node lists)
  kEvents = 4,      ///< pending events as (time, kind, payload) records
  kDomain = 5,      ///< scenario-owned state (caches, stats, results)
};

/// CRC-32 (IEEE 802.3 polynomial, reflected).
std::uint32_t crc32(const std::uint8_t* data, std::size_t n) noexcept;

/// Builds a snapshot in memory section by section, then writes it out.
class Writer {
 public:
  /// One section's payload under construction.
  class Out {
   public:
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u32(std::uint32_t v) {
      for (int i = 0; i < 4; ++i)
        buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void u64(std::uint64_t v) {
      for (int i = 0; i < 8; ++i)
        buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void f64(double v) {
      std::uint64_t b;
      std::memcpy(&b, &v, sizeof b);
      u64(b);
    }
    void str(const std::string& s) {
      u64(s.size());
      buf_.insert(buf_.end(), s.begin(), s.end());
    }

   private:
    friend class Writer;
    std::vector<std::uint8_t> buf_;
  };

  /// Starts a new section; returned reference stays valid until the next
  /// section() call.  Sections are written in call order.
  Out& section(SectionId id) {
    sections_.emplace_back(id, Out{});
    return sections_.back().second;
  }

  /// Serializes magic + version + all sections (id, length, CRC, payload)
  /// to `path`.  Throws SnapshotError on any I/O failure.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::pair<SectionId, Out>> sections_;
};

/// Reads and fully validates a snapshot file; section payloads are then
/// consumed through bounds-checked cursors.
class Reader {
 public:
  /// Loads `path` and validates magic, version, framing and every
  /// section CRC.  Throws SnapshotError on any defect.
  explicit Reader(const std::string& path);

  /// Bounds-checked cursor over one section's payload.
  class In {
   public:
    std::uint8_t u8() {
      need(1);
      return data_[pos_++];
    }
    std::uint32_t u32() {
      need(4);
      std::uint32_t v = 0;
      for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
      return v;
    }
    std::uint64_t u64() {
      need(8);
      std::uint64_t v = 0;
      for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
      return v;
    }
    double f64() {
      const std::uint64_t b = u64();
      double v;
      std::memcpy(&v, &b, sizeof v);
      return v;
    }
    std::string str() {
      const std::uint64_t n = u64();
      need(n);
      std::string s(reinterpret_cast<const char*>(data_ + pos_),
                    static_cast<std::size_t>(n));
      pos_ += static_cast<std::size_t>(n);
      return s;
    }
    std::size_t remaining() const noexcept { return size_ - pos_; }

   private:
    friend class Reader;
    In(const std::uint8_t* data, std::size_t size)
        : data_(data), size_(size) {}
    void need(std::uint64_t n) const {
      if (n > size_ - pos_)
        throw SnapshotError("section payload shorter than its contents");
    }
    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
  };

  bool has_section(SectionId id) const noexcept;

  /// Cursor over section `id`'s payload; throws SnapshotError if absent.
  In section(SectionId id) const;

  std::uint32_t version() const noexcept { return version_; }

 private:
  struct Section {
    SectionId id;
    std::size_t offset;  ///< payload offset into file_
    std::size_t length;
  };
  std::vector<std::uint8_t> file_;
  std::vector<Section> sections_;
  std::uint32_t version_ = 0;
};

}  // namespace dsf::snap
