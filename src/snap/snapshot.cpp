#include "snap/snapshot.h"

#include <array>
#include <cstdio>

namespace dsf::snap {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}

// Fixed-size framing around each section payload.
constexpr std::size_t kHeaderBytes = 8 + 4;          // magic + version
constexpr std::size_t kSectionFrameBytes = 4 + 8 + 4;  // id + length + crc

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t read_u32(const std::uint8_t* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t read_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i)
    c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void Writer::write_file(const std::string& path) const {
  std::vector<std::uint8_t> out;
  std::size_t total = kHeaderBytes;
  for (const auto& [id, sec] : sections_)
    total += kSectionFrameBytes + sec.buf_.size();
  out.reserve(total);

  put_u64(out, kMagic);
  put_u32(out, kVersion);
  for (const auto& [id, sec] : sections_) {
    put_u32(out, static_cast<std::uint32_t>(id));
    put_u64(out, sec.buf_.size());
    put_u32(out, crc32(sec.buf_.data(), sec.buf_.size()));
    out.insert(out.end(), sec.buf_.begin(), sec.buf_.end());
  }

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr)
    throw SnapshotError("cannot open '" + path + "' for writing");
  const std::size_t written = std::fwrite(out.data(), 1, out.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != out.size() || !closed)
    throw SnapshotError("short write to '" + path + "'");
}

Reader::Reader(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw SnapshotError("cannot open '" + path + "'");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    throw SnapshotError("cannot stat '" + path + "'");
  }
  file_.resize(static_cast<std::size_t>(size));
  const std::size_t got = std::fread(file_.data(), 1, file_.size(), f);
  std::fclose(f);
  if (got != file_.size()) throw SnapshotError("short read from '" + path + "'");

  // Validate everything up front — header, framing, every CRC — so callers
  // can apply state without risk of hitting corruption halfway through.
  if (file_.size() < kHeaderBytes)
    throw SnapshotError("file too small to hold a snapshot header");
  if (read_u64(file_.data()) != kMagic)
    throw SnapshotError("bad magic: not a snapshot file");
  version_ = read_u32(file_.data() + 8);
  if (version_ != kVersion)
    throw SnapshotError("unsupported snapshot version " +
                        std::to_string(version_) + " (expected " +
                        std::to_string(kVersion) + ")");

  std::size_t pos = kHeaderBytes;
  while (pos < file_.size()) {
    if (file_.size() - pos < kSectionFrameBytes)
      throw SnapshotError("truncated section header");
    const std::uint32_t id = read_u32(file_.data() + pos);
    const std::uint64_t len = read_u64(file_.data() + pos + 4);
    const std::uint32_t crc = read_u32(file_.data() + pos + 12);
    pos += kSectionFrameBytes;
    if (len > file_.size() - pos)
      throw SnapshotError("section payload extends past end of file");
    const std::size_t n = static_cast<std::size_t>(len);
    if (crc32(file_.data() + pos, n) != crc)
      throw SnapshotError("CRC mismatch in section " + std::to_string(id));
    for (const Section& s : sections_)
      if (s.id == static_cast<SectionId>(id))
        throw SnapshotError("duplicate section " + std::to_string(id));
    sections_.push_back({static_cast<SectionId>(id), pos, n});
    pos += n;
  }
}

bool Reader::has_section(SectionId id) const noexcept {
  for (const Section& s : sections_)
    if (s.id == id) return true;
  return false;
}

Reader::In Reader::section(SectionId id) const {
  for (const Section& s : sections_)
    if (s.id == id) return In(file_.data() + s.offset, s.length);
  throw SnapshotError("missing section " +
                      std::to_string(static_cast<std::uint32_t>(id)));
}

}  // namespace dsf::snap
