#pragma once

#include <cstdint>
#include <vector>

#include "core/benefit.h"
#include "core/relations.h"
#include "core/stats_store.h"
#include "core/update.h"
#include "des/distributions.h"
#include "des/rng.h"
#include "des/simulator.h"
#include "metrics/time_series.h"
#include "net/message.h"
#include "sim/engine.h"
#include "webcache/lru_cache.h"

namespace dsf::olap {

using ChunkId = std::uint32_t;

/// PeerOlap-like distributed caching of OLAP results (§2): a query
/// decomposes into chunks; chunks missing from the local cache are
/// requested from peers (extensive search — a query keeps propagating even
/// after partial answers, up to the hop limit) and, failing that, computed
/// at the data warehouse, whose per-chunk processing time dominates every
/// other cost.  Benefit is therefore processing time saved (§3.4), and
/// relations are asymmetric: a big underutilized peer can serve many
/// smaller ones without consuming their resources.
struct OlapConfig {
  std::uint32_t num_peers = 48;
  std::uint32_t num_chunks = 48'000;  ///< divides evenly into regions
  std::uint32_t num_regions = 12;     ///< interest regions of the cube
  double region_share = 0.7;          ///< queries inside own region
  double zipf_theta = 0.8;            ///< chunk popularity within a region
  std::uint32_t query_span = 8;       ///< chunks per query
  std::uint32_t cache_capacity = 800;
  std::uint32_t num_neighbors = 3;
  int max_hops = 2;
  double mean_interquery_s = 10.0;
  double warehouse_s_per_chunk = 2.0;  ///< processing cost at the warehouse
  double peer_s_per_chunk = 0.05;      ///< transfer cost from a peer
  bool dynamic = true;
  double update_period_s = 900.0;
  double sim_hours = 6.0;
  double warmup_hours = 1.0;
  std::uint64_t seed = 11;
};

struct OlapResult {
  std::uint64_t queries = 0;          ///< post-warmup
  std::uint64_t chunks_requested = 0;
  std::uint64_t chunks_local = 0;
  std::uint64_t chunks_from_peers = 0;
  std::uint64_t chunks_from_warehouse = 0;
  metrics::Summary response_time_s;   ///< per query
  net::MessageStats traffic;

  double peer_hit_rate() const {
    const std::uint64_t remote = chunks_from_peers + chunks_from_warehouse;
    return remote ? static_cast<double>(chunks_from_peers) /
                        static_cast<double>(remote)
                  : 0.0;
  }
};

class OlapSim : public sim::OverlayEngine {
 public:
  explicit OlapSim(const OlapConfig& config);

  OlapResult run();

 protected:
  /// Open-loop injection: serves one external OLAP query at peer `p`
  /// through the same chunk-decomposition/extensive-search/warehouse path
  /// as closed-loop queries (caches warm, dynamic statistics fed,
  /// span-visible) without touching the closed-loop OlapResult counters.
  /// `item` anchors the chunk span (clamped into its region), or
  /// load::kAnyItem to draw from `p`'s region mix on the load lane.  Every
  /// query is answered (the warehouse always computes missing chunks);
  /// hit means at least one chunk came from a peer cache.
  load::Served serve_injected_query(net::NodeId p,
                                    std::uint64_t item) override;

  /// Snapshot hooks: per-peer caches and benefit statistics plus the result
  /// accumulators.  Regions and the RNG replay come from the constructor.
  void save_domain(snap::Writer::Out& out) const override;
  void load_domain(snap::Reader::In& in) override;
  void restore_keyed_event(double t, std::uint32_t kind, std::uint64_t a,
                           std::uint64_t b) override;

 private:
  /// Keyed event kinds (snapshot pending-event records).
  static constexpr std::uint32_t kOlapQuery = kKeyedUserBase + 0;  ///< a = p

  struct Peer {
    webcache::LruCache<ChunkId> cache;
    core::StatsStore stats;
    std::uint32_t region = 0;
    explicit Peer(std::size_t capacity) : cache(capacity) {}
  };

  /// Validates the config and builds the engine parameterization.
  static sim::EngineConfig make_engine_config(const OlapConfig& config);

  void issue_query(net::NodeId p);
  /// Draws one query template on `r`: `query_span` consecutive chunks
  /// anchored at a popular chunk of an interest region.
  ChunkId draw_query_base(net::NodeId p, des::Rng& r);
  /// The service path shared by closed-loop queries and open-loop
  /// injection: per-chunk local touch, extensive search, warehouse
  /// fallback.  Returns the total response time; sets *peer_served when at
  /// least one chunk came from a peer cache.  `record` gates the
  /// OlapResult counters (false for injected queries).
  double serve_chunks(net::NodeId p, ChunkId base, bool record,
                      bool* peer_served);
  void update_neighbors(net::NodeId p);

  /// Shard-local accumulator during parallel windows, `result_` otherwise.
  OlapResult& res() noexcept {
    const std::uint32_t s = des::ShardedSimulator::current_shard();
    return (!shard_results_.empty() && s != des::kNoShard)
               ? shard_results_[s]
               : result_;
  }

  OlapConfig config_;
  std::vector<Peer> peers_;
  des::Zipf chunk_zipf_;
  des::Exponential interquery_;
  core::ProcessingTimeSaved benefit_;
  OlapResult result_;
  std::vector<OlapResult> shard_results_;  ///< parallel runs only
};

/// Folds shard-local metrics into `into` (canonical shard-order merge).
void merge_results(OlapResult& into, const OlapResult& shard);

}  // namespace dsf::olap
