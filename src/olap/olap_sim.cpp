#include "olap/olap_sim.h"

#include <algorithm>

#include "snap/codec.h"

namespace dsf::olap {

sim::EngineConfig OlapSim::make_engine_config(const OlapConfig& config) {
  sim::require_positive("olap", "num_peers", config.num_peers);
  sim::require_positive("olap", "num_neighbors", config.num_neighbors);
  sim::require_positive("olap", "cache_capacity", config.cache_capacity);
  sim::require_divides("olap", "num_chunks", config.num_chunks, "num_regions",
                       config.num_regions);
  sim::validate_or_throw(
      config.query_span > 0 &&
          config.query_span <= config.num_chunks / config.num_regions,
      "olap", "query_span must fit inside one region");
  sim::EngineConfig ec;
  ec.name = "olap";
  ec.num_nodes = config.num_peers;
  ec.seed = config.seed;
  ec.rng_layout = sim::RngLayout::kCompact;
  ec.relation = core::RelationKind::kAsymmetric;
  ec.out_capacity = config.num_neighbors;
  ec.in_capacity = config.num_peers;
  ec.sim_hours = config.sim_hours;
  ec.warmup_hours = config.warmup_hours;
  return ec;
}

OlapSim::OlapSim(const OlapConfig& config)
    : sim::OverlayEngine(make_engine_config(config)),
      config_(config),
      chunk_zipf_(config.num_chunks / config.num_regions, config.zipf_theta),
      interquery_(config.mean_interquery_s) {
  peers_.reserve(config.num_peers);
  for (std::uint32_t p = 0; p < config.num_peers; ++p) {
    peers_.emplace_back(config.cache_capacity);
    peers_.back().region = p % config.num_regions;
  }
  for (net::NodeId p = 0; p < config.num_peers; ++p) {
    fill_random_neighbors(
        p, config.num_neighbors, default_bootstrap_attempts(),
        [this] {
          return static_cast<net::NodeId>(rng().uniform_int(config_.num_peers));
        },
        [] {});
  }
}

ChunkId OlapSim::draw_query_base(net::NodeId p, des::Rng& r) {
  // Query template: `query_span` consecutive chunks anchored at a popular
  // chunk of an interest region (OLAP queries hit contiguous cube slices).
  const std::uint32_t chunks_per_region =
      config_.num_chunks / config_.num_regions;
  std::uint32_t region = peers_[p].region;
  if (!r.bernoulli(config_.region_share))
    region = static_cast<std::uint32_t>(r.uniform_int(config_.num_regions));
  const auto anchor_rank = static_cast<std::uint32_t>(chunk_zipf_.sample(r));
  return region * chunks_per_region +
         std::min(anchor_rank, chunks_per_region - config_.query_span);
}

double OlapSim::serve_chunks(net::NodeId p, ChunkId base, bool record,
                             bool* peer_served) {
  Peer& peer = peers_[p];
  core::VisitStamp& stamps = visit_stamps();
  // Inactive fault layer => default verdicts, zero draws: one transmit
  // binding serves both regimes byte-identically.
  const auto tx = search_transmit();
  if (peer_served) *peer_served = false;
  const bool report = record;
  double response = 0.0;
  for (std::uint32_t i = 0; i < config_.query_span; ++i) {
    const ChunkId chunk = base + i;
    if (report) ++res().chunks_requested;
    bool local;
    {
      const auto guard = peer_section(p);
      local = peer.cache.touch(chunk);
    }
    if (local) {
      if (report) ++res().chunks_local;
      continue;
    }

    // Extensive search (§3.2): the chunk request keeps propagating up to
    // the hop limit; the closest holder (in hops, then delay) serves it.
    const std::uint32_t span = obs_search_begin(p, config_.max_hops, chunk);
    tx.begin(config_.max_hops);
    stamps.begin_search();
    stamps.mark(p);
    struct Frontier {
      net::NodeId node;
      net::NodeId sender;
      int hop;
    };
    std::vector<Frontier> queue{{p, net::kInvalidNode, 0}};
    net::NodeId holder = net::kInvalidNode;
    int holder_hop = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const auto cur = queue[head];
      if (holder != net::kInvalidNode && cur.hop + 1 > holder_hop) break;
      for (net::NodeId q : overlay_.out_neighbors(cur.node)) {
        if (q == cur.sender) continue;
        count(net::MessageType::kQuery);
        const auto tq = tx(net::MessageType::kQuery, cur.node, q,
                           config_.max_hops - cur.hop);
        if (tq.duplicate) count(net::MessageType::kQuery);
        if (!tq.deliver) continue;  // lost: q stays reachable via others
        if (!stamps.mark(q)) continue;
        const int hop = cur.hop + 1;
        bool has_chunk = false;
        // Free-riders (adversary layer) never serve from their cache; the
        // role test is a single always-false branch when the layer is off.
        if (!is_free_rider(q)) {
          const auto guard = peer_section(q);
          has_chunk = peers_[q].cache.contains(chunk);
        }
        if (has_chunk && holder == net::kInvalidNode) {
          count(net::MessageType::kQueryReply);
          const auto tr = tx(net::MessageType::kQueryReply, q, p, -1);
          if (tr.duplicate) count(net::MessageType::kQueryReply);
          if (tr.deliver) {
            holder = q;
            holder_hop = hop;
          }
        }
        if (hop < config_.max_hops) queue.push_back({q, cur.node, hop});
      }
    }

    if (holder != net::kInvalidNode) {
      const double cost =
          config_.peer_s_per_chunk +
          2.0 * sample_delay_s(p, holder) * static_cast<double>(holder_hop);
      obs_search_end(span, p, 1, holder_hop, cost);
      response += cost;
      if (peer_served) *peer_served = true;
      if (report) ++res().chunks_from_peers;
      if (config_.dynamic) {
        core::ResultInfo info;
        info.responder = holder;
        info.processing_time_saved_s = config_.warehouse_s_per_chunk - cost;
        peer.stats.add(holder,
                       benefit_.benefit(info) * adversary_benefit_weight(holder));
      }
    } else {
      obs_search_end(span, p, 0, -1, -1.0);
      response += config_.warehouse_s_per_chunk;
      if (report) ++res().chunks_from_warehouse;
    }
    {
      const auto guard = peer_section(p);
      peer.cache.insert(chunk);
    }
  }
  if (report) res().response_time_s.add(response);
  return response;
}

void OlapSim::issue_query(net::NodeId p) {
  if (node_dead(p)) return;  // a crashed peer stops querying for good
  {
    // Searches only read the overlay, so shards may search concurrently;
    // per-peer caches get stripe guards inside serve_chunks because
    // holders mutate their own LRU recency while remote searches probe
    // it.  Serially every guard is a no-op.
    const Section lock = shared_section();
    const ChunkId base = draw_query_base(p, rng());
    capture_query_arrival(p, base);
    if (reporting()) ++res().queries;
    serve_chunks(p, base, reporting(), nullptr);
  }

  schedule_keyed_self(p, interquery_.sample(rng()), kOlapQuery, p, 0,
                      [this, p] { issue_query(p); });
}

load::Served OlapSim::serve_injected_query(net::NodeId p, std::uint64_t item) {
  // Open-loop runs are serial, so the sections are no-ops; taking them
  // anyway keeps the path identical to closed-loop service.
  const Section lock = shared_section();
  ChunkId base;
  if (item == load::kAnyItem) {
    base = draw_query_base(p, load_lane());
  } else {
    // Anchor the span at the requested chunk, clamped so it fits inside
    // the chunk's region (the same geometry closed-loop templates obey).
    const std::uint32_t chunks_per_region =
        config_.num_chunks / config_.num_regions;
    const auto chunk = static_cast<ChunkId>(item % config_.num_chunks);
    const std::uint32_t region = chunk / chunks_per_region;
    const std::uint32_t offset = chunk % chunks_per_region;
    base = region * chunks_per_region +
           std::min(offset, chunks_per_region - config_.query_span);
  }
  load::Served served;
  served.latency_s = serve_chunks(p, base, /*record=*/false, &served.hit);
  return served;
}

void OlapSim::update_neighbors(net::NodeId p) {
  if (node_dead(p)) return;  // crashed: no more reorganizations
  const auto plan = core::plan_update(
      peers_[p].stats, overlay_.out_neighbors(p),
      adversary_degree_bound(p, config_.num_neighbors),
      [p](net::NodeId n) { return n != p; });
  for (net::NodeId x : plan.evictions) {
    overlay_.unlink(p, x);
    count(net::MessageType::kEviction);
  }
  for (net::NodeId v : plan.additions) {
    overlay_.link(p, v);
    count(net::MessageType::kInvitation);
  }
}

OlapResult OlapSim::run() {
  if (parallel()) shard_results_.assign(shards(), OlapResult{});
  // A resumed run takes its pending query events from the snapshot and must
  // not draw the initial delays, but it still registers the per-peer update
  // periodics in the same order so indices line up with the file.
  for (net::NodeId p = 0; p < config_.num_peers; ++p) {
    if (!resumed())
      schedule_keyed_self(p, interquery_.sample(rng()), kOlapQuery, p, 0,
                          [this, p] { issue_query(p); });
    if (config_.dynamic) {
      if (resumed()) {
        register_periodic(config_.update_period_s,
                          [this, p] { update_neighbors(p); });
      } else {
        // Reorganizations mutate the overlay, so schedule_every keeps them
        // exclusive (and on the coordinator shard) in parallel runs.
        schedule_every(rng().uniform(0.0, config_.update_period_s),
                       config_.update_period_s,
                       [this, p] { update_neighbors(p); });
      }
    }
  }
  run_until_horizon();
  for (const OlapResult& r : shard_results_) merge_results(result_, r);
  shard_results_.clear();
  result_.traffic = traffic();
  return result_;
}

void merge_results(OlapResult& into, const OlapResult& shard) {
  into.queries += shard.queries;
  into.chunks_requested += shard.chunks_requested;
  into.chunks_local += shard.chunks_local;
  into.chunks_from_peers += shard.chunks_from_peers;
  into.chunks_from_warehouse += shard.chunks_from_warehouse;
  into.response_time_s += shard.response_time_s;
}

void OlapSim::save_domain(snap::Writer::Out& out) const {
  for (const Peer& peer : peers_) {
    snap::put_lru(out, peer.cache);
    snap::put_stats_store(out, peer.stats);
  }
  // traffic is assigned at the end of run() from the restored ledger.
  out.u64(result_.queries);
  out.u64(result_.chunks_requested);
  out.u64(result_.chunks_local);
  out.u64(result_.chunks_from_peers);
  out.u64(result_.chunks_from_warehouse);
  snap::put_summary(out, result_.response_time_s);
}

void OlapSim::load_domain(snap::Reader::In& in) {
  for (Peer& peer : peers_) {
    snap::get_lru(in, peer.cache);
    snap::get_stats_store(in, peer.stats);
  }
  result_.queries = in.u64();
  result_.chunks_requested = in.u64();
  result_.chunks_local = in.u64();
  result_.chunks_from_peers = in.u64();
  result_.chunks_from_warehouse = in.u64();
  snap::get_summary(in, result_.response_time_s);
}

void OlapSim::restore_keyed_event(double t, std::uint32_t kind,
                                  std::uint64_t a, std::uint64_t b) {
  if (kind == kOlapQuery) {
    if (a >= peers_.size())
      throw snap::SnapshotError("olap: query event peer out of range");
    const auto p = static_cast<net::NodeId>(a);
    schedule_keyed_at(t, kOlapQuery, a, 0, [this, p] { issue_query(p); });
    return;
  }
  OverlayEngine::restore_keyed_event(t, kind, a, b);
}

}  // namespace dsf::olap
