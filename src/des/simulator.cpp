#include "des/simulator.h"

namespace dsf::des {

std::uint64_t Simulator::run_until(SimTime end_time) {
  std::uint64_t count = 0;
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.next_time() > end_time) break;
    auto [t, cb] = queue_.pop();
    now_ = t;
    cb();
    ++executed_;
    ++count;
  }
  // Advance the clock to the horizon so back-to-back run_until calls see a
  // monotone clock even when the queue drained early.
  if (now_ < end_time && end_time < std::numeric_limits<SimTime>::infinity())
    now_ = end_time;
  return count;
}

std::uint64_t Simulator::run_window(SimTime end_time, bool inclusive) {
  std::uint64_t count = 0;
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    const SimTime next = queue_.next_time();
    if (inclusive ? next > end_time : next >= end_time) break;
    auto [t, cb] = queue_.pop();
    now_ = t;
    cb();
    ++executed_;
    ++count;
  }
  // Every shard leaves the barrier at exactly the window end, so the next
  // window's minimum is computed over aligned clocks.
  if (now_ < end_time) now_ = end_time;
  return count;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [t, cb] = queue_.pop();
  now_ = t;
  cb();
  ++executed_;
  return true;
}

}  // namespace dsf::des
