#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace dsf::des {

/// Number of worker threads to use for a sweep of `jobs` independent
/// simulations: one per job, bounded by the hardware concurrency.
inline unsigned sweep_threads(std::size_t jobs) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  return static_cast<unsigned>(std::min<std::size_t>(jobs, hw));
}

/// Runs `fn` over every input on a small thread pool and returns the
/// results in input order.  Simulations in this project are value-typed
/// and share no mutable state, so a parameter sweep (the hop-limit and
/// threshold sweeps of Figure 3) is embarrassingly parallel; results are
/// written by index, so the output is identical for any thread count —
/// determinism is never traded for speed.
///
/// `fn` must be callable as `R fn(const T&)` and safe to invoke
/// concurrently on distinct inputs.
template <typename T, typename Fn>
auto parallel_map(const std::vector<T>& inputs, Fn&& fn,
                  unsigned threads = 0)
    -> std::vector<decltype(fn(inputs.front()))> {
  using R = decltype(fn(inputs.front()));
  std::vector<R> results(inputs.size());
  if (inputs.empty()) return results;
  if (threads == 0) threads = sweep_threads(inputs.size());

  if (threads <= 1) {
    for (std::size_t i = 0; i < inputs.size(); ++i) results[i] = fn(inputs[i]);
    return results;
  }

  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= inputs.size()) return;
      results[i] = fn(inputs[i]);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  return results;
}

}  // namespace dsf::des
