#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <limits>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace dsf::des {

/// Explicit "pick the thread count for me" sentinel for parallel_map /
/// parallel_map_reduce.  An explicit `threads == 0` is rejected with
/// std::invalid_argument instead of being silently reinterpreted: a
/// caller that computed 0 (an empty config field, a failed parse) almost
/// certainly did not mean "auto", and 0 workers would otherwise hang the
/// sweep (no worker ever claims an index).
inline constexpr unsigned kAutoThreads = std::numeric_limits<unsigned>::max();

/// Number of worker threads to use for a sweep of `jobs` independent
/// simulations: one per job, bounded by the hardware concurrency.
/// hardware_concurrency() is allowed to return 0 ("unknown"); that is
/// clamped to 1 so the sweep always makes progress.
inline unsigned sweep_threads(std::size_t jobs) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  return static_cast<unsigned>(std::min<std::size_t>(jobs, hw));
}

/// Runs `fn` over every input on a small thread pool and returns the
/// results in input order.  Simulations in this project are value-typed
/// and share no mutable state, so a parameter sweep (the hop-limit and
/// threshold sweeps of Figure 3) is embarrassingly parallel; results are
/// written by index, so the output is identical for any thread count —
/// determinism is never traded for speed.
///
/// `fn` must be callable as `R fn(const T&)` and safe to invoke
/// concurrently on distinct inputs.  `R` needs no default constructor:
/// results land in per-index optional slots and are moved out at the end.
///
/// If `fn` throws, the first exception (in completion order) is captured
/// on its worker, every worker is joined, and the exception is rethrown
/// on the calling thread — it never escapes a std::thread and terminates
/// the process.  Workers that have not yet claimed an index stop early;
/// in-flight jobs run to completion before the join.
template <typename T, typename Fn>
auto parallel_map(const std::vector<T>& inputs, Fn&& fn,
                  unsigned threads = kAutoThreads)
    -> std::vector<decltype(fn(inputs.front()))> {
  using R = decltype(fn(inputs.front()));
  if (threads == 0)
    throw std::invalid_argument(
        "parallel_map: threads must be >= 1 (pass kAutoThreads to size "
        "from hardware_concurrency)");
  std::vector<R> results;
  if (inputs.empty()) return results;
  if (threads == kAutoThreads) threads = sweep_threads(inputs.size());
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, inputs.size()));

  if (threads <= 1) {
    results.reserve(inputs.size());
    for (const T& input : inputs) results.push_back(fn(input));
    return results;
  }

  std::vector<std::optional<R>> slots(inputs.size());
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto worker = [&] {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= inputs.size()) return;
      try {
        slots[i].emplace(fn(inputs[i]));
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);

  results.reserve(slots.size());
  for (auto& slot : slots) results.push_back(std::move(*slot));
  return results;
}

/// Runs `fn` over every input in parallel and folds the per-shard results
/// into `init` on the CALLING thread, strictly in input order.
///
/// The ordering is the whole point: folding shards as workers finish would
/// make merged floating-point accumulators (Welford summaries, histogram
/// quantile interpolation inputs) depend on the thread schedule.  Because
/// parallel_map already lands results in per-index slots, the fold below
/// sees shard i before shard i+1 regardless of which worker produced them
/// or when — the merged accumulator is byte-identical for any thread
/// count, including the sequential threads<=1 path.
///
/// `merge` is called as `merge(acc, shard)` and may move from `shard`.
template <typename T, typename Fn, typename Acc, typename MergeFn>
Acc parallel_map_reduce(const std::vector<T>& inputs, Fn&& fn, Acc init,
                        MergeFn&& merge, unsigned threads = kAutoThreads) {
  auto shards = parallel_map(inputs, std::forward<Fn>(fn), threads);
  for (auto& shard : shards) merge(init, shard);
  return init;
}

}  // namespace dsf::des
