#include "des/sharded.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace dsf::des {

namespace detail {
thread_local std::uint32_t tls_current_shard = kNoShard;
}  // namespace detail

ShardedSimulator::ShardedSimulator(std::uint32_t shards, SimTime window_s)
    : num_shards_(shards), window_s_(window_s) {
  if (shards == 0)
    throw std::invalid_argument("ShardedSimulator: shards must be >= 1");
  if (!(window_s > 0.0))
    throw std::invalid_argument("ShardedSimulator: window_s must be > 0");
  shards_.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s)
    shards_.emplace_back(std::make_unique<Simulator>());
  mail_.resize(static_cast<std::size_t>(shards) * shards);
}

ShardedSimulator::~ShardedSimulator() {
  if (!workers_.empty()) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      quit_ = true;
    }
    cv_start_.notify_all();
    for (auto& w : workers_) w.join();
  }
}

std::size_t ShardedSimulator::pending() const noexcept {
  std::size_t sum = 0;
  for (const auto& s : shards_) sum += s->pending();
  return sum;
}

std::uint64_t ShardedSimulator::executed() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& s : shards_) sum += s->executed();
  return sum;
}

void ShardedSimulator::post(std::uint32_t dst, SimTime t, Callback cb) {
  const std::uint32_t src = detail::tls_current_shard;
  if (src == kNoShard || src == dst) {
    // Outside a window (single-threaded) or a shard posting to itself:
    // insert directly; schedule_at clamps past times to the shard clock.
    Simulator& sim = *shards_[dst];
    if (t < sim.now()) clamps_.fetch_add(1, std::memory_order_relaxed);
    sim.schedule_at(t, std::move(cb));
    return;
  }
  mail_[static_cast<std::size_t>(src) * num_shards_ + dst].push_back(
      Post{t, std::move(cb)});
}

void ShardedSimulator::run_shard_window(std::uint32_t s, SimTime wend,
                                        bool inclusive) {
  detail::tls_current_shard = s;
  shards_[s]->run_window(wend, inclusive);
  detail::tls_current_shard = kNoShard;
}

void ShardedSimulator::worker_loop(std::uint32_t s) {
  std::uint64_t my_epoch = 0;
  for (;;) {
    SimTime wend;
    bool inclusive;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return quit_ || epoch_ != my_epoch; });
      if (quit_) return;
      my_epoch = epoch_;
      wend = window_end_;
      inclusive = window_inclusive_;
    }
    run_shard_window(s, wend, inclusive);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (++done_ == num_shards_ - 1) cv_done_.notify_one();
    }
  }
}

void ShardedSimulator::start_workers() {
  if (!workers_.empty() || num_shards_ <= 1) return;
  workers_.reserve(num_shards_ - 1);
  for (std::uint32_t s = 1; s < num_shards_; ++s)
    workers_.emplace_back([this, s] { worker_loop(s); });
}

void ShardedSimulator::drain_mailbox() {
  // Canonical order: for each destination, rows from source shard 0..N-1,
  // FIFO within a row.  Sequence numbers — and therefore same-time
  // tie-breaking on the destination queue — depend only on this order,
  // never on worker timing.
  for (std::uint32_t dst = 0; dst < num_shards_; ++dst) {
    Simulator& sim = *shards_[dst];
    const SimTime now = sim.now();
    for (std::uint32_t src = 0; src < num_shards_; ++src) {
      auto& row = mail_[static_cast<std::size_t>(src) * num_shards_ + dst];
      if (row.empty()) continue;
      for (const Post& p : row)
        if (p.t < now) clamps_.fetch_add(1, std::memory_order_relaxed);
      sim.queue().schedule_batch(row.size(), [&](std::size_t i) {
        Post& p = row[i];
        return std::pair<SimTime, Callback>(p.t < now ? now : p.t,
                                            std::move(p.cb));
      });
      row.clear();
    }
  }
}

std::uint64_t ShardedSimulator::run_until(SimTime end) {
  start_workers();
  std::uint64_t before = 0;
  for (const auto& s : shards_) before += s->executed();

  for (;;) {
    SimTime tmin = std::numeric_limits<SimTime>::infinity();
    for (const auto& s : shards_)
      if (s->pending() > 0) tmin = std::min(tmin, s->queue().next_time());
    if (tmin > end) break;  // nothing left inside the horizon

    const SimTime wend = std::min(tmin + window_s_, end);
    // The final window is closed ([wbase, end]) to preserve run_until's
    // events-exactly-at-the-horizon-execute semantics; interior windows
    // are half-open so a boundary event runs in the window it opens.
    const bool inclusive = wend >= end;

    if (num_shards_ > 1) {
      {
        const std::lock_guard<std::mutex> lock(mu_);
        window_end_ = wend;
        window_inclusive_ = inclusive;
        done_ = 0;
        ++epoch_;
      }
      cv_start_.notify_all();
      run_shard_window(0, wend, inclusive);
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_done_.wait(lock, [&] { return done_ == num_shards_ - 1; });
      }
    } else {
      run_shard_window(0, wend, inclusive);
    }
    ++windows_;
    drain_mailbox();
    if (barrier_hook_) barrier_hook_(wend);
    if (inclusive) break;
  }

  // Mirror Simulator::run_until: clocks advance to the horizon even when
  // the queues drained (or never held anything) before it.
  if (end < std::numeric_limits<SimTime>::infinity())
    for (auto& s : shards_)
      if (s->now() < end) s->run_window(end, true);

  std::uint64_t after = 0;
  for (const auto& s : shards_) after += s->executed();
  return after - before;
}

}  // namespace dsf::des
