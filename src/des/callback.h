#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace dsf::des {

/// Move-only type-erased `void()` callable with a 48-byte small-buffer
/// optimization — the event queue's callback type.
///
/// Every scheduled event used to pay a `std::function` whose inline buffer
/// (16 bytes on libstdc++) is too small for the simulators' typical
/// captures, so steady-state scheduling heap-allocated on the hot path.
/// `Callback` stores any capture up to kInlineBytes in place; only larger
/// closures fall back to the heap.  Three further properties matter for
/// the queue:
///
///  - move-only: a callback is dispatched exactly once, so copyability
///    buys nothing and would force captured state to be copyable;
///  - trivially-relocatable fast path: closures that are trivially
///    copyable (the common `[this, u]` shape) move via a plain memcpy of
///    the buffer, with no indirect call;
///  - empty state is a null vtable pointer, so `cancel()` releasing a
///    callback stores one word.
class Callback {
 public:
  /// Captures up to this many bytes are stored inline (no allocation).
  static constexpr std::size_t kInlineBytes = 48;

  /// Inline storage alignment.  8 rather than max_align_t: pointer/
  /// integer/double captures — every closure the simulators schedule —
  /// need no more, and the tighter padding is what lets the event
  /// queue's slab entry (callback + sequence number) span exactly one
  /// cache line.  Over-aligned callables fall back to the heap.
  static constexpr std::size_t kBufferAlign = 8;

  /// True when a callable of type F (after decay) is stored inline.
  /// Exposed so tests — and scenario authors sizing their captures — can
  /// static_assert that a hot-path closure never allocates.
  template <typename F>
  static constexpr bool stores_inline() noexcept {
    using Fn = std::remove_cvref_t<F>;
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= kBufferAlign &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  Callback() noexcept = default;
  Callback(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (stores_inline<F>()) {
      // Trivially-copyable contents relocate as a memcpy of the *whole*
      // buffer — a compile-time-constant size the compiler lowers to a
      // few vector moves, where a runtime-size copy is an out-of-line
      // call on the hottest path in the simulator.  Zero the buffer
      // first so the tail bytes that copy reads are initialized.
      if constexpr (std::is_trivially_copyable_v<Fn>)
        std::memset(buf_, 0, kInlineBytes);
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &kInlineVTable<Fn>;
    } else {
      std::memset(buf_, 0, kInlineBytes);
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = &kHeapVTable<Fn>;
    }
  }

  Callback(Callback&& o) noexcept : vt_(o.vt_) {
    if (vt_ != nullptr) {
      relocate_from(o);
      o.vt_ = nullptr;
    }
  }

  Callback& operator=(Callback&& o) noexcept {
    if (this != &o) {
      reset();
      vt_ = o.vt_;
      if (vt_ != nullptr) {
        relocate_from(o);
        o.vt_ = nullptr;
      }
    }
    return *this;
  }

  Callback& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { reset(); }

  explicit operator bool() const noexcept { return vt_ != nullptr; }
  friend bool operator==(const Callback& c, std::nullptr_t) noexcept {
    return c.vt_ == nullptr;
  }

  /// Invokes the stored callable.  Precondition: non-empty.
  void operator()() {
    assert(vt_ != nullptr && "invoking an empty Callback");
    vt_->invoke(buf_);
  }

 private:
  struct VTable {
    void (*invoke)(void* self);
    /// Move-constructs into raw `to` and destroys `from`; null for
    /// trivially-relocatable contents, which move as a fixed-size memcpy
    /// of the whole buffer with no indirect call.
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void* self) noexcept;
  };

  template <typename Fn>
  static void invoke_inline(void* self) {
    (*std::launder(reinterpret_cast<Fn*>(self)))();
  }
  template <typename Fn>
  static void relocate_inline(void* from, void* to) noexcept {
    Fn* f = std::launder(reinterpret_cast<Fn*>(from));
    ::new (to) Fn(std::move(*f));
    f->~Fn();
  }
  template <typename Fn>
  static void destroy_inline(void* self) noexcept {
    std::launder(reinterpret_cast<Fn*>(self))->~Fn();
  }

  template <typename Fn>
  static void invoke_heap(void* self) {
    (**std::launder(reinterpret_cast<Fn**>(self)))();
  }
  template <typename Fn>
  static void destroy_heap(void* self) noexcept {
    delete *std::launder(reinterpret_cast<Fn**>(self));
  }

  template <typename Fn>
  static constexpr VTable kInlineVTable{
      &invoke_inline<Fn>,
      std::is_trivially_copyable_v<Fn> ? nullptr : &relocate_inline<Fn>,
      &destroy_inline<Fn>};

  // The heap case relocates by moving one pointer: always trivial.
  template <typename Fn>
  static constexpr VTable kHeapVTable{&invoke_heap<Fn>, nullptr,
                                      &destroy_heap<Fn>};

  void relocate_from(Callback& o) noexcept {
    if (vt_->relocate != nullptr) {
      vt_->relocate(o.buf_, buf_);
    } else {
      std::memcpy(buf_, o.buf_, kInlineBytes);
    }
  }

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(kBufferAlign) unsigned char buf_[kInlineBytes];
};

}  // namespace dsf::des
