#include "des/rng.h"

namespace dsf::des {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_seed(std::uint64_t seed, std::uint64_t stream) noexcept {
  std::uint64_t s = seed;
  std::uint64_t a = splitmix64(s);
  s ^= stream * 0xda942042e4dd58b5ULL;
  std::uint64_t b = splitmix64(s);
  return a ^ rotl(b, 23);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : s_) word = splitmix64(s);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t threshold = -n % n;
    while (l < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_int(span));
}

Rng Rng::split() noexcept {
  std::uint64_t s = next() ^ rotl(next(), 31);
  Rng child(0);
  for (auto& word : child.s_) word = splitmix64(s);
  return child;
}

}  // namespace dsf::des
