#include "des/event_queue.h"

#include <cassert>
#include <utility>

namespace dsf::des {

bool EventQueue::heap_less(std::uint32_t a, std::uint32_t b) const noexcept {
  const Entry& ea = entries_[a];
  const Entry& eb = entries_[b];
  if (ea.time != eb.time) return ea.time < eb.time;
  return ea.seq < eb.seq;
}

void EventQueue::sift_up(std::size_t i) noexcept {
  const std::uint32_t v = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!heap_less(v, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = v;
}

void EventQueue::sift_down(std::size_t i) noexcept {
  const std::size_t n = heap_.size();
  const std::uint32_t v = heap_[i];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && heap_less(heap_[child + 1], heap_[child])) ++child;
    if (!heap_less(heap_[child], v)) break;
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = v;
}

EventId EventQueue::schedule(SimTime t, Callback cb) {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(entries_.size());
    entries_.emplace_back();
  }
  Entry& e = entries_[slot];
  e.time = t;
  e.seq = next_seq_++;
  e.cb = std::move(cb);
  e.cancelled = false;

  heap_.push_back(slot);
  sift_up(heap_.size() - 1);
  ++live_;
  return EventId{slot, e.seq};
}

bool EventQueue::cancel(EventId id) {
  if (id.slot >= entries_.size()) return false;
  Entry& e = entries_[id.slot];
  if (e.cancelled || e.seq != id.seq) return false;
  e.cancelled = true;
  e.cb = nullptr;  // release captured state promptly
  --live_;
  return true;
}

void EventQueue::drop_dead_top() {
  while (!heap_.empty() && entries_[heap_.front()].cancelled) {
    const std::uint32_t slot = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    free_.push_back(slot);
  }
}

SimTime EventQueue::next_time() {
  drop_dead_top();
  assert(!heap_.empty() && "next_time() on empty queue");
  return entries_[heap_.front()].time;
}

std::pair<SimTime, EventQueue::Callback> EventQueue::pop() {
  drop_dead_top();
  assert(!heap_.empty() && "pop() on empty queue");
  const std::uint32_t slot = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);

  Entry& e = entries_[slot];
  std::pair<SimTime, Callback> result{e.time, std::move(e.cb)};
  e.cancelled = true;
  e.cb = nullptr;
  free_.push_back(slot);
  --live_;
  return result;
}

}  // namespace dsf::des
