#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace dsf::des {

/// Deterministic, splittable pseudo-random number generator.
///
/// The generator is xoshiro256** seeded through SplitMix64, which gives
/// high-quality 64-bit output, a tiny state, and cheap independent streams:
/// every simulation entity (workload generator, session model, delay model,
/// per-node tie breaking) derives its own stream via `split()`, so adding or
/// reordering consumers never perturbs the random sequence seen by the
/// others.  This is what makes the experiment harness reproducible run to
/// run and insensitive to refactoring.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// UniformRandomBitGenerator interface so `Rng` plugs into <random>.
  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform double in [0, 1).  Uses the top 53 bits.
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n).  `n` must be > 0.  Uses Lemire rejection to
  /// avoid modulo bias.
  std::uint64_t uniform_int(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with success probability `p`.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Derives an independent child stream.  The child's state is a hash of
  /// this generator's next outputs, so parent and child sequences do not
  /// overlap in practice.
  Rng split() noexcept;

  /// The full 256-bit state, for checkpointing.  Restoring the returned
  /// words with set_state() resumes the stream at exactly this position.
  std::array<std::uint64_t, 4> state() const noexcept {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    s_[0] = s[0];
    s_[1] = s[1];
    s_[2] = s[2];
    s_[3] = s[3];
  }

 private:
  std::uint64_t s_[4];
};

/// SplitMix64 step — used for seeding and hashing small integers into
/// well-distributed 64-bit values (e.g. building per-entity seeds).
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Convenience: hash a (seed, stream) pair into one 64-bit seed.
std::uint64_t hash_seed(std::uint64_t seed, std::uint64_t stream) noexcept;

}  // namespace dsf::des
