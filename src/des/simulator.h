#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>

#include "des/event_queue.h"

namespace dsf::des {

/// Single-threaded discrete-event simulator: a clock plus an event queue.
///
/// All model code runs inside event callbacks; the simulator guarantees
/// that callbacks execute in non-decreasing time order and that `now()` is
/// exact inside a callback.  Determinism follows from the deterministic
/// queue ordering and the splittable `Rng` streams — a fixed seed replays
/// the exact same trajectory.
class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time in seconds.
  SimTime now() const noexcept { return now_; }

  /// Schedules `cb` after `delay` seconds.  Negative delays are clamped
  /// to "immediately": time never flows backwards.
  EventId schedule_in(SimTime delay, EventQueue::Callback cb) {
    return queue_.schedule(delay > 0 ? now_ + delay : now_, std::move(cb));
  }

  /// Schedules `cb` at absolute time `t`; a `t` in the past is clamped to
  /// now() so the clock stays monotone.
  EventId schedule_at(SimTime t, EventQueue::Callback cb) {
    return queue_.schedule(t > now_ ? t : now_, std::move(cb));
  }

  /// Batched fan-out relative to now(): schedules `n` events where event
  /// `i` fires after `delays[i]` seconds and runs `make(i)`.  One now()
  /// read and one queue reservation cover the whole batch; ordering is
  /// identical to n schedule_in calls in index order (same sequence
  /// numbers, same clamping of negative delays).
  template <typename Make>
  void schedule_in_batch(const SimTime* delays, std::size_t n, Make&& make) {
    const SimTime now = now_;
    queue_.schedule_batch(n, [&](std::size_t i) {
      const SimTime d = delays[i];
      return std::pair<SimTime, EventQueue::Callback>(d > 0 ? now + d : now,
                                                      make(i));
    });
  }

  /// Batched absolute-time variant: `gen(i)` returns the (time, callback)
  /// pair for event `i`; past times are clamped to now() exactly as in
  /// schedule_at.
  template <typename Gen>
  void schedule_at_batch(std::size_t n, Gen&& gen) {
    queue_.schedule_batch(n, [&](std::size_t i) {
      auto p = gen(i);
      if (p.first < now_) p.first = now_;
      return p;
    });
  }

  /// Pre-sizes the event queue; see EventQueue::reserve.
  void reserve(std::size_t events) { queue_.reserve(events); }

  /// Cancels a pending event; see EventQueue::cancel.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs events until the queue drains or the clock passes `end_time`.
  /// Events scheduled exactly at `end_time` are executed.  Returns the
  /// number of events executed by this call.
  std::uint64_t run_until(SimTime end_time);

  /// Windowed variant for conservative parallel execution: runs events
  /// with time strictly below `end_time` (or `<= end_time` when
  /// `inclusive`, matching run_until's closed-horizon semantics for the
  /// final window), then advances the clock to exactly `end_time` so
  /// every shard leaves a window barrier with the same clock.  Returns
  /// the number of events executed by this call.
  std::uint64_t run_window(SimTime end_time, bool inclusive);

  /// Runs until the queue drains.
  std::uint64_t run() {
    return run_until(std::numeric_limits<SimTime>::infinity());
  }

  /// Executes at most one event; returns false if none is pending.
  bool step();

  /// Requests that run_until return before popping the next event.
  void stop() noexcept { stop_requested_ = true; }

  /// Number of pending (live) events.
  std::size_t pending() const noexcept { return queue_.size(); }

  /// Total events executed over the simulator's lifetime.
  std::uint64_t executed() const noexcept { return executed_; }

  /// Checkpoint restore: sets the clock and the lifetime executed count
  /// as saved at the snapshot boundary.  Only valid before any events
  /// are scheduled into the fresh queue — the restore path re-schedules
  /// pending events (all strictly later than `now`) after this call, so
  /// schedule_at never sees a past time.
  void restore_clock(SimTime now, std::uint64_t executed) {
    if (pending() != 0 || now_ != 0.0)
      throw std::logic_error("restore_clock: simulator already in use");
    now_ = now;
    executed_ = executed;
  }

  /// Direct access for tests and advanced scheduling patterns.
  EventQueue& queue() noexcept { return queue_; }

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace dsf::des
