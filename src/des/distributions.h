#pragma once

#include <cstddef>
#include <vector>

#include "des/rng.h"

namespace dsf::des {

/// Exponential distribution with the given mean (NOT rate).  The paper's
/// session and inter-query times are all specified by their means, so the
/// constructor takes the mean directly to avoid 1/λ mistakes at call sites.
class Exponential {
 public:
  explicit Exponential(double mean);

  double mean() const noexcept { return mean_; }
  double sample(Rng& rng) const noexcept;

 private:
  double mean_;
};

/// Gaussian distribution truncated to [lo, hi] by rejection sampling.
/// Used for library sizes (μ=200, σ=50, truncated to stay positive) and
/// pairwise one-way delays (μ per bandwidth class, σ=20 ms, truncated to
/// [10 ms, 2μ] as documented in DESIGN.md).
class TruncatedGaussian {
 public:
  TruncatedGaussian(double mean, double stddev, double lo, double hi);

  double mean() const noexcept { return mean_; }
  double stddev() const noexcept { return stddev_; }
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }

  double sample(Rng& rng) const noexcept;

 private:
  double mean_;
  double stddev_;
  double lo_;
  double hi_;
};

/// Zipf distribution over ranks 1..n with exponent theta:
///   P(rank = k) ∝ 1 / k^theta.
///
/// Sampling is O(log n) by binary search over the precomputed CDF; the
/// constructor is O(n).  Ranks are returned 0-based (0 = most popular) so
/// they can index arrays directly.
class Zipf {
 public:
  Zipf(std::size_t n, double theta);

  std::size_t size() const noexcept { return cdf_.size(); }
  double theta() const noexcept { return theta_; }

  /// Probability of 0-based rank `k`.
  double pmf(std::size_t k) const;

  /// Samples a 0-based rank.
  std::size_t sample(Rng& rng) const noexcept;

 private:
  double theta_;
  std::vector<double> cdf_;
};

/// Pareto (power-law) distribution with scale x_m and shape alpha:
///   P(X > x) = (x_m / x)^alpha for x >= x_m.
/// Used as the heavy-tailed alternative to exponential session durations
/// (measured P2P session lengths are closer to Pareto than exponential);
/// finite mean requires alpha > 1.
class Pareto {
 public:
  Pareto(double scale, double shape);

  double scale() const noexcept { return scale_; }
  double shape() const noexcept { return shape_; }

  /// Mean = alpha·x_m / (alpha − 1); infinite for alpha <= 1.
  double mean() const noexcept;

  double sample(Rng& rng) const noexcept;

  /// Builds a Pareto with the given mean and shape (solves for the scale).
  static Pareto from_mean(double mean, double shape);

 private:
  double scale_;
  double shape_;
};

/// Log-normal distribution parameterized by the underlying normal's mu and
/// sigma.  Offered for workload ablations (transfer sizes, think times).
class LogNormal {
 public:
  LogNormal(double mu, double sigma);

  double mean() const noexcept;
  double sample(Rng& rng) const noexcept;

 private:
  double mu_;
  double sigma_;
};

/// Weighted discrete distribution with O(1) sampling (Vose alias method).
/// Used where the same categorical distribution is sampled millions of
/// times (e.g. drawing songs from a category's popularity profile).
class AliasTable {
 public:
  /// Builds from unnormalized non-negative weights; at least one weight
  /// must be positive.
  explicit AliasTable(const std::vector<double>& weights);

  std::size_t size() const noexcept { return prob_.size(); }
  std::size_t sample(Rng& rng) const noexcept;

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

/// Returns `k` distinct values sampled uniformly from [0, n) without
/// replacement (Floyd's algorithm, O(k) expected).  Result is unsorted.
std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                    std::size_t k, Rng& rng);

}  // namespace dsf::des
