#include "des/distributions.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_set>

namespace dsf::des {

Exponential::Exponential(double mean) : mean_(mean) {
  if (!(mean > 0.0)) throw std::invalid_argument("Exponential: mean must be > 0");
}

double Exponential::sample(Rng& rng) const noexcept {
  // -mean * ln(1 - U); 1-U avoids log(0) since uniform() < 1.
  return -mean_ * std::log1p(-rng.uniform());
}

TruncatedGaussian::TruncatedGaussian(double mean, double stddev, double lo,
                                     double hi)
    : mean_(mean), stddev_(stddev), lo_(lo), hi_(hi) {
  if (!(stddev > 0.0))
    throw std::invalid_argument("TruncatedGaussian: stddev must be > 0");
  if (!(lo < hi))
    throw std::invalid_argument("TruncatedGaussian: lo must be < hi");
}

double TruncatedGaussian::sample(Rng& rng) const noexcept {
  // Box–Muller with rejection.  The truncation windows used in this project
  // cover several standard deviations around the mean, so rejection is rare
  // and the expected cost is ~1 normal draw per sample.
  for (;;) {
    const double u1 = 1.0 - rng.uniform();  // (0, 1]
    const double u2 = rng.uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double z0 = r * std::cos(2.0 * M_PI * u2);
    const double z1 = r * std::sin(2.0 * M_PI * u2);
    const double x0 = mean_ + stddev_ * z0;
    if (x0 >= lo_ && x0 <= hi_) return x0;
    const double x1 = mean_ + stddev_ * z1;
    if (x1 >= lo_ && x1 <= hi_) return x1;
  }
}

Zipf::Zipf(std::size_t n, double theta) : theta_(theta) {
  if (n == 0) throw std::invalid_argument("Zipf: n must be > 0");
  if (theta < 0.0) throw std::invalid_argument("Zipf: theta must be >= 0");
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf_[k] = sum;
  }
  for (auto& c : cdf_) c /= sum;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

double Zipf::pmf(std::size_t k) const {
  if (k >= cdf_.size()) throw std::out_of_range("Zipf::pmf: rank out of range");
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

std::size_t Zipf::sample(Rng& rng) const noexcept {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

Pareto::Pareto(double scale, double shape) : scale_(scale), shape_(shape) {
  if (!(scale > 0.0)) throw std::invalid_argument("Pareto: scale must be > 0");
  if (!(shape > 0.0)) throw std::invalid_argument("Pareto: shape must be > 0");
}

double Pareto::mean() const noexcept {
  if (shape_ <= 1.0) return std::numeric_limits<double>::infinity();
  return shape_ * scale_ / (shape_ - 1.0);
}

double Pareto::sample(Rng& rng) const noexcept {
  // Inverse CDF: x = x_m / U^(1/alpha); 1-U avoids U == 0.
  return scale_ / std::pow(1.0 - rng.uniform(), 1.0 / shape_);
}

Pareto Pareto::from_mean(double mean, double shape) {
  if (!(shape > 1.0))
    throw std::invalid_argument("Pareto::from_mean: shape must be > 1");
  if (!(mean > 0.0))
    throw std::invalid_argument("Pareto::from_mean: mean must be > 0");
  return Pareto(mean * (shape - 1.0) / shape, shape);
}

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  if (!(sigma > 0.0))
    throw std::invalid_argument("LogNormal: sigma must be > 0");
}

double LogNormal::mean() const noexcept {
  return std::exp(mu_ + sigma_ * sigma_ / 2.0);
}

double LogNormal::sample(Rng& rng) const noexcept {
  const double u1 = 1.0 - rng.uniform();
  const double u2 = rng.uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return std::exp(mu_ + sigma_ * z);
}

AliasTable::AliasTable(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("AliasTable: empty weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("AliasTable: negative weight");
    total += w;
  }
  if (!(total > 0.0))
    throw std::invalid_argument("AliasTable: all weights are zero");

  prob_.resize(n);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i)
    scaled[i] = weights[i] * static_cast<double>(n) / total;

  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));

  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

std::size_t AliasTable::sample(Rng& rng) const noexcept {
  const std::size_t i = rng.uniform_int(prob_.size());
  return rng.uniform() < prob_[i] ? i : alias_[i];
}

std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                    std::size_t k, Rng& rng) {
  if (k > n)
    throw std::invalid_argument("sample_without_replacement: k > n");
  // Floyd's algorithm: O(k) expected inserts.
  std::unordered_set<std::size_t> chosen;
  chosen.reserve(k * 2);
  std::vector<std::size_t> result;
  result.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = rng.uniform_int(j + 1);
    if (chosen.insert(t).second) {
      result.push_back(t);
    } else {
      chosen.insert(j);
      result.push_back(j);
    }
  }
  return result;
}

}  // namespace dsf::des
