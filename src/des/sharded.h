#pragma once

// Conservative parallel DES: N independent Simulator instances (one event
// queue and clock per shard) advanced in bounded time windows by a pool of
// worker threads.  The window width is the minimum cross-shard messaging
// delay (the lookahead), so every event a shard executes inside a window
// can only influence *other* shards at or after the window's end — the
// classic conservative-synchronization argument, with the paper's own
// delay-model floor supplying the lookahead for free.
//
// Protocol per window:
//   1. the coordinator computes tmin = min over shards of next event time;
//      the window is [tmin, min(tmin + window, end));
//   2. all shards run their local events inside the window concurrently
//      (Simulator::run_window), buffering cross-shard messages into a
//      per-(source, destination) mailbox row — each row is written by
//      exactly one worker, so the mailbox needs no locks;
//   3. at the barrier the coordinator drains the mailbox in canonical
//      order (destination, then source shard 0..N-1, then FIFO within a
//      row) through the queue's schedule_batch bulk path, so mailbox
//      drain order — and with it every sequence number it assigns — is
//      independent of worker timing.
//
// A post whose delivery time falls below the receiving shard's clock
// (possible only when the configured window exceeds the true minimum
// delay) is clamped to the clock and counted in lookahead_clamps();
// the determinism contract in DESIGN.md §1.8 covers when that matters.
//
// Determinism: for a fixed shard count, the DES layer itself is
// deterministic — shard-local pop order is the sequential (time, seq)
// order and the mailbox drain is canonical.  What a *model* does with
// shared mutable state across shards is the model's contract, not ours.

#include <atomic>
#include <cstdint>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "des/simulator.h"

namespace dsf::des {

/// Sentinel for "this thread is not executing any shard's events".
inline constexpr std::uint32_t kNoShard = 0xffffffffu;

namespace detail {
/// Which shard the current thread is executing events for (kNoShard
/// outside a window).  Exposed so hot-path accessors can inline the read.
extern thread_local std::uint32_t tls_current_shard;
}  // namespace detail

class ShardedSimulator {
 public:
  /// `shards` >= 1; `window_s` > 0 is the conservative lookahead window.
  ShardedSimulator(std::uint32_t shards, SimTime window_s);
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  std::uint32_t shards() const noexcept { return num_shards_; }
  SimTime window_s() const noexcept { return window_s_; }

  Simulator& shard(std::uint32_t i) noexcept { return *shards_[i]; }
  const Simulator& shard(std::uint32_t i) const noexcept {
    return *shards_[i];
  }

  /// The shard whose events the calling thread is executing, or kNoShard
  /// (e.g. on the coordinator between windows, or before run_until).
  static std::uint32_t current_shard() noexcept {
    return detail::tls_current_shard;
  }

  /// Schedules `cb` at absolute time `t` on shard `dst`'s queue.  From
  /// within dst's own window this is a direct (immediate) insertion; from
  /// another shard's window the post is buffered in the mailbox and
  /// drained at the next barrier; outside any window (bootstrap, between
  /// runs) it is a direct single-threaded insertion.  Times below the
  /// destination clock are clamped and counted.
  void post(std::uint32_t dst, SimTime t, Callback cb);

  /// Installs a hook the coordinator invokes at every window barrier
  /// (after the mailbox drain) with the window's end time.  All workers
  /// are parked at that point, so the hook may read any shard state.
  void set_barrier_hook(std::function<void(SimTime)> hook) {
    barrier_hook_ = std::move(hook);
  }

  /// Runs all shards to `end` (inclusive, like Simulator::run_until) in
  /// lookahead windows.  Returns the number of events executed across all
  /// shards by this call.  Must be called from one thread at a time.
  std::uint64_t run_until(SimTime end);

  /// Cross-shard posts whose delivery time had to be clamped forward to
  /// the receiving shard's clock (lookahead violations).
  std::uint64_t lookahead_clamps() const noexcept {
    return clamps_.load(std::memory_order_relaxed);
  }
  /// Synchronization windows executed so far.
  std::uint64_t windows() const noexcept { return windows_; }
  /// Total pending events across all shards (coordinator-only: racy if
  /// called while a window is executing).
  std::size_t pending() const noexcept;
  /// Total events executed across all shards over the object's lifetime.
  std::uint64_t executed() const noexcept;

 private:
  struct Post {
    SimTime t;
    Callback cb;
  };

  void start_workers();
  void worker_loop(std::uint32_t s);
  void run_shard_window(std::uint32_t s, SimTime wend, bool inclusive);
  void drain_mailbox();

  std::uint32_t num_shards_;
  SimTime window_s_;
  std::vector<std::unique_ptr<Simulator>> shards_;
  /// mail_[src * num_shards_ + dst]: rows written only by the worker
  /// executing shard `src`, drained only by the coordinator at barriers.
  std::vector<std::vector<Post>> mail_;
  std::function<void(SimTime)> barrier_hook_;
  /// Atomic: the same-shard fast path of post() may clamp from a worker.
  std::atomic<std::uint64_t> clamps_{0};
  std::uint64_t windows_ = 0;

  // Worker pool (shards 1..N-1; shard 0 runs on the coordinator thread).
  // Generation-counter barrier: bumping `epoch_` under the mutex releases
  // every worker for one window; the last worker to finish signals done.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t epoch_ = 0;
  std::uint32_t done_ = 0;
  SimTime window_end_ = 0.0;
  bool window_inclusive_ = false;
  bool quit_ = false;
};

}  // namespace dsf::des
