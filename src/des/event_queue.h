#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace dsf::des {

/// Simulation time in seconds.
using SimTime = double;

/// Handle to a scheduled event, usable for cancellation.  A handle is a
/// (slot, generation) pair: slots are recycled, generations are not, so a
/// stale handle can never cancel a later event that happens to reuse the
/// same slot.
struct EventId {
  std::uint32_t slot = 0;
  std::uint64_t seq = 0;
  friend bool operator==(EventId a, EventId b) {
    return a.slot == b.slot && a.seq == b.seq;
  }
};

/// Min-heap of timestamped callbacks with stable FIFO ordering for equal
/// timestamps and O(1) lazy cancellation.
///
/// The queue is the hot core of the simulator: event records live in a slab
/// whose slots are recycled, the heap holds indices only, and cancellation
/// is lazy (a tombstone flag checked at pop) so cancelling a pending
/// timeout — which the Gnutella model does for every satisfied query —
/// costs O(1) instead of a heap rebuild.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;

  /// Schedules `cb` at absolute time `t`.  Events with equal `t` fire in
  /// insertion order.
  EventId schedule(SimTime t, Callback cb);

  /// Cancels a pending event.  Returns false if the event already fired,
  /// was already cancelled, or was never scheduled.
  bool cancel(EventId id);

  /// True if no live events remain.
  bool empty() const noexcept { return live_ == 0; }

  /// Timestamp of the next live event.  Precondition: !empty().
  SimTime next_time();

  /// Pops and returns the next live event.  Precondition: !empty().
  std::pair<SimTime, Callback> pop();

  /// Number of live (non-cancelled) events.
  std::size_t size() const noexcept { return live_; }

  /// Total events scheduled over the queue's lifetime.
  std::uint64_t total_scheduled() const noexcept { return next_seq_; }

 private:
  struct Entry {
    SimTime time = 0;
    std::uint64_t seq = 0;
    Callback cb;
    bool cancelled = true;
  };

  bool heap_less(std::uint32_t a, std::uint32_t b) const noexcept;
  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;
  void drop_dead_top();

  std::vector<Entry> entries_;       // slab of event records
  std::vector<std::uint32_t> heap_;  // heap of indices into entries_
  std::vector<std::uint32_t> free_;  // recycled slots in entries_
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace dsf::des
