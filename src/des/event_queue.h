#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "des/callback.h"

namespace dsf::des {

/// Simulation time in seconds.
using SimTime = double;

/// Handle to a scheduled event, usable for cancellation.  A handle is a
/// (slot, generation) pair: slots are recycled, generations are not, so a
/// stale handle can never cancel a later event that happens to reuse the
/// same slot.
struct EventId {
  std::uint32_t slot = 0;
  std::uint64_t seq = 0;
  friend bool operator==(EventId a, EventId b) {
    return a.slot == b.slot && a.seq == b.seq;
  }
};

/// Priority queue of timestamped callbacks with stable FIFO ordering for
/// equal timestamps and O(1) lazy cancellation.  Event times must be
/// finite.
///
/// The queue is the hot core of the simulator.  It is a two-level
/// structure tuned for the hold model the scenario simulators run in
/// (pop the minimum, schedule a replacement a bounded delay ahead):
///
///  - a *timing wheel* of uniform-width buckets covers the near future
///    [base, horizon).  Each bucket is a sorted run consumed through a
///    head cursor, so in steady state both schedule and pop are O(1) —
///    no per-operation log-factor and no pointer-chased cache misses;
///  - a 4-ary implicit min-heap holds the far future (t >= horizon) and
///    doubles as the whole queue below kWheelEnable events, where heap
///    ops are L1-resident anyway.  When the wheel laps, the heap prefix
///    below the new horizon is *filtered* into the wheel and the
///    remainder re-heapified in one O(heap) pass — events never pay a
///    per-element sift to migrate;
///  - the wheel geometry (bucket count, width) is retuned from the live
///    population and its time span whenever the population drifts out of
///    range, so skewed or shifting delay distributions degrade to a
///    rebuild, not to quadratic bucket scans;
///  - callbacks are des::Callback (48-byte small-buffer, move-only), so
///    typical closures are stored without touching the heap allocator;
///  - event records live in a recycled slab; wheel and heap nodes carry
///    the full ordering key (an order-preserving integer image of the
///    time, plus the sequence number) so comparisons never dereference
///    the slab;
///  - cancellation is lazy: a dense 1-bit-per-slot tombstone set checked
///    when a node surfaces.  Cancelling costs O(1); when tombstones
///    outnumber live events the structure is compacted, so cancel-heavy
///    workloads (every satisfied Gnutella query cancels its timeout)
///    stay amortized O(1) with bounded memory.
///
/// Pop order is the strict total order (time, seq); the split between
/// wheel and heap and all internal shapes are not observable, which is
/// what lets schedule_batch() insert a fan-out — and the wheel lap
/// migrate events in bulk — without changing any replayed trajectory.
class EventQueue {
 public:
  using Callback = des::Callback;

  EventQueue() = default;

  /// Schedules `cb` at absolute time `t` (finite).  Events with equal
  /// `t` fire in insertion order.
  EventId schedule(SimTime t, Callback cb) {
    assert(std::isfinite(t) && "event time must be finite");
    const std::uint64_t key = time_key(t);
    // Start the cold lines this insert will touch — the recycled slab
    // entry, its tombstone word, the target bucket — toward L1 now, so
    // at large populations their misses overlap instead of serializing.
    if (!free_.empty()) {
      const std::uint32_t s = free_.back();
      prefetch(&entries_[s]);
      prefetch(&dead_bits_[s >> 6]);
    }
    if (bucket_mask_ != 0 && key >= base_key_ && key < horizon_key_)
      prefetch(&buckets_[bucket_index(t)]);
    const std::uint32_t slot = acquire_slot(t, std::move(cb));
    const std::uint64_t seq = entries_[slot].seq;
    insert_node(HeapNode{key, seq, slot});
    ++live_;
    return EventId{slot, seq};
  }

  /// Bulk insertion for neighbor fan-out: schedules `n` events produced
  /// by `gen(i) -> std::pair<SimTime, Callback>` in index order, with one
  /// slab reservation for the whole batch.  Equivalent to n calls to
  /// schedule() — same sequence numbers, same pop order — minus the
  /// per-call growth checks; no handles are returned because fan-out
  /// deliveries are never cancelled individually.
  template <typename Gen>
  void schedule_batch(std::size_t n, Gen&& gen) {
    if (bucket_mask_ == 0) heap_.reserve(heap_.size() + n);
    if (free_.size() < n) entries_.reserve(entries_.size() + n - free_.size());
    for (std::size_t i = 0; i < n; ++i) {
      auto [t, cb] = gen(i);
      assert(std::isfinite(t) && "event time must be finite");
      const std::uint32_t slot = acquire_slot(t, std::move(cb));
      insert_node(HeapNode{time_key(t), entries_[slot].seq, slot});
      ++live_;
    }
  }

  /// Cancels a pending event.  Returns false if the event already fired,
  /// was already cancelled, or was never scheduled.
  bool cancel(EventId id) {
    if (id.slot >= entries_.size()) return false;
    Entry& e = entries_[id.slot];
    if (is_dead(id.slot) || e.seq != id.seq) return false;
    mark_dead(id.slot);
    e.cb = nullptr;  // release captured state promptly
    --live_;
    // Lazy deletion alone lets tombstones pile up until their timestamp
    // surfaces — a workload that cancels most of what it schedules would
    // grow the structure without bound.  Sweep when dead nodes outnumber
    // live ones: each sweep at least halves the structure, so cancels
    // stay amortized O(1).
    const std::size_t dead = wheel_count_ + heap_.size() - live_;
    if (dead > live_ && dead > 32) rebuild(nullptr);
    return true;
  }

  /// True if no live events remain.
  bool empty() const noexcept { return live_ == 0; }

  /// Timestamp of the next live event.  Precondition: !empty().
  SimTime next_time() {
    Bucket* b = settle_min();
    if (b != nullptr) return time_from_key(b->v[b->head].time_key);
    assert(!heap_.empty() && "next_time() on empty queue");
    return time_from_key(heap_.front().time_key);
  }

  /// Pops and returns the next live event.  Precondition: !empty().
  std::pair<SimTime, Callback> pop() {
    Bucket* b = settle_min();
    std::uint64_t key;
    std::uint32_t slot;
    if (b != nullptr) {
      key = b->v[b->head].time_key;
      slot = b->v[b->head].slot;
      ++b->head;
      --wheel_count_;
      if (b->head == b->v.size()) {
        b->v.clear();
        b->head = 0;
      } else {
        // Lookahead: the next event's slab entry is needed one pop from
        // now; fetching it during this event's dispatch hides the miss.
        prefetch(&entries_[b->v[b->head].slot]);
      }
    } else {
      assert(!heap_.empty() && "pop() on empty queue");
      key = heap_.front().time_key;
      slot = heap_.front().slot;
      // The slab entry is cold at large populations; start the line
      // toward L1 so the fetch overlaps the sift-down's own misses.
      prefetch(&entries_[slot]);
      pop_heap_root();
    }
    Entry& e = entries_[slot];
    std::pair<SimTime, Callback> result{time_from_key(key), std::move(e.cb)};
    mark_dead(slot);  // a stale handle must not cancel this fired event
    free_.push_back(slot);
    --live_;
    return result;
  }

  /// Number of live (non-cancelled) events.
  std::size_t size() const noexcept { return live_; }

  /// Visits every live event as (time, seq, id) in unspecified order —
  /// the checkpoint layer enumerates pending events through this and
  /// re-sorts by (time, seq) itself.  Cancelled/fired slots are skipped;
  /// callbacks are not exposed (they are reconstructed from a registry,
  /// never serialized).
  template <typename Fn>
  void for_each_live(Fn&& fn) const {
    if (bucket_mask_ != 0) {
      for (std::size_t i = 0; i <= bucket_mask_; ++i) {
        const Bucket& b = buckets_[i];
        for (std::size_t j = b.head; j < b.v.size(); ++j) {
          if (!is_dead(b.v[j].slot))
            fn(time_from_key(b.v[j].time_key), b.v[j].seq,
               EventId{b.v[j].slot, b.v[j].seq});
        }
      }
    }
    for (const HeapNode& node : heap_) {
      if (!is_dead(node.slot))
        fn(time_from_key(node.time_key), node.seq,
           EventId{node.slot, node.seq});
    }
  }

  /// Total events scheduled over the queue's lifetime.
  std::uint64_t total_scheduled() const noexcept { return next_seq_; }

  /// --- capacity policy ---------------------------------------------------
  /// Pre-sizes the slab for an expected standing population of `events` —
  /// the scenario primes call this with (nodes × pending events per node)
  /// so the warm-up ramp never pays vector growth.
  void reserve(std::size_t events) {
    entries_.reserve(events);
    if (bucket_mask_ == 0) heap_.reserve(events);
    free_.reserve(events);
    dead_bits_.reserve((events + 63) / 64);
  }

  /// Releases slack capacity after a population collapse (end of a sweep
  /// point, a drained horizon).  With no live events every structure is
  /// emptied outright — outstanding stale handles remain safely
  /// un-cancellable — otherwise capacity shrinks around the current
  /// contents.  Never called implicitly: steady-state scheduling must
  /// not oscillate between grow and shrink.
  void shrink_to_fit() {
    if (live_ == 0) {
      heap_.clear();
      entries_.clear();
      free_.clear();
      dead_bits_.clear();
      buckets_.clear();
      bucket_mask_ = 0;
      wheel_count_ = 0;
      cur_ = 0;
    }
    heap_.shrink_to_fit();
    entries_.shrink_to_fit();
    free_.shrink_to_fit();
    dead_bits_.shrink_to_fit();
    buckets_.shrink_to_fit();
    scratch_.clear();
    scratch_.shrink_to_fit();
  }

 private:
  /// One slab record: callback plus the generation that validates
  /// handles.  Exactly one cache line (56-byte callback + 8), so every
  /// schedule writes and every pop reads a single line.  The timestamp
  /// is not stored: nodes carry it as the order key, and time_from_key
  /// inverts that mapping exactly.
  struct Entry {
    Callback cb;
    std::uint64_t seq = 0;
  };
  static_assert(sizeof(Entry) <= 64, "slab entry must fit one cache line");

  /// Wheel/heap node carrying the complete ordering key; comparisons
  /// never dereference the slab.  Time is stored as its order-preserving
  /// integer bit pattern (see time_key) so node_less compiles to flag
  /// arithmetic and conditional moves instead of data-dependent branches
  /// — with random keys those branches are coin flips, and their
  /// mispredictions, not arithmetic, dominate comparison cost.
  struct HeapNode {
    std::uint64_t time_key;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  /// One wheel bucket: a run kept sorted ascending by (key, seq) and
  /// consumed through `head`.  Ascending order + a cursor (rather than
  /// descending + pop_back) makes the common insertions — monotone
  /// times, FIFO ties — plain appends.
  struct Bucket {
    std::vector<HeapNode> v;
    std::size_t head = 0;
  };

  /// Monotone map from double to uint64: for any two non-NaN times
  /// a < b  <=>  time_key(a) < time_key(b).  The sign-fold is the
  /// standard IEEE-754 total-order trick; adding +0.0 first collapses
  /// -0.0 onto +0.0 so the two stay tied (FIFO by seq) as they were
  /// under double comparison.
  static std::uint64_t time_key(SimTime t) noexcept {
    const std::uint64_t b = std::bit_cast<std::uint64_t>(t + 0.0);
    return b ^ ((b >> 63) != 0 ? ~std::uint64_t{0} : std::uint64_t{1} << 63);
  }

  /// Exact inverse of time_key (modulo the -0.0 -> +0.0 collapse, which
  /// is invisible to arithmetic).
  static SimTime time_from_key(std::uint64_t k) noexcept {
    const std::uint64_t b =
        (k >> 63) != 0 ? (k ^ (std::uint64_t{1} << 63)) : ~k;
    return std::bit_cast<SimTime>(b);
  }

  static bool key_less(std::uint64_t ka, std::uint64_t sa, std::uint64_t kb,
                       std::uint64_t sb) noexcept {
    // Bitwise, not short-circuit: keeps the comparison branch-free.
    return (ka < kb) | ((ka == kb) & (sa < sb));
  }

  static bool node_less(const HeapNode& a, const HeapNode& b) noexcept {
    return key_less(a.time_key, a.seq, b.time_key, b.seq);
  }

  /// Liveness sits in a dense side bitset rather than a flag in Entry:
  /// drop-dead checks touch one L1-resident word instead of faulting in
  /// a cold 80-byte slab entry just to read one bool.  A set bit covers
  /// both "cancelled" and "already fired" (freed slots stay marked until
  /// reuse), which is exactly the set a handle may not cancel.
  bool is_dead(std::uint32_t slot) const noexcept {
    return ((dead_bits_[slot >> 6] >> (slot & 63)) & 1u) != 0;
  }
  void mark_dead(std::uint32_t slot) noexcept {
    dead_bits_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
  }

  static void prefetch(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p);
#else
    (void)p;
#endif
  }

  std::uint32_t acquire_slot(SimTime t, Callback cb) {
    (void)t;
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      dead_bits_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
    } else {
      slot = static_cast<std::uint32_t>(entries_.size());
      entries_.emplace_back();
      if ((slot & 63) == 0) dead_bits_.push_back(0);
    }
    Entry& e = entries_[slot];
    e.seq = next_seq_++;
    e.cb = std::move(cb);
    return slot;
  }

  /// --- two-level routing -------------------------------------------------

  /// Wheel sizing: enabled once the heap holds kWheelEnable nodes,
  /// dropped again below kWheelMinLive (hysteresis so a population
  /// hovering at the boundary does not thrash rebuilds).
  static constexpr std::size_t kWheelEnable = 256;
  static constexpr std::size_t kWheelMinLive = 128;
  static constexpr std::size_t kMaxWheelBuckets = std::size_t{1} << 22;

  void insert_node(const HeapNode& node) {
    if (bucket_mask_ != 0) {
      if (node.time_key < horizon_key_) {
        if (node.time_key >= base_key_) {
          place_in_wheel(node);
          return;
        }
        // Before the wheel's base: only possible for times earlier than
        // anything live.  Rebase around it (rare — simulators never
        // schedule into the past).
        const SimTime t = time_from_key(node.time_key);
        rebuild(&t);
        if (bucket_mask_ != 0 && node.time_key < horizon_key_) {
          place_in_wheel(node);
          return;
        }
      }
      heap_.push_back(node);
      sift_up(heap_.size() - 1);
      return;
    }
    heap_.push_back(node);
    sift_up(heap_.size() - 1);
    if (heap_.size() >= kWheelEnable) rebuild(nullptr);
  }

  std::size_t bucket_index(SimTime t) const noexcept {
    const auto idx = static_cast<std::size_t>((t - base_) * inv_width_);
    return idx > bucket_mask_ ? bucket_mask_ : idx;  // FP rounding at edge
  }

  /// Precondition: base_key_ <= node.time_key < horizon_key_.
  void place_in_wheel(const HeapNode& node) {
    const std::size_t idx = bucket_index(time_from_key(node.time_key));
    Bucket& b = buckets_[idx];
    std::size_t pos = b.v.size();
    b.v.push_back(node);
    while (pos > b.head && node_less(node, b.v[pos - 1])) {
      b.v[pos] = b.v[pos - 1];
      --pos;
    }
    b.v[pos] = node;
    ++wheel_count_;
    if (idx < cur_) cur_ = idx;
  }

  /// Advances the scan to the bucket holding the global minimum and
  /// returns it, or nullptr when the minimum lives in the overflow heap
  /// (or the wheel is disabled).  Drops tombstones along the way.
  Bucket* settle_min() {
    // Loop condition re-read every lap: wrap() may retune through
    // rebuild(), and a rebuild that finds the population below
    // kWheelMinLive *disables* the wheel — the scan must then fall
    // through to heap mode instead of lapping empty buckets forever.
    while (bucket_mask_ != 0) {
      while (cur_ <= bucket_mask_) {
        Bucket& b = buckets_[cur_];
        while (b.head < b.v.size()) {
          if (!is_dead(b.v[b.head].slot)) return &b;
          free_.push_back(b.v[b.head].slot);
          ++b.head;
          --wheel_count_;
        }
        b.v.clear();
        b.head = 0;
        ++cur_;
      }
      drop_dead_top();
      if (heap_.empty()) return nullptr;  // nothing anywhere
      wrap();
    }
    drop_dead_top();
    return nullptr;
  }

  /// The wheel is exhausted and the heap is not: advance the window so
  /// the heap minimum becomes the first bucket, then migrate the heap
  /// prefix below the new horizon in one filter + heapify pass (no
  /// per-element sift).  Retunes the geometry first when the live
  /// population has drifted out of the wheel's sizing band.
  void wrap() {
    const std::size_t nb = bucket_mask_ + 1;
    if (live_ < kWheelMinLive || live_ > 2 * nb || nb > 8 * live_) {
      rebuild(nullptr);
      return;
    }
    base_ = time_from_key(heap_.front().time_key);
    base_key_ = time_key(base_);
    const double horizon = base_ + width_ * static_cast<double>(nb);
    horizon_key_ = time_key(horizon);
    cur_ = 0;
    std::size_t w = 0;
    for (const HeapNode& node : heap_) {
      if (is_dead(node.slot)) {
        free_.push_back(node.slot);
      } else if (node.time_key < horizon_key_) {
        place_in_wheel(node);
      } else {
        heap_[w++] = node;
      }
    }
    heap_.resize(w);
    heapify();
    // Almost everything still beyond the horizon means the width is
    // badly mistuned for the current span (the delay distribution
    // shifted); recompute it from scratch rather than lap in vain.
    if (wheel_count_ * 4 < live_) rebuild(nullptr);
  }

  /// Gathers every live node, drops tombstones, resizes the wheel from
  /// the live population and its span, and redistributes.  Also the
  /// tombstone compactor and the wheel on/off switch.  O(n log n) and
  /// rare: triggered by population drift, cancel pressure, or a
  /// past-of-base insert.
  void rebuild(const SimTime* include_t) {
    scratch_.clear();
    if (bucket_mask_ != 0) {
      for (std::size_t i = 0; i <= bucket_mask_; ++i) {
        Bucket& b = buckets_[i];
        for (std::size_t j = b.head; j < b.v.size(); ++j) {
          if (is_dead(b.v[j].slot)) {
            free_.push_back(b.v[j].slot);
          } else {
            scratch_.push_back(b.v[j]);
          }
        }
        b.v.clear();
        b.head = 0;
      }
    }
    for (const HeapNode& node : heap_) {
      if (is_dead(node.slot)) {
        free_.push_back(node.slot);
      } else {
        scratch_.push_back(node);
      }
    }
    heap_.clear();
    wheel_count_ = 0;
    cur_ = 0;

    const std::size_t n = scratch_.size();
    if (n < kWheelMinLive) {
      bucket_mask_ = 0;
      heap_.assign(scratch_.begin(), scratch_.end());
      heapify();
      return;
    }
    // Sort once: min/max fall out of the ends, and the distribution
    // below turns every bucket insertion into an append — O(n log n)
    // total, with no quadratic tie pile-ups.
    std::sort(scratch_.begin(), scratch_.end(), node_less);
    double tmin = time_from_key(scratch_.front().time_key);
    double tmax = time_from_key(scratch_.back().time_key);
    if (include_t != nullptr) {
      tmin = std::min(tmin, *include_t);
      tmax = std::max(tmax, *include_t);
    }
    const std::size_t nb =
        std::min(kMaxWheelBuckets, std::bit_ceil(n));
    const double span = tmax - tmin;
    // Twice the mean gap: the live span fills about half the window, so
    // a full lap's worth of future inserts lands in the wheel, not the
    // heap.  Degenerate spans (all events at one instant) get width 1 —
    // a single sorted bucket.
    double w = span > 0.0 ? 2.0 * span / static_cast<double>(n) : 1.0;
    double inv = 1.0 / w;
    if (!std::isfinite(w) || !std::isfinite(inv) || !(w > 0.0)) {
      w = 1.0;
      inv = 1.0;
    }
    width_ = w;
    inv_width_ = inv;
    base_ = tmin;
    base_key_ = time_key(tmin);
    const double horizon = base_ + width_ * static_cast<double>(nb);
    horizon_key_ = time_key(horizon);
    buckets_.resize(nb);
    bucket_mask_ = nb - 1;
    for (const HeapNode& node : scratch_) {
      if (node.time_key < horizon_key_) {
        place_in_wheel(node);
      } else {
        heap_.push_back(node);
      }
    }
    heapify();
  }

  /// --- 4-ary overflow heap ----------------------------------------------

  /// Heap arity.  4-ary rather than binary: half the tree depth means
  /// half the *serialized* cache misses on a descent (each level's
  /// address depends on the previous comparison), which is what bounds
  /// pop throughput once the far-future population outgrows L2.
  static constexpr std::size_t kArity = 4;

  void sift_up(std::size_t i) noexcept {
    const HeapNode v = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!node_less(v, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = v;
  }

  /// Index of the smallest child of `i`, or `n` when `i` is a leaf.
  /// Full-arity nodes take a pairwise tournament on register-resident
  /// keys: two independent compare chains merged once, all conditional
  /// moves — no data-dependent branches and no serial
  /// reload-through-index chain.
  std::size_t min_child(std::size_t i, std::size_t n) const noexcept {
    static_assert(kArity == 4, "tournament below assumes arity 4");
    const std::size_t first = kArity * i + 1;
    if (first + kArity <= n) {
      const HeapNode* c = &heap_[first];
      const std::uint64_t k0 = c[0].time_key, s0 = c[0].seq;
      const std::uint64_t k1 = c[1].time_key, s1 = c[1].seq;
      const std::uint64_t k2 = c[2].time_key, s2 = c[2].seq;
      const std::uint64_t k3 = c[3].time_key, s3 = c[3].seq;
      const bool b01 = key_less(k1, s1, k0, s0);
      const std::uint64_t k01 = b01 ? k1 : k0, s01 = b01 ? s1 : s0;
      const bool b23 = key_less(k3, s3, k2, s2);
      const std::uint64_t k23 = b23 ? k3 : k2, s23 = b23 ? s3 : s2;
      const std::size_t i01 = first + (b01 ? 1u : 0u);
      const std::size_t i23 = first + (b23 ? 3u : 2u);
      return key_less(k23, s23, k01, s01) ? i23 : i01;
    }
    if (first >= n) return n;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < n; ++c)
      best = node_less(heap_[c], heap_[best]) ? c : best;  // cmov, no branch
    return best;
  }

  /// Bottom-up sift-down (Wegener): promote the min-child chain all the
  /// way to a leaf without comparing against `v`, then float `v` back
  /// up.  The displaced node is the old bottom of the heap, so it almost
  /// always belongs near the leaves again — the float-up is O(1)
  /// expected, and the descent does one chain per level instead of the
  /// classic compare-then-swap pair.
  void sift_down(std::size_t i) noexcept {
    const std::size_t n = heap_.size();
    const HeapNode v = heap_[i];
    const std::size_t start = i;
    std::size_t child = min_child(i, n);
    while (child < n) {
      heap_[i] = heap_[child];
      i = child;
      child = min_child(i, n);
    }
    // Float v up from the leaf position, but never above `start`.
    while (i > start) {
      const std::size_t parent = (i - 1) / kArity;
      if (!node_less(v, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = v;
  }

  /// Floyd heap construction: O(n), order-independent.
  void heapify() noexcept {
    const std::size_t n = heap_.size();
    if (n > 1)
      for (std::size_t i = (n - 2) / kArity + 1; i-- > 0;) sift_down(i);
  }

  void pop_heap_root() noexcept {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }

  void drop_dead_top() {
    while (!heap_.empty() && is_dead(heap_.front().slot)) {
      free_.push_back(heap_.front().slot);
      pop_heap_root();
    }
  }

  std::vector<Entry> entries_;       // slab of event records
  std::vector<std::uint32_t> free_;  // recycled slots in entries_
  std::vector<std::uint64_t> dead_bits_;  // 1 bit/slot: cancelled or fired
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;

  // Timing wheel (near future).  bucket_mask_ == 0 means disabled.
  std::vector<Bucket> buckets_;
  std::size_t bucket_mask_ = 0;
  std::size_t cur_ = 0;          // scan position in buckets_
  std::size_t wheel_count_ = 0;  // nodes (live + dead) in the wheel
  double base_ = 0.0;            // time at the front edge of bucket 0
  double width_ = 0.0;           // seconds per bucket
  double inv_width_ = 0.0;
  std::uint64_t base_key_ = 0;
  std::uint64_t horizon_key_ = 0;

  // Overflow heap (far future; the whole queue when the wheel is off).
  std::vector<HeapNode> heap_;
  std::vector<HeapNode> scratch_;  // rebuild staging, kept to avoid allocs
};

}  // namespace dsf::des
