#include "workload/user_profile.h"
#include <stdexcept>

#include <algorithm>

namespace dsf::workload {

ProfileGenerator::ProfileGenerator(const Catalog& catalog,
                                   double user_zipf_theta)
    : catalog_(&catalog),
      category_zipf_(catalog.num_categories(), user_zipf_theta) {
  if (catalog.num_categories() < UserProfile::kNumSideCategories + 1)
    throw std::invalid_argument(
        "ProfileGenerator: need at least 6 categories for distinct side "
        "categories");
}

UserProfile ProfileGenerator::generate(des::Rng& rng) const {
  UserProfile p;
  p.favorite = static_cast<CategoryId>(category_zipf_.sample(rng));

  // Side categories: distinct, uniform over the other categories.  Sample
  // from [0, n-1) and shift past the favourite to keep it excluded.
  const std::uint32_t n = catalog_->num_categories();
  auto picks = des::sample_without_replacement(
      n - 1, UserProfile::kNumSideCategories, rng);
  for (std::size_t i = 0; i < picks.size(); ++i) {
    auto c = static_cast<CategoryId>(picks[i]);
    if (c >= p.favorite) ++c;
    p.side[i] = c;
  }
  return p;
}

std::vector<UserProfile> ProfileGenerator::generate_population(
    std::size_t n, des::Rng& rng) const {
  std::vector<UserProfile> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(generate(rng));
  return out;
}

}  // namespace dsf::workload
