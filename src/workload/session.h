#pragma once

#include <cstdint>

#include "des/distributions.h"
#include "des/rng.h"

namespace dsf::workload {

/// Shape of the on/off duration distributions.
enum class DurationKind : std::uint8_t {
  kExponential,  ///< the paper's §4.2 model (memoryless, mean 3 h)
  kPareto,       ///< heavy-tailed ablation: measured P2P session lengths
                 ///< are closer to power laws than to exponentials
};

struct SessionParams {
  double mean_online_s = 3.0 * 3600.0;
  double mean_offline_s = 3.0 * 3600.0;
  double mean_interquery_s = 320.0;
  DurationKind duration_kind = DurationKind::kExponential;
  /// Pareto shape when duration_kind == kPareto; must be > 1 so the mean
  /// exists.  Smaller values = heavier tail (more very long/short
  /// sessions at the same mean).
  double pareto_shape = 1.5;
};

/// On/off churn model of §4.2: a user alternates between on-line and
/// off-line periods, each with the configured mean (3 h in the paper,
/// giving 50% expected concurrent availability).  Queries are issued while
/// on-line with exponential inter-arrival times.
///
/// The inter-query mean is not stated in the paper; it is calibrated from
/// the reported message volumes (see DESIGN.md) to ≈320 s, i.e. ~11
/// queries per on-line user per hour.
class SessionModel {
 public:
  using Params = SessionParams;

  explicit SessionModel(const Params& params = Params())
      : params_(params),
        online_exp_(params.mean_online_s),
        offline_exp_(params.mean_offline_s),
        interquery_(params.mean_interquery_s),
        online_pareto_(des::Pareto::from_mean(
            params.mean_online_s,
            params.duration_kind == DurationKind::kPareto ? params.pareto_shape
                                                          : 2.0)),
        offline_pareto_(des::Pareto::from_mean(
            params.mean_offline_s,
            params.duration_kind == DurationKind::kPareto ? params.pareto_shape
                                                          : 2.0)) {}

  const Params& params() const noexcept { return params_; }

  /// Stationary probability of being on-line at t = 0 (ratio of means —
  /// holds for any duration distribution by renewal-reward).
  double stationary_online_probability() const noexcept {
    return params_.mean_online_s /
           (params_.mean_online_s + params_.mean_offline_s);
  }

  /// Draws the initial state: returns true if the user starts on-line.
  bool draw_initial_online(des::Rng& rng) const {
    return rng.bernoulli(stationary_online_probability());
  }

  double draw_online_duration(des::Rng& rng) const {
    return params_.duration_kind == DurationKind::kPareto
               ? online_pareto_.sample(rng)
               : online_exp_.sample(rng);
  }
  double draw_offline_duration(des::Rng& rng) const {
    return params_.duration_kind == DurationKind::kPareto
               ? offline_pareto_.sample(rng)
               : offline_exp_.sample(rng);
  }
  double draw_interquery_gap(des::Rng& rng) const {
    return interquery_.sample(rng);
  }

 private:
  Params params_;
  des::Exponential online_exp_;
  des::Exponential offline_exp_;
  des::Exponential interquery_;
  des::Pareto online_pareto_;
  des::Pareto offline_pareto_;
};

}  // namespace dsf::workload
