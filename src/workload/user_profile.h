#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "des/rng.h"
#include "workload/catalog.h"

namespace dsf::workload {

/// A user's musical taste (§4.2): one favourite category receiving 50% of
/// the probability mass, plus `kNumSideCategories` distinct side categories
/// receiving 10% each.
struct UserProfile {
  static constexpr int kNumSideCategories = 5;
  static constexpr double kFavoriteShare = 0.5;

  CategoryId favorite = 0;
  std::array<CategoryId, kNumSideCategories> side{};

  /// Samples a category according to this profile (50% favourite, 10% per
  /// side category).
  CategoryId sample_category(des::Rng& rng) const {
    const double u = rng.uniform();
    if (u < kFavoriteShare) return favorite;
    const double share = (1.0 - kFavoriteShare) / kNumSideCategories;
    auto i = static_cast<std::size_t>((u - kFavoriteShare) / share);
    if (i >= side.size()) i = side.size() - 1;  // guard u ≈ 1 rounding
    return side[i];
  }
};

/// Generates the population's profiles: favourite categories assigned by
/// Zipf(theta) over the category set (popular genres have many fans), side
/// categories chosen uniformly among the remaining ones.
class ProfileGenerator {
 public:
  ProfileGenerator(const Catalog& catalog, double user_zipf_theta = 0.9);

  UserProfile generate(des::Rng& rng) const;

  std::vector<UserProfile> generate_population(std::size_t n,
                                               des::Rng& rng) const;

 private:
  const Catalog* catalog_;
  des::Zipf category_zipf_;
};

}  // namespace dsf::workload
