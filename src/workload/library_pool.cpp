#include "workload/library_pool.h"

#include <algorithm>

namespace dsf::workload {

void LibraryPool::reserve(std::size_t num_users, std::size_t expected_songs) {
  start_.reserve(num_users + 1);
  songs_.reserve(expected_songs);
  if (start_.empty()) start_.push_back(0);
}

void LibraryPool::append(const Library& lib) {
  if (start_.empty()) start_.push_back(0);
  songs_.insert(songs_.end(), lib.songs().begin(), lib.songs().end());
  start_.push_back(songs_.size());
}

bool LibraryPool::contains(std::uint32_t u, SongId s) const noexcept {
  const auto b = base(u);
  if (std::binary_search(b.begin(), b.end(), s)) return true;
  if (spill_.empty()) return false;
  const auto it = spill_.find(u);
  if (it == spill_.end()) return false;
  return std::binary_search(it->second.begin(), it->second.end(), s);
}

std::size_t LibraryPool::size(std::uint32_t u) const {
  std::size_t n = base(u).size();
  if (!spill_.empty()) {
    const auto it = spill_.find(u);
    if (it != spill_.end()) n += it->second.size();
  }
  return n;
}

void LibraryPool::add(std::uint32_t u, SongId s) {
  const auto b = base(u);
  if (std::binary_search(b.begin(), b.end(), s)) return;
  auto& spill = spill_[u];
  const auto it = std::lower_bound(spill.begin(), spill.end(), s);
  if (it == spill.end() || *it != s) spill.insert(it, s);
}

std::size_t LibraryPool::memory_bytes() const noexcept {
  std::size_t bytes = songs_.capacity() * sizeof(SongId) +
                      start_.capacity() * sizeof(std::uint64_t);
  for (const auto& [u, spill] : spill_) {
    (void)u;
    bytes += sizeof(spill) + spill.capacity() * sizeof(SongId) +
             64;  // rough per-entry hash-table overhead
  }
  return bytes;
}

}  // namespace dsf::workload
