#pragma once

// Pooled library storage for million-peer populations.
//
// workload::Library owns a std::vector per user — a heap block, a 24-byte
// header and malloc slack each, which at a million peers is a million
// allocations before the overlay exists.  LibraryPool keeps every user's
// songs in ONE sorted-slices arena: user u's library is the half-open
// range [start_[u], start_[u+1]) of songs_, laid down once at population
// build time in user-id order.  Lookup stays the same binary search over
// the same sorted data, so `contains` answers exactly what Library's did.
//
// The library_growth ablation (users download what they find) is the one
// writer after construction.  Grown songs go to a per-user spill list,
// allocated lazily only for users that actually download — the arena
// slices never move.  `contains` checks base then spill; both are sorted
// and mutually deduplicated, so base ∪ spill is byte-for-byte the set the
// old insert-in-place Library would have held.

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "workload/catalog.h"
#include "workload/library.h"

namespace dsf::workload {

class LibraryPool {
 public:
  LibraryPool() = default;

  /// Pre-sizes the arena (`expected_songs` may be an estimate).
  void reserve(std::size_t num_users, std::size_t expected_songs);

  /// Appends the next user's library; users must be appended in id order.
  /// The Library's songs are already sorted and duplicate-free.
  void append(const Library& lib);

  std::size_t num_users() const noexcept {
    return start_.empty() ? 0 : start_.size() - 1;
  }

  /// The user's construction-time songs, sorted ascending (what digest
  /// builders iterate; growth spills are intentionally not included, same
  /// as the digests-stay-as-built rule in the gnutella scenario).
  std::span<const SongId> base(std::uint32_t u) const {
    return {songs_.data() + start_[u], start_[u + 1] - start_[u]};
  }

  bool contains(std::uint32_t u, SongId s) const noexcept;

  /// Library size including grown songs.
  std::size_t size(std::uint32_t u) const;

  /// Adds a downloaded song to the user's library (no-op if owned).
  void add(std::uint32_t u, SongId s);

  /// Bytes owned by the pool (arena + slice table + spill lists) — what
  /// the scale tests pin per-peer budgets against.
  std::size_t memory_bytes() const noexcept;

  /// Growth-spill lists, for checkpointing.  The map is unordered: the
  /// snapshot writer sorts by user id so identical state always produces
  /// identical bytes.  Restore replays each entry through add(), which
  /// re-establishes the sorted/disjoint invariant.
  const std::unordered_map<std::uint32_t, std::vector<SongId>>& spill()
      const noexcept {
    return spill_;
  }

 private:
  std::vector<SongId> songs_;        ///< all users' songs, concatenated
  std::vector<std::uint64_t> start_; ///< slice bounds; size num_users()+1
  /// Growth spills, keyed by user; absent for the (typical) non-growing
  /// population.  Each list is kept sorted and disjoint from the base.
  std::unordered_map<std::uint32_t, std::vector<SongId>> spill_;
};

}  // namespace dsf::workload
