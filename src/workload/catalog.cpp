#include "workload/catalog.h"

#include <stdexcept>

namespace dsf::workload {

namespace {

std::vector<double> zipf_weights(std::uint32_t n, double theta) {
  des::Zipf z(n, theta);
  std::vector<double> w(n);
  for (std::uint32_t r = 0; r < n; ++r) w[r] = z.pmf(r);
  return w;
}

}  // namespace

Catalog::Catalog(const Params& params)
    : params_(params),
      per_category_(params.num_categories
                        ? params.num_songs / params.num_categories
                        : 0),
      zipf_(per_category_ ? per_category_ : 1, params.zipf_theta),
      rank_alias_(zipf_weights(per_category_ ? per_category_ : 1,
                               params.zipf_theta)) {
  if (params.num_categories == 0)
    throw std::invalid_argument("Catalog: num_categories must be > 0");
  if (params.num_songs % params.num_categories != 0)
    throw std::invalid_argument(
        "Catalog: num_songs must divide evenly into categories");
  if (per_category_ == 0)
    throw std::invalid_argument("Catalog: empty categories");
}

SongId Catalog::sample_song(CategoryId c, des::Rng& rng) const {
  if (c >= params_.num_categories)
    throw std::out_of_range("Catalog::sample_song: bad category");
  return song_at(c, static_cast<std::uint32_t>(rank_alias_.sample(rng)));
}

}  // namespace dsf::workload
