#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "des/distributions.h"
#include "des/rng.h"

namespace dsf::workload {

/// Dense song (content item) identifier over [0, num_songs).
using SongId = std::uint32_t;
/// Music-genre category identifier over [0, num_categories).
using CategoryId = std::uint32_t;

/// The synthetic content universe of §4.2: `num_songs` distinct items
/// equally divided into `num_categories` genres, with within-category
/// popularity following Zipf(theta).  Song ids are laid out contiguously by
/// category (category c owns [c*per_category, (c+1)*per_category)), and the
/// popularity rank of a song inside its category is its offset, so both
/// mappings are O(1) arithmetic.
struct CatalogParams {
  std::uint32_t num_songs = 200'000;
  std::uint32_t num_categories = 50;
  double zipf_theta = 0.9;  ///< within-category popularity skew
};

class Catalog {
 public:
  using Params = CatalogParams;

  explicit Catalog(const Params& params = Params());

  std::uint32_t num_songs() const noexcept { return params_.num_songs; }
  std::uint32_t num_categories() const noexcept {
    return params_.num_categories;
  }
  std::uint32_t songs_per_category() const noexcept { return per_category_; }
  double zipf_theta() const noexcept { return params_.zipf_theta; }

  CategoryId category_of(SongId s) const noexcept { return s / per_category_; }

  /// Popularity rank of `s` within its category (0 = most popular).
  std::uint32_t rank_of(SongId s) const noexcept { return s % per_category_; }

  SongId song_at(CategoryId c, std::uint32_t rank) const noexcept {
    return c * per_category_ + rank;
  }

  /// Samples a song from category `c` according to the Zipf popularity
  /// profile (O(1), alias method).  The same profile drives both library
  /// construction and query targets, which is what makes popular songs
  /// both widely replicated and frequently requested.
  SongId sample_song(CategoryId c, des::Rng& rng) const;

  /// PMF of drawing rank `r` in any category.
  double rank_probability(std::uint32_t r) const { return zipf_.pmf(r); }

 private:
  Params params_;
  std::uint32_t per_category_;
  des::Zipf zipf_;              // exact PMF (tests, analysis)
  des::AliasTable rank_alias_;  // O(1) rank sampling (hot path)
};

}  // namespace dsf::workload
