#include "workload/library.h"

#include <unordered_set>

namespace dsf::workload {

Library::Library(std::vector<SongId> songs) : songs_(std::move(songs)) {
  std::sort(songs_.begin(), songs_.end());
  songs_.erase(std::unique(songs_.begin(), songs_.end()), songs_.end());
}

void Library::add(SongId s) {
  const auto it = std::lower_bound(songs_.begin(), songs_.end(), s);
  if (it == songs_.end() || *it != s) songs_.insert(it, s);
}

LibraryGenerator::LibraryGenerator(const Catalog& catalog,
                                   const Params& params)
    : catalog_(&catalog), params_(params),
      size_dist_(params.mean_size, params.stddev_size, params.min_size,
                 params.max_size) {}

void LibraryGenerator::draw_from_category(CategoryId category,
                                          std::size_t count, des::Rng& rng,
                                          std::vector<SongId>& out) const {
  // Rejection on duplicates.  With Zipf(0.9) over 4000 ranks and ~100 draws
  // the duplicate rate is modest, and the cap below bounds the worst case
  // (tiny test catalogs where `count` approaches the category size).
  count = std::min<std::size_t>(count, catalog_->songs_per_category());
  std::unordered_set<SongId> seen;
  seen.reserve(count * 2);
  std::size_t attempts = 0;
  const std::size_t max_attempts = 50 * count + 100;
  while (seen.size() < count && attempts < max_attempts) {
    seen.insert(catalog_->sample_song(category, rng));
    ++attempts;
  }
  // If popularity skew starved us (possible only for near-full categories),
  // top up with the most popular unseen ranks — deterministic and cheap.
  for (std::uint32_t r = 0;
       seen.size() < count && r < catalog_->songs_per_category(); ++r) {
    seen.insert(catalog_->song_at(category, r));
  }
  out.insert(out.end(), seen.begin(), seen.end());
}

Library LibraryGenerator::generate(const UserProfile& profile,
                                   des::Rng& rng) const {
  const auto total = static_cast<std::size_t>(size_dist_.sample(rng));
  const std::size_t favorite_count = total / 2;
  const std::size_t per_side =
      (total - favorite_count) / UserProfile::kNumSideCategories;

  std::vector<SongId> songs;
  songs.reserve(total);
  draw_from_category(profile.favorite, favorite_count, rng, songs);
  for (CategoryId c : profile.side) draw_from_category(c, per_side, rng, songs);
  return Library(std::move(songs));
}

}  // namespace dsf::workload
