#pragma once

#include "des/rng.h"
#include "workload/catalog.h"
#include "workload/user_profile.h"

namespace dsf::workload {

/// Draws query targets for a user (§4.2): the query's category matches the
/// user's preference distribution (50% favourite, 10% per side category)
/// and the song within the category follows the catalog's popularity
/// profile.  One song per query, as in the paper.
class QueryGenerator {
 public:
  explicit QueryGenerator(const Catalog& catalog) : catalog_(&catalog) {}

  SongId draw(const UserProfile& profile, des::Rng& rng) const {
    return catalog_->sample_song(profile.sample_category(rng), rng);
  }

 private:
  const Catalog* catalog_;
};

}  // namespace dsf::workload
