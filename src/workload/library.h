#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "des/distributions.h"
#include "des/rng.h"
#include "workload/catalog.h"
#include "workload/user_profile.h"

namespace dsf::workload {

/// A user's local content: a sorted, duplicate-free set of songs.  Lookup
/// (`contains`) is the innermost operation of every simulated query flood,
/// so the representation is a sorted flat vector — ~200 entries fit in a
/// few cache lines and binary search beats hashing at this size.
class Library {
 public:
  Library() = default;
  explicit Library(std::vector<SongId> songs);

  bool contains(SongId s) const noexcept {
    return std::binary_search(songs_.begin(), songs_.end(), s);
  }

  std::size_t size() const noexcept { return songs_.size(); }
  bool empty() const noexcept { return songs_.empty(); }
  const std::vector<SongId>& songs() const noexcept { return songs_; }

  /// Adds a song (e.g. after a successful download); keeps order.
  void add(SongId s);

 private:
  std::vector<SongId> songs_;
};

/// Builds user libraries per §4.2: library size ~ Gaussian(μ=200, σ=50)
/// truncated to stay positive; 50% of the songs drawn from the favourite
/// category and 10% from each of the 5 side categories; song selection
/// within a category follows the catalog's Zipf popularity (popular songs
/// end up in many libraries, unpopular ones in few).
struct LibraryParams {
  double mean_size = 200.0;
  double stddev_size = 50.0;
  double min_size = 10.0;   ///< truncation floor (must stay positive)
  double max_size = 400.0;  ///< truncation ceiling (2·mean)
};

class LibraryGenerator {
 public:
  using Params = LibraryParams;

  LibraryGenerator(const Catalog& catalog, const Params& params = Params());

  Library generate(const UserProfile& profile, des::Rng& rng) const;

 private:
  /// Draws `count` distinct songs from `category` by popularity.
  void draw_from_category(CategoryId category, std::size_t count,
                          des::Rng& rng, std::vector<SongId>& out) const;

  const Catalog* catalog_;
  Params params_;
  des::TruncatedGaussian size_dist_;
};

}  // namespace dsf::workload
