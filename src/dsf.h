#pragma once

// DSF — Distributed Search Framework
// ===================================
//
// Umbrella header: pulls in the full public API.  Individual modules are
// cheap to include on their own; this exists for quick experiments and
// for documentation tooling.
//
// Layering (lower layers never include higher ones):
//
//   des/        discrete-event engine, RNG, distributions, sweeps
//   net/        node ids, bandwidth/delay model, messages, Bloom digests
//   metrics/    series, summaries, tables, CSV/JSON, replication CIs
//   workload/   the paper's synthetic content & behaviour models
//   core/       the framework itself (relations, search, exploration,
//               neighbor update, benefit functions, graph statistics)
//   gnutella/   §4 case study           (symmetric relations)
//   webcache/   Squid-like proxies       (pure asymmetric; hierarchy)
//   olap/       PeerOlap-like chunk cache (asymmetric)
//   diglib/     digital-library federation (all-to-all vs bounded)
//
// Entry points:
//   * run a packaged scenario: gnutella::Simulation, webcache::WebCacheSim,
//     olap::OlapSim, diglib::DigLibSim — construct from a Config, call
//     run(), read the result struct.
//   * build your own repository type: start from examples/custom_policy.cpp
//     and the five core primitives (NeighborTable, flood_search, explore,
//     StatsStore, plan_update/decide_invitation).

// Substrates
#include "des/distributions.h"
#include "des/event_queue.h"
#include "des/rng.h"
#include "des/simulator.h"
#include "des/sweep.h"
#include "metrics/csv.h"
#include "metrics/json.h"
#include "metrics/replication.h"
#include "metrics/table.h"
#include "metrics/time_series.h"
#include "net/bandwidth.h"
#include "net/bloom.h"
#include "net/delay_model.h"
#include "net/message.h"
#include "net/node_id.h"

// The framework
#include "core/benefit.h"
#include "core/event_flood.h"
#include "core/exploration.h"
#include "core/flood_search.h"
#include "core/graph_stats.h"
#include "core/relations.h"
#include "core/search_strategies.h"
#include "core/stats_store.h"
#include "core/update.h"
#include "core/visit_stamp.h"

// Workload models
#include "workload/catalog.h"
#include "workload/library.h"
#include "workload/query_gen.h"
#include "workload/session.h"
#include "workload/user_profile.h"

// Scenarios
#include "diglib/diglib_sim.h"
#include "gnutella/config.h"
#include "gnutella/simulation.h"
#include "olap/olap_sim.h"
#include "webcache/lru_cache.h"
#include "webcache/webcache_sim.h"
