#pragma once

// Shared `--fault-*` option group for the dsf_sim driver (and any other
// tool that wants the same knobs): builds a sim::FaultPlan / CrashModel
// from command-line flags so every scenario can run under identical
// adversarial conditions.
//
//   --fault-drop P           drop probability for every message type
//   --fault-dup P            duplication probability for every type
//   --fault-delay P          extra-delay probability for every type
//   --fault-delay-s S        the extra delay itself (default 1.0 s)
//   --fault-window-start S   faults active from this sim time (default 0)
//   --fault-window-end S     ... until this sim time (default: forever)
//   --fault-drop-<type>, --fault-dup-<type>, --fault-delay-<type>
//                            per-type overrides; <type> is the wire name
//                            from net::to_string (query, query-reply,
//                            ping, pong, explore-query, explore-reply,
//                            invitation, invitation-reply, eviction)
//   --fault-crash-rate R     Poisson peer crashes per hour
//   --fault-crash-max N      stop after N crashes
//   --fault-crash-start S / --fault-crash-end S
//                            crash window in sim seconds
//   --fault-check            attach the InvariantChecker and audit the
//                            run (nonzero exit on violation)

#include "cli/flag_registry.h"
#include "sim/fault.h"

namespace dsf::cli {

struct FaultOptions {
  sim::FaultPlan plan;
  sim::CrashModel crashes;
  bool check = false;

  /// Anything at all requested (plan, crashes, or checker)?
  bool any() const noexcept {
    return !plan.empty() || crashes.enabled() || check;
  }
};

/// Declares the whole --fault-* group on `reg` (opens a "fault injection"
/// group; the 27 per-type overrides are hidden behind one note line).
void register_fault_flags(FlagRegistry& reg);

/// Builds the options from a parsed registry; throws
/// std::invalid_argument on bad values (negative rates, inverted
/// windows, ...).
FaultOptions fault_options_from(const FlagRegistry& reg);

}  // namespace dsf::cli
