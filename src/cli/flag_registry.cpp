#include "cli/flag_registry.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

namespace dsf::cli {

std::size_t edit_distance(const std::string& a, const std::string& b) {
  // Classic two-row Levenshtein; flag names are short, so O(|a||b|) is
  // nothing.
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  std::iota(prev.begin(), prev.end(), std::size_t{0});
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

FlagRegistry::FlagRegistry(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {
  groups_.push_back({"options", {}});
  add_bool("help", false, "print this flag reference and exit");
}

FlagRegistry& FlagRegistry::group(std::string title) {
  groups_.push_back({std::move(title), {}});
  return *this;
}

FlagRegistry::Flag& FlagRegistry::declare(const std::string& name, Type type,
                                          std::string help) {
  for (const Flag& f : flags_)
    if (f.name == name)
      throw std::logic_error("flag declared twice: --" + name);
  Flag f;
  f.name = name;
  f.type = type;
  f.help = std::move(help);
  f.group = groups_.size() - 1;
  flags_.push_back(std::move(f));
  return flags_.back();
}

FlagRegistry& FlagRegistry::add_string(const std::string& name,
                                       std::string def, std::string help) {
  declare(name, Type::kString, std::move(help)).def_string = std::move(def);
  return *this;
}

FlagRegistry& FlagRegistry::add_int(const std::string& name, std::int64_t def,
                                    std::string help) {
  declare(name, Type::kInt, std::move(help)).def_int = def;
  return *this;
}

FlagRegistry& FlagRegistry::add_double(const std::string& name, double def,
                                       std::string help) {
  declare(name, Type::kDouble, std::move(help)).def_double = def;
  return *this;
}

FlagRegistry& FlagRegistry::add_bool(const std::string& name, bool def,
                                     std::string help) {
  declare(name, Type::kBool, std::move(help)).def_bool = def;
  return *this;
}

FlagRegistry& FlagRegistry::alias(const std::string& alt,
                                  const std::string& canonical) {
  for (Flag& f : flags_) {
    if (f.name == canonical) {
      f.aliases.push_back(alt);
      return *this;
    }
  }
  throw std::logic_error("alias for undeclared flag: --" + canonical);
}

FlagRegistry& FlagRegistry::hide(const std::string& name) {
  for (Flag& f : flags_) {
    if (f.name == name) {
      f.hidden = true;
      return *this;
    }
  }
  throw std::logic_error("hide of undeclared flag: --" + name);
}

FlagRegistry& FlagRegistry::note(std::string text) {
  groups_.back().notes.push_back(std::move(text));
  return *this;
}

FlagRegistry::Flag* FlagRegistry::resolve(const std::string& key) {
  for (Flag& f : flags_) {
    if (f.name == key) return &f;
    for (const std::string& a : f.aliases)
      if (a == key) return &f;
  }
  return nullptr;
}

std::string FlagRegistry::suggest(const std::string& key) const {
  std::string best;
  std::size_t best_dist = std::string::npos;
  for (const Flag& f : flags_) {
    const std::size_t d = edit_distance(key, f.name);
    if (d < best_dist) {
      best_dist = d;
      best = f.name;
    }
    for (const std::string& a : f.aliases) {
      const std::size_t da = edit_distance(key, a);
      if (da < best_dist) {
        best_dist = da;
        best = a;
      }
    }
  }
  // Only suggest plausible typos: a third of the name's length, at least
  // two edits, so "--hours" never "suggests" something unrelated.
  const std::size_t cutoff = std::max<std::size_t>(2, key.size() / 3);
  return best_dist <= cutoff ? best : std::string();
}

const Args& FlagRegistry::parse(int argc, const char* const* argv) {
  args_.emplace(argc, argv);

  // Bind declared flags first (canonical spelling wins over aliases),
  // marking every accepted spelling recognized in the tokenizer.
  for (Flag& f : flags_) {
    std::optional<std::string> v = args_->get(f.name);
    for (const std::string& a : f.aliases) {
      const auto av = args_->get(a);
      if (!v) v = av;
    }
    if (v) {
      f.set = true;
      f.value = *v;
    }
  }

  // Anything left is undeclared: reject with a suggestion instead of the
  // old silent warning.
  const auto unknown = args_->unrecognized();
  if (!unknown.empty()) {
    const std::string& key = unknown.front();
    const std::string near = suggest(key);
    std::string msg = "unknown option --" + key;
    msg += near.empty() ? " (see --help)" : " (did you mean --" + near + "?)";
    throw UnknownFlag(msg);
  }

  help_requested_ = get_bool("help");

  // Eager type validation so a bad value fails up front, not at first use.
  for (const Flag& f : flags_) {
    if (!f.set) continue;
    switch (f.type) {
      case Type::kString: break;
      case Type::kInt: get_int(f.name); break;
      case Type::kDouble: get_double(f.name); break;
      case Type::kBool: get_bool(f.name); break;
    }
  }
  return *args_;
}

const FlagRegistry::Flag& FlagRegistry::find(const std::string& name) const {
  for (const Flag& f : flags_)
    if (f.name == name) return f;
  throw std::logic_error("undeclared flag read: --" + name);
}

std::string FlagRegistry::get_string(const std::string& name) const {
  const Flag& f = find(name);
  return f.set ? f.value : f.def_string;
}

std::int64_t FlagRegistry::get_int(const std::string& name) const {
  const Flag& f = find(name);
  if (!f.set) return f.def_int;
  // Distinguish "does not parse" from "parses but does not fit": the old
  // blanket catch folded std::out_of_range into "not an integer", which
  // told a user typing --peers 99999999999999999999 the wrong thing.
  std::size_t pos = 0;
  std::int64_t parsed = 0;
  try {
    parsed = std::stoll(f.value, &pos);
  } catch (const std::out_of_range&) {
    throw FlagError("--" + name + ": integer out of range: " + f.value);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  if (pos != f.value.size())
    throw FlagError("--" + name + ": not an integer: " + f.value);
  return parsed;
}

double FlagRegistry::get_double(const std::string& name) const {
  const Flag& f = find(name);
  if (!f.set) return f.def_double;
  std::size_t pos = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(f.value, &pos);
  } catch (const std::out_of_range&) {
    throw FlagError("--" + name + ": number out of range: " + f.value);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  if (pos != f.value.size())
    throw FlagError("--" + name + ": not a number: " + f.value);
  return parsed;
}

bool FlagRegistry::get_bool(const std::string& name) const {
  const Flag& f = find(name);
  if (!f.set) return f.def_bool;
  const std::string& v = f.value;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw FlagError("--" + name + ": not a boolean: " + v);
}

bool FlagRegistry::was_set(const std::string& name) const {
  return find(name).set;
}

std::string FlagRegistry::help() const {
  std::string out = "usage: " + program_ + "\n";
  if (!summary_.empty()) out += summary_ + "\n";
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    std::string body;
    for (const Flag& f : flags_) {
      if (f.group != g || f.hidden) continue;
      std::string line = "  --" + f.name;
      switch (f.type) {
        case Type::kString:
          line += " S";
          break;
        case Type::kInt:
          line += " N";
          break;
        case Type::kDouble:
          line += " X";
          break;
        case Type::kBool:
          break;  // bare flag
      }
      if (line.size() < 28) line.resize(28, ' ');
      line += "  " + f.help;
      switch (f.type) {
        case Type::kString:
          if (!f.def_string.empty()) line += " (default " + f.def_string + ")";
          break;
        case Type::kInt:
          line += " (default " + std::to_string(f.def_int) + ")";
          break;
        case Type::kDouble: {
          char buf[32];
          std::snprintf(buf, sizeof buf, "%g", f.def_double);
          line += std::string(" (default ") + buf + ")";
          break;
        }
        case Type::kBool:
          if (f.def_bool) line += " (default on)";
          break;
      }
      for (const std::string& a : f.aliases) line += " [alias --" + a + "]";
      body += line + "\n";
    }
    for (const std::string& n : groups_[g].notes) body += "  " + n + "\n";
    if (body.empty()) continue;
    out += "\n" + groups_[g].title + ":\n" + body;
  }
  return out;
}

}  // namespace dsf::cli
