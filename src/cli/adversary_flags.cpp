#include "cli/adversary_flags.h"

#include <limits>
#include <stdexcept>

#include "net/bandwidth.h"

namespace dsf::cli {

namespace {

/// The CLI spellings of the three bandwidth classes, indexable by class.
constexpr const char* kClassNames[net::kNumBandwidthClasses] = {"56k", "cable",
                                                                "lan"};

int parse_outage_class(const std::string& s) {
  if (s.empty()) return -1;
  for (int i = 0; i < net::kNumBandwidthClasses; ++i)
    if (s == kClassNames[i]) return i;
  throw std::invalid_argument(
      "--adversary-outage-class: expected 56k, cable or lan, got '" + s + "'");
}

}  // namespace

void register_adversary_flags(FlagRegistry& reg) {
  reg.group("adversary layer (all off by default)");
  reg.add_double("adversary-abusers", 0.0,
                 "fraction of peers turned query-flood abusers")
      .add_double("adversary-abuse-rate", 0.0,
                  "searches per second per abuser")
      .add_double("adversary-abuse-start", 0.0,
                  "abuse active from this sim time")
      .add_double("adversary-abuse-end",
                  std::numeric_limits<double>::infinity(),
                  "... until this sim time (default: forever)")
      .add_double("adversary-free-riders", 0.0,
                  "fraction of non-abusers that serve no content")
      .add_string("adversary-outage-class", "",
                  "regional outage: crash this delay class (56k|cable|lan)")
      .add_double("adversary-outage-at", -1.0,
                  "outage time in sim-seconds (-1: off)")
      .add_double("adversary-outage-fraction", 1.0,
                  "fraction of the class that goes down")
      .add_double("adversary-storm-rate", 0.0, "churn-storm kicks per second")
      .add_double("adversary-storm-start", 0.0,
                  "storm active from this sim time")
      .add_double("adversary-storm-end",
                  std::numeric_limits<double>::infinity(),
                  "... until this sim time (default: forever)")
      .add_double("adversary-storm-shape", 1.5,
                  "Pareto shape of storm offline tails (> 1)")
      .add_double("adversary-storm-offline-s", 600.0,
                  "mean storm offline time, seconds")
      .add_bool("adversary-check", false,
                "audit abuse attribution + abuser overlay; exit 4 on "
                "violation")
      .add_string("capture-trace", "",
                  "write closed-loop query arrivals (time_s peer item), "
                  "replayable with --open-loop --load-trace");
  for (int i = 0; i < net::kNumBandwidthClasses; ++i) {
    reg.add_int(std::string("adversary-degree-") + kClassNames[i], 0,
                "degree bound for the class (0: scenario default)")
        .add_double(std::string("adversary-weight-") + kClassNames[i], 1.0,
                    "benefit weight for answers from the class");
  }
}

AdversaryOptions adversary_options_from(const FlagRegistry& reg) {
  AdversaryOptions opts;
  sim::AdversaryPlan& p = opts.plan;

  p.abuser_fraction = reg.get_double("adversary-abusers");
  p.abuse_rate_per_s = reg.get_double("adversary-abuse-rate");
  p.abuse_start_s = reg.get_double("adversary-abuse-start");
  p.abuse_end_s = reg.get_double("adversary-abuse-end");
  // Half-set abuse knobs would be a silent no-op (abusers_enabled() needs
  // both a fraction and a rate) — reject them like the outage pair below.
  if (p.abuser_fraction > 0.0 && p.abuse_rate_per_s <= 0.0)
    throw std::invalid_argument(
        "--adversary-abusers needs --adversary-abuse-rate");
  if (p.abuser_fraction <= 0.0 && reg.was_set("adversary-abuse-rate"))
    throw std::invalid_argument(
        "--adversary-abuse-rate needs --adversary-abusers");

  p.free_rider_fraction = reg.get_double("adversary-free-riders");

  p.outage_class = parse_outage_class(reg.get_string("adversary-outage-class"));
  p.outage_at_s = reg.get_double("adversary-outage-at");
  p.outage_fraction = reg.get_double("adversary-outage-fraction");
  if (p.outage_class >= 0 && p.outage_at_s < 0.0)
    throw std::invalid_argument(
        "--adversary-outage-class needs --adversary-outage-at");
  if (p.outage_class < 0 && reg.was_set("adversary-outage-at"))
    throw std::invalid_argument(
        "--adversary-outage-at needs --adversary-outage-class");

  p.storm_rate_per_s = reg.get_double("adversary-storm-rate");
  p.storm_start_s = reg.get_double("adversary-storm-start");
  p.storm_end_s = reg.get_double("adversary-storm-end");
  p.storm_pareto_shape = reg.get_double("adversary-storm-shape");
  p.storm_offline_mean_s = reg.get_double("adversary-storm-offline-s");

  for (int i = 0; i < net::kNumBandwidthClasses; ++i) {
    const std::int64_t bound =
        reg.get_int(std::string("adversary-degree-") + kClassNames[i]);
    if (bound < 0)
      throw std::invalid_argument("--adversary-degree-" +
                                  std::string(kClassNames[i]) +
                                  ": must be >= 0");
    p.degree_bound[i] = static_cast<std::uint32_t>(bound);
    p.benefit_weight[i] =
        reg.get_double(std::string("adversary-weight-") + kClassNames[i]);
  }

  p.validate();

  opts.capture_path = reg.get_string("capture-trace");
  opts.check = reg.get_bool("adversary-check");
  return opts;
}

}  // namespace dsf::cli
