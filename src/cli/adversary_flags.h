#pragma once

// Shared `--adversary-*` option group for the dsf_sim driver (and any
// other tool that wants the same knobs): builds a sim::AdversaryPlan from
// command-line flags so every scenario can run under identical structured
// adversities.  The group also carries the closed-loop arrival capture
// flag, which shares the layer's serial-only restrictions.
//
//   --adversary-abusers F      fraction of peers turned query-flood
//                              abusers (TTL-max searches at a fixed rate)
//   --adversary-abuse-rate R   searches per second per abuser
//   --adversary-abuse-start S / --adversary-abuse-end S
//                              abuse window in sim-seconds
//   --adversary-free-riders F  fraction of non-abuser peers that serve no
//                              content but keep their full query load
//   --adversary-outage-class C correlated regional outage: crash peers of
//                              this delay class (56k | cable | lan)
//   --adversary-outage-at S    outage time in sim-seconds
//   --adversary-outage-fraction F
//                              fraction of the class that goes down
//   --adversary-storm-rate R   churn-storm kicks per second
//   --adversary-storm-start S / --adversary-storm-end S
//                              storm window in sim-seconds
//   --adversary-storm-shape A  Pareto shape of the storm offline tails
//   --adversary-storm-offline-s S
//                              mean storm offline time
//   --adversary-degree-{56k,cable,lan} N
//                              capacity-aware degree bound per bandwidth
//                              class (0: scenario default)
//   --adversary-weight-{56k,cable,lan} W
//                              per-class benefit weight on answers
//   --adversary-check          audit abuse attribution + abuser overlay
//                              (nonzero exit on violation)
//   --capture-trace PATH       write this run's closed-loop query
//                              arrivals in the "time_s peer item" trace
//                              grammar, replayable with
//                              --open-loop --load-trace PATH

#include <string>

#include "cli/flag_registry.h"
#include "sim/adversary.h"

namespace dsf::cli {

struct AdversaryOptions {
  sim::AdversaryPlan plan;
  std::string capture_path;
  bool check = false;

  /// Anything at all requested (plan, capture, or checker)?
  bool any() const noexcept {
    return plan.enabled() || !capture_path.empty() || check;
  }
};

/// Declares the whole --adversary-* group (plus --capture-trace) on `reg`.
void register_adversary_flags(FlagRegistry& reg);

/// Builds the options from a parsed registry; throws
/// std::invalid_argument on bad values (fractions outside [0, 1],
/// unknown outage class, inverted windows, ...).
AdversaryOptions adversary_options_from(const FlagRegistry& reg);

}  // namespace dsf::cli
