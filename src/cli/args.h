#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace dsf::cli {

/// The typed flag error: everything a *user* can cause from the command
/// line — unknown options, values that do not parse as the declared type,
/// and values that parse but overflow the type (`--peers
/// 99999999999999999999` used to escape as an uncaught std::out_of_range
/// from std::stoll).  Drivers catch this one type and exit with the usage
/// status; it remains a std::invalid_argument so existing handlers keep
/// working.  Programming errors (reading an undeclared flag) stay
/// std::logic_error and are *not* FlagError.
class FlagError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Minimal command-line parser for the `dsf_sim` driver: GNU-style
/// `--key value` / `--key=value` options plus bare positional arguments.
/// Unknown keys are collected so the driver can reject typos with a
/// helpful message instead of silently ignoring them.
class Args {
 public:
  /// Parses argv; throws std::invalid_argument on malformed input
  /// (an option missing its value).
  Args(int argc, const char* const* argv);

  /// The positional (non-option) arguments, in order.
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  bool has(const std::string& key) const { return options_.count(key) != 0; }

  /// Raw string value (nullopt if absent).
  std::optional<std::string> get(const std::string& key) const;

  /// Typed getters with defaults; throw FlagError when the value does not
  /// parse as the requested type or does not fit in it.
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Marks a key as recognized; `unrecognized()` returns the rest.
  void recognize(const std::string& key) const { recognized_.insert(key); }
  std::vector<std::string> unrecognized() const;

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
  mutable std::set<std::string> recognized_;
};

}  // namespace dsf::cli
