#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace dsf::cli {

/// Minimal command-line parser for the `dsf_sim` driver: GNU-style
/// `--key value` / `--key=value` options plus bare positional arguments.
/// Unknown keys are collected so the driver can reject typos with a
/// helpful message instead of silently ignoring them.
class Args {
 public:
  /// Parses argv; throws std::invalid_argument on malformed input
  /// (an option missing its value).
  Args(int argc, const char* const* argv);

  /// The positional (non-option) arguments, in order.
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  bool has(const std::string& key) const { return options_.count(key) != 0; }

  /// Raw string value (nullopt if absent).
  std::optional<std::string> get(const std::string& key) const;

  /// Typed getters with defaults; throw std::invalid_argument when the
  /// value does not parse as the requested type.
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Marks a key as recognized; `unrecognized()` returns the rest.
  void recognize(const std::string& key) const { recognized_.insert(key); }
  std::vector<std::string> unrecognized() const;

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
  mutable std::set<std::string> recognized_;
};

}  // namespace dsf::cli
